module rap

go 1.22
