#!/usr/bin/env sh
# lintstats: run raplint twice against a throwaway cache directory and
# print cold-vs-warm timing from the JSON reports, demonstrating the
# content-hash cache (DESIGN.md §6): the warm run must serve every
# package from cache and skip both the SSA (v3) and concurrency (v4)
# fact builds entirely.
#
# Set RAPLINT_BIN to reuse an already-built binary (verify.sh does);
# otherwise the script builds its own.
set -eu

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

bin="${RAPLINT_BIN:-}"
if [ -z "$bin" ]; then
	bin="$work/raplint"
	go build -o "$bin" ./cmd/raplint
fi

# field <file> <json-key>: extract a top-level numeric stats value from
# the pretty-printed report (one key per line, so a line-match is exact).
field() {
	sed -n "s/^.*\"$2\": \([0-9.]*\),\{0,1\}\$/\1/p" "$1" | head -n 1
}

"$bin" -cache-dir "$work/cache" -json "$work/cold.json" ./...
"$bin" -cache-dir "$work/cache" -json "$work/warm.json" ./...

pkgs="$(field "$work/cold.json" packages)"
for run in cold warm; do
	rep="$work/$run.json"
	printf '%s: total %sms (load %sms, analyze %sms, ssa build %sms, conc build %sms), %s/%s packages cached\n' \
		"$run" "$(field "$rep" totalMs)" "$(field "$rep" loadMs)" \
		"$(field "$rep" analyzeMs)" "$(field "$rep" ssaBuildMs)" \
		"$(field "$rep" concBuildMs)" "$(field "$rep" cacheHits)" "$pkgs"
done

# The warm run must be fully cache-served: every package a hit, and
# neither lazy fact base built.
[ "$(field "$work/warm.json" cacheHits)" = "$pkgs" ] || {
	echo "lintstats: warm run was not fully cache-served" >&2
	exit 1
}
[ "$(field "$work/warm.json" ssaBuildMs)" = "0" ] || {
	echo "lintstats: warm run rebuilt the SSA facts" >&2
	exit 1
}
[ "$(field "$work/warm.json" concBuildMs)" = "0" ] || {
	echo "lintstats: warm run rebuilt the concurrency facts" >&2
	exit 1
}
