#!/usr/bin/env sh
# Tier-1 verification: vet, build, lint, test.
#
# raplint (cmd/raplint) is this repo's own static-analysis pass; it
# enforces the determinism and unit invariants described in DESIGN.md
# §6 and exits nonzero on any finding.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== raplint"
go run ./cmd/raplint -timing -json lint-report.json ./...
# Belt and braces: raplint already exits nonzero on findings, but the
# report must also record zero non-suppressed findings — this catches a
# future exit-code regression in the driver itself.
grep -q '"findings": \[\]' lint-report.json || {
	echo "verify: lint-report.json records non-suppressed findings" >&2
	exit 1
}
echo "== go test -race"
go test -race ./...
echo "== planner-bench smoke"
# rapbench re-reads and unmarshals the report itself (exits nonzero on a
# parse failure); this re-checks the file landed with the gate fields.
tmp_bench="$(mktemp)"
go run ./cmd/rapbench -planner-bench -quick -planner-out "$tmp_bench"
for field in sequential_build_ns fast_warm_build_ns build_speedup solver_speedup; do
	grep -q "\"$field\"" "$tmp_bench" || { echo "verify: $tmp_bench missing $field" >&2; exit 1; }
done
rm -f "$tmp_bench"
echo "== shard-equivalence smoke"
# One 2-shard run of the shard benchmark DAG must digest bit-identically
# to a sequential run; rapbench exits nonzero on any drift, so tier-1
# fails fast if the parallel engine diverges from the sequential one.
go run ./cmd/rapbench -shard-smoke
echo "== cluster-smoke"
# The fleet simulator (2 nodes x 4 GPUs, 6 jobs, both placement
# policies) must reproduce its report digests bit-identically across two
# from-scratch runs; rapbench exits nonzero on any drift.
go run ./cmd/rapbench -cluster-smoke
echo "verify: OK"
