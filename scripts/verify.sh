#!/usr/bin/env sh
# Tier-1 verification: vet, build, lint, test.
#
# raplint (cmd/raplint) is this repo's own static-analysis pass; it
# enforces the determinism and unit invariants described in DESIGN.md
# §6 and exits nonzero on any finding.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== raplint"
go run ./cmd/raplint -timing -json lint-report.json ./...
echo "== go test -race"
go test -race ./...
echo "verify: OK"
