#!/usr/bin/env sh
# Tier-1 verification: vet, build, lint, test.
#
# raplint (cmd/raplint) is this repo's own static-analysis pass; it
# enforces the determinism, unit, and concurrency-soundness invariants
# described in DESIGN.md §6 and exits nonzero on any finding.
set -eu

cd "$(dirname "$0")/.."

# Build the tool binaries once; every later step reuses them instead of
# paying a `go run` compile each time.
bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
go build -o "$bin/raplint" ./cmd/raplint
go build -o "$bin/rapbench" ./cmd/rapbench
echo "== raplint"
"$bin/raplint" -timing -json lint-report.json ./...
# Belt and braces: raplint already exits nonzero on findings, but the
# written report must also decode to zero findings — -check-report
# parses the artifact (a truncated or non-report file fails the gate,
# where the old textual grep silently passed it).
"$bin/raplint" -check-report lint-report.json || {
	echo "verify: lint-report.json records non-suppressed findings" >&2
	exit 1
}
echo "== go test -race"
go test -race ./...
echo "== planner-bench smoke"
# rapbench re-reads and unmarshals the report itself (exits nonzero on a
# parse failure); this re-checks the file landed with the gate fields.
tmp_bench="$(mktemp)"
"$bin/rapbench" -planner-bench -quick -planner-out "$tmp_bench"
for field in sequential_build_ns fast_warm_build_ns build_speedup solver_speedup; do
	grep -q "\"$field\"" "$tmp_bench" || { echo "verify: $tmp_bench missing $field" >&2; exit 1; }
done
rm -f "$tmp_bench"
echo "== shard-equivalence smoke"
# One 2-shard run of the shard benchmark DAG must digest bit-identically
# to a sequential run; rapbench exits nonzero on any drift, so tier-1
# fails fast if the parallel engine diverges from the sequential one.
"$bin/rapbench" -shard-smoke
echo "== cluster-smoke"
# The fleet simulator (2 nodes x 4 GPUs, 6 jobs, both placement
# policies) must reproduce its report digests bit-identically across two
# from-scratch runs; rapbench exits nonzero on any drift.
"$bin/rapbench" -cluster-smoke
echo "== lintstats"
# Cold-vs-warm raplint timing against a throwaway cache: asserts the
# warm run is fully cache-served (no SSA or concurrency fact builds).
RAPLINT_BIN="$bin/raplint" ./scripts/lintstats.sh
echo "verify: OK"
