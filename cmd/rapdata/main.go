// Command rapdata materializes a synthetic Criteo-shaped dataset on disk
// as sharded rapcol containers — the data-storage-node tier of the
// paper's Figure 2 pipeline. raptrain -data <dir> streams from it.
//
// Usage:
//
//	rapdata -out /tmp/criteo -dataset terabyte -plan 1 -batches 64 -samples 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"rap/internal/data"
	"rap/internal/rap"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	dataset := flag.String("dataset", "terabyte", "kaggle | terabyte")
	plan := flag.Int("plan", 1, "preprocessing plan index 0-3 (sets the feature shape)")
	batches := flag.Int("batches", 32, "number of batches to generate")
	samples := flag.Int("samples", 1024, "samples per batch")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "rapdata: -out is required")
		os.Exit(2)
	}
	w, err := rap.NewWorkload(rap.Dataset(*dataset), *plan, *samples, *seed)
	if err != nil {
		fatal(err)
	}
	if err := data.WriteDataset(*out, w.Gen, *batches, *samples); err != nil {
		fatal(err)
	}
	ds, err := data.OpenDataset(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d batches × %d samples (%d dense + %d sparse features) in %d shards to %s\n",
		ds.Meta.Batches, ds.Meta.SamplesPerBatch, w.Gen.NumDense, w.Gen.NumSparse, len(ds.Meta.Shards), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapdata:", err)
	os.Exit(1)
}
