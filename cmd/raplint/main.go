// raplint runs the project's domain-specific static analyzers over the
// module: maporder, seededrand, floateq, unitmix and panicpath guard
// the determinism and unit invariants the simulator's golden digests
// depend on (see internal/lint and DESIGN.md).
//
// Usage:
//
//	go run ./cmd/raplint [packages]   # default ./...
//	go run ./cmd/raplint -list       # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings can
// be suppressed with `//lint:ignore <analyzer> <reason>` on or above
// the offending line.
package main

import (
	"flag"
	"fmt"
	"os"

	"rap/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raplint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "raplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
