// raplint runs the project's domain-specific static analyzers over the
// module. The v1 local analyzers — maporder, seededrand, floateq,
// panicpath — guard per-package determinism and unit invariants; the
// v2 whole-program analyzers — detaint, guardedby, goroutinecapture,
// unusedignore — follow nondeterminism across the call graph, enforce
// `// guarded by` mutex contracts, inspect goroutine closures, and
// keep the //lint:ignore inventory honest; the v3 flow-sensitive
// analyzers — dimcheck, floatreduce — propagate `//rap:unit`
// dimensions through an SSA value-flow layer and flag float
// accumulations whose order is not statically deterministic; and the
// v4 concurrency-soundness analyzers — lockorder, atomicplain,
// wgcheck, goroutineleak — find lock-order cycles across the call
// graph, mixed atomic/plain access to the same word, WaitGroup misuse,
// and goroutines that can block forever (see internal/lint and
// DESIGN.md §6).
//
// Usage:
//
//	go run ./cmd/raplint [flags] [packages]   # default ./...
//	go run ./cmd/raplint -list                # describe the analyzers
//	go run ./cmd/raplint -check-report FILE   # gate on a prior -json report
//
// Flags:
//
//	-json FILE         write a machine-readable report (findings + stats); "-" for stdout
//	-sarif FILE        write a SARIF 2.1.0 log; "-" for stdout
//	-check-report FILE gate mode: read a previously written -json report
//	                   and exit 1 if it carries findings, 2 if it is not
//	                   a raplint report; no analysis is run
//	-timing            print per-analyzer wall time and cache stats to stderr
//	-nocache           disable the per-package content-hash result cache
//	-cache-dir D       override the cache directory (default per-user cache)
//	-jobs N            concurrent package analysis (default GOMAXPROCS)
//	-legacy-unitmix    also run the retired v1 unitmix analyzer (dimcheck
//	                   subsumes it; the flag exists for comparison runs)
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings can
// be suppressed with `//lint:ignore <analyzer> <reason>` on or above
// the offending line; deterministic entry points are declared with
// `//rap:deterministic` in a function's doc comment; units are declared
// with `//rap:unit <unit>` on struct fields and var/const specs, or
// `//rap:unit <param|return> <unit>` in a function's doc comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"rap/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.String("json", "", "write a JSON report to this file (\"-\" for stdout)")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	timing := flag.Bool("timing", false, "print per-analyzer wall time and cache stats to stderr")
	noCache := flag.Bool("nocache", false, "disable the per-package result cache")
	cacheDir := flag.String("cache-dir", "", "cache directory (default: per-user cache)")
	jobs := flag.Int("jobs", 0, "concurrent package analysis (default GOMAXPROCS)")
	legacyUnitmix := flag.Bool("legacy-unitmix", false, "also run the retired v1 unitmix analyzer (subsumed by dimcheck)")
	checkReport := flag.String("check-report", "", "gate on a previously written -json report instead of analyzing")
	flag.Parse()

	if *checkReport != "" {
		runCheckReport(*checkReport)
		return
	}

	analyzers := lint.All()
	if *legacyUnitmix {
		analyzers = append(analyzers, lint.UnitMix)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	findings, stats, err := lint.RunWithOptions(lint.Options{
		Dir:       ".",
		Patterns:  flag.Args(),
		Analyzers: analyzers,
		NoCache:   *noCache,
		CacheDir:  *cacheDir,
		Jobs:      *jobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "raplint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if err := writeReport(*jsonOut, func(w *os.File) error {
		return lint.WriteJSONReport(w, ".", findings, stats)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "raplint:", err)
		os.Exit(2)
	}
	if err := writeReport(*sarifOut, func(w *os.File) error {
		return lint.WriteSARIF(w, ".", analyzers, findings)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "raplint:", err)
		os.Exit(2)
	}
	if *timing {
		printTiming(stats)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "raplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runCheckReport is the CI gate: decode an existing lint-report
// artifact and exit 1 if it carries findings (printing them), 2 if the
// file is missing or not a raplint report. A broken artifact must fail
// the gate — the grep this replaces treated it as clean.
func runCheckReport(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raplint:", err)
		os.Exit(2)
	}
	defer f.Close()
	lines, err := lint.CheckReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raplint: %s: %v\n", path, err)
		os.Exit(2)
	}
	if len(lines) > 0 {
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Fprintf(os.Stderr, "raplint: %s carries %d finding(s)\n", path, len(lines))
		os.Exit(1)
	}
}

func writeReport(path string, write func(*os.File) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printTiming(stats *lint.Stats) {
	fmt.Fprintf(os.Stderr, "raplint: %d packages (%d cached) in %s (load %s, analyze %s, ssa build %s, conc build %s)\n",
		stats.Packages, stats.CacheHits, round(stats.Total), round(stats.Load), round(stats.Analyze), round(stats.SSABuild), round(stats.ConcBuild))
	names := make([]string, 0, len(stats.PerAnalyzer))
	for name := range stats.PerAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", name, round(stats.PerAnalyzer[name]))
	}
}

func round(d time.Duration) time.Duration {
	return d.Round(10 * time.Microsecond)
}
