// Command rapbench regenerates the RAP paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	rapbench -exp all                # everything (Figure 9 full grid is slow)
//	rapbench -exp fig9 -quick        # reduced Figure 9 grid
//	rapbench -exp fig1a,fig11,tab4   # comma-separated subset
//	rapbench -list                   # list experiment ids
//	rapbench -engine-bench           # time the gpusim engine, write BENCH_engine.json
//	rapbench -chaos                  # perturbation-severity sweep, write BENCH_chaos.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rap/internal/experiments"
	"rap/internal/gpusim"
)

type renderer interface{ Render() string }

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (see -list)")
	quick := flag.Bool("quick", false, "reduced grids for slow experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	engineBench := flag.Bool("engine-bench", false, "benchmark the gpusim engine and exit")
	benchOut := flag.String("bench-out", "BENCH_engine.json", "output path for -engine-bench results")
	chaosMode := flag.Bool("chaos", false, "run the perturbation-severity sweep and exit")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output path for the -chaos JSON report")
	chaosSeed := flag.Int64("chaos-seed", 7, "seed for -chaos perturbation plans")
	chaosPlan := flag.Int("chaos-plan", 1, "preprocessing plan for -chaos (0-3)")
	chaosGPUs := flag.Int("chaos-gpus", 4, "cluster size for -chaos")
	chaosTrace := flag.String("chaos-trace", "", "optional Chrome trace path: RAP at top severity with perturbation spans")
	flag.Parse()

	if *engineBench {
		if err := runEngineBench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: engine-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaosMode {
		severities := []float64{0.25, 0.5, 0.75}
		if *quick {
			*chaosGPUs = 2
		}
		r, err := experiments.ChaosSweep(*chaosPlan, *chaosGPUs, severities, *chaosSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		f, err := os.Create(*chaosOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nchaos report -> %s\n", *chaosOut)
		if *chaosTrace != "" {
			tf, err := os.Create(*chaosTrace)
			if err == nil {
				err = r.WriteChaosTrace(tf)
				if cerr := tf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("chaos trace -> %s\n", *chaosTrace)
		}
		return
	}

	ids := []string{"fig1a", "fig1b", "fig1c", "fig5", "tab5", "fig9", "fig10", "fig11", "tab4", "fig12", "power"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, id := range ids {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "rapbench: %s: %v\n", id, err)
		os.Exit(1)
	}
	show := func(id string, r renderer, err error) {
		if err != nil {
			fail(id, err)
		}
		fmt.Printf("==================== %s ====================\n%s\n", id, r.Render())
	}

	if want["fig1a"] {
		r, err := experiments.Figure1a()
		show("fig1a", r, err)
	}
	if want["fig1b"] {
		r, err := experiments.Figure1b()
		show("fig1b", r, err)
	}
	if want["fig1c"] {
		r, err := experiments.Figure1c()
		show("fig1c", r, err)
	}
	if want["fig5"] {
		r, err := experiments.Figure5()
		show("fig5", r, err)
	}
	if want["tab5"] {
		r, err := experiments.Table5()
		show("tab5", r, err)
	}
	if want["fig9"] {
		cfg := experiments.DefaultFigure9()
		if *quick {
			cfg = experiments.QuickFigure9()
		}
		r, err := experiments.Figure9(cfg)
		show("fig9", r, err)
	}
	if want["fig10"] {
		plans := []int{1, 2, 3}
		gpus := 8
		if *quick {
			plans, gpus = []int{1}, 4
		}
		r, err := experiments.Figure10(plans, gpus)
		show("fig10", r, err)
	}
	if want["fig11"] || want["tab4"] {
		sweep := []int{0, 8, 16, 32, 64, 96, 128}
		gpus := 4
		if *quick {
			sweep, gpus = []int{0, 32, 96}, 2
		}
		r, err := experiments.Figure11(sweep, gpus)
		if err != nil {
			fail("fig11", err)
		}
		if want["fig11"] {
			show("fig11", r, nil)
		}
		if want["tab4"] {
			show("tab4", experiments.Table4(r), nil)
		}
	}
	if want["fig12"] {
		r, err := experiments.Figure12(4)
		show("fig12", r, err)
	}
	if want["power"] {
		r, err := experiments.PowerStudy(1, 4)
		show("power", r, err)
	}
}

// runEngineBench times the gpusim engine on the canonical benchmark DAG
// (the same workload as BenchmarkEngine) and writes the result to path
// as JSON, for cross-commit regression tracking.
func runEngineBench(path string) error {
	const (
		warmupRuns = 3
		timedRuns  = 30
	)
	for i := 0; i < warmupRuns; i++ {
		if _, err := gpusim.NewBenchmarkSim().Run(); err != nil {
			return err
		}
	}
	var total time.Duration
	best := time.Duration(1<<63 - 1)
	for i := 0; i < timedRuns; i++ {
		s := gpusim.NewBenchmarkSim()
		start := time.Now()
		if _, err := s.Run(); err != nil {
			return err
		}
		d := time.Since(start)
		total += d
		if d < best {
			best = d
		}
	}
	report := struct {
		Name     string `json:"name"`
		Runs     int    `json:"runs"`
		NsPerOp  int64  `json:"ns_per_op"`
		BestNs   int64  `json:"best_ns"`
		Kernels  int    `json:"kernels"`
		GPUs     int    `json:"gpus"`
		Executed string `json:"executed"`
	}{
		Name:     "BenchmarkEngine",
		Runs:     timedRuns,
		NsPerOp:  total.Nanoseconds() / timedRuns,
		BestNs:   best.Nanoseconds(),
		Kernels:  gpusim.BenchKernels,
		GPUs:     gpusim.BenchGPUs,
		Executed: time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("engine-bench: %s/op (best %s) over %d runs -> %s\n",
		time.Duration(report.NsPerOp), best, timedRuns, path)
	return nil
}
