// Command rapbench regenerates the RAP paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	rapbench -exp all                # everything (Figure 9 full grid is slow)
//	rapbench -exp fig9 -quick        # reduced Figure 9 grid
//	rapbench -exp fig1a,fig11,tab4   # comma-separated subset
//	rapbench -list                   # list experiment ids
//	rapbench -engine-bench           # time the gpusim engine, write BENCH_engine.json
//	rapbench -chaos                  # perturbation-severity sweep, write BENCH_chaos.json
//	rapbench -planner-bench          # time the online planner, write BENCH_planner.json
//	rapbench -cluster                # fleet scheduling at 1024 GPUs, write BENCH_cluster.json
//	rapbench -shard-smoke            # sharded-engine digest gate (verify.sh)
//	rapbench -cluster-smoke          # fleet determinism gate (verify.sh)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rap/internal/experiments"
	"rap/internal/gpusim"
	"rap/internal/milp"
	"rap/internal/rap"
)

type renderer interface{ Render() string }

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (see -list)")
	quick := flag.Bool("quick", false, "reduced grids for slow experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	engineBench := flag.Bool("engine-bench", false, "benchmark the gpusim engine and exit")
	benchOut := flag.String("bench-out", "BENCH_engine.json", "output path for -engine-bench results")
	shardsFlag := flag.String("shards", "1,2,4,8", "comma-separated shard counts for the -engine-bench scaling series")
	shardSmoke := flag.Bool("shard-smoke", false, "quick sharded-vs-sequential digest equivalence check and exit (used by verify.sh)")
	chaosShards := flag.Int("chaos-shards", 0, "simulator engine shards for -chaos (0 = sequential engine)")
	chaosMode := flag.Bool("chaos", false, "run the perturbation-severity sweep and exit")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output path for the -chaos JSON report")
	chaosSeed := flag.Int64("chaos-seed", 7, "seed for -chaos perturbation plans")
	chaosPlan := flag.Int("chaos-plan", 1, "preprocessing plan for -chaos (0-3)")
	chaosGPUs := flag.Int("chaos-gpus", 4, "cluster size for -chaos")
	chaosTrace := flag.String("chaos-trace", "", "optional Chrome trace path: RAP at top severity with perturbation spans")
	plannerBench := flag.Bool("planner-bench", false, "benchmark the online planner and exit")
	plannerOut := flag.String("planner-out", "BENCH_planner.json", "output path for -planner-bench results")
	clusterMode := flag.Bool("cluster", false, "run the multi-tenant fleet-scheduling experiment and exit")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "output path for the -cluster JSON report")
	clusterNodes := flag.Int("cluster-nodes", 128, "fleet NVSwitch nodes for -cluster")
	clusterNodeGPUs := flag.Int("cluster-node-gpus", 8, "GPUs per node for -cluster")
	clusterJobs := flag.Int("cluster-jobs", 180, "job-trace length for -cluster")
	clusterSeed := flag.Int64("cluster-seed", 1, "seed for the -cluster job trace")
	clusterSmoke := flag.Bool("cluster-smoke", false, "quick fleet double-run digest equality check and exit (used by verify.sh)")
	flag.Usage = usage
	flag.Parse()

	if *shardSmoke {
		if err := runShardSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: shard-smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterSmoke {
		if err := runClusterSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: cluster-smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterMode {
		cfg := experiments.ClusterSweepConfig{
			Nodes:       *clusterNodes,
			GPUsPerNode: *clusterNodeGPUs,
			Jobs:        *clusterJobs,
			Seed:        *clusterSeed,
		}
		if *quick {
			cfg.Nodes, cfg.GPUsPerNode, cfg.Jobs = 8, 4, 24
		}
		if err := runCluster(*clusterOut, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: cluster: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *engineBench {
		shards, err := parseShards(*shardsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: engine-bench: %v\n", err)
			os.Exit(1)
		}
		if err := runEngineBench(*benchOut, shards); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: engine-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *plannerBench {
		if err := runPlannerBench(*plannerOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: planner-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaosMode {
		severities := []float64{0.25, 0.5, 0.75}
		if *quick {
			*chaosGPUs = 2
		}
		r, err := experiments.ChaosSweepEngine(*chaosPlan, *chaosGPUs, severities, *chaosSeed,
			gpusim.EngineOptions{Shards: *chaosShards})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		f, err := os.Create(*chaosOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nchaos report -> %s\n", *chaosOut)
		if *chaosTrace != "" {
			tf, err := os.Create(*chaosTrace)
			if err == nil {
				err = r.WriteChaosTrace(tf)
				if cerr := tf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("chaos trace -> %s\n", *chaosTrace)
		}
		return
	}

	ids := []string{"fig1a", "fig1b", "fig1c", "fig5", "tab5", "fig9", "fig10", "fig11", "tab4", "fig12", "power"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, id := range ids {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "rapbench: %s: %v\n", id, err)
		os.Exit(1)
	}
	show := func(id string, r renderer, err error) {
		if err != nil {
			fail(id, err)
		}
		fmt.Printf("==================== %s ====================\n%s\n", id, r.Render())
	}

	if want["fig1a"] {
		r, err := experiments.Figure1a()
		show("fig1a", r, err)
	}
	if want["fig1b"] {
		r, err := experiments.Figure1b()
		show("fig1b", r, err)
	}
	if want["fig1c"] {
		r, err := experiments.Figure1c()
		show("fig1c", r, err)
	}
	if want["fig5"] {
		r, err := experiments.Figure5()
		show("fig5", r, err)
	}
	if want["tab5"] {
		r, err := experiments.Table5()
		show("tab5", r, err)
	}
	if want["fig9"] {
		cfg := experiments.DefaultFigure9()
		if *quick {
			cfg = experiments.QuickFigure9()
		}
		r, err := experiments.Figure9(cfg)
		show("fig9", r, err)
	}
	if want["fig10"] {
		plans := []int{1, 2, 3}
		gpus := 8
		if *quick {
			plans, gpus = []int{1}, 4
		}
		r, err := experiments.Figure10(plans, gpus)
		show("fig10", r, err)
	}
	if want["fig11"] || want["tab4"] {
		sweep := []int{0, 8, 16, 32, 64, 96, 128}
		gpus := 4
		if *quick {
			sweep, gpus = []int{0, 32, 96}, 2
		}
		r, err := experiments.Figure11(sweep, gpus)
		if err != nil {
			fail("fig11", err)
		}
		if want["fig11"] {
			show("fig11", r, nil)
		}
		if want["tab4"] {
			show("tab4", experiments.Table4(r), nil)
		}
	}
	if want["fig12"] {
		r, err := experiments.Figure12(4)
		show("fig12", r, err)
	}
	if want["power"] {
		r, err := experiments.PowerStudy(1, 4)
		show("power", r, err)
	}
}

// parseShards parses the -shards flag ("1,2,4,8") into shard counts.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -shards list")
	}
	return out, nil
}

// timeRuns runs the DAG built by mk under opt (warmups first), returning
// the mean and best wall time plus the final run's Result.
func timeRuns(mk func() *gpusim.Sim, opt gpusim.EngineOptions, warmup, timed int) (mean, best time.Duration, last *gpusim.Result, err error) {
	for i := 0; i < warmup; i++ {
		s := mk()
		s.SetEngineOptions(opt)
		if _, err = s.Run(); err != nil {
			return 0, 0, nil, err
		}
	}
	var total time.Duration
	best = time.Duration(1<<63 - 1)
	for i := 0; i < timed; i++ {
		s := mk()
		s.SetEngineOptions(opt)
		start := time.Now()
		last, err = s.Run()
		if err != nil {
			return 0, 0, nil, err
		}
		d := time.Since(start)
		total += d
		if d < best {
			best = d
		}
	}
	return total / time.Duration(timed), best, last, nil
}

// shardPoint is one entry of the ns/event-vs-shards scaling series.
type shardPoint struct {
	Shards     int     `json:"shards"`
	NsPerRun   int64   `json:"ns_per_run"`
	BestNs     int64   `json:"best_ns"`
	Events     int     `json:"events"`
	NsPerEvent float64 `json:"ns_per_event"`
	// Speedup is sequential mean / this mean on the same DAG.
	Speedup float64 `json:"speedup_vs_sequential"`
	// DigestMatch records the in-run bit-identity self-check against
	// the sequential reference digest.
	DigestMatch bool `json:"digest_match"`
}

// runEngineBench times the gpusim engine on the canonical benchmark DAG
// (the same workload as BenchmarkEngine) plus the ns/event-vs-shards
// scaling series on the shard benchmark DAG, and writes the result to
// path as JSON, for cross-commit regression tracking. The series is
// timed with the raced fallback off (pure sharded path) so the numbers
// reflect the parallel engine, not engine racing; GOMAXPROCS is
// recorded because shard scaling is bounded by physical cores — on a
// single-core host every shard count times the same serial work.
func runEngineBench(path string, shards []int) error {
	const (
		warmupRuns      = 3
		timedRuns       = 30
		shardWarmupRuns = 2
		shardTimedRuns  = 10
	)
	mean, best, _, err := timeRuns(gpusim.NewBenchmarkSim, gpusim.EngineOptions{}, warmupRuns, timedRuns)
	if err != nil {
		return err
	}

	// Sequential reference for the scaling series: digest + timing on
	// the shard DAG.
	seqMean, seqBest, seqRes, err := timeRuns(gpusim.NewShardBenchmarkSim, gpusim.EngineOptions{}, shardWarmupRuns, shardTimedRuns)
	if err != nil {
		return err
	}
	seqDigest := gpusim.ResultDigest(seqRes)

	var series []shardPoint
	for _, n := range shards {
		p := shardPoint{Shards: n}
		if n == 1 {
			p.NsPerRun, p.BestNs = seqMean.Nanoseconds(), seqBest.Nanoseconds()
			p.Events, p.Speedup, p.DigestMatch = seqRes.Events, 1, true
		} else {
			m, b, res, err := timeRuns(gpusim.NewShardBenchmarkSim, gpusim.EngineOptions{Shards: n, NoRace: true}, shardWarmupRuns, shardTimedRuns)
			if err != nil {
				return err
			}
			p.NsPerRun, p.BestNs = m.Nanoseconds(), b.Nanoseconds()
			p.Events = res.Events
			p.DigestMatch = gpusim.ResultDigest(res) == seqDigest
			if m > 0 {
				p.Speedup = float64(seqMean) / float64(m)
			}
		}
		if p.Events > 0 {
			p.NsPerEvent = float64(p.NsPerRun) / float64(p.Events)
		}
		series = append(series, p)
		if !p.DigestMatch {
			return fmt.Errorf("shards=%d: result digest diverged from sequential", p.Shards)
		}
	}

	report := struct {
		Name         string       `json:"name"`
		Runs         int          `json:"runs"`
		NsPerOp      int64        `json:"ns_per_op"`
		BestNs       int64        `json:"best_ns"`
		Kernels      int          `json:"kernels"`
		GPUs         int          `json:"gpus"`
		GoMaxProcs   int          `json:"gomaxprocs"`
		ShardKernels int          `json:"shard_kernels"`
		ShardRuns    int          `json:"shard_runs"`
		ShardSeries  []shardPoint `json:"shard_series"`
		Executed     string       `json:"executed"`
	}{
		Name:         "BenchmarkEngine",
		Runs:         timedRuns,
		NsPerOp:      mean.Nanoseconds(),
		BestNs:       best.Nanoseconds(),
		Kernels:      gpusim.BenchKernels,
		GPUs:         gpusim.BenchGPUs,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		ShardKernels: gpusim.ShardBenchKernels,
		ShardRuns:    shardTimedRuns,
		ShardSeries:  series,
		Executed:     time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("engine-bench: %s/op (best %s) over %d runs, gomaxprocs %d -> %s\n",
		mean, best, timedRuns, report.GoMaxProcs, path)
	for _, p := range series {
		fmt.Printf("  shards %d: %s/run, %.0f ns/event, %.2fx vs sequential, digest ok\n",
			p.Shards, time.Duration(p.NsPerRun), p.NsPerEvent, p.Speedup)
	}
	return nil
}

// runShardSmoke is the verify.sh fast gate: one sharded run of the
// shard benchmark DAG must digest bit-identically to one sequential
// run. It exits non-zero on any drift so tier-1 fails before the full
// golden matrix would.
func runShardSmoke() error {
	seq := gpusim.NewShardBenchmarkSim()
	seqRes, err := seq.Run()
	if err != nil {
		return err
	}
	sh := gpusim.NewShardBenchmarkSim()
	sh.SetEngineOptions(gpusim.EngineOptions{Shards: 2, NoRace: true})
	shRes, err := sh.Run()
	if err != nil {
		return err
	}
	if seqRes.Events != shRes.Events {
		return fmt.Errorf("event count diverged: sequential %d, sharded %d", seqRes.Events, shRes.Events)
	}
	a, b := gpusim.ResultDigest(seqRes), gpusim.ResultDigest(shRes)
	if a != b {
		return fmt.Errorf("digest diverged: sequential %s, sharded %s", a[:16], b[:16])
	}
	fmt.Printf("shard-smoke: 2-shard digest %s matches sequential (%d events)\n", a[:16], seqRes.Events)
	return nil
}

// plannerBenchReport is the BENCH_planner.json schema: the planning-
// latency trajectory tracked across commits, the engine-bench way.
type plannerBenchReport struct {
	Name  string `json:"name"`
	GPUs  int    `json:"gpus"`
	Plan  int    `json:"plan"`
	Batch int    `json:"batch"`
	Runs  int    `json:"runs"`

	// BuildPlan latency: the sequential baseline disables every fast-
	// path layer (the pre-fast-path planner); cold runs start with
	// empty memo caches; warm runs are full rebuilds (plan cache off)
	// that reuse the probe and fusion-solve memos — the steady state of
	// the replanning loop this fast path exists for; plan-cache hits
	// answer an identical request outright. BuildSpeedup is the
	// replanning-loop rebuild (warm) over the pre-fast-path baseline.
	SequentialBuildNs int64   `json:"sequential_build_ns"`
	FastColdBuildNs   int64   `json:"fast_cold_build_ns"`
	FastWarmBuildNs   int64   `json:"fast_warm_build_ns"`
	PlanCacheHitNs    int64   `json:"plan_cache_hit_ns"`
	BuildSpeedup      float64 `json:"build_speedup"` // sequential / fast warm

	// Probe memoization inside one cold 8-GPU build, and fusion-solve
	// memoization across the warm rebuilds.
	ProbeHits    int `json:"probe_hits"`
	ProbeMisses  int `json:"probe_misses"`
	ProbesSaved  int `json:"probes_saved"`
	FusionHits   int `json:"fusion_hits"`
	FusionSolves int `json:"fusion_solves"`

	// MILP branch & bound, sequential vs parallel fan-out, summed over
	// the instance set.
	SolverInstances    int     `json:"solver_instances"`
	SolverSequentialNs int64   `json:"solver_sequential_ns"`
	SolverParallelNs   int64   `json:"solver_parallel_ns"`
	SolverSpeedup      float64 `json:"solver_speedup"`

	Executed string `json:"executed"`
}

// plannerBenchDAG builds one random fusion DAG for the solver leg,
// sized so the branch & bound does real work but completes.
func plannerBenchDAG(seed int64, n int) milp.Problem {
	rng := rand.New(rand.NewSource(seed))
	types := make([]int, n)
	deps := make([][]int, n)
	for i := 0; i < n; i++ {
		types[i] = rng.Intn(4)
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.15 {
				deps[i] = append(deps[i], j)
			}
		}
	}
	return milp.Problem{Types: types, Deps: deps}
}

// runPlannerBench times the online pass end to end (BuildPlan on an
// 8-GPU workload, sequential baseline vs fast path) plus the MILP
// solver in isolation, writes the JSON report, and re-reads it as a
// self-check.
func runPlannerBench(path string, quick bool) error {
	gpus, runs, solverN, solverSeeds := 8, 5, 26, 6
	if quick {
		gpus, runs, solverN, solverSeeds = 2, 2, 20, 2
	}
	const planIdx, batch = 2, 4096

	w, err := rap.NewWorkload(rap.Kaggle, planIdx, batch, 1)
	if err != nil {
		return err
	}
	cluster := gpusim.ClusterConfig{NumGPUs: gpus}
	sequentialPlanner := rap.PlannerOptions{
		SequentialProbes:   true,
		DisableProbeMemo:   true,
		SequentialSolve:    true,
		SequentialLowering: true,
		DisableFusionMemo:  true,
		DisablePlanCache:   true,
	}
	build := func(f *rap.Framework) (time.Duration, error) {
		start := time.Now()
		_, err := f.BuildPlan(rap.BuildOptions{})
		return time.Since(start), err
	}

	report := plannerBenchReport{
		Name:  "BenchmarkPlanner",
		GPUs:  gpus,
		Plan:  planIdx,
		Batch: batch,
		Runs:  runs,
	}

	// Sequential baseline: a fresh framework per run, every fast-path
	// layer disabled.
	var seqTotal time.Duration
	for i := 0; i < runs; i++ {
		f := rap.New(w, cluster)
		f.Planner = sequentialPlanner
		d, err := build(f)
		if err != nil {
			return err
		}
		seqTotal += d
	}
	report.SequentialBuildNs = seqTotal.Nanoseconds() / int64(runs)

	// Fast path, cold: a fresh framework (empty probe cache) per run.
	var coldTotal time.Duration
	for i := 0; i < runs; i++ {
		f := rap.New(w, cluster)
		f.Planner.DisablePlanCache = true
		d, err := build(f)
		if err != nil {
			return err
		}
		coldTotal += d
		if i == 0 {
			report.ProbeHits, report.ProbeMisses = f.ProbeCacheStats()
			report.ProbesSaved = report.ProbeHits
		}
	}
	report.FastColdBuildNs = coldTotal.Nanoseconds() / int64(runs)

	// Fast path, warm: one framework, probe and fusion-solve memos
	// carried across runs, plan cache off so every run is a genuine
	// rebuild — the replanning loop's steady state.
	warmF := rap.New(w, cluster)
	warmF.Planner.DisablePlanCache = true
	if _, err := build(warmF); err != nil {
		return err
	}
	var warmTotal time.Duration
	for i := 0; i < runs; i++ {
		d, err := build(warmF)
		if err != nil {
			return err
		}
		warmTotal += d
	}
	report.FastWarmBuildNs = warmTotal.Nanoseconds() / int64(runs)
	fusionHits, fusionMisses := warmF.FusionCacheStats()
	report.FusionHits, report.FusionSolves = fusionHits, fusionMisses

	// Plan-cache hit: identical request answered from cache.
	warmF.Planner.DisablePlanCache = false
	if _, err := build(warmF); err != nil { // populate
		return err
	}
	var hitTotal time.Duration
	for i := 0; i < runs; i++ {
		d, err := build(warmF)
		if err != nil {
			return err
		}
		hitTotal += d
	}
	report.PlanCacheHitNs = hitTotal.Nanoseconds() / int64(runs)
	if report.FastWarmBuildNs > 0 {
		report.BuildSpeedup = float64(report.SequentialBuildNs) / float64(report.FastWarmBuildNs)
	}

	// Solver leg: identical instances through the sequential and the
	// parallel search (results are bit-identical; only time differs).
	report.SolverInstances = solverSeeds
	for seed := int64(0); seed < int64(solverSeeds); seed++ {
		p := plannerBenchDAG(seed, solverN)
		p.Workers = 1
		start := time.Now()
		seqSol, err := milp.SolveSequential(p)
		if err != nil {
			return err
		}
		report.SolverSequentialNs += time.Since(start).Nanoseconds()
		p.Workers = 0
		start = time.Now()
		parSol, err := milp.Solve(p)
		if err != nil {
			return err
		}
		report.SolverParallelNs += time.Since(start).Nanoseconds()
		if seqSol.Objective != parSol.Objective {
			return fmt.Errorf("solver mismatch on seed %d: %d vs %d", seed, seqSol.Objective, parSol.Objective)
		}
	}
	if report.SolverParallelNs > 0 {
		report.SolverSpeedup = float64(report.SolverSequentialNs) / float64(report.SolverParallelNs)
	}
	report.Executed = time.Now().UTC().Format(time.RFC3339)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}

	// Self-check: the written report must parse and carry the fields
	// the acceptance gate reads.
	back, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var check plannerBenchReport
	if err := json.Unmarshal(back, &check); err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	if check.SequentialBuildNs <= 0 || check.FastColdBuildNs <= 0 || check.SolverSpeedup <= 0 {
		return fmt.Errorf("re-reading %s: incomplete report", path)
	}

	fmt.Printf("planner-bench: %d-GPU BuildPlan %s sequential -> %s cold / %s warm / %s cached (%.2fx), probes saved %d/%d, solver %.2fx -> %s\n",
		gpus,
		time.Duration(report.SequentialBuildNs),
		time.Duration(report.FastColdBuildNs),
		time.Duration(report.FastWarmBuildNs),
		time.Duration(report.PlanCacheHitNs),
		report.BuildSpeedup,
		report.ProbesSaved, report.ProbeHits+report.ProbeMisses,
		report.SolverSpeedup, path)
	return nil
}

// usage prints the mode-grouped help text, one group per family of
// rapbench entry points.
func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `rapbench regenerates the RAP paper's evaluation tables and benchmark reports.

Paper experiments (default mode):
  rapbench -exp all            every table and figure (Figure 9 full grid is slow)
  rapbench -exp fig9 -quick    reduced grids for slow experiments
  rapbench -list               list experiment ids

Benchmarks (each writes a JSON report and exits):
  rapbench -engine-bench       gpusim engine timing         -> BENCH_engine.json
  rapbench -planner-bench      online planner timing        -> BENCH_planner.json
  rapbench -chaos              perturbation-severity sweep  -> BENCH_chaos.json
  rapbench -cluster            multi-tenant fleet scheduling (1024 simulated GPUs,
                               RAP-aware packing vs first-fit) -> BENCH_cluster.json

Smoke gates (used by scripts/verify.sh; exit non-zero on drift):
  rapbench -shard-smoke        sharded engine bit-identical to sequential
  rapbench -cluster-smoke      fleet simulation digest-stable across reruns

Flags:
`)
	flag.PrintDefaults()
}

// runCluster runs the fleet-scheduling experiment twice from scratch
// and demands bit-identical per-policy digests — the fleet-scale
// determinism the cluster simulator promises — then writes the JSON
// report and re-reads it as a self-check.
func runCluster(path string, cfg experiments.ClusterSweepConfig) error {
	start := time.Now()
	res, err := experiments.ClusterSweep(cfg)
	if err != nil {
		return err
	}
	again, err := experiments.ClusterSweep(cfg)
	if err != nil {
		return err
	}
	if len(res.Rows) != len(again.Rows) {
		return fmt.Errorf("rerun produced %d policy rows, want %d", len(again.Rows), len(res.Rows))
	}
	for i, row := range res.Rows {
		if again.Rows[i].Digest != row.Digest {
			return fmt.Errorf("policy %s digest drifted across reruns: %s vs %s",
				row.Policy, row.Digest[:16], again.Rows[i].Digest[:16])
		}
	}
	fmt.Print(res.Render())

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Self-check: the written report must parse and carry the digests
	// the determinism gate compares.
	back, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var check experiments.ClusterResult
	if err := json.Unmarshal(back, &check); err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	if len(check.Rows) != len(res.Rows) {
		return fmt.Errorf("re-reading %s: %d rows, want %d", path, len(check.Rows), len(res.Rows))
	}
	for i, row := range check.Rows {
		if row.Digest == "" || row.Digest != res.Rows[i].Digest {
			return fmt.Errorf("re-reading %s: policy %s digest mismatch", path, row.Policy)
		}
	}

	fmt.Printf("\ncluster report -> %s (%d GPUs, %d jobs, double run in %s; digests stable)\n",
		path, res.GPUs, res.Jobs, time.Since(start).Round(time.Millisecond))
	return nil
}

// runClusterSmoke is the verify.sh gate: a 2-node x 4-GPU fleet with 6
// jobs, simulated twice from scratch; every policy's report digest
// must match bit for bit.
func runClusterSmoke() error {
	cfg := experiments.ClusterSweepConfig{Nodes: 2, GPUsPerNode: 4, Jobs: 6, MeanGapUs: 500}
	a, err := experiments.ClusterSweep(cfg)
	if err != nil {
		return err
	}
	b, err := experiments.ClusterSweep(cfg)
	if err != nil {
		return err
	}
	if len(a.Rows) != 2 || len(b.Rows) != 2 {
		return fmt.Errorf("expected 2 policy rows, got %d and %d", len(a.Rows), len(b.Rows))
	}
	for i, row := range a.Rows {
		if row.Digest == "" || row.Digest != b.Rows[i].Digest {
			return fmt.Errorf("policy %s digest diverged across reruns: %s vs %s",
				row.Policy, row.Digest[:16], b.Rows[i].Digest[:16])
		}
		if !(row.GPUUtil > 0 && row.GPUUtil <= 1) {
			return fmt.Errorf("policy %s utilization %g outside (0,1]", row.Policy, row.GPUUtil)
		}
		fmt.Printf("cluster-smoke: %s digest %s matches rerun (%d jobs on %d GPUs)\n",
			row.Policy, row.Digest[:16], a.Jobs, a.GPUs)
	}
	return nil
}
