// Command rapbench regenerates the RAP paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	rapbench -exp all                # everything (Figure 9 full grid is slow)
//	rapbench -exp fig9 -quick        # reduced Figure 9 grid
//	rapbench -exp fig1a,fig11,tab4   # comma-separated subset
//	rapbench -list                   # list experiment ids
//	rapbench -engine-bench           # time the gpusim engine, write BENCH_engine.json
//	rapbench -chaos                  # perturbation-severity sweep, write BENCH_chaos.json
//	rapbench -planner-bench          # time the online planner, write BENCH_planner.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"rap/internal/experiments"
	"rap/internal/gpusim"
	"rap/internal/milp"
	"rap/internal/rap"
)

type renderer interface{ Render() string }

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (see -list)")
	quick := flag.Bool("quick", false, "reduced grids for slow experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	engineBench := flag.Bool("engine-bench", false, "benchmark the gpusim engine and exit")
	benchOut := flag.String("bench-out", "BENCH_engine.json", "output path for -engine-bench results")
	chaosMode := flag.Bool("chaos", false, "run the perturbation-severity sweep and exit")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output path for the -chaos JSON report")
	chaosSeed := flag.Int64("chaos-seed", 7, "seed for -chaos perturbation plans")
	chaosPlan := flag.Int("chaos-plan", 1, "preprocessing plan for -chaos (0-3)")
	chaosGPUs := flag.Int("chaos-gpus", 4, "cluster size for -chaos")
	chaosTrace := flag.String("chaos-trace", "", "optional Chrome trace path: RAP at top severity with perturbation spans")
	plannerBench := flag.Bool("planner-bench", false, "benchmark the online planner and exit")
	plannerOut := flag.String("planner-out", "BENCH_planner.json", "output path for -planner-bench results")
	flag.Parse()

	if *engineBench {
		if err := runEngineBench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: engine-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *plannerBench {
		if err := runPlannerBench(*plannerOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: planner-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaosMode {
		severities := []float64{0.25, 0.5, 0.75}
		if *quick {
			*chaosGPUs = 2
		}
		r, err := experiments.ChaosSweep(*chaosPlan, *chaosGPUs, severities, *chaosSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		f, err := os.Create(*chaosOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nchaos report -> %s\n", *chaosOut)
		if *chaosTrace != "" {
			tf, err := os.Create(*chaosTrace)
			if err == nil {
				err = r.WriteChaosTrace(tf)
				if cerr := tf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rapbench: chaos: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("chaos trace -> %s\n", *chaosTrace)
		}
		return
	}

	ids := []string{"fig1a", "fig1b", "fig1c", "fig5", "tab5", "fig9", "fig10", "fig11", "tab4", "fig12", "power"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, id := range ids {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "rapbench: %s: %v\n", id, err)
		os.Exit(1)
	}
	show := func(id string, r renderer, err error) {
		if err != nil {
			fail(id, err)
		}
		fmt.Printf("==================== %s ====================\n%s\n", id, r.Render())
	}

	if want["fig1a"] {
		r, err := experiments.Figure1a()
		show("fig1a", r, err)
	}
	if want["fig1b"] {
		r, err := experiments.Figure1b()
		show("fig1b", r, err)
	}
	if want["fig1c"] {
		r, err := experiments.Figure1c()
		show("fig1c", r, err)
	}
	if want["fig5"] {
		r, err := experiments.Figure5()
		show("fig5", r, err)
	}
	if want["tab5"] {
		r, err := experiments.Table5()
		show("tab5", r, err)
	}
	if want["fig9"] {
		cfg := experiments.DefaultFigure9()
		if *quick {
			cfg = experiments.QuickFigure9()
		}
		r, err := experiments.Figure9(cfg)
		show("fig9", r, err)
	}
	if want["fig10"] {
		plans := []int{1, 2, 3}
		gpus := 8
		if *quick {
			plans, gpus = []int{1}, 4
		}
		r, err := experiments.Figure10(plans, gpus)
		show("fig10", r, err)
	}
	if want["fig11"] || want["tab4"] {
		sweep := []int{0, 8, 16, 32, 64, 96, 128}
		gpus := 4
		if *quick {
			sweep, gpus = []int{0, 32, 96}, 2
		}
		r, err := experiments.Figure11(sweep, gpus)
		if err != nil {
			fail("fig11", err)
		}
		if want["fig11"] {
			show("fig11", r, nil)
		}
		if want["tab4"] {
			show("tab4", experiments.Table4(r), nil)
		}
	}
	if want["fig12"] {
		r, err := experiments.Figure12(4)
		show("fig12", r, err)
	}
	if want["power"] {
		r, err := experiments.PowerStudy(1, 4)
		show("power", r, err)
	}
}

// runEngineBench times the gpusim engine on the canonical benchmark DAG
// (the same workload as BenchmarkEngine) and writes the result to path
// as JSON, for cross-commit regression tracking.
func runEngineBench(path string) error {
	const (
		warmupRuns = 3
		timedRuns  = 30
	)
	for i := 0; i < warmupRuns; i++ {
		if _, err := gpusim.NewBenchmarkSim().Run(); err != nil {
			return err
		}
	}
	var total time.Duration
	best := time.Duration(1<<63 - 1)
	for i := 0; i < timedRuns; i++ {
		s := gpusim.NewBenchmarkSim()
		start := time.Now()
		if _, err := s.Run(); err != nil {
			return err
		}
		d := time.Since(start)
		total += d
		if d < best {
			best = d
		}
	}
	report := struct {
		Name     string `json:"name"`
		Runs     int    `json:"runs"`
		NsPerOp  int64  `json:"ns_per_op"`
		BestNs   int64  `json:"best_ns"`
		Kernels  int    `json:"kernels"`
		GPUs     int    `json:"gpus"`
		Executed string `json:"executed"`
	}{
		Name:     "BenchmarkEngine",
		Runs:     timedRuns,
		NsPerOp:  total.Nanoseconds() / timedRuns,
		BestNs:   best.Nanoseconds(),
		Kernels:  gpusim.BenchKernels,
		GPUs:     gpusim.BenchGPUs,
		Executed: time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("engine-bench: %s/op (best %s) over %d runs -> %s\n",
		time.Duration(report.NsPerOp), best, timedRuns, path)
	return nil
}

// plannerBenchReport is the BENCH_planner.json schema: the planning-
// latency trajectory tracked across commits, the engine-bench way.
type plannerBenchReport struct {
	Name  string `json:"name"`
	GPUs  int    `json:"gpus"`
	Plan  int    `json:"plan"`
	Batch int    `json:"batch"`
	Runs  int    `json:"runs"`

	// BuildPlan latency: the sequential baseline disables every fast-
	// path layer (the pre-fast-path planner); cold runs start with
	// empty memo caches; warm runs are full rebuilds (plan cache off)
	// that reuse the probe and fusion-solve memos — the steady state of
	// the replanning loop this fast path exists for; plan-cache hits
	// answer an identical request outright. BuildSpeedup is the
	// replanning-loop rebuild (warm) over the pre-fast-path baseline.
	SequentialBuildNs int64   `json:"sequential_build_ns"`
	FastColdBuildNs   int64   `json:"fast_cold_build_ns"`
	FastWarmBuildNs   int64   `json:"fast_warm_build_ns"`
	PlanCacheHitNs    int64   `json:"plan_cache_hit_ns"`
	BuildSpeedup      float64 `json:"build_speedup"` // sequential / fast warm

	// Probe memoization inside one cold 8-GPU build, and fusion-solve
	// memoization across the warm rebuilds.
	ProbeHits    int `json:"probe_hits"`
	ProbeMisses  int `json:"probe_misses"`
	ProbesSaved  int `json:"probes_saved"`
	FusionHits   int `json:"fusion_hits"`
	FusionSolves int `json:"fusion_solves"`

	// MILP branch & bound, sequential vs parallel fan-out, summed over
	// the instance set.
	SolverInstances    int     `json:"solver_instances"`
	SolverSequentialNs int64   `json:"solver_sequential_ns"`
	SolverParallelNs   int64   `json:"solver_parallel_ns"`
	SolverSpeedup      float64 `json:"solver_speedup"`

	Executed string `json:"executed"`
}

// plannerBenchDAG builds one random fusion DAG for the solver leg,
// sized so the branch & bound does real work but completes.
func plannerBenchDAG(seed int64, n int) milp.Problem {
	rng := rand.New(rand.NewSource(seed))
	types := make([]int, n)
	deps := make([][]int, n)
	for i := 0; i < n; i++ {
		types[i] = rng.Intn(4)
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.15 {
				deps[i] = append(deps[i], j)
			}
		}
	}
	return milp.Problem{Types: types, Deps: deps}
}

// runPlannerBench times the online pass end to end (BuildPlan on an
// 8-GPU workload, sequential baseline vs fast path) plus the MILP
// solver in isolation, writes the JSON report, and re-reads it as a
// self-check.
func runPlannerBench(path string, quick bool) error {
	gpus, runs, solverN, solverSeeds := 8, 5, 26, 6
	if quick {
		gpus, runs, solverN, solverSeeds = 2, 2, 20, 2
	}
	const planIdx, batch = 2, 4096

	w, err := rap.NewWorkload(rap.Kaggle, planIdx, batch, 1)
	if err != nil {
		return err
	}
	cluster := gpusim.ClusterConfig{NumGPUs: gpus}
	sequentialPlanner := rap.PlannerOptions{
		SequentialProbes:   true,
		DisableProbeMemo:   true,
		SequentialSolve:    true,
		SequentialLowering: true,
		DisableFusionMemo:  true,
		DisablePlanCache:   true,
	}
	build := func(f *rap.Framework) (time.Duration, error) {
		start := time.Now()
		_, err := f.BuildPlan(rap.BuildOptions{})
		return time.Since(start), err
	}

	report := plannerBenchReport{
		Name:  "BenchmarkPlanner",
		GPUs:  gpus,
		Plan:  planIdx,
		Batch: batch,
		Runs:  runs,
	}

	// Sequential baseline: a fresh framework per run, every fast-path
	// layer disabled.
	var seqTotal time.Duration
	for i := 0; i < runs; i++ {
		f := rap.New(w, cluster)
		f.Planner = sequentialPlanner
		d, err := build(f)
		if err != nil {
			return err
		}
		seqTotal += d
	}
	report.SequentialBuildNs = seqTotal.Nanoseconds() / int64(runs)

	// Fast path, cold: a fresh framework (empty probe cache) per run.
	var coldTotal time.Duration
	for i := 0; i < runs; i++ {
		f := rap.New(w, cluster)
		f.Planner.DisablePlanCache = true
		d, err := build(f)
		if err != nil {
			return err
		}
		coldTotal += d
		if i == 0 {
			report.ProbeHits, report.ProbeMisses = f.ProbeCacheStats()
			report.ProbesSaved = report.ProbeHits
		}
	}
	report.FastColdBuildNs = coldTotal.Nanoseconds() / int64(runs)

	// Fast path, warm: one framework, probe and fusion-solve memos
	// carried across runs, plan cache off so every run is a genuine
	// rebuild — the replanning loop's steady state.
	warmF := rap.New(w, cluster)
	warmF.Planner.DisablePlanCache = true
	if _, err := build(warmF); err != nil {
		return err
	}
	var warmTotal time.Duration
	for i := 0; i < runs; i++ {
		d, err := build(warmF)
		if err != nil {
			return err
		}
		warmTotal += d
	}
	report.FastWarmBuildNs = warmTotal.Nanoseconds() / int64(runs)
	fusionHits, fusionMisses := warmF.FusionCacheStats()
	report.FusionHits, report.FusionSolves = fusionHits, fusionMisses

	// Plan-cache hit: identical request answered from cache.
	warmF.Planner.DisablePlanCache = false
	if _, err := build(warmF); err != nil { // populate
		return err
	}
	var hitTotal time.Duration
	for i := 0; i < runs; i++ {
		d, err := build(warmF)
		if err != nil {
			return err
		}
		hitTotal += d
	}
	report.PlanCacheHitNs = hitTotal.Nanoseconds() / int64(runs)
	if report.FastWarmBuildNs > 0 {
		report.BuildSpeedup = float64(report.SequentialBuildNs) / float64(report.FastWarmBuildNs)
	}

	// Solver leg: identical instances through the sequential and the
	// parallel search (results are bit-identical; only time differs).
	report.SolverInstances = solverSeeds
	for seed := int64(0); seed < int64(solverSeeds); seed++ {
		p := plannerBenchDAG(seed, solverN)
		p.Workers = 1
		start := time.Now()
		seqSol, err := milp.SolveSequential(p)
		if err != nil {
			return err
		}
		report.SolverSequentialNs += time.Since(start).Nanoseconds()
		p.Workers = 0
		start = time.Now()
		parSol, err := milp.Solve(p)
		if err != nil {
			return err
		}
		report.SolverParallelNs += time.Since(start).Nanoseconds()
		if seqSol.Objective != parSol.Objective {
			return fmt.Errorf("solver mismatch on seed %d: %d vs %d", seed, seqSol.Objective, parSol.Objective)
		}
	}
	if report.SolverParallelNs > 0 {
		report.SolverSpeedup = float64(report.SolverSequentialNs) / float64(report.SolverParallelNs)
	}
	report.Executed = time.Now().UTC().Format(time.RFC3339)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}

	// Self-check: the written report must parse and carry the fields
	// the acceptance gate reads.
	back, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var check plannerBenchReport
	if err := json.Unmarshal(back, &check); err != nil {
		return fmt.Errorf("re-reading %s: %w", path, err)
	}
	if check.SequentialBuildNs <= 0 || check.FastColdBuildNs <= 0 || check.SolverSpeedup <= 0 {
		return fmt.Errorf("re-reading %s: incomplete report", path)
	}

	fmt.Printf("planner-bench: %d-GPU BuildPlan %s sequential -> %s cold / %s warm / %s cached (%.2fx), probes saved %d/%d, solver %.2fx -> %s\n",
		gpus,
		time.Duration(report.SequentialBuildNs),
		time.Duration(report.FastColdBuildNs),
		time.Duration(report.FastWarmBuildNs),
		time.Duration(report.PlanCacheHitNs),
		report.BuildSpeedup,
		report.ProbesSaved, report.ProbeHits+report.ProbeMisses,
		report.SolverSpeedup, path)
	return nil
}
