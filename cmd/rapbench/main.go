// Command rapbench regenerates the RAP paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	rapbench -exp all                # everything (Figure 9 full grid is slow)
//	rapbench -exp fig9 -quick        # reduced Figure 9 grid
//	rapbench -exp fig1a,fig11,tab4   # comma-separated subset
//	rapbench -list                   # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rap/internal/experiments"
)

type renderer interface{ Render() string }

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (see -list)")
	quick := flag.Bool("quick", false, "reduced grids for slow experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	ids := []string{"fig1a", "fig1b", "fig1c", "fig5", "tab5", "fig9", "fig10", "fig11", "tab4", "fig12", "power"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, id := range ids {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "rapbench: %s: %v\n", id, err)
		os.Exit(1)
	}
	show := func(id string, r renderer, err error) {
		if err != nil {
			fail(id, err)
		}
		fmt.Printf("==================== %s ====================\n%s\n", id, r.Render())
	}

	if want["fig1a"] {
		r, err := experiments.Figure1a()
		show("fig1a", r, err)
	}
	if want["fig1b"] {
		r, err := experiments.Figure1b()
		show("fig1b", r, err)
	}
	if want["fig1c"] {
		r, err := experiments.Figure1c()
		show("fig1c", r, err)
	}
	if want["fig5"] {
		r, err := experiments.Figure5()
		show("fig5", r, err)
	}
	if want["tab5"] {
		r, err := experiments.Table5()
		show("tab5", r, err)
	}
	if want["fig9"] {
		cfg := experiments.DefaultFigure9()
		if *quick {
			cfg = experiments.QuickFigure9()
		}
		r, err := experiments.Figure9(cfg)
		show("fig9", r, err)
	}
	if want["fig10"] {
		plans := []int{1, 2, 3}
		gpus := 8
		if *quick {
			plans, gpus = []int{1}, 4
		}
		r, err := experiments.Figure10(plans, gpus)
		show("fig10", r, err)
	}
	if want["fig11"] || want["tab4"] {
		sweep := []int{0, 8, 16, 32, 64, 96, 128}
		gpus := 4
		if *quick {
			sweep, gpus = []int{0, 32, 96}, 2
		}
		r, err := experiments.Figure11(sweep, gpus)
		if err != nil {
			fail("fig11", err)
		}
		if want["fig11"] {
			show("fig11", r, nil)
		}
		if want["tab4"] {
			show("tab4", experiments.Table4(r), nil)
		}
	}
	if want["fig12"] {
		r, err := experiments.Figure12(4)
		show("fig12", r, err)
	}
	if want["power"] {
		r, err := experiments.PowerStudy(1, 4)
		show("power", r, err)
	}
}
