// Command raptrain runs end-to-end online DLRM training with RAP: it
// searches the co-running plan, simulates the pipelined execution for
// timing, and (optionally) runs real data-level training — generating
// raw batches, executing the full preprocessing plan and stepping the
// hybrid-parallel trainer — reporting throughput and loss.
//
// Usage:
//
//	raptrain -dataset terabyte -plan 1 -gpus 4 -iters 20
//	raptrain -plan 0 -functional -iters 50     # real data + real model
//	raptrain -plan 1 -system MPS               # run a baseline instead
package main

import (
	"flag"
	"fmt"
	"os"

	"rap/internal/baselines"
	"rap/internal/data"
	"rap/internal/gpusim"
	"rap/internal/rap"
	"rap/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "terabyte", "kaggle | terabyte")
	plan := flag.Int("plan", 1, "preprocessing plan index 0-3 (Table 3)")
	gpus := flag.Int("gpus", 4, "number of simulated GPUs")
	batch := flag.Int("batch", 4096, "per-GPU batch size")
	iters := flag.Int("iters", 20, "training iterations")
	system := flag.String("system", "RAP", "system to run (RAP, Sequential, CUDA-Stream, MPS, TorchArrow, Ideal)")
	functional := flag.Bool("functional", false, "also run real data-level training (small model) and report losses")
	dataDir := flag.String("data", "", "stream raw batches for the functional run from a rapdata dataset directory")
	traceOut := flag.String("trace", "", "write a Chrome trace (chrome://tracing JSON) of the simulated run")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	w, err := rap.NewWorkload(rap.Dataset(*dataset), *plan, *batch, *seed)
	if err != nil {
		fatal(err)
	}
	cluster := gpusim.ClusterConfig{NumGPUs: *gpus, HostCores: 48}

	fmt.Printf("workload: %s / %s — %d dense + %d sparse features, %d ops, %d tables\n",
		w.Dataset, w.Plan.Name, w.Plan.NumDense, w.Plan.NumSparse, w.Plan.NumOps(), w.Plan.NumTables)

	res, err := baselines.Run(baselines.System(*system), w, cluster, *iters)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: steady iteration latency %.0f us, throughput %.0f samples/s\n",
		res.System, res.IterLatency, res.Throughput)
	if res.Plan != nil {
		fmt.Printf("predicted exposed latency (worst GPU): %.0f us\n", res.Plan.TotalPredictedExposed())
		fmt.Printf("mapping: %s (%d rebalancing moves, %.0f comm bytes/batch)\n",
			res.Plan.Mapping.Strategy, res.Plan.Mapping.Moves, res.Plan.Mapping.TotalComm())
	}
	ideal, err := baselines.Run(baselines.SystemIdeal, w, cluster, *iters)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ideal (no preprocessing): %.0f samples/s — %s achieves %.1f%% of it\n",
		ideal.Throughput, res.System, 100*res.Throughput/ideal.Throughput)

	if *traceOut != "" && res.Stats != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChromeTrace(f, res.Stats.Result, *gpus); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing)\n", *traceOut)
	}

	if *functional {
		fmt.Println("\nfunctional run (real preprocessing + hybrid-parallel training, small model):")
		fw := w.ShrinkForFunctional()
		workers := *gpus
		globalBatch := 64 * workers
		var out *rap.FunctionalResult
		if *dataDir != "" {
			ds, err := data.OpenDataset(*dataDir)
			if err != nil {
				fatal(err)
			}
			it := ds.Batches()
			it.Loop = true
			defer it.Close()
			fmt.Printf("  streaming raw batches from %s (%d batches on disk)\n", *dataDir, ds.Meta.Batches)
			out, err = rap.RunFunctionalFrom(fw, workers, it, *iters, *seed, 0.05)
			if err != nil {
				fatal(err)
			}
		} else {
			var err error
			out, err = rap.RunFunctional(fw, workers, globalBatch, *iters, *seed)
			if err != nil {
				fatal(err)
			}
		}
		for i, loss := range out.Losses {
			if i%5 == 0 || i == len(out.Losses)-1 {
				fmt.Printf("  iter %3d  loss %.4f\n", i, loss)
			}
		}
		fmt.Printf("  replicas in sync: %v\n", out.InSync)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "raptrain:", err)
	os.Exit(1)
}
