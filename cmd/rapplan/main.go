// Command rapplan runs RAP's offline + online optimization passes for a
// workload and prints the searched co-running plan: the inter-GPU graph
// mapping, the horizontal-fusion result, the per-stage co-run schedule
// and the predicted exposed latency — optionally as a JSON artifact.
//
// Usage:
//
//	rapplan -dataset terabyte -plan 1 -gpus 4 -batch 4096
//	rapplan -plan 2 -gpus 8 -json
//	rapplan -plan 1 -strategy dl          # inspect a baseline mapping
//	rapplan -plan 1 -train-predictor      # use the GBDT predictor
package main

import (
	"flag"
	"fmt"
	"os"

	"rap/internal/gpusim"
	"rap/internal/rap"
)

func main() {
	dataset := flag.String("dataset", "terabyte", "kaggle | terabyte")
	plan := flag.Int("plan", 1, "preprocessing plan index 0-3 (Table 3)")
	gpus := flag.Int("gpus", 4, "number of simulated GPUs")
	batch := flag.Int("batch", 4096, "per-GPU batch size")
	strategy := flag.String("strategy", "rap", "mapping strategy: rap | dp | dl")
	noFusion := flag.Bool("no-fusion", false, "disable horizontal fusion")
	noSharding := flag.Bool("no-sharding", false, "disable resource-aware kernel sharding")
	trainPred := flag.Bool("train-predictor", false, "train the GBDT latency predictor (offline pass) instead of the analytic model")
	asJSON := flag.Bool("json", false, "emit the machine-readable plan artifact")
	flag.Parse()

	w, err := rap.NewWorkload(rap.Dataset(*dataset), *plan, *batch, 1)
	if err != nil {
		fatal(err)
	}
	f := rap.New(w, gpusim.ClusterConfig{NumGPUs: *gpus})
	if *trainPred {
		acc, err := f.OfflineTrainPredictor(6000, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "offline pass: predictor accuracy@10%% per category: %v\n", acc)
	}
	p, err := f.BuildPlan(rap.BuildOptions{
		Strategy:   rap.MappingStrategy(*strategy),
		NoFusion:   *noFusion,
		NoSharding: *noSharding,
	})
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		js, err := rap.MarshalPlan(p)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(js)
		fmt.Println()
		return
	}
	fmt.Print(rap.CodeGen(p))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapplan:", err)
	os.Exit(1)
}
