package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"rap/internal/baselines"
	"rap/internal/chaos"
	"rap/internal/gpusim"
	"rap/internal/trace"
)

// ChaosSystems lists the systems the perturbation sweep compares: RAP
// against the three GPU-sharing baselines. TorchArrow and Ideal are
// excluded — the sweep studies how GPU-sharing strategies absorb GPU-side
// adversity, which barely touches a CPU-preprocessing or
// no-preprocessing system.
func ChaosSystems() []baselines.System {
	return []baselines.System{
		baselines.SystemSequential,
		baselines.SystemStream,
		baselines.SystemMPS,
		baselines.SystemRAP,
	}
}

// ChaosCell is one (system, severity) measurement.
type ChaosCell struct {
	System   baselines.System `json:"system"`
	Severity float64          `json:"severity"`
	// MakespanUs is the perturbed end-to-end makespan.
	MakespanUs float64 `json:"makespan_us"`
	// BaseMakespanUs is the same system's unperturbed makespan.
	BaseMakespanUs float64 `json:"base_makespan_us"`
	// DegradationPct is 100·(makespan−base)/base.
	DegradationPct float64 `json:"degradation_pct"`
	// Throughput is perturbed steady-state samples/s.
	Throughput float64 `json:"throughput"`
}

// ChaosResult is the perturbation-severity sweep: per-system makespan
// degradation under shared, seeded adverse conditions.
type ChaosResult struct {
	Plan       int          `json:"plan"`
	GPUs       int          `json:"gpus"`
	Seed       int64        `json:"seed"`
	HorizonUs  float64      `json:"horizon_us"`
	Severities []float64    `json:"severities"`
	Cells      []ChaosCell  `json:"cells"`
	Plans      []chaos.Plan `json:"plans"`
}

// ChaosSweep measures how gracefully each GPU-sharing strategy degrades
// under injected adversity. For every severity level one plan is
// generated from the seed (windows covering the unperturbed horizon)
// and applied to every system identically, so rows are comparable: the
// only varying factor is the sharing strategy.
func ChaosSweep(plan, gpus int, severities []float64, seed int64) (*ChaosResult, error) {
	return ChaosSweepEngine(plan, gpus, severities, seed, gpusim.EngineOptions{})
}

// ChaosSweepEngine is ChaosSweep with an explicit simulator engine
// selection (engine.Shards > 1 opts every system's simulation into the
// sharded parallel event engine). The sweep's numbers are identical
// either way — sharded results are bit-identical — so the knob only
// changes how long the sweep takes on multi-core hosts.
func ChaosSweepEngine(plan, gpus int, severities []float64, seed int64, engine gpusim.EngineOptions) (*ChaosResult, error) {
	if len(severities) == 0 {
		severities = []float64{0.25, 0.5, 0.75}
	}
	if gpus <= 0 {
		gpus = 4
	}
	w, err := workloadFor(plan, 4096)
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{Plan: plan, GPUs: gpus, Seed: seed, Severities: severities}

	// Unperturbed baselines first: per-system reference makespans, and
	// the horizon perturbation windows must cover.
	base := map[baselines.System]float64{}
	for _, sys := range ChaosSystems() {
		r, err := baselines.RunEngine(sys, w, cluster(gpus), Iterations, nil, engine)
		if err != nil {
			return nil, err
		}
		base[sys] = r.Stats.Result.Makespan
		if r.Stats.Result.Makespan > res.HorizonUs {
			res.HorizonUs = r.Stats.Result.Makespan
		}
	}

	for _, sev := range severities {
		cp, err := chaos.NewPlan(seed, chaos.Scenario{
			NumGPUs:   gpus,
			HorizonUs: res.HorizonUs,
			Severity:  sev,
		})
		if err != nil {
			return nil, err
		}
		res.Plans = append(res.Plans, *cp)
		for _, sys := range ChaosSystems() {
			r, err := baselines.RunEngine(sys, w, cluster(gpus), Iterations, cp, engine)
			if err != nil {
				return nil, err
			}
			mk := r.Stats.Result.Makespan
			cell := ChaosCell{
				System:         sys,
				Severity:       sev,
				MakespanUs:     mk,
				BaseMakespanUs: base[sys],
				Throughput:     r.Throughput,
			}
			if cell.BaseMakespanUs > 0 {
				cell.DegradationPct = 100 * (mk - cell.BaseMakespanUs) / cell.BaseMakespanUs
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func (r *ChaosResult) lookup(sys baselines.System, sev float64) *ChaosCell {
	for i := range r.Cells {
		//lint:ignore floateq severity keys are copied verbatim from r.Severities
		if r.Cells[i].System == sys && r.Cells[i].Severity == sev {
			return &r.Cells[i]
		}
	}
	return nil
}

// WriteChaosTrace re-runs RAP under the sweep's highest-severity plan
// and writes the Chrome trace with the perturbation windows rendered as
// annotation spans, so the timeline shows which stretches the windows
// caused.
func (r *ChaosResult) WriteChaosTrace(w io.Writer) error {
	if len(r.Plans) == 0 {
		return fmt.Errorf("experiments: chaos sweep carries no perturbation plans")
	}
	wl, err := workloadFor(r.Plan, 4096)
	if err != nil {
		return err
	}
	cp := r.Plans[len(r.Plans)-1]
	run, err := baselines.RunChaos(baselines.SystemRAP, wl, cluster(r.GPUs), Iterations, &cp)
	if err != nil {
		return err
	}
	return trace.WriteChromeTraceWithSpans(w, run.Stats.Result, r.GPUs, cp.Spans())
}

// WriteJSON emits the machine-readable sweep report.
func (r *ChaosResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render prints per-system makespan degradation by severity.
func (r *ChaosResult) Render() string {
	header := []string{"system", "base (ms)"}
	for _, sev := range r.Severities {
		header = append(header, fmt.Sprintf("sev %.2f", sev))
	}
	var rows [][]string
	for _, sys := range ChaosSystems() {
		row := []string{string(sys), "-"}
		for _, sev := range r.Severities {
			c := r.lookup(sys, sev)
			if c == nil {
				row = append(row, "-")
				continue
			}
			row[1] = fmt.Sprintf("%.2f", c.BaseMakespanUs/1e3)
			row = append(row, fmt.Sprintf("+%.1f%%", c.DegradationPct))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Chaos sweep: makespan degradation under seeded perturbation (plan%d, %d GPUs, seed %d)\n\n",
		r.Plan, r.GPUs, r.Seed) +
		table(header, rows) +
		"\nEvery system runs under the identical perturbation plan per severity; lower degradation = more graceful.\n"
}
