package experiments

import (
	"fmt"

	"rap/internal/preproc"
	"rap/internal/rap"
	"rap/internal/trace"
)

// Figure11Setting is one curve of the fusion/scheduling study.
type Figure11Setting string

// The Figure 11 settings.
const (
	F11Baseline Figure11Setting = "Baseline"
	F11Fusion   Figure11Setting = "Horizontal Fusion"
	F11RAP      Figure11Setting = "Fusion + Scheduling (RAP)"
)

// Figure11Settings lists the curves in presentation order.
func Figure11Settings() []Figure11Setting {
	return []Figure11Setting{F11Baseline, F11Fusion, F11RAP}
}

// Figure11Point is one (setting, extra-NGram-count) latency sample.
type Figure11Point struct {
	Setting   Figure11Setting
	NGramOps  int
	LatencyUs float64
	// GPUUtil / SMUtil back Table 4 (profiled at this point).
	GPUUtil float64
	SMUtil  float64
}

// Figure11Result holds the latency curves and turning points.
type Figure11Result struct {
	GPUs   int
	Sweep  []int
	Points []Figure11Point
	// TurningPoint maps setting -> index into Sweep where latency first
	// exceeds the no-extra-work latency by >10% (-1 = never).
	TurningPoint map[Figure11Setting]int
}

// ngramWorkload returns the plan-1 workload with extra standalone NGram
// operations grafted onto the sparse-feature graphs (the training model
// is unchanged — the added ops are pure preprocessing load, as in the
// paper's setup "fixed the DLRM training while gradually increasing the
// workload of input preprocessing").
func ngramWorkload(extraNGrams, batch int) (*rap.Workload, error) {
	w, err := workloadFor(1, batch)
	if err != nil {
		return nil, err
	}
	// Light base: keep the dense graphs and the first lightBase sparse
	// chains so that, with no extra NGrams, every setting hides the
	// preprocessing completely and the turning points measure tolerance
	// to the added load alone.
	const lightBase = 8
	w.Plan.Graphs = w.Plan.Graphs[:w.Plan.NumDense+lightBase]
	for i := 0; i < extraNGrams; i++ {
		gi := w.Plan.NumDense + (i % lightBase)
		g := w.Plan.Graphs[gi]
		base := g.Ops[0].Output() // the FillNull output of the chain
		ng := preproc.NewNGram(
			fmt.Sprintf("%s/extra_ng%d", g.Name, i),
			[]string{base},
			fmt.Sprintf("%s.xng%d", base, i),
			3, 1<<20)
		g.Ops = append(g.Ops, ng)
		g.InvalidateDeps()
	}
	if err := w.Plan.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// Figure11 sweeps the extra-NGram count for the three settings and
// reports the end-to-end latency curves with their turning points.
func Figure11(sweep []int, gpus int) (*Figure11Result, error) {
	if len(sweep) == 0 {
		sweep = []int{0, 8, 16, 32, 64, 96, 128}
	}
	if gpus <= 0 {
		gpus = 4
	}
	res := &Figure11Result{GPUs: gpus, Sweep: sweep, TurningPoint: map[Figure11Setting]int{}}
	opts := map[Figure11Setting]rap.BuildOptions{
		F11Baseline: {Strategy: rap.MapDataParallel, NoFusion: true, NaiveSchedule: true, NoInterleave: true, PreprocPriority: 1},
		F11Fusion:   {Strategy: rap.MapDataParallel, NaiveSchedule: true, NoInterleave: true, PreprocPriority: 1},
		F11RAP:      {},
	}
	for _, setting := range Figure11Settings() {
		var curve []float64
		for _, k := range sweep {
			w, err := ngramWorkload(k, 4096)
			if err != nil {
				return nil, err
			}
			f := rap.New(w, cluster(gpus))
			p, err := f.BuildPlan(opts[setting])
			if err != nil {
				return nil, err
			}
			stats, err := f.Execute(p, Iterations)
			if err != nil {
				return nil, err
			}
			sum := trace.MeanSummary(stats.Result, gpus, 0)
			res.Points = append(res.Points, Figure11Point{
				Setting: setting, NGramOps: k,
				LatencyUs: stats.SteadyIterLatency,
				GPUUtil:   sum.GPUUtil,
				SMUtil:    sum.SMUtil,
			})
			curve = append(curve, stats.SteadyIterLatency)
		}
		res.TurningPoint[setting] = trace.TurningPoint(curve, 0.10)
	}
	return res, nil
}

// point returns the sample for (setting, k).
func (r *Figure11Result) point(s Figure11Setting, k int) (Figure11Point, bool) {
	for _, p := range r.Points {
		if p.Setting == s && p.NGramOps == k {
			return p, true
		}
	}
	return Figure11Point{}, false
}

// Render prints the latency curves with turning points marked.
func (r *Figure11Result) Render() string {
	header := []string{"extra ngrams"}
	for _, s := range Figure11Settings() {
		header = append(header, string(s))
	}
	var rows [][]string
	for _, k := range r.Sweep {
		row := []string{fmt.Sprintf("%d", k)}
		for _, s := range Figure11Settings() {
			if p, ok := r.point(s, k); ok {
				row = append(row, fmt.Sprintf("%.0f", p.LatencyUs))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	out := fmt.Sprintf("Figure 11: training latency (us) vs added NGram preprocessing (%d GPUs)\n\n", r.GPUs) +
		table(header, rows) + "\nTurning points (latency +10%): "
	for _, s := range Figure11Settings() {
		tp := r.TurningPoint[s]
		if tp < 0 {
			out += fmt.Sprintf("%s: none  ", s)
		} else {
			out += fmt.Sprintf("%s: %d ngrams  ", s, r.Sweep[tp])
		}
	}
	return out + "\n"
}

// Table4Result reports GPU/SM utilization at each setting's turning
// point.
type Table4Result struct {
	Rows map[Figure11Setting]struct{ GPUUtil, SMUtil float64 }
}

// Table4 derives the utilization-at-turning-point table from a Figure 11
// run (the paper profiles the same three settings at their respective
// latency turning points). Settings that never turn use the last sweep
// point.
func Table4(f11 *Figure11Result) *Table4Result {
	res := &Table4Result{Rows: map[Figure11Setting]struct{ GPUUtil, SMUtil float64 }{}}
	for _, s := range Figure11Settings() {
		idx := f11.TurningPoint[s]
		if idx < 0 {
			idx = len(f11.Sweep) - 1
		}
		if p, ok := f11.point(s, f11.Sweep[idx]); ok {
			res.Rows[s] = struct{ GPUUtil, SMUtil float64 }{p.GPUUtil, p.SMUtil}
		}
	}
	return res
}

// Render prints the Table 4 layout.
func (r *Table4Result) Render() string {
	var rows [][]string
	for _, s := range Figure11Settings() {
		v := r.Rows[s]
		rows = append(rows, []string{string(s),
			fmt.Sprintf("%.1f%%", v.GPUUtil*100),
			fmt.Sprintf("%.1f%%", v.SMUtil*100)})
	}
	return "Table 4: GPU and SM utilization at the latency turning point\n\n" +
		table([]string{"Setting", "Avg. GPU Utilization", "Avg. SM Utilization"}, rows)
}
