package experiments

import (
	"fmt"

	"rap/internal/baselines"
	"rap/internal/rap"
)

// Figure10Setting is one bar group of the speedup-breakdown study.
type Figure10Setting string

// The Figure 10 settings.
const (
	F10Sequential Figure10Setting = "Sequential"
	F10MPS        Figure10Setting = "MPS"
	F10NoMapping  Figure10Setting = "RAP w/o mapping"
	F10NoFusion   Figure10Setting = "RAP w/o fusion"
	F10RAP        Figure10Setting = "RAP"
	F10Ideal      Figure10Setting = "Ideal"
)

// Figure10Settings lists the settings in presentation order.
func Figure10Settings() []Figure10Setting {
	return []Figure10Setting{F10Sequential, F10MPS, F10NoMapping, F10NoFusion, F10RAP, F10Ideal}
}

// Figure10Cell is one (plan, setting) throughput.
type Figure10Cell struct {
	Plan       int
	Setting    Figure10Setting
	Throughput float64
}

// Figure10Result is the speedup breakdown and optimality analysis.
type Figure10Result struct {
	GPUs  int
	Cells []Figure10Cell
}

// Figure10 runs the ablation: Sequential, MPS, RAP without inter-GPU
// mapping (batch-parallel mapping, everything else on), RAP without
// horizontal fusion, full RAP, and the preprocessing-free Ideal.
func Figure10(plans []int, gpus int) (*Figure10Result, error) {
	if len(plans) == 0 {
		plans = []int{1, 2, 3}
	}
	if gpus <= 0 {
		gpus = 8
	}
	res := &Figure10Result{GPUs: gpus}
	for _, plan := range plans {
		w, err := workloadFor(plan, 4096)
		if err != nil {
			return nil, err
		}
		add := func(s Figure10Setting, thr float64) {
			res.Cells = append(res.Cells, Figure10Cell{Plan: plan, Setting: s, Throughput: thr})
		}
		for _, pair := range []struct {
			setting Figure10Setting
			system  baselines.System
		}{
			{F10Sequential, baselines.SystemSequential},
			{F10MPS, baselines.SystemMPS},
			{F10RAP, baselines.SystemRAP},
			{F10Ideal, baselines.SystemIdeal},
		} {
			r, err := runSystem(pair.system, w, gpus)
			if err != nil {
				return nil, err
			}
			add(pair.setting, r.Throughput)
		}
		// Ablations run through the framework directly.
		for _, ab := range []struct {
			setting Figure10Setting
			opts    rap.BuildOptions
		}{
			{F10NoMapping, rap.BuildOptions{Strategy: rap.MapDataParallel}},
			{F10NoFusion, rap.BuildOptions{NoFusion: true}},
		} {
			f := rap.New(w, cluster(gpus))
			p, err := f.BuildPlan(ab.opts)
			if err != nil {
				return nil, err
			}
			stats, err := f.Execute(p, Iterations)
			if err != nil {
				return nil, err
			}
			add(ab.setting, stats.Throughput)
		}
	}
	return res, nil
}

func (r *Figure10Result) lookup(plan int, s Figure10Setting) float64 {
	for _, c := range r.Cells {
		if c.Plan == plan && c.Setting == s {
			return c.Throughput
		}
	}
	return 0
}

// GapFromIdeal returns RAP's mean relative throughput deficit vs Ideal
// (the paper's 3.24% headline).
func (r *Figure10Result) GapFromIdeal() float64 {
	sum, n := 0.0, 0
	seen := map[int]bool{}
	for _, c := range r.Cells {
		if seen[c.Plan] {
			continue
		}
		seen[c.Plan] = true
		ideal := r.lookup(c.Plan, F10Ideal)
		rapThr := r.lookup(c.Plan, F10RAP)
		if ideal > 0 && rapThr > 0 {
			sum += 1 - rapThr/ideal
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints speedups normalized to Sequential, per plan.
func (r *Figure10Result) Render() string {
	header := []string{"plan"}
	for _, s := range Figure10Settings() {
		header = append(header, string(s))
	}
	var rows [][]string
	seen := map[int]bool{}
	for _, c := range r.Cells {
		if seen[c.Plan] {
			continue
		}
		seen[c.Plan] = true
		base := r.lookup(c.Plan, F10Sequential)
		row := []string{fmt.Sprintf("plan%d", c.Plan)}
		for _, s := range Figure10Settings() {
			row = append(row, fmt.Sprintf("%.2fx", r.lookup(c.Plan, s)/base))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Figure 10: speedup breakdown and optimality analysis (%d GPUs, normalized to Sequential)\n\n", r.GPUs) +
		table(header, rows) +
		fmt.Sprintf("\nRAP is %.2f%% below the Ideal (no preprocessing) throughput on average.\n", r.GapFromIdeal()*100)
}
