package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestChaosSweepQuick(t *testing.T) {
	r, err := ChaosSweep(1, 2, []float64{0.3, 0.7}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ChaosSystems()) * 2; len(r.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(r.Cells), want)
	}
	if len(r.Plans) != 2 {
		t.Fatalf("plans = %d, want 2", len(r.Plans))
	}
	if r.HorizonUs <= 0 {
		t.Fatalf("horizon = %f", r.HorizonUs)
	}
	for _, sys := range ChaosSystems() {
		lo, hi := r.lookup(sys, 0.3), r.lookup(sys, 0.7)
		if lo == nil || hi == nil {
			t.Fatalf("%s: missing cells", sys)
		}
		if lo.BaseMakespanUs <= 0 || lo.MakespanUs <= 0 {
			t.Fatalf("%s: empty makespans: %+v", sys, lo)
		}
		// Capacity cuts and straggler inflation only remove resources;
		// they must not speed a system up.
		if lo.DegradationPct < -1e-6 || hi.DegradationPct < -1e-6 {
			t.Fatalf("%s: negative degradation: lo=%.2f hi=%.2f", sys, lo.DegradationPct, hi.DegradationPct)
		}
		// Severity 0.7 cuts deeper and wider than 0.3; some slowdown must
		// materialize at the top of the sweep.
		if hi.DegradationPct <= 0 {
			t.Fatalf("%s: severity 0.7 caused no degradation", sys)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ChaosResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(r.Cells) || back.Seed != r.Seed {
		t.Fatal("JSON round-trip lost data")
	}

	out := r.Render()
	if !strings.Contains(out, "Chaos sweep") || !strings.Contains(out, "RAP") {
		t.Fatalf("render broken:\n%s", out)
	}

	buf.Reset()
	if err := r.WriteChaosTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"chaos"`) {
		t.Fatal("chaos trace missing perturbation spans")
	}
}
