package experiments

import (
	"fmt"

	"rap/internal/baselines"
	"rap/internal/gpusim"
)

// PowerRow is one system's energy profile for the same training work.
type PowerRow struct {
	System baselines.System
	// JoulesPerMSample is energy per million trained samples.
	JoulesPerMSample float64
	// GPUWatts / HostWatts are mean draws during steady training.
	GPUWatts  float64
	HostWatts float64
	// PreprocPowerShare is the host tier's share of total power — the
	// paper's §2.1 motivation metric ("input preprocessing ... account
	// for over 50% of power consumption, surpassing even the power
	// usage of GPU trainers").
	PreprocPowerShare float64
	Throughput        float64
}

// PowerResult is the preprocessing-energy study.
type PowerResult struct {
	Plan int
	GPUs int
	Rows []PowerRow
}

// PowerStudy quantifies the paper's motivating claim: with CPU-tier
// preprocessing (TorchArrow) the host pool burns power comparable to the
// trainers while throttling them; RAP reuses the trainers' leftover
// cycles, so the host tier idles and every joule buys more samples.
func PowerStudy(plan, gpus int) (*PowerResult, error) {
	if gpus <= 0 {
		gpus = 4
	}
	w, err := workloadFor(plan, 4096)
	if err != nil {
		return nil, err
	}
	pm := gpusim.DefaultPowerModel()
	res := &PowerResult{Plan: plan, GPUs: gpus}
	for _, sys := range []baselines.System{baselines.SystemTorchArrow, baselines.SystemSequential, baselines.SystemRAP, baselines.SystemIdeal} {
		r, err := runSystem(sys, w, gpus)
		if err != nil {
			return nil, err
		}
		e := r.Stats.Result.Energy(pm, gpus, HostCores)
		trainedSamples := r.Throughput * e.MakespanUs * 1e-6
		row := PowerRow{
			System:     sys,
			GPUWatts:   e.AvgGPUWatts(),
			HostWatts:  e.AvgHostWatts(),
			Throughput: r.Throughput,
		}
		if trainedSamples > 0 {
			row.JoulesPerMSample = e.Total() / trainedSamples * 1e6
		}
		if total := e.AvgGPUWatts() + e.AvgHostWatts(); total > 0 {
			row.PreprocPowerShare = e.AvgHostWatts() / total
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// row returns the entry for a system.
func (r *PowerResult) row(sys baselines.System) PowerRow {
	for _, row := range r.Rows {
		if row.System == sys {
			return row
		}
	}
	return PowerRow{}
}

// EnergySaving returns TorchArrow's energy-per-sample divided by RAP's.
func (r *PowerResult) EnergySaving() float64 {
	ta := r.row(baselines.SystemTorchArrow).JoulesPerMSample
	rp := r.row(baselines.SystemRAP).JoulesPerMSample
	if rp <= 0 {
		return 0
	}
	return ta / rp
}

// Render prints the power comparison.
func (r *PowerResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.System),
			fmt.Sprintf("%.0f", row.Throughput),
			fmt.Sprintf("%.0f", row.GPUWatts),
			fmt.Sprintf("%.0f", row.HostWatts),
			fmt.Sprintf("%.0f%%", row.PreprocPowerShare*100),
			fmt.Sprintf("%.1f", row.JoulesPerMSample),
		})
	}
	return fmt.Sprintf("Power study (§2.1 motivation): plan %d, %d GPUs\n\n", r.Plan, r.GPUs) +
		table([]string{"system", "samples/s", "GPU W", "host W", "host power share", "J per 1M samples"}, rows) +
		fmt.Sprintf("\nRAP trains the same samples with %.1fx less energy than the CPU-preprocessing setup.\n",
			r.EnergySaving())
}
