package experiments

import (
	"strings"
	"testing"

	"rap/internal/baselines"
	"rap/internal/rap"
)

func TestFigure1a(t *testing.T) {
	r, err := Figure1a()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) < 50 {
		t.Fatalf("too few samples: %d", len(r.Samples))
	}
	// The paper's point: utilization fluctuates. Expect both high and
	// low SM samples.
	var lo, hi bool
	for _, s := range r.Samples {
		if s.SM < 0.4 {
			lo = true
		}
		if s.SM > 0.6 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatalf("no fluctuation: lo=%v hi=%v", lo, hi)
	}
	if !strings.Contains(r.Render(), "SM util") {
		t.Fatal("render missing series")
	}
}

func TestFigure1b(t *testing.T) {
	r, err := Figure1b()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Utilization grows with input size and saturates.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].SMUtil < r.Rows[i-1].SMUtil-1e-9 {
			t.Fatal("SM util not monotone")
		}
	}
	if r.Rows[len(r.Rows)-1].SMUtil < 0.99 {
		t.Fatalf("largest kernel should saturate: %f", r.Rows[4].SMUtil)
	}
	if r.Rows[0].SMUtil > 0.9 {
		t.Fatalf("smallest kernel should not saturate: %f", r.Rows[0].SMUtil)
	}
	_ = r.Render()
}

func TestFigure1c(t *testing.T) {
	r, err := Figure1c()
	if err != nil {
		t.Fatal(err)
	}
	// Small overlaps are nearly free; large ones stretch the MLP.
	first := r.Rows[1] // 8 features
	last := r.Rows[len(r.Rows)-1]
	if first.StretchFactor > 1.15 {
		t.Fatalf("small ngram already contends: %f", first.StretchFactor)
	}
	if last.StretchFactor < 1.3 {
		t.Fatalf("big ngram does not contend: %f", last.StretchFactor)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].StretchFactor < r.Rows[i-1].StretchFactor-1e-9 {
			t.Fatal("stretch not monotone")
		}
	}
	_ = r.Render()
}

func TestFigure5(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 15 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// 5(b): overlap latency grows with standalone latency within each op.
	byOp := map[string][]Figure5Row{}
	for _, row := range r.Rows {
		byOp[row.Op] = append(byOp[row.Op], row)
	}
	for op, rows := range byOp {
		for i := 1; i < len(rows); i++ {
			if rows[i].StandaloneUs > rows[i-1].StandaloneUs && rows[i].OverlapUs < rows[i-1].OverlapUs {
				t.Fatalf("%s: overlap latency not monotone in standalone latency", op)
			}
		}
	}
	// 5(c): at comparable warp counts, different op types pay different
	// overlap latencies (the misalignment that motivates the latency
	// abstraction). NGram is costlier per warp than Logit.
	var ng, lg Figure5Row
	for _, row := range byOp["Ngram"] {
		ng = row
		break
	}
	for _, row := range byOp["Logit"] {
		lg = row
		break
	}
	if ng.StandaloneUs <= lg.StandaloneUs {
		t.Fatal("per-warp cost misalignment missing")
	}
	_ = r.Render()
}

func TestTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor training is slow")
	}
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{"1D Ops", "FirstX", "Ngram", "Onehot", "Bucketize"} {
		if r.Accuracy[cat] < 0.8 {
			t.Fatalf("category %s accuracy %.3f", cat, r.Accuracy[cat])
		}
	}
	if !strings.Contains(r.Render(), "Table 5") {
		t.Fatal("render broken")
	}
}

func TestFigure9Quick(t *testing.T) {
	r, err := Figure9(QuickFigure9())
	if err != nil {
		t.Fatal(err)
	}
	sp := r.Speedups()
	if sp[baselines.SystemSequential] < 1.3 {
		t.Fatalf("RAP vs sequential = %.2f", sp[baselines.SystemSequential])
	}
	if sp[baselines.SystemTorchArrow] < 2 {
		t.Fatalf("RAP vs TorchArrow = %.2f", sp[baselines.SystemTorchArrow])
	}
	// RAP within 10% of ideal on plan 1.
	if v := sp[baselines.SystemIdeal]; v < 0.88 || v > 1.01 {
		t.Fatalf("RAP vs ideal = %.3f", v)
	}
	if !strings.Contains(r.Render(), "Figure 9") {
		t.Fatal("render broken")
	}
}

func TestFigure10Quick(t *testing.T) {
	r, err := Figure10([]int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Ordering: Sequential < ablations ≤ RAP ≤ Ideal.
	seq := r.lookup(1, F10Sequential)
	noMap := r.lookup(1, F10NoMapping)
	noFus := r.lookup(1, F10NoFusion)
	full := r.lookup(1, F10RAP)
	ideal := r.lookup(1, F10Ideal)
	if !(seq < noMap && seq < noFus && noFus <= full*1.02 && full <= ideal*1.001) {
		t.Fatalf("ordering broken: seq=%.0f noMap=%.0f noFus=%.0f rap=%.0f ideal=%.0f",
			seq, noMap, noFus, full, ideal)
	}
	if gap := r.GapFromIdeal(); gap > 0.15 {
		t.Fatalf("RAP gap from ideal = %.3f", gap)
	}
	_ = r.Render()
}

func TestFigure11Quick(t *testing.T) {
	r, err := Figure11([]int{0, 32, 96}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// RAP's curve should stay at or below the baseline's everywhere.
	for _, k := range r.Sweep {
		b, _ := r.point(F11Baseline, k)
		rp, _ := r.point(F11RAP, k)
		if rp.LatencyUs > b.LatencyUs*1.05 {
			t.Fatalf("RAP slower than baseline at %d ngrams: %.0f vs %.0f", k, rp.LatencyUs, b.LatencyUs)
		}
	}
	t4 := Table4(r)
	if len(t4.Rows) != 3 {
		t.Fatalf("table4 rows = %d", len(t4.Rows))
	}
	// RAP sustains higher utilization at its turning point than the
	// baseline at its (Table 4's claim).
	if t4.Rows[F11RAP].SMUtil <= 0 {
		t.Fatal("no utilization recorded")
	}
	_ = r.Render()
	_ = t4.Render()
}

func TestFigure12Quick(t *testing.T) {
	r, err := Figure12(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var dp, dl, rp Figure12Row
	for _, row := range r.Rows {
		switch row.Strategy {
		case rap.MapDataParallel:
			dp = row
		case rap.MapDataLocality:
			dl = row
		case rap.MapRAP:
			rp = row
		}
	}
	// DP pays communication; DL is imbalanced; RAP beats both on
	// exposed latency.
	if dp.CommUs <= dl.CommUs {
		t.Fatalf("DP comm %.0f should exceed DL comm %.0f", dp.CommUs, dl.CommUs)
	}
	if dl.Imbalance <= rp.Imbalance {
		t.Fatalf("DL imbalance %.2f should exceed RAP %.2f", dl.Imbalance, rp.Imbalance)
	}
	// RAP clearly beats DL (the imbalance case); it matches DP within
	// noise (NVSwitch-class links make DP's input communication cheap in
	// this substrate — see EXPERIMENTS.md, known deviations).
	if rp.ExposedUs > dl.ExposedUs*0.7 {
		t.Fatalf("RAP exposed %.0f vs DL %.0f — imbalance win missing", rp.ExposedUs, dl.ExposedUs)
	}
	if rp.ExposedUs > dp.ExposedUs*1.25 {
		t.Fatalf("RAP exposed %.0f vs DP %.0f", rp.ExposedUs, dp.ExposedUs)
	}
	_ = r.Render()
}

func TestPowerStudy(t *testing.T) {
	r, err := PowerStudy(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	ta := r.row(baselines.SystemTorchArrow)
	rp := r.row(baselines.SystemRAP)
	// The §2.1 motivation: with CPU-tier preprocessing the host burns
	// power on the same order as the trainers...
	if ta.PreprocPowerShare < 0.3 {
		t.Fatalf("TorchArrow host power share %.2f — motivation not reproduced", ta.PreprocPowerShare)
	}
	// ...while RAP leaves the host tier nearly idle.
	if rp.PreprocPowerShare > 0.25 {
		t.Fatalf("RAP host power share %.2f too high", rp.PreprocPowerShare)
	}
	// And RAP's energy per trained sample is several times lower.
	if r.EnergySaving() < 3 {
		t.Fatalf("energy saving %.1fx too small", r.EnergySaving())
	}
	if r.Render() == "" {
		t.Fatal("render empty")
	}
}
