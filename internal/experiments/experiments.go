// Package experiments regenerates every table and figure of the RAP
// paper's evaluation (§8) on the simulated substrate. Each experiment is
// a function returning a typed result with a Render method that prints
// the same rows/series the paper reports; cmd/rapbench and bench_test.go
// drive them. See DESIGN.md §3 for the experiment ↔ module index and
// EXPERIMENTS.md for paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"strings"

	"rap/internal/baselines"
	"rap/internal/gpusim"
	"rap/internal/rap"
)

// Iterations is the pipeline length simulated per measurement; the first
// two iterations are warmup.
const Iterations = 10

// HostCores is the host CPU pool used across experiments (DGX-class
// node; bounds the TorchArrow baseline's scaling).
const HostCores = 48

// Seed is the global experiment seed.
const Seed = 1

// cluster builds the standard experiment cluster.
func cluster(numGPUs int) gpusim.ClusterConfig {
	return gpusim.ClusterConfig{NumGPUs: numGPUs, HostCores: HostCores}
}

// workloadFor builds the (dataset, plan, batch) workload used throughout
// §8: plan 0 runs on Criteo Kaggle, plans 1-3 on Criteo Terabyte
// (Table 3).
func workloadFor(plan, batch int) (*rap.Workload, error) {
	ds := rap.Terabyte
	if plan == 0 {
		ds = rap.Kaggle
	}
	return rap.NewWorkload(ds, plan, batch, Seed)
}

// table renders rows of columns with a header, padded.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		header[i] = strings.Repeat("-", w)
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// runSystem measures one system on one workload/cluster.
func runSystem(sys baselines.System, w *rap.Workload, gpus int) (baselines.RunResult, error) {
	return baselines.Run(sys, w, cluster(gpus), Iterations)
}
