package experiments

import (
	"fmt"

	"rap/internal/dlrm"
	"rap/internal/rap"
	"rap/internal/sched"
)

// Figure12Row is one mapping strategy's outcome on the skewed workload.
type Figure12Row struct {
	Strategy rap.MappingStrategy
	// ExposedUs is the per-iteration latency beyond the preprocessing-
	// free Ideal (the exposed preprocessing + communication latency).
	ExposedUs float64
	// CommUs is the per-iteration input-communication time of the
	// busiest GPU.
	CommUs float64
	// Imbalance is max/mean preprocessing work across GPUs.
	Imbalance float64
	// Moves is the number of rebalancing moves (RAP only).
	Moves int
}

// Figure12Result compares DP / DL / RAP mapping on the skewed plan.
type Figure12Result struct {
	GPUs int
	Rows []Figure12Row
}

// Figure12 reproduces the mapping-adaptability study (§8.4): on a skewed
// preprocessing plan, batch-parallel mapping pays input communication,
// data-locality mapping suffers imbalance, and RAP's joint search does
// neither.
func Figure12(gpus int) (*Figure12Result, error) {
	if gpus <= 0 {
		gpus = 4
	}
	w, err := rap.SkewedWorkload(8, 4096, Seed)
	if err != nil {
		return nil, err
	}
	// Ideal reference (no preprocessing).
	pl := dlrm.PlaceTables(w.Model.TableSizes, gpus)
	ideal, err := sched.BuildAndRun(cluster(gpus), w.Model, pl, make([]sched.GPUWork, gpus), sched.PipelineOptions{Iterations: Iterations})
	if err != nil {
		return nil, err
	}

	res := &Figure12Result{GPUs: gpus}
	link := cluster(gpus).WithDefaults().LinkGBs
	for _, strategy := range []rap.MappingStrategy{rap.MapDataParallel, rap.MapDataLocality, rap.MapRAP} {
		f := rap.New(w, cluster(gpus))
		p, err := f.BuildPlan(rap.BuildOptions{Strategy: strategy})
		if err != nil {
			return nil, err
		}
		stats, err := f.Execute(p, Iterations)
		if err != nil {
			return nil, err
		}
		maxComm := 0.0
		for _, b := range p.Mapping.CommBytes {
			if us := b * rap.ScatterInefficiency / (link * 1e3); us > maxComm {
				maxComm = us
			}
		}
		exposed := stats.SteadyIterLatency - ideal.SteadyIterLatency
		if exposed < 0 {
			exposed = 0
		}
		res.Rows = append(res.Rows, Figure12Row{
			Strategy:  strategy,
			ExposedUs: exposed,
			CommUs:    maxComm,
			Imbalance: p.Mapping.Imbalance(),
			Moves:     p.Mapping.Moves,
		})
	}
	return res, nil
}

// Reduction returns RAP's exposed-latency reduction factor vs the given
// strategy (the paper reports 4.3× vs DP and 4.0× vs DL).
func (r *Figure12Result) Reduction(vs rap.MappingStrategy) float64 {
	var rapExp, other float64
	for _, row := range r.Rows {
		if row.Strategy == rap.MapRAP {
			rapExp = row.ExposedUs
		}
		if row.Strategy == vs {
			other = row.ExposedUs
		}
	}
	if rapExp <= 0 {
		return other // fully hidden: report the absolute saving
	}
	return other / rapExp
}

// Render prints the per-strategy comparison.
func (r *Figure12Result) Render() string {
	name := map[rap.MappingStrategy]string{
		rap.MapDataParallel: "Data-parallel (DP)",
		rap.MapDataLocality: "Data-locality (DL)",
		rap.MapRAP:          "RAP",
	}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			name[row.Strategy],
			fmt.Sprintf("%.0f", row.ExposedUs),
			fmt.Sprintf("%.0f", row.CommUs),
			fmt.Sprintf("%.2f", row.Imbalance),
			fmt.Sprintf("%d", row.Moves),
		})
	}
	return fmt.Sprintf("Figure 12: mapping strategies on a skewed preprocessing plan (%d GPUs)\n\n", r.GPUs) +
		table([]string{"mapping", "exposed us/iter", "max comm us", "work imbalance", "moves"}, rows) +
		fmt.Sprintf("\nRAP reduces exposed latency by %.1fx vs DP and %.1fx vs DL.\n",
			r.Reduction(rap.MapDataParallel), r.Reduction(rap.MapDataLocality))
}
