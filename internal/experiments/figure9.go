package experiments

import (
	"fmt"

	"rap/internal/baselines"
)

// Figure9Cell is one (plan, batch, gpus, system) throughput measurement.
type Figure9Cell struct {
	Plan    int
	Batch   int
	GPUs    int
	System  baselines.System
	Samples float64 // global samples/s
}

// Figure9Result is the end-to-end training-throughput comparison.
type Figure9Result struct {
	Cells []Figure9Cell
}

// Figure9Config selects the sweep subset (the full grid is expensive).
type Figure9Config struct {
	Plans   []int
	Batches []int
	GPUs    []int
	Systems []baselines.System
}

// DefaultFigure9 is the paper's full grid: plans 0-3 × batch
// {4096, 8192} × {2, 4, 8} GPUs × all systems.
func DefaultFigure9() Figure9Config {
	return Figure9Config{
		Plans:   []int{0, 1, 2, 3},
		Batches: []int{4096, 8192},
		GPUs:    []int{2, 4, 8},
		Systems: baselines.AllSystems(),
	}
}

// QuickFigure9 is a reduced grid for smoke tests and benchmarks.
func QuickFigure9() Figure9Config {
	return Figure9Config{
		Plans:   []int{1},
		Batches: []int{4096},
		GPUs:    []int{4},
		Systems: baselines.AllSystems(),
	}
}

// Figure9 runs the end-to-end DLRM training throughput comparison
// (Figure 9 a/b/c: 2/4/8 GPUs).
func Figure9(cfg Figure9Config) (*Figure9Result, error) {
	res := &Figure9Result{}
	for _, plan := range cfg.Plans {
		for _, batch := range cfg.Batches {
			w, err := workloadFor(plan, batch)
			if err != nil {
				return nil, err
			}
			for _, gpus := range cfg.GPUs {
				for _, sys := range cfg.Systems {
					r, err := runSystem(sys, w, gpus)
					if err != nil {
						return nil, fmt.Errorf("figure9 plan%d b%d g%d %s: %w", plan, batch, gpus, sys, err)
					}
					res.Cells = append(res.Cells, Figure9Cell{
						Plan: plan, Batch: batch, GPUs: gpus, System: sys, Samples: r.Throughput,
					})
				}
			}
		}
	}
	return res, nil
}

// lookup returns the throughput of a cell, or 0.
func (r *Figure9Result) lookup(plan, batch, gpus int, sys baselines.System) float64 {
	for _, c := range r.Cells {
		if c.Plan == plan && c.Batch == batch && c.GPUs == gpus && c.System == sys {
			return c.Samples
		}
	}
	return 0
}

// Speedups aggregates RAP's mean speedup over each baseline across the
// measured grid (the paper's headline averages).
func (r *Figure9Result) Speedups() map[baselines.System]float64 {
	sums := map[baselines.System]float64{}
	counts := map[baselines.System]int{}
	for _, c := range r.Cells {
		if c.System == baselines.SystemRAP {
			continue
		}
		rapThr := r.lookup(c.Plan, c.Batch, c.GPUs, baselines.SystemRAP)
		if rapThr <= 0 || c.Samples <= 0 {
			continue
		}
		sums[c.System] += rapThr / c.Samples
		counts[c.System]++
	}
	out := map[baselines.System]float64{}
	for sys, s := range sums {
		out[sys] = s / float64(counts[sys])
	}
	return out
}

// Render prints per-configuration rows plus the headline averages.
func (r *Figure9Result) Render() string {
	seen := map[[3]int]bool{}
	var rows [][]string
	for _, c := range r.Cells {
		key := [3]int{c.Plan, c.Batch, c.GPUs}
		if seen[key] {
			continue
		}
		seen[key] = true
		row := []string{fmt.Sprintf("plan%d", c.Plan), fmt.Sprintf("%d", c.Batch), fmt.Sprintf("%d", c.GPUs)}
		for _, sys := range baselines.AllSystems() {
			row = append(row, fmt.Sprintf("%.0f", r.lookup(c.Plan, c.Batch, c.GPUs, sys)))
		}
		rows = append(rows, row)
	}
	header := []string{"plan", "batch", "gpus"}
	for _, sys := range baselines.AllSystems() {
		header = append(header, string(sys))
	}
	out := "Figure 9: end-to-end DLRM training throughput (global samples/s)\n\n" + table(header, rows)
	out += "\nRAP mean speedups: "
	for _, sys := range []baselines.System{baselines.SystemSequential, baselines.SystemStream,
		baselines.SystemMPS, baselines.SystemTorchArrow, baselines.SystemIdeal} {
		if v, ok := r.Speedups()[sys]; ok {
			out += fmt.Sprintf("vs %s %.2fx  ", sys, v)
		}
	}
	return out + "\n"
}
