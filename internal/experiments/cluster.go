package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	clustersim "rap/internal/cluster"
	"rap/internal/topo"
)

// ClusterPolicyRow is one placement policy's fleet outcome.
type ClusterPolicyRow struct {
	Policy string `json:"policy"`
	// Digest is the report's bit-exact content hash; identical inputs
	// must reproduce it exactly.
	Digest     string  `json:"digest"`
	MakespanUs float64 `json:"makespan_us"`
	AvgQueueUs float64 `json:"avg_queue_us"`
	MaxQueueUs float64 `json:"max_queue_us"`
	AvgJCTUs   float64 `json:"avg_jct_us"`
	GPUUtil    float64 `json:"gpu_util"`
	// SplitJobs counts jobs whose allocation spans more than one node —
	// the fragmentation the packing policy exists to avoid.
	SplitJobs int `json:"split_jobs"`
}

// ClusterResult is the fleet-scheduling experiment: one seeded job
// trace on one hierarchical fleet, scheduled by RAP-aware packing
// versus naive first-fit.
type ClusterResult struct {
	Nodes       int                `json:"nodes"`
	GPUsPerNode int                `json:"gpus_per_node"`
	GPUs        int                `json:"gpus"`
	FabricGBs   float64            `json:"fabric_gbs"`
	Oversub     float64            `json:"oversub"`
	Jobs        int                `json:"jobs"`
	Seed        int64              `json:"seed"`
	MeanGapUs   float64            `json:"mean_gap_us"`
	Rows        []ClusterPolicyRow `json:"rows"`
}

// ClusterSweepConfig parameterizes ClusterSweep; zero values take the
// paper-scale defaults (128 nodes × 8 GPUs, 180 jobs — enough demand
// that jobs queue and fragmentation costs scheduling delay).
type ClusterSweepConfig struct {
	Nodes       int
	GPUsPerNode int
	FabricGBs   float64
	Oversub     float64
	Jobs        int
	Seed        int64
	MeanGapUs   float64
}

func (c ClusterSweepConfig) withDefaults() ClusterSweepConfig {
	if c.Nodes <= 0 {
		c.Nodes = 128
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 8
	}
	if !(c.FabricGBs > 0) {
		c.FabricGBs = 100
	}
	if !(c.Oversub > 0) {
		c.Oversub = 4
	}
	if c.Jobs <= 0 {
		c.Jobs = 180
	}
	if c.Seed == 0 {
		c.Seed = Seed
	}
	if !(c.MeanGapUs > 0) {
		c.MeanGapUs = 2000
	}
	return c
}

// ClusterSweep runs one seeded job trace through both placement
// policies on the same fleet, measuring what RAP-aware packing buys at
// fleet scale: fewer node-spanning allocations, hence less
// oversubscribed-fabric contention, hence shorter job completion times.
// Everything is deterministic — rerunning reproduces each policy's
// digest bit-for-bit.
func ClusterSweep(cfg ClusterSweepConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults()
	fleet := topo.Uniform(cfg.Nodes, cfg.GPUsPerNode)
	fleet.FabricGBs = cfg.FabricGBs
	fleet.Oversub = cfg.Oversub

	jobs, err := clustersim.GenerateJobs(clustersim.GenConfig{
		Seed:      cfg.Seed,
		NumJobs:   cfg.Jobs,
		MeanGapUs: cfg.MeanGapUs,
		MaxGPUs:   fleet.NumGPUs(),
	})
	if err != nil {
		return nil, err
	}

	res := &ClusterResult{
		Nodes:       cfg.Nodes,
		GPUsPerNode: cfg.GPUsPerNode,
		GPUs:        fleet.NumGPUs(),
		FabricGBs:   cfg.FabricGBs,
		Oversub:     cfg.Oversub,
		Jobs:        cfg.Jobs,
		Seed:        cfg.Seed,
		MeanGapUs:   cfg.MeanGapUs,
	}
	for _, pol := range []clustersim.Policy{clustersim.Pack{}, clustersim.FirstFit{}} {
		sim, err := clustersim.New(clustersim.Config{
			Topo:      fleet,
			Policy:    pol,
			HostCores: HostCores,
		})
		if err != nil {
			return nil, err
		}
		rep, err := sim.Simulate(jobs)
		if err != nil {
			return nil, err
		}
		row := ClusterPolicyRow{
			Policy:     rep.Policy,
			Digest:     rep.Digest(),
			MakespanUs: rep.MakespanUs,
			AvgQueueUs: rep.AvgQueueUs,
			MaxQueueUs: rep.MaxQueueUs,
			AvgJCTUs:   rep.AvgJCTUs,
			GPUUtil:    rep.GPUUtil,
		}
		for _, jr := range rep.Results {
			if jr.Nodes > 1 {
				row.SplitJobs++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteJSON emits the machine-readable fleet report.
func (r *ClusterResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render prints the policy comparison.
func (r *ClusterResult) Render() string {
	header := []string{"policy", "avg JCT (ms)", "avg queue (ms)", "max queue (ms)", "makespan (ms)", "util", "split jobs"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy,
			fmt.Sprintf("%.2f", row.AvgJCTUs/1e3),
			fmt.Sprintf("%.2f", row.AvgQueueUs/1e3),
			fmt.Sprintf("%.2f", row.MaxQueueUs/1e3),
			fmt.Sprintf("%.2f", row.MakespanUs/1e3),
			fmt.Sprintf("%.1f%%", 100*row.GPUUtil),
			fmt.Sprintf("%d", row.SplitJobs),
		})
	}
	return fmt.Sprintf("Cluster fleet: %d nodes × %d GPUs (fabric %g GB/s, oversub %g), %d jobs, seed %d\n\n",
		r.Nodes, r.GPUsPerNode, r.FabricGBs, r.Oversub, r.Jobs, r.Seed) +
		table(header, rows) +
		"\nRAP-aware packing minimizes node-spanning allocations, keeping all-to-all traffic off the oversubscribed fabric.\n"
}
