package experiments

import (
	"fmt"
	"strings"

	"rap/internal/dlrm"
	"rap/internal/gpusim"
	"rap/internal/preproc"
	"rap/internal/sched"
)

// Figure1aResult is the DRAM-bandwidth + SM-utilization trace over two
// bare training iterations (the fluctuation RAP harvests).
type Figure1aResult struct {
	// Samples is GPU 0's utilization resampled at SampleDt µs.
	Samples  []gpusim.Sample
	SampleDt float64
	// IterLatency is one iteration's duration.
	IterLatency float64
}

// Figure1a profiles two training iterations of the Criteo-Kaggle model
// on 4 GPUs with no preprocessing.
func Figure1a() (*Figure1aResult, error) {
	w, err := workloadFor(0, 4096)
	if err != nil {
		return nil, err
	}
	const gpus = 4
	pl := dlrm.PlaceTables(w.Model.TableSizes, gpus)
	stats, err := sched.BuildAndRun(cluster(gpus), w.Model, pl, make([]sched.GPUWork, gpus), sched.PipelineOptions{Iterations: 4})
	if err != nil {
		return nil, err
	}
	// Window: iterations 2 and 3 (steady state).
	start := stats.IterEnds[1]
	end := stats.IterEnds[3]
	dt := (end - start) / 160
	var window []gpusim.Sample
	for _, s := range stats.Result.UtilSeries(0, dt) {
		if s.T >= start && s.T <= end {
			s.T -= start
			window = append(window, s)
		}
	}
	return &Figure1aResult{Samples: window, SampleDt: dt, IterLatency: stats.SteadyIterLatency}, nil
}

// Render prints the series as sparkline-style rows plus summary numbers.
func (r *Figure1aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1(a): SM and DRAM-bandwidth utilization over two training iterations\n")
	fmt.Fprintf(&b, "(iteration latency %.0f us; %d samples at %.0f us)\n\n", r.IterLatency, len(r.Samples), r.SampleDt)
	spark := func(pick func(gpusim.Sample) float64) string {
		glyphs := []rune(" .:-=+*#%@")
		var sb strings.Builder
		for _, s := range r.Samples {
			v := pick(s)
			idx := int(v * float64(len(glyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(glyphs) {
				idx = len(glyphs) - 1
			}
			sb.WriteRune(glyphs[idx])
		}
		return sb.String()
	}
	fmt.Fprintf(&b, "SM util:   |%s|\n", spark(func(s gpusim.Sample) float64 { return s.SM }))
	fmt.Fprintf(&b, "DRAM bw:   |%s|\n", spark(func(s gpusim.Sample) float64 { return s.MemBW }))
	var minSM, maxSM float64 = 1, 0
	for _, s := range r.Samples {
		if s.SM < minSM {
			minSM = s.SM
		}
		if s.SM > maxSM {
			maxSM = s.SM
		}
	}
	fmt.Fprintf(&b, "\nSM utilization fluctuates between %.0f%% and %.0f%% — the leftover RAP harvests.\n",
		minSM*100, maxSM*100)
	return b.String()
}

// Figure1bRow is one point of the NGram-size study.
type Figure1bRow struct {
	Features int
	Warps    int
	SMUtil   float64 // fraction
	DRAMUtil float64
	GPUUtil  float64 // busy fraction: 1 while the kernel runs
	SoloUs   float64
}

// Figure1bResult is the kernel-size → utilization relationship.
type Figure1bResult struct{ Rows []Figure1bRow }

// Figure1b profiles the NGram kernel with a growing number of input
// features (4096 samples per feature, as in the paper).
func Figure1b() (*Figure1bResult, error) {
	res := &Figure1bResult{}
	for _, features := range []int{8, 16, 32, 64, 128} {
		ins := make([]string, features)
		for i := range ins {
			ins[i] = fmt.Sprintf("f%d", i)
		}
		op := preproc.NewNGram("ngram", ins, "out", 3, 1<<20)
		spec := op.Spec(preproc.Shape{Samples: 4096, AvgListLen: 1})
		d := spec.Demand()
		res.Rows = append(res.Rows, Figure1bRow{
			Features: features,
			Warps:    spec.Warps(),
			SMUtil:   d.SM,
			DRAMUtil: d.MemBW,
			GPUUtil:  1,
			SoloUs:   spec.SoloLatency(),
		})
	}
	return res, nil
}

// Render prints the utilization table.
func (r *Figure1bResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", row.Features),
			fmt.Sprintf("%d", row.Warps),
			fmt.Sprintf("%.1f%%", row.SMUtil*100),
			fmt.Sprintf("%.1f%%", row.DRAMUtil*100),
			fmt.Sprintf("%.1f%%", row.GPUUtil*100),
			fmt.Sprintf("%.1f", row.SoloUs),
		}
	}
	return "Figure 1(b): NGram kernel resource utilization vs input size\n\n" +
		table([]string{"#features", "warps", "SM util", "DRAM bw", "GPU util", "solo us"}, rows)
}

// Figure1cRow is one point of the overlap-contention study.
type Figure1cRow struct {
	Features      int
	MLPSoloUs     float64
	MLPOverlapUs  float64
	NGramSoloUs   float64
	StretchFactor float64
}

// Figure1cResult shows MLP-forward latency when co-running with NGram
// kernels of growing size.
type Figure1cResult struct{ Rows []Figure1cRow }

// Figure1c reproduces the case study: overlapping MLP forward with an
// unmanaged NGram kernel stretches training once GPU resources run out.
func Figure1c() (*Figure1cResult, error) {
	w, err := workloadFor(1, 4096)
	if err != nil {
		return nil, err
	}
	pl := dlrm.PlaceTables(w.Model.TableSizes, 1)
	stages := w.Model.IterationStages(0, pl)
	var mlp gpusim.Kernel
	for _, s := range stages {
		if s.Name == "top_fwd" {
			mlp = s.Kernel
		}
	}
	res := &Figure1cResult{}
	for _, features := range []int{0, 8, 16, 32, 64, 128} {
		row := Figure1cRow{Features: features, MLPSoloUs: mlp.SoloLatency()}
		if features == 0 {
			row.MLPOverlapUs = mlp.SoloLatency()
			row.StretchFactor = 1
			res.Rows = append(res.Rows, row)
			continue
		}
		ins := make([]string, features)
		for i := range ins {
			ins[i] = fmt.Sprintf("f%d", i)
		}
		spec := preproc.NewNGram("ngram", ins, "out", 3, 1<<20).Spec(preproc.Shape{Samples: 4096, AvgListLen: 1})
		sim := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 1, Policy: gpusim.FairShare})
		m := sim.AddKernel(0, mlp)
		sim.AddKernel(0, spec.Kernel())
		out, err := sim.Run()
		if err != nil {
			return nil, err
		}
		row.NGramSoloUs = spec.SoloLatency()
		row.MLPOverlapUs = out.OpByID(m).Latency()
		row.StretchFactor = row.MLPOverlapUs / row.MLPSoloUs
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the latency table.
func (r *Figure1cResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", row.Features),
			fmt.Sprintf("%.0f", row.MLPSoloUs),
			fmt.Sprintf("%.0f", row.MLPOverlapUs),
			fmt.Sprintf("%.2fx", row.StretchFactor),
		}
	}
	return "Figure 1(c): MLP forward latency when overlapped with NGram kernels\n\n" +
		table([]string{"ngram #features", "mlp solo us", "mlp overlapped us", "stretch"}, rows)
}
