package experiments

import (
	"fmt"

	"rap/internal/costmodel"
	"rap/internal/dlrm"
	"rap/internal/gbdt"
	"rap/internal/gpusim"
	"rap/internal/preproc"
)

// Figure5Row is one (op, size) probe of the latency-based overhead
// abstraction study.
type Figure5Row struct {
	Op           string
	Warps        int
	StandaloneUs float64
	// OverlapUs is the co-run makespan with the embedding-lookup stage.
	OverlapUs float64
}

// Figure5Result backs both Figure 5(b) (standalone vs overlapping
// latency: all ops on one trend) and Figure 5(c) (#warps vs overlapping
// latency: curves misaligned per op).
type Figure5Result struct{ Rows []Figure5Row }

// Figure5 measures the correlation between standalone preprocessing
// latency and overlapping latency for NGram, SigridHash and Logit
// kernels of growing size co-run with an embedding-lookup stage (§5.1's
// validation experiment).
func Figure5() (*Figure5Result, error) {
	w, err := workloadFor(1, 4096)
	if err != nil {
		return nil, err
	}
	pl := dlrm.PlaceTables(w.Model.TableSizes, 4)
	var lookup gpusim.Kernel
	for _, s := range w.Model.IterationStages(0, pl) {
		if s.Name == "emb_lookup" {
			lookup = s.Kernel
		}
	}
	res := &Figure5Result{}
	for _, samples := range []int{2048, 4096, 8192, 16384, 32768} {
		shape := preproc.Shape{Samples: samples, AvgListLen: 3}
		specs := []preproc.KernelSpec{
			preproc.NewNGram("ngram", []string{"a", "b", "c"}, "o", 3, 1<<20).Spec(shape),
			preproc.NewSigridHash("sigridhash", "a", "o", 1<<20).Spec(shape),
			preproc.NewLogit("logit", "a", "o", 0).Spec(shape),
		}
		for _, spec := range specs {
			sim := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 1, Policy: gpusim.FairShare})
			sim.AddKernel(0, lookup)
			sim.AddKernel(0, spec.Kernel())
			out, err := sim.Run()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Figure5Row{
				Op:           spec.Type.String(),
				Warps:        spec.Warps(),
				StandaloneUs: spec.SoloLatency(),
				OverlapUs:    out.Makespan,
			})
		}
	}
	return res, nil
}

// Render prints both views of the data.
func (r *Figure5Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Op,
			fmt.Sprintf("%d", row.Warps),
			fmt.Sprintf("%.1f", row.StandaloneUs),
			fmt.Sprintf("%.1f", row.OverlapUs),
			fmt.Sprintf("%.2f", row.OverlapUs/row.StandaloneUs),
		}
	}
	return "Figure 5(b)/(c): standalone vs overlapping latency (co-run with embedding lookup)\n" +
		"5(b): overlap latency tracks standalone latency consistently across ops.\n" +
		"5(c): at equal #warps, per-op overlap latencies diverge (warps are not a uniform cost metric).\n\n" +
		table([]string{"op", "warps", "standalone us", "overlap us", "ratio"}, rows)
}

// Table5Result is the latency-predictor accuracy per category.
type Table5Result struct {
	// Accuracy maps predictor category -> fraction within 10% (Table 5).
	Accuracy map[string]float64
	Samples  int
}

// Table5 trains the GBDT latency predictor on ~11K profiled kernels
// (9:1 split) and reports accuracy@10% per operator category.
func Table5() (*Table5Result, error) {
	ds := costmodel.CollectTrainingData(11000, Seed)
	train, eval := ds.Split(0.9, Seed)
	pred, err := costmodel.TrainPredictor(train, gbdt.Config{NumTrees: 150, MaxDepth: 6, LearningRate: 0.1})
	if err != nil {
		return nil, err
	}
	return &Table5Result{Accuracy: pred.Accuracy(eval, 0.10), Samples: ds.Size()}, nil
}

// Render prints the Table 5 layout.
func (r *Table5Result) Render() string {
	order := []string{"1D Ops", "FirstX", "Ngram", "Onehot", "Bucketize"}
	rows := make([][]string, 0, len(order))
	for _, cat := range order {
		rows = append(rows, []string{cat, fmt.Sprintf("%.1f", r.Accuracy[cat]*100)})
	}
	return fmt.Sprintf("Table 5: ML-based latency predictor accuracy (%d kernels, 9:1 split, within 10%%)\n\n",
		r.Samples) + table([]string{"Operators", "Acc. (%)"}, rows)
}
