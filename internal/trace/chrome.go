package trace

import (
	"encoding/json"
	"io"
	"sort"

	"rap/internal/gpusim"
)

// chromeEvent is one "complete" event (ph=X) of the Chrome trace-event
// format (chrome://tracing, Perfetto). Timestamps and durations are in
// microseconds, which matches the simulator's native unit.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// tidFor buckets ops into display rows: training ops, preprocessing,
// communication, host-side work.
func tidFor(tag string) int {
	switch tag {
	case "train":
		return 0
	case "preproc":
		return 1
	case "comm":
		return 2
	case "hostcopy", "cpu":
		return 3
	default:
		return 4
	}
}

// WriteChromeTrace renders the simulation result as a Chrome trace-event
// JSON array: one process per GPU (host ops on pid -1 + NumGPUs), one
// thread row per op class. Load the file in chrome://tracing or Perfetto
// to inspect the co-running timeline visually.
func WriteChromeTrace(w io.Writer, res *gpusim.Result, numGPUs int) error {
	ops := append([]gpusim.OpResult(nil), res.Ops...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
	events := make([]chromeEvent, 0, len(ops))
	for _, o := range ops {
		if o.End <= o.Start {
			continue // barriers and zero-width ops clutter the view
		}
		pid := o.GPU
		if pid < 0 {
			pid = numGPUs // host row
		}
		events = append(events, chromeEvent{
			Name: o.Name,
			Cat:  o.Tag,
			Ph:   "X",
			Ts:   o.Start,
			Dur:  o.End - o.Start,
			PID:  pid,
			TID:  tidFor(o.Tag),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
