package trace

import (
	"encoding/json"
	"io"
	"sort"

	"rap/internal/gpusim"
)

// chromeEvent is one "complete" event (ph=X) of the Chrome trace-event
// format (chrome://tracing, Perfetto). Timestamps and durations are in
// microseconds, which matches the simulator's native unit.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  //rap:unit us
	Dur  float64           `json:"dur"` //rap:unit us
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// tidFor buckets ops into display rows: training ops, preprocessing,
// communication, host-side work.
func tidFor(tag string) int {
	switch tag {
	case "train":
		return 0
	case "preproc":
		return 1
	case "comm":
		return 2
	case "hostcopy", "cpu":
		return 3
	default:
		return 4
	}
}

// spanTID is the dedicated thread row annotation spans render on,
// below the op-class rows of tidFor.
const spanTID = 5

// Span is an auxiliary annotation rendered as its own row of the
// Chrome trace — e.g. a chaos perturbation window explaining why the
// ops above it stretched. GPU < 0 places the span on the host row.
type Span struct {
	Name       string
	Cat        string
	GPU        int
	Start, End float64 //rap:unit us
}

// WriteChromeTrace renders the simulation result as a Chrome trace-event
// JSON array: one process per GPU (host ops on pid -1 + NumGPUs), one
// thread row per op class. Load the file in chrome://tracing or Perfetto
// to inspect the co-running timeline visually.
func WriteChromeTrace(w io.Writer, res *gpusim.Result, numGPUs int) error {
	return WriteChromeTraceWithSpans(w, res, numGPUs, nil)
}

// WriteChromeTraceWithSpans is WriteChromeTrace plus annotation spans
// (perturbation windows, phase markers) on a dedicated row per process.
func WriteChromeTraceWithSpans(w io.Writer, res *gpusim.Result, numGPUs int, spans []Span) error {
	ops := append([]gpusim.OpResult(nil), res.Ops...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
	events := make([]chromeEvent, 0, len(ops))
	for _, o := range ops {
		if o.End <= o.Start {
			continue // barriers and zero-width ops clutter the view
		}
		pid := o.GPU
		if pid < 0 {
			pid = numGPUs // host row
		}
		events = append(events, chromeEvent{
			Name: o.Name,
			Cat:  o.Tag,
			Ph:   "X",
			Ts:   o.Start,
			Dur:  o.End - o.Start,
			PID:  pid,
			TID:  tidFor(o.Tag),
		})
	}
	for _, sp := range spans {
		if sp.End <= sp.Start {
			continue
		}
		pid := sp.GPU
		if pid < 0 {
			pid = numGPUs
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			Ts:   sp.Start,
			Dur:  sp.End - sp.Start,
			PID:  pid,
			TID:  spanTID,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
