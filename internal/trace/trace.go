// Package trace post-processes simulator results into the artifacts the
// paper's figures are built from: resampled utilization series (Figure
// 1a), tag-attributed utilization summaries (Table 4), CSV exports and
// turning-point detection (Figure 11).
package trace

import (
	"fmt"
	"io"
	"sort"

	"rap/internal/gpusim"
)

// WriteUtilCSV writes GPU g's resampled utilization series as CSV
// (t_us, sm, membw).
func WriteUtilCSV(w io.Writer, res *gpusim.Result, g int, dt float64) error {
	if _, err := fmt.Fprintln(w, "t_us,sm,membw"); err != nil {
		return err
	}
	for _, s := range res.UtilSeries(g, dt) {
		if _, err := fmt.Fprintf(w, "%.2f,%.4f,%.4f\n", s.T, s.SM, s.MemBW); err != nil {
			return err
		}
	}
	return nil
}

// WriteOpsCSV writes the op timeline (name, tag, gpu, start, end) sorted
// by start time.
func WriteOpsCSV(w io.Writer, res *gpusim.Result) error {
	ops := append([]gpusim.OpResult(nil), res.Ops...)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start < ops[j].Start {
			return true
		}
		if ops[i].Start > ops[j].Start {
			return false
		}
		return ops[i].ID < ops[j].ID
	})
	if _, err := fmt.Fprintln(w, "name,tag,gpu,start_us,end_us"); err != nil {
		return err
	}
	for _, o := range ops {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.2f,%.2f\n", o.Name, o.Tag, o.GPU, o.Start, o.End); err != nil {
			return err
		}
	}
	return nil
}

// UtilSummary is the Table 4 metric pair for one GPU.
type UtilSummary struct {
	// GPUUtil is the fraction of time with any kernel resident (the
	// NVML "GPU utilization" analogue).
	GPUUtil float64
	// SMUtil is the mean granted SM utilization.
	SMUtil float64
	// TagSM attributes mean SM utilization by kernel tag.
	TagSM map[string]float64
}

// Summarize computes the utilization summary of GPU g over [0, upTo]
// (upTo <= 0 = makespan). An out-of-range g yields a zero summary.
//
//rap:unit upTo us
func Summarize(res *gpusim.Result, g int, upTo float64) UtilSummary {
	if g < 0 || g >= len(res.Util) {
		return UtilSummary{TagSM: map[string]float64{}}
	}
	if upTo <= 0 {
		upTo = res.Makespan
	}
	sm, _ := res.AvgUtil(g, upTo)
	out := UtilSummary{
		GPUUtil: res.BusyFraction(g, upTo),
		SMUtil:  sm,
		TagSM:   map[string]float64{},
	}
	if upTo <= 0 {
		return out
	}
	for _, seg := range res.Util[g] {
		s, e := seg.Start, seg.End
		if s >= upTo {
			break
		}
		if e > upTo {
			e = upTo
		}
		for tag, v := range seg.TagSM {
			out.TagSM[tag] += v * (e - s) / upTo
		}
	}
	return out
}

// MeanSummary averages summaries across GPUs. A non-positive numGPUs
// yields an empty summary instead of NaNs.
//
//rap:unit upTo us
func MeanSummary(res *gpusim.Result, numGPUs int, upTo float64) UtilSummary {
	agg := UtilSummary{TagSM: map[string]float64{}}
	if numGPUs <= 0 {
		return agg
	}
	for g := 0; g < numGPUs; g++ {
		s := Summarize(res, g, upTo)
		agg.GPUUtil += s.GPUUtil
		agg.SMUtil += s.SMUtil
		for tag, v := range s.TagSM {
			agg.TagSM[tag] += v
		}
	}
	n := float64(numGPUs)
	agg.GPUUtil /= n
	agg.SMUtil /= n
	for tag := range agg.TagSM {
		agg.TagSM[tag] /= n
	}
	return agg
}

// TurningPoint returns the index of the first point in ys whose value
// exceeds baseline by more than rel (e.g. 0.10 for the paper's "latency
// increases by more than 10%" criterion), or -1 if none. The baseline is
// ys[0].
func TurningPoint(ys []float64, rel float64) int {
	if len(ys) == 0 {
		return -1
	}
	base := ys[0]
	for i, y := range ys {
		if y > base*(1+rel) {
			return i
		}
	}
	return -1
}
