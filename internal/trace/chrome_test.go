package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rap/internal/gpusim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeResult builds a small but representative timeline: training and
// preprocessing kernels on two GPUs, a cross-GPU transfer, a host copy,
// CPU work, and a zero-width barrier that the trace must drop.
func chromeResult(t *testing.T) *gpusim.Result {
	t.Helper()
	s := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 2})
	tr0 := s.AddKernel(0, gpusim.Kernel{Name: "train_fwd", Work: 50, LaunchOverhead: -1,
		Demand: gpusim.Demand{SM: 0.8, MemBW: 0.2}, Tag: "train"})
	s.AddKernel(0, gpusim.Kernel{Name: "pre_fillnull", Work: 30, LaunchOverhead: -1,
		Demand: gpusim.Demand{SM: 0.1, MemBW: 0.3}, Tag: "preproc"}, gpusim.WithDeps(tr0))
	tr1 := s.AddKernel(1, gpusim.Kernel{Name: "train_fwd", Work: 40, LaunchOverhead: -1,
		Demand: gpusim.Demand{SM: 0.7, MemBW: 0.2}, Tag: "train"})
	s.AddComm("a2a", 0, 1, 1e6, gpusim.WithDeps(tr0))
	s.AddHostCopy("h2d", 1, 1e5, gpusim.WithDeps(tr1))
	s.AddCPU("load_batch", 25, 1)
	s.AddBarrier("iter_end", gpusim.WithDeps(tr0, tr1))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChromeTraceGolden pins the rendered trace byte for byte. The
// simulator is deterministic, so any diff here is a real behavior
// change; regenerate deliberately with `go test ./internal/trace
// -run ChromeTraceGolden -update`.
func TestChromeTraceGolden(t *testing.T) {
	res := chromeResult(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res, 2); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceStable: two renders of the same result are identical.
func TestChromeTraceStable(t *testing.T) {
	res := chromeResult(t)
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, res, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, res, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("back-to-back renders differ")
	}
}

// TestChromeTraceRoundTrip: the emitted JSON parses and reproduces every
// visible op's name, timestamps, category, and process/thread mapping.
func TestChromeTraceRoundTrip(t *testing.T) {
	res := chromeResult(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res, 2); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	// Expected: every op with positive width, sorted by start.
	var visible []gpusim.OpResult
	for _, o := range res.Ops {
		if o.End > o.Start {
			visible = append(visible, o)
		}
	}
	sort.Slice(visible, func(i, j int) bool { return visible[i].Start < visible[j].Start })
	if len(visible) == 0 {
		t.Fatal("fixture produced no visible ops")
	}
	if len(events) != len(visible) {
		t.Fatalf("events = %d, visible ops = %d", len(events), len(visible))
	}
	for i, o := range visible {
		e := events[i]
		if e.Name != o.Name || e.Cat != o.Tag || e.Ph != "X" {
			t.Fatalf("event %d = %+v, op = %+v", i, e, o)
		}
		if e.Ts != o.Start || e.Dur != o.End-o.Start {
			t.Fatalf("event %d timestamps %+v do not round-trip op %+v", i, e, o)
		}
		wantPID := o.GPU
		if wantPID < 0 {
			wantPID = 2 // host row sits after the GPUs
		}
		if e.PID != wantPID || e.TID != tidFor(o.Tag) {
			t.Fatalf("event %d rows %+v do not match op %+v", i, e, o)
		}
	}
}
