package trace

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"rap/internal/gpusim"
)

func result(t *testing.T) *gpusim.Result {
	t.Helper()
	s := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 2})
	a := s.AddKernel(0, gpusim.Kernel{Name: "train_k", Work: 50, LaunchOverhead: -1,
		Demand: gpusim.Demand{SM: 0.8, MemBW: 0.2}, Tag: "train"})
	s.AddKernel(0, gpusim.Kernel{Name: "pre_k", Work: 30, LaunchOverhead: -1,
		Demand: gpusim.Demand{SM: 0.1, MemBW: 0.3}, Tag: "preproc"}, gpusim.WithDeps(a))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteUtilCSV(t *testing.T) {
	res := result(t)
	var sb strings.Builder
	if err := WriteUtilCSV(&sb, res, 0, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t_us,sm,membw" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 8 {
		t.Fatalf("too few samples: %d", len(lines))
	}
}

func TestWriteOpsCSV(t *testing.T) {
	res := result(t)
	var sb strings.Builder
	if err := WriteOpsCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "train_k,train,0") || !strings.Contains(out, "pre_k,preproc,0") {
		t.Fatalf("ops CSV missing rows:\n%s", out)
	}
	// Sorted by start: train before pre.
	if strings.Index(out, "train_k") > strings.Index(out, "pre_k") {
		t.Fatal("ops not sorted by start")
	}
}

func TestSummarize(t *testing.T) {
	res := result(t)
	s := Summarize(res, 0, 0)
	if s.GPUUtil <= 0.99 {
		t.Fatalf("GPU util = %f, want ~1 (always busy)", s.GPUUtil)
	}
	// Mean SM = (0.8*50 + 0.1*30)/80.
	want := (0.8*50 + 0.1*30) / 80
	if diff := s.SMUtil - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("SM util = %f, want %f", s.SMUtil, want)
	}
	if s.TagSM["train"] <= s.TagSM["preproc"] {
		t.Fatalf("tag attribution wrong: %+v", s.TagSM)
	}
	// Idle GPU 1.
	s1 := Summarize(res, 1, 0)
	if s1.GPUUtil != 0 || s1.SMUtil != 0 {
		t.Fatalf("idle GPU summary: %+v", s1)
	}
}

func TestMeanSummary(t *testing.T) {
	res := result(t)
	m := MeanSummary(res, 2, 0)
	s0 := Summarize(res, 0, 0)
	if diff := m.GPUUtil - s0.GPUUtil/2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean GPU util = %f", m.GPUUtil)
	}
	if m.TagSM["train"] != s0.TagSM["train"]/2 {
		t.Fatal("mean tag attribution wrong")
	}
}

func TestSummarizeZeroWindow(t *testing.T) {
	res := &gpusim.Result{Util: [][]gpusim.UtilSegment{nil}}
	s := Summarize(res, 0, 0)
	if s.GPUUtil != 0 || s.SMUtil != 0 {
		t.Fatal("empty result summary should be zero")
	}
}

func TestTurningPoint(t *testing.T) {
	ys := []float64{100, 101, 103, 112, 140}
	if got := TurningPoint(ys, 0.10); got != 3 {
		t.Fatalf("turning point = %d, want 3", got)
	}
	if got := TurningPoint(ys, 0.50); got != -1 {
		t.Fatalf("no turning point expected, got %d", got)
	}
	if got := TurningPoint(nil, 0.1); got != -1 {
		t.Fatalf("empty series: %d", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	res := result(t)
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, res, 2); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0]["name"] != "train_k" || events[0]["ph"] != "X" {
		t.Fatalf("first event = %v", events[0])
	}
	if events[1]["cat"] != "preproc" || events[1]["tid"].(float64) != 1 {
		t.Fatalf("second event = %v", events[1])
	}
	// Durations are positive and rows sorted by start.
	if events[0]["ts"].(float64) > events[1]["ts"].(float64) {
		t.Fatal("events not time-sorted")
	}
}

// failWriter errors after n bytes, to exercise CSV error paths.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestCSVWriteErrors(t *testing.T) {
	res := result(t)
	if err := WriteUtilCSV(&failWriter{left: 0}, res, 0, 10); err == nil {
		t.Fatal("header write error swallowed")
	}
	if err := WriteUtilCSV(&failWriter{left: 15}, res, 0, 10); err == nil {
		t.Fatal("row write error swallowed")
	}
	if err := WriteOpsCSV(&failWriter{left: 0}, res); err == nil {
		t.Fatal("ops header error swallowed")
	}
	if err := WriteOpsCSV(&failWriter{left: 30}, res); err == nil {
		t.Fatal("ops row error swallowed")
	}
	if err := WriteChromeTrace(&failWriter{left: 0}, res, 2); err == nil {
		t.Fatal("chrome trace error swallowed")
	}
}
