package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense("age", 4)
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	d.Values[2] = 7
	c := d.Clone()
	c.Values[2] = 9
	if d.Values[2] != 7 {
		t.Fatalf("clone aliases parent: %v", d.Values)
	}
	if d.HasNaN() {
		t.Fatal("unexpected NaN")
	}
	d.Values[0] = float32(math.NaN())
	if !d.HasNaN() {
		t.Fatal("HasNaN missed NaN")
	}
}

func TestSparseFromLists(t *testing.T) {
	lists := [][]int64{{1, 2, 3}, {}, {9}}
	s := SparseFromLists("cat", lists)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.NNZ() != 4 {
		t.Fatalf("Len=%d NNZ=%d, want 3,4", s.Len(), s.NNZ())
	}
	if got := s.Row(0); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Row(0) = %v", got)
	}
	if got := s.RowLen(1); got != 0 {
		t.Fatalf("RowLen(1) = %d, want 0", got)
	}
	round := s.Lists()
	for i := range lists {
		if len(round[i]) != len(lists[i]) {
			t.Fatalf("round trip row %d: %v vs %v", i, round[i], lists[i])
		}
		for j := range lists[i] {
			if round[i][j] != lists[i][j] {
				t.Fatalf("round trip row %d: %v vs %v", i, round[i], lists[i])
			}
		}
	}
}

func TestSparseValidateCatchesCorruption(t *testing.T) {
	s := SparseFromLists("c", [][]int64{{1}, {2, 3}})
	s.Offsets[1] = 5
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted non-monotone offsets")
	}
	s = SparseFromLists("c", [][]int64{{1}})
	s.Values = append(s.Values, 7)
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted dangling values")
	}
	s = &Sparse{Name: "c"}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted empty offsets")
	}
	s = SparseFromLists("c", [][]int64{{1}})
	s.Offsets[0] = 1
	s.Offsets[1] = 0
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted offsets[0] != 0")
	}
}

func TestBatchAddAndLookup(t *testing.T) {
	b := NewBatch(2)
	if err := b.AddDense(NewDense("d0", 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSparse(NewSparse("s0", 2)); err != nil {
		t.Fatal(err)
	}
	if b.DenseByName("d0") == nil || b.SparseByName("s0") == nil {
		t.Fatal("lookup failed")
	}
	if b.DenseByName("nope") != nil || b.SparseByName("nope") != nil {
		t.Fatal("lookup invented a column")
	}
	if err := b.AddDense(NewDense("d0", 2)); err == nil {
		t.Fatal("duplicate dense accepted")
	}
	if err := b.AddSparse(NewSparse("s0", 2)); err == nil {
		t.Fatal("duplicate sparse accepted")
	}
	if err := b.AddDense(NewDense("d1", 3)); err == nil {
		t.Fatal("wrong-length dense accepted")
	}
	if err := b.AddSparse(NewSparse("s1", 9)); err == nil {
		t.Fatal("wrong-length sparse accepted")
	}
}

func TestBatchReplace(t *testing.T) {
	b := NewBatch(2)
	d := NewDense("d0", 2)
	d.Values[0] = 1
	if err := b.AddDense(d); err != nil {
		t.Fatal(err)
	}
	repl := NewDense("d0", 2)
	repl.Values[0] = 5
	if err := b.ReplaceDense(repl); err != nil {
		t.Fatal(err)
	}
	if b.DenseByName("d0").Values[0] != 5 {
		t.Fatal("replace had no effect")
	}
	if err := b.ReplaceDense(NewDense("missing", 2)); err == nil {
		t.Fatal("replace of missing column accepted")
	}
	if err := b.ReplaceDense(NewDense("d0", 3)); err == nil {
		t.Fatal("replace with wrong length accepted")
	}
	s := NewSparse("s0", 2)
	if err := b.AddSparse(s); err != nil {
		t.Fatal(err)
	}
	if err := b.ReplaceSparse(SparseFromLists("s0", [][]int64{{1}, {2}})); err != nil {
		t.Fatal(err)
	}
	if b.SparseByName("s0").NNZ() != 2 {
		t.Fatal("sparse replace had no effect")
	}
	if err := b.ReplaceSparse(NewSparse("missing", 2)); err == nil {
		t.Fatal("replace of missing sparse accepted")
	}
	if err := b.ReplaceSparse(NewSparse("s0", 4)); err == nil {
		t.Fatal("replace with wrong sparse length accepted")
	}
}

func TestBatchAddOrReplace(t *testing.T) {
	b := NewBatch(1)
	if err := b.AddOrReplaceDense(NewDense("d", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddOrReplaceDense(NewDense("d", 1)); err != nil {
		t.Fatal(err)
	}
	if len(b.Dense) != 1 {
		t.Fatalf("AddOrReplaceDense duplicated: %d columns", len(b.Dense))
	}
	if err := b.AddOrReplaceSparse(NewSparse("s", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddOrReplaceSparse(NewSparse("s", 1)); err != nil {
		t.Fatal(err)
	}
	if len(b.Sparse) != 1 {
		t.Fatalf("AddOrReplaceSparse duplicated: %d columns", len(b.Sparse))
	}
}

func TestBatchCloneIsDeep(t *testing.T) {
	b := NewBatch(2)
	d := NewDense("d", 2)
	d.Values[0] = 1
	if err := b.AddDense(d); err != nil {
		t.Fatal(err)
	}
	s := SparseFromLists("s", [][]int64{{4}, {5, 6}})
	if err := b.AddSparse(s); err != nil {
		t.Fatal(err)
	}
	b.Labels = []float32{0, 1}
	c := b.Clone()
	c.DenseByName("d").Values[0] = 99
	c.SparseByName("s").Values[0] = 99
	c.Labels[0] = 99
	if b.DenseByName("d").Values[0] != 1 || b.SparseByName("s").Values[0] != 4 || b.Labels[0] != 0 {
		t.Fatal("clone aliases parent")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchValidate(t *testing.T) {
	b := NewBatch(2)
	if err := b.AddDense(NewDense("d", 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	b.Labels = []float32{1}
	if err := b.Validate(); err == nil {
		t.Fatal("short labels accepted")
	}
	b.Labels = nil
	b.Dense[0].Values = b.Dense[0].Values[:1]
	if err := b.Validate(); err == nil {
		t.Fatal("short dense accepted")
	}
}

func TestBatchValidateSparseMismatch(t *testing.T) {
	b := NewBatch(2)
	s := NewSparse("s", 2)
	if err := b.AddSparse(s); err != nil {
		t.Fatal(err)
	}
	s.Offsets = s.Offsets[:2] // now length 1
	if err := b.Validate(); err == nil {
		t.Fatal("shrunk sparse accepted")
	}
	s.Offsets = []int32{0, 1, 1}
	if err := b.Validate(); err == nil {
		t.Fatal("dangling offsets accepted")
	}
}

func TestSizeBytes(t *testing.T) {
	b := NewBatch(2)
	if err := b.AddDense(NewDense("d", 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSparse(SparseFromLists("s", [][]int64{{1, 2}, {3}})); err != nil {
		t.Fatal(err)
	}
	b.Labels = []float32{0, 1}
	want := 4*2 + (8*3 + 4*3) + 4*2
	if got := b.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "float32" || Int64.String() != "int64" {
		t.Fatal("dtype names wrong")
	}
	if DType(42).String() == "" {
		t.Fatal("unknown dtype produced empty name")
	}
}

// Property: SparseFromLists -> Lists round-trips for arbitrary jagged input.
func TestSparseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		lists := make([][]int64, n)
		for i := range lists {
			m := rng.Intn(8)
			lists[i] = make([]int64, m)
			for j := range lists[i] {
				lists[i][j] = rng.Int63n(1000)
			}
		}
		s := SparseFromLists("p", lists)
		if s.Validate() != nil || s.Len() != n {
			return false
		}
		back := s.Lists()
		for i := range lists {
			if len(back[i]) != len(lists[i]) {
				return false
			}
			for j := range lists[i] {
				if back[i][j] != lists[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NNZ equals the sum of row lengths.
func TestSparseNNZProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		lists := make([][]int64, n)
		for i := range lists {
			lists[i] = make([]int64, rng.Intn(5))
		}
		s := SparseFromLists("p", lists)
		sum := 0
		for i := 0; i < s.Len(); i++ {
			sum += s.RowLen(i)
		}
		return sum == s.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShallowCopy(t *testing.T) {
	b := NewBatch(2)
	d := NewDense("d", 2)
	d.Values[0] = 7
	if err := b.AddDense(d); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSparse(SparseFromLists("s", [][]int64{{1}, {2}})); err != nil {
		t.Fatal(err)
	}
	b.Labels = []float32{0, 1}

	v := b.ShallowCopy()
	// Columns are shared...
	if v.DenseByName("d") != b.DenseByName("d") {
		t.Fatal("shallow copy cloned column data")
	}
	if v.Labels[1] != 1 {
		t.Fatal("labels not shared")
	}
	// ...but the tables are independent: adding to the view must not
	// affect the base.
	if err := v.AddDense(NewDense("extra", 2)); err != nil {
		t.Fatal(err)
	}
	if b.DenseByName("extra") != nil {
		t.Fatal("view mutation leaked into base")
	}
	// Replacing in the view leaves the base untouched.
	repl := NewDense("d", 2)
	repl.Values[0] = 99
	if err := v.ReplaceDense(repl); err != nil {
		t.Fatal(err)
	}
	if b.DenseByName("d").Values[0] != 7 {
		t.Fatal("view replace leaked into base")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseSlicePanicsOnBadRange(t *testing.T) {
	s := SparseFromLists("s", [][]int64{{1}, {2}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad slice range")
		}
	}()
	s.Slice(1, 5)
}

func TestSparseSlice(t *testing.T) {
	s := SparseFromLists("s", [][]int64{{1, 2}, {3}, {}, {4, 5, 6}})
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.NNZ() != 1 {
		t.Fatalf("slice shape: len=%d nnz=%d", sub.Len(), sub.NNZ())
	}
	if sub.Row(0)[0] != 3 || sub.RowLen(1) != 0 {
		t.Fatalf("slice contents wrong: %v", sub.Values)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Slice is a copy.
	sub.Values[0] = 99
	if s.Values[2] != 3 {
		t.Fatal("slice aliases parent")
	}
}
