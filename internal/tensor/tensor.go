// Package tensor provides the column and batch types shared by the data
// loader, the preprocessing operators and the DLRM trainer.
//
// DLRM input comes in two flavours (paper §2.3): dense features are
// continuous scalars consumed by the MLPs, sparse features are variable
// length lists of categorical ids used to look up embedding rows. A Batch
// groups one column per feature for a fixed number of samples.
//
// Sparse columns use the offsets+values ("CSR") layout so that a whole
// column is two contiguous slices regardless of per-sample list lengths;
// every operator and the embedding lookup iterate it without allocating.
package tensor

import (
	"fmt"
	"math"
)

// DType enumerates the element types a column can hold.
type DType int

const (
	// Float32 is the element type of dense columns.
	Float32 DType = iota
	// Int64 is the element type of sparse id columns.
	Int64
)

// String returns the lower-case name of the dtype.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Int64:
		return "int64"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Dense is a column of one float32 value per sample.
type Dense struct {
	Name   string
	Values []float32
}

// NewDense allocates a dense column with n samples.
func NewDense(name string, n int) *Dense {
	return &Dense{Name: name, Values: make([]float32, n)}
}

// Len returns the number of samples in the column.
func (d *Dense) Len() int { return len(d.Values) }

// Clone returns a deep copy of the column.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.Name, d.Len())
	copy(out.Values, d.Values)
	return out
}

// HasNaN reports whether any value is NaN.
func (d *Dense) HasNaN() bool {
	for _, v := range d.Values {
		if math.IsNaN(float64(v)) {
			return true
		}
	}
	return false
}

// Sparse is a jagged column of int64 ids in CSR layout: sample i owns
// Values[Offsets[i]:Offsets[i+1]]. len(Offsets) == Len()+1 always holds.
type Sparse struct {
	Name    string
	Offsets []int32
	Values  []int64
}

// NewSparse allocates an empty sparse column with n samples (all lists
// empty).
func NewSparse(name string, n int) *Sparse {
	return &Sparse{Name: name, Offsets: make([]int32, n+1)}
}

// SparseFromLists builds a sparse column from per-sample id lists.
func SparseFromLists(name string, lists [][]int64) *Sparse {
	s := &Sparse{Name: name, Offsets: make([]int32, len(lists)+1)}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	s.Values = make([]int64, 0, total)
	for i, l := range lists {
		s.Values = append(s.Values, l...)
		s.Offsets[i+1] = int32(len(s.Values))
	}
	return s
}

// Len returns the number of samples in the column.
func (s *Sparse) Len() int { return len(s.Offsets) - 1 }

// NNZ returns the total number of ids across all samples.
func (s *Sparse) NNZ() int { return len(s.Values) }

// Row returns the id list of sample i. The returned slice aliases the
// column storage.
func (s *Sparse) Row(i int) []int64 {
	return s.Values[s.Offsets[i]:s.Offsets[i+1]]
}

// RowLen returns len(Row(i)) without slicing.
func (s *Sparse) RowLen(i int) int {
	return int(s.Offsets[i+1] - s.Offsets[i])
}

// Clone returns a deep copy of the column.
func (s *Sparse) Clone() *Sparse {
	out := &Sparse{
		Name:    s.Name,
		Offsets: make([]int32, len(s.Offsets)),
		Values:  make([]int64, len(s.Values)),
	}
	copy(out.Offsets, s.Offsets)
	copy(out.Values, s.Values)
	return out
}

// Lists expands the column into per-sample slices (copies; test helper).
func (s *Sparse) Lists() [][]int64 {
	out := make([][]int64, s.Len())
	for i := range out {
		row := s.Row(i)
		out[i] = append([]int64(nil), row...)
	}
	return out
}

// Slice returns a copy of rows [lo, hi) as a standalone column.
func (s *Sparse) Slice(lo, hi int) *Sparse {
	if lo < 0 || hi > s.Len() || lo > hi {
		//lint:ignore panicpath checked invariant: callers slice within Len by construction
		panic(fmt.Sprintf("tensor: slice [%d,%d) of %d-row sparse %q", lo, hi, s.Len(), s.Name))
	}
	out := &Sparse{Name: s.Name, Offsets: make([]int32, hi-lo+1)}
	base := s.Offsets[lo]
	for i := lo; i <= hi; i++ {
		out.Offsets[i-lo] = s.Offsets[i] - base
	}
	out.Values = append([]int64(nil), s.Values[base:s.Offsets[hi]]...)
	return out
}

// Validate checks the CSR invariants.
func (s *Sparse) Validate() error {
	if len(s.Offsets) == 0 {
		return fmt.Errorf("tensor: sparse %q has no offsets", s.Name)
	}
	if s.Offsets[0] != 0 {
		return fmt.Errorf("tensor: sparse %q offsets[0]=%d, want 0", s.Name, s.Offsets[0])
	}
	for i := 1; i < len(s.Offsets); i++ {
		if s.Offsets[i] < s.Offsets[i-1] {
			return fmt.Errorf("tensor: sparse %q offsets not monotone at %d", s.Name, i)
		}
	}
	if int(s.Offsets[len(s.Offsets)-1]) != len(s.Values) {
		return fmt.Errorf("tensor: sparse %q last offset %d != len(values) %d",
			s.Name, s.Offsets[len(s.Offsets)-1], len(s.Values))
	}
	return nil
}

// Batch is one unit of training input: a fixed number of samples with a
// set of dense columns, a set of sparse columns and the click labels.
type Batch struct {
	Samples int
	Dense   []*Dense
	Sparse  []*Sparse
	Labels  []float32

	denseIdx  map[string]int
	sparseIdx map[string]int
}

// NewBatch creates an empty batch for n samples.
func NewBatch(n int) *Batch {
	return &Batch{
		Samples:   n,
		denseIdx:  make(map[string]int),
		sparseIdx: make(map[string]int),
	}
}

// AddDense appends a dense column. It returns an error if the name is
// taken or the length disagrees with the batch.
func (b *Batch) AddDense(c *Dense) error {
	if c.Len() != b.Samples {
		return fmt.Errorf("tensor: dense %q has %d samples, batch has %d", c.Name, c.Len(), b.Samples)
	}
	if _, dup := b.denseIdx[c.Name]; dup {
		return fmt.Errorf("tensor: duplicate dense column %q", c.Name)
	}
	b.denseIdx[c.Name] = len(b.Dense)
	b.Dense = append(b.Dense, c)
	return nil
}

// AddSparse appends a sparse column with the same checks as AddDense.
func (b *Batch) AddSparse(c *Sparse) error {
	if c.Len() != b.Samples {
		return fmt.Errorf("tensor: sparse %q has %d samples, batch has %d", c.Name, c.Len(), b.Samples)
	}
	if _, dup := b.sparseIdx[c.Name]; dup {
		return fmt.Errorf("tensor: duplicate sparse column %q", c.Name)
	}
	b.sparseIdx[c.Name] = len(b.Sparse)
	b.Sparse = append(b.Sparse, c)
	return nil
}

// DenseByName returns the dense column with the given name, or nil.
func (b *Batch) DenseByName(name string) *Dense {
	if i, ok := b.denseIdx[name]; ok {
		return b.Dense[i]
	}
	return nil
}

// SparseByName returns the sparse column with the given name, or nil.
func (b *Batch) SparseByName(name string) *Sparse {
	if i, ok := b.sparseIdx[name]; ok {
		return b.Sparse[i]
	}
	return nil
}

// ReplaceDense swaps the column stored under c.Name (which must exist)
// with c. Operators use it to publish outputs in place.
func (b *Batch) ReplaceDense(c *Dense) error {
	i, ok := b.denseIdx[c.Name]
	if !ok {
		return fmt.Errorf("tensor: no dense column %q to replace", c.Name)
	}
	if c.Len() != b.Samples {
		return fmt.Errorf("tensor: dense %q has %d samples, batch has %d", c.Name, c.Len(), b.Samples)
	}
	b.Dense[i] = c
	return nil
}

// ReplaceSparse is ReplaceDense for sparse columns.
func (b *Batch) ReplaceSparse(c *Sparse) error {
	i, ok := b.sparseIdx[c.Name]
	if !ok {
		return fmt.Errorf("tensor: no sparse column %q to replace", c.Name)
	}
	if c.Len() != b.Samples {
		return fmt.Errorf("tensor: sparse %q has %d samples, batch has %d", c.Name, c.Len(), b.Samples)
	}
	b.Sparse[i] = c
	return nil
}

// AddOrReplaceSparse publishes c whether or not the name exists yet.
func (b *Batch) AddOrReplaceSparse(c *Sparse) error {
	if _, ok := b.sparseIdx[c.Name]; ok {
		return b.ReplaceSparse(c)
	}
	return b.AddSparse(c)
}

// AddOrReplaceDense publishes c whether or not the name exists yet.
func (b *Batch) AddOrReplaceDense(c *Dense) error {
	if _, ok := b.denseIdx[c.Name]; ok {
		return b.ReplaceDense(c)
	}
	return b.AddDense(c)
}

// ShallowCopy returns a batch sharing the column data but owning its
// own column tables, so concurrent executors can publish new columns
// into independent views and merge them later. Mutating shared column
// *contents* through a shallow copy is a data race; preprocessing
// operators never mutate their inputs (they clone), which is what makes
// this safe.
func (b *Batch) ShallowCopy() *Batch {
	out := NewBatch(b.Samples)
	out.Dense = append([]*Dense(nil), b.Dense...)
	out.Sparse = append([]*Sparse(nil), b.Sparse...)
	for k, v := range b.denseIdx {
		out.denseIdx[k] = v
	}
	for k, v := range b.sparseIdx {
		out.sparseIdx[k] = v
	}
	out.Labels = b.Labels
	return out
}

// Clone deep-copies the batch.
func (b *Batch) Clone() *Batch {
	out := NewBatch(b.Samples)
	for _, d := range b.Dense {
		if err := out.AddDense(d.Clone()); err != nil {
			//lint:ignore panicpath checked invariant: the clone source was validated on construction
			panic("tensor: clone: " + err.Error()) // impossible: source was valid
		}
	}
	for _, s := range b.Sparse {
		if err := out.AddSparse(s.Clone()); err != nil {
			//lint:ignore panicpath checked invariant: the clone source was validated on construction
			panic("tensor: clone: " + err.Error())
		}
	}
	if b.Labels != nil {
		out.Labels = append([]float32(nil), b.Labels...)
	}
	return out
}

// Validate checks every column against the batch invariants.
func (b *Batch) Validate() error {
	for _, d := range b.Dense {
		if d.Len() != b.Samples {
			return fmt.Errorf("tensor: dense %q length %d != %d", d.Name, d.Len(), b.Samples)
		}
	}
	for _, s := range b.Sparse {
		if err := s.Validate(); err != nil {
			return err
		}
		if s.Len() != b.Samples {
			return fmt.Errorf("tensor: sparse %q length %d != %d", s.Name, s.Len(), b.Samples)
		}
	}
	if b.Labels != nil && len(b.Labels) != b.Samples {
		return fmt.Errorf("tensor: labels length %d != %d", len(b.Labels), b.Samples)
	}
	return nil
}

// SizeBytes returns the total payload size of the batch, used by the
// simulator to model host-to-device copies.
func (b *Batch) SizeBytes() int {
	n := 0
	for _, d := range b.Dense {
		n += 4 * d.Len()
	}
	for _, s := range b.Sparse {
		n += 8*s.NNZ() + 4*len(s.Offsets)
	}
	n += 4 * len(b.Labels)
	return n
}
