package mapping

import (
	"testing"

	"rap/internal/dlrm"
	"rap/internal/preproc"
)

func cfgFor(t *testing.T, plan *preproc.Plan, gpus int) Config {
	t.Helper()
	sizes := make([]int64, plan.NumTables)
	for i := range sizes {
		sizes[i] = 1 << 20
	}
	caps := make([]float64, gpus)
	for i := range caps {
		caps[i] = 3000
	}
	return Config{
		Plan:           plan,
		Placement:      dlrm.PlaceTables(sizes, gpus),
		PerGPUBatch:    4096,
		CapacityPerGPU: caps,
	}
}

func TestDataParallelMapping(t *testing.T) {
	plan := preproc.MustStandardPlan(1, nil)
	cfg := cfgFor(t, plan, 4)
	res, err := DataParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every GPU runs every graph on the per-GPU slice.
	for g := 0; g < 4; g++ {
		if len(res.PerGPU[g]) != len(plan.Graphs) {
			t.Fatalf("gpu %d has %d graphs, want %d", g, len(res.PerGPU[g]), len(plan.Graphs))
		}
		for _, a := range res.PerGPU[g] {
			if a.Shape.Samples != 4096 {
				t.Fatalf("DP slice samples = %d", a.Shape.Samples)
			}
		}
		if res.CommBytes[g] <= 0 {
			t.Fatal("DP mapping must pay input communication")
		}
	}
	// Perfectly balanced.
	if res.Imbalance() > 1.0001 {
		t.Fatalf("DP imbalance = %f", res.Imbalance())
	}
}

func TestDataLocalityMapping(t *testing.T) {
	plan := preproc.MustStandardPlan(1, nil)
	cfg := cfgFor(t, plan, 4)
	res, err := DataLocality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Zero communication: every graph sits with its consumer (plan 1 has
	// single-table graphs).
	if res.TotalComm() != 0 {
		t.Fatalf("DL comm = %f, want 0", res.TotalComm())
	}
	// Sparse graphs appear exactly once; dense graphs on every GPU.
	seen := map[string]int{}
	for g := range res.PerGPU {
		for _, a := range res.PerGPU[g] {
			seen[a.Graph.Name]++
			if len(a.Graph.Outputs) > 0 {
				// Whole-batch preprocessing on the home GPU.
				if a.Shape.Samples != 4096*4 {
					t.Fatalf("sparse graph %s samples = %d", a.Graph.Name, a.Shape.Samples)
				}
				home := cfg.Placement.TableGPU[a.Graph.Outputs[0].Table]
				if home != g {
					t.Fatalf("graph %s on gpu %d, home %d", a.Graph.Name, g, home)
				}
			}
		}
	}
	for _, g := range plan.Graphs {
		want := 1
		if len(g.Outputs) == 0 {
			want = 4
		}
		if seen[g.Name] != want {
			t.Fatalf("graph %s appears %d times, want %d", g.Name, seen[g.Name], want)
		}
	}
}

func TestDataLocalitySkewImbalance(t *testing.T) {
	plan := preproc.SkewedPlan(6, nil)
	cfg := cfgFor(t, plan, 4)
	res, err := DataLocality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance() < 1.2 {
		t.Fatalf("skewed plan should imbalance DL mapping: %f", res.Imbalance())
	}
}

func TestRAPSearchImprovesSkewedBottleneck(t *testing.T) {
	plan := preproc.SkewedPlan(6, nil)
	cfg := cfgFor(t, plan, 4)
	// Tight capacity so the imbalance shows up as exposed cost.
	for i := range cfg.CapacityPerGPU {
		cfg.CapacityPerGPU[i] = 500
	}
	dl, err := DataLocality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rap, err := RAPSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rap.Moves == 0 {
		t.Fatal("RAP search made no moves on a skewed plan")
	}
	cost := cfg.costFn()
	maxCost := func(r *Result) float64 {
		worst := 0.0
		for g := range r.PerGPU {
			if c := cost(g, r.PerGPU[g], r.CommBytes[g]); c > worst {
				worst = c
			}
		}
		return worst
	}
	if maxCost(rap) >= maxCost(dl) {
		t.Fatalf("RAP bottleneck %.1f not better than DL %.1f", maxCost(rap), maxCost(dl))
	}
	// RAP trades a little communication for balance.
	if rap.Imbalance() >= dl.Imbalance() {
		t.Fatalf("RAP imbalance %.3f not better than DL %.3f", rap.Imbalance(), dl.Imbalance())
	}
}

func TestRAPSearchNoMovesWhenBalanced(t *testing.T) {
	plan := preproc.MustStandardPlan(1, nil)
	cfg := cfgFor(t, plan, 4)
	// Ample capacity: every GPU cost is 0, no move can help.
	for i := range cfg.CapacityPerGPU {
		cfg.CapacityPerGPU[i] = 1e9
	}
	rap, err := RAPSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rap.Moves != 0 {
		t.Fatalf("unnecessary moves: %d", rap.Moves)
	}
	if rap.TotalComm() != 0 {
		t.Fatal("balanced RAP should keep zero comm")
	}
}

func TestRAPSearchGraphConservation(t *testing.T) {
	plan := preproc.SkewedPlan(8, nil)
	cfg := cfgFor(t, plan, 4)
	for i := range cfg.CapacityPerGPU {
		cfg.CapacityPerGPU[i] = 300
	}
	rap, err := RAPSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sample conservation: every sparse graph's assignments cover the
	// global batch exactly once (whole or split); dense graphs cover one
	// per-GPU batch on every GPU.
	samples := map[string]int{}
	for g := range rap.PerGPU {
		for _, a := range rap.PerGPU[g] {
			samples[a.Graph.Name] += a.Shape.Samples
		}
	}
	for _, g := range plan.Graphs {
		want := cfg.PerGPUBatch * cfg.Placement.NumGPUs
		if samples[g.Name] != want {
			t.Fatalf("graph %s covers %d samples, want %d", g.Name, samples[g.Name], want)
		}
	}
	// Comm is consistent with placements: recompute from scratch.
	for g := range rap.PerGPU {
		if diff := commOf(rap.PerGPU[g], g, cfg) - rap.CommBytes[g]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("gpu %d comm drifted", g)
		}
	}
}

func TestMappingValidation(t *testing.T) {
	plan := preproc.MustStandardPlan(0, nil)
	bad := cfgFor(t, plan, 2)
	bad.PerGPUBatch = 0
	if _, err := DataParallel(bad); err == nil {
		t.Fatal("bad batch accepted")
	}
	if _, err := DataLocality(Config{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := RAPSearch(Config{Plan: plan}); err == nil {
		t.Fatal("missing placement accepted")
	}
}

func TestHomeGPUMajority(t *testing.T) {
	pl := dlrm.Placement{NumGPUs: 2, TableGPU: []int{0, 1, 1}}
	g := &preproc.Graph{
		Name: "multi",
		Ops:  []preproc.Op{preproc.NewFillNullSparse("fn", "cat_0", "x", 0)},
		Outputs: []preproc.GraphOutput{
			{Table: 0, Col: "x"}, {Table: 1, Col: "x"}, {Table: 2, Col: "x"},
		},
	}
	if got := homeGPU(g, pl); got != 1 {
		t.Fatalf("homeGPU = %d, want 1 (majority)", got)
	}
	dense := &preproc.Graph{Name: "d"}
	if got := homeGPU(dense, pl); got != -1 {
		t.Fatalf("dense home = %d", got)
	}
}

func TestNGramGraphCommCharged(t *testing.T) {
	// Plan 2 has NGram graphs feeding 3 tables; if those tables land on
	// different GPUs, DL mapping pays for the remote outputs.
	plan := preproc.MustStandardPlan(2, nil)
	cfg := cfgFor(t, plan, 4)
	res, err := DataLocality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-output graphs exist, and with greedy placement at least one
	// has outputs on two GPUs, so some comm is expected.
	if res.TotalComm() == 0 {
		t.Skip("placement happened to co-locate all multi-output graphs")
	}
}

func TestRAPSearchMemoNeverReEvaluates(t *testing.T) {
	plan := preproc.SkewedPlan(6, nil)
	cfg := cfgFor(t, plan, 4)
	for i := range cfg.CapacityPerGPU {
		cfg.CapacityPerGPU[i] = 500
	}
	// A counting cost that records every (shape-keyed) evaluation: the
	// memo must never hand the same candidate to the cost model twice.
	seen := map[string]int{}
	base := cfg.costFn()
	probe := newCostMemo(nil, plan) // key helper only
	cfg.Cost = func(gpu int, items []Assign, comm float64) float64 {
		if key := probe.key(gpu, items, comm); key != "" {
			seen[key]++
			if seen[key] > 1 {
				t.Fatalf("candidate re-evaluated %d times (gpu %d, %d items)", seen[key], gpu, len(items))
			}
		}
		return base(gpu, items, comm)
	}
	res, err := RAPSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 {
		t.Fatal("search made no moves; memo not exercised")
	}
	if res.CostCacheHits == 0 {
		t.Fatal("no cache hits on a multi-iteration search")
	}
	if res.CostEvals != len(seen) {
		t.Fatalf("CostEvals = %d, distinct evaluations = %d", res.CostEvals, len(seen))
	}
}

func TestRAPSearchMemoDoesNotChangeResult(t *testing.T) {
	// The memo is pure plumbing: a run scored through it must equal a
	// run whose cost function bypasses keying entirely (cfg.Cost wraps
	// the default, but the wrapper is transparent).
	plan := preproc.SkewedPlan(6, nil)
	cfg := cfgFor(t, plan, 4)
	for i := range cfg.CapacityPerGPU {
		cfg.CapacityPerGPU[i] = 500
	}
	a, err := RAPSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RAPSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Moves != b.Moves || a.Imbalance() != b.Imbalance() || a.TotalComm() != b.TotalComm() {
		t.Fatalf("memoized search nondeterministic: %+v vs %+v", a, b)
	}
}
