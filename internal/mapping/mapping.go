// Package mapping implements the inter-GPU preprocessing-graph mapping
// strategies of the RAP paper: batch-parallel ("mapping by batch"),
// data-locality ("mapping by data dependency"), and RAP's joint
// heuristic search (§7.2) that starts from data locality and rebalances
// graphs between GPUs when the balance gain outweighs the added input
// communication.
package mapping

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"rap/internal/dlrm"
	"rap/internal/preproc"
)

// bytesPerID is the wire size of one preprocessed sparse id.
const bytesPerID = 8 //rap:unit B

// bytesPerDense is the wire size of one dense feature value.
const bytesPerDense = 4 //rap:unit B

// Assign is one graph scheduled on one GPU with the sample share it
// preprocesses there.
type Assign struct {
	Graph *preproc.Graph
	// Shape is the data volume this GPU processes for the graph.
	Shape preproc.Shape
}

// Result is a complete mapping of a preprocessing plan onto the GPUs.
type Result struct {
	Strategy string
	// PerGPU[g] lists the graph assignments of GPU g.
	PerGPU [][]Assign
	// CommBytes[g] is the per-batch input communication GPU g must
	// perform because some of its outputs are consumed elsewhere.
	CommBytes []float64
	// Moves counts accepted rebalancing moves (RAP search only).
	Moves int
	// CostEvals counts cost-model evaluations the RAP search actually
	// ran; CostCacheHits counts evaluations answered from the
	// assignment-shape memo instead (RAP search only). The cost model
	// runs a full co-run schedule per call, so hits are the search's
	// main savings.
	CostEvals     int
	CostCacheHits int
}

// CostFn scores one GPU's preprocessing assignment: the estimated
// per-iteration exposed latency of running the given graphs plus the
// given input communication on GPU g. RAPSearch minimizes the maximum
// over GPUs.
type CostFn func(gpu int, items []Assign, commBytes float64) float64

// Config parameterizes the mapping strategies.
type Config struct {
	Plan      *preproc.Plan
	Placement dlrm.Placement
	// PerGPUBatch is the per-GPU training batch size; the global batch
	// is PerGPUBatch × NumGPUs.
	PerGPUBatch int
	// LinkGBs converts communication bytes to µs in the default cost.
	LinkGBs float64 //rap:unit GB/s
	// CapacityPerGPU is each GPU's per-iteration overlapping capacity
	// (µs), used by the default cost function.
	CapacityPerGPU []float64 //rap:unit us
	// Cost overrides the default work-vs-capacity cost model.
	Cost CostFn
	// MaxMoves bounds the RAP search (default 200).
	MaxMoves int
}

func (c Config) validate() error {
	if c.Plan == nil {
		return fmt.Errorf("mapping: nil plan")
	}
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if err := c.Placement.Validate(); err != nil {
		return err
	}
	if c.PerGPUBatch <= 0 {
		return fmt.Errorf("mapping: PerGPUBatch must be positive")
	}
	return nil
}

// linkGBs returns the configured link bandwidth or its default.
//
//rap:unit return GB/s
func (c Config) linkGBs() float64 {
	if c.LinkGBs <= 0 {
		return 300
	}
	return c.LinkGBs
}

func (c Config) globalBatch() int { return c.PerGPUBatch * c.Placement.NumGPUs }

func (c Config) costFn() CostFn {
	if c.Cost != nil {
		return c.Cost
	}
	return func(gpu int, items []Assign, commBytes float64) float64 {
		work := 0.0
		for _, a := range items {
			work += a.Graph.TotalWork(a.Shape)
		}
		capacity := 0.0
		if gpu < len(c.CapacityPerGPU) {
			capacity = c.CapacityPerGPU[gpu]
		}
		exposed := work - capacity
		if exposed < 0 {
			exposed = 0
		}
		return exposed + commBytes/(c.linkGBs()*1e3)
	}
}

// sparseOutBytes estimates the wire size of one graph output column for
// the given sample count.
//
//rap:unit return B
func sparseOutBytes(samples int, avgListLen float64) float64 {
	if avgListLen <= 0 {
		avgListLen = 1
	}
	return float64(samples) * avgListLen * bytesPerID
}

// DataParallel maps by batch: every GPU preprocesses its own 1/N sample
// slice of every graph, then ships each table's ids to the table's
// owner. Minimal imbalance, maximal input communication.
//
//rap:deterministic
func DataParallel(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumGPUs
	res := &Result{Strategy: "data-parallel", PerGPU: make([][]Assign, n), CommBytes: make([]float64, n)}
	shape := preproc.Shape{Samples: cfg.PerGPUBatch, AvgListLen: cfg.Plan.AvgListLen}
	for g := 0; g < n; g++ {
		for _, gr := range cfg.Plan.Graphs {
			res.PerGPU[g] = append(res.PerGPU[g], Assign{Graph: gr, Shape: shape})
			// Each sparse output row is needed by the owning table's
			// GPU; on average (n-1)/n of this GPU's slice is remote.
			for range gr.Outputs {
				res.CommBytes[g] += sparseOutBytes(cfg.PerGPUBatch, cfg.Plan.AvgListLen) * float64(n-1) / float64(n)
			}
		}
	}
	return res, nil
}

// homeGPU returns the GPU owning the majority of a graph's output
// tables (ties to the lowest GPU); -1 for pure-dense graphs.
func homeGPU(g *preproc.Graph, pl dlrm.Placement) int {
	if len(g.Outputs) == 0 {
		return -1
	}
	votes := map[int]int{}
	for _, o := range g.Outputs {
		votes[pl.TableGPU[o.Table]]++
	}
	gpus := make([]int, 0, len(votes))
	for gpu := range votes {
		gpus = append(gpus, gpu)
	}
	sort.Ints(gpus)
	best, bestVotes := -1, -1
	for _, gpu := range gpus {
		if v := votes[gpu]; v > bestVotes {
			best, bestVotes = gpu, v
		}
	}
	return best
}

// commBytesFor returns the input communication a graph incurs when
// executed on GPU `on`: every output consumed by a table on another GPU
// must be shipped there, for the full global batch.
func commBytesFor(g *preproc.Graph, on int, cfg Config) float64 {
	total := 0.0
	for _, o := range g.Outputs {
		if cfg.Placement.TableGPU[o.Table] != on {
			total += sparseOutBytes(cfg.globalBatch(), cfg.Plan.AvgListLen)
		}
	}
	return total
}

// assignLocality builds the data-locality assignment: sparse graphs run
// whole-batch on their home GPU; dense graphs are duplicated on every
// GPU, each processing only its local batch (replicated MLPs consume
// dense features locally).
func assignLocality(cfg Config) ([][]Assign, []float64) {
	n := cfg.Placement.NumGPUs
	perGPU := make([][]Assign, n)
	comm := make([]float64, n)
	globalShape := preproc.Shape{Samples: cfg.globalBatch(), AvgListLen: cfg.Plan.AvgListLen}
	localShape := preproc.Shape{Samples: cfg.PerGPUBatch, AvgListLen: cfg.Plan.AvgListLen}
	for _, gr := range cfg.Plan.Graphs {
		home := homeGPU(gr, cfg.Placement)
		if home < 0 {
			for g := 0; g < n; g++ {
				perGPU[g] = append(perGPU[g], Assign{Graph: gr, Shape: localShape})
			}
			continue
		}
		perGPU[home] = append(perGPU[home], Assign{Graph: gr, Shape: globalShape})
		comm[home] += commBytesFor(gr, home, cfg)
	}
	return perGPU, comm
}

// DataLocality maps by data dependency: zero (or minimal) input
// communication, but workload balance follows table placement.
//
//rap:deterministic
func DataLocality(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	perGPU, comm := assignLocality(cfg)
	return &Result{Strategy: "data-locality", PerGPU: perGPU, CommBytes: comm}, nil
}

// minSplitSamples is the smallest sample slice a graph assignment may be
// split into during rebalancing.
const minSplitSamples = 1024

// itemComm returns the input communication one assignment incurs on GPU
// gpu, scaled by its sample share of the global batch.
func itemComm(a Assign, gpu int, cfg Config) float64 {
	if len(a.Graph.Outputs) == 0 {
		return 0
	}
	return commBytesFor(a.Graph, gpu, cfg) * float64(a.Shape.Samples) / float64(cfg.globalBatch())
}

func commOf(items []Assign, gpu int, cfg Config) float64 {
	total := 0.0
	for _, a := range items {
		total += itemComm(a, gpu, cfg)
	}
	return total
}

// costMemo memoizes CostFn evaluations within one RAPSearch run, keyed
// by a content hash of the candidate assignment's shape: the GPU, the
// (graph, sample share) list, and the communication volume. CostFn is
// required to be a pure function of exactly those inputs (the default
// work-vs-capacity cost and the framework's schedule cost both are), so
// a hit returns what the evaluation would have computed — unchanged
// GPUs are never re-scored across move iterations. Item order is part
// of the key; the search builds candidate lists deterministically, so
// reordered-but-equal lists only cost an extra miss, never a wrong hit.
type costMemo struct {
	raw     CostFn
	graphID map[*preproc.Graph]int
	cache   map[string]float64
	evals   int
	hits    int
}

func newCostMemo(raw CostFn, plan *preproc.Plan) *costMemo {
	ids := make(map[*preproc.Graph]int, len(plan.Graphs))
	for i, g := range plan.Graphs {
		ids[g] = i
	}
	return &costMemo{raw: raw, graphID: ids, cache: map[string]float64{}}
}

// key renders the assignment shape; an empty key (a graph outside the
// plan) disables memoization for that call.
func (m *costMemo) key(gpu int, items []Assign, comm float64) string {
	h := sha256.New()
	f := func(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }
	fmt.Fprintf(h, "gpu %d comm %s\n", gpu, f(comm))
	for _, a := range items {
		id, ok := m.graphID[a.Graph]
		if !ok {
			return ""
		}
		fmt.Fprintf(h, "g%d samples=%d avglen=%s\n", id, a.Shape.Samples, f(a.Shape.AvgListLen))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (m *costMemo) cost(gpu int, items []Assign, comm float64) float64 {
	key := m.key(gpu, items, comm)
	if key == "" {
		m.evals++
		return m.raw(gpu, items, comm)
	}
	if v, ok := m.cache[key]; ok {
		m.hits++
		return v
	}
	m.evals++
	v := m.raw(gpu, items, comm)
	m.cache[key] = v
	return v
}

// RAPSearch is the §7.2 joint heuristic: start from data locality,
// evaluate every GPU with the cost model (which runs the intra-GPU
// co-run schedule), and repeatedly move work from the most expensive GPU
// to the cheapest one when doing so lowers the bottleneck cost —
// weighing balance gain against the communication the move introduces.
// A move transfers either a whole sparse graph or, when whole graphs are
// too coarse, half of an assignment's sample range. Iterates to a
// fixpoint.
//
//rap:deterministic
func RAPSearch(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumGPUs
	perGPU, _ := assignLocality(cfg)
	memo := newCostMemo(cfg.costFn(), cfg.Plan)
	cost := memo.cost
	maxMoves := cfg.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 200
	}

	comm := make([]float64, n)
	costs := make([]float64, n)
	recompute := func(g int) {
		comm[g] = commOf(perGPU[g], g, cfg)
		costs[g] = cost(g, perGPU[g], comm[g])
	}
	for g := 0; g < n; g++ {
		recompute(g)
	}

	moves := 0
	for moves < maxMoves {
		src, dst := argmax(costs), argmin(costs)
		if src == dst || costs[src] <= costs[dst] {
			break
		}
		// Candidate assignments on src: movable sparse graphs, heaviest
		// first.
		type cand struct {
			idx  int
			work float64
		}
		var cands []cand
		for i, a := range perGPU[src] {
			if len(a.Graph.Outputs) == 0 {
				continue // dense graphs are duplicated, not movable
			}
			cands = append(cands, cand{i, a.Graph.TotalWork(a.Shape)})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].work > cands[b].work })
		if len(cands) > 8 {
			cands = cands[:8]
		}

		improved := false
		oldMax := costs[src]
		try := func(newSrcItems, newDstItems []Assign) bool {
			newSrcComm := commOf(newSrcItems, src, cfg)
			newDstComm := commOf(newDstItems, dst, cfg)
			newSrc := cost(src, newSrcItems, newSrcComm)
			newDst := cost(dst, newDstItems, newDstComm)
			if maxOf(newSrc, newDst) >= oldMax-1e-9 {
				return false
			}
			perGPU[src] = newSrcItems
			perGPU[dst] = newDstItems
			recompute(src)
			recompute(dst)
			moves++
			return true
		}
		for _, c := range cands {
			a := perGPU[src][c.idx]
			rest := append(append([]Assign(nil), perGPU[src][:c.idx]...), perGPU[src][c.idx+1:]...)
			// Whole-graph move.
			if try(rest, append(append([]Assign(nil), perGPU[dst]...), a)) {
				improved = true
				break
			}
			// Half-split move: keep half the samples at home, ship half.
			if a.Shape.Samples >= 2*minSplitSamples {
				half := a.Shape
				half.Samples = a.Shape.Samples / 2
				keep := Assign{Graph: a.Graph, Shape: half}
				other := half
				other.Samples = a.Shape.Samples - half.Samples
				give := Assign{Graph: a.Graph, Shape: other}
				if try(append(append([]Assign(nil), rest...), keep),
					append(append([]Assign(nil), perGPU[dst]...), give)) {
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return &Result{Strategy: "rap", PerGPU: perGPU, CommBytes: comm, Moves: moves,
		CostEvals: memo.evals, CostCacheHits: memo.hits}, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func maxOf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TotalWork returns the summed preprocessing work (µs) of one GPU's
// assignment.
//
//rap:unit return us
func TotalWork(items []Assign) float64 {
	t := 0.0
	for _, a := range items {
		t += a.Graph.TotalWork(a.Shape)
	}
	return t
}

// Imbalance returns max/mean of per-GPU work, ≥ 1.
func (r *Result) Imbalance() float64 {
	if len(r.PerGPU) == 0 {
		return 1
	}
	var max, sum float64
	for _, items := range r.PerGPU {
		w := TotalWork(items)
		sum += w
		if w > max {
			max = w
		}
	}
	mean := sum / float64(len(r.PerGPU))
	if mean <= 0 {
		return 1
	}
	return max / mean
}

// TotalComm sums the per-GPU communication bytes.
func (r *Result) TotalComm() float64 {
	t := 0.0
	for _, b := range r.CommBytes {
		t += b
	}
	return t
}
