package mapping

import (
	"reflect"
	"testing"

	"rap/internal/preproc"
)

// TestRAPSearchDeterministic guards the raplint maporder invariant end
// to end: two back-to-back searches over the same skewed input must
// produce byte-identical placements. A reintroduced map-order
// dependence shows up here as a flaky diff.
func TestRAPSearchDeterministic(t *testing.T) {
	run := func() *Result {
		plan := preproc.SkewedPlan(8, nil)
		cfg := cfgFor(t, plan, 4)
		for i := range cfg.CapacityPerGPU {
			cfg.CapacityPerGPU[i] = 300
		}
		res, err := RAPSearch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Moves == 0 {
		t.Fatal("search made no moves; the test is not exercising the greedy loop")
	}
	// Graph pointers differ between runs (fresh plans), so compare by
	// name + shape + comm, which is what the simulator consumes.
	type key struct {
		name  string
		shape preproc.Shape
	}
	flatten := func(r *Result) ([][]key, []float64) {
		out := make([][]key, len(r.PerGPU))
		for g := range r.PerGPU {
			for _, asg := range r.PerGPU[g] {
				out[g] = append(out[g], key{asg.Graph.Name, asg.Shape})
			}
		}
		return out, r.CommBytes
	}
	ag, ac := flatten(a)
	bg, bc := flatten(b)
	if !reflect.DeepEqual(ag, bg) {
		t.Fatalf("placements differ between runs:\n%v\nvs\n%v", ag, bg)
	}
	if !reflect.DeepEqual(ac, bc) {
		t.Fatalf("comm bytes differ between runs: %v vs %v", ac, bc)
	}
	if a.Moves != b.Moves {
		t.Fatalf("move counts differ: %d vs %d", a.Moves, b.Moves)
	}
}

// TestDataLocalityDeterministic: the locality mapping is a pure
// function of the plan and placement.
func TestDataLocalityDeterministic(t *testing.T) {
	plan := preproc.SkewedPlan(6, nil)
	cfg := cfgFor(t, plan, 4)
	a, err := DataLocality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DataLocality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("DataLocality differs between identical runs")
	}
}
