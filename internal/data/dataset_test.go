package data

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestDatasetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := GenConfig{NumDense: 2, NumSparse: 3, Seed: 5}
	const batches, samples = 19, 32
	if err := WriteDataset(dir, cfg, batches, samples); err != nil {
		t.Fatal(err)
	}

	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 19 batches at 8/shard -> 3 shards.
	if len(ds.Meta.Shards) != 3 {
		t.Fatalf("shards = %d", len(ds.Meta.Shards))
	}
	if ds.Meta.Batches != batches || ds.Meta.SamplesPerBatch != samples {
		t.Fatalf("meta = %+v", ds.Meta)
	}

	// Streaming returns exactly the generator's sequence.
	want := NewGenerator(cfg)
	it := ds.Batches()
	defer it.Close()
	count := 0
	for {
		got, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ref := want.NextBatch(samples)
		if got.Samples != samples {
			t.Fatalf("batch %d samples = %d", count, got.Samples)
		}
		for i, s := range ref.Sparse {
			gs := got.Sparse[i]
			if gs.NNZ() != s.NNZ() {
				t.Fatalf("batch %d sparse %d nnz mismatch", count, i)
			}
			for j := range s.Values {
				if gs.Values[j] != s.Values[j] {
					t.Fatalf("batch %d sparse %d value mismatch", count, i)
				}
			}
		}
		count++
	}
	if count != batches {
		t.Fatalf("streamed %d batches, want %d", count, batches)
	}
}

func TestDatasetLoop(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, GenConfig{NumDense: 1, NumSparse: 1, Seed: 2}, 3, 8); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	it := ds.Batches()
	it.Loop = true
	defer it.Close()
	for i := 0; i < 10; i++ { // 3 batches looped > 3 times
		if _, err := it.Next(); err != nil {
			t.Fatalf("loop iteration %d: %v", i, err)
		}
	}
}

func TestDatasetErrors(t *testing.T) {
	if err := WriteDataset(t.TempDir(), GenConfig{}, 0, 8); err == nil {
		t.Fatal("zero batches accepted")
	}
	if _, err := OpenDataset(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
	// Corrupt manifest.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	// Manifest without shards.
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(dir); err == nil {
		t.Fatal("shardless manifest accepted")
	}
	// Missing shard file.
	if err := os.WriteFile(filepath.Join(dir, metaFile),
		[]byte(`{"shards":["missing.rapcol"],"batches":1,"samples_per_batch":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Batches().Next(); err == nil {
		t.Fatal("missing shard accepted")
	}
}

func TestDatasetIterCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, GenConfig{NumDense: 1, NumSparse: 1, Seed: 1}, 2, 4); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	it := ds.Batches()
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}
