package data

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rap/internal/tensor"
)

// This file implements the pipeline's data-storage tier (paper Figure 2:
// "new data are collected from the inference servers, and stored in the
// Data Storage Nodes"): raw batches are persisted as sharded rapcol
// containers with a JSON manifest, and training streams them back.

// DatasetMeta is the manifest written alongside the shards.
type DatasetMeta struct {
	Batches         int       `json:"batches"`
	SamplesPerBatch int       `json:"samples_per_batch"`
	BatchesPerShard int       `json:"batches_per_shard"`
	Shards          []string  `json:"shards"`
	Gen             GenConfig `json:"generator"`
}

const metaFile = "meta.json"

// DefaultBatchesPerShard is the shard granularity of WriteDataset.
const DefaultBatchesPerShard = 8

// WriteDataset generates `batches` raw batches and persists them under
// dir as rapcol shards plus a manifest. dir is created if needed.
func WriteDataset(dir string, cfg GenConfig, batches, samplesPerBatch int) error {
	if batches <= 0 || samplesPerBatch <= 0 {
		return fmt.Errorf("data: batches and samplesPerBatch must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gen := NewGenerator(cfg)
	meta := DatasetMeta{
		Batches:         batches,
		SamplesPerBatch: samplesPerBatch,
		BatchesPerShard: DefaultBatchesPerShard,
		Gen:             gen.Config(),
	}
	for start := 0; start < batches; start += meta.BatchesPerShard {
		end := start + meta.BatchesPerShard
		if end > batches {
			end = batches
		}
		name := fmt.Sprintf("shard-%05d.rapcol", len(meta.Shards))
		if err := writeShard(filepath.Join(dir, name), gen, end-start, samplesPerBatch); err != nil {
			return err
		}
		meta.Shards = append(meta.Shards, name)
	}
	js, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, metaFile), js, 0o644)
}

func writeShard(path string, gen *Generator, batches, samples int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := NewWriter(f)
	for i := 0; i < batches; i++ {
		if err := w.WriteBatch(gen.NextBatch(samples)); err != nil {
			return fmt.Errorf("data: writing %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// Dataset is an opened on-disk dataset.
type Dataset struct {
	Dir  string
	Meta DatasetMeta
}

// OpenDataset reads the manifest of a dataset directory.
func OpenDataset(dir string) (*Dataset, error) {
	js, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("data: opening dataset: %w", err)
	}
	var meta DatasetMeta
	if err := json.Unmarshal(js, &meta); err != nil {
		return nil, fmt.Errorf("data: parsing manifest: %w", err)
	}
	if len(meta.Shards) == 0 {
		return nil, fmt.Errorf("data: dataset %s has no shards", dir)
	}
	sorted := append([]string(nil), meta.Shards...)
	sort.Strings(sorted)
	meta.Shards = sorted
	return &Dataset{Dir: dir, Meta: meta}, nil
}

// BatchIter streams the dataset's batches in order.
type BatchIter struct {
	ds    *Dataset
	shard int
	file  *os.File
	r     *Reader
	// Loop makes the iterator wrap around at the end (online training
	// replays the stream instead of terminating).
	Loop bool
}

// Batches returns a fresh iterator over the dataset.
func (d *Dataset) Batches() *BatchIter { return &BatchIter{ds: d} }

// Next returns the next batch; io.EOF at the end unless Loop is set.
func (it *BatchIter) Next() (*tensor.Batch, error) {
	for {
		if it.r == nil {
			if it.shard >= len(it.ds.Meta.Shards) {
				if !it.Loop || it.shard == 0 {
					return nil, io.EOF
				}
				it.shard = 0
			}
			f, err := os.Open(filepath.Join(it.ds.Dir, it.ds.Meta.Shards[it.shard]))
			if err != nil {
				return nil, err
			}
			it.file = f
			it.r = NewReader(f)
		}
		b, err := it.r.Next()
		if err == io.EOF {
			cerr := it.file.Close()
			it.file, it.r = nil, nil
			if cerr != nil {
				return nil, fmt.Errorf("data: closing shard: %w", cerr)
			}
			it.shard++
			continue
		}
		if err != nil {
			// The read error takes precedence over any close error.
			it.file.Close()
			it.file, it.r = nil, nil
			return nil, err
		}
		return b, nil
	}
}

// Close releases the iterator's open shard, if any.
func (it *BatchIter) Close() error {
	if it.file != nil {
		err := it.file.Close()
		it.file, it.r = nil, nil
		return err
	}
	return nil
}
