package data

import (
	"bytes"
	"testing"
)

// BenchmarkGenerate measures raw-batch synthesis (4096 samples, Criteo
// shape).
func BenchmarkGenerate(b *testing.B) {
	g := NewGenerator(GenConfig{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextBatch(4096)
	}
}

// BenchmarkRapcolRoundTrip measures serializing + parsing one batch.
func BenchmarkRapcolRoundTrip(b *testing.B) {
	g := NewGenerator(GenConfig{Seed: 1})
	batch := g.NextBatch(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteBatch(batch); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := NewReader(&buf).Next(); err != nil {
			b.Fatal(err)
		}
	}
}
