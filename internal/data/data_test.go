package data

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rap/internal/tensor"
)

func TestGeneratorShapes(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 1})
	b := g.NextBatch(128)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Dense) != 13 || len(b.Sparse) != 26 {
		t.Fatalf("got %d dense, %d sparse", len(b.Dense), len(b.Sparse))
	}
	if b.Samples != 128 || len(b.Labels) != 128 {
		t.Fatalf("samples %d labels %d", b.Samples, len(b.Labels))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(GenConfig{Seed: 7}).NextBatch(64)
	b := NewGenerator(GenConfig{Seed: 7}).NextBatch(64)
	for i := range a.Sparse {
		av, bv := a.Sparse[i].Values, b.Sparse[i].Values
		if len(av) != len(bv) {
			t.Fatal("nondeterministic sparse lengths")
		}
		for j := range av {
			if av[j] != bv[j] {
				t.Fatal("nondeterministic sparse ids")
			}
		}
	}
	c := NewGenerator(GenConfig{Seed: 8}).NextBatch(64)
	same := true
	for i := range a.Dense[0].Values {
		va, vc := a.Dense[0].Values[i], c.Dense[0].Values[i]
		if va != vc && !(math.IsNaN(float64(va)) && math.IsNaN(float64(vc))) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratorIdsWithinHashSize(t *testing.T) {
	cfg := GenConfig{NumSparse: 4, HashSizes: []int64{10, 100, 1000, 50}, Seed: 3}
	g := NewGenerator(cfg)
	b := g.NextBatch(500)
	for f, s := range b.Sparse {
		limit := cfg.HashSize(f)
		for _, v := range s.Values {
			if v < 0 || v >= limit {
				t.Fatalf("feature %d id %d out of [0,%d)", f, v, limit)
			}
		}
	}
}

func TestGeneratorNaNRate(t *testing.T) {
	g := NewGenerator(GenConfig{NaNRate: 0.5, Seed: 2})
	b := g.NextBatch(2000)
	nan := 0
	for _, v := range b.Dense[0].Values {
		if math.IsNaN(float64(v)) {
			nan++
		}
	}
	frac := float64(nan) / 2000
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("NaN fraction %f, want ~0.5", frac)
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	g := NewGenerator(GenConfig{NumSparse: 1, HashSizes: []int64{100000}, Seed: 5})
	b := g.NextBatch(3000)
	small := 0
	for _, v := range b.Sparse[0].Values {
		if v < 10 {
			small++
		}
	}
	if frac := float64(small) / float64(len(b.Sparse[0].Values)); frac < 0.3 {
		t.Fatalf("Zipf head mass %f, want heavy head", frac)
	}
}

func TestFeatureLenScaleSkews(t *testing.T) {
	g := NewGenerator(GenConfig{NumSparse: 2, AvgListLen: 3, FeatureLenScale: []float64{1, 8}, Seed: 4})
	b := g.NextBatch(1000)
	if b.Sparse[1].NNZ() < 3*b.Sparse[0].NNZ() {
		t.Fatalf("len scale not applied: %d vs %d", b.Sparse[0].NNZ(), b.Sparse[1].NNZ())
	}
}

func TestTableConfigs(t *testing.T) {
	k := KaggleGen(1)
	tb := TerabyteGen(1)
	sum := func(xs []int64) int64 {
		var s int64
		for _, x := range xs {
			s += x
		}
		return s
	}
	ks, ts := sum(k.HashSizes), sum(tb.HashSizes)
	if math.Abs(float64(ks)-33_700_000) > 0.01*33_700_000 {
		t.Fatalf("kaggle total hash %d", ks)
	}
	if math.Abs(float64(ts)-177_900_000) > 0.01*177_900_000 {
		t.Fatalf("terabyte total hash %d", ts)
	}
	if len(k.HashSizes) != 26 || len(tb.HashSizes) != 26 {
		t.Fatal("want 26 tables")
	}
	if k.HashSizes[0] <= k.HashSizes[25] {
		t.Fatal("want skewed table sizes")
	}
}

func TestHashSizeExtension(t *testing.T) {
	cfg := GenConfig{NumSparse: 5, HashSizes: []int64{10, 20}}
	if cfg.HashSize(0) != 10 || cfg.HashSize(1) != 20 || cfg.HashSize(4) != 20 {
		t.Fatal("HashSize extension wrong")
	}
	var empty GenConfig
	if empty.HashSize(3) != 100000 {
		t.Fatal("default hash size wrong")
	}
}

func TestNames(t *testing.T) {
	g := NewGenerator(GenConfig{NumDense: 2, NumSparse: 3})
	if got := g.DenseNames(); len(got) != 2 || got[1] != "int_1" {
		t.Fatalf("DenseNames = %v", got)
	}
	if got := g.SparseNames(); len(got) != 3 || got[2] != "cat_2" {
		t.Fatalf("SparseNames = %v", got)
	}
}

func TestRapcolRoundTrip(t *testing.T) {
	g := NewGenerator(GenConfig{NumDense: 3, NumSparse: 4, Seed: 9})
	batches := []*tensor.Batch{g.NextBatch(17), g.NextBatch(31)}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, b := range batches {
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	for bi, want := range batches {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if got.Samples != want.Samples {
			t.Fatalf("batch %d samples %d != %d", bi, got.Samples, want.Samples)
		}
		for i, d := range want.Dense {
			gd := got.DenseByName(d.Name)
			if gd == nil {
				t.Fatalf("missing dense %q", d.Name)
			}
			for j := range d.Values {
				a, b := d.Values[j], gd.Values[j]
				if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
					t.Fatalf("dense %d[%d]: %f != %f", i, j, a, b)
				}
			}
		}
		for i, s := range want.Sparse {
			gs := got.SparseByName(s.Name)
			if gs == nil {
				t.Fatalf("missing sparse %q", s.Name)
			}
			if len(gs.Values) != len(s.Values) {
				t.Fatalf("sparse %d nnz %d != %d", i, len(gs.Values), len(s.Values))
			}
			for j := range s.Values {
				if gs.Values[j] != s.Values[j] {
					t.Fatalf("sparse %d value[%d] mismatch", i, j)
				}
			}
			for j := range s.Offsets {
				if gs.Offsets[j] != s.Offsets[j] {
					t.Fatalf("sparse %d offset[%d] mismatch", i, j)
				}
			}
		}
		for j := range want.Labels {
			if got.Labels[j] != want.Labels[j] {
				t.Fatalf("label[%d] mismatch", j)
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRapcolNegativeIDs(t *testing.T) {
	b := tensor.NewBatch(2)
	if err := b.AddSparse(tensor.SparseFromLists("s", [][]int64{{-5, 3}, {-1}})); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.SparseByName("s").Values[0] != -5 {
		t.Fatal("negative id corrupted")
	}
}

func TestRapcolRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")).Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRapcolRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(rapcolMagic)
	buf.Write([]byte{99, 0})
	if _, err := NewReader(&buf).Next(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestRapcolRejectsTruncated(t *testing.T) {
	g := NewGenerator(GenConfig{NumDense: 1, NumSparse: 1, Seed: 1})
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBatch(g.NextBatch(50)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := NewReader(bytes.NewReader(trunc)).Next(); err == nil {
		t.Fatal("truncated container accepted")
	}
}

func TestRapcolRejectsInvalidBatch(t *testing.T) {
	b := tensor.NewBatch(2)
	b.Labels = []float32{1} // wrong length
	w := NewWriter(&bytes.Buffer{})
	if err := w.WriteBatch(b); err == nil {
		t.Fatal("invalid batch accepted")
	}
}

func TestRapcolEmptyReader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")).Next(); err == nil {
		t.Fatal("empty input accepted")
	}
}

// Property: any generated batch round-trips through rapcol bit-exactly
// (modulo NaN identity).
func TestRapcolRoundTripProperty(t *testing.T) {
	f := func(seed int64, samples uint8) bool {
		n := int(samples%64) + 1
		g := NewGenerator(GenConfig{NumDense: 2, NumSparse: 2, Seed: seed})
		want := g.NextBatch(n)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.WriteBatch(want) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).Next()
		if err != nil || got.Samples != n {
			return false
		}
		for i := range want.Sparse {
			a, b := want.Sparse[i], got.Sparse[i]
			if a.NNZ() != b.NNZ() {
				return false
			}
			for j := range a.Values {
				if a.Values[j] != b.Values[j] {
					return false
				}
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
