// Package data generates synthetic Criteo-shaped training data and
// provides rapcol, a small columnar on-disk format standing in for the
// Apache Parquet files the paper loads with CuDF.
//
// The generator reproduces the aspects of Criteo Kaggle / Terabyte that
// matter to RAP: 13 dense + 26 sparse features, per-feature id
// cardinalities ("hash sizes"), Zipf-distributed ids, variable-length
// multi-hot lists, a configurable NaN rate (so FillNull has work to do)
// and an optional per-feature length skew used by the Figure 12 study.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"rap/internal/tensor"
)

// GenConfig describes a synthetic dataset.
type GenConfig struct {
	NumDense  int
	NumSparse int
	// HashSizes is the id cardinality per sparse feature. If shorter
	// than NumSparse the last value repeats; if empty, 100000 is used.
	HashSizes []int64
	// AvgListLen is the mean multi-hot list length (default 3; Criteo
	// itself is one-hot but industrial workloads are multi-hot).
	AvgListLen float64
	// Skew is the Zipf s-parameter for id draws (default 1.2).
	Skew float64
	// NaNRate is the probability that a dense value is NaN (default 0.05).
	NaNRate float64
	// FeatureLenScale optionally scales AvgListLen per sparse feature,
	// producing the skewed preprocessing workload of Figure 12.
	FeatureLenScale []float64
	Seed            int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.NumDense <= 0 {
		c.NumDense = 13
	}
	if c.NumSparse <= 0 {
		c.NumSparse = 26
	}
	if len(c.HashSizes) == 0 {
		c.HashSizes = []int64{100000}
	}
	if c.AvgListLen <= 0 {
		c.AvgListLen = 3
	}
	if c.Skew <= 1 {
		c.Skew = 1.2
	}
	if c.NaNRate < 0 {
		c.NaNRate = 0
		//lint:ignore floateq 0 is the documented "unset" sentinel; pass negative for an exact zero rate
	} else if c.NaNRate == 0 {
		c.NaNRate = 0.05
	}
	return c
}

// HashSize returns the id cardinality of sparse feature i.
func (c GenConfig) HashSize(i int) int64 {
	c = c.withDefaults()
	if i < len(c.HashSizes) {
		return c.HashSizes[i]
	}
	return c.HashSizes[len(c.HashSizes)-1]
}

// Generator produces batches deterministically from its seed.
type Generator struct {
	cfg   GenConfig
	rng   *rand.Rand
	zipfs []*rand.Zipf
}

// NewGenerator builds a generator for the config.
func NewGenerator(cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.zipfs = make([]*rand.Zipf, cfg.NumSparse)
	for i := range g.zipfs {
		n := uint64(cfg.HashSize(i))
		if n < 2 {
			n = 2
		}
		g.zipfs[i] = rand.NewZipf(g.rng, cfg.Skew, 1, n-1)
	}
	return g
}

// Config returns the generator's (defaulted) configuration.
func (g *Generator) Config() GenConfig { return g.cfg }

// DenseNames returns the canonical dense column names.
func (g *Generator) DenseNames() []string {
	out := make([]string, g.cfg.NumDense)
	for i := range out {
		out[i] = DenseName(i)
	}
	return out
}

// SparseNames returns the canonical sparse column names.
func (g *Generator) SparseNames() []string {
	out := make([]string, g.cfg.NumSparse)
	for i := range out {
		out[i] = SparseName(i)
	}
	return out
}

// DenseName returns the canonical name of dense feature i.
func DenseName(i int) string { return fmt.Sprintf("int_%d", i) }

// SparseName returns the canonical name of sparse feature i.
func SparseName(i int) string { return fmt.Sprintf("cat_%d", i) }

// NextBatch generates n samples of raw (unpreprocessed) data.
func (g *Generator) NextBatch(n int) *tensor.Batch {
	b := tensor.NewBatch(n)
	for f := 0; f < g.cfg.NumDense; f++ {
		col := tensor.NewDense(DenseName(f), n)
		for i := 0; i < n; i++ {
			if g.rng.Float64() < g.cfg.NaNRate {
				col.Values[i] = float32(math.NaN())
			} else {
				// Log-normal-ish positive counters, like Criteo int features.
				col.Values[i] = float32(math.Exp(g.rng.NormFloat64()) * 10)
			}
		}
		if err := b.AddDense(col); err != nil {
			//lint:ignore panicpath checked invariant: generated column names are unique by construction
			panic("data: " + err.Error()) // names are unique by construction
		}
	}
	for f := 0; f < g.cfg.NumSparse; f++ {
		avg := g.cfg.AvgListLen
		if f < len(g.cfg.FeatureLenScale) && g.cfg.FeatureLenScale[f] > 0 {
			avg *= g.cfg.FeatureLenScale[f]
		}
		col := tensor.NewSparse(SparseName(f), n)
		for i := 0; i < n; i++ {
			l := g.listLen(avg)
			for j := 0; j < l; j++ {
				col.Values = append(col.Values, int64(g.zipfs[f].Uint64()))
			}
			col.Offsets[i+1] = int32(len(col.Values))
		}
		if err := b.AddSparse(col); err != nil {
			//lint:ignore panicpath checked invariant: generated column names are unique by construction
			panic("data: " + err.Error())
		}
	}
	b.Labels = make([]float32, n)
	for i := range b.Labels {
		// Make labels weakly learnable: click probability depends on the
		// first dense feature and the parity of the first sparse id.
		p := 0.25
		if v := b.Dense[0].Values[i]; !math.IsNaN(float64(v)) && v > 10 {
			p += 0.3
		}
		if row := b.Sparse[0].Row(i); len(row) > 0 && row[0]%2 == 0 {
			p += 0.2
		}
		if g.rng.Float64() < p {
			b.Labels[i] = 1
		}
	}
	return b
}

// listLen draws a positive list length with the given mean.
func (g *Generator) listLen(avg float64) int {
	if avg <= 1 {
		return 1
	}
	// Geometric-ish around avg, min 1.
	l := 1 + int(g.rng.ExpFloat64()*(avg-1))
	if l > int(avg*6)+1 {
		l = int(avg*6) + 1
	}
	return l
}

// KaggleGen returns the Criteo-Kaggle-shaped generator config (Table 2:
// 33.7M total hash size across 26 tables).
func KaggleGen(seed int64) GenConfig {
	return GenConfig{
		NumDense: 13, NumSparse: 26,
		HashSizes: repeatHash(33_700_000, 26),
		Seed:      seed,
	}
}

// TerabyteGen returns the Criteo-Terabyte-shaped generator config
// (Table 2: 177.9M total hash size).
func TerabyteGen(seed int64) GenConfig {
	return GenConfig{
		NumDense: 13, NumSparse: 26,
		HashSizes: repeatHash(177_900_000, 26),
		Seed:      seed,
	}
}

// repeatHash splits a total cardinality across n tables with a mild
// power-law (a few big tables, many small), matching the public Criteo
// profile more closely than a uniform split.
func repeatHash(total int64, n int) []int64 {
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 0.8)
		sum += weights[i]
	}
	out := make([]int64, n)
	for i := range out {
		v := int64(float64(total) * weights[i] / sum)
		if v < 2 {
			v = 2
		}
		out[i] = v
	}
	return out
}
