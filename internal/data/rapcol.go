package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rap/internal/tensor"
)

// rapcol is a minimal columnar container format: a header with magic and
// version, then a sequence of self-describing batch blocks. Dense
// columns are stored as raw little-endian float32; sparse columns store
// delta-varint offsets and zigzag-varint values. It plays the role of
// the Parquet files in the paper's pipeline (Figure 2's data storage
// nodes): raw bytes on disk that the input-preprocessing stage consumes.

const (
	rapcolMagic   = "RAPC"
	rapcolVersion = 1

	colKindDense  = 0
	colKindSparse = 1
	colKindLabels = 2
)

// Writer streams batches into a rapcol container.
type Writer struct {
	w       *bufio.Writer
	started bool
	err     error
}

// NewWriter creates a rapcol writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) header() {
	if w.started || w.err != nil {
		return
	}
	w.started = true
	if _, err := w.w.WriteString(rapcolMagic); err != nil {
		w.err = err
		return
	}
	w.err = binary.Write(w.w, binary.LittleEndian, uint16(rapcolVersion))
}

// WriteBatch appends one batch block.
func (w *Writer) WriteBatch(b *tensor.Batch) error {
	if w.err != nil {
		return w.err
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("data: refusing to write invalid batch: %w", err)
	}
	w.header()
	ncols := len(b.Dense) + len(b.Sparse)
	if b.Labels != nil {
		ncols++
	}
	w.writeUvarint(uint64(b.Samples))
	w.writeUvarint(uint64(ncols))
	for _, d := range b.Dense {
		w.writeByte(colKindDense)
		w.writeString(d.Name)
		for _, v := range d.Values {
			w.writeU32(math.Float32bits(v))
		}
	}
	for _, s := range b.Sparse {
		w.writeByte(colKindSparse)
		w.writeString(s.Name)
		prev := int32(0)
		for _, off := range s.Offsets[1:] {
			w.writeUvarint(uint64(off - prev))
			prev = off
		}
		w.writeUvarint(uint64(len(s.Values)))
		for _, v := range s.Values {
			w.writeVarint(v)
		}
	}
	if b.Labels != nil {
		w.writeByte(colKindLabels)
		w.writeString("label")
		for _, v := range b.Labels {
			w.writeU32(math.Float32bits(v))
		}
	}
	return w.err
}

// Flush flushes buffered output. Call once after the last batch.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) writeByte(b byte) {
	if w.err == nil {
		w.err = w.w.WriteByte(b)
	}
}

func (w *Writer) writeU32(v uint32) {
	if w.err == nil {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		_, w.err = w.w.Write(buf[:])
	}
}

func (w *Writer) writeUvarint(v uint64) {
	if w.err == nil {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		_, w.err = w.w.Write(buf[:n])
	}
}

func (w *Writer) writeVarint(v int64) {
	if w.err == nil {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v)
		_, w.err = w.w.Write(buf[:n])
	}
}

func (w *Writer) writeString(s string) {
	w.writeUvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

// Reader iterates the batches of a rapcol container.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader creates a rapcol reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	if r.header {
		return nil
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r.r, magic); err != nil {
		return fmt.Errorf("data: reading rapcol magic: %w", err)
	}
	if string(magic) != rapcolMagic {
		return fmt.Errorf("data: bad rapcol magic %q", magic)
	}
	var version uint16
	if err := binary.Read(r.r, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("data: reading rapcol version: %w", err)
	}
	if version != rapcolVersion {
		return fmt.Errorf("data: unsupported rapcol version %d", version)
	}
	r.header = true
	return nil
}

// Next reads the next batch, returning io.EOF at end of container.
func (r *Reader) Next() (*tensor.Batch, error) {
	if err := r.readHeader(); err != nil {
		return nil, err
	}
	samples, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("data: reading batch size: %w", err)
	}
	ncols, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, fmt.Errorf("data: reading column count: %w", err)
	}
	b := tensor.NewBatch(int(samples))
	for c := uint64(0); c < ncols; c++ {
		kind, err := r.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("data: reading column kind: %w", err)
		}
		name, err := r.readString()
		if err != nil {
			return nil, err
		}
		switch kind {
		case colKindDense:
			col := tensor.NewDense(name, int(samples))
			for i := range col.Values {
				u, err := r.readU32()
				if err != nil {
					return nil, err
				}
				col.Values[i] = math.Float32frombits(u)
			}
			if err := b.AddDense(col); err != nil {
				return nil, err
			}
		case colKindSparse:
			col := tensor.NewSparse(name, int(samples))
			prev := int32(0)
			for i := 1; i <= int(samples); i++ {
				d, err := binary.ReadUvarint(r.r)
				if err != nil {
					return nil, fmt.Errorf("data: reading offsets of %q: %w", name, err)
				}
				prev += int32(d)
				col.Offsets[i] = prev
			}
			nvals, err := binary.ReadUvarint(r.r)
			if err != nil {
				return nil, fmt.Errorf("data: reading value count of %q: %w", name, err)
			}
			if int64(nvals) != int64(prev) {
				return nil, fmt.Errorf("data: column %q declares %d values but offsets say %d", name, nvals, prev)
			}
			col.Values = make([]int64, nvals)
			for i := range col.Values {
				v, err := binary.ReadVarint(r.r)
				if err != nil {
					return nil, fmt.Errorf("data: reading values of %q: %w", name, err)
				}
				col.Values[i] = v
			}
			if err := b.AddSparse(col); err != nil {
				return nil, err
			}
		case colKindLabels:
			b.Labels = make([]float32, samples)
			for i := range b.Labels {
				u, err := r.readU32()
				if err != nil {
					return nil, err
				}
				b.Labels[i] = math.Float32frombits(u)
			}
		default:
			return nil, fmt.Errorf("data: unknown column kind %d", kind)
		}
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("data: corrupt batch: %w", err)
	}
	return b, nil
}

func (r *Reader) readU32() (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		return 0, fmt.Errorf("data: reading f32: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func (r *Reader) readString() (string, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return "", fmt.Errorf("data: reading string length: %w", err)
	}
	if n > 1<<20 {
		return "", fmt.Errorf("data: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", fmt.Errorf("data: reading string: %w", err)
	}
	return string(buf), nil
}
