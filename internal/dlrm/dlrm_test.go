package dlrm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rap/internal/gpusim"
	"rap/internal/nn"
	"rap/internal/tensor"
)

func smallConfig(tables int, batch int) Config {
	sizes := make([]int64, tables)
	for i := range sizes {
		sizes[i] = 1000
	}
	return Config{
		Name: "small", NumDense: 4, EmbeddingDim: 8,
		BottomArch: []int{16}, TopArch: []int{16},
		TableSizes: sizes, BatchSize: batch, AvgPooling: 2,
	}
}

func TestConfigValidate(t *testing.T) {
	good := KaggleConfig([]int64{10, 20}, 4096)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{NumDense: 1, EmbeddingDim: 8, BottomArch: []int{4}, TopArch: []int{4}, BatchSize: 4},
		{NumDense: 1, EmbeddingDim: 8, BottomArch: []int{4}, TopArch: []int{4}, TableSizes: []int64{0}, BatchSize: 4},
		{NumDense: 1, EmbeddingDim: 8, BottomArch: []int{4}, TopArch: []int{4}, TableSizes: []int64{5}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestConfigDims(t *testing.T) {
	c := KaggleConfig(make([]int64, 26), 4096)
	for i := range c.TableSizes {
		c.TableSizes[i] = 100
	}
	if got := c.InteractionFeatures(); got != 27 {
		t.Fatalf("F = %d", got)
	}
	if got := c.TopInputDim(); got != 128+27*26/2 {
		t.Fatalf("top input = %d", got)
	}
	bd := c.bottomDims()
	if bd[0] != 13 || bd[len(bd)-1] != 128 {
		t.Fatalf("bottom dims = %v", bd)
	}
	td := c.topDims()
	if td[0] != c.TopInputDim() || td[len(td)-1] != 1 {
		t.Fatalf("top dims = %v", td)
	}
	if c.MLPParams() <= 0 {
		t.Fatal("param count")
	}
	// Terabyte top arch is one layer deeper (Table 2).
	tb := TerabyteConfig(c.TableSizes, 4096)
	if len(tb.TopArch) != len(c.TopArch)+1 {
		t.Fatal("Terabyte top arch depth wrong")
	}
}

func TestPlaceTablesBalances(t *testing.T) {
	sizes := []int64{100, 100, 100, 100, 1000, 10, 10, 10}
	pl := PlaceTables(sizes, 4)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	load := make([]int64, 4)
	for tb, g := range pl.TableGPU {
		load[g] += sizes[tb]
	}
	var mx, mn int64 = 0, 1 << 62
	for _, l := range load {
		if l > mx {
			mx = l
		}
		if l < mn {
			mn = l
		}
	}
	// The big table dominates; everything else should pile on other GPUs.
	if mx != 1000 {
		t.Fatalf("greedy packing failed: loads %v", load)
	}
	_ = mn
	// Every table placed exactly once, all GPUs referenced validly.
	if len(pl.TableGPU) != len(sizes) {
		t.Fatal("placement size wrong")
	}
	// LocalTables partitions the table set.
	seen := map[int]bool{}
	for g := 0; g < 4; g++ {
		for _, tb := range pl.LocalTables(g) {
			if seen[tb] {
				t.Fatalf("table %d on two GPUs", tb)
			}
			seen[tb] = true
		}
	}
	if len(seen) != len(sizes) {
		t.Fatal("tables lost")
	}
}

func TestPlacementValidate(t *testing.T) {
	bad := Placement{NumGPUs: 2, TableGPU: []int{0, 5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid placement accepted")
	}
	if err := (Placement{NumGPUs: 0}).Validate(); err == nil {
		t.Fatal("zero-GPU placement accepted")
	}
}

func TestIterationStagesShape(t *testing.T) {
	c := TerabyteConfig(sizes26(), 4096)
	pl := PlaceTables(c.TableSizes, 4)
	st := c.IterationStages(0, pl)
	if len(st) != NumStages {
		t.Fatalf("stages = %d, want %d", len(st), NumStages)
	}
	byName := map[string]Stage{}
	for _, s := range st {
		byName[s.Name] = s
	}
	// MLP stages are compute-bound, embedding stages memory-bound (the
	// Figure 1a fluctuation).
	top := byName["top_fwd"].Kernel
	emb := byName["emb_lookup"].Kernel
	if top.Demand.SM <= emb.Demand.SM {
		t.Fatal("top MLP should be more SM-hungry than embedding lookup")
	}
	if emb.Demand.MemBW <= top.Demand.MemBW {
		t.Fatal("embedding lookup should be more bandwidth-hungry")
	}
	if byName["top_bwd"].Kernel.Work <= top.Work {
		t.Fatal("backward should cost more than forward")
	}
	if byName["a2a_fwd"].Kind != StageComm || byName["a2a_fwd"].Bytes <= 0 {
		t.Fatal("a2a stage wrong")
	}
	// Single GPU: no communication volume.
	pl1 := PlaceTables(c.TableSizes, 1)
	for _, s := range c.IterationStages(0, pl1) {
		if s.Kind == StageComm && s.Bytes != 0 {
			t.Fatalf("1-GPU comm stage %s has %f bytes", s.Name, s.Bytes)
		}
	}
}

func sizes26() []int64 {
	s := make([]int64, 26)
	for i := range s {
		s[i] = 1 << 20
	}
	return s
}

func TestIterationSoloLatencyPositive(t *testing.T) {
	c := TerabyteConfig(sizes26(), 4096)
	pl := PlaceTables(c.TableSizes, 8)
	lat := c.IterationSoloLatency(pl, 300)
	if lat <= 0 {
		t.Fatal("non-positive iteration latency")
	}
	// Bigger batches take longer.
	c2 := TerabyteConfig(sizes26(), 8192)
	if c2.IterationSoloLatency(pl, 300) <= lat {
		t.Fatal("latency not monotone in batch size")
	}
}

func TestAddIterationRuns(t *testing.T) {
	c := TerabyteConfig(sizes26(), 4096)
	n := 4
	pl := PlaceTables(c.TableSizes, n)
	sim := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: n, Policy: gpusim.PrioritySpace})
	h, err := c.AddIteration(sim, pl, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	// The iteration end barrier is last.
	if res.OpByID(h.End).End != res.Makespan {
		t.Fatal("iteration end != makespan")
	}
	// Stage chain per GPU is ordered.
	for g := 0; g < n; g++ {
		for s := 1; s < NumStages; s++ {
			prev := res.OpByID(h.StageOps[g][s-1])
			cur := res.OpByID(h.StageOps[g][s])
			if cur.Start < prev.End-1e-6 {
				t.Fatalf("gpu %d stage %d starts before stage %d ends", g, s, s-1)
			}
		}
	}
	// Collectives wait for all GPUs: a2a on GPU 0 cannot start before the
	// slowest lookup.
	slowest := 0.0
	for g := 0; g < n; g++ {
		if e := res.OpByID(h.StageOps[g][0]).End; e > slowest {
			slowest = e
		}
	}
	for g := 0; g < n; g++ {
		if res.OpByID(h.StageOps[g][1]).Start < slowest-1e-6 {
			t.Fatal("a2a started before all lookups finished")
		}
	}
	// The simulated iteration should be close to the analytic solo
	// estimate (no contention in a bare iteration).
	want := c.IterationSoloLatency(pl, sim.Config().LinkGBs)
	if res.Makespan < want*0.8 || res.Makespan > want*1.4 {
		t.Fatalf("makespan %f vs solo estimate %f", res.Makespan, want)
	}
}

func TestAddIterationExtraDeps(t *testing.T) {
	c := smallConfig(4, 32)
	pl := PlaceTables(c.TableSizes, 2)
	sim := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 2})
	gate := sim.AddKernel(0, gpusim.Kernel{Name: "gate", Work: 500, LaunchOverhead: -1, Demand: gpusim.Demand{SM: 0.1}})
	h, err := c.AddIteration(sim, pl, 0, [][]gpusim.OpID{{gate}, nil})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OpByID(h.StageOps[0][0]).Start < 500-1e-6 {
		t.Fatal("extra dep ignored on GPU 0")
	}
	if res.OpByID(h.StageOps[1][0]).Start > 1e-6 {
		t.Fatal("GPU 1 should start immediately")
	}
}

func TestAddIterationRejectsMismatch(t *testing.T) {
	c := smallConfig(4, 32)
	pl := PlaceTables(c.TableSizes, 2)
	sim := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 3})
	if _, err := c.AddIteration(sim, pl, 0, nil); err == nil {
		t.Fatal("GPU-count mismatch accepted")
	}
	bad := c
	bad.BatchSize = 0
	sim2 := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 2})
	if _, err := bad.AddIteration(sim2, pl, 0, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEmbeddingTable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := NewEmbeddingTable(10, 4, rng)
	col := tensor.SparseFromLists("c", [][]int64{{1, 1}, {2}, {}})
	out := nn.NewMatrix(3, 4)
	tb.LookupPooled(col, out)
	// Row 0 pooled twice row 1's embedding.
	for j := 0; j < 4; j++ {
		if math.Abs(float64(out.At(0, j)-2*tb.W[1*4+j])) > 1e-6 {
			t.Fatal("sum pooling wrong")
		}
		if out.At(2, j) != 0 {
			t.Fatal("empty row should pool to zero")
		}
	}
	// Negative and overflowing ids fold into range.
	col2 := tensor.SparseFromLists("c", [][]int64{{-3}, {13}})
	out2 := nn.NewMatrix(2, 4)
	tb.LookupPooled(col2, out2)
	grad := nn.NewMatrix(3, 4)
	for j := 0; j < 4; j++ {
		grad.Set(0, j, 1)
	}
	tb.AccumulateGrad(col, grad)
	if tb.PendingRows() != 2 {
		t.Fatalf("pending rows = %d, want 2 (rows 1 and 2 touched)", tb.PendingRows())
	}
	before := tb.W[1*4]
	tb.Step(0.5)
	// Row 1 touched twice with grad 1 -> delta = -0.5*2.
	if math.Abs(float64(tb.W[1*4]-(before-1))) > 1e-5 {
		t.Fatalf("sparse update wrong: %f -> %f", before, tb.W[1*4])
	}
	if tb.PendingRows() != 0 {
		t.Fatal("grads not cleared")
	}
}

func TestEmbeddingTableCaps(t *testing.T) {
	tb := NewEmbeddingTable(1<<30, 2, rand.New(rand.NewSource(1)))
	if tb.Rows != MaxFunctionalRows {
		t.Fatalf("rows = %d, want cap %d", tb.Rows, MaxFunctionalRows)
	}
}

func TestInteractionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const batch, dim, f = 2, 3, 3
	vecs := make([]*nn.Matrix, f)
	for i := range vecs {
		vecs[i] = nn.NewMatrix(batch, dim)
		for j := range vecs[i].Data {
			vecs[i].Data[j] = rng.Float32()*2 - 1
		}
	}
	var x interaction
	out := x.Forward(vecs)
	wantCols := dim + f*(f-1)/2
	if out.Cols != wantCols {
		t.Fatalf("interaction out cols = %d, want %d", out.Cols, wantCols)
	}
	// Loss = sum of squares of output.
	loss := func() float64 {
		var xx interaction
		o := xx.Forward(vecs)
		var s float64
		for _, v := range o.Data {
			s += float64(v) * float64(v)
		}
		return s
	}
	grad := nn.NewMatrix(batch, out.Cols)
	for i := range out.Data {
		grad.Data[i] = 2 * out.Data[i]
	}
	dvecs := x.Backward(grad)
	for vi := range vecs {
		for idx := 0; idx < len(vecs[vi].Data); idx += 2 {
			orig := vecs[vi].Data[idx]
			const h = 1e-3
			vecs[vi].Data[idx] = orig + h
			lp := loss()
			vecs[vi].Data[idx] = orig - h
			lm := loss()
			vecs[vi].Data[idx] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-float64(dvecs[vi].Data[idx])) > 1e-2*(1+math.Abs(num)) {
				t.Fatalf("interaction grad v%d[%d]: numeric %f analytic %f", vi, idx, num, dvecs[vi].Data[idx])
			}
		}
	}
}

func randomInputs(cfg Config, globalB int, seed int64) (*nn.Matrix, []*tensor.Sparse, []float32) {
	rng := rand.New(rand.NewSource(seed))
	dense := nn.NewMatrix(globalB, cfg.NumDense)
	for i := range dense.Data {
		dense.Data[i] = rng.Float32()
	}
	sparse := make([]*tensor.Sparse, cfg.NumTables())
	for tb := range sparse {
		lists := make([][]int64, globalB)
		for i := range lists {
			l := 1 + rng.Intn(3)
			lists[i] = make([]int64, l)
			for j := range lists[i] {
				lists[i][j] = rng.Int63n(cfg.TableSizes[tb])
			}
		}
		sparse[tb] = tensor.SparseFromLists("t", lists)
	}
	labels := make([]float32, globalB)
	for i := range labels {
		// Learnable: label correlates with dense feature 0 and table 0's
		// first id parity.
		p := float64(dense.At(i, 0))*0.5 + 0.1
		if sparse[0].Row(i)[0]%2 == 0 {
			p += 0.3
		}
		if rng.Float64() < p {
			labels[i] = 1
		}
	}
	return dense, sparse, labels
}

func TestModelTrains(t *testing.T) {
	cfg := smallConfig(4, 32)
	m, err := NewModel(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse, labels := randomInputs(cfg, 64, 11)
	var first, last float32
	for it := 0; it < 200; it++ {
		loss, err := m.Step(dense, sparse, labels, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first-0.05 {
		t.Fatalf("model did not learn: first %f last %f", first, last)
	}
}

func TestModelForwardErrors(t *testing.T) {
	cfg := smallConfig(2, 8)
	m, err := NewModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse, _ := randomInputs(cfg, 8, 1)
	if _, _, err := m.Forward(nn.NewMatrix(8, 99), sparse); err == nil {
		t.Fatal("wrong dense width accepted")
	}
	if _, _, err := m.Forward(dense, sparse[:1]); err == nil {
		t.Fatal("missing sparse column accepted")
	}
	short := tensor.NewSparse("s", 3)
	if _, _, err := m.Forward(dense, []*tensor.Sparse{sparse[0], short}); err == nil {
		t.Fatal("short sparse column accepted")
	}
}

func TestHybridTrainerLearnsAndStaysInSync(t *testing.T) {
	cfg := smallConfig(6, 16)
	pl := PlaceTables(cfg.TableSizes, 4)
	tr, err := NewHybridTrainer(cfg, pl, 5)
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse, labels := randomInputs(cfg, 64, 13)
	var first, last float32
	for it := 0; it < 200; it++ {
		loss, err := tr.Step(dense, sparse, labels, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first-0.05 {
		t.Fatalf("hybrid trainer did not learn: first %f last %f", first, last)
	}
	if !tr.ReplicasInSync() {
		t.Fatal("replicas diverged despite all-reduce")
	}
}

func TestHybridTrainerMatchesSingleWorker(t *testing.T) {
	// With identical seeds, a 1-worker hybrid trainer and a 2-worker one
	// see the same data; losses should track closely (not exactly —
	// per-shard BCE normalization is equivalent after averaging).
	cfg := smallConfig(4, 16)
	tr1, err := NewHybridTrainer(cfg, PlaceTables(cfg.TableSizes, 1), 9)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := NewHybridTrainer(cfg, PlaceTables(cfg.TableSizes, 2), 9)
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse, labels := randomInputs(cfg, 32, 17)
	for it := 0; it < 10; it++ {
		l1, err := tr1.Step(dense, sparse, labels, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := tr2.Step(dense, sparse, labels, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(l1-l2)) > 0.05*(1+math.Abs(float64(l1))) {
			t.Fatalf("iter %d: 1-worker loss %f vs 2-worker %f", it, l1, l2)
		}
	}
}

func TestHybridTrainerErrors(t *testing.T) {
	cfg := smallConfig(4, 16)
	pl := PlaceTables(cfg.TableSizes, 2)
	tr, err := NewHybridTrainer(cfg, pl, 1)
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse, labels := randomInputs(cfg, 32, 1)
	if _, err := tr.Step(nn.NewMatrix(33, cfg.NumDense), sparse, labels, 0.1); err == nil {
		t.Fatal("indivisible batch accepted")
	}
	if _, err := tr.Step(dense, sparse[:2], labels, 0.1); err == nil {
		t.Fatal("missing tables accepted")
	}
	if _, err := tr.Step(dense, sparse, labels[:5], 0.1); err == nil {
		t.Fatal("short labels accepted")
	}
	short := make([]*tensor.Sparse, len(sparse))
	copy(short, sparse)
	short[1] = tensor.NewSparse("s", 3)
	if _, err := tr.Step(dense, short, labels, 0.1); err == nil {
		t.Fatal("short column accepted")
	}
	// Placement/table mismatch at construction.
	if _, err := NewHybridTrainer(cfg, Placement{NumGPUs: 2, TableGPU: []int{0}}, 1); err == nil {
		t.Fatal("short placement accepted")
	}
}

// Property: PlaceTables always yields a valid partition with max/min
// byte imbalance no worse than the largest single table.
func TestPlaceTablesProperty(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		g := int(gRaw%8) + 1
		sizes := make([]int64, n)
		var largest int64
		for i := range sizes {
			sizes[i] = 1 + rng.Int63n(1_000_000)
			if sizes[i] > largest {
				largest = sizes[i]
			}
		}
		pl := PlaceTables(sizes, g)
		if pl.Validate() != nil {
			return false
		}
		load := make([]int64, g)
		for tb, gg := range pl.TableGPU {
			load[gg] += sizes[tb]
		}
		var mx, mn int64 = 0, 1 << 62
		for _, l := range load {
			if l > mx {
				mx = l
			}
			if l < mn {
				mn = l
			}
		}
		return mx-mn <= largest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
