package dlrm

import (
	"fmt"
	"math/rand"

	"rap/internal/nn"
	"rap/internal/tensor"
)

// HybridTrainer executes real hybrid-parallel DLRM training (§2.2) on
// the CPU: the MLPs are replicated on every worker (data parallelism,
// kept in sync by an explicit gradient all-reduce) while the embedding
// tables are partitioned across workers (model parallelism) and their
// pooled activations move through an explicit all-to-all exchange. One
// worker stands in for one GPU; the exchanges mirror the traffic the
// simulator charges for.
type HybridTrainer struct {
	Cfg Config
	Pl  Placement

	workers []*hpWorker
}

type hpWorker struct {
	bottom *nn.MLP
	top    *nn.MLP
	inter  interaction
	// tables maps global table index -> local shard.
	tables map[int]*EmbeddingTable
}

// NewHybridTrainer builds N synchronized replicas. All replicas start
// from identical weights (same seed); table t is created only on its
// owner with a per-table seed, so placement does not change init.
func NewHybridTrainer(cfg Config, pl Placement, seed int64) (*HybridTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if len(pl.TableGPU) != cfg.NumTables() {
		return nil, fmt.Errorf("dlrm: placement covers %d tables, model has %d", len(pl.TableGPU), cfg.NumTables())
	}
	t := &HybridTrainer{Cfg: cfg, Pl: pl}
	for g := 0; g < pl.NumGPUs; g++ {
		rng := rand.New(rand.NewSource(seed))
		w := &hpWorker{
			bottom: nn.NewMLP(cfg.bottomDims(), true, rng),
			top:    nn.NewMLP(cfg.topDims(), false, rng),
			tables: map[int]*EmbeddingTable{},
		}
		t.workers = append(t.workers, w)
	}
	for tb, g := range pl.TableGPU {
		rng := rand.New(rand.NewSource(seed + 1000 + int64(tb)))
		t.workers[g].tables[tb] = NewEmbeddingTable(
			int(min64(cfg.TableSizes[tb], MaxFunctionalRows)), cfg.EmbeddingDim, rng)
	}
	return t, nil
}

// NumWorkers returns the worker (simulated GPU) count.
func (t *HybridTrainer) NumWorkers() int { return len(t.workers) }

// Step performs one synchronized hybrid-parallel step over a global
// batch: dense is globalBatch×NumDense, sparse holds one globalBatch
// column per table, labels has globalBatch entries. The global batch is
// split evenly across workers. Returns the mean loss.
func (t *HybridTrainer) Step(dense *nn.Matrix, sparse []*tensor.Sparse, labels []float32, lr float32) (float32, error) {
	n := len(t.workers)
	globalB := dense.Rows
	if globalB%n != 0 {
		return 0, fmt.Errorf("dlrm: global batch %d not divisible by %d workers", globalB, n)
	}
	if len(sparse) != t.Cfg.NumTables() {
		return 0, fmt.Errorf("dlrm: got %d sparse columns for %d tables", len(sparse), t.Cfg.NumTables())
	}
	if len(labels) != globalB {
		return 0, fmt.Errorf("dlrm: %d labels for %d samples", len(labels), globalB)
	}
	for tb, col := range sparse {
		if col.Len() != globalB {
			return 0, fmt.Errorf("dlrm: sparse column %d has %d samples, want %d", tb, col.Len(), globalB)
		}
	}
	shard := globalB / n

	// Phase 1 (model parallel): every table's owner pools the whole
	// global batch on its local shard.
	pooled := make([]*nn.Matrix, t.Cfg.NumTables())
	for tb := range sparse {
		owner := t.workers[t.Pl.TableGPU[tb]]
		out := nn.NewMatrix(globalB, t.Cfg.EmbeddingDim)
		owner.tables[tb].LookupPooled(sparse[tb], out)
		pooled[tb] = out
	}

	// Phases 2-3: all-to-all hands each worker its sample rows of every
	// table's pooled output; each worker then runs its data-parallel
	// forward/backward on its shard.
	type shardGrad struct {
		vecs []*nn.Matrix // dL/d pooled, per table, shard rows
	}
	grads := make([]shardGrad, n)
	var totalLoss float32
	for g := 0; g < n; g++ {
		w := t.workers[g]
		lo, hi := g*shard, (g+1)*shard
		denseShard := nn.NewMatrix(shard, dense.Cols)
		for i := lo; i < hi; i++ {
			copy(denseShard.Row(i-lo), dense.Row(i))
		}
		bot := w.bottom.Forward(denseShard)
		vectors := make([]*nn.Matrix, 0, len(pooled)+1)
		vectors = append(vectors, bot)
		for tb := range pooled {
			v := nn.NewMatrix(shard, t.Cfg.EmbeddingDim)
			for i := lo; i < hi; i++ {
				copy(v.Row(i-lo), pooled[tb].Row(i))
			}
			vectors = append(vectors, v)
		}
		z := w.inter.Forward(vectors)
		logits := w.top.Forward(z)
		loss, dlogits := nn.BCEWithLogits(logits, labels[lo:hi])
		totalLoss += loss
		dz := w.top.Backward(dlogits)
		dvecs := w.inter.Backward(dz)
		w.bottom.Backward(dvecs[0])
		grads[g] = shardGrad{vecs: dvecs[1:]}
	}

	// Phase 4 (backward all-to-all): route pooled-activation gradients
	// back to the owning table shard.
	for tb := range sparse {
		owner := t.workers[t.Pl.TableGPU[tb]]
		for g := 0; g < n; g++ {
			lo, hi := g*shard, (g+1)*shard
			sub := sparse[tb].Slice(lo, hi)
			owner.tables[tb].AccumulateGrad(sub, grads[g].vecs[tb])
		}
	}

	// Phase 5 (all-reduce): average the replicated MLP gradients so all
	// replicas apply the identical global update.
	allReduceMLP(collect(t.workers, func(w *hpWorker) *nn.MLP { return w.bottom }))
	allReduceMLP(collect(t.workers, func(w *hpWorker) *nn.MLP { return w.top }))

	// Phase 6: apply updates.
	for _, w := range t.workers {
		w.bottom.Step(lr)
		w.top.Step(lr)
		for _, table := range w.tables {
			table.Step(lr)
		}
	}
	return totalLoss / float32(n), nil
}

func collect(ws []*hpWorker, f func(*hpWorker) *nn.MLP) []*nn.MLP {
	out := make([]*nn.MLP, len(ws))
	for i, w := range ws {
		out[i] = f(w)
	}
	return out
}

// allReduceMLP averages the accumulated gradients of structurally
// identical MLP replicas in place.
func allReduceMLP(replicas []*nn.MLP) {
	if len(replicas) < 2 {
		return
	}
	n := float32(len(replicas))
	for li := range replicas[0].Layers {
		first, ok := replicas[0].Layers[li].(*nn.Linear)
		if !ok {
			continue
		}
		dW0, dB0 := first.Gradients()
		for r := 1; r < len(replicas); r++ {
			lin := replicas[r].Layers[li].(*nn.Linear)
			dW, dB := lin.Gradients()
			for i := range dW0.Data {
				dW0.Data[i] += dW.Data[i]
			}
			for i := range dB0 {
				dB0[i] += dB[i]
			}
		}
		for i := range dW0.Data {
			dW0.Data[i] /= n
		}
		for i := range dB0 {
			dB0[i] /= n
		}
		for r := 1; r < len(replicas); r++ {
			lin := replicas[r].Layers[li].(*nn.Linear)
			dW, dB := lin.Gradients()
			copy(dW.Data, dW0.Data)
			copy(dB, dB0)
		}
	}
}

// ReplicasInSync reports whether all MLP replicas hold bit-identical
// weights (the data-parallel invariant).
func (t *HybridTrainer) ReplicasInSync() bool {
	for r := 1; r < len(t.workers); r++ {
		if !sameMLP(t.workers[0].bottom, t.workers[r].bottom) ||
			!sameMLP(t.workers[0].top, t.workers[r].top) {
			return false
		}
	}
	return true
}

func sameMLP(a, b *nn.MLP) bool {
	for li := range a.Layers {
		la, ok := a.Layers[li].(*nn.Linear)
		if !ok {
			continue
		}
		lb := b.Layers[li].(*nn.Linear)
		for i := range la.W.Data {
			//lint:ignore floateq intentional bit-equality: replicas must match exactly
			if la.W.Data[i] != lb.W.Data[i] {
				return false
			}
		}
		for i := range la.B {
			//lint:ignore floateq intentional bit-equality: replicas must match exactly
			if la.B[i] != lb.B[i] {
				return false
			}
		}
	}
	return true
}
