package dlrm

import (
	"fmt"
	"math/rand"

	"rap/internal/nn"
	"rap/internal/tensor"
)

// MaxFunctionalRows caps the materialized row count of functional
// embedding tables. Industrial table sizes (hundreds of millions of
// rows) only matter for placement and traffic modelling — the functional
// trainer validates learning dynamics, so ids are folded modulo the cap.
const MaxFunctionalRows = 1 << 16

// EmbeddingTable is one model-parallel embedding table with sum pooling
// and sparse SGD updates.
type EmbeddingTable struct {
	Rows, Dim int
	W         []float32
	grads     map[int][]float32
}

// NewEmbeddingTable allocates a table with small random init.
func NewEmbeddingTable(rows, dim int, rng *rand.Rand) *EmbeddingTable {
	if rows > MaxFunctionalRows {
		rows = MaxFunctionalRows
	}
	if rows < 1 {
		rows = 1
	}
	t := &EmbeddingTable{Rows: rows, Dim: dim, W: make([]float32, rows*dim), grads: map[int][]float32{}}
	for i := range t.W {
		t.W[i] = (rng.Float32()*2 - 1) * 0.05
	}
	return t
}

func (t *EmbeddingTable) row(id int64) []float32 {
	r := int(((id % int64(t.Rows)) + int64(t.Rows)) % int64(t.Rows))
	return t.W[r*t.Dim : (r+1)*t.Dim]
}

// LookupPooled sum-pools the embedding rows of each sample's ids into
// out (len(col) × Dim).
func (t *EmbeddingTable) LookupPooled(col *tensor.Sparse, out *nn.Matrix) {
	if out.Rows != col.Len() || out.Cols != t.Dim {
		//lint:ignore panicpath checked invariant: callers size out from the same col/Dim
		panic(fmt.Sprintf("dlrm: lookup output %d×%d for %d samples dim %d", out.Rows, out.Cols, col.Len(), t.Dim))
	}
	for i := 0; i < col.Len(); i++ {
		dst := out.Row(i)
		for j := range dst {
			dst[j] = 0
		}
		for _, id := range col.Row(i) {
			src := t.row(id)
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
}

// AccumulateGrad adds grad (one Dim-vector per sample) into the
// gradients of every row each sample touched.
func (t *EmbeddingTable) AccumulateGrad(col *tensor.Sparse, grad *nn.Matrix) {
	for i := 0; i < col.Len(); i++ {
		g := grad.Row(i)
		for _, id := range col.Row(i) {
			r := int(((id % int64(t.Rows)) + int64(t.Rows)) % int64(t.Rows))
			acc, ok := t.grads[r]
			if !ok {
				acc = make([]float32, t.Dim)
				t.grads[r] = acc
			}
			for j := range acc {
				acc[j] += g[j]
			}
		}
	}
}

// Step applies accumulated sparse gradients with SGD and clears them.
func (t *EmbeddingTable) Step(lr float32) {
	for r, g := range t.grads {
		row := t.W[r*t.Dim : (r+1)*t.Dim]
		for j := range row {
			row[j] -= lr * g[j]
		}
		delete(t.grads, r)
	}
}

// PendingRows reports how many rows currently hold accumulated grads.
func (t *EmbeddingTable) PendingRows() int { return len(t.grads) }

// interaction computes DLRM's pairwise-dot feature interaction and its
// backward pass. vectors[0] is the bottom-MLP output; vectors[1:] are
// the pooled table lookups. All are batch×dim.
type interaction struct {
	vectors []*nn.Matrix
	dim     int
}

// Forward returns batch × (dim + F(F-1)/2): the bottom output
// concatenated with the upper-triangle pairwise dot products.
func (x *interaction) Forward(vectors []*nn.Matrix) *nn.Matrix {
	x.vectors = vectors
	x.dim = vectors[0].Cols
	f := len(vectors)
	batch := vectors[0].Rows
	out := nn.NewMatrix(batch, x.dim+f*(f-1)/2)
	for b := 0; b < batch; b++ {
		dst := out.Row(b)
		copy(dst, vectors[0].Row(b))
		k := x.dim
		for i := 0; i < f; i++ {
			vi := vectors[i].Row(b)
			for j := i + 1; j < f; j++ {
				vj := vectors[j].Row(b)
				var dot float32
				for d := 0; d < x.dim; d++ {
					dot += vi[d] * vj[d]
				}
				dst[k] = dot
				k++
			}
		}
	}
	return out
}

// Backward maps dL/doutput back to per-vector gradients.
func (x *interaction) Backward(grad *nn.Matrix) []*nn.Matrix {
	f := len(x.vectors)
	batch := grad.Rows
	out := make([]*nn.Matrix, f)
	for i := range out {
		out[i] = nn.NewMatrix(batch, x.dim)
	}
	for b := 0; b < batch; b++ {
		g := grad.Row(b)
		copy(out[0].Row(b), g[:x.dim])
		k := x.dim
		for i := 0; i < f; i++ {
			vi := x.vectors[i].Row(b)
			gi := out[i].Row(b)
			for j := i + 1; j < f; j++ {
				vj := x.vectors[j].Row(b)
				gj := out[j].Row(b)
				gd := g[k]
				k++
				//lint:ignore floateq exact-zero skip is a pure sparsity optimization
				if gd == 0 {
					continue
				}
				for d := 0; d < x.dim; d++ {
					gi[d] += gd * vj[d]
					gj[d] += gd * vi[d]
				}
			}
		}
	}
	return out
}

// Model is one full DLRM replica (all tables local) for single-GPU
// functional training and as the building block of the hybrid trainer.
type Model struct {
	Cfg    Config
	Bottom *nn.MLP
	Top    *nn.MLP
	Tables []*EmbeddingTable
	inter  interaction
}

// NewModel builds a model with deterministic init from seed.
func NewModel(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Cfg:    cfg,
		Bottom: nn.NewMLP(cfg.bottomDims(), true, rng),
		Top:    nn.NewMLP(cfg.topDims(), false, rng),
	}
	for _, rows := range cfg.TableSizes {
		m.Tables = append(m.Tables, NewEmbeddingTable(int(min64(rows, MaxFunctionalRows)), cfg.EmbeddingDim, rng))
	}
	return m, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Forward runs the model on dense input (batch×NumDense) and one sparse
// column per table, returning the logits and the pooled lookups (needed
// for backward).
func (m *Model) Forward(dense *nn.Matrix, sparse []*tensor.Sparse) (*nn.Matrix, []*nn.Matrix, error) {
	if dense.Cols != m.Cfg.NumDense {
		return nil, nil, fmt.Errorf("dlrm: dense input has %d features, model wants %d", dense.Cols, m.Cfg.NumDense)
	}
	if len(sparse) != len(m.Tables) {
		return nil, nil, fmt.Errorf("dlrm: got %d sparse columns for %d tables", len(sparse), len(m.Tables))
	}
	bot := m.Bottom.Forward(dense)
	vectors := make([]*nn.Matrix, 0, len(m.Tables)+1)
	vectors = append(vectors, bot)
	for t, table := range m.Tables {
		if sparse[t].Len() != dense.Rows {
			return nil, nil, fmt.Errorf("dlrm: sparse column %d has %d samples, dense has %d", t, sparse[t].Len(), dense.Rows)
		}
		pooled := nn.NewMatrix(dense.Rows, m.Cfg.EmbeddingDim)
		table.LookupPooled(sparse[t], pooled)
		vectors = append(vectors, pooled)
	}
	z := m.inter.Forward(vectors)
	logits := m.Top.Forward(z)
	return logits, vectors[1:], nil
}

// Step runs one full training step (forward, BCE loss, backward, SGD)
// and returns the loss.
func (m *Model) Step(dense *nn.Matrix, sparse []*tensor.Sparse, labels []float32, lr float32) (float32, error) {
	logits, _, err := m.Forward(dense, sparse)
	if err != nil {
		return 0, err
	}
	loss, dlogits := nn.BCEWithLogits(logits, labels)
	dz := m.Top.Backward(dlogits)
	dvecs := m.inter.Backward(dz)
	m.Bottom.Backward(dvecs[0])
	for t, table := range m.Tables {
		table.AccumulateGrad(sparse[t], dvecs[t+1])
	}
	m.Bottom.Step(lr)
	m.Top.Step(lr)
	for _, table := range m.Tables {
		table.Step(lr)
	}
	return loss, nil
}
