package dlrm

import (
	"fmt"

	"rap/internal/gpusim"
)

// Calibration constants for the simulated A100-class trainer. Absolute
// values are arbitrary; RAP's decisions depend on the relative shape:
// MLP stages are compute-bound (high SM, moderate bandwidth), embedding
// stages are memory-bound (low SM, high bandwidth) — the fluctuation of
// Figure 1(a) that RAP harvests.
const (
	// flopsPerUs is effective full-GPU FLOP throughput per µs.
	flopsPerUs = 2.5e7 //rap:unit flop/us
	// hbmBytesPerUs is effective full-GPU DRAM bandwidth per µs.
	hbmBytesPerUs = 1.5e6 //rap:unit B/us
	// trainLaunchOverhead is the per-stage launch cost (µs); training
	// stages are big fused kernels so this is mostly negligible.
	trainLaunchOverhead = 4.0 //rap:unit us
)

// StageKind distinguishes compute stages from communication stages.
type StageKind int

const (
	// StageCompute runs a GPU kernel.
	StageCompute StageKind = iota
	// StageComm occupies the GPU's NVLink ports.
	StageComm
)

// Stage is one step of a DLRM training iteration on one GPU.
type Stage struct {
	Name string
	Kind StageKind
	// Kernel is set for StageCompute.
	Kernel gpusim.Kernel
	// Bytes is the per-GPU communication volume for StageComm.
	Bytes float64 //rap:unit B
}

// SoloLatency returns the stage's uncontended duration given the link
// bandwidth (GB/s) for comm stages.
//
//rap:unit linkGBs GB/s
//rap:unit return us
func (s Stage) SoloLatency(linkGBs float64) float64 {
	if s.Kind == StageComm {
		return s.Bytes / (linkGBs * 1e3)
	}
	return s.Kernel.SoloLatency()
}

// mlpFlops counts the forward FLOPs of an MLP stack.
//
//rap:unit return flop
func mlpFlops(batch int, dims []int) float64 {
	f := 0.0
	for i := 0; i+1 < len(dims); i++ {
		f += float64(dims[i]) * float64(dims[i+1])
	}
	return 2 * float64(batch) * f
}

// computeStage builds a compute-bound stage from a FLOP count.
//
//rap:unit flops flop
func computeStage(name string, flops, sm, bw float64) Stage {
	return Stage{
		Name: name,
		Kind: StageCompute,
		Kernel: gpusim.Kernel{
			Name:           name,
			Work:           flops / flopsPerUs,
			Demand:         gpusim.Demand{SM: sm, MemBW: bw},
			LaunchOverhead: trainLaunchOverhead,
			Tag:            "train",
		},
	}
}

// memoryStage builds a bandwidth-bound stage from a byte volume.
//
//rap:unit bytes B
func memoryStage(name string, bytes, sm, bw float64) Stage {
	return Stage{
		Name: name,
		Kind: StageCompute,
		Kernel: gpusim.Kernel{
			Name:           name,
			Work:           bytes / hbmBytesPerUs,
			Demand:         gpusim.Demand{SM: sm, MemBW: bw},
			LaunchOverhead: trainLaunchOverhead,
			Tag:            "train",
		},
	}
}

// IterationStages returns the ordered training stages of one iteration
// on GPU g under the given placement. The order follows the hybrid
// parallelism data flow (§2.2): embedding lookup on local tables for the
// global batch, forward all-to-all, bottom MLP (data parallel),
// pairwise interaction, top MLP, the backward mirror, gradient
// all-reduce and the sparse embedding update.
func (c Config) IterationStages(g int, pl Placement) []Stage {
	local := float64(len(pl.LocalTables(g)))
	n := float64(pl.NumGPUs)
	globalBatch := float64(c.BatchSize) * n
	dim := float64(c.EmbeddingDim)
	f := float64(c.InteractionFeatures())

	// Embedding traffic: every lookup reads `pooling` rows of `dim`
	// float32s for every sample of the global batch on each local table.
	lookupBytes := globalBatch * local * c.pooling() * dim * 4
	// Pooled activations exchanged in the all-to-all: one dim-vector per
	// (sample, local table); the remote share leaves the GPU.
	a2aBytes := globalBatch * local * dim * 4
	if n > 1 {
		a2aBytes *= (n - 1) / n
	} else {
		a2aBytes = 0
	}
	botFlops := mlpFlops(c.BatchSize, c.bottomDims())
	topFlops := mlpFlops(c.BatchSize, c.topDims())
	interFlops := float64(c.BatchSize) * f * f * dim
	arBytes := 0.0
	if n > 1 {
		arBytes = 2 * (n - 1) / n * float64(c.MLPParams()) * 4
	}

	return []Stage{
		memoryStage("emb_lookup", lookupBytes, 0.20, 0.90),
		{Name: "a2a_fwd", Kind: StageComm, Bytes: a2aBytes},
		computeStage("bot_fwd", botFlops, 0.70, 0.35),
		computeStage("inter_fwd", interFlops, 0.60, 0.70),
		computeStage("top_fwd", topFlops, 0.72, 0.30),
		computeStage("top_bwd", 2*topFlops, 0.75, 0.35),
		computeStage("inter_bwd", 2*interFlops, 0.60, 0.70),
		computeStage("bot_bwd", 2*botFlops, 0.70, 0.40),
		{Name: "a2a_bwd", Kind: StageComm, Bytes: a2aBytes},
		{Name: "allreduce", Kind: StageComm, Bytes: arBytes},
		memoryStage("emb_update", 2*lookupBytes, 0.25, 0.95),
	}
}

// NumStages is the stage count of every iteration.
const NumStages = 11

// commStageDeps lists, per stage index, whether the stage must wait for
// the previous stage of ALL GPUs (collectives) rather than only its own.
func commStageDeps(i int) bool {
	switch i {
	case 1, 8, 9: // a2a_fwd, a2a_bwd, allreduce
		return true
	default:
		return false
	}
}

// IterHandle exposes the simulator ops of one scheduled iteration.
type IterHandle struct {
	// StageOps[g][s] is the op id of stage s on GPU g.
	StageOps [][]gpusim.OpID
	// StageStartDeps[g][s] are the dependencies that gate stage s on GPU
	// g; a co-running preprocessing kernel assigned to stage s starts
	// alongside it by depending on the same ops.
	StageStartDeps [][][]gpusim.OpID
	// End is a barrier op that completes when the iteration does.
	End gpusim.OpID
}

// IterTemplate is the iteration-invariant part of a training DAG: the
// per-GPU stage list and per-stage name suffixes, validated and derived
// once per (Config, Placement) pair. Callers that schedule many
// iterations — or rebuild the same pipeline hundreds of times during
// capacity search — reuse the template instead of re-deriving identical
// stage structure per iteration.
type IterTemplate struct {
	numGPUs int
	// stages[g] is the ordered stage list of GPU g.
	stages [][]Stage
	// names[g][s] is "g<g>/<stage>", the iteration-independent suffix of
	// the op name (the full name is "it<iter>/" + names[g][s]).
	names [][]string
}

// NewIterTemplate validates cfg and pl and precomputes the per-GPU
// training-stage structure shared by every iteration.
func (c Config) NewIterTemplate(pl Placement) (*IterTemplate, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	n := pl.NumGPUs
	t := &IterTemplate{
		numGPUs: n,
		stages:  make([][]Stage, n),
		names:   make([][]string, n),
	}
	for g := 0; g < n; g++ {
		t.stages[g] = c.IterationStages(g, pl)
		t.names[g] = make([]string, len(t.stages[g]))
		for s, st := range t.stages[g] {
			t.names[g][s] = fmt.Sprintf("g%d/%s", g, st.Name)
		}
	}
	return t, nil
}

// AddIteration schedules one training iteration into sim. extraDeps gate
// the iteration start on GPU g (input availability: the preprocessing
// and host-copy ops of the batch this iteration consumes).
func (c Config) AddIteration(sim *gpusim.Sim, pl Placement, iter int, extraDeps [][]gpusim.OpID) (IterHandle, error) {
	t, err := c.NewIterTemplate(pl)
	if err != nil {
		return IterHandle{}, err
	}
	return t.AddIteration(sim, iter, extraDeps)
}

// AddIteration schedules iteration iter from the template into sim.
func (t *IterTemplate) AddIteration(sim *gpusim.Sim, iter int, extraDeps [][]gpusim.OpID) (IterHandle, error) {
	if sim.Config().NumGPUs != t.numGPUs {
		return IterHandle{}, fmt.Errorf("dlrm: placement has %d GPUs, sim has %d", t.numGPUs, sim.Config().NumGPUs)
	}
	n := t.numGPUs
	h := IterHandle{
		StageOps:       make([][]gpusim.OpID, n),
		StageStartDeps: make([][][]gpusim.OpID, n),
	}
	for g := 0; g < n; g++ {
		h.StageOps[g] = make([]gpusim.OpID, len(t.stages[g]))
		h.StageStartDeps[g] = make([][]gpusim.OpID, len(t.stages[g]))
	}
	iterPrefix := fmt.Sprintf("it%d/", iter)
	for s := 0; s < NumStages; s++ {
		// Collect cross-GPU deps for collective stages.
		var collective []gpusim.OpID
		if commStageDeps(s) {
			for g := 0; g < n; g++ {
				collective = append(collective, h.StageOps[g][s-1])
			}
		}
		for g := 0; g < n; g++ {
			var deps []gpusim.OpID
			switch {
			case s == 0:
				deps = append(deps, extraDepsFor(extraDeps, g)...)
			case commStageDeps(s):
				deps = append(deps, collective...)
			default:
				deps = append(deps, h.StageOps[g][s-1])
			}
			h.StageStartDeps[g][s] = deps
			st := t.stages[g][s]
			name := iterPrefix + t.names[g][s]
			var id gpusim.OpID
			if st.Kind == StageComm {
				id = sim.AddLinkBusy(name, g, st.Bytes, gpusim.WithDeps(deps...), gpusim.WithTag("train"))
			} else {
				k := st.Kernel
				k.Name = name
				id = sim.AddKernel(g, k, gpusim.WithDeps(deps...), gpusim.WithPriority(1))
			}
			h.StageOps[g][s] = id
		}
	}
	var lasts []gpusim.OpID
	for g := 0; g < n; g++ {
		lasts = append(lasts, h.StageOps[g][NumStages-1])
	}
	h.End = sim.AddBarrier(fmt.Sprintf("it%d/end", iter), gpusim.WithDeps(lasts...))
	return h, nil
}

func extraDepsFor(extra [][]gpusim.OpID, g int) []gpusim.OpID {
	if extra == nil || g >= len(extra) {
		return nil
	}
	return extra[g]
}

// IterationSoloLatency estimates one iteration's uncontended latency on
// the critical path (max across GPUs of the serial stage chain; comm
// stages use the given link bandwidth).
//
//rap:unit linkGBs GB/s
//rap:unit return us
func (c Config) IterationSoloLatency(pl Placement, linkGBs float64) float64 {
	worst := 0.0
	for g := 0; g < pl.NumGPUs; g++ {
		total := 0.0
		for _, s := range c.IterationStages(g, pl) {
			total += s.SoloLatency(linkGBs)
		}
		if total > worst {
			worst = total
		}
	}
	return worst
}
