// Package dlrm models the Deep Learning Recommendation Model being
// trained: the Table 2 architectures, hybrid-parallel embedding-table
// placement, the per-stage GPU cost footprints that drive the simulator,
// and a real (CPU-executed) hybrid-parallel trainer built on internal/nn
// whose loss measurably decreases.
package dlrm

import (
	"fmt"
	"sort"
)

// Config describes one DLRM training workload (Table 2 plus batch size).
type Config struct {
	Name string
	// NumDense is the dense-feature count after preprocessing.
	NumDense int
	// EmbeddingDim is the embedding vector width (Table 2 "Dimension").
	EmbeddingDim int
	// BottomArch are the hidden sizes of the dense ("Dense Arch") MLP; a
	// final projection to EmbeddingDim is appended automatically so the
	// bottom output can join the pairwise interaction.
	BottomArch []int
	// TopArch are the hidden sizes of the top MLP ("Top Arch"); a final
	// projection to 1 logit is appended automatically.
	TopArch []int
	// TableSizes are the embedding-table row counts (hash sizes).
	TableSizes []int64
	// BatchSize is the per-GPU batch size.
	BatchSize int
	// AvgPooling is the mean multi-hot ids per lookup.
	AvgPooling float64
}

// KaggleConfig returns the Criteo-Kaggle row of Table 2.
func KaggleConfig(tableSizes []int64, batch int) Config {
	return Config{
		Name:         "criteo-kaggle",
		NumDense:     13,
		EmbeddingDim: 128,
		BottomArch:   []int{512, 256},
		TopArch:      []int{1024, 1024, 512},
		TableSizes:   tableSizes,
		BatchSize:    batch,
		AvgPooling:   3,
	}
}

// TerabyteConfig returns the Criteo-Terabyte row of Table 2.
func TerabyteConfig(tableSizes []int64, batch int) Config {
	return Config{
		Name:         "criteo-terabyte",
		NumDense:     13,
		EmbeddingDim: 128,
		BottomArch:   []int{512, 256},
		TopArch:      []int{1024, 1024, 512, 256},
		TableSizes:   tableSizes,
		BatchSize:    batch,
		AvgPooling:   3,
	}
}

// Validate checks the config's structural invariants.
func (c Config) Validate() error {
	if c.NumDense <= 0 {
		return fmt.Errorf("dlrm: %s: NumDense must be positive", c.Name)
	}
	if c.EmbeddingDim <= 0 {
		return fmt.Errorf("dlrm: %s: EmbeddingDim must be positive", c.Name)
	}
	if len(c.BottomArch) == 0 || len(c.TopArch) == 0 {
		return fmt.Errorf("dlrm: %s: empty MLP arch", c.Name)
	}
	if len(c.TableSizes) == 0 {
		return fmt.Errorf("dlrm: %s: no embedding tables", c.Name)
	}
	for i, s := range c.TableSizes {
		if s < 1 {
			return fmt.Errorf("dlrm: %s: table %d has size %d", c.Name, i, s)
		}
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("dlrm: %s: BatchSize must be positive", c.Name)
	}
	return nil
}

// NumTables returns the embedding-table count.
func (c Config) NumTables() int { return len(c.TableSizes) }

// pooling returns the defaulted AvgPooling.
func (c Config) pooling() float64 {
	if c.AvgPooling <= 0 {
		return 1
	}
	return c.AvgPooling
}

// bottomDims returns the full bottom-MLP layer widths
// [NumDense, BottomArch..., EmbeddingDim].
func (c Config) bottomDims() []int {
	dims := append([]int{c.NumDense}, c.BottomArch...)
	return append(dims, c.EmbeddingDim)
}

// InteractionFeatures returns the number of vectors entering the
// pairwise interaction: one per table plus the bottom-MLP output.
func (c Config) InteractionFeatures() int { return c.NumTables() + 1 }

// TopInputDim returns the top-MLP input width: the bottom output
// concatenated with the upper-triangle pairwise dot products.
func (c Config) TopInputDim() int {
	f := c.InteractionFeatures()
	return c.EmbeddingDim + f*(f-1)/2
}

// topDims returns the full top-MLP layer widths
// [TopInputDim, TopArch..., 1].
func (c Config) topDims() []int {
	dims := append([]int{c.TopInputDim()}, c.TopArch...)
	return append(dims, 1)
}

// MLPParams returns the total replicated (data-parallel) parameter count.
func (c Config) MLPParams() int {
	count := func(dims []int) int {
		n := 0
		for i := 0; i+1 < len(dims); i++ {
			n += dims[i]*dims[i+1] + dims[i+1]
		}
		return n
	}
	return count(c.bottomDims()) + count(c.topDims())
}

// Placement assigns each embedding table to a GPU (model parallelism).
type Placement struct {
	NumGPUs  int
	TableGPU []int
}

// PlaceTables greedily balances tables across GPUs by row count
// (largest-first bin packing), the standard TorchRec-style sharding.
func PlaceTables(tableSizes []int64, numGPUs int) Placement {
	if numGPUs < 1 {
		numGPUs = 1
	}
	type entry struct {
		idx  int
		size int64
	}
	entries := make([]entry, len(tableSizes))
	for i, s := range tableSizes {
		entries[i] = entry{i, s}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].size != entries[j].size {
			return entries[i].size > entries[j].size
		}
		return entries[i].idx < entries[j].idx
	})
	load := make([]int64, numGPUs)
	pl := Placement{NumGPUs: numGPUs, TableGPU: make([]int, len(tableSizes))}
	for _, e := range entries {
		best := 0
		for g := 1; g < numGPUs; g++ {
			if load[g] < load[best] {
				best = g
			}
		}
		pl.TableGPU[e.idx] = best
		load[best] += e.size
	}
	return pl
}

// LocalTables returns the table indices placed on GPU g, ascending.
func (p Placement) LocalTables(g int) []int {
	var out []int
	for t, gpu := range p.TableGPU {
		if gpu == g {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks that every table is placed on a valid GPU.
func (p Placement) Validate() error {
	if p.NumGPUs < 1 {
		return fmt.Errorf("dlrm: placement has %d GPUs", p.NumGPUs)
	}
	for t, g := range p.TableGPU {
		if g < 0 || g >= p.NumGPUs {
			return fmt.Errorf("dlrm: table %d placed on GPU %d of %d", t, g, p.NumGPUs)
		}
	}
	return nil
}
