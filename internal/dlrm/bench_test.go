package dlrm

import (
	"testing"

	"rap/internal/gpusim"
)

// BenchmarkHybridStep measures one real hybrid-parallel training step
// (4 workers, small model, 128-sample global batch).
func BenchmarkHybridStep(b *testing.B) {
	cfg := smallConfig(8, 32)
	pl := PlaceTables(cfg.TableSizes, 4)
	tr, err := NewHybridTrainer(cfg, pl, 1)
	if err != nil {
		b.Fatal(err)
	}
	dense, sparse, labels := randomInputs(cfg, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(dense, sparse, labels, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIterationSim measures simulating one full 8-GPU training
// iteration.
func BenchmarkIterationSim(b *testing.B) {
	sizes := sizes26()
	cfg := TerabyteConfig(sizes, 4096)
	pl := PlaceTables(sizes, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 8})
		if _, err := cfg.AddIteration(sim, pl, 0, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
