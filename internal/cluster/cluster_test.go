package cluster

import (
	"reflect"
	"strings"
	"testing"

	"rap/internal/rap"
	"rap/internal/topo"
)

// smallFleet is a 2-node × 2-GPU fleet with a constrained fabric.
func smallFleet() *topo.Topology {
	tp := topo.Uniform(2, 2)
	tp.FabricGBs = 50
	tp.Oversub = 2
	return tp
}

// kaggleJob is the cheapest shape to plan and simulate.
func kaggleJob(id int, arrival float64, gpus, iters int) Job {
	return Job{ID: id, ArrivalUs: arrival, Shape: JobShape{
		Dataset: rap.Kaggle, PlanIdx: 0, PerGPUBatch: 2048, GPUs: gpus, Iterations: iters,
	}}
}

func TestGenerateJobsDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 5, NumJobs: 20, MeanGapUs: 1000, MaxGPUs: 8}
	a, err := GenerateJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different job traces")
	}
	cfg.Seed = 6
	c, err := GenerateJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical job traces")
	}
	for i, j := range a {
		if j.Shape.GPUs > 8 {
			t.Fatalf("job %d exceeds MaxGPUs: %d", i, j.Shape.GPUs)
		}
		if i > 0 && j.ArrivalUs < a[i-1].ArrivalUs {
			t.Fatalf("arrivals not monotone at job %d", i)
		}
		if j.Shape.Iterations < 1 {
			t.Fatalf("job %d has %d iterations", i, j.Shape.Iterations)
		}
	}
	if _, err := GenerateJobs(GenConfig{Seed: 1, NumJobs: 0}); err == nil {
		t.Fatal("NumJobs 0 accepted")
	}
	if _, err := GenerateJobs(GenConfig{Seed: 1, NumJobs: 1, MaxGPUs: 1}); err == nil {
		t.Fatal("MaxGPUs below the smallest menu shape accepted")
	}
	if _, err := GenerateJobs(GenConfig{Seed: 1, NumJobs: 1, MeanGapUs: -5}); err == nil {
		t.Fatal("negative arrival gap accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Policy: Pack{}}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := New(Config{Topo: smallFleet()}); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := topo.Uniform(2, 2)
	bad.Oversub = 0.25
	if _, err := New(Config{Topo: bad, Policy: Pack{}}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

// TestSimulateDeterministic: the digest is bit-stable across fresh
// simulators and across reuse of one simulator's warm plan cache.
func TestSimulateDeterministic(t *testing.T) {
	jobs := []Job{
		kaggleJob(0, 0, 2, 12),
		kaggleJob(1, 50, 2, 10),
		kaggleJob(2, 60, 4, 9),
		kaggleJob(3, 70, 2, 20),
	}
	digest := func(s *Simulator) string {
		rep, err := s.Simulate(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Digest()
	}
	s1, err := New(Config{Topo: smallFleet(), Policy: Pack{}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Topo: smallFleet(), Policy: Pack{}})
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := digest(s1), digest(s2)
	if d1 != d2 {
		t.Fatalf("fresh simulators disagree: %s vs %s", d1[:12], d2[:12])
	}
	if d3 := digest(s1); d3 != d1 {
		t.Fatalf("warm plan cache changed the digest: %s vs %s", d3[:12], d1[:12])
	}
}

// TestFIFOQueueing: with more concurrent demand than GPUs, later jobs
// queue, starts stay in arrival order (no backfill), and the report's
// aggregates are consistent.
func TestFIFOQueueing(t *testing.T) {
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, kaggleJob(i, float64(i), 2, 10+i))
	}
	s, err := New(Config{Topo: smallFleet(), Policy: Pack{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Simulate(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 6 || len(rep.Results) != 6 {
		t.Fatalf("expected 6 results, got %d", len(rep.Results))
	}
	queued := 0
	for i, jr := range rep.Results {
		if jr.ID != i {
			t.Fatalf("results not in ID order: %d at %d", jr.ID, i)
		}
		if jr.StartUs < jr.ArrivalUs {
			t.Fatalf("job %d starts before it arrives", jr.ID)
		}
		if !(jr.EndUs > jr.StartUs) {
			t.Fatalf("job %d has no duration", jr.ID)
		}
		if jr.QueueUs > 0 {
			queued++
		}
		if i > 0 && rep.Results[i].StartUs < rep.Results[i-1].StartUs {
			t.Fatalf("FIFO violated: job %d starts before job %d", i, i-1)
		}
		if jr.EndUs > rep.MakespanUs {
			t.Fatalf("job %d ends after the makespan", jr.ID)
		}
	}
	if queued == 0 {
		t.Fatal("6 two-GPU jobs on 4 GPUs and nobody queued")
	}
	if !(rep.GPUUtil > 0 && rep.GPUUtil <= 1) {
		t.Fatalf("GPU utilization %g outside (0,1]", rep.GPUUtil)
	}
	if !(rep.AvgQueueUs > 0) || rep.MaxQueueUs < rep.AvgQueueUs {
		t.Fatalf("queue stats inconsistent: avg %g max %g", rep.AvgQueueUs, rep.MaxQueueUs)
	}
	if !(rep.AvgJCTUs > rep.AvgQueueUs) {
		t.Fatalf("JCT %g must exceed queueing %g", rep.AvgJCTUs, rep.AvgQueueUs)
	}
}

// TestPackBeatsFirstFit: a 2-GPU job occupying the head of node 0
// forces first-fit to split the following 4-GPU job across both nodes;
// packing keeps it on node 1. The split job pays the oversubscribed
// fabric for its all-to-all traffic and finishes later.
func TestPackBeatsFirstFit(t *testing.T) {
	fleet := topo.Uniform(2, 4)
	fleet.FabricGBs = 20
	fleet.Oversub = 4
	jobs := []Job{
		kaggleJob(0, 0, 2, 12),
		kaggleJob(1, 0, 4, 12),
	}
	runWith := func(p Policy) *Report {
		s, err := New(Config{Topo: fleet, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Simulate(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	pack := runWith(Pack{})
	naive := runWith(FirstFit{})
	if pack.Results[1].Nodes != 1 {
		t.Fatalf("pack split the 4-GPU job across %d nodes", pack.Results[1].Nodes)
	}
	if naive.Results[1].Nodes != 2 {
		t.Fatalf("first-fit should split the 4-GPU job, spans %d node(s)", naive.Results[1].Nodes)
	}
	if !(naive.Results[1].JCTUs > pack.Results[1].JCTUs) {
		t.Fatalf("split job should be slower: first-fit JCT %g <= pack %g",
			naive.Results[1].JCTUs, pack.Results[1].JCTUs)
	}
	if !(naive.AvgJCTUs > pack.AvgJCTUs) {
		t.Fatalf("first-fit avg JCT %g <= pack %g", naive.AvgJCTUs, pack.AvgJCTUs)
	}
}

// rejectAll is a policy that never places anything.
type rejectAll struct{}

func (rejectAll) Name() string                { return "reject-all" }
func (rejectAll) Place(*FleetView, int) []int { return nil }

func TestSimulateErrors(t *testing.T) {
	s, err := New(Config{Topo: smallFleet(), Policy: Pack{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate([]Job{kaggleJob(0, 0, 8, 10)}); err == nil {
		t.Fatal("job larger than the fleet accepted")
	}
	if _, err := s.Simulate([]Job{kaggleJob(0, 0, 2, 0)}); err == nil {
		t.Fatal("zero-iteration job accepted")
	}
	if _, err := s.Simulate([]Job{kaggleJob(0, -1, 2, 5)}); err == nil {
		t.Fatal("negative arrival accepted")
	}
	stuck, err := New(Config{Topo: smallFleet(), Policy: rejectAll{}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = stuck.Simulate([]Job{kaggleJob(0, 0, 2, 5)})
	if err == nil || !strings.Contains(err.Error(), "cannot place") {
		t.Fatalf("unplaceable head of queue: got %v", err)
	}
}

// TestTenantContention: a cross-node job sharing its nodes with other
// tenants sees a congested fabric and runs longer than the same job on
// an otherwise idle fleet.
func TestTenantContention(t *testing.T) {
	fleet := topo.Uniform(2, 4)
	fleet.FabricGBs = 20
	fleet.Oversub = 2

	duration := func(jobs []Job, id int) float64 {
		s, err := New(Config{Topo: fleet, Policy: FirstFit{}})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Simulate(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, jr := range rep.Results {
			if jr.ID == id {
				return jr.EndUs - jr.StartUs
			}
		}
		t.Fatalf("job %d missing from report", id)
		return 0
	}
	// A long 2-GPU tenant occupies the head of node 0, so first-fit
	// splits the 4-GPU job as {2,3} on node 0 + {4,5} on node 1, with
	// the tenant congesting node 0's fabric link.
	split := []Job{
		kaggleJob(0, 0, 2, 400), // tenant on node 0
		kaggleJob(1, 0, 4, 12),  // splits across nodes 0 and 1
	}
	shared := duration(split, 1)

	// Control: the identical 2+2 split geometry with no co-tenant — an
	// idle fleet whose node 0 simply has only 2 GPUs, so the subset's
	// node pattern matches the shared run exactly.
	uneven, err := topo.FromNodeOf([]int{0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	uneven.FabricGBs = 20
	uneven.Oversub = 2
	s, err := New(Config{Topo: uneven, Policy: FirstFit{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Simulate([]Job{kaggleJob(1, 0, 4, 12)})
	if err != nil {
		t.Fatal(err)
	}
	alone := rep.Results[0].EndUs - rep.Results[0].StartUs
	if rep.Results[0].Nodes != 2 {
		t.Fatalf("control job spans %d node(s), want 2", rep.Results[0].Nodes)
	}
	if !(shared > alone) {
		t.Fatalf("co-tenant fabric congestion should slow the job: %g <= %g", shared, alone)
	}
}
