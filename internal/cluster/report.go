package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// JobResult is one job's scheduling outcome.
type JobResult struct {
	ID int
	// GPUs and Nodes are the allocation's size and node span.
	GPUs  int
	Nodes int
	// The job's lifecycle instants and the derived scheduling metrics.
	ArrivalUs float64 //rap:unit us
	StartUs   float64 //rap:unit us
	EndUs     float64 //rap:unit us
	QueueUs   float64 //rap:unit us
	JCTUs     float64 //rap:unit us
}

// Report is the fleet simulation's outcome: per-job results in job-ID
// order plus the aggregate scheduling metrics the policy comparison
// reads.
type Report struct {
	Policy string
	// Fleet shape and trace size.
	GPUs, Nodes, Jobs int
	// MakespanUs is the completion time of the last job.
	MakespanUs float64 //rap:unit us
	// AvgQueueUs / MaxQueueUs summarize scheduling delay; AvgJCTUs is
	// the mean job completion time (queueing + running).
	AvgQueueUs float64 //rap:unit us
	MaxQueueUs float64 //rap:unit us
	AvgJCTUs   float64 //rap:unit us
	// GPUUtil is allocated GPU-time over fleet GPU-time: the fraction
	// of the fleet the schedule kept busy until the last completion.
	GPUUtil float64
	Results []JobResult
}

// Digest hashes every field of the report with exact float bit
// patterns, so two reports digest equal iff they are bit-identical —
// the determinism currency of the cluster simulator, mirroring
// gpusim.ResultDigest.
func (r *Report) Digest() string {
	h := sha256.New()
	f := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	str := func(s string) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
		h.Write(b[:])
		h.Write([]byte(s))
	}
	str(r.Policy)
	f(float64(r.GPUs))
	f(float64(r.Nodes))
	f(float64(r.Jobs))
	f(r.MakespanUs)
	f(r.AvgQueueUs)
	f(r.MaxQueueUs)
	f(r.AvgJCTUs)
	f(r.GPUUtil)
	f(float64(len(r.Results)))
	for _, jr := range r.Results {
		f(float64(jr.ID))
		f(float64(jr.GPUs))
		f(float64(jr.Nodes))
		f(jr.ArrivalUs)
		f(jr.StartUs)
		f(jr.EndUs)
		f(jr.QueueUs)
		f(jr.JCTUs)
	}
	return hex.EncodeToString(h.Sum(nil))
}
