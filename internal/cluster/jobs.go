package cluster

import (
	"fmt"
	"math/rand"

	"rap/internal/rap"
)

// JobShape is the workload profile of one training job: which DLRM
// configuration it trains, at what per-GPU batch size, on how many
// GPUs, for how many iterations. Shapes are drawn from a fixed menu of
// paper workloads so identical shapes share one cached RAP plan.
type JobShape struct {
	Dataset     rap.Dataset
	PlanIdx     int
	PerGPUBatch int
	GPUs        int
	Iterations  int
}

// Job is one tenant submission: a shape plus its arrival time.
type Job struct {
	ID        int
	ArrivalUs float64 //rap:unit us
	Shape     JobShape
}

// shapeMenu is the generator's palette: the paper's four DLRM
// configurations at the GPU counts and batch sizes the single-job
// experiments sweep. Iterations here are the base count; the generator
// jitters them per job.
var shapeMenu = []JobShape{
	{Dataset: rap.Kaggle, PlanIdx: 0, PerGPUBatch: 2048, GPUs: 2, Iterations: 40},
	{Dataset: rap.Kaggle, PlanIdx: 0, PerGPUBatch: 4096, GPUs: 4, Iterations: 60},
	{Dataset: rap.Terabyte, PlanIdx: 1, PerGPUBatch: 4096, GPUs: 4, Iterations: 50},
	{Dataset: rap.Terabyte, PlanIdx: 1, PerGPUBatch: 4096, GPUs: 8, Iterations: 80},
	{Dataset: rap.Terabyte, PlanIdx: 2, PerGPUBatch: 2048, GPUs: 8, Iterations: 60},
	{Dataset: rap.Terabyte, PlanIdx: 3, PerGPUBatch: 4096, GPUs: 16, Iterations: 100},
}

// GenConfig parameterizes the deterministic job-arrival generator.
type GenConfig struct {
	// Seed drives every random draw; the same (Seed, NumJobs,
	// MeanGapUs, MaxGPUs) always yields the identical job list.
	Seed    int64
	NumJobs int
	// MeanGapUs is the mean of the exponential inter-arrival gap
	// (default 2000 µs — a busy fleet).
	MeanGapUs float64 //rap:unit us
	// MaxGPUs drops menu shapes larger than this from the draw (0
	// keeps the full menu).
	MaxGPUs int
}

// GenerateJobs builds a seeded deterministic job trace: shapes drawn
// uniformly from the menu, Poisson arrivals (exponential gaps), and a
// per-job jitter on the iteration count. All randomness comes from
// rand.New(rand.NewSource(seed)) — never the global source.
//
//rap:deterministic
func GenerateJobs(cfg GenConfig) ([]Job, error) {
	if cfg.NumJobs < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 job, got %d", cfg.NumJobs)
	}
	if cfg.MeanGapUs < 0 {
		return nil, fmt.Errorf("cluster: mean arrival gap %g must be positive", cfg.MeanGapUs)
	}
	if !(cfg.MeanGapUs > 0) { // zero (incl. -0) takes the default
		cfg.MeanGapUs = 2000
	}
	menu := shapeMenu
	if cfg.MaxGPUs > 0 {
		menu = nil
		for _, s := range shapeMenu {
			if s.GPUs <= cfg.MaxGPUs {
				menu = append(menu, s)
			}
		}
		if len(menu) == 0 {
			return nil, fmt.Errorf("cluster: no menu shape fits MaxGPUs=%d (smallest is %d)",
				cfg.MaxGPUs, shapeMenu[0].GPUs)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]Job, cfg.NumJobs)
	t := 0.0
	for i := range jobs {
		t += rng.ExpFloat64() * cfg.MeanGapUs
		sh := menu[rng.Intn(len(menu))]
		sh.Iterations += rng.Intn(sh.Iterations)
		jobs[i] = Job{ID: i, ArrivalUs: t, Shape: sh}
	}
	return jobs, nil
}
