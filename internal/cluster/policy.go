package cluster

import (
	"rap/internal/topo"
)

// FleetView is the allocation state a placement policy sees: the fleet
// topology and which GPUs are currently free.
type FleetView struct {
	Topo *topo.Topology
	Free []bool // indexed by fleet GPU
}

// freeOnNode returns node n's free GPUs in ascending index order.
func (v *FleetView) freeOnNode(n int) []int {
	var out []int
	for g := range v.Free {
		if v.Free[g] && v.Topo.NodeOf(g) == n {
			out = append(out, g)
		}
	}
	return out
}

// Policy decides which free GPUs a job receives. Place returns exactly
// want GPU indices, or nil when the fleet cannot currently host the
// job. Implementations must be deterministic: the same view and want
// always select the same GPUs.
type Policy interface {
	Name() string
	Place(v *FleetView, want int) []int
}

// Pack is the RAP-aware packing policy: it minimizes the number of
// NVSwitch nodes a job spans, because every node boundary the job
// crosses puts its all-to-all traffic onto the oversubscribed fabric.
// Among nodes that can host the job whole it picks the one with the
// fewest free GPUs (best fit — large holes stay available for large
// jobs); when the job must span nodes it takes the emptiest nodes
// first, so the span — and the cross-node traffic share — stays
// minimal. Ties always break toward the lowest node index.
type Pack struct{}

// Name implements Policy.
func (Pack) Name() string { return "pack" }

// Place implements Policy.
func (Pack) Place(v *FleetView, want int) []int {
	nodes := v.Topo.NumNodes()
	freeBy := make([][]int, nodes)
	totalFree := 0
	for n := 0; n < nodes; n++ {
		freeBy[n] = v.freeOnNode(n)
		totalFree += len(freeBy[n])
	}
	if totalFree < want {
		return nil
	}
	// Best fit within one node.
	best := -1
	for n := 0; n < nodes; n++ {
		if len(freeBy[n]) < want {
			continue
		}
		if best < 0 || len(freeBy[n]) < len(freeBy[best]) {
			best = n
		}
	}
	if best >= 0 {
		return freeBy[best][:want]
	}
	// Span as few nodes as possible: emptiest (most free) nodes first,
	// lowest index on ties. Selection sort keeps the order deterministic
	// without reordering the node slices themselves.
	order := make([]int, 0, nodes)
	used := make([]bool, nodes)
	for len(order) < nodes {
		pick := -1
		for n := 0; n < nodes; n++ {
			if used[n] {
				continue
			}
			if pick < 0 || len(freeBy[n]) > len(freeBy[pick]) {
				pick = n
			}
		}
		used[pick] = true
		order = append(order, pick)
	}
	var alloc []int
	for _, n := range order {
		for _, g := range freeBy[n] {
			alloc = append(alloc, g)
			if len(alloc) == want {
				return alloc
			}
		}
	}
	return nil // unreachable: totalFree >= want
}

// FirstFit is the naive node-blind baseline: the lowest-indexed free
// GPUs, wherever they sit. On a fragmented fleet it happily scatters a
// job across many nodes, paying fabric contention the Pack policy
// avoids — the cluster experiments quantify exactly that gap.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Policy.
func (FirstFit) Place(v *FleetView, want int) []int {
	var alloc []int
	for g := range v.Free {
		if !v.Free[g] {
			continue
		}
		alloc = append(alloc, g)
		if len(alloc) == want {
			return alloc
		}
	}
	return nil
}
