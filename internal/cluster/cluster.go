// Package cluster is the multi-tenant fleet simulator: thousands of
// simulated GPUs grouped into NVSwitch nodes behind an oversubscribed
// inter-node fabric (internal/topo), shared by a trace of DLRM training
// jobs. Each job is planned once by the RAP framework (plans are cached
// per workload shape), placed by a pluggable policy — RAP-aware packing
// versus naive first-fit — and simulated with gpusim on exactly the
// fleet slice it was allocated, including the fabric contention its
// node span and its co-tenants impose. The output is a Report of
// per-job queueing delay and completion time plus fleet utilization,
// hashed by exact float bit patterns: the same topology, policy, and
// job trace always produce the identical digest.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"rap/internal/chaos"
	"rap/internal/gpusim"
	"rap/internal/rap"
	"rap/internal/topo"
)

// tenantHorizonUs bounds the background-tenant fabric windows: long
// past any job's makespan, but finite so window arithmetic stays exact.
const tenantHorizonUs = 1e12 //rap:unit us

// Config parameterizes a fleet simulator.
type Config struct {
	// Topo is the fleet: GPUs grouped into NVSwitch nodes behind the
	// shared fabric. Required.
	Topo *topo.Topology
	// Policy places queued jobs onto free GPUs. Required.
	Policy Policy
	// HostCores is each job's host CPU pool (default 48, the paper's
	// testbed).
	HostCores int
	// SimIterations caps how many pipeline iterations each job is
	// actually simulated for (default 8); longer jobs extrapolate the
	// remainder at the measured steady-state iteration latency.
	SimIterations int
	// Seed feeds per-shape workload synthesis (default 1).
	Seed int64
}

// plannedShape is one workload shape's cached planning artifact: the
// framework (whose own caches answer repeat probes) plus the built
// execution plan. The plan is topology-free — ExecuteTopo binds it to
// each allocation's fleet slice at simulation time.
type plannedShape struct {
	fw   *rap.Framework
	plan *rap.ExecPlan
}

// Simulator runs job traces over one fleet. The per-shape plan cache
// persists across Simulate calls; simulation state does not.
type Simulator struct {
	cfg     Config
	planned map[JobShape]*plannedShape
}

// New validates the configuration and builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("cluster: config needs a topology")
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: config needs a placement policy")
	}
	if cfg.HostCores <= 0 {
		cfg.HostCores = 48
	}
	if cfg.SimIterations <= 0 {
		cfg.SimIterations = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Simulator{cfg: cfg, planned: make(map[JobShape]*plannedShape)}, nil
}

// planFor returns the cached RAP plan for a shape, building it on first
// use. Iterations are zeroed out of the cache key: jobs differing only
// in length share one plan.
func (s *Simulator) planFor(shape JobShape) (*plannedShape, error) {
	key := shape
	key.Iterations = 0
	if ps, ok := s.planned[key]; ok {
		return ps, nil
	}
	w, err := rap.NewWorkload(shape.Dataset, shape.PlanIdx, shape.PerGPUBatch, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	fw := rap.New(w, gpusim.ClusterConfig{NumGPUs: shape.GPUs, HostCores: s.cfg.HostCores})
	plan, err := fw.BuildPlan(rap.BuildOptions{})
	if err != nil {
		return nil, err
	}
	ps := &plannedShape{fw: fw, plan: plan}
	s.planned[key] = ps
	return ps, nil
}

// runningJob is one active allocation in the fleet event loop.
type runningJob struct {
	res   JobResult
	alloc []int
	nodes []int // distinct fleet nodes, first-appearance order
}

// durKey identifies a job simulation up to result equality: the shape's
// plan inputs, the simulated iteration count, the allocation's
// node-assignment pattern (Subset renumbers nodes by first appearance,
// so the pattern fully determines the subset topology), and the
// background-tenant scale per subset node.
type durKey struct {
	shape    JobShape // Iterations zeroed
	simIters int
	pattern  string
	scales   string
}

// durEntry caches what one simulation measured.
type durEntry struct {
	makespanUs float64 //rap:unit us
	steadyUs   float64 //rap:unit us
}

// Simulate runs the job trace over the fleet and reports per-job and
// aggregate scheduling metrics. Scheduling is FIFO without backfill: a
// head-of-queue job that does not fit blocks later arrivals, which is
// what makes the placement policy's fragmentation behavior observable
// as queueing delay. Completions and arrivals at the same instant
// process completions first, so a departing job's GPUs are reusable
// immediately.
//
//rap:deterministic
func (s *Simulator) Simulate(jobs []Job) (*Report, error) {
	fleetGPUs := s.cfg.Topo.NumGPUs()
	for _, j := range jobs {
		if j.Shape.GPUs < 1 || j.Shape.GPUs > fleetGPUs {
			return nil, fmt.Errorf("cluster: job %d wants %d GPUs, fleet has %d", j.ID, j.Shape.GPUs, fleetGPUs)
		}
		if j.Shape.Iterations < 1 {
			return nil, fmt.Errorf("cluster: job %d has %d iterations", j.ID, j.Shape.Iterations)
		}
		if j.ArrivalUs < 0 {
			return nil, fmt.Errorf("cluster: job %d arrives at %g", j.ID, j.ArrivalUs)
		}
	}

	order := append([]Job(nil), jobs...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].ArrivalUs < order[j].ArrivalUs {
			return true
		}
		if order[i].ArrivalUs > order[j].ArrivalUs {
			return false
		}
		return order[i].ID < order[j].ID
	})

	free := make([]bool, fleetGPUs)
	for g := range free {
		free[g] = true
	}
	view := &FleetView{Topo: s.cfg.Topo, Free: free}
	tenants := make([]int, s.cfg.Topo.NumNodes())
	durCache := make(map[durKey]durEntry)

	var (
		run     []runningJob
		queue   []Job
		results []JobResult
		busyUs  float64 // allocated GPU-time, for utilization
	)

	startJob := func(j Job, alloc []int, now float64) error {
		sub, err := s.cfg.Topo.Subset(alloc)
		if err != nil {
			return err
		}
		// Distinct fleet nodes in first-appearance order — index i is
		// subset node i by Subset's renumbering.
		var nodes []int
		for _, g := range alloc {
			fn := s.cfg.Topo.NodeOf(g)
			seen := false
			for _, n := range nodes {
				if n == fn {
					seen = true
					break
				}
			}
			if !seen {
				nodes = append(nodes, fn)
			}
		}
		// Background tenants: each co-resident job on a node congests
		// that node's fabric link for the whole run, modeled as a
		// capacity window at 1/(1+tenants). Only meaningful when the
		// job itself spans nodes — a single-node job never touches the
		// fabric.
		var cp *chaos.Plan
		scaleKey := ""
		if sub.NumNodes() > 1 {
			for i, fn := range nodes {
				k := tenants[fn]
				if k == 0 {
					continue
				}
				if cp == nil {
					cp = &chaos.Plan{}
				}
				scale := 1 / float64(1+k)
				cp.Fabric = append(cp.Fabric, chaos.FabricWindow{
					Node: i, T0: 0, T1: tenantHorizonUs, Scale: scale,
				})
				scaleKey += fmt.Sprintf("%d:%d,", i, k)
			}
		}

		ps, err := s.planFor(j.Shape)
		if err != nil {
			return err
		}
		simIters := s.cfg.SimIterations
		if j.Shape.Iterations < simIters {
			simIters = j.Shape.Iterations
		}
		key := durKey{shape: j.Shape, simIters: simIters, pattern: nodePattern(sub), scales: scaleKey}
		key.shape.Iterations = 0
		ent, ok := durCache[key]
		if !ok {
			stats, err := ps.fw.ExecuteTopo(ps.plan, simIters, sub, cp)
			if err != nil {
				return err
			}
			ent = durEntry{makespanUs: stats.Result.Makespan, steadyUs: stats.SteadyIterLatency}
			durCache[key] = ent
		}
		dur := ent.makespanUs + float64(j.Shape.Iterations-simIters)*ent.steadyUs

		for _, g := range alloc {
			free[g] = false
		}
		for _, fn := range nodes {
			tenants[fn]++
		}
		busyUs += float64(len(alloc)) * dur
		run = append(run, runningJob{
			res: JobResult{
				ID:        j.ID,
				GPUs:      len(alloc),
				Nodes:     sub.NumNodes(),
				ArrivalUs: j.ArrivalUs,
				StartUs:   now,
				EndUs:     now + dur,
				QueueUs:   now - j.ArrivalUs,
				JCTUs:     now + dur - j.ArrivalUs,
			},
			alloc: alloc,
			nodes: nodes,
		})
		return nil
	}

	drain := func(now float64) error {
		for len(queue) > 0 {
			alloc := s.cfg.Policy.Place(view, queue[0].Shape.GPUs)
			if alloc == nil {
				return nil
			}
			if len(alloc) != queue[0].Shape.GPUs {
				return fmt.Errorf("cluster: policy %s returned %d GPUs for a %d-GPU job",
					s.cfg.Policy.Name(), len(alloc), queue[0].Shape.GPUs)
			}
			if err := startJob(queue[0], alloc, now); err != nil {
				return err
			}
			queue = queue[1:]
		}
		return nil
	}

	next := 0
	for next < len(order) || len(queue) > 0 || len(run) > 0 {
		// Earliest completion; ties break toward the lower job ID.
		ci := -1
		for i := range run {
			if ci < 0 || run[i].res.EndUs < run[ci].res.EndUs ||
				(!(run[i].res.EndUs > run[ci].res.EndUs) && run[i].res.ID < run[ci].res.ID) {
				ci = i
			}
		}
		switch {
		case ci >= 0 && (next >= len(order) || run[ci].res.EndUs <= order[next].ArrivalUs):
			done := run[ci]
			run = append(run[:ci], run[ci+1:]...)
			for _, g := range done.alloc {
				free[g] = true
			}
			for _, fn := range done.nodes {
				tenants[fn]--
			}
			results = append(results, done.res)
			if err := drain(done.res.EndUs); err != nil {
				return nil, err
			}
		case next < len(order):
			queue = append(queue, order[next])
			now := order[next].ArrivalUs
			next++
			if err := drain(now); err != nil {
				return nil, err
			}
		default:
			// Nothing running, nothing arriving, queue stuck: the head
			// job is unplaceable even on an idle fleet.
			return nil, fmt.Errorf("cluster: policy %s cannot place job %d (%d GPUs) on an idle %d-GPU fleet",
				s.cfg.Policy.Name(), queue[0].ID, queue[0].Shape.GPUs, fleetGPUs)
		}
	}

	sort.SliceStable(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	rep := &Report{
		Policy:  s.cfg.Policy.Name(),
		GPUs:    fleetGPUs,
		Nodes:   s.cfg.Topo.NumNodes(),
		Jobs:    len(results),
		Results: results,
	}
	for _, jr := range results {
		if jr.EndUs > rep.MakespanUs {
			rep.MakespanUs = jr.EndUs
		}
		if jr.QueueUs > rep.MaxQueueUs {
			rep.MaxQueueUs = jr.QueueUs
		}
		rep.AvgQueueUs += jr.QueueUs
		rep.AvgJCTUs += jr.JCTUs
	}
	if n := float64(len(results)); n > 0 {
		rep.AvgQueueUs /= n
		rep.AvgJCTUs /= n
	}
	if rep.MakespanUs > 0 {
		rep.GPUUtil = busyUs / (float64(fleetGPUs) * rep.MakespanUs)
	}
	return rep, nil
}

// nodePattern renders a subset topology's node assignment as a cache
// key: the node of every GPU in order.
func nodePattern(t *topo.Topology) string {
	var b strings.Builder
	for g := 0; g < t.NumGPUs(); g++ {
		fmt.Fprintf(&b, "%d,", t.NodeOf(g))
	}
	return b.String()
}
