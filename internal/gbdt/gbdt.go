// Package gbdt implements gradient-boosted regression trees with squared
// loss — a from-scratch stand-in for the XGBoost model the paper uses as
// its preprocessing-latency predictor (§5.2).
//
// Training is classic gradient boosting: fit a regression tree to the
// residuals, shrink by the learning rate, repeat. Trees use exact greedy
// variance-reduction splits over sorted feature values.
package gbdt

import (
	"fmt"
	"math"
	"sort"
)

// Config controls training.
type Config struct {
	NumTrees       int     // default 100
	MaxDepth       int     // default 5
	LearningRate   float64 // default 0.1
	MinSamplesLeaf int     // default 3
}

func (c Config) withDefaults() Config {
	if c.NumTrees <= 0 {
		c.NumTrees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 3
	}
	return c
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	value     float64
	leaf      bool
}

func (n *node) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Model is a trained boosted ensemble.
type Model struct {
	base  float64
	lr    float64
	trees []*node
	dims  int
}

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

// Predict returns the model output for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.dims {
		//lint:ignore panicpath checked invariant: feature-count mismatch is a programmer error
		panic(fmt.Sprintf("gbdt: predict with %d features, model trained on %d", len(x), m.dims))
	}
	out := m.base
	for _, t := range m.trees {
		out += m.lr * t.predict(x)
	}
	return out
}

// Train fits a model to (X, y).
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(X) == 0 {
		return nil, fmt.Errorf("gbdt: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("gbdt: %d rows but %d targets", len(X), len(y))
	}
	dims := len(X[0])
	if dims == 0 {
		return nil, fmt.Errorf("gbdt: zero-width features")
	}
	for i, row := range X {
		if len(row) != dims {
			return nil, fmt.Errorf("gbdt: row %d has %d features, want %d", i, len(row), dims)
		}
	}

	base := mean(y)
	m := &Model{base: base, lr: cfg.LearningRate, dims: dims}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = base
	}
	residual := make([]float64, len(y))
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	// Pre-sorted indices per feature, reused by every tree.
	sorted := make([][]int, dims)
	for f := 0; f < dims; f++ {
		s := append([]int(nil), idx...)
		sort.SliceStable(s, func(a, b int) bool { return X[s[a]][f] < X[s[b]][f] })
		sorted[f] = s
	}

	for t := 0; t < cfg.NumTrees; t++ {
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		tree := buildTree(X, residual, idx, cfg.MaxDepth, cfg.MinSamplesLeaf)
		m.trees = append(m.trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.predict(X[i])
		}
	}
	return m, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// buildTree grows one regression tree on the samples in idx.
func buildTree(X [][]float64, target []float64, idx []int, depth, minLeaf int) *node {
	sum, sq := 0.0, 0.0
	for _, i := range idx {
		sum += target[i]
		sq += target[i] * target[i]
	}
	n := float64(len(idx))
	leafValue := sum / n
	if depth == 0 || len(idx) < 2*minLeaf {
		return &node{leaf: true, value: leafValue}
	}
	variance := sq - sum*sum/n
	if variance <= 1e-12 {
		return &node{leaf: true, value: leafValue}
	}

	bestGain := 0.0
	bestFeature, bestPos := -1, -1
	dims := len(X[idx[0]])
	order := make([]int, len(idx))
	bestOrder := make([]int, len(idx))
	for f := 0; f < dims; f++ {
		copy(order, idx)
		sort.SliceStable(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		leftSum := 0.0
		for pos := 0; pos < len(order)-1; pos++ {
			leftSum += target[order[pos]]
			if pos+1 < minLeaf || len(order)-pos-1 < minLeaf {
				continue
			}
			// Cannot split between equal feature values.
			//lint:ignore floateq intentional bit-equality: sorted duplicates cannot host a split point
			if X[order[pos]][f] == X[order[pos+1]][f] {
				continue
			}
			nl := float64(pos + 1)
			nr := n - nl
			rightSum := sum - leftSum
			gain := leftSum*leftSum/nl + rightSum*rightSum/nr - sum*sum/n
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeature = f
				bestPos = pos
				copy(bestOrder, order)
			}
		}
	}
	if bestFeature < 0 {
		return &node{leaf: true, value: leafValue}
	}
	threshold := (X[bestOrder[bestPos]][bestFeature] + X[bestOrder[bestPos+1]][bestFeature]) / 2
	left := append([]int(nil), bestOrder[:bestPos+1]...)
	right := append([]int(nil), bestOrder[bestPos+1:]...)
	return &node{
		feature:   bestFeature,
		threshold: threshold,
		left:      buildTree(X, target, left, depth-1, minLeaf),
		right:     buildTree(X, target, right, depth-1, minLeaf),
	}
}

// RMSE returns the root-mean-squared error of the model on (X, y).
func (m *Model) RMSE(X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	s := 0.0
	for i, row := range X {
		d := m.Predict(row) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(X)))
}

// WithinRelative returns the fraction of samples whose prediction is
// within tol (relative) of the target — the Table 5 accuracy metric
// ("predicted latency deviates by no more than a 10% gap").
func (m *Model) WithinRelative(X [][]float64, y []float64, tol float64) float64 {
	if len(X) == 0 {
		return 0
	}
	hit := 0
	for i, row := range X {
		p := m.Predict(row)
		if math.Abs(p-y[i]) <= tol*math.Max(math.Abs(y[i]), 1e-12) {
			hit++
		}
	}
	return float64(hit) / float64(len(X))
}
