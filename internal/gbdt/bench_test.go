package gbdt

import (
	"math/rand"
	"testing"
)

// BenchmarkTrain measures fitting the Table 5-scale predictor model
// (2000 samples, 7 features, 100 trees).
func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 2000)
	y := make([]float64, len(X))
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64() * 100, rng.Float64(), rng.Float64() * 10, rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 3*X[i][1] + X[i][3]*X[i][0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Config{NumTrees: 100, MaxDepth: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
