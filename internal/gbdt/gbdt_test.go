package gbdt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, Config{}); err == nil {
		t.Fatal("zero-width features accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestFitsConstant(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	m, err := Train(X, y, Config{NumTrees: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{2.5}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant fit = %f", got)
	}
}

func TestFitsStepFunction(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := float64(i)
		X = append(X, []float64{x})
		if x < 50 {
			y = append(y, 10)
		} else {
			y = append(y, 20)
		}
	}
	m, err := Train(X, y, Config{NumTrees: 60, MaxDepth: 2, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{10}); math.Abs(got-10) > 0.5 {
		t.Fatalf("left step = %f", got)
	}
	if got := m.Predict([]float64{90}); math.Abs(got-20) > 0.5 {
		t.Fatalf("right step = %f", got)
	}
}

func TestFitsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []float64
	target := func(a, b float64) float64 { return 3*a + a*b + 2 }
	for i := 0; i < 600; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		X = append(X, []float64{a, b})
		y = append(y, target(a, b))
	}
	m, err := Train(X, y, Config{NumTrees: 150, MaxDepth: 5, LearningRate: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.WithinRelative(X, y, 0.10); acc < 0.9 {
		t.Fatalf("train accuracy@10%% = %f", acc)
	}
	// Held-out points.
	var Xt [][]float64
	var yt []float64
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		Xt = append(Xt, []float64{a, b})
		yt = append(yt, target(a, b))
	}
	if acc := m.WithinRelative(Xt, yt, 0.15); acc < 0.8 {
		t.Fatalf("test accuracy@15%% = %f", acc)
	}
}

func TestMoreTreesHelp(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a := rng.Float64() * 5
		X = append(X, []float64{a})
		y = append(y, math.Sin(a)*10)
	}
	few, err := Train(X, y, Config{NumTrees: 3})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(X, y, Config{NumTrees: 80})
	if err != nil {
		t.Fatal(err)
	}
	if many.RMSE(X, y) >= few.RMSE(X, y) {
		t.Fatalf("boosting did not reduce RMSE: %f vs %f", many.RMSE(X, y), few.RMSE(X, y))
	}
	if many.NumTrees() != 80 {
		t.Fatalf("NumTrees = %d", many.NumTrees())
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		X = append(X, []float64{rng.Float64(), rng.Float64()})
		y = append(y, rng.Float64()*10)
	}
	m1, err := Train(X, y, Config{NumTrees: 20})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, y, Config{NumTrees: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if m1.Predict(x) != m2.Predict(x) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestPredictWrongWidthPanics(t *testing.T) {
	m, err := Train([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}}, []float64{1, 2, 3, 4, 5, 6}, Config{NumTrees: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong width")
		}
	}()
	m.Predict([]float64{1})
}

func TestWithinRelativeAndRMSEEdges(t *testing.T) {
	m, err := Train([][]float64{{1}, {2}, {3}, {4}, {5}, {6}}, []float64{1, 1, 1, 1, 1, 1}, Config{NumTrees: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.WithinRelative(nil, nil, 0.1) != 0 || m.RMSE(nil, nil) != 0 {
		t.Fatal("empty eval should be 0")
	}
	if acc := m.WithinRelative([][]float64{{1}}, []float64{1}, 0.1); acc != 1 {
		t.Fatalf("perfect accuracy = %f", acc)
	}
}

// Property: predictions on training points stay within [min(y), max(y)]
// widened by a small margin (each tree predicts residual means, so the
// ensemble cannot wildly overshoot the target range).
func TestPredictionRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.Float64() * 100, rng.Float64()}
			y[i] = rng.Float64()*50 - 25
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		m, err := Train(X, y, Config{NumTrees: 30, MaxDepth: 3})
		if err != nil {
			return false
		}
		margin := (hi - lo) + 1
		for i := range X {
			p := m.Predict(X[i])
			if p < lo-margin || p > hi+margin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
