package baselines

import (
	"testing"

	"rap/internal/gpusim"
	"rap/internal/rap"
)

func run(t *testing.T, sys System, plan, gpus int) RunResult {
	t.Helper()
	ds := rap.Terabyte
	if plan == 0 {
		ds = rap.Kaggle
	}
	w, err := rap.NewWorkload(ds, plan, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(sys, w, gpusim.ClusterConfig{NumGPUs: gpus, HostCores: 48}, 8)
	if err != nil {
		t.Fatalf("%s: %v", sys, err)
	}
	if r.Throughput <= 0 || r.IterLatency <= 0 {
		t.Fatalf("%s: empty result %+v", sys, r)
	}
	return r
}

func TestAllSystemsRun(t *testing.T) {
	for _, sys := range AllSystems() {
		r := run(t, sys, 1, 2)
		if r.System != sys {
			t.Fatalf("system label mismatch: %s", r.System)
		}
	}
	if len(AllSystems()) != 6 {
		t.Fatalf("systems = %d", len(AllSystems()))
	}
}

func TestUnknownSystemRejected(t *testing.T) {
	w, err := rap.NewWorkload(rap.Kaggle, 0, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run("nope", w, gpusim.ClusterConfig{NumGPUs: 2}, 4); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestPaperOrdering(t *testing.T) {
	// The §8.2 ordering on plan 1, 4 GPUs:
	// TorchArrow < Sequential < Stream < MPS < RAP ≤ Ideal.
	thr := map[System]float64{}
	for _, sys := range AllSystems() {
		thr[sys] = run(t, sys, 1, 4).Throughput
	}
	order := []System{SystemTorchArrow, SystemSequential, SystemStream, SystemMPS, SystemRAP}
	for i := 1; i < len(order); i++ {
		if thr[order[i]] <= thr[order[i-1]] {
			t.Fatalf("%s (%.0f) should beat %s (%.0f)",
				order[i], thr[order[i]], order[i-1], thr[order[i-1]])
		}
	}
	if thr[SystemRAP] > thr[SystemIdeal]*1.001 {
		t.Fatal("RAP exceeded the ideal bound")
	}
	if thr[SystemRAP] < 0.9*thr[SystemIdeal] {
		t.Fatalf("RAP too far from ideal: %.0f vs %.0f", thr[SystemRAP], thr[SystemIdeal])
	}
}

func TestTorchArrowSaturatesWithGPUs(t *testing.T) {
	// The CPU pool bounds TorchArrow: 2→4 GPUs helps, 4→8 helps much
	// less than 2× (the paper's "limited improvement" scaling).
	t2 := run(t, SystemTorchArrow, 1, 2).Throughput
	t4 := run(t, SystemTorchArrow, 1, 4).Throughput
	t8 := run(t, SystemTorchArrow, 1, 8).Throughput
	if t4 <= t2 {
		t.Fatalf("2→4 GPUs should help TorchArrow: %.0f vs %.0f", t4, t2)
	}
	if t8/t4 > 1.6 {
		t.Fatalf("4→8 GPUs scaled %.2fx — CPU pool should saturate", t8/t4)
	}
	// RAP keeps scaling where TorchArrow cannot.
	r4 := run(t, SystemRAP, 1, 4).Throughput
	r8 := run(t, SystemRAP, 1, 8).Throughput
	if r8/r4 < 1.6 {
		t.Fatalf("RAP scaling broke: %.2fx", r8/r4)
	}
}
