// Package baselines implements every comparison system of the paper's
// evaluation (§8.1): the TorchArrow-style CPU preprocessing baseline,
// the handcrafted CUDA-stream and MPS GPU-sharing baselines, the
// fully-sequential GPU baseline, the preprocessing-free Ideal bound and
// RAP itself — all runnable on the same simulated cluster so Figures
// 9-11 compare like with like.
package baselines

import (
	"fmt"

	"rap/internal/chaos"
	"rap/internal/dlrm"
	"rap/internal/gpusim"
	"rap/internal/rap"
	"rap/internal/sched"
)

// System names one evaluated system.
type System string

// The evaluated systems.
const (
	// SystemRAP is the full framework (mapping + fusion + Algorithm 1).
	SystemRAP System = "RAP"
	// SystemSequential runs GPU preprocessing strictly between training
	// iterations (all preprocessing latency exposed).
	SystemSequential System = "Sequential"
	// SystemStream overlaps unfused kernels on a low-priority CUDA
	// stream: training keeps priority, preprocessing starves on busy
	// stages and becomes the bottleneck.
	SystemStream System = "CUDA-Stream"
	// SystemMPS overlaps a separate preprocessing process under MPS
	// fair sharing: preprocessing progresses but contends with and
	// stretches training.
	SystemMPS System = "MPS"
	// SystemTorchArrow preprocesses on host CPUs (8 workers per GPU).
	SystemTorchArrow System = "TorchArrow"
	// SystemIdeal trains with zero preprocessing cost.
	SystemIdeal System = "Ideal"
)

// AllSystems lists the systems in presentation order.
func AllSystems() []System {
	return []System{SystemTorchArrow, SystemSequential, SystemStream, SystemMPS, SystemRAP, SystemIdeal}
}

// CPUSlowdownPerWorker is the cost ratio of one CPU preprocessing
// worker versus the GPU executing the same operator work — the
// calibration constant behind the TorchArrow baseline. (Element-wise
// hashing/normalization throughput of one CPU worker vs. an A100-class
// GPU; the paper measures RAP at ~17.8× TorchArrow end to end.)
const CPUSlowdownPerWorker = 500.0

// TorchArrowWorkers is the paper's per-GPU CPU worker count (§8.1).
const TorchArrowWorkers = 8

// RunResult is one (system, workload, cluster) measurement.
type RunResult struct {
	System      System
	Throughput  float64 // global samples/s
	IterLatency float64 // steady-state per-iteration latency (µs)
	Stats       *sched.PipelineStats
	Plan        *rap.ExecPlan // nil for Ideal/TorchArrow
}

// Run executes one system on a workload.
func Run(sys System, w *rap.Workload, cluster gpusim.ClusterConfig, iterations int) (RunResult, error) {
	return RunChaos(sys, w, cluster, iterations, nil)
}

// RunChaos is Run under a perturbation plan: every system executes with
// cp's capacity windows and straggler inflation injected, so degraded
// conditions hit RAP and the baselines identically. A nil plan makes
// this Run.
func RunChaos(sys System, w *rap.Workload, cluster gpusim.ClusterConfig, iterations int, cp *chaos.Plan) (RunResult, error) {
	return RunEngine(sys, w, cluster, iterations, cp, gpusim.EngineOptions{})
}

// RunEngine is RunChaos with an explicit simulator engine selection:
// engine.Shards > 1 opts the system's pipeline simulation into the
// sharded parallel event engine. Sharded results are bit-identical to
// sequential ones, so every measurement is unchanged — the knob only
// trades wall-clock time on multi-core hosts.
func RunEngine(sys System, w *rap.Workload, cluster gpusim.ClusterConfig, iterations int, cp *chaos.Plan, engine gpusim.EngineOptions) (RunResult, error) {
	cluster = cluster.WithDefaults()
	switch sys {
	case SystemRAP:
		cluster.Policy = gpusim.FairShare
		return runFramework(sys, w, cluster, iterations, rap.BuildOptions{Engine: engine}, cp)
	case SystemSequential:
		cluster.Policy = gpusim.FairShare
		return runFramework(sys, w, cluster, iterations, rap.BuildOptions{
			Strategy:          rap.MapDataParallel,
			NoFusion:          true,
			NoInterleave:      true,
			NaiveSchedule:     true,
			SequentialPreproc: true,
			Engine:            engine,
		}, cp)
	case SystemStream:
		cluster.Policy = gpusim.PrioritySpace
		return runFramework(sys, w, cluster, iterations, rap.BuildOptions{
			Strategy:      rap.MapDataParallel,
			NoFusion:      true,
			NoInterleave:  true,
			NaiveSchedule: true,
			// Low-priority stream: training preempts, preprocessing
			// only gets leftovers.
			PreprocPriority: 0,
			Engine:          engine,
		}, cp)
	case SystemMPS:
		cluster.Policy = gpusim.FairShare
		return runFramework(sys, w, cluster, iterations, rap.BuildOptions{
			Strategy:      rap.MapDataParallel,
			NoFusion:      true,
			NoInterleave:  true,
			NaiveSchedule: true,
			// MPS: both processes share the GPU on equal footing.
			PreprocPriority: 1,
			Engine:          engine,
		}, cp)
	case SystemTorchArrow:
		return runTorchArrow(w, cluster, iterations, cp, engine)
	case SystemIdeal:
		return runIdeal(w, cluster, iterations, cp, engine)
	default:
		return RunResult{}, fmt.Errorf("baselines: unknown system %q", sys)
	}
}

func runFramework(sys System, w *rap.Workload, cluster gpusim.ClusterConfig, iterations int, opts rap.BuildOptions, cp *chaos.Plan) (RunResult, error) {
	f := rap.New(w, cluster)
	p, err := f.BuildPlan(opts)
	if err != nil {
		return RunResult{}, err
	}
	stats, err := f.ExecuteChaos(p, iterations, cp)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{System: sys, Throughput: stats.Throughput, IterLatency: stats.SteadyIterLatency, Stats: stats, Plan: p}, nil
}

// runTorchArrow replaces GPU preprocessing with host-CPU workers: each
// GPU's batch is preprocessed by TorchArrowWorkers CPU workers drawn
// from the shared host pool — the pool, not the GPUs, bounds scaling.
func runTorchArrow(w *rap.Workload, cluster gpusim.ClusterConfig, iterations int, cp *chaos.Plan, engine gpusim.EngineOptions) (RunResult, error) {
	n := cluster.NumGPUs
	pl := placementFor(w, n)
	gpuWorkUs := w.Plan.SaturatedWork(w.Model.BatchSize)
	cpuUs := gpuWorkUs * CPUSlowdownPerWorker / TorchArrowWorkers
	work := make([]sched.GPUWork, n)
	for g := 0; g < n; g++ {
		work[g] = sched.GPUWork{
			CPUPreprocUs: cpuUs,
			CPUWorkers:   TorchArrowWorkers,
			PrepBytes:    float64(w.Model.BatchSize) * 64,
		}
	}
	stats, err := sched.BuildAndRun(cluster, w.Model, pl, work, sched.PipelineOptions{
		Iterations: iterations,
		Chaos:      cp,
		Engine:     engine,
	})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{System: SystemTorchArrow, Throughput: stats.Throughput, IterLatency: stats.SteadyIterLatency, Stats: stats}, nil
}

// runIdeal trains with no preprocessing at all.
func runIdeal(w *rap.Workload, cluster gpusim.ClusterConfig, iterations int, cp *chaos.Plan, engine gpusim.EngineOptions) (RunResult, error) {
	n := cluster.NumGPUs
	pl := placementFor(w, n)
	stats, err := sched.BuildAndRun(cluster, w.Model, pl, make([]sched.GPUWork, n), sched.PipelineOptions{
		Iterations: iterations,
		Chaos:      cp,
		Engine:     engine,
	})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{System: SystemIdeal, Throughput: stats.Throughput, IterLatency: stats.SteadyIterLatency, Stats: stats}, nil
}

func placementFor(w *rap.Workload, numGPUs int) dlrm.Placement {
	return dlrm.PlaceTables(w.Model.TableSizes, numGPUs)
}
