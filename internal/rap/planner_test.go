package rap

import (
	"errors"
	"reflect"
	"testing"

	"rap/internal/costmodel"
	"rap/internal/gpusim"
)

// plansEqual compares the planner outputs of two ExecPlans (the
// workload/cluster/opts headers are inputs, and Framework pointers
// differ between frameworks).
func plansEqual(a, b *ExecPlan) bool {
	return reflect.DeepEqual(a.Placement, b.Placement) &&
		reflect.DeepEqual(a.Mapping, b.Mapping) &&
		reflect.DeepEqual(a.Capacities, b.Capacities) &&
		reflect.DeepEqual(a.Fusions, b.Fusions) &&
		reflect.DeepEqual(a.Schedules, b.Schedules) &&
		reflect.DeepEqual(a.Work, b.Work) &&
		reflect.DeepEqual(a.PredictedExposedUs, b.PredictedExposedUs)
}

// TestBuildPlanDeterministicUnderConcurrency double-runs the fast-path
// BuildPlan (concurrent probes, memoization, parallel solver) with the
// plan cache disabled so the second run genuinely rebuilds: the plans
// must be deeply equal.
func TestBuildPlanDeterministicUnderConcurrency(t *testing.T) {
	w := workload(t, Kaggle, 1, 1024)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	f.Planner.DisablePlanCache = true
	a, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plansEqual(a, b) {
		t.Fatal("double-run BuildPlan produced different plans")
	}
}

// TestBuildPlanFastPathMatchesSequential pins the fast path's whole
// contract: a framework with every fast-path layer enabled must build
// the same plan as one forced fully sequential and cache-free.
func TestBuildPlanFastPathMatchesSequential(t *testing.T) {
	w := workload(t, Kaggle, 1, 1024)
	fast := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	slow := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	slow.Planner = PlannerOptions{
		SequentialProbes:   true,
		DisableProbeMemo:   true,
		SequentialSolve:    true,
		SequentialLowering: true,
		DisableFusionMemo:  true,
		DisablePlanCache:   true,
	}
	a, err := fast.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := slow.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plansEqual(a, b) {
		t.Fatal("fast-path plan differs from sequential plan")
	}
	hits, misses := fast.ProbeCacheStats()
	if hits == 0 {
		t.Fatalf("fast path recorded no probe-cache hits (misses %d)", misses)
	}
}

// TestBuildPlanPlanCache: an identical request returns the cached plan;
// a different request does not.
func TestBuildPlanPlanCache(t *testing.T) {
	w := workload(t, Kaggle, 1, 1024)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 2})
	a, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical BuildPlan request was rebuilt instead of served from cache")
	}
	c, err := f.BuildPlan(BuildOptions{Strategy: MapDataParallel})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different options returned the cached plan")
	}
	f.Planner.DisablePlanCache = true
	d, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("DisablePlanCache still served the cached plan")
	}
	if !plansEqual(a, d) {
		t.Fatal("rebuilt plan differs from cached plan")
	}
	if hits, _ := f.FusionCacheStats(); hits == 0 {
		t.Fatal("warm rebuild re-solved every fusion MILP instead of hitting the solve memo")
	}
}

// TestBuildPlanCostModelErrorPropagates: a cost model that fails during
// mapping-candidate scoring must surface from BuildPlan instead of
// being swallowed into a 1e18 sentinel that silently skews the search.
func TestBuildPlanCostModelErrorPropagates(t *testing.T) {
	w := workload(t, Kaggle, 1, 1024)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	boom := errors.New("synthetic cost-model failure")
	calls := 0
	f.newCostModel = func(caps []costmodel.StageCapacity) (*costmodel.CostModel, error) {
		calls++
		if calls == 3 { // fail one mid-search candidate, not the first
			return nil, boom
		}
		return costmodel.NewCostModel(f.pred, caps)
	}
	_, err := f.BuildPlan(BuildOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("BuildPlan error = %v, want the injected cost-model failure", err)
	}
}
