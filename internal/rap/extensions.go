package rap

import (
	"fmt"

	"rap/internal/preproc"
)

// This file implements the §10 "Discussion" extensions of the paper:
// plan regeneration under input-distribution shift, and the hybrid
// CPU+GPU preprocessing mode for workloads that exceed the GPUs'
// overlapping capacity.

// WithListLen returns a copy of the workload whose expected multi-hot
// list length changed — the input-distribution shift of §10 ("the input
// distribution may shift over time"). The preprocessing graphs are
// shared; only the cost-model shapes and the generator change.
func (w *Workload) WithListLen(avgListLen float64) *Workload {
	if avgListLen <= 0 {
		avgListLen = 1
	}
	out := *w
	plan := *w.Plan
	plan.AvgListLen = avgListLen
	out.Plan = &plan
	out.Gen.AvgListLen = avgListLen
	model := w.Model
	model.AvgPooling = avgListLen
	out.Model = model
	return &out
}

// AdaptToShift implements the §10 regeneration: given the shifted
// distribution's average list length, it re-profiles the embedding
// layers' overlapping capacity (which depends on pooling volume) and
// re-runs the fusion + mapping + scheduling search. The returned plan
// replaces the stale one; the framework's workload is updated in place.
func (f *Framework) AdaptToShift(avgListLen float64, opts BuildOptions) (*ExecPlan, error) {
	f.W = f.W.WithListLen(avgListLen)
	return f.BuildPlan(opts)
}

// HybridCPUSlowdownPerWorker is the per-worker CPU/GPU cost ratio used
// when spilling preprocessing to host CPUs (same calibration as the
// TorchArrow baseline).
const HybridCPUSlowdownPerWorker = 500.0

// MakeHybrid converts a plan to the §10 hybrid CPU+GPU preprocessing
// mode: every GPU's overflow kernels (the work Algorithm 1 could not
// hide inside the training iteration) are segmented off and assigned to
// cpuWorkers host/remote CPU workers per GPU (a GoldMiner-style elastic
// CPU tier — the paper's hybrid "employs both GPUs and CPUs", spilling
// only the part the GPUs cannot absorb). The CPU work runs concurrently
// with training instead of extending the iteration. The plan is
// modified in place and also returned. Returns the number of operators
// spilled.
//
// Note the economics this makes explicit: one CPU worker is
// HybridCPUSlowdownPerWorker× slower than the GPU, so the hybrid mode
// only pays off when the spilled work would otherwise be exposed AND the
// CPU tier is wide enough — exactly the paper's framing that GPU
// leftovers should carry the bulk and CPUs only the residue.
func MakeHybrid(p *ExecPlan, cpuWorkers int) (int, error) {
	if p == nil {
		return 0, fmt.Errorf("rap: nil plan")
	}
	if cpuWorkers <= 0 {
		cpuWorkers = 8
	}
	spilled := 0
	for g := range p.Schedules {
		s := p.Schedules[g]
		if len(s.Overflow) == 0 {
			continue
		}
		satUs := 0.0
		for _, k := range s.Overflow {
			satUs += k.SaturatedWork()
			spilled += kernelOpCount(k)
		}
		p.Work[g].CPUPreprocUs += satUs * HybridCPUSlowdownPerWorker / float64(cpuWorkers)
		if p.Work[g].CPUWorkers < cpuWorkers {
			p.Work[g].CPUWorkers = cpuWorkers
		}
		s.Overflow = nil
		s.PredictedExposed = 0
		p.PredictedExposedUs[g] = 0
	}
	return spilled, nil
}

func kernelOpCount(k preproc.KernelSpec) int {
	if k.FusedCount <= 0 {
		return 1
	}
	return k.FusedCount
}
