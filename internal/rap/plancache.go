package rap

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"rap/internal/gpusim"
	"rap/internal/preproc"
)

// PlannerOptions toggles the planner fast-path machinery. The zero
// value enables everything; each switch falls back to the slow path it
// replaces. None of the switches ever changes plan contents — the fast
// paths are bit-identical to the slow ones — so they exist for
// benchmarking the fast path against its baseline and for bisecting a
// planner problem down to one layer.
type PlannerOptions struct {
	// SequentialProbes runs the per-GPU capacity estimation one GPU at
	// a time instead of concurrently.
	SequentialProbes bool
	// DisableProbeMemo recomputes every capacity probe instead of
	// consulting the framework's probe cache.
	DisableProbeMemo bool
	// SequentialSolve forces the single-threaded MILP branch & bound
	// during fusion.
	SequentialSolve bool
	// SequentialLowering runs the per-GPU fusion + co-run scheduling
	// (step 3b) one GPU at a time instead of concurrently.
	SequentialLowering bool
	// DisableFusionMemo re-solves every fusion MILP instead of
	// consulting the framework's solve cache (which answers repeat
	// instances — the replanning-loop case — without a search).
	DisableFusionMemo bool
	// DisablePlanCache rebuilds the plan even when an identical
	// workload shape was already planned.
	DisablePlanCache bool
}

// planKey is the deep content hash of everything BuildPlan reads: the
// predictor generation, the cluster, the build options, the model
// config, and the preprocessing plan walked graph by graph (ops are
// identified by id/type/wiring plus their cost-spec at the global batch
// shape, which folds in operator parameters). Planner toggles and the
// simulator engine selection are deliberately excluded — they never
// change plan contents, so toggling them must not fragment the cache.
func (f *Framework) planKey(opts BuildOptions) string {
	h := sha256.New()
	ff := func(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }
	keyOpts := opts
	keyOpts.Engine = gpusim.EngineOptions{}
	fmt.Fprintf(h, "predgen %d\n", f.predGen)
	fmt.Fprintf(h, "cluster %+v\n", f.Cluster)
	fmt.Fprintf(h, "opts %+v\n", keyOpts)
	fmt.Fprintf(h, "workload ds=%s planidx=%d\n", f.W.Dataset, f.W.PlanIdx)
	fmt.Fprintf(h, "model %+v\n", f.W.Model)
	pl := f.W.Plan
	fmt.Fprintf(h, "plan %q dense=%d sparse=%d tables=%d avglen=%s\n",
		pl.Name, pl.NumDense, pl.NumSparse, pl.NumTables, ff(pl.AvgListLen))
	refShape := preproc.Shape{
		Samples:    f.W.Model.BatchSize * f.Cluster.NumGPUs,
		AvgListLen: pl.AvgListLen,
	}
	for _, g := range pl.Graphs {
		fmt.Fprintf(h, "graph %d %q dense=%q\n", g.ID, g.Name, g.DenseOutput)
		for _, o := range g.Outputs {
			fmt.Fprintf(h, " out table=%d col=%q\n", o.Table, o.Col)
		}
		for _, op := range g.Ops {
			spec := op.Spec(refShape)
			fmt.Fprintf(h, " op %q type=%v in=%q out=%q elems=%s scale=%s\n",
				op.ID(), op.Type(), op.Inputs(), op.Output(),
				ff(spec.Elements), ff(spec.ParamScale))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
