package rap

import (
	"fmt"

	"rap/internal/data"
	"rap/internal/dlrm"
	"rap/internal/nn"
	"rap/internal/preproc"
	"rap/internal/tensor"
)

// FunctionalResult reports a real (data-level) training run.
type FunctionalResult struct {
	Losses []float32
	// InSync reports the data-parallel replica invariant after training.
	InSync bool
}

// RunFunctional executes real end-to-end online training: generate raw
// batches, run the full preprocessing plan (actual transforms), assemble
// model inputs from the plan's output columns, and step the
// hybrid-parallel trainer. It validates that the searched system is not
// just fast but *correct* — the preprocessing outputs actually feed a
// model whose loss decreases.
//
// globalBatch must be divisible by workers. The embedding tables are
// capped (dlrm.MaxFunctionalRows), so this is a semantics check, not a
// capacity test.
func RunFunctional(w *Workload, workers, globalBatch, iterations int, seed int64) (*FunctionalResult, error) {
	return RunFunctionalLR(w, workers, globalBatch, iterations, seed, 0.05)
}

// RunFunctionalLR is RunFunctional with an explicit learning rate.
func RunFunctionalLR(w *Workload, workers, globalBatch, iterations int, seed int64, lr float32) (*FunctionalResult, error) {
	if globalBatch <= 0 {
		return nil, fmt.Errorf("rap: invalid globalBatch=%d", globalBatch)
	}
	gen := data.NewGenerator(w.Gen)
	src := BatchSourceFunc(func() (*tensor.Batch, error) { return gen.NextBatch(globalBatch), nil })
	return RunFunctionalFrom(w, workers, src, iterations, seed, lr)
}

// BatchSource supplies raw batches to the functional trainer — a
// generator, an on-disk data.Dataset iterator, or anything else
// producing tensor batches with labels.
type BatchSource interface {
	Next() (*tensor.Batch, error)
}

// BatchSourceFunc adapts a function to BatchSource.
type BatchSourceFunc func() (*tensor.Batch, error)

// Next implements BatchSource.
func (f BatchSourceFunc) Next() (*tensor.Batch, error) { return f() }

// RunFunctionalFrom runs real end-to-end online training consuming raw
// batches from src (e.g. a data-storage-node stream, Figure 2): every
// batch is preprocessed by the full plan (using the parallel CPU
// executor) and stepped through the hybrid-parallel trainer.
func RunFunctionalFrom(w *Workload, workers int, src BatchSource, iterations int, seed int64, lr float32) (*FunctionalResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		return nil, fmt.Errorf("rap: invalid workers=%d", workers)
	}
	pl := dlrm.PlaceTables(w.Model.TableSizes, workers)
	trainer, err := dlrm.NewHybridTrainer(w.Model, pl, seed)
	if err != nil {
		return nil, err
	}
	tableCols := w.Plan.TableCols()
	denseCols := w.Plan.DenseCols()

	res := &FunctionalResult{}
	for it := 0; it < iterations; it++ {
		raw, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("rap: fetching batch %d: %w", it, err)
		}
		if raw.Samples%workers != 0 {
			return nil, fmt.Errorf("rap: batch of %d samples not divisible by %d workers", raw.Samples, workers)
		}
		if err := preproc.ParallelApply(w.Plan, raw, 0); err != nil {
			return nil, fmt.Errorf("rap: preprocessing batch %d: %w", it, err)
		}
		dense, sparse, err := AssembleInputs(raw, denseCols, tableCols, w.Model.NumTables())
		if err != nil {
			return nil, err
		}
		loss, err := trainer.Step(dense, sparse, raw.Labels, lr)
		if err != nil {
			return nil, fmt.Errorf("rap: training step %d: %w", it, err)
		}
		res.Losses = append(res.Losses, loss)
	}
	res.InSync = trainer.ReplicasInSync()
	return res, nil
}

// AssembleInputs gathers the preprocessed batch's columns into model
// inputs: a dense matrix (one column per dense output) and one sparse
// column per embedding table.
func AssembleInputs(b *tensor.Batch, denseCols []string, tableCols map[int]string, numTables int) (*nn.Matrix, []*tensor.Sparse, error) {
	dense := nn.NewMatrix(b.Samples, len(denseCols))
	for j, name := range denseCols {
		col := b.DenseByName(name)
		if col == nil {
			return nil, nil, fmt.Errorf("rap: preprocessed batch is missing dense column %q", name)
		}
		for i := 0; i < b.Samples; i++ {
			dense.Set(i, j, col.Values[i])
		}
	}
	sparse := make([]*tensor.Sparse, numTables)
	for t := 0; t < numTables; t++ {
		name, ok := tableCols[t]
		if !ok {
			return nil, nil, fmt.Errorf("rap: no plan output feeds table %d", t)
		}
		col := b.SparseByName(name)
		if col == nil {
			return nil, nil, fmt.Errorf("rap: preprocessed batch is missing sparse column %q", name)
		}
		sparse[t] = col
	}
	return dense, sparse, nil
}

// VerifyPlanSemantics checks, on a small real batch, that a workload's
// preprocessing plan produces exactly the columns the model consumes
// with ids inside each table's hash range.
func VerifyPlanSemantics(w *Workload, samples int, seed int64) error {
	gen := data.NewGenerator(w.Gen)
	b := gen.NextBatch(samples)
	if err := w.Plan.Apply(b); err != nil {
		return err
	}
	if err := b.Validate(); err != nil {
		return err
	}
	_, sparse, err := AssembleInputs(b, w.Plan.DenseCols(), w.Plan.TableCols(), w.Model.NumTables())
	if err != nil {
		return err
	}
	for t, col := range sparse {
		limit := w.Model.TableSizes[t]
		for _, id := range col.Values {
			if id < 0 || id >= limit {
				return fmt.Errorf("rap: table %d receives id %d outside [0,%d)", t, id, limit)
			}
		}
	}
	for _, name := range w.Plan.DenseCols() {
		if b.DenseByName(name).HasNaN() {
			return fmt.Errorf("rap: dense output %q still contains NaN", name)
		}
	}
	return nil
}
