package rap

import (
	"fmt"
	"sync"

	"rap/internal/chaos"
	"rap/internal/costmodel"
	"rap/internal/dlrm"
	"rap/internal/fusion"
	"rap/internal/gbdt"
	"rap/internal/gpusim"
	"rap/internal/mapping"
	"rap/internal/sched"
	"rap/internal/topo"
)

// MappingStrategy selects the inter-GPU graph mapping.
type MappingStrategy string

// The three strategies compared in §8.4 / Figure 12.
const (
	MapRAP          MappingStrategy = "rap"
	MapDataParallel MappingStrategy = "dp"
	MapDataLocality MappingStrategy = "dl"
)

// BuildOptions configures the online optimization pass, including the
// Figure 10 ablation switches.
type BuildOptions struct {
	Strategy MappingStrategy // default MapRAP
	// NoFusion disables horizontal fusion ("RAP w/o fusion").
	NoFusion bool
	// NoSharding disables resource-aware kernel sharding.
	NoSharding bool
	// NoInterleave disables §6.3 inter-batch workload interleaving.
	NoInterleave bool
	// SequentialPreproc fully exposes preprocessing (Sequential
	// baseline semantics); plans are still built.
	SequentialPreproc bool
	// NaiveSchedule skips Algorithm 1: kernels launch back-to-back from
	// the iteration start without capacity awareness (the handcrafted
	// stream/MPS baselines of §8.1).
	NaiveSchedule bool
	// PreprocPriority is the simulator priority of preprocessing
	// kernels (training runs at 1). RAP and MPS co-run at equal footing
	// under fair sharing; the stream baseline uses a low-priority
	// stream (0) under PrioritySpace.
	PreprocPriority int
	// FusionMaxNodes caps the MILP search (0 = auto).
	FusionMaxNodes int
	// Engine selects the simulator event engine for Execute (sharded
	// parallel when Engine.Shards > 1; sequential otherwise). Purely a
	// performance knob: the sharded engine is bit-identical to the
	// sequential one, so no measurement changes with it.
	Engine gpusim.EngineOptions
}

// Framework orchestrates the offline and online passes of Figure 4.
type Framework struct {
	W       *Workload
	Cluster gpusim.ClusterConfig
	// Planner toggles the planner fast path (probe memoization,
	// concurrent probing, parallel MILP, plan caching). The zero value
	// enables everything; no toggle changes plan contents.
	Planner PlannerOptions

	pred *costmodel.Predictor
	// predGen counts predictor replacements; it is part of every
	// plan-cache key, so retraining invalidates cached plans without
	// flushing anything.
	predGen int

	// newCostModel builds the per-GPU cost model; a seam for tests that
	// need a cost model failing on specific candidates.
	newCostModel func(caps []costmodel.StageCapacity) (*costmodel.CostModel, error)

	probeCache  *costmodel.ProbeCache
	fusionCache *fusion.SolveCache

	mu        sync.Mutex
	planCache map[string]*ExecPlan // guarded by mu
}

// New creates a framework for a workload on a cluster.
func New(w *Workload, cluster gpusim.ClusterConfig) *Framework {
	f := &Framework{
		W:           w,
		Cluster:     cluster.WithDefaults(),
		pred:        costmodel.AnalyticPredictor(),
		probeCache:  costmodel.NewProbeCache(),
		fusionCache: fusion.NewSolveCache(),
		planCache:   map[string]*ExecPlan{},
	}
	f.newCostModel = func(caps []costmodel.StageCapacity) (*costmodel.CostModel, error) {
		return costmodel.NewCostModel(f.pred, caps)
	}
	return f
}

// ProbeCacheStats reports the capacity-probe cache's hit/miss counts.
func (f *Framework) ProbeCacheStats() (hits, misses int) {
	return f.probeCache.Stats()
}

// FusionCacheStats reports the fusion solve cache's hit/miss counts.
func (f *Framework) FusionCacheStats() (hits, misses int) {
	return f.fusionCache.Stats()
}

// OfflineTrainPredictor runs the offline pass (Figure 4 step 1):
// collect kernel latencies and train the per-category GBDT predictor.
// Without this call the framework falls back to the analytic model.
func (f *Framework) OfflineTrainPredictor(samples int, seed int64) (map[string]float64, error) {
	if samples <= 0 {
		samples = 4000
	}
	ds := costmodel.CollectTrainingData(samples, seed)
	train, eval := ds.Split(0.9, seed)
	pred, err := costmodel.TrainPredictor(train, gbdt.Config{NumTrees: 120, MaxDepth: 6, LearningRate: 0.12})
	if err != nil {
		return nil, err
	}
	f.pred = pred
	f.predGen++
	return pred.Accuracy(eval, 0.10), nil
}

// Predictor exposes the active latency predictor.
func (f *Framework) Predictor() *costmodel.Predictor { return f.pred }

// ExecPlan is the searched co-running plan: everything needed to run
// (or code-generate) the pipelined execution.
type ExecPlan struct {
	Workload *Workload
	Cluster  gpusim.ClusterConfig
	Opts     BuildOptions

	Placement  dlrm.Placement
	Mapping    *mapping.Result
	Capacities [][]costmodel.StageCapacity
	Fusions    []*fusion.Plan
	Schedules  []*sched.Schedule
	Work       []sched.GPUWork

	// PredictedExposedUs is the cost model's per-GPU LΔ estimate.
	PredictedExposedUs []float64
}

// TotalPredictedExposed returns the worst per-GPU predicted exposure.
func (p *ExecPlan) TotalPredictedExposed() float64 {
	worst := 0.0
	for _, v := range p.PredictedExposedUs {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// BuildPlan runs the online pass (Figure 4 steps 2-3): estimate
// overlapping capacity, map the preprocessing graphs, fuse, and search
// the co-running schedule. Identical requests — same workload shape,
// cluster, options and predictor generation, by deep content hash —
// return the already-built plan unless Planner.DisablePlanCache is
// set.
func (f *Framework) BuildPlan(opts BuildOptions) (*ExecPlan, error) {
	if opts.Strategy == "" {
		opts.Strategy = MapRAP
	}
	var key string
	if !f.Planner.DisablePlanCache {
		key = f.planKey(opts)
		f.mu.Lock()
		cached := f.planCache[key]
		f.mu.Unlock()
		if cached != nil {
			return cached, nil
		}
	}
	plan, err := f.buildPlan(opts)
	if err != nil {
		return nil, err
	}
	if key != "" {
		f.mu.Lock()
		f.planCache[key] = plan
		f.mu.Unlock()
	}
	return plan, nil
}

// estimateCapacities runs the step-2 per-GPU capacity profiling,
// concurrently unless Planner.SequentialProbes is set. GPU 0 always
// probes first to warm the probe cache — homogeneous GPUs share most
// stage profiles, so the remaining GPUs then answer mostly from memo —
// and results are collected by GPU index, so the output is identical
// either way.
func (f *Framework) estimateCapacities(pl dlrm.Placement) ([][]costmodel.StageCapacity, []float64, error) {
	n := f.Cluster.NumGPUs
	cache := f.probeCache
	if f.Planner.DisableProbeMemo {
		cache = nil
	}
	caps := make([][]costmodel.StageCapacity, n)
	errs := make([]error, n)
	estimate := func(g int) {
		caps[g], errs[g] = costmodel.EstimateCapacitiesCached(f.W.Model, pl, g, f.Cluster, cache)
	}
	estimate(0)
	if f.Planner.SequentialProbes || errs[0] != nil {
		for g := 1; g < n; g++ {
			estimate(g)
		}
	} else {
		var wg sync.WaitGroup
		for g := 1; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				estimate(g)
			}(g)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	capTotals := make([]float64, n)
	for g := 0; g < n; g++ {
		capTotals[g] = costmodel.TotalCapacity(caps[g])
	}
	return caps, capTotals, nil
}

func (f *Framework) buildPlan(opts BuildOptions) (*ExecPlan, error) {
	n := f.Cluster.NumGPUs
	pl := dlrm.PlaceTables(f.W.Model.TableSizes, n)

	// Step 2: per-GPU overlapping-capacity profiles.
	caps, capTotals, err := f.estimateCapacities(pl)
	if err != nil {
		return nil, err
	}

	// Step 3a: inter-GPU graph mapping. Candidate mappings are scored
	// the way §7.2 prescribes: run the intra-GPU co-running schedule
	// (Algorithm 1, with a fast greedy fusion) for the candidate
	// assignment and take the cost model's exposed latency plus the
	// communication cost of the move. A candidate that fails to score
	// records the first error for BuildPlan to return — an unscorable
	// candidate means the search itself is compromised, not just that
	// one move is unattractive.
	var costErr error
	fail := func(stage string, gpu int, err error) float64 {
		if costErr == nil {
			costErr = fmt.Errorf("rap: scoring mapping candidate on gpu %d: %s: %w", gpu, stage, err)
		}
		return 1e18
	}
	cost := func(gpu int, items []mapping.Assign, commBytes float64) float64 {
		sg := make([]fusion.ScaledGraph, len(items))
		for i, a := range items {
			sg[i] = fusion.ScaledGraph{Graph: a.Graph, Shape: a.Shape}
		}
		fp, err := fusion.PlanFusionScaled(sg, fusion.Options{GreedyOnly: true, Disable: opts.NoFusion})
		if err != nil {
			return fail("greedy fusion", gpu, err)
		}
		cm, err := f.newCostModel(caps[gpu])
		if err != nil {
			return fail("cost model", gpu, err)
		}
		s, err := sched.CoRunSchedule(fp, cm, sched.Options{DisableSharding: opts.NoSharding})
		if err != nil {
			return fail("co-run schedule", gpu, err)
		}
		return s.PredictedExposed + commBytes*ScatterInefficiency/(f.Cluster.LinkGBs*1e3)
	}
	mcfg := mapping.Config{
		Plan:           f.W.Plan,
		Placement:      pl,
		PerGPUBatch:    f.W.Model.BatchSize,
		LinkGBs:        f.Cluster.LinkGBs,
		CapacityPerGPU: capTotals,
		Cost:           cost,
	}
	var mapped *mapping.Result
	switch opts.Strategy {
	case MapRAP:
		mapped, err = mapping.RAPSearch(mcfg)
	case MapDataParallel:
		mapped, err = mapping.DataParallel(mcfg)
	case MapDataLocality:
		mapped, err = mapping.DataLocality(mcfg)
	default:
		return nil, fmt.Errorf("rap: unknown mapping strategy %q", opts.Strategy)
	}
	if costErr != nil {
		return nil, costErr
	}
	if err != nil {
		return nil, err
	}

	// Step 3b: per-GPU fusion + co-run schedule.
	plan := &ExecPlan{
		Workload:   f.W,
		Cluster:    f.Cluster,
		Opts:       opts,
		Placement:  pl,
		Mapping:    mapped,
		Capacities: caps,
		Fusions:    make([]*fusion.Plan, n),
		Schedules:  make([]*sched.Schedule, n),
		Work:       make([]sched.GPUWork, n),
	}
	plan.PredictedExposedUs = make([]float64, n)

	// The per-GPU problems are independent, so the lowering runs one
	// goroutine per GPU unless Planner.SequentialLowering is set. The
	// MILP worker policy follows from which level owns the cores: with
	// cross-GPU concurrency each solve runs single-threaded (n solves
	// already saturate the machine, and fanning out inside each would
	// only oversubscribe); with sequential lowering the lone solve gets
	// the parallel solver. Either way milp.Solve is bit-identical to the
	// sequential search, so the policy never changes plan contents.
	solveWorkers := 0
	if f.Planner.SequentialSolve || !f.Planner.SequentialLowering {
		solveWorkers = 1
	}
	solveCache := f.fusionCache
	if f.Planner.DisableFusionMemo {
		solveCache = nil
	}
	lower := func(g int) error {
		items := make([]fusion.ScaledGraph, len(mapped.PerGPU[g]))
		for i, a := range mapped.PerGPU[g] {
			items[i] = fusion.ScaledGraph{Graph: a.Graph, Shape: a.Shape}
		}
		fp, err := fusion.PlanFusionScaled(items, fusion.Options{
			Disable:    opts.NoFusion,
			MaxNodes:   opts.FusionMaxNodes,
			Workers:    solveWorkers,
			SolveCache: solveCache,
		})
		if err != nil {
			return err
		}
		plan.Fusions[g] = fp
		cm, err := f.newCostModel(caps[g])
		if err != nil {
			return err
		}
		var s *sched.Schedule
		if opts.NaiveSchedule {
			s = sched.SequentialSchedule(fp.Kernels(), len(caps[g]))
			s.PredictedExposed = cm.ExposedLatencyClamped(fp.Kernels())
		} else {
			s, err = sched.CoRunSchedule(fp, cm, sched.Options{DisableSharding: opts.NoSharding})
			if err != nil {
				return err
			}
		}
		plan.Schedules[g] = s
		plan.PredictedExposedUs[g] = s.PredictedExposed
		plan.Work[g] = sched.GPUWork{
			Schedule:       s,
			InputCommBytes: mapped.CommBytes[g] * ScatterInefficiency,
			PrepBytes:      rawInputBytes(mapped.PerGPU[g]),
			CPUPrepUs:      hostPrepUs(s),
		}
		return nil
	}
	if f.Planner.SequentialLowering {
		for g := 0; g < n; g++ {
			if err := lower(g); err != nil {
				return nil, err
			}
		}
	} else {
		// Graphs are shared across GPUs and Graph.Deps is built lazily;
		// warm it up front so the concurrent lowerings only read.
		for _, gr := range f.W.Plan.Graphs {
			gr.Deps()
		}
		lowerErrs := make([]error, n)
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				lowerErrs[g] = lower(g)
			}(g)
		}
		wg.Wait()
		for _, err := range lowerErrs {
			if err != nil {
				return nil, err
			}
		}
	}
	return plan, nil
}

// ScatterInefficiency converts mapping-induced input-communication
// volume into effective wire time: preprocessed ids move as many small
// per-feature messages interleaved with training collectives, achieving
// a fraction of NVLink peak (the reason batch-parallel mapping's input
// communication sits so visibly on the critical path in Figure 12).
const ScatterInefficiency = 8.0

// rawInputBytes estimates the host-to-device volume of one batch's raw
// inputs for a GPU's assignment.
func rawInputBytes(items []mapping.Assign) float64 {
	total := 0.0
	for _, a := range items {
		if len(a.Graph.Outputs) > 0 {
			total += float64(a.Shape.Samples) * a.Shape.AvgListLen * 8
		} else {
			total += float64(a.Shape.Samples) * 4
		}
	}
	return total
}

// hostPrepUs models host-side data preparation (allocation, batching):
// a base cost plus a per-kernel share.
func hostPrepUs(s *sched.Schedule) float64 {
	return 20 + 0.5*float64(s.TotalKernels())
}

// Execute simulates the pipelined plan for the given iteration count.
func (f *Framework) Execute(p *ExecPlan, iterations int) (*sched.PipelineStats, error) {
	return f.ExecuteChaos(p, iterations, nil)
}

// ExecuteChaos is Execute under a perturbation plan: cp's capacity
// windows and straggler inflation are injected into the built pipeline
// before simulation. A nil (or empty) plan makes this identical to
// Execute.
func (f *Framework) ExecuteChaos(p *ExecPlan, iterations int, cp *chaos.Plan) (*sched.PipelineStats, error) {
	return f.ExecuteTopo(p, iterations, nil, cp)
}

// ExecuteTopo is the most general execution entry point: the plan runs
// on a cluster whose GPUs are grouped by the given hierarchical
// topology (nil for flat), under an optional perturbation plan. The
// topology is an execution-time argument rather than a BuildOptions
// field on purpose: plans are cached by their build inputs, and a plan
// built once can be simulated on any fleet slice (the cluster simulator
// runs one cached plan across many node-spanning allocations).
func (f *Framework) ExecuteTopo(p *ExecPlan, iterations int, tp *topo.Topology, cp *chaos.Plan) (*sched.PipelineStats, error) {
	streams := 1
	if p.Opts.NaiveSchedule && !p.Opts.SequentialPreproc && p.Opts.PreprocPriority >= 1 {
		// The MPS baseline's preprocessing process runs 8 workers, all
		// issuing kernels concurrently with no resource awareness
		// (§8.1); the CUDA-stream baseline uses a single extra stream.
		streams = 8
	}
	return sched.BuildAndRun(p.Cluster, f.W.Model, p.Placement, p.Work, sched.PipelineOptions{
		Iterations:        iterations,
		Interleave:        !p.Opts.NoInterleave && !p.Opts.SequentialPreproc,
		SequentialPreproc: p.Opts.SequentialPreproc,
		PreprocPriority:   p.Opts.PreprocPriority,
		PreprocStreams:    streams,
		Chaos:             cp,
		Topology:          tp,
		Engine:            p.Opts.Engine,
	})
}

// IdealThroughput returns the no-preprocessing upper bound (samples/s):
// training iterations back to back.
func (f *Framework) IdealThroughput() float64 {
	pl := dlrm.PlaceTables(f.W.Model.TableSizes, f.Cluster.NumGPUs)
	iter := f.W.Model.IterationSoloLatency(pl, f.Cluster.LinkGBs)
	if iter <= 0 {
		return 0
	}
	globalBatch := float64(f.W.Model.BatchSize) * float64(f.Cluster.NumGPUs)
	return globalBatch / (iter * 1e-6)
}

// PreprocessOnly measures the standalone preprocessing latency of one
// global batch under the plan's mapping and fusion (no training
// co-running) — the denominator of the paper's "sequential GPU-based
// preprocessing" comparisons.
func (f *Framework) PreprocessOnly(p *ExecPlan) (float64, error) {
	sim := gpusim.NewSim(p.Cluster)
	for g := 0; g < p.Cluster.NumGPUs; g++ {
		stream := fmt.Sprintf("pre/g%d", g)
		for _, spec := range p.Schedules[g].AllKernels() {
			k := spec.Kernel()
			sim.AddKernel(g, k, gpusim.WithStream(stream))
		}
	}
	res, err := sim.Run()
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
