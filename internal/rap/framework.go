package rap

import (
	"fmt"

	"rap/internal/chaos"
	"rap/internal/costmodel"
	"rap/internal/dlrm"
	"rap/internal/fusion"
	"rap/internal/gbdt"
	"rap/internal/gpusim"
	"rap/internal/mapping"
	"rap/internal/sched"
)

// MappingStrategy selects the inter-GPU graph mapping.
type MappingStrategy string

// The three strategies compared in §8.4 / Figure 12.
const (
	MapRAP          MappingStrategy = "rap"
	MapDataParallel MappingStrategy = "dp"
	MapDataLocality MappingStrategy = "dl"
)

// BuildOptions configures the online optimization pass, including the
// Figure 10 ablation switches.
type BuildOptions struct {
	Strategy MappingStrategy // default MapRAP
	// NoFusion disables horizontal fusion ("RAP w/o fusion").
	NoFusion bool
	// NoSharding disables resource-aware kernel sharding.
	NoSharding bool
	// NoInterleave disables §6.3 inter-batch workload interleaving.
	NoInterleave bool
	// SequentialPreproc fully exposes preprocessing (Sequential
	// baseline semantics); plans are still built.
	SequentialPreproc bool
	// NaiveSchedule skips Algorithm 1: kernels launch back-to-back from
	// the iteration start without capacity awareness (the handcrafted
	// stream/MPS baselines of §8.1).
	NaiveSchedule bool
	// PreprocPriority is the simulator priority of preprocessing
	// kernels (training runs at 1). RAP and MPS co-run at equal footing
	// under fair sharing; the stream baseline uses a low-priority
	// stream (0) under PrioritySpace.
	PreprocPriority int
	// FusionMaxNodes caps the MILP search (0 = auto).
	FusionMaxNodes int
}

// Framework orchestrates the offline and online passes of Figure 4.
type Framework struct {
	W       *Workload
	Cluster gpusim.ClusterConfig

	pred *costmodel.Predictor
}

// New creates a framework for a workload on a cluster.
func New(w *Workload, cluster gpusim.ClusterConfig) *Framework {
	return &Framework{W: w, Cluster: cluster.WithDefaults(), pred: costmodel.AnalyticPredictor()}
}

// OfflineTrainPredictor runs the offline pass (Figure 4 step 1):
// collect kernel latencies and train the per-category GBDT predictor.
// Without this call the framework falls back to the analytic model.
func (f *Framework) OfflineTrainPredictor(samples int, seed int64) (map[string]float64, error) {
	if samples <= 0 {
		samples = 4000
	}
	ds := costmodel.CollectTrainingData(samples, seed)
	train, eval := ds.Split(0.9, seed)
	pred, err := costmodel.TrainPredictor(train, gbdt.Config{NumTrees: 120, MaxDepth: 6, LearningRate: 0.12})
	if err != nil {
		return nil, err
	}
	f.pred = pred
	return pred.Accuracy(eval, 0.10), nil
}

// Predictor exposes the active latency predictor.
func (f *Framework) Predictor() *costmodel.Predictor { return f.pred }

// ExecPlan is the searched co-running plan: everything needed to run
// (or code-generate) the pipelined execution.
type ExecPlan struct {
	Workload *Workload
	Cluster  gpusim.ClusterConfig
	Opts     BuildOptions

	Placement  dlrm.Placement
	Mapping    *mapping.Result
	Capacities [][]costmodel.StageCapacity
	Fusions    []*fusion.Plan
	Schedules  []*sched.Schedule
	Work       []sched.GPUWork

	// PredictedExposedUs is the cost model's per-GPU LΔ estimate.
	PredictedExposedUs []float64
}

// TotalPredictedExposed returns the worst per-GPU predicted exposure.
func (p *ExecPlan) TotalPredictedExposed() float64 {
	worst := 0.0
	for _, v := range p.PredictedExposedUs {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// BuildPlan runs the online pass (Figure 4 steps 2-3): estimate
// overlapping capacity, map the preprocessing graphs, fuse, and search
// the co-running schedule.
func (f *Framework) BuildPlan(opts BuildOptions) (*ExecPlan, error) {
	if opts.Strategy == "" {
		opts.Strategy = MapRAP
	}
	n := f.Cluster.NumGPUs
	pl := dlrm.PlaceTables(f.W.Model.TableSizes, n)

	// Step 2: per-GPU overlapping-capacity profiles.
	caps := make([][]costmodel.StageCapacity, n)
	capTotals := make([]float64, n)
	for g := 0; g < n; g++ {
		c, err := costmodel.EstimateCapacities(f.W.Model, pl, g, f.Cluster)
		if err != nil {
			return nil, err
		}
		caps[g] = c
		capTotals[g] = costmodel.TotalCapacity(c)
	}

	// Step 3a: inter-GPU graph mapping. Candidate mappings are scored
	// the way §7.2 prescribes: run the intra-GPU co-running schedule
	// (Algorithm 1, with a fast greedy fusion) for the candidate
	// assignment and take the cost model's exposed latency plus the
	// communication cost of the move.
	cost := func(gpu int, items []mapping.Assign, commBytes float64) float64 {
		sg := make([]fusion.ScaledGraph, len(items))
		for i, a := range items {
			sg[i] = fusion.ScaledGraph{Graph: a.Graph, Shape: a.Shape}
		}
		fp, err := fusion.PlanFusionScaled(sg, fusion.Options{GreedyOnly: true, Disable: opts.NoFusion})
		if err != nil {
			return 1e18
		}
		cm, err := costmodel.NewCostModel(f.pred, caps[gpu])
		if err != nil {
			return 1e18
		}
		s, err := sched.CoRunSchedule(fp, cm, sched.Options{DisableSharding: opts.NoSharding})
		if err != nil {
			return 1e18
		}
		return s.PredictedExposed + commBytes*ScatterInefficiency/(f.Cluster.LinkGBs*1e3)
	}
	mcfg := mapping.Config{
		Plan:           f.W.Plan,
		Placement:      pl,
		PerGPUBatch:    f.W.Model.BatchSize,
		LinkGBs:        f.Cluster.LinkGBs,
		CapacityPerGPU: capTotals,
		Cost:           cost,
	}
	var mapped *mapping.Result
	var err error
	switch opts.Strategy {
	case MapRAP:
		mapped, err = mapping.RAPSearch(mcfg)
	case MapDataParallel:
		mapped, err = mapping.DataParallel(mcfg)
	case MapDataLocality:
		mapped, err = mapping.DataLocality(mcfg)
	default:
		return nil, fmt.Errorf("rap: unknown mapping strategy %q", opts.Strategy)
	}
	if err != nil {
		return nil, err
	}

	// Step 3b: per-GPU fusion + co-run schedule.
	plan := &ExecPlan{
		Workload:   f.W,
		Cluster:    f.Cluster,
		Opts:       opts,
		Placement:  pl,
		Mapping:    mapped,
		Capacities: caps,
		Fusions:    make([]*fusion.Plan, n),
		Schedules:  make([]*sched.Schedule, n),
		Work:       make([]sched.GPUWork, n),
	}
	plan.PredictedExposedUs = make([]float64, n)
	for g := 0; g < n; g++ {
		items := make([]fusion.ScaledGraph, len(mapped.PerGPU[g]))
		for i, a := range mapped.PerGPU[g] {
			items[i] = fusion.ScaledGraph{Graph: a.Graph, Shape: a.Shape}
		}
		fp, err := fusion.PlanFusionScaled(items, fusion.Options{
			Disable:  opts.NoFusion,
			MaxNodes: opts.FusionMaxNodes,
		})
		if err != nil {
			return nil, err
		}
		plan.Fusions[g] = fp
		cm, err := costmodel.NewCostModel(f.pred, caps[g])
		if err != nil {
			return nil, err
		}
		var s *sched.Schedule
		if opts.NaiveSchedule {
			s = sched.SequentialSchedule(fp.Kernels(), len(caps[g]))
			s.PredictedExposed = cm.ExposedLatencyClamped(fp.Kernels())
		} else {
			s, err = sched.CoRunSchedule(fp, cm, sched.Options{DisableSharding: opts.NoSharding})
			if err != nil {
				return nil, err
			}
		}
		plan.Schedules[g] = s
		plan.PredictedExposedUs[g] = s.PredictedExposed
		plan.Work[g] = sched.GPUWork{
			Schedule:       s,
			InputCommBytes: mapped.CommBytes[g] * ScatterInefficiency,
			PrepBytes:      rawInputBytes(mapped.PerGPU[g]),
			CPUPrepUs:      hostPrepUs(s),
		}
	}
	return plan, nil
}

// ScatterInefficiency converts mapping-induced input-communication
// volume into effective wire time: preprocessed ids move as many small
// per-feature messages interleaved with training collectives, achieving
// a fraction of NVLink peak (the reason batch-parallel mapping's input
// communication sits so visibly on the critical path in Figure 12).
const ScatterInefficiency = 8.0

// rawInputBytes estimates the host-to-device volume of one batch's raw
// inputs for a GPU's assignment.
func rawInputBytes(items []mapping.Assign) float64 {
	total := 0.0
	for _, a := range items {
		if len(a.Graph.Outputs) > 0 {
			total += float64(a.Shape.Samples) * a.Shape.AvgListLen * 8
		} else {
			total += float64(a.Shape.Samples) * 4
		}
	}
	return total
}

// hostPrepUs models host-side data preparation (allocation, batching):
// a base cost plus a per-kernel share.
func hostPrepUs(s *sched.Schedule) float64 {
	return 20 + 0.5*float64(s.TotalKernels())
}

// Execute simulates the pipelined plan for the given iteration count.
func (f *Framework) Execute(p *ExecPlan, iterations int) (*sched.PipelineStats, error) {
	return f.ExecuteChaos(p, iterations, nil)
}

// ExecuteChaos is Execute under a perturbation plan: cp's capacity
// windows and straggler inflation are injected into the built pipeline
// before simulation. A nil (or empty) plan makes this identical to
// Execute.
func (f *Framework) ExecuteChaos(p *ExecPlan, iterations int, cp *chaos.Plan) (*sched.PipelineStats, error) {
	streams := 1
	if p.Opts.NaiveSchedule && !p.Opts.SequentialPreproc && p.Opts.PreprocPriority >= 1 {
		// The MPS baseline's preprocessing process runs 8 workers, all
		// issuing kernels concurrently with no resource awareness
		// (§8.1); the CUDA-stream baseline uses a single extra stream.
		streams = 8
	}
	return sched.BuildAndRun(p.Cluster, f.W.Model, p.Placement, p.Work, sched.PipelineOptions{
		Iterations:        iterations,
		Interleave:        !p.Opts.NoInterleave && !p.Opts.SequentialPreproc,
		SequentialPreproc: p.Opts.SequentialPreproc,
		PreprocPriority:   p.Opts.PreprocPriority,
		PreprocStreams:    streams,
		Chaos:             cp,
	})
}

// IdealThroughput returns the no-preprocessing upper bound (samples/s):
// training iterations back to back.
func (f *Framework) IdealThroughput() float64 {
	pl := dlrm.PlaceTables(f.W.Model.TableSizes, f.Cluster.NumGPUs)
	iter := f.W.Model.IterationSoloLatency(pl, f.Cluster.LinkGBs)
	if iter <= 0 {
		return 0
	}
	globalBatch := float64(f.W.Model.BatchSize) * float64(f.Cluster.NumGPUs)
	return globalBatch / (iter * 1e-6)
}

// PreprocessOnly measures the standalone preprocessing latency of one
// global batch under the plan's mapping and fusion (no training
// co-running) — the denominator of the paper's "sequential GPU-based
// preprocessing" comparisons.
func (f *Framework) PreprocessOnly(p *ExecPlan) (float64, error) {
	sim := gpusim.NewSim(p.Cluster)
	for g := 0; g < p.Cluster.NumGPUs; g++ {
		stream := fmt.Sprintf("pre/g%d", g)
		for _, spec := range p.Schedules[g].AllKernels() {
			k := spec.Kernel()
			sim.AddKernel(g, k, gpusim.WithStream(stream))
		}
	}
	res, err := sim.Run()
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
