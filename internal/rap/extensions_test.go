package rap

import (
	"fmt"
	"testing"

	"rap/internal/data"
	"rap/internal/gpusim"
	"rap/internal/preproc"
)

func TestWithListLen(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	shifted := w.WithListLen(9)
	if shifted.Plan.AvgListLen != 9 || shifted.Gen.AvgListLen != 9 || shifted.Model.AvgPooling != 9 {
		t.Fatalf("shift not applied: %+v", shifted.Plan.AvgListLen)
	}
	// Original untouched.
	if w.Plan.AvgListLen != 3 {
		t.Fatal("original workload mutated")
	}
	// Graphs shared (no deep copy needed).
	if &w.Plan.Graphs[0] == &shifted.Plan.Graphs[0] {
		_ = w // same backing array is fine; just ensure both validate
	}
	if err := shifted.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.WithListLen(-3).Plan.AvgListLen != 1 {
		t.Fatal("non-positive list length not clamped")
	}
}

func TestAdaptToShift(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 2})
	before, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Triple the multi-hot volume: the preprocessing load grows, so the
	// regenerated plan must schedule more kernel time.
	after, err := f.AdaptToShift(9, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	workOf := func(p *ExecPlan) float64 {
		total := 0.0
		for g := range p.Schedules {
			for _, k := range p.Schedules[g].AllKernels() {
				total += k.SaturatedWork()
			}
		}
		return total
	}
	if workOf(after) <= workOf(before)*1.5 {
		t.Fatalf("regenerated plan did not absorb the shift: %f vs %f", workOf(after), workOf(before))
	}
	// The regenerated plan still executes.
	stats, err := f.Execute(after, 6)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Throughput <= 0 {
		t.Fatal("no throughput after regeneration")
	}
}

// overloadedWorkload builds a plan-1 workload with enough extra NGram
// work that Algorithm 1 cannot hide everything (forcing overflow).
func overloadedWorkload(t *testing.T) *Workload {
	t.Helper()
	w := workload(t, Terabyte, 1, 4096)
	for i := 0; i < 320; i++ {
		gi := w.Plan.NumDense + (i % w.Plan.NumSparse)
		g := w.Plan.Graphs[gi]
		base := g.Ops[0].Output()
		ng := preproc.NewNGram(
			fmt.Sprintf("%s/xng%d", g.Name, i),
			[]string{base},
			fmt.Sprintf("%s.xng%d", base, i),
			3, 1<<20)
		g.Ops = append(g.Ops, ng)
		g.InvalidateDeps()
	}
	if err := w.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMakeHybrid(t *testing.T) {
	w := overloadedWorkload(t)
	// A wide elastic CPU tier (the GoldMiner-style setup the paper's
	// hybrid mode composes with).
	f := New(w, gpusim.ClusterConfig{NumGPUs: 2, HostCores: 4096})
	pure, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	overflowed := false
	for g := range pure.Schedules {
		if len(pure.Schedules[g].Overflow) > 0 {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("overloaded workload did not overflow — test premise broken")
	}
	pureStats, err := f.Execute(pure, 8)
	if err != nil {
		t.Fatal(err)
	}

	hybrid, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := MakeHybrid(hybrid, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if spilled == 0 {
		t.Fatal("nothing spilled")
	}
	for g := range hybrid.Schedules {
		if len(hybrid.Schedules[g].Overflow) != 0 {
			t.Fatal("overflow not cleared")
		}
		if hybrid.Work[g].CPUPreprocUs <= 0 && spilledOnGPU(pure, g) {
			t.Fatalf("gpu %d spilled but no CPU work assigned", g)
		}
	}
	hybridStats, err := f.Execute(hybrid, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The hybrid mode trades exposed GPU tail latency for concurrent CPU
	// work: with a large host pool it must not be slower, and should
	// recover a good share of the exposed time (§10: "minimize CPU
	// resource requirements while maintaining high end-to-end training
	// efficiency").
	if hybridStats.Throughput < pureStats.Throughput {
		t.Fatalf("hybrid slower than pure GPU: %.0f vs %.0f", hybridStats.Throughput, pureStats.Throughput)
	}
	if hybridStats.Throughput < pureStats.Throughput*1.03 {
		t.Fatalf("hybrid recovered too little: %.0f vs %.0f", hybridStats.Throughput, pureStats.Throughput)
	}
}

func spilledOnGPU(p *ExecPlan, g int) bool {
	return len(p.Schedules[g].Overflow) > 0
}

func TestMakeHybridNil(t *testing.T) {
	if _, err := MakeHybrid(nil, 8); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestMakeHybridNoOverflowNoop(t *testing.T) {
	w := workload(t, Terabyte, 0, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	p, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for g := range p.Schedules {
		p.Schedules[g].Overflow = nil // everything hidden
	}
	spilled, err := MakeHybrid(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if spilled != 0 {
		t.Fatalf("nothing overflowed, yet spilled %d", spilled)
	}
	for g := range p.Work {
		if p.Work[g].CPUPreprocUs != 0 {
			t.Fatal("CPU work added without overflow")
		}
	}
}

func TestRunFunctionalFromDataset(t *testing.T) {
	w := workload(t, Kaggle, 0, 64).ShrinkForFunctional()
	dir := t.TempDir()
	if err := data.WriteDataset(dir, w.Gen, 4, 64); err != nil {
		t.Fatal(err)
	}
	ds, err := data.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	it := ds.Batches()
	it.Loop = true
	defer it.Close()
	res, err := RunFunctionalFrom(w, 2, it, 10, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 10 || !res.InSync {
		t.Fatalf("dataset-fed training broken: %d losses, sync=%v", len(res.Losses), res.InSync)
	}
	// Without Loop, the 4-batch dataset runs dry.
	it2 := ds.Batches()
	defer it2.Close()
	if _, err := RunFunctionalFrom(w, 2, it2, 10, 3, 0.05); err == nil {
		t.Fatal("exhausted dataset not reported")
	}
}
