package rap

import (
	"encoding/json"
	"fmt"
	"strings"
)

// PlanArtifact is the serializable form of a searched plan — the
// counterpart of the paper's generated code artifact (Figure 4 step 3:
// "translates the searched plan into executable code").
type PlanArtifact struct {
	Dataset    string              `json:"dataset"`
	Plan       string              `json:"preprocessing_plan"`
	NumGPUs    int                 `json:"num_gpus"`
	BatchSize  int                 `json:"per_gpu_batch"`
	Strategy   string              `json:"mapping_strategy"`
	MappingMov int                 `json:"mapping_moves"`
	GPUs       []GPUPlanArtifact   `json:"gpus"`
	TableGPU   []int               `json:"table_placement"`
	Exposed    []float64           `json:"predicted_exposed_us"`
	Ablation   map[string]bool     `json:"ablation"`
	Capacities []map[string]string `json:"-"`
}

// GPUPlanArtifact describes one GPU's searched plan.
type GPUPlanArtifact struct {
	GPU          int                 `json:"gpu"`
	NumGraphs    int                 `json:"num_graphs"`
	NumOps       int                 `json:"num_ops"`
	NumKernels   int                 `json:"num_fused_kernels"`
	MaxFusion    int                 `json:"max_fusion_degree"`
	NumShards    int                 `json:"num_shards"`
	CommBytes    float64             `json:"input_comm_bytes"`
	StageKernels map[string][]string `json:"stage_kernels"`
}

// Artifact builds the serializable plan description.
func Artifact(p *ExecPlan) PlanArtifact {
	a := PlanArtifact{
		Dataset:    string(p.Workload.Dataset),
		Plan:       p.Workload.Plan.Name,
		NumGPUs:    p.Cluster.NumGPUs,
		BatchSize:  p.Workload.Model.BatchSize,
		Strategy:   p.Mapping.Strategy,
		MappingMov: p.Mapping.Moves,
		TableGPU:   p.Placement.TableGPU,
		Exposed:    p.PredictedExposedUs,
		Ablation: map[string]bool{
			"no_fusion":     p.Opts.NoFusion,
			"no_sharding":   p.Opts.NoSharding,
			"no_interleave": p.Opts.NoInterleave,
		},
	}
	for g := 0; g < p.Cluster.NumGPUs; g++ {
		ga := GPUPlanArtifact{
			GPU:          g,
			NumGraphs:    len(p.Mapping.PerGPU[g]),
			NumOps:       p.Fusions[g].NumOps,
			NumKernels:   p.Fusions[g].NumKernels,
			MaxFusion:    p.Fusions[g].MaxFusionDegree(),
			NumShards:    p.Schedules[g].NumShards,
			CommBytes:    p.Mapping.CommBytes[g],
			StageKernels: map[string][]string{},
		}
		for s, ks := range p.Schedules[g].PerStage {
			if len(ks) == 0 {
				continue
			}
			stage := p.Capacities[g][s].Name
			for _, k := range ks {
				ga.StageKernels[stage] = append(ga.StageKernels[stage], k.Name)
			}
		}
		if len(p.Schedules[g].Overflow) > 0 {
			for _, k := range p.Schedules[g].Overflow {
				ga.StageKernels["(overflow)"] = append(ga.StageKernels["(overflow)"], k.Name)
			}
		}
		a.GPUs = append(a.GPUs, ga)
	}
	return a
}

// MarshalPlan renders the artifact as indented JSON.
func MarshalPlan(p *ExecPlan) ([]byte, error) {
	return json.MarshalIndent(Artifact(p), "", "  ")
}

// CodeGen renders the searched plan as a human-readable launch script —
// the stand-in for the PyTorch-frontend code the paper's artifact emits.
func CodeGen(p *ExecPlan) string {
	var b strings.Builder
	a := Artifact(p)
	fmt.Fprintf(&b, "# RAP generated co-running plan\n")
	fmt.Fprintf(&b, "# workload: %s / %s, %d GPUs, per-GPU batch %d\n",
		a.Dataset, a.Plan, a.NumGPUs, a.BatchSize)
	fmt.Fprintf(&b, "# mapping: %s (%d rebalancing moves)\n\n", a.Strategy, a.MappingMov)
	for _, g := range a.GPUs {
		fmt.Fprintf(&b, "gpu[%d]: graphs=%d ops=%d fused_kernels=%d max_fusion=%d shards=%d comm=%.0fB\n",
			g.GPU, g.NumGraphs, g.NumOps, g.NumKernels, g.MaxFusion, g.NumShards, g.CommBytes)
		for s := range p.Schedules[g.GPU].PerStage {
			ks := p.Schedules[g.GPU].PerStage[s]
			if len(ks) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  with stage %-12s overlap:\n", p.Capacities[g.GPU][s].Name)
			for _, k := range ks {
				fmt.Fprintf(&b, "    launch %-40s  pred=%.1fus warps=%d\n", k.Name, k.SoloLatency(), k.Warps())
			}
		}
		for _, k := range p.Schedules[g.GPU].Overflow {
			fmt.Fprintf(&b, "  EXPOSED launch %-32s  pred=%.1fus\n", k.Name, k.SoloLatency())
		}
	}
	fmt.Fprintf(&b, "\n# predicted exposed latency per GPU (us): %v\n", p.PredictedExposedUs)
	return b.String()
}
