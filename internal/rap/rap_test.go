package rap

import (
	"encoding/json"
	"strings"
	"testing"

	"rap/internal/gpusim"
)

func workload(t *testing.T, ds Dataset, planIdx, batch int) *Workload {
	t.Helper()
	w, err := NewWorkload(ds, planIdx, batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkloadShapes(t *testing.T) {
	cases := []struct {
		ds            Dataset
		plan          int
		dense, sparse int
	}{
		{Kaggle, 0, 13, 26},
		{Terabyte, 1, 13, 26},
		{Terabyte, 2, 26, 52},
		{Terabyte, 3, 52, 104},
	}
	for _, c := range cases {
		w := workload(t, c.ds, c.plan, 4096)
		if w.Plan.NumDense != c.dense || w.Plan.NumSparse != c.sparse {
			t.Fatalf("%s plan %d: %d/%d", c.ds, c.plan, w.Plan.NumDense, w.Plan.NumSparse)
		}
		if w.Model.NumTables() != w.Plan.NumTables {
			t.Fatalf("tables mismatch: %d vs %d", w.Model.NumTables(), w.Plan.NumTables)
		}
	}
	if _, err := NewWorkload("nope", 0, 64, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := NewWorkload(Kaggle, 9, 64, 1); err == nil {
		t.Fatal("unknown plan accepted")
	}
}

func TestSkewedWorkload(t *testing.T) {
	w, err := SkewedWorkload(6, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Plan.NumTables != 32 || w.Model.NumTables() != 32 {
		t.Fatalf("skewed tables = %d/%d", w.Plan.NumTables, w.Model.NumTables())
	}
}

func TestBuildPlanAndExecute(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	p, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Mapping.Strategy != "rap" {
		t.Fatalf("strategy = %s", p.Mapping.Strategy)
	}
	// Plan 1 fits: predicted exposure stays a small fraction of the
	// ~3.5 ms iteration on every GPU.
	for g, e := range p.PredictedExposedUs {
		if e > 400 {
			t.Fatalf("gpu %d predicted exposed %f", g, e)
		}
	}
	// Fusion compressed the per-GPU op count.
	for g := range p.Fusions {
		if p.Fusions[g].NumOps > 0 && p.Fusions[g].NumKernels >= p.Fusions[g].NumOps {
			t.Fatalf("gpu %d: no fusion benefit", g)
		}
	}
	stats, err := f.Execute(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	// RAP end-to-end should stay near the ideal (paper: 3.24% gap; we
	// allow slack for pipeline fill and prep).
	ideal := f.IdealThroughput()
	if stats.Throughput < 0.85*ideal {
		t.Fatalf("RAP throughput %.0f too far below ideal %.0f", stats.Throughput, ideal)
	}
	if stats.Throughput > 1.02*ideal {
		t.Fatalf("throughput %.0f exceeds ideal %.0f — accounting bug", stats.Throughput, ideal)
	}
}

func TestBuildPlanStrategies(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	for _, s := range []MappingStrategy{MapRAP, MapDataParallel, MapDataLocality} {
		p, err := f.BuildPlan(BuildOptions{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(p.Work) != 4 {
			t.Fatalf("%s: work entries %d", s, len(p.Work))
		}
	}
	if _, err := f.BuildPlan(BuildOptions{Strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	// DP mapping pays communication; RAP on a uniform plan does not.
	dp, err := f.BuildPlan(BuildOptions{Strategy: MapDataParallel})
	if err != nil {
		t.Fatal(err)
	}
	rapPlan, err := f.BuildPlan(BuildOptions{Strategy: MapRAP})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Mapping.TotalComm() <= rapPlan.Mapping.TotalComm() {
		t.Fatal("DP should pay more input communication than RAP")
	}
}

func TestAblationSwitches(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 2})
	noFusion, err := f.BuildPlan(BuildOptions{NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for g := range noFusion.Fusions {
		if noFusion.Fusions[g].MaxFusionDegree() > 1 {
			t.Fatal("NoFusion still fused")
		}
	}
	if full.Fusions[0].NumKernels >= noFusion.Fusions[0].NumKernels {
		t.Fatal("fusion did not reduce kernel count")
	}
	noShard, err := f.BuildPlan(BuildOptions{NoSharding: true})
	if err != nil {
		t.Fatal(err)
	}
	for g := range noShard.Schedules {
		if noShard.Schedules[g].NumShards != 0 {
			t.Fatal("NoSharding still sharded")
		}
	}
}

func TestOfflinePredictorIntegration(t *testing.T) {
	w := workload(t, Kaggle, 0, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 2})
	acc, err := f.OfflineTrainPredictor(2500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc) != 5 {
		t.Fatalf("accuracy categories = %d", len(acc))
	}
	for cat, a := range acc {
		if a < 0.7 {
			t.Fatalf("category %s accuracy %f", cat, a)
		}
	}
	if _, err := f.BuildPlan(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialVsRAP(t *testing.T) {
	w := workload(t, Terabyte, 2, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	p, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rapStats, err := f.Execute(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	seqPlan, err := f.BuildPlan(BuildOptions{SequentialPreproc: true})
	if err != nil {
		t.Fatal(err)
	}
	seqStats, err := f.Execute(seqPlan, 8)
	if err != nil {
		t.Fatal(err)
	}
	speedup := rapStats.Throughput / seqStats.Throughput
	if speedup < 1.2 {
		t.Fatalf("RAP speedup over sequential = %.2f, want > 1.2 on plan 2", speedup)
	}
}

func TestPreprocessOnly(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 2})
	p, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := f.PreprocessOnly(p)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("no preprocessing latency")
	}
}

func TestCodeGenAndArtifact(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 2})
	p, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	script := CodeGen(p)
	for _, want := range []string{"RAP generated co-running plan", "gpu[0]", "gpu[1]", "launch"} {
		if !strings.Contains(script, want) {
			t.Fatalf("codegen missing %q:\n%s", want, script[:min(400, len(script))])
		}
	}
	js, err := MarshalPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	var back PlanArtifact
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumGPUs != 2 || back.Plan != "plan1" || len(back.GPUs) != 2 {
		t.Fatalf("artifact round trip: %+v", back)
	}
}

func TestVerifyPlanSemanticsAllPlans(t *testing.T) {
	for idx := 0; idx < 4; idx++ {
		w := workload(t, Terabyte, idx, 128)
		if err := VerifyPlanSemantics(w, 64, 7); err != nil {
			t.Fatalf("plan %d: %v", idx, err)
		}
	}
}

func TestRunFunctional(t *testing.T) {
	w := workload(t, Kaggle, 0, 64).ShrinkForFunctional()
	const iters = 60
	res, err := RunFunctional(w, 2, 64, iters, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != iters {
		t.Fatalf("losses = %d", len(res.Losses))
	}
	if !res.InSync {
		t.Fatal("replicas diverged")
	}
	// Online training on fresh batches: compare mean loss of the first
	// and last quarters.
	quarter := iters / 4
	var first, last float32
	for i := 0; i < quarter; i++ {
		first += res.Losses[i]
		last += res.Losses[iters-1-i]
	}
	if last >= first-0.01 {
		t.Fatalf("functional training not learning: first %f last %f", first/float32(quarter), last/float32(quarter))
	}
}

func TestRunFunctionalValidation(t *testing.T) {
	w := workload(t, Kaggle, 0, 64)
	if _, err := RunFunctional(w, 3, 32, 1, 1); err == nil {
		t.Fatal("indivisible batch accepted")
	}
	if _, err := RunFunctional(w, 0, 32, 1, 1); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
