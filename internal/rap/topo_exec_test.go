package rap

import (
	"math"
	"testing"

	"rap/internal/chaos"
	"rap/internal/gpusim"
	"rap/internal/topo"
)

// TestExecuteTopo: topology is an execution-time argument — the same
// cached plan simulates on flat and hierarchical fleets. A flat (or
// nil) topology is bit-identical to plain Execute; a constrained
// multi-node fabric slows the run; fabric chaos windows compose on top.
func TestExecuteTopo(t *testing.T) {
	w := workload(t, Terabyte, 1, 4096)
	f := New(w, gpusim.ClusterConfig{NumGPUs: 4})
	p, err := f.BuildPlan(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}

	plain, err := f.Execute(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := f.ExecuteTopo(p, 4, topo.Flat(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(flat.Result.Makespan) != math.Float64bits(plain.Result.Makespan) {
		t.Fatalf("flat-topology makespan %g != plain %g", flat.Result.Makespan, plain.Result.Makespan)
	}

	tp := topo.Uniform(2, 2)
	tp.FabricGBs = 20 // far below NVLink: cross-node all-to-all saturates it
	tp.Oversub = 2
	slow, err := f.ExecuteTopo(p, 4, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(slow.Result.Makespan > plain.Result.Makespan) {
		t.Fatalf("constrained fabric did not stretch the run: %g <= %g",
			slow.Result.Makespan, plain.Result.Makespan)
	}

	cp := &chaos.Plan{Fabric: []chaos.FabricWindow{
		{Node: 0, T0: 0, T1: 1e9, Scale: 0.4},
		{Node: 1, T0: 0, T1: 1e9, Scale: 0.4},
	}}
	perturbed, err := f.ExecuteTopo(p, 4, tp, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !(perturbed.Result.Makespan > slow.Result.Makespan) {
		t.Fatalf("fabric chaos did not stretch the topologized run: %g <= %g",
			perturbed.Result.Makespan, slow.Result.Makespan)
	}

	// Mismatched topology size surfaces as an error, not a wrong result.
	if _, err := f.ExecuteTopo(p, 4, topo.Uniform(2, 4), nil); err == nil {
		t.Fatal("8-GPU topology accepted on a 4-GPU cluster")
	}
}
