// Package rap is the end-to-end framework of the paper: it bundles a
// DLRM training workload with its input-preprocessing plan, runs the
// offline pass (latency-predictor training), the online pass
// (overlapping-capacity estimation → MILP horizontal fusion → joint
// mapping + co-run schedule search, §4 Figure 4), lowers the searched
// plan into an executable pipeline on the simulated cluster, and can
// also execute the pipeline functionally (real data transforms feeding
// a real hybrid-parallel trainer).
package rap

import (
	"fmt"

	"rap/internal/data"
	"rap/internal/dlrm"
	"rap/internal/preproc"
)

// Dataset selects the Table 2 row.
type Dataset string

// The two evaluation datasets.
const (
	Kaggle   Dataset = "kaggle"
	Terabyte Dataset = "terabyte"
)

// GeneratedTableHash is the hash size of embedding tables created by
// feature generation (NGram/OneHot/Bucketize outputs).
const GeneratedTableHash = 200_000

// Workload bundles the three consistent views of one experiment: the
// synthetic data generator, the DLRM model and the preprocessing plan.
type Workload struct {
	Dataset Dataset
	PlanIdx int
	Gen     data.GenConfig
	Model   dlrm.Config
	Plan    *preproc.Plan
}

// NewWorkload builds the workload for a dataset, Table 3 plan index and
// per-GPU batch size.
func NewWorkload(ds Dataset, planIdx, perGPUBatch int, seed int64) (*Workload, error) {
	var base data.GenConfig
	switch ds {
	case Kaggle:
		base = data.KaggleGen(seed)
	case Terabyte:
		base = data.TerabyteGen(seed)
	default:
		return nil, fmt.Errorf("rap: unknown dataset %q", ds)
	}
	// Raw-feature hash sizes extend the dataset profile cyclically for
	// the wider plans (2/3); generated tables get a fixed size.
	rawHash := func(t int) int64 {
		return base.HashSizes[t%len(base.HashSizes)]
	}
	var plan *preproc.Plan
	planHash := func(t int) int64 {
		if plan != nil && t >= plan.NumSparse {
			return GeneratedTableHash
		}
		return rawHash(t)
	}
	// Two-phase: plan construction consults planHash, which needs the
	// plan's NumSparse; build once with raw sizes to learn the shape,
	// then once more with the final sizer.
	probe, err := preproc.StandardPlan(planIdx, rawHash)
	if err != nil {
		return nil, err
	}
	plan = probe
	plan, err = preproc.StandardPlan(planIdx, planHash)
	if err != nil {
		return nil, err
	}

	gen := base
	gen.NumDense = plan.NumDense
	gen.NumSparse = plan.NumSparse
	sizes := make([]int64, plan.NumSparse)
	for i := range sizes {
		sizes[i] = rawHash(i)
	}
	gen.HashSizes = sizes

	tableSizes := make([]int64, plan.NumTables)
	for t := range tableSizes {
		tableSizes[t] = planHash(t)
	}
	var model dlrm.Config
	if ds == Kaggle {
		model = dlrm.KaggleConfig(tableSizes, perGPUBatch)
	} else {
		model = dlrm.TerabyteConfig(tableSizes, perGPUBatch)
	}
	model.NumDense = plan.NumDense
	model.AvgPooling = plan.AvgListLen

	w := &Workload{Dataset: ds, PlanIdx: planIdx, Gen: gen, Model: model, Plan: plan}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// SkewedWorkload builds the Figure 12 workload: Terabyte model with the
// skewed preprocessing plan.
func SkewedWorkload(heavyFeatures, perGPUBatch int, seed int64) (*Workload, error) {
	base := data.TerabyteGen(seed)
	rawHash := func(t int) int64 { return base.HashSizes[t%len(base.HashSizes)] }
	plan := preproc.SkewedPlan(heavyFeatures, func(t int) int64 {
		if t >= 26 {
			return GeneratedTableHash
		}
		return rawHash(t)
	})
	tableSizes := make([]int64, plan.NumTables)
	for t := range tableSizes {
		if t >= 26 {
			tableSizes[t] = GeneratedTableHash
		} else {
			tableSizes[t] = rawHash(t)
		}
	}
	model := dlrm.TerabyteConfig(tableSizes, perGPUBatch)
	model.NumDense = plan.NumDense
	model.AvgPooling = plan.AvgListLen
	gen := base
	gen.NumDense = plan.NumDense
	gen.NumSparse = plan.NumSparse
	w := &Workload{Dataset: Terabyte, PlanIdx: -1, Gen: gen, Model: model, Plan: plan}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// ShrinkForFunctional returns a copy of the workload with a small model
// architecture (narrow MLPs, small embedding dim) for data-level
// functional runs, where learning dynamics — not capacity — are under
// test. The preprocessing plan and feature shapes are unchanged.
func (w *Workload) ShrinkForFunctional() *Workload {
	out := *w
	model := w.Model
	model.EmbeddingDim = 16
	model.BottomArch = []int{32}
	model.TopArch = []int{64}
	out.Model = model
	return &out
}

// Validate checks the cross-component invariants.
func (w *Workload) Validate() error {
	if err := w.Plan.Validate(); err != nil {
		return err
	}
	if err := w.Model.Validate(); err != nil {
		return err
	}
	if w.Model.NumTables() != w.Plan.NumTables {
		return fmt.Errorf("rap: model has %d tables, plan feeds %d", w.Model.NumTables(), w.Plan.NumTables)
	}
	if w.Model.NumDense != w.Plan.NumDense {
		return fmt.Errorf("rap: model expects %d dense features, plan outputs %d", w.Model.NumDense, w.Plan.NumDense)
	}
	if w.Gen.NumDense != w.Plan.NumDense || w.Gen.NumSparse != w.Plan.NumSparse {
		return fmt.Errorf("rap: generator shape %d/%d does not match plan %d/%d",
			w.Gen.NumDense, w.Gen.NumSparse, w.Plan.NumDense, w.Plan.NumSparse)
	}
	return nil
}
