package sched

import (
	"math"
	"reflect"
	"testing"

	"rap/internal/chaos"
	"rap/internal/gpusim"
	"rap/internal/preproc"
)

// TestWarmupSentinel covers the Warmup:0 regression: the zero value
// means "default of 2", and NoWarmup requests an actual zero-warmup
// window measured from t=0.
func TestWarmupSentinel(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(0, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)

	run := func(warmup int) *PipelineStats {
		stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{
			Iterations: 4,
			Warmup:     warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	def := run(0)
	wantDef := (def.IterEnds[3] - def.IterEnds[1]) / 2
	if math.Abs(def.SteadyIterLatency-wantDef) > 1e-9 {
		t.Fatalf("default warmup: steady latency %f, want 2-warmup window %f", def.SteadyIterLatency, wantDef)
	}

	none := run(NoWarmup)
	wantNone := none.IterEnds[3] / 4
	if math.Abs(none.SteadyIterLatency-wantNone) > 1e-9 {
		t.Fatalf("NoWarmup: steady latency %f, want full-run window %f", none.SteadyIterLatency, wantNone)
	}

	// Any negative value behaves like the sentinel.
	minus := run(-3)
	if math.Abs(minus.SteadyIterLatency-none.SteadyIterLatency) > 1e-9 {
		t.Fatalf("Warmup -3 diverged from NoWarmup: %f vs %f", minus.SteadyIterLatency, none.SteadyIterLatency)
	}
}

// TestPipelineEngineMatrix composes the awkward corners in one matrix:
// a seeded chaos plan (capacity windows + straggler inflation), the
// NoWarmup sentinel, a single-iteration run, and the sharded engine
// opt-in — every {chaos} × {Iterations:1+NoWarmup, Iterations:3} cell
// runs through the sequential engine and through shard counts {2, 4},
// and each sharded Result must digest bit-identically to the
// sequential one (gpusim.ResultDigest covers op timings, utilization
// segments with tag attribution, and host segments). This extends the
// gpusim engine-equivalence harness up through the pipeline builder:
// the same currency (bit-exact digests), exercised on real pipeline
// DAGs rather than synthetic golden ones.
func TestPipelineEngineMatrix(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(1, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)

	run := func(iters, warmup int, cp *chaos.Plan, engine gpusim.EngineOptions) *PipelineStats {
		t.Helper()
		stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{
			Iterations: iters,
			Warmup:     warmup,
			Chaos:      cp,
			Engine:     engine,
		})
		if err != nil {
			t.Fatalf("iters %d warmup %d shards %d: %v", iters, warmup, engine.Shards, err)
		}
		return stats
	}

	// Horizon for the chaos plan from an unperturbed probe run.
	horizon := run(3, 0, nil, gpusim.EngineOptions{}).Result.Makespan
	cp, err := chaos.NewPlan(17, chaos.Scenario{NumGPUs: n, HorizonUs: horizon, Severity: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Straggler.Prob <= 0 {
		t.Fatalf("severity-0.6 plan carries no stragglers; the matrix needs them")
	}

	for _, chaosOn := range []bool{false, true} {
		plan := (*chaos.Plan)(nil)
		if chaosOn {
			plan = cp
		}
		for _, shape := range []struct{ iters, warmup int }{{1, NoWarmup}, {3, 0}} {
			seq := run(shape.iters, shape.warmup, plan, gpusim.EngineOptions{})
			want := gpusim.ResultDigest(seq.Result)
			for _, shards := range []int{2, 4} {
				sh := run(shape.iters, shape.warmup, plan, gpusim.EngineOptions{Shards: shards, NoRace: true})
				if got := gpusim.ResultDigest(sh.Result); got != want {
					t.Errorf("chaos=%v iters=%d shards=%d: digest %s != sequential %s",
						chaosOn, shape.iters, shards, got[:12], want[:12])
				}
				if sh.Result.Events != seq.Result.Events {
					t.Errorf("chaos=%v iters=%d shards=%d: %d events != sequential %d",
						chaosOn, shape.iters, shards, sh.Result.Events, seq.Result.Events)
				}
				if math.Abs(sh.SteadyIterLatency-seq.SteadyIterLatency) != 0 {
					t.Errorf("chaos=%v iters=%d shards=%d: steady latency %v != %v",
						chaosOn, shape.iters, shards, sh.SteadyIterLatency, seq.SteadyIterLatency)
				}
			}
		}
	}
}

// TestPipelineChaosDeterministic runs the full pipeline builder under a
// seeded perturbation plan twice: results must be deeply equal, strictly
// slower than the unperturbed run, and a nil plan must stay bit-identical
// to no plan at all.
func TestPipelineChaosDeterministic(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(0, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)

	run := func(cp *chaos.Plan) *PipelineStats {
		stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{
			Iterations: 3,
			Chaos:      cp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	base := run(nil)
	baseHorizon := base.Result.Makespan

	cp, err := chaos.NewPlan(42, chaos.Scenario{NumGPUs: n, HorizonUs: baseHorizon, Severity: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(cp), run(cp)
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Fatal("chaos pipeline runs with identical plan diverged")
	}
	if a.Result.Makespan <= baseHorizon {
		t.Fatalf("severity-0.7 plan did not stretch the pipeline: %f <= %f", a.Result.Makespan, baseHorizon)
	}

	again := run(nil)
	if !reflect.DeepEqual(base.Result, again.Result) {
		t.Fatal("nil chaos plan perturbed the pipeline")
	}
}
