package sched

import (
	"math"
	"reflect"
	"testing"

	"rap/internal/chaos"
	"rap/internal/gpusim"
	"rap/internal/preproc"
)

// TestWarmupSentinel covers the Warmup:0 regression: the zero value
// means "default of 2", and NoWarmup requests an actual zero-warmup
// window measured from t=0.
func TestWarmupSentinel(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(0, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)

	run := func(warmup int) *PipelineStats {
		stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{
			Iterations: 4,
			Warmup:     warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	def := run(0)
	wantDef := (def.IterEnds[3] - def.IterEnds[1]) / 2
	if math.Abs(def.SteadyIterLatency-wantDef) > 1e-9 {
		t.Fatalf("default warmup: steady latency %f, want 2-warmup window %f", def.SteadyIterLatency, wantDef)
	}

	none := run(NoWarmup)
	wantNone := none.IterEnds[3] / 4
	if math.Abs(none.SteadyIterLatency-wantNone) > 1e-9 {
		t.Fatalf("NoWarmup: steady latency %f, want full-run window %f", none.SteadyIterLatency, wantNone)
	}

	// Any negative value behaves like the sentinel.
	minus := run(-3)
	if math.Abs(minus.SteadyIterLatency-none.SteadyIterLatency) > 1e-9 {
		t.Fatalf("Warmup -3 diverged from NoWarmup: %f vs %f", minus.SteadyIterLatency, none.SteadyIterLatency)
	}
}

// TestPipelineChaosDeterministic runs the full pipeline builder under a
// seeded perturbation plan twice: results must be deeply equal, strictly
// slower than the unperturbed run, and a nil plan must stay bit-identical
// to no plan at all.
func TestPipelineChaosDeterministic(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(0, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)

	run := func(cp *chaos.Plan) *PipelineStats {
		stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{
			Iterations: 3,
			Chaos:      cp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	base := run(nil)
	baseHorizon := base.Result.Makespan

	cp, err := chaos.NewPlan(42, chaos.Scenario{NumGPUs: n, HorizonUs: baseHorizon, Severity: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(cp), run(cp)
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Fatal("chaos pipeline runs with identical plan diverged")
	}
	if a.Result.Makespan <= baseHorizon {
		t.Fatalf("severity-0.7 plan did not stretch the pipeline: %f <= %f", a.Result.Makespan, baseHorizon)
	}

	again := run(nil)
	if !reflect.DeepEqual(base.Result, again.Result) {
		t.Fatal("nil chaos plan perturbed the pipeline")
	}
}
