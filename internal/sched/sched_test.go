package sched

import (
	"math"
	"strings"
	"testing"

	"rap/internal/costmodel"
	"rap/internal/dlrm"
	"rap/internal/fusion"
	"rap/internal/gpusim"
	"rap/internal/preproc"
)

func testSetup(t *testing.T, numGPUs int, batch int) (dlrm.Config, dlrm.Placement, *costmodel.CostModel) {
	t.Helper()
	sizes := make([]int64, 26)
	for i := range sizes {
		sizes[i] = 1 << 20
	}
	cfg := dlrm.TerabyteConfig(sizes, batch)
	pl := dlrm.PlaceTables(sizes, numGPUs)
	caps, err := costmodel.EstimateCapacities(cfg, pl, 0, gpusim.ClusterConfig{NumGPUs: numGPUs})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := costmodel.NewCostModel(costmodel.AnalyticPredictor(), caps)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, pl, cm
}

func fusedPlanFor(t *testing.T, graphs []*preproc.Graph, samples int) *fusion.Plan {
	t.Helper()
	plan, err := fusion.PlanFusion(graphs, preproc.Shape{Samples: samples, AvgListLen: 3}, fusion.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCoRunScheduleHidesLightWorkload(t *testing.T) {
	_, _, cm := testSetup(t, 4, 4096)
	p := preproc.MustStandardPlan(0, nil)
	// A quarter of plan-0's graphs: comfortably within capacity.
	plan := fusedPlanFor(t, p.Graphs[:10], 4096)
	sch, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.PredictedExposed > 1 {
		t.Fatalf("light workload exposed %f µs", sch.PredictedExposed)
	}
	if sch.TotalKernels() < plan.NumKernels {
		t.Fatalf("kernels lost: %d < %d", sch.TotalKernels(), plan.NumKernels)
	}
	if len(sch.Overflow) != 0 {
		t.Fatalf("unexpected overflow: %d", len(sch.Overflow))
	}
}

func TestCoRunScheduleKeepsKernelOrder(t *testing.T) {
	_, _, cm := testSetup(t, 4, 4096)
	p := preproc.MustStandardPlan(1, nil)
	plan := fusedPlanFor(t, p.Graphs, 4096)
	sch, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The scheduled sequence must be the plan's kernel order with only
	// shard splits allowed (prefix naming).
	want := plan.Kernels()
	got := sch.AllKernels()
	wi := 0
	for _, k := range got {
		base := strings.TrimSuffix(strings.TrimSuffix(k.Name, "~shard"), "~rest")
		for wi < len(want) && want[wi].Name != base {
			wi++
		}
		if wi == len(want) {
			t.Fatalf("kernel %q out of order", k.Name)
		}
	}
}

func TestCoRunScheduleShards(t *testing.T) {
	_, _, cm := testSetup(t, 2, 4096)
	// One huge fused NGram kernel larger than any single stage capacity.
	g := &preproc.Graph{Name: "big", Ops: []preproc.Op{
		preproc.NewNGram("ng", []string{"cat_0", "cat_1", "cat_2", "cat_3"}, "out", 3, 1000),
	}}
	plan := fusedPlanFor(t, []*preproc.Graph{g}, 65536)
	sch, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.NumShards == 0 {
		t.Fatal("oversized kernel was not sharded")
	}
	// Work conservation across shards (+ overflow).
	var total float64
	for _, k := range sch.AllKernels() {
		total += k.Elements
	}
	if math.Abs(total-plan.Kernels()[0].Elements) > 1e-6 {
		t.Fatalf("elements lost in sharding: %f vs %f", total, plan.Kernels()[0].Elements)
	}
}

func TestCoRunScheduleShardingDisabled(t *testing.T) {
	_, _, cm := testSetup(t, 2, 4096)
	g := &preproc.Graph{Name: "big", Ops: []preproc.Op{
		preproc.NewNGram("ng", []string{"cat_0", "cat_1", "cat_2", "cat_3"}, "out", 3, 1000),
	}}
	plan := fusedPlanFor(t, []*preproc.Graph{g}, 65536)
	sch, err := CoRunSchedule(plan, cm, Options{DisableSharding: true})
	if err != nil {
		t.Fatal(err)
	}
	if sch.NumShards != 0 {
		t.Fatal("sharding happened despite DisableSharding")
	}
}

func TestCoRunScheduleOverflow(t *testing.T) {
	_, _, cm := testSetup(t, 2, 4096)
	// Plan 3's full workload on one GPU exceeds one iteration's capacity.
	p := preproc.MustStandardPlan(3, nil)
	plan := fusedPlanFor(t, p.Graphs, 8192)
	sch, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.PredictedExposed <= 0 {
		t.Fatal("overload not detected")
	}
}

func TestCoRunScheduleNilArgs(t *testing.T) {
	if _, err := CoRunSchedule(nil, nil, Options{}); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestSequentialSchedule(t *testing.T) {
	ks := []preproc.KernelSpec{{Name: "a", Type: preproc.OpLogit, Elements: 10}}
	s := SequentialSchedule(ks, 5)
	if len(s.PerStage) != 5 || len(s.PerStage[0]) != 1 {
		t.Fatal("sequential schedule wrong")
	}
	s0 := SequentialSchedule(ks, 0)
	if len(s0.Overflow) != 1 {
		t.Fatal("zero-stage schedule should overflow")
	}
}

func buildWork(t *testing.T, cm *costmodel.CostModel, graphsPerGPU [][]*preproc.Graph, samples int) []GPUWork {
	t.Helper()
	work := make([]GPUWork, len(graphsPerGPU))
	for g := range graphsPerGPU {
		plan := fusedPlanFor(t, graphsPerGPU[g], samples)
		sch, err := CoRunSchedule(plan, cm, Options{})
		if err != nil {
			t.Fatal(err)
		}
		work[g] = GPUWork{Schedule: sch, PrepBytes: 1e6, CPUPrepUs: 50}
	}
	return work
}

func splitGraphs(p *preproc.Plan, n int) [][]*preproc.Graph {
	out := make([][]*preproc.Graph, n)
	for i, g := range p.Graphs {
		out[i%n] = append(out[i%n], g)
	}
	return out
}

func TestPipelineOverlapBeatsSequential(t *testing.T) {
	const n = 4
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(1, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)

	cluster := gpusim.ClusterConfig{NumGPUs: n, Policy: gpusim.FairShare}
	overlapped, err := BuildAndRun(cluster, cfg, pl, work, PipelineOptions{Iterations: 8, Interleave: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := BuildAndRun(cluster, cfg, pl, work, PipelineOptions{Iterations: 8, SequentialPreproc: true})
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Throughput <= seq.Throughput*1.05 {
		t.Fatalf("overlap %.0f vs sequential %.0f samples/s — no benefit", overlapped.Throughput, seq.Throughput)
	}
	// Overlapped latency should be close to train-only (small exposure).
	if overlapped.ExposedFraction() > 0.25 {
		t.Fatalf("exposed fraction %.3f too high", overlapped.ExposedFraction())
	}
	if seq.ExposedFraction() < overlapped.ExposedFraction() {
		t.Fatal("sequential should expose more")
	}
}

func TestPipelineInterleavingHelps(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(1, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)
	// Make data preparation expensive so its placement matters.
	for g := range work {
		work[g].CPUPrepUs = 800
		work[g].PrepBytes = 2e7
	}
	cluster := gpusim.ClusterConfig{NumGPUs: n}
	inter, err := BuildAndRun(cluster, cfg, pl, work, PipelineOptions{Iterations: 10, Interleave: true})
	if err != nil {
		t.Fatal(err)
	}
	noInter, err := BuildAndRun(cluster, cfg, pl, work, PipelineOptions{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if inter.Throughput < noInter.Throughput {
		t.Fatalf("interleaving hurt: %f vs %f", inter.Throughput, noInter.Throughput)
	}
}

func TestPipelineStatsShape(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(0, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)
	stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.IterEnds) != 6 {
		t.Fatalf("iter ends = %d", len(stats.IterEnds))
	}
	for i := 1; i < len(stats.IterEnds); i++ {
		if stats.IterEnds[i] <= stats.IterEnds[i-1] {
			t.Fatal("iterations not monotone")
		}
	}
	if stats.Throughput <= 0 || stats.SteadyIterLatency <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.TrainOnlyLatency <= 0 {
		t.Fatal("train-only latency missing")
	}
}

func TestPipelineInputCommDelays(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(0, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)
	base, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	for g := range work {
		work[g].InputCommBytes = 5e8 // 500 MB per batch: clearly visible
	}
	comm, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if comm.Throughput >= base.Throughput {
		t.Fatal("input communication had no cost")
	}
}

func TestPipelineCPUPreprocBaseline(t *testing.T) {
	const n = 2
	cfg, pl, _ := testSetup(t, n, 4096)
	work := make([]GPUWork, n)
	for g := range work {
		work[g] = GPUWork{CPUPreprocUs: 50000, CPUWorkers: 8, PrepBytes: 1e6}
	}
	stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n, HostCores: 16}, cfg, pl, work, PipelineOptions{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	// CPU preprocessing (50 ms per batch) dominates the iteration.
	if stats.SteadyIterLatency < 40000 {
		t.Fatalf("CPU-bound pipeline too fast: %f", stats.SteadyIterLatency)
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg, pl, _ := testSetup(t, 2, 4096)
	if _, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: 2}, cfg, pl, make([]GPUWork, 3), PipelineOptions{}); err == nil {
		t.Fatal("work/GPU mismatch accepted")
	}
	if _, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: 4}, cfg, pl, make([]GPUWork, 4), PipelineOptions{}); err == nil {
		t.Fatal("placement/cluster mismatch accepted")
	}
}
