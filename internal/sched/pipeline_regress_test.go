package sched

import (
	"fmt"
	"testing"

	"rap/internal/gpusim"
	"rap/internal/preproc"
)

// TestPipelineSingleIteration covers the Iterations:1 regression: with no
// warmup iteration, the steady-state window must fall back to the whole
// run instead of indexing IterEnds[-1].
func TestPipelineSingleIteration(t *testing.T) {
	const n = 2
	cfg, pl, cm := testSetup(t, n, 4096)
	p := preproc.MustStandardPlan(0, nil)
	work := buildWork(t, cm, splitGraphs(p, n), 4096)
	stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.IterEnds) != 1 {
		t.Fatalf("iter ends = %d, want 1", len(stats.IterEnds))
	}
	if stats.SteadyIterLatency != stats.IterEnds[0] {
		t.Fatalf("steady latency %f != full-run window %f", stats.SteadyIterLatency, stats.IterEnds[0])
	}
	if stats.Throughput <= 0 {
		t.Fatalf("throughput = %f", stats.Throughput)
	}
}

// TestPipelineNoPreprocInputComm covers the dropped-communication
// regression: a GPU with neither a kernel schedule nor CPU preprocessing
// must still schedule its mapping-induced input communication and gate
// the consuming iteration on it.
func TestPipelineNoPreprocInputComm(t *testing.T) {
	const n = 2
	cfg, pl, _ := testSetup(t, n, 4096)
	work := make([]GPUWork, n)
	work[0].InputCommBytes = 5e8 // 500 MB: clearly visible

	stats, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, work, PipelineOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	comms := stats.Result.OpsByName("b0/g0/input_comm")
	if len(comms) != 1 {
		t.Fatalf("input_comm ops for batch 0 = %d, want 1", len(comms))
	}
	// The communication must gate the iteration that consumes batch 0:
	// emb_lookup of iteration 0 cannot start before it completes.
	lookups := stats.Result.OpsByName("it0/g0/emb_lookup")
	if len(lookups) != 1 {
		t.Fatalf("emb_lookup ops = %d, want 1", len(lookups))
	}
	if lookups[0].Start < comms[0].End {
		t.Fatalf("iteration started at %f before input comm finished at %f", lookups[0].Start, comms[0].End)
	}

	// Every batch gets its communication, and iteration 0 — which must
	// wait for batch 0's transfer — finishes later than without it.
	for i := 1; i < 3; i++ {
		if got := len(stats.Result.OpsByName(fmt.Sprintf("b%d/g0/input_comm", i))); got != 1 {
			t.Fatalf("input_comm ops for batch %d = %d, want 1", i, got)
		}
	}
	base, err := BuildAndRun(gpusim.ClusterConfig{NumGPUs: n}, cfg, pl, make([]GPUWork, n), PipelineOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.IterEnds[0] <= base.IterEnds[0] {
		t.Fatal("input communication on a no-preproc GPU had no cost")
	}
}
