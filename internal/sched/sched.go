// Package sched implements RAP's resource-aware co-running scheduling:
// Algorithm 1 of the paper (assign fused preprocessing kernels to DLRM
// training stages by overlapping capacity, sharding kernels that exceed
// the remaining headroom) and the §6.3 inter-batch workload interleaving
// executed by the pipeline builder.
package sched

import (
	"fmt"

	"rap/internal/costmodel"
	"rap/internal/fusion"
	"rap/internal/preproc"
)

// Options tunes Algorithm 1.
type Options struct {
	// MinShardLatency is the smallest useful shard (µs); leftover stage
	// capacity below it is skipped rather than sharded into dust.
	MinShardLatency float64
	// DisableSharding turns resource-aware kernel sharding off (kernels
	// are only placed whole) — for ablation studies.
	DisableSharding bool
	// PackFraction is the share of each stage's capacity the scheduler
	// actually fills (default 0.8). Packing to 100% makes every stream
	// backlog cascade into later, tighter stages where the oversized
	// pieces contend with training; leftover work instead overflows to
	// the inter-iteration gap where it runs fused at full occupancy.
	PackFraction float64
}

// DemandSlack adjusts the headroom target when fitting a shard's demand
// into a stage's leftover. It is slightly negative: co-running pieces
// stay strictly inside the headroom so the training stages they overlap
// are never stretched; work that does not fit runs fused at full
// occupancy in the inter-iteration gap instead, which is cheaper than
// stretching every stage (superlinear contention).
const DemandSlack = -0.03

// MaxCoRunOcc caps the occupancy of any co-running piece, even in
// stages with full headroom (communication stages): a piece that slides
// past its stage boundary because the preprocessing stream is backed up
// must not be able to flatten the next compute stage.
const MaxCoRunOcc = 0.4

func (o Options) withDefaults() Options {
	if o.MinShardLatency <= 0 {
		o.MinShardLatency = 8
	}
	if o.PackFraction <= 0 || o.PackFraction > 1 {
		o.PackFraction = 0.8
	}
	return o
}

// Schedule is the co-running plan of one GPU for one batch's
// preprocessing: which (possibly sharded) kernels overlap which training
// stage, in launch order.
type Schedule struct {
	// PerStage[s] holds the kernels overlapped with training stage s.
	// Kernels must be launched stage by stage, in slice order (the
	// preprocessing stream serializes them).
	PerStage [][]preproc.KernelSpec
	// Overflow holds kernels that did not fit into any stage's
	// remaining capacity; they run after the iteration's stages and are
	// the predicted exposed latency.
	Overflow []preproc.KernelSpec
	// PredictedExposed is the cost model's LΔ estimate for this schedule
	// (0 when everything is hidden).
	PredictedExposed float64
	// NumShards counts the resource-aware shard splits performed.
	NumShards int
}

// TotalKernels counts all scheduled kernels including overflow.
func (s *Schedule) TotalKernels() int {
	n := len(s.Overflow)
	for _, ks := range s.PerStage {
		n += len(ks)
	}
	return n
}

// AllKernels returns the launch-ordered kernel sequence.
func (s *Schedule) AllKernels() []preproc.KernelSpec {
	var out []preproc.KernelSpec
	for _, ks := range s.PerStage {
		out = append(out, ks...)
	}
	return append(out, s.Overflow...)
}

// CoRunSchedule is Algorithm 1: it takes the fused kernel plan of one
// GPU and the profiled stage capacities and greedily assigns kernels to
// training stages, sharding a kernel when the remaining capacity of the
// current stage cannot hold it whole.
//
//rap:deterministic
func CoRunSchedule(plan *fusion.Plan, cm *costmodel.CostModel, opts Options) (*Schedule, error) {
	if plan == nil || cm == nil {
		return nil, fmt.Errorf("sched: nil plan or cost model")
	}
	opts = opts.withDefaults()
	numStages := len(cm.Caps)
	out := &Schedule{PerStage: make([][]preproc.KernelSpec, numStages)}

	// Lines 2-5: total predicted preprocessing latency.
	queue := plan.Kernels()
	total := 0.0
	for _, k := range queue {
		total += cm.Pred.Predict(k)
	}

	// Lines 6-12: pick stages by capacity, largest first, until the
	// budget covers the workload.
	type capStage struct {
		idx int
		cap float64
	}
	sorted := make([]capStage, numStages)
	for i, c := range cm.Caps {
		sorted[i] = capStage{i, c.Capacity}
	}
	for i := 1; i < len(sorted); i++ { // insertion sort: stable, tiny n
		for j := i; j > 0 && sorted[j].cap > sorted[j-1].cap; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// A 25% margin absorbs the launch overhead added by sharding, which
	// the pre-fusion latency sum cannot see.
	selected := make([]bool, numStages)
	budget := 0.0
	for _, cs := range sorted {
		if budget >= total*1.25 {
			break
		}
		selected[cs.idx] = true
		budget += cs.cap
	}

	// Lines 13-29: greedy assignment in training-stage order; the kernel
	// queue order preserves fusion-step dependencies (the preprocessing
	// stream launches kernels in assignment order). A kernel is placed
	// whole only when both constraints hold: its predicted latency fits
	// the stage's remaining capacity AND its resource demand fits the
	// stage's leftover headroom. Otherwise it is sharded (lines 21-26):
	// demand-oversized kernels split into headroom-fitting pieces that
	// serialize within the stage, capacity-oversized ones spill forward.
	assign := func(queue []preproc.KernelSpec, selected []bool) (perStage [][]preproc.KernelSpec, overflow []preproc.KernelSpec, shards int) {
		perStage = make([][]preproc.KernelSpec, numStages)
		pos := 0
		for s := 0; s < numStages && pos < len(queue); s++ {
			if !selected[s] {
				continue
			}
			remaining := cm.Caps[s].Capacity * opts.PackFraction
			leftover := cm.Caps[s].Leftover
			for pos < len(queue) {
				k := queue[pos]
				p := cm.Pred.Predict(k)
				if p <= 0 {
					pos++
					continue
				}
				occCap := leftover.SM + DemandSlack
				if occCap > MaxCoRunOcc {
					occCap = MaxCoRunOcc
				}
				demandMax := k.MaxElementsForDemand(occCap, leftover.MemBW+DemandSlack)
				if demandMax <= 0 {
					break // this stage can never host this kernel type
				}
				frac := 1.0
				if k.Elements > demandMax {
					frac = demandMax / k.Elements
				}
				if capFrac := remaining / p; capFrac < frac {
					frac = capFrac
				}
				if frac >= 1 {
					perStage[s] = append(perStage[s], k)
					remaining -= p
					pos++
					continue
				}
				if opts.DisableSharding || remaining < opts.MinShardLatency {
					break // stage full; spill to the next selected stage
				}
				k1, k2 := k.Shard(frac)
				p1 := cm.Pred.Predict(k1)
				if p1 > remaining && frac > 0.002 {
					// A demand-limited shard runs at leftover speed, so
					// its latency exceeds the naive frac·p estimate;
					// shrink it to the remaining capacity.
					k1, k2 = k.Shard(frac * remaining / p1)
					p1 = cm.Pred.Predict(k1)
				}
				if p1 < opts.MinShardLatency || p1 > remaining+opts.MinShardLatency {
					break // no useful piece fits this stage
				}
				perStage[s] = append(perStage[s], k1)
				remaining -= p1
				shards++
				queue[pos] = k2
				// Keep filling this stage: more pieces may fit.
			}
		}
		overflow = append(overflow, queue[pos:]...)
		return perStage, overflow, shards
	}

	perStage, overflow, shards := assign(append([]preproc.KernelSpec(nil), queue...), selected)
	if len(overflow) > 0 {
		// The selected stages were not enough (sharding overhead, demand
		// limits): redo the assignment over every stage, preserving launch
		// order, before declaring latency exposed.
		all := make([]bool, numStages)
		for i := range all {
			all[i] = true
		}
		perStage, overflow, shards = assign(append([]preproc.KernelSpec(nil), queue...), all)
	}
	out.PerStage = perStage
	out.Overflow = overflow
	out.NumShards = shards

	cost, err := cm.ScheduleCost(out.PerStage)
	if err != nil {
		return nil, err
	}
	for _, k := range out.Overflow {
		cost += cm.Pred.Predict(k)
	}
	out.PredictedExposed = cost
	return out, nil
}

// SequentialSchedule places every kernel into the first stage's slot
// without capacity awareness — the handcrafted-baseline behaviour
// (stream/MPS: launch everything immediately, §8.2).
//
//rap:deterministic
func SequentialSchedule(kernels []preproc.KernelSpec, numStages int) *Schedule {
	s := &Schedule{PerStage: make([][]preproc.KernelSpec, numStages)}
	if numStages == 0 {
		s.Overflow = append(s.Overflow, kernels...)
		return s
	}
	s.PerStage[0] = append(s.PerStage[0], kernels...)
	return s
}
