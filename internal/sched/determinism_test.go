package sched

import (
	"reflect"
	"testing"

	"rap/internal/preproc"
)

// TestCoRunScheduleDeterministic guards the raplint maporder invariant:
// two back-to-back schedules of the same fusion plan must be deeply
// equal, stage by stage and kernel by kernel.
func TestCoRunScheduleDeterministic(t *testing.T) {
	_, _, cm := testSetup(t, 4, 4096)
	p := preproc.MustStandardPlan(1, nil)
	plan := fusedPlanFor(t, p.Graphs, 4096)

	a, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestCoRunScheduleShardingDeterministic repeats the check on a plan
// that forces sharding, the other code path that could depend on
// iteration order.
func TestCoRunScheduleShardingDeterministic(t *testing.T) {
	_, _, cm := testSetup(t, 2, 4096)
	g := &preproc.Graph{Name: "big", Ops: []preproc.Op{
		preproc.NewNGram("ng", []string{"cat_0", "cat_1", "cat_2", "cat_3"}, "out", 3, 1000),
	}}
	plan := fusedPlanFor(t, []*preproc.Graph{g}, 65536)

	a, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoRunSchedule(plan, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumShards == 0 {
		t.Fatal("plan did not shard; the test is not exercising the shard path")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded schedules differ between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}
