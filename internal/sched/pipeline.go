package sched

import (
	"fmt"

	"rap/internal/dlrm"
	"rap/internal/gpusim"
)

// GPUWork is the per-GPU, per-batch preprocessing workload handed to the
// pipeline builder.
type GPUWork struct {
	// Schedule holds the GPU preprocessing kernels and their stage
	// assignment (nil means no GPU preprocessing on this GPU).
	Schedule *Schedule
	// InputCommBytes is cross-GPU input communication this GPU must
	// perform after preprocessing a batch (non-zero under mappings that
	// violate data locality, e.g. batch/data-parallel mapping).
	InputCommBytes float64
	// PrepBytes is the host-to-device copy volume of one raw batch.
	PrepBytes float64
	// CPUPrepUs is host-side data-preparation time per batch (memory
	// allocation, unpacking) preceding the copy.
	CPUPrepUs float64
	// CPUPreprocUs, when positive, replaces the GPU kernel schedule with
	// CPU-side preprocessing of that duration (the TorchArrow baseline).
	CPUPreprocUs float64
	// CPUWorkers is the host worker count used by CPU ops (default 8,
	// the paper's per-GPU TorchArrow worker count).
	CPUWorkers int
}

func (w GPUWork) workers() int {
	if w.CPUWorkers <= 0 {
		return 8
	}
	return w.CPUWorkers
}

// PipelineOptions controls pipeline construction.
type PipelineOptions struct {
	Iterations int
	// Warmup iterations excluded from steady-state measurement
	// (default 2, min 1 when Iterations allows).
	Warmup int
	// Interleave enables §6.3 inter-batch workload interleaving: the
	// data preparation of batch n+1 overlaps the preprocessing kernels
	// of batch n instead of serializing before its own kernels.
	Interleave bool
	// SequentialPreproc exposes all preprocessing: kernels run between
	// iterations instead of co-running (the Sequential baseline).
	SequentialPreproc bool
	// PreprocPriority is the simulator priority of preprocessing kernels
	// (training runs at priority 1). Equal priority (1) models MPS-style
	// fair sharing; lower (0) models low-priority CUDA streams.
	PreprocPriority int
	// PreprocStreams is the number of concurrent preprocessing streams
	// (default 1). The handcrafted baselines launch kernels from several
	// worker streams at once, which is exactly what creates their GPU
	// resource contention (§8.2); kernels are distributed round-robin,
	// a slight over-approximation of the baselines' parallelism.
	PreprocStreams int
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Iterations <= 0 {
		o.Iterations = 8
	}
	if o.Warmup <= 0 {
		o.Warmup = 2
	}
	if o.Warmup >= o.Iterations {
		o.Warmup = o.Iterations - 1
	}
	if o.PreprocStreams <= 0 {
		o.PreprocStreams = 1
	}
	return o
}

// PipelineStats is the outcome of a pipelined training run.
type PipelineStats struct {
	Result *gpusim.Result
	// IterEnds[i] is the completion time of iteration i (µs).
	IterEnds []float64
	// SteadyIterLatency is the mean per-iteration latency after warmup.
	SteadyIterLatency float64
	// Throughput is global samples per second after warmup.
	Throughput float64
	// TrainOnlyLatency is the analytic contention-free iteration
	// latency, for exposed-overhead accounting.
	TrainOnlyLatency float64
}

// ExposedFraction is (steady latency − train-only latency) / train-only
// latency: how much preprocessing remained exposed.
func (p *PipelineStats) ExposedFraction() float64 {
	if p.TrainOnlyLatency <= 0 {
		return 0
	}
	f := (p.SteadyIterLatency - p.TrainOnlyLatency) / p.TrainOnlyLatency
	if f < 0 {
		return 0
	}
	return f
}

// BuildAndRun constructs the full pipelined DLRM-training +
// preprocessing DAG and simulates it. work must have one entry per GPU.
func BuildAndRun(cluster gpusim.ClusterConfig, cfg dlrm.Config, pl dlrm.Placement, work []GPUWork, opts PipelineOptions) (*PipelineStats, error) {
	cluster = cluster.WithDefaults()
	opts = opts.withDefaults()
	if len(work) != cluster.NumGPUs {
		return nil, fmt.Errorf("sched: %d work entries for %d GPUs", len(work), cluster.NumGPUs)
	}
	if pl.NumGPUs != cluster.NumGPUs {
		return nil, fmt.Errorf("sched: placement has %d GPUs, cluster %d", pl.NumGPUs, cluster.NumGPUs)
	}
	sim := gpusim.NewSim(cluster)

	iterHandles := make([]dlrm.IterHandle, opts.Iterations)
	for i := 0; i < opts.Iterations; i++ {
		extra := make([][]gpusim.OpID, cluster.NumGPUs)
		for g := 0; g < cluster.NumGPUs; g++ {
			gates, err := addBatchPreproc(sim, g, i, work[g], iterHandles, opts)
			if err != nil {
				return nil, err
			}
			extra[g] = append(extra[g], gates...)
			if i > 0 {
				extra[g] = append(extra[g], iterHandles[i-1].End)
			}
		}
		h, err := cfg.AddIteration(sim, pl, i, extra)
		if err != nil {
			return nil, err
		}
		iterHandles[i] = h
	}

	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	stats := &PipelineStats{
		Result:           res,
		TrainOnlyLatency: cfg.IterationSoloLatency(pl, cluster.LinkGBs),
	}
	for i := range iterHandles {
		stats.IterEnds = append(stats.IterEnds, res.OpByID(iterHandles[i].End).End)
	}
	steadyIters := opts.Iterations - opts.Warmup
	steadyTime := stats.IterEnds[opts.Iterations-1] - stats.IterEnds[opts.Warmup-1]
	if steadyIters > 0 && steadyTime > 0 {
		stats.SteadyIterLatency = steadyTime / float64(steadyIters)
		globalBatch := float64(cfg.BatchSize) * float64(cluster.NumGPUs)
		stats.Throughput = globalBatch * float64(steadyIters) / (steadyTime * 1e-6)
	}
	return stats, nil
}

// addBatchPreproc schedules the preprocessing of batch i on GPU g and
// returns the ops the consuming iteration must wait for.
//
// Batch i is consumed by iteration i; its preprocessing co-runs with
// iteration i-1 (anchored to that iteration's stages). Data preparation
// for batch i serializes before batch i's kernels without interleaving,
// or overlaps batch i-1's kernels (anchored one iteration earlier) with
// §6.3 interleaving.
func addBatchPreproc(sim *gpusim.Sim, g, i int, w GPUWork, handles []dlrm.IterHandle, opts PipelineOptions) ([]gpusim.OpID, error) {
	prepStream := fmt.Sprintf("prep/g%d", g)
	preStream := fmt.Sprintf("pre/g%d", g)
	nextStream := 0
	kernelStream := func() string {
		if opts.PreprocStreams <= 1 {
			return preStream
		}
		s := fmt.Sprintf("%s/s%d", preStream, nextStream)
		nextStream = (nextStream + 1) % opts.PreprocStreams
		return s
	}
	last := gpusim.OpID(-1)

	// Anchors: kernels of batch i align with iteration i-1; interleaved
	// data preparation aligns with iteration i-2.
	kernelAnchor := func(stage int) []gpusim.OpID {
		if i == 0 {
			return nil
		}
		return handles[i-1].StageStartDeps[g][stage]
	}
	prepAnchor := func() []gpusim.OpID {
		if opts.Interleave {
			if i < 2 {
				return nil
			}
			return []gpusim.OpID{handles[i-2].End}
		}
		if i == 0 {
			return nil
		}
		return handles[i-1].StageStartDeps[g][0]
	}

	// Data preparation: host-side prep then H2D copy.
	var prepOps []gpusim.OpID
	if w.CPUPrepUs > 0 {
		id := sim.AddCPU(fmt.Sprintf("b%d/g%d/prep", i, g), w.CPUPrepUs, w.workers(),
			gpusim.WithStream(prepStream), gpusim.WithDeps(prepAnchor()...))
		prepOps = append(prepOps, id)
		last = id
	}
	if w.PrepBytes > 0 {
		id := sim.AddHostCopy(fmt.Sprintf("b%d/g%d/h2d", i, g), g, w.PrepBytes,
			gpusim.WithStream(prepStream), gpusim.WithDeps(prepAnchor()...))
		prepOps = append(prepOps, id)
		last = id
	}

	// CPU preprocessing: alone (TorchArrow) or concurrent with the GPU
	// kernels (hybrid §10 mode). It runs on its own stream so it never
	// serializes behind GPU kernels.
	var gates []gpusim.OpID
	if w.CPUPreprocUs > 0 {
		deps := append([]gpusim.OpID(nil), prepOps...)
		if i > 0 {
			// Pipeline the CPU work against the previous iteration.
			deps = append(deps, handles[i-1].StageStartDeps[g][0]...)
		}
		id := sim.AddCPU(fmt.Sprintf("b%d/g%d/cpu_preproc", i, g), w.CPUPreprocUs, w.workers(),
			gpusim.WithStream(fmt.Sprintf("cpupre/g%d", g)), gpusim.WithDeps(deps...))
		gates = append(gates, id)
		if w.Schedule == nil {
			return append(gates, finishCommGates(sim, g, i, w, id, preStream)...), nil
		}
	}

	if w.Schedule == nil {
		if last >= 0 {
			gates = append(gates, last)
		}
		return gates, nil
	}

	// GPU preprocessing kernels, serialized on the preprocessing stream,
	// each anchored to its assigned training stage.
	addKernel := func(spec interface{ Kernel() gpusim.Kernel }, deps []gpusim.OpID) gpusim.OpID {
		k := spec.Kernel()
		k.Name = fmt.Sprintf("b%d/g%d/%s", i, g, k.Name)
		return sim.AddKernel(g, k,
			gpusim.WithStream(kernelStream()),
			gpusim.WithDeps(deps...),
			gpusim.WithPriority(opts.PreprocPriority))
	}
	numStages := len(w.Schedule.PerStage)
	for s := 0; s < numStages; s++ {
		for _, spec := range w.Schedule.PerStage[s] {
			var deps []gpusim.OpID
			if opts.SequentialPreproc {
				if i > 0 {
					deps = append(deps, handles[i-1].End)
				}
			} else {
				deps = append(deps, kernelAnchor(s)...)
			}
			deps = append(deps, prepOps...)
			last = addKernel(spec, deps)
		}
	}
	for _, spec := range w.Schedule.Overflow {
		var deps []gpusim.OpID
		if opts.SequentialPreproc && i > 0 {
			deps = append(deps, handles[i-1].End)
		} else if !opts.SequentialPreproc && numStages > 0 {
			deps = append(deps, kernelAnchor(numStages-1)...)
		}
		deps = append(deps, prepOps...)
		last = addKernel(spec, deps)
	}
	return append(gates, finishCommGates(sim, g, i, w, last, preStream)...), nil
}

// finishCommGates appends the mapping-induced input communication after
// the batch's preprocessing, if any, returning the op(s) that gate the
// consuming iteration.
func finishCommGates(sim *gpusim.Sim, g, i int, w GPUWork, last gpusim.OpID, stream string) []gpusim.OpID {
	if w.InputCommBytes <= 0 {
		if last < 0 {
			return nil
		}
		return []gpusim.OpID{last}
	}
	var deps []gpusim.OpID
	if last >= 0 {
		deps = append(deps, last)
	}
	id := sim.AddLinkBusy(fmt.Sprintf("b%d/g%d/input_comm", i, g), g, w.InputCommBytes,
		gpusim.WithStream(stream), gpusim.WithDeps(deps...))
	return []gpusim.OpID{id}
}
