package sched

import (
	"fmt"

	"rap/internal/chaos"
	"rap/internal/dlrm"
	"rap/internal/gpusim"
	"rap/internal/topo"
)

// GPUWork is the per-GPU, per-batch preprocessing workload handed to the
// pipeline builder.
type GPUWork struct {
	// Schedule holds the GPU preprocessing kernels and their stage
	// assignment (nil means no GPU preprocessing on this GPU).
	Schedule *Schedule
	// InputCommBytes is cross-GPU input communication this GPU must
	// perform after preprocessing a batch (non-zero under mappings that
	// violate data locality, e.g. batch/data-parallel mapping).
	InputCommBytes float64
	// PrepBytes is the host-to-device copy volume of one raw batch.
	PrepBytes float64
	// CPUPrepUs is host-side data-preparation time per batch (memory
	// allocation, unpacking) preceding the copy.
	CPUPrepUs float64
	// CPUPreprocUs, when positive, replaces the GPU kernel schedule with
	// CPU-side preprocessing of that duration (the TorchArrow baseline).
	CPUPreprocUs float64
	// CPUWorkers is the host worker count used by CPU ops (default 8,
	// the paper's per-GPU TorchArrow worker count).
	CPUWorkers int
}

func (w GPUWork) workers() int {
	if w.CPUWorkers <= 0 {
		return 8
	}
	return w.CPUWorkers
}

// NoWarmup is the Warmup sentinel requesting zero warmup iterations
// (the zero value means "use the default of 2").
const NoWarmup = -1

// PipelineOptions controls pipeline construction.
type PipelineOptions struct {
	Iterations int
	// Warmup is the number of iterations excluded from steady-state
	// measurement. 0 means the default of 2; NoWarmup (or any negative
	// value) requests zero warmup. Always clamped to Iterations-1, so a
	// single-iteration run has no warmup and the steady-state window
	// falls back to the full run.
	Warmup int
	// Interleave enables §6.3 inter-batch workload interleaving: the
	// data preparation of batch n+1 overlaps the preprocessing kernels
	// of batch n instead of serializing before its own kernels.
	Interleave bool
	// SequentialPreproc exposes all preprocessing: kernels run between
	// iterations instead of co-running (the Sequential baseline).
	SequentialPreproc bool
	// PreprocPriority is the simulator priority of preprocessing kernels
	// (training runs at priority 1). Equal priority (1) models MPS-style
	// fair sharing; lower (0) models low-priority CUDA streams.
	PreprocPriority int
	// PreprocStreams is the number of concurrent preprocessing streams
	// (default 1). The handcrafted baselines launch kernels from several
	// worker streams at once, which is exactly what creates their GPU
	// resource contention (§8.2); kernels are distributed round-robin,
	// a slight over-approximation of the baselines' parallelism.
	PreprocStreams int
	// Chaos, when non-nil, applies the perturbation plan (capacity
	// windows + straggler inflation, see internal/chaos) to the built
	// pipeline DAG before simulation. A nil or empty plan leaves the
	// simulation bit-identical to an unperturbed run.
	Chaos *chaos.Plan
	// Topology, when non-nil, groups the cluster's GPUs into NVSwitch
	// nodes behind an oversubscribed inter-node fabric (internal/topo):
	// cross-node transfers and the cross-node share of collectives
	// additionally charge per-node fabric links. Nil — or a flat
	// topology — leaves the simulation bit-identical to an
	// untopologized run.
	Topology *topo.Topology
	// Engine selects the simulator event engine. The zero value keeps
	// the sequential engine; Engine.Shards > 1 opts into the sharded
	// parallel engine. Engine selection is a pure performance knob:
	// sharded results are bit-identical to sequential ones, so every
	// PipelineStats field is unchanged by it.
	Engine gpusim.EngineOptions
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Iterations <= 0 {
		o.Iterations = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 2
	} else if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Warmup >= o.Iterations {
		o.Warmup = o.Iterations - 1
	}
	if o.PreprocStreams <= 0 {
		o.PreprocStreams = 1
	}
	return o
}

// PipelineStats is the outcome of a pipelined training run.
type PipelineStats struct {
	Result *gpusim.Result
	// IterEnds[i] is the completion time of iteration i (µs).
	IterEnds []float64
	// SteadyIterLatency is the mean per-iteration latency after warmup.
	SteadyIterLatency float64
	// Throughput is global samples per second after warmup.
	Throughput float64
	// TrainOnlyLatency is the analytic contention-free iteration
	// latency, for exposed-overhead accounting.
	TrainOnlyLatency float64
}

// ExposedFraction is (steady latency − train-only latency) / train-only
// latency: how much preprocessing remained exposed.
func (p *PipelineStats) ExposedFraction() float64 {
	if p.TrainOnlyLatency <= 0 {
		return 0
	}
	f := (p.SteadyIterLatency - p.TrainOnlyLatency) / p.TrainOnlyLatency
	if f < 0 {
		return 0
	}
	return f
}

// BuildAndRun constructs the full pipelined DLRM-training +
// preprocessing DAG and simulates it. work must have one entry per GPU.
func BuildAndRun(cluster gpusim.ClusterConfig, cfg dlrm.Config, pl dlrm.Placement, work []GPUWork, opts PipelineOptions) (*PipelineStats, error) {
	cluster = cluster.WithDefaults()
	opts = opts.withDefaults()
	if len(work) != cluster.NumGPUs {
		return nil, fmt.Errorf("sched: %d work entries for %d GPUs", len(work), cluster.NumGPUs)
	}
	if pl.NumGPUs != cluster.NumGPUs {
		return nil, fmt.Errorf("sched: placement has %d GPUs, cluster %d", pl.NumGPUs, cluster.NumGPUs)
	}
	b, err := newPipelineBuilder(cluster, cfg, pl, work, opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.Iterations; i++ {
		if err := b.addIteration(i); err != nil {
			return nil, err
		}
	}
	if err := opts.Chaos.Apply(b.sim); err != nil {
		return nil, err
	}
	b.sim.SetEngineOptions(opts.Engine)

	res, err := b.sim.Run()
	if err != nil {
		return nil, err
	}
	stats := &PipelineStats{
		Result:           res,
		TrainOnlyLatency: cfg.IterationSoloLatency(pl, cluster.LinkGBs),
	}
	for i := range b.handles {
		stats.IterEnds = append(stats.IterEnds, res.OpByID(b.handles[i].End).End)
	}
	// Steady-state window: everything after the warmup iterations. With
	// no warmup (Iterations == 1) the window is the whole run measured
	// from t=0.
	steadyIters := opts.Iterations - opts.Warmup
	warmupEnd := 0.0
	if opts.Warmup > 0 {
		warmupEnd = stats.IterEnds[opts.Warmup-1]
	}
	steadyTime := stats.IterEnds[opts.Iterations-1] - warmupEnd
	if steadyIters > 0 && steadyTime > 0 {
		stats.SteadyIterLatency = steadyTime / float64(steadyIters)
		globalBatch := float64(cfg.BatchSize) * float64(cluster.NumGPUs)
		stats.Throughput = globalBatch * float64(steadyIters) / (steadyTime * 1e-6)
	}
	return stats, nil
}

// gpuStreams caches one GPU's simulator stream keys; deriving them once
// per run instead of once per (iteration × GPU) keeps string formatting
// out of DAG construction.
type gpuStreams struct {
	prep   string // data-preparation stream (host prep + H2D copy)
	pre    string // preprocessing kernel stream
	cpupre string // CPU-preprocessing stream (TorchArrow/hybrid mode)
	// kernel holds the round-robin kernel streams when PreprocStreams>1.
	kernel []string
}

// pipelineBuilder accumulates the pipelined training DAG for one run.
// It precomputes every structure identical across iterations — the
// per-GPU training-stage template (via dlrm.IterTemplate) and the
// per-GPU stream names — so adding iteration i derives only what
// actually depends on i. Callers that replay many pipelines per decision
// (capacity estimation, baselines, the experiment grids) construct
// hundreds of these DAGs per call, which made the per-iteration
// re-derivation measurable.
type pipelineBuilder struct {
	sim     *gpusim.Sim
	tmpl    *dlrm.IterTemplate
	work    []GPUWork
	opts    PipelineOptions
	streams []gpuStreams
	handles []dlrm.IterHandle
}

func newPipelineBuilder(cluster gpusim.ClusterConfig, cfg dlrm.Config, pl dlrm.Placement, work []GPUWork, opts PipelineOptions) (*pipelineBuilder, error) {
	tmpl, err := cfg.NewIterTemplate(pl)
	if err != nil {
		return nil, err
	}
	sim := gpusim.NewSim(cluster)
	// The topology must be installed before the first op: fabric demands
	// are resolved at add time.
	if err := sim.SetTopology(opts.Topology); err != nil {
		return nil, err
	}
	b := &pipelineBuilder{
		sim:     sim,
		tmpl:    tmpl,
		work:    work,
		opts:    opts,
		streams: make([]gpuStreams, cluster.NumGPUs),
		handles: make([]dlrm.IterHandle, 0, opts.Iterations),
	}
	for g := range b.streams {
		st := gpuStreams{
			prep:   fmt.Sprintf("prep/g%d", g),
			pre:    fmt.Sprintf("pre/g%d", g),
			cpupre: fmt.Sprintf("cpupre/g%d", g),
		}
		if opts.PreprocStreams > 1 {
			st.kernel = make([]string, opts.PreprocStreams)
			for i := range st.kernel {
				st.kernel[i] = fmt.Sprintf("%s/s%d", st.pre, i)
			}
		}
		b.streams[g] = st
	}
	return b, nil
}

// addIteration appends iteration i (batch preprocessing on every GPU
// plus the training stages consuming it) to the DAG.
func (b *pipelineBuilder) addIteration(i int) error {
	n := b.sim.Config().NumGPUs
	extra := make([][]gpusim.OpID, n)
	for g := 0; g < n; g++ {
		gates, err := b.addBatchPreproc(g, i)
		if err != nil {
			return err
		}
		extra[g] = append(extra[g], gates...)
		if i > 0 {
			extra[g] = append(extra[g], b.handles[i-1].End)
		}
	}
	h, err := b.tmpl.AddIteration(b.sim, i, extra)
	if err != nil {
		return err
	}
	b.handles = append(b.handles, h)
	return nil
}

// addBatchPreproc schedules the preprocessing of batch i on GPU g and
// returns the ops the consuming iteration must wait for.
//
// Batch i is consumed by iteration i; its preprocessing co-runs with
// iteration i-1 (anchored to that iteration's stages). Data preparation
// for batch i serializes before batch i's kernels without interleaving,
// or overlaps batch i-1's kernels (anchored one iteration earlier) with
// §6.3 interleaving.
func (b *pipelineBuilder) addBatchPreproc(g, i int) ([]gpusim.OpID, error) {
	sim, w, opts := b.sim, b.work[g], b.opts
	handles := b.handles
	ss := &b.streams[g]
	prefix := fmt.Sprintf("b%d/g%d/", i, g)
	nextStream := 0
	kernelStream := func() string {
		if opts.PreprocStreams <= 1 {
			return ss.pre
		}
		s := ss.kernel[nextStream]
		nextStream = (nextStream + 1) % opts.PreprocStreams
		return s
	}
	last := gpusim.OpID(-1)

	// Anchors: kernels of batch i align with iteration i-1; interleaved
	// data preparation aligns with iteration i-2.
	kernelAnchor := func(stage int) []gpusim.OpID {
		if i == 0 {
			return nil
		}
		return handles[i-1].StageStartDeps[g][stage]
	}
	prepAnchor := func() []gpusim.OpID {
		if opts.Interleave {
			if i < 2 {
				return nil
			}
			return []gpusim.OpID{handles[i-2].End}
		}
		if i == 0 {
			return nil
		}
		return handles[i-1].StageStartDeps[g][0]
	}

	// Data preparation: host-side prep then H2D copy.
	var prepOps []gpusim.OpID
	if w.CPUPrepUs > 0 {
		id := sim.AddCPU(prefix+"prep", w.CPUPrepUs, w.workers(),
			gpusim.WithStream(ss.prep), gpusim.WithDeps(prepAnchor()...))
		prepOps = append(prepOps, id)
		last = id
	}
	if w.PrepBytes > 0 {
		id := sim.AddHostCopy(prefix+"h2d", g, w.PrepBytes,
			gpusim.WithStream(ss.prep), gpusim.WithDeps(prepAnchor()...))
		prepOps = append(prepOps, id)
		last = id
	}

	// CPU preprocessing: alone (TorchArrow) or concurrent with the GPU
	// kernels (hybrid §10 mode). It runs on its own stream so it never
	// serializes behind GPU kernels.
	var gates []gpusim.OpID
	if w.CPUPreprocUs > 0 {
		deps := append([]gpusim.OpID(nil), prepOps...)
		if i > 0 {
			// Pipeline the CPU work against the previous iteration.
			deps = append(deps, handles[i-1].StageStartDeps[g][0]...)
		}
		id := sim.AddCPU(prefix+"cpu_preproc", w.CPUPreprocUs, w.workers(),
			gpusim.WithStream(ss.cpupre), gpusim.WithDeps(deps...))
		gates = append(gates, id)
		if w.Schedule == nil {
			return append(gates, b.finishCommGates(g, id, prefix)...), nil
		}
	}

	if w.Schedule == nil {
		// No GPU kernels and no CPU preprocessing on this GPU — but
		// mapping-induced input communication must still be scheduled
		// (and gate the consuming iteration): a no-preproc GPU under a
		// locality-violating mapping still receives its inputs over the
		// fabric.
		return append(gates, b.finishCommGates(g, last, prefix)...), nil
	}

	// GPU preprocessing kernels, serialized on the preprocessing stream,
	// each anchored to its assigned training stage.
	addKernel := func(spec interface{ Kernel() gpusim.Kernel }, deps []gpusim.OpID) gpusim.OpID {
		k := spec.Kernel()
		k.Name = prefix + k.Name
		return sim.AddKernel(g, k,
			gpusim.WithStream(kernelStream()),
			gpusim.WithDeps(deps...),
			gpusim.WithPriority(opts.PreprocPriority))
	}
	numStages := len(w.Schedule.PerStage)
	for s := 0; s < numStages; s++ {
		for _, spec := range w.Schedule.PerStage[s] {
			var deps []gpusim.OpID
			if opts.SequentialPreproc {
				if i > 0 {
					deps = append(deps, handles[i-1].End)
				}
			} else {
				deps = append(deps, kernelAnchor(s)...)
			}
			deps = append(deps, prepOps...)
			last = addKernel(spec, deps)
		}
	}
	for _, spec := range w.Schedule.Overflow {
		var deps []gpusim.OpID
		if opts.SequentialPreproc && i > 0 {
			deps = append(deps, handles[i-1].End)
		} else if !opts.SequentialPreproc && numStages > 0 {
			deps = append(deps, kernelAnchor(numStages-1)...)
		}
		deps = append(deps, prepOps...)
		last = addKernel(spec, deps)
	}
	return append(gates, b.finishCommGates(g, last, prefix)...), nil
}

// finishCommGates appends the mapping-induced input communication after
// the batch's preprocessing, if any, returning the op(s) that gate the
// consuming iteration.
func (b *pipelineBuilder) finishCommGates(g int, last gpusim.OpID, prefix string) []gpusim.OpID {
	w := b.work[g]
	if w.InputCommBytes <= 0 {
		if last < 0 {
			return nil
		}
		return []gpusim.OpID{last}
	}
	var deps []gpusim.OpID
	if last >= 0 {
		deps = append(deps, last)
	}
	id := b.sim.AddLinkBusy(prefix+"input_comm", g, w.InputCommBytes,
		gpusim.WithStream(b.streams[g].pre), gpusim.WithDeps(deps...))
	return []gpusim.OpID{id}
}
