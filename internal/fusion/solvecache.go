package fusion

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"rap/internal/milp"
)

// SolveCache memoizes MILP fusion solutions by the content of the
// flattened problem. The branch & bound is deterministic — the same
// (types, deps, horizon, budget) always yields the same solution — so a
// hit returns exactly what a fresh solve would, and callers sharing a
// cache across plans (the replanning loop) skip the search entirely.
// Safe for concurrent use.
type SolveCache struct {
	mu      sync.Mutex
	entries map[string]milp.Solution // guarded by mu
	hits    int                      // guarded by mu
	misses  int                      // guarded by mu
}

// NewSolveCache returns an empty solve cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{entries: map[string]milp.Solution{}}
}

// Stats reports the cache's hit/miss counts.
func (c *SolveCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// solveKey is the deep content hash of everything the solver reads.
// Workers is deliberately excluded: the parallel solver is bit-identical
// to the sequential one, so the worker count must not fragment the
// cache.
func solveKey(p milp.Problem) string {
	h := sha256.New()
	fmt.Fprintf(h, "horizon %d maxnodes %d\n", p.Horizon, p.MaxNodes)
	for i, t := range p.Types {
		fmt.Fprintf(h, "%d:%d deps", i, t)
		for _, d := range p.Deps[i] {
			fmt.Fprintf(h, " %d", d)
		}
		fmt.Fprintf(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// lookup returns the cached solution for key, copying the steps so the
// caller cannot alias the stored slice.
func (c *SolveCache) lookup(key string) (milp.Solution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sol, ok := c.entries[key]
	if !ok {
		c.misses++
		return milp.Solution{}, false
	}
	c.hits++
	sol.Step = append([]int(nil), sol.Step...)
	return sol, true
}

// store copies the solution into the cache.
func (c *SolveCache) store(key string, sol milp.Solution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sol.Step = append([]int(nil), sol.Step...)
	c.entries[key] = sol
}
