package fusion

import (
	"reflect"
	"testing"

	"rap/internal/preproc"
)

// TestPlanFusionDeterministic guards the raplint maporder invariant:
// two back-to-back fusion plans over the same graphs must be deeply
// equal — same steps, same kernel order, same op grouping.
func TestPlanFusionDeterministic(t *testing.T) {
	p := preproc.MustStandardPlan(1, nil)
	shape := preproc.Shape{Samples: 4096, AvgListLen: 3}

	a, err := PlanFusion(p.Graphs, shape, Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFusion(p.Graphs, shape, Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fusion plans differ between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPlanFusionScaledDeterministic repeats the check with per-graph
// shapes, the path the RAP mapping uses.
func TestPlanFusionScaledDeterministic(t *testing.T) {
	p := preproc.SkewedPlan(6, nil)
	items := make([]ScaledGraph, len(p.Graphs))
	for i, g := range p.Graphs {
		items[i] = ScaledGraph{Graph: g, Shape: preproc.Shape{Samples: 1024 * (1 + i%3), AvgListLen: 3}}
	}
	a, err := PlanFusionScaled(items, Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFusionScaled(items, Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scaled fusion plans differ between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}
