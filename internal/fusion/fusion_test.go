package fusion

import (
	"reflect"
	"strings"
	"testing"

	"rap/internal/preproc"
)

var shape = preproc.Shape{Samples: 4096, AvgListLen: 3}

func chain(name, col string, hash int64) *preproc.Graph {
	return &preproc.Graph{
		Name: name,
		Ops: []preproc.Op{
			preproc.NewFillNullSparse(name+"/fn", col, col+".fn", 0),
			preproc.NewSigridHash(name+"/sh", col+".fn", col+".sh", hash),
			preproc.NewFirstX(name+"/fx", col+".sh", col+".fx", 10),
		},
	}
}

func TestBuildProblemFlattens(t *testing.T) {
	g1, g2 := chain("a", "cat_0", 100), chain("b", "cat_1", 100)
	prob, refs, err := BuildProblem([]*preproc.Graph{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 6 || len(prob.Types) != 6 {
		t.Fatalf("flattened %d ops", len(refs))
	}
	// Graph b's first op has no deps; its second depends on index 3.
	if len(prob.Deps[3]) != 0 || len(prob.Deps[4]) != 1 || prob.Deps[4][0] != 3 {
		t.Fatalf("cross-graph deps wrong: %v", prob.Deps)
	}
}

func TestBuildProblemValidates(t *testing.T) {
	bad := &preproc.Graph{Name: "cyc", Ops: []preproc.Op{
		preproc.NewCast("a", "y", "x"),
		preproc.NewCast("b", "x", "y"),
	}}
	if _, _, err := BuildProblem([]*preproc.Graph{bad}); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestPlanFusionMergesAcrossGraphs(t *testing.T) {
	graphs := []*preproc.Graph{
		chain("a", "cat_0", 100), chain("b", "cat_1", 100),
		chain("c", "cat_2", 100), chain("d", "cat_3", 100),
	}
	plan, err := PlanFusion(graphs, shape, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumOps != 12 {
		t.Fatalf("NumOps = %d", plan.NumOps)
	}
	// Identical chains fuse level-wise: 3 kernels instead of 12.
	if plan.NumKernels != 3 {
		t.Fatalf("NumKernels = %d, want 3", plan.NumKernels)
	}
	if plan.MaxFusionDegree() != 4 {
		t.Fatalf("MaxFusionDegree = %d, want 4", plan.MaxFusionDegree())
	}
	if !plan.Optimal {
		t.Fatal("small instance should be optimal")
	}
	// Objective: 3 steps × 4² = 48.
	if plan.Objective != 48 {
		t.Fatalf("objective = %d, want 48", plan.Objective)
	}
	// Fused kernel names carry type and degree.
	k := plan.Kernels()
	if len(k) != 3 || !strings.Contains(k[0].Name, "x4") {
		t.Fatalf("kernels = %v", k)
	}
}

func TestPlanFusionRespectsDependencies(t *testing.T) {
	graphs := []*preproc.Graph{chain("a", "cat_0", 100)}
	plan, err := PlanFusion(graphs, shape, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A pure chain cannot fuse at all.
	if plan.NumKernels != 3 || plan.MaxFusionDegree() != 1 {
		t.Fatalf("chain plan: kernels=%d degree=%d", plan.NumKernels, plan.MaxFusionDegree())
	}
	// Step order follows the chain.
	for i := 1; i < len(plan.Steps); i++ {
		if plan.Steps[i].Index <= plan.Steps[i-1].Index {
			t.Fatal("steps out of order")
		}
	}
}

func TestPlanFusionDisabled(t *testing.T) {
	graphs := []*preproc.Graph{chain("a", "cat_0", 100), chain("b", "cat_1", 100)}
	plan, err := PlanFusion(graphs, shape, Options{Disable: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumKernels != 6 || plan.MaxFusionDegree() != 1 {
		t.Fatalf("disabled fusion: kernels=%d degree=%d", plan.NumKernels, plan.MaxFusionDegree())
	}
	// Unfused total latency strictly exceeds the fused plan's.
	fused, err := PlanFusion(graphs, shape, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fused.TotalSoloLatency() >= plan.TotalSoloLatency() {
		t.Fatalf("fusion saved nothing: %f vs %f", fused.TotalSoloLatency(), plan.TotalSoloLatency())
	}
}

func TestPlanFusionGreedyOnly(t *testing.T) {
	graphs := []*preproc.Graph{chain("a", "cat_0", 100), chain("b", "cat_1", 100)}
	plan, err := PlanFusion(graphs, shape, Options{GreedyOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Identical chains: greedy already fuses level-wise.
	if plan.NumKernels != 3 {
		t.Fatalf("greedy kernels = %d", plan.NumKernels)
	}
}

func TestPlanFusionEmpty(t *testing.T) {
	plan, err := PlanFusion(nil, shape, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumOps != 0 || len(plan.Kernels()) != 0 {
		t.Fatal("empty plan not empty")
	}
}

func TestPlanFusionOnStandardPlans(t *testing.T) {
	for idx := 0; idx < 3; idx++ {
		p := preproc.MustStandardPlan(idx, nil)
		plan, err := PlanFusion(p.Graphs, p.Shape(4096), Options{MaxNodes: 20000})
		if err != nil {
			t.Fatalf("plan %d: %v", idx, err)
		}
		if plan.NumOps != p.NumOps() {
			t.Fatalf("plan %d: ops %d != %d", idx, plan.NumOps, p.NumOps())
		}
		if plan.NumKernels >= plan.NumOps {
			t.Fatalf("plan %d: no compression (%d kernels for %d ops)", idx, plan.NumKernels, plan.NumOps)
		}
		// Element conservation: fused kernels carry every op's elements.
		var fusedEl, rawEl float64
		for _, k := range plan.Kernels() {
			fusedEl += k.Elements
		}
		shape := p.Shape(4096)
		for _, g := range p.Graphs {
			for _, s := range g.Specs(shape) {
				rawEl += s.Elements
			}
		}
		if diff := fusedEl - rawEl; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("plan %d: elements not conserved: %f vs %f", idx, fusedEl, rawEl)
		}
	}
}

func TestPlanFusionConflictResolution(t *testing.T) {
	// Two graphs with opposite FirstX/SigridHash order (the §6.1
	// conflict): fusion must still produce a valid plan and fuse the
	// FillNull heads.
	gA := &preproc.Graph{Name: "A", Ops: []preproc.Op{
		preproc.NewFillNullSparse("A/fn", "cat_0", "a.fn", 0),
		preproc.NewFirstX("A/fx", "a.fn", "a.fx", 10),
		preproc.NewSigridHash("A/sh", "a.fx", "a.sh", 100),
	}}
	gB := &preproc.Graph{Name: "B", Ops: []preproc.Op{
		preproc.NewFillNullSparse("B/fn", "cat_1", "b.fn", 0),
		preproc.NewSigridHash("B/sh", "b.fn", "b.sh", 100),
		preproc.NewFirstX("B/fx", "b.sh", "b.fx", 10),
	}}
	plan, err := PlanFusion([]*preproc.Graph{gA, gB}, shape, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 6 ops; FillNulls fuse; at most one of (FirstX, SigridHash) pairs
	// can fuse (the conflict) -> at least 4, at most 5 kernels.
	if plan.NumKernels < 4 || plan.NumKernels > 5 {
		t.Fatalf("conflict plan kernels = %d", plan.NumKernels)
	}
	foundFNFusion := false
	for _, s := range plan.Steps {
		for i, ids := range s.OpIDs {
			if len(ids) == 2 && s.Kernels[i].Type == preproc.OpFillNull {
				foundFNFusion = true
			}
		}
	}
	if !foundFNFusion {
		t.Fatal("FillNull heads did not fuse")
	}
}

func TestSolveCacheHitMatchesFreshSolve(t *testing.T) {
	graphs := []*preproc.Graph{
		chain("a", "cat_0", 100), chain("b", "cat_1", 100),
		chain("c", "cat_2", 100), chain("d", "cat_3", 100),
	}
	cache := NewSolveCache()
	first, err := PlanFusion(graphs, shape, Options{SolveCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first solve: hits=%d misses=%d", h, m)
	}
	second, err := PlanFusion(graphs, shape, Options{SolveCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := cache.Stats(); h != 1 {
		t.Fatalf("second solve missed the cache (hits=%d)", h)
	}
	fresh, err := PlanFusion(graphs, shape, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Plan{second, fresh} {
		if !reflect.DeepEqual(first.Steps, p.Steps) ||
			first.Objective != p.Objective || first.Optimal != p.Optimal {
			t.Fatal("cached plan differs from fresh solve")
		}
	}
}

func TestSolveCacheKeyCoversBudget(t *testing.T) {
	graphs := []*preproc.Graph{chain("a", "cat_0", 100), chain("b", "cat_1", 100)}
	cache := NewSolveCache()
	if _, err := PlanFusion(graphs, shape, Options{SolveCache: cache}); err != nil {
		t.Fatal(err)
	}
	// A different node budget is a different problem; it must not hit.
	if _, err := PlanFusion(graphs, shape, Options{SolveCache: cache, MaxNodes: 17}); err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 0 || m != 2 {
		t.Fatalf("budget change hit the cache: hits=%d misses=%d", h, m)
	}
}
