// Package fusion implements RAP's resource-aware horizontal kernel
// fusion (§6): it formulates the fusion of the preprocessing operators
// mapped to one GPU as the §6.2 MILP, solves it with internal/milp, and
// lowers the solution into an ordered sequence of fused kernel specs.
// The resource-aware *sharding* of oversized fused kernels happens in
// the scheduler (internal/sched), using preproc.KernelSpec.Shard.
package fusion

import (
	"fmt"
	"sort"

	"rap/internal/milp"
	"rap/internal/preproc"
)

// Options tunes the fusion planner.
type Options struct {
	// Disable turns fusion off entirely (each op becomes its own
	// kernel) — the "RAP w/o fusion" ablation of Figure 10.
	Disable bool
	// Horizon / MaxNodes / Workers forward to the MILP solver (0 =
	// defaults). Workers only changes solver wall-clock, never the
	// returned plan (the parallel solver is bit-identical); 1 forces
	// the sequential search.
	Horizon  int
	MaxNodes int
	Workers  int
	// GreedyOnly skips branch & bound and uses the level greedy — the
	// fallback for very large per-GPU op sets.
	GreedyOnly bool
	// SolveCache, when non-nil, memoizes branch & bound solutions by
	// problem content so repeated instances (the replanning loop) skip
	// the search. Hits return exactly what a fresh solve would.
	SolveCache *SolveCache
}

// Step is one fused time step: at most one fused kernel per op type.
type Step struct {
	Index   int
	Kernels []preproc.KernelSpec
	// OpIDs lists, aligned with Kernels, the original operator ids fused
	// into each kernel.
	OpIDs [][]string
}

// Plan is the ordered fusion plan of one GPU's preprocessing workload.
type Plan struct {
	Steps []Step
	// Objective is the achieved MILP objective (Σ fusion-degree²).
	Objective int64
	// Optimal reports whether the MILP search completed.
	Optimal bool
	// NumOps / NumKernels summarize the compression.
	NumOps     int
	NumKernels int
}

// Kernels flattens the plan into the launch-ordered kernel sequence.
func (p *Plan) Kernels() []preproc.KernelSpec {
	var out []preproc.KernelSpec
	for _, s := range p.Steps {
		out = append(out, s.Kernels...)
	}
	return out
}

// TotalSoloLatency sums the solo latency of every fused kernel.
//
//rap:unit return us
func (p *Plan) TotalSoloLatency() float64 {
	t := 0.0
	for _, s := range p.Steps {
		for _, k := range s.Kernels {
			t += k.SoloLatency()
		}
	}
	return t
}

// MaxFusionDegree returns the largest number of ops fused into one
// kernel.
func (p *Plan) MaxFusionDegree() int {
	max := 0
	for _, s := range p.Steps {
		for _, ids := range s.OpIDs {
			if len(ids) > max {
				max = len(ids)
			}
		}
	}
	return max
}

// opRef ties a flattened MILP variable back to its graph op.
type opRef struct {
	graph *preproc.Graph
	idx   int
}

// BuildProblem flattens the ops of all graphs into one MILP instance:
// dependencies only exist within a graph, so ops of different graphs are
// freely fusible (more same-structure graphs on a GPU → more fusion
// opportunity, §3's joint-optimization observation).
func BuildProblem(graphs []*preproc.Graph) (milp.Problem, []opRef, error) {
	var refs []opRef
	var types []int
	var deps [][]int
	base := 0
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			return milp.Problem{}, nil, err
		}
		gdeps := g.Deps()
		for i, op := range g.Ops {
			refs = append(refs, opRef{graph: g, idx: i})
			types = append(types, int(op.Type()))
			ds := make([]int, len(gdeps[i]))
			for j, d := range gdeps[i] {
				ds[j] = base + d
			}
			deps = append(deps, ds)
		}
		base += len(g.Ops)
	}
	return milp.Problem{Types: types, Deps: deps}, refs, nil
}

// ScaledGraph pairs a graph with the data shape it processes on this
// GPU (mappings may give different graphs different sample counts, e.g.
// batch-parallel mapping splits samples across GPUs).
type ScaledGraph struct {
	Graph *preproc.Graph
	Shape preproc.Shape
}

// PlanFusion computes the horizontal-fusion plan for the graphs mapped
// to one GPU, all processing the same shape.
//
//rap:deterministic
func PlanFusion(graphs []*preproc.Graph, shape preproc.Shape, opts Options) (*Plan, error) {
	items := make([]ScaledGraph, len(graphs))
	for i, g := range graphs {
		items[i] = ScaledGraph{Graph: g, Shape: shape}
	}
	return PlanFusionScaled(items, opts)
}

// PlanFusionScaled is PlanFusion with per-graph shapes.
//
//rap:deterministic
func PlanFusionScaled(items []ScaledGraph, opts Options) (*Plan, error) {
	graphs := make([]*preproc.Graph, len(items))
	shapes := map[*preproc.Graph]preproc.Shape{}
	for i, it := range items {
		graphs[i] = it.Graph
		shapes[it.Graph] = it.Shape
	}
	prob, refs, err := BuildProblem(graphs)
	if err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return &Plan{Optimal: true}, nil
	}

	var steps []int
	var objective int64
	optimal := false
	switch {
	case opts.Disable:
		// Every op at its own step, ordered topologically.
		order, err := topoOf(prob)
		if err != nil {
			return nil, err
		}
		steps = make([]int, len(refs))
		for pos, op := range order {
			steps[op] = pos
		}
		objective = milp.Objective(prob.Types, steps)
	case opts.GreedyOnly:
		sol, err := milp.GreedyLevels(prob)
		if err != nil {
			return nil, err
		}
		steps, objective = sol.Step, sol.Objective
	default:
		prob.Horizon = opts.Horizon
		prob.MaxNodes = opts.MaxNodes
		if prob.MaxNodes == 0 {
			prob.MaxNodes = budgetFor(len(refs))
		}
		prob.Workers = opts.Workers
		var key string
		var sol milp.Solution
		var cached bool
		if opts.SolveCache != nil {
			key = solveKey(prob)
			sol, cached = opts.SolveCache.lookup(key)
		}
		if !cached {
			sol, err = milp.Solve(prob)
			if err != nil {
				return nil, err
			}
			if opts.SolveCache != nil {
				opts.SolveCache.store(key, sol)
			}
		}
		steps, objective, optimal = sol.Step, sol.Objective, sol.Optimal
	}
	if err := milp.Validate(milp.Problem{Types: prob.Types, Deps: prob.Deps}, steps); err != nil {
		return nil, fmt.Errorf("fusion: internal: solver produced invalid steps: %w", err)
	}

	// Lower (step, type) groups into fused kernels.
	type groupKey struct {
		step int
		ty   preproc.OpType
	}
	groups := map[groupKey][]int{}
	for i := range refs {
		op := refs[i].graph.Ops[refs[i].idx]
		k := groupKey{steps[i], op.Type()}
		groups[k] = append(groups[k], i)
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].step != keys[b].step {
			return keys[a].step < keys[b].step
		}
		return keys[a].ty < keys[b].ty
	})

	plan := &Plan{Objective: objective, Optimal: optimal, NumOps: len(refs)}
	stepIdx := map[int]int{}
	for _, k := range keys {
		members := groups[k]
		var fused preproc.KernelSpec
		var ids []string
		for j, m := range members {
			op := refs[m].graph.Ops[refs[m].idx]
			spec := op.Spec(shapes[refs[m].graph])
			if j == 0 {
				fused = spec
			} else {
				fused = fused.MustFuse(spec)
			}
			ids = append(ids, op.ID())
		}
		fused.Name = fmt.Sprintf("fused/%s@s%d x%d", k.ty, k.step, len(members))
		si, ok := stepIdx[k.step]
		if !ok {
			si = len(plan.Steps)
			stepIdx[k.step] = si
			plan.Steps = append(plan.Steps, Step{Index: k.step})
		}
		plan.Steps[si].Kernels = append(plan.Steps[si].Kernels, fused)
		plan.Steps[si].OpIDs = append(plan.Steps[si].OpIDs, ids)
		plan.NumKernels++
	}
	return plan, nil
}

// budgetFor scales the default search budget down for large instances so
// planning time stays bounded (a time-limited MILP run, as with Gurobi).
func budgetFor(n int) int {
	switch {
	case n <= 30:
		return milp.DefaultMaxNodes
	case n <= 80:
		return 400_000
	case n <= 200:
		return 120_000
	default:
		return 40_000
	}
}

// topoOf returns a topological order of the flattened problem.
func topoOf(p milp.Problem) ([]int, error) {
	n := len(p.Types)
	indeg := make([]int, n)
	children := make([][]int, n)
	for i, ds := range p.Deps {
		for _, d := range ds {
			indeg[i]++
			children[d] = append(children[d], i)
		}
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("fusion: cycle in flattened problem")
	}
	return order, nil
}
