package chaos

import (
	"reflect"
	"testing"

	"rap/internal/gpusim"
	"rap/internal/topo"
)

// fabricDAG builds a 2-node × 2-GPU DAG with cross-node traffic.
func fabricDAG(t *testing.T) *gpusim.Sim {
	t.Helper()
	s := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 8})
	tp := topo.Uniform(2, 2)
	tp.FabricGBs = 200
	if err := s.SetTopology(tp); err != nil {
		t.Fatal(err)
	}
	s.AddComm("x", 0, 2, 1e6)
	s.AddComm("y", 1, 3, 1e6)
	return s
}

// TestFabricWindowApply: a fabric window slows cross-node flows and is
// valid only against a multi-node simulation.
func TestFabricWindowApply(t *testing.T) {
	base, err := fabricDAG(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{Fabric: []FabricWindow{
		{Node: 0, T0: 0, T1: 1e9, Scale: 0.3},
		{Node: 1, T0: 0, T1: 1e9, Scale: 0.3},
	}}
	if p.Empty() {
		t.Fatal("fabric-only plan misreported as empty")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := fabricDAG(t)
	if err := p.Apply(s); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Makespan > base.Makespan) {
		t.Fatalf("fabric windows did not stretch the run: %g <= %g", res.Makespan, base.Makespan)
	}

	// Scale-1 windows are skipped and perturb nothing.
	inert := &Plan{Fabric: []FabricWindow{{Node: 0, T0: 0, T1: 10, Scale: 1}}}
	s = fabricDAG(t)
	if err := inert.Apply(s); err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatal("scale-1 fabric window perturbed the result")
	}

	// Against a flat simulation, Apply surfaces the missing fabric.
	flat := testDAG()
	if err := p.Apply(flat); err == nil {
		t.Fatal("fabric window accepted on a flat simulation")
	}

	bad := &Plan{Fabric: []FabricWindow{{Node: 0, T0: 10, T1: 10, Scale: 0.5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty fabric interval accepted")
	}
}

// TestNewPlanFabric: multi-node scenarios generate fabric windows;
// flat scenarios generate byte-identical plans to the pre-fabric
// generator (no variate drift).
func TestNewPlanFabric(t *testing.T) {
	flatSc := Scenario{NumGPUs: 8, HorizonUs: 10000, Severity: 0.6}
	nodeSc := flatSc
	nodeSc.NumNodes = 4

	flat, err := NewPlan(3, flatSc)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Fabric) != 0 {
		t.Fatalf("flat scenario generated %d fabric windows", len(flat.Fabric))
	}
	multi, err := NewPlan(3, nodeSc)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Fabric) == 0 {
		t.Fatal("multi-node scenario generated no fabric windows")
	}
	for _, w := range multi.Fabric {
		if w.Node < 0 || w.Node >= 4 || !(w.T1 > w.T0) || !(w.Scale >= 0 && w.Scale <= 1) {
			t.Fatalf("fabric window out of spec: %+v", w)
		}
	}
	if err := multi.Validate(); err != nil {
		t.Fatal(err)
	}
	// Everything before the fabric draws is shared with the flat plan.
	if !reflect.DeepEqual(flat.Throttle, multi.Throttle) ||
		!reflect.DeepEqual(flat.Link, multi.Link) ||
		!reflect.DeepEqual(flat.HostStall, multi.HostStall) {
		t.Fatal("adding NumNodes shifted the legacy window draws")
	}
	// Fabric windows show up in the trace annotations.
	if got, want := len(multi.Spans()), len(multi.Throttle)+len(multi.Link)+len(multi.HostStall)+len(multi.Fabric); got != want {
		t.Fatalf("got %d spans, want %d", got, want)
	}
}
