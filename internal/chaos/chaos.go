// Package chaos is a seeded, fully deterministic perturbation-injection
// layer for the gpusim simulator. A Plan describes timed adverse
// conditions — GPU throttle windows (SM/DRAM capacity scaled down),
// link degradation windows, host CPU stalls, and kernel straggler
// inflation — and applies them to a built simulation DAG as
// time-varying resource capacities (gpusim capacity windows) plus
// deterministic work inflation.
//
// Everything is reproducible: plans are either written out literally or
// generated from a seed via math/rand.New (never the global source),
// and applying the same plan to the same DAG twice yields bit-identical
// Results. An empty Plan applies nothing and leaves the simulation
// bit-identical to an unperturbed run.
//
// The layer exists to answer the question the happy-path simulator
// cannot: how gracefully do RAP's resource-aware co-running plans —
// versus the Sequential/MPS/CUDA-stream baselines — degrade when the
// hardware misbehaves (multi-tenant contention, thermal throttling,
// degraded fabrics; cf. the multi-tenant GPU simulation literature).
package chaos

import (
	"fmt"
	"math/rand"

	"rap/internal/gpusim"
	"rap/internal/trace"
)

// ThrottleWindow scales one GPU's compute and memory capacity during
// [T0, T1) µs — thermal or power throttling, or an unmodeled co-tenant.
type ThrottleWindow struct {
	GPU    int
	T0, T1 float64 //rap:unit us
	// SMScale and MemScale are the remaining capacity fractions in
	// [0,1]; 1 leaves the resource untouched.
	SMScale, MemScale float64
}

// LinkWindow scales one GPU's NVLink bandwidth (both directions) during
// [T0, T1) µs — a degraded or congested fabric.
type LinkWindow struct {
	GPU    int
	T0, T1 float64 //rap:unit us
	Scale  float64
}

// HostStallWindow shrinks the host CPU pool during [T0, T1) µs — page
// cache pressure, co-located jobs, or a storage stall starving the
// data-preparation workers.
type HostStallWindow struct {
	T0, T1 float64 //rap:unit us
	Scale  float64
}

// FabricWindow scales one NVSwitch node's inter-node fabric link during
// [T0, T1) µs — spine congestion from co-located tenants or a flapping
// optical link. It only makes sense against a simulation carrying a
// multi-node topology (gpusim.SetTopology); Apply fails otherwise.
type FabricWindow struct {
	Node   int
	T0, T1 float64 //rap:unit us
	Scale  float64
}

// StragglerSpec inflates the work of a deterministic, seed-selected
// subset of GPU kernels — the straggler kernels every large fleet sees.
type StragglerSpec struct {
	// Prob is the per-kernel selection probability in [0,1]; 0 disables
	// injection.
	Prob float64
	// Factor multiplies a selected kernel's work (> 1 inflates).
	Factor float64
}

// Plan is one deterministic perturbation scenario. The zero value is
// the empty plan: applying it is a no-op and perturbs nothing, not even
// a result bit.
type Plan struct {
	// Seed drives straggler selection at Apply time; for generated
	// plans it records the generator seed.
	Seed      int64
	Throttle  []ThrottleWindow
	Link      []LinkWindow
	HostStall []HostStallWindow
	Fabric    []FabricWindow
	Straggler StragglerSpec
}

// Empty reports whether applying the plan would perturb nothing.
func (p *Plan) Empty() bool {
	return p == nil ||
		(len(p.Throttle) == 0 && len(p.Link) == 0 && len(p.HostStall) == 0 &&
			len(p.Fabric) == 0 && p.Straggler.Prob <= 0)
}

// Validate checks window intervals and scales without needing a target
// simulator (GPU indices are validated against the cluster at Apply).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	iv := func(kind string, t0, t1, scale float64) error {
		if !(t1 > t0) {
			return fmt.Errorf("chaos: %s window has empty interval [%g,%g)", kind, t0, t1)
		}
		if !(scale >= 0 && scale <= 1) {
			return fmt.Errorf("chaos: %s window scale %g outside [0,1]", kind, scale)
		}
		return nil
	}
	for _, w := range p.Throttle {
		if err := iv("throttle", w.T0, w.T1, w.SMScale); err != nil {
			return err
		}
		if !(w.MemScale >= 0 && w.MemScale <= 1) {
			return fmt.Errorf("chaos: throttle window mem scale %g outside [0,1]", w.MemScale)
		}
	}
	for _, w := range p.Link {
		if err := iv("link", w.T0, w.T1, w.Scale); err != nil {
			return err
		}
	}
	for _, w := range p.HostStall {
		if err := iv("host-stall", w.T0, w.T1, w.Scale); err != nil {
			return err
		}
	}
	for _, w := range p.Fabric {
		if err := iv("fabric", w.T0, w.T1, w.Scale); err != nil {
			return err
		}
	}
	if !(p.Straggler.Prob >= 0 && p.Straggler.Prob <= 1) {
		return fmt.Errorf("chaos: straggler probability %g outside [0,1]", p.Straggler.Prob)
	}
	if p.Straggler.Prob > 0 && !(p.Straggler.Factor > 0) {
		return fmt.Errorf("chaos: straggler factor %g must be positive", p.Straggler.Factor)
	}
	return nil
}

// Apply injects the plan into a built simulation: capacity windows for
// every throttle/link/host-stall entry, then straggler inflation over
// the DAG's kernels. It must be called after the DAG is fully
// constructed (straggler selection walks the existing ops) and before
// sim.Run. Applying an empty plan is a no-op.
//
//rap:deterministic
func (p *Plan) Apply(sim *gpusim.Sim) error {
	if p.Empty() {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	for _, w := range p.Throttle {
		if w.SMScale < 1 {
			if err := sim.AddCapacityWindow(gpusim.ResSM, w.GPU, w.T0, w.T1, w.SMScale); err != nil {
				return err
			}
		}
		if w.MemScale < 1 {
			if err := sim.AddCapacityWindow(gpusim.ResMemBW, w.GPU, w.T0, w.T1, w.MemScale); err != nil {
				return err
			}
		}
	}
	for _, w := range p.Link {
		if w.Scale >= 1 {
			continue
		}
		if err := sim.AddCapacityWindow(gpusim.ResLinkOut, w.GPU, w.T0, w.T1, w.Scale); err != nil {
			return err
		}
		if err := sim.AddCapacityWindow(gpusim.ResLinkIn, w.GPU, w.T0, w.T1, w.Scale); err != nil {
			return err
		}
	}
	for _, w := range p.HostStall {
		if w.Scale >= 1 {
			continue
		}
		if err := sim.AddCapacityWindow(gpusim.ResHostCPU, 0, w.T0, w.T1, w.Scale); err != nil {
			return err
		}
	}
	for _, w := range p.Fabric {
		if w.Scale >= 1 {
			continue
		}
		if err := sim.AddCapacityWindow(gpusim.ResFabric, w.Node, w.T0, w.T1, w.Scale); err != nil {
			return err
		}
	}
	if p.Straggler.Prob > 0 {
		if _, err := sim.InjectStragglers(p.Seed, p.Straggler.Prob, p.Straggler.Factor); err != nil {
			return err
		}
	}
	return nil
}

// Spans renders the plan's perturbation windows as chrome-trace
// annotation spans, so a trace shows *why* an iteration stretched.
func (p *Plan) Spans() []trace.Span {
	if p == nil {
		return nil
	}
	var out []trace.Span
	for _, w := range p.Throttle {
		out = append(out, trace.Span{
			Name:  fmt.Sprintf("throttle sm×%.2f mem×%.2f", w.SMScale, w.MemScale),
			Cat:   "chaos",
			GPU:   w.GPU,
			Start: w.T0,
			End:   w.T1,
		})
	}
	for _, w := range p.Link {
		out = append(out, trace.Span{
			Name:  fmt.Sprintf("link×%.2f", w.Scale),
			Cat:   "chaos",
			GPU:   w.GPU,
			Start: w.T0,
			End:   w.T1,
		})
	}
	for _, w := range p.HostStall {
		out = append(out, trace.Span{
			Name:  fmt.Sprintf("host-stall×%.2f", w.Scale),
			Cat:   "chaos",
			GPU:   -1,
			Start: w.T0,
			End:   w.T1,
		})
	}
	for _, w := range p.Fabric {
		out = append(out, trace.Span{
			Name:  fmt.Sprintf("fabric[node %d]×%.2f", w.Node, w.Scale),
			Cat:   "chaos",
			GPU:   -1,
			Start: w.T0,
			End:   w.T1,
		})
	}
	return out
}

// Scenario parameterizes NewPlan's randomized plan generation.
type Scenario struct {
	// NumGPUs is the cluster size windows target.
	NumGPUs int
	// HorizonUs is the simulated time span the windows cover; pick the
	// expected makespan (windows never start after it).
	HorizonUs float64 //rap:unit us
	// Severity in [0,1] scales both how many windows the plan carries
	// and how deep they cut. 0 yields the empty plan.
	Severity float64
	// NumNodes, when > 1, additionally targets the inter-node fabric
	// links of a multi-node topology with FabricWindows. Zero (the old
	// zero value) or 1 generates none, so pre-topology scenarios yield
	// byte-identical plans.
	NumNodes int
}

// NewPlan builds a randomized perturbation plan from a seed: window
// placement, depth, and straggler selection all derive from
// math/rand.New(rand.NewSource(seed)), so the same (seed, scenario)
// always yields the identical plan.
//
//rap:deterministic
func NewPlan(seed int64, sc Scenario) (*Plan, error) {
	if sc.NumGPUs < 1 {
		return nil, fmt.Errorf("chaos: scenario needs at least 1 GPU, got %d", sc.NumGPUs)
	}
	if sc.Severity < 0 {
		sc.Severity = 0
	}
	if sc.Severity > 1 {
		sc.Severity = 1
	}
	p := &Plan{Seed: seed}
	if sc.Severity <= 0 {
		return p, nil
	}
	if !(sc.HorizonUs > 0) {
		return nil, fmt.Errorf("chaos: scenario horizon %g must be positive", sc.HorizonUs)
	}
	rng := rand.New(rand.NewSource(seed))
	sev := sc.Severity
	// window draws one [t0,t1) covering a severity-scaled slice of the
	// horizon.
	window := func() (t0, t1 float64) {
		dur := (0.05 + 0.25*rng.Float64()) * sev * sc.HorizonUs
		t0 = rng.Float64() * (sc.HorizonUs - dur)
		return t0, t0 + dur
	}
	// depth draws a remaining-capacity scale: deeper cuts at higher
	// severity, never below 1-0.7·sev.
	depth := func() float64 {
		return 1 - sev*(0.3+0.4*rng.Float64())
	}

	nThrottle := 1 + int(sev*float64(2*sc.NumGPUs)+0.5)
	for i := 0; i < nThrottle; i++ {
		t0, t1 := window()
		p.Throttle = append(p.Throttle, ThrottleWindow{
			GPU:      rng.Intn(sc.NumGPUs),
			T0:       t0,
			T1:       t1,
			SMScale:  depth(),
			MemScale: depth(),
		})
	}
	nLink := int(sev*float64(sc.NumGPUs) + 0.5)
	for i := 0; i < nLink; i++ {
		t0, t1 := window()
		p.Link = append(p.Link, LinkWindow{
			GPU:   rng.Intn(sc.NumGPUs),
			T0:    t0,
			T1:    t1,
			Scale: depth(),
		})
	}
	nHost := 1 + int(sev*2+0.5)
	for i := 0; i < nHost; i++ {
		t0, t1 := window()
		p.HostStall = append(p.HostStall, HostStallWindow{T0: t0, T1: t1, Scale: depth()})
	}
	// Fabric windows draw after every legacy window kind so a scenario
	// with NumNodes ≤ 1 consumes exactly the historical variate sequence.
	if sc.NumNodes > 1 {
		nFabric := 1 + int(sev*float64(sc.NumNodes)+0.5)
		for i := 0; i < nFabric; i++ {
			t0, t1 := window()
			p.Fabric = append(p.Fabric, FabricWindow{
				Node:  rng.Intn(sc.NumNodes),
				T0:    t0,
				T1:    t1,
				Scale: depth(),
			})
		}
	}
	p.Straggler = StragglerSpec{
		Prob:   0.05 + 0.20*sev,
		Factor: 1 + sev*(0.5+rng.Float64()),
	}
	return p, nil
}
