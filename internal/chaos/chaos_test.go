package chaos

import (
	"math"
	"reflect"
	"testing"

	"rap/internal/gpusim"
)

// testDAG builds a small mixed DAG exercising kernels, comm, host
// copies and CPU ops on a 2-GPU cluster.
func testDAG() *gpusim.Sim {
	s := gpusim.NewSim(gpusim.ClusterConfig{NumGPUs: 2, HostCores: 8})
	for i := 0; i < 12; i++ {
		s.AddKernel(i%2, gpusim.Kernel{
			Name:   "k",
			Work:   20 + float64(i),
			Demand: gpusim.Demand{SM: 0.5, MemBW: 0.3},
			Tag:    "train",
		})
	}
	s.AddComm("x", 0, 1, 1e6)
	s.AddHostCopy("h", 0, 1e5)
	s.AddCPU("p", 50, 4)
	return s
}

func testPlan(seed int64) *Plan {
	return &Plan{
		Seed: seed,
		Throttle: []ThrottleWindow{
			{GPU: 0, T0: 10, T1: 60, SMScale: 0.5, MemScale: 0.7},
			{GPU: 1, T0: 20, T1: 90, SMScale: 0.6, MemScale: 1},
		},
		Link:      []LinkWindow{{GPU: 0, T0: 0, T1: 40, Scale: 0.4}},
		HostStall: []HostStallWindow{{T0: 5, T1: 50, Scale: 0.5}},
		Straggler: StragglerSpec{Prob: 0.4, Factor: 2},
	}
}

// TestApplyDeterministic is the chaos counterpart of the
// mapping/sched/fusion determinism tests: back-to-back runs of the same
// seeded plan on the same DAG must produce deeply-equal Results.
func TestApplyDeterministic(t *testing.T) {
	run := func() *gpusim.Result {
		s := testDAG()
		if err := testPlan(7).Apply(s); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("perturbed results differ between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestEmptyPlanIsNoOp: applying an empty (or nil) plan must leave the
// simulation bit-identical to an unperturbed run.
func TestEmptyPlanIsNoOp(t *testing.T) {
	plain := testDAG()
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	perturbed := testDAG()
	var empty Plan
	if err := empty.Apply(perturbed); err != nil {
		t.Fatal(err)
	}
	var nilPlan *Plan
	if err := nilPlan.Apply(perturbed); err != nil {
		t.Fatal(err)
	}
	got, err := perturbed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("empty plan perturbed the result")
	}
	if !empty.Empty() || !nilPlan.Empty() {
		t.Fatal("Empty() misreports the empty plan")
	}
	if testPlan(1).Empty() {
		t.Fatal("Empty() misreports a populated plan")
	}
}

func TestApplySlowsExecution(t *testing.T) {
	plain := testDAG()
	base, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	perturbed := testDAG()
	if err := testPlan(7).Apply(perturbed); err != nil {
		t.Fatal(err)
	}
	res, err := perturbed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= base.Makespan {
		t.Fatalf("perturbation did not stretch the run: %g <= %g", res.Makespan, base.Makespan)
	}
}

func TestNewPlanDeterministicAndSeverity(t *testing.T) {
	sc := Scenario{NumGPUs: 4, HorizonUs: 10000, Severity: 0.6}
	a, err := NewPlan(11, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(11, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed built different plans:\n%+v\nvs\n%+v", a, b)
	}
	c, err := NewPlan(12, sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds built identical plans")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if a.Empty() {
		t.Fatal("severity 0.6 built an empty plan")
	}
	for _, w := range a.Throttle {
		if w.T0 < 0 || w.T1 > sc.HorizonUs || w.SMScale < 0.3-1e-9 {
			t.Fatalf("throttle window out of spec: %+v", w)
		}
	}
	zero, err := NewPlan(11, Scenario{NumGPUs: 4, HorizonUs: 10000, Severity: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !zero.Empty() {
		t.Fatal("severity 0 must build the empty plan")
	}
	if _, err := NewPlan(1, Scenario{NumGPUs: 0, HorizonUs: 100, Severity: 0.5}); err == nil {
		t.Fatal("NumGPUs 0 accepted")
	}
	if _, err := NewPlan(1, Scenario{NumGPUs: 2, Severity: 0.5}); err == nil {
		t.Fatal("zero horizon accepted at positive severity")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []*Plan{
		{Throttle: []ThrottleWindow{{GPU: 0, T0: 10, T1: 10, SMScale: 0.5, MemScale: 1}}},
		{Throttle: []ThrottleWindow{{GPU: 0, T0: 0, T1: 10, SMScale: 1.5, MemScale: 1}}},
		{Throttle: []ThrottleWindow{{GPU: 0, T0: 0, T1: 10, SMScale: 0.5, MemScale: math.NaN()}}},
		{Link: []LinkWindow{{GPU: 0, T0: 5, T1: 4, Scale: 0.5}}},
		{HostStall: []HostStallWindow{{T0: 0, T1: 10, Scale: -0.1}}},
		{Straggler: StragglerSpec{Prob: 2, Factor: 2}},
		{Straggler: StragglerSpec{Prob: 0.5, Factor: 0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: expected validation error", i)
		}
	}
	// Apply surfaces GPU indices outside the target cluster.
	s := testDAG()
	oob := &Plan{Throttle: []ThrottleWindow{{GPU: 5, T0: 0, T1: 10, SMScale: 0.5, MemScale: 1}}}
	if err := oob.Apply(s); err == nil {
		t.Error("out-of-cluster GPU accepted at Apply")
	}
}

func TestSpans(t *testing.T) {
	p := testPlan(1)
	spans := p.Spans()
	want := len(p.Throttle) + len(p.Link) + len(p.HostStall)
	if len(spans) != want {
		t.Fatalf("got %d spans, want %d", len(spans), want)
	}
	for _, sp := range spans {
		if sp.Cat != "chaos" || !(sp.End > sp.Start) {
			t.Fatalf("bad span: %+v", sp)
		}
	}
	hostSeen := false
	for _, sp := range spans {
		if sp.GPU < 0 {
			hostSeen = true
		}
	}
	if !hostSeen {
		t.Fatal("host stall span missing host-row placement")
	}
	if (*Plan)(nil).Spans() != nil {
		t.Fatal("nil plan must yield no spans")
	}
}
