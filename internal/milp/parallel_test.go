package milp

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProblem builds a random DAG instance large enough to take the
// parallel path (n >= parallelMinOps).
func randomProblem(seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	n := parallelMinOps + rng.Intn(24)
	types := make([]int, n)
	deps := make([][]int, n)
	for i := 0; i < n; i++ {
		types[i] = rng.Intn(4)
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.15 {
				deps[i] = append(deps[i], j)
			}
		}
	}
	// A modest budget keeps exhausted instances cheap while still
	// exercising the sequential-fallback path on the larger DAGs.
	return Problem{Types: types, Deps: deps, MaxNodes: 50_000}
}

// TestSolveParallelMatchesSequential is the equivalence contract of the
// parallel solver: across 64 random seeds, Step, Objective and Optimal
// must be bit-identical to the sequential reference. Nodes is excluded
// by design (weaker warm starts in the subtree workers prune less).
func TestSolveParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		p := randomProblem(seed)
		seq, err := SolveSequential(p)
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		for _, workers := range []int{0, 2, 3, 7} {
			p.Workers = workers
			par, err := Solve(p)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(par.Step, seq.Step) || par.Objective != seq.Objective || par.Optimal != seq.Optimal {
				t.Fatalf("seed %d workers %d: parallel (obj %d, opt %v, steps %v) != sequential (obj %d, opt %v, steps %v)",
					seed, workers, par.Objective, par.Optimal, par.Step,
					seq.Objective, seq.Optimal, seq.Step)
			}
			if err := Validate(p, par.Step); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
		}
	}
}

// TestSolveParallelDeterministic double-runs the parallel solver: the
// full Solution (including Nodes — per-subtree budgets make node
// accounting scheduling-independent) must be identical run to run.
func TestSolveParallelDeterministic(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		p := randomProblem(seed)
		p.Workers = 4
		a, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: nondeterministic parallel solve: %+v vs %+v", seed, a, b)
		}
	}
}

// TestSolveParallelRootPrune pins the greedy-already-optimal shortcut:
// independent same-type ops fuse maximally at step 0, the root bound
// equals the greedy objective, and the fan-out never happens.
func TestSolveParallelRootPrune(t *testing.T) {
	n := parallelMinOps
	p := Problem{Types: make([]int, n), Deps: make([][]int, n), Workers: 4}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * int64(n); sol.Objective != want {
		t.Fatalf("objective = %d, want %d", sol.Objective, want)
	}
	if !sol.Optimal || sol.Nodes != 1 {
		t.Fatalf("root prune not taken: %+v", sol)
	}
}

// TestSolveParallelBudgetIndependentOfWorkers pins the per-subtree
// budget rule: under a tight node budget the merged solution must not
// depend on the worker count.
func TestSolveParallelBudgetIndependentOfWorkers(t *testing.T) {
	p := randomProblem(3)
	p.MaxNodes = 200
	var ref Solution
	for i, workers := range []int{2, 3, 5, 8} {
		p.Workers = workers
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = sol
			continue
		}
		if !reflect.DeepEqual(sol, ref) {
			t.Fatalf("workers %d: %+v differs from %+v", workers, sol, ref)
		}
	}
}
