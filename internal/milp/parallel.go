package milp

import (
	"runtime"
	"sync"
)

// parallelMinOps is the instance size below which the fan-out overhead
// outweighs the parallel search; smaller problems run sequentially.
// The cutover is invisible in results: both paths return bit-identical
// solutions.
const parallelMinOps = 16

// maxWorkers caps the auto-sized worker pool: root fan-out produces at
// most `horizon` subtrees, and horizons in this repo are small, so a
// large pool would only idle.
const maxWorkers = 16

// effectiveWorkers resolves Problem.Workers against the machine and the
// root fan-out width. The worker count never influences the returned
// solution — only wall-clock — so sizing from GOMAXPROCS is safe for
// the determinism contract.
func effectiveWorkers(requested, horizon int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > maxWorkers {
			w = maxWorkers
		}
	}
	if w > horizon {
		w = horizon
	}
	return w
}

// parallel runs the branch & bound with the root level fanned out to a
// worker pool: the first op in topological order is pinned to each
// feasible step t, and each resulting subtree is searched independently
// by a sequential solver warm-started with the greedy incumbent and
// given the full node budget.
//
// Why the merged result is bit-identical to the sequential solver when
// the search completes: the sequential dfs explores root candidates in
// ascending step order (all (type, step) fusion counts are zero at the
// root, so the most-promising-first sort leaves candidates ascending —
// and candidate ordering depends only on path state, never on the
// incumbent), carrying its incumbent from one subtree into the next,
// and only ever replacing the incumbent on a strict objective
// improvement. Pruning (bound <= incumbent) never discards a strictly
// improving solution, so within one subtree the solver always returns
// the first solution in dfs order that attains the subtree's maximum
// objective, no matter how strong its starting incumbent was. Folding
// the per-subtree results together in root-candidate order with the
// same strict-improvement rule therefore reproduces the sequential
// incumbent chain exactly: ties keep the earlier candidate, which is
// the deterministic (objective, lexicographically-smaller first step)
// preference.
//
// Budget exhaustion is where the two searches could diverge: the
// sequential solver shares one budget across subtrees while each
// worker here gets the full budget. The merged result is therefore
// accepted only when the sequential run provably completes: every
// subtree finished optimally AND the total explored nodes fit the
// budget. (At every corresponding dfs point the sequential incumbent
// is >= the worker's greedy-started incumbent, so the sequential
// search visits a subset of each worker's nodes — its total is at most
// 1 + Σ worker nodes.) When completion cannot be proven, Solve falls
// back to the sequential solver, so budget-truncated results are also
// bit-identical to SolveSequential. Nodes is the only field that may
// differ (weaker warm starts prune less, and the fallback adds the
// speculative parallel exploration to the count); per-worker full
// budgets keep even Nodes independent of the worker count.
func (sr *search) parallel(workers int) Solution {
	root := sr.newSolver()
	root.nodes = 1 // the root node, as in the sequential dfs

	// Replicate the sequential root-node bound check: when the greedy
	// warm start is already provably optimal there is nothing to fan
	// out.
	if root.bound(0, 0) <= root.bestObj {
		return Solution{Step: root.best, Objective: root.bestObj, Optimal: true, Nodes: root.nodes}
	}

	op := sr.order[0] // indegree 0, so its minimum step is 0
	ty := sr.p.Types[op]
	cands := make([]int, sr.horizon)
	for t := range cands {
		cands[t] = t
	}

	type subtreeResult struct {
		best    []int
		bestObj int64
		nodes   int
		optimal bool
	}
	results := make([]subtreeResult, len(cands))

	// Race the sequential search alongside the fan-out: if the merge
	// below cannot prove the shared-budget run completes, its result is
	// the answer, and starting it now means the fallback costs no extra
	// wall-clock — budget-exhausted instances take sequential time
	// instead of fan-out time plus sequential time. When the merge is
	// provably complete the racer's result is discarded unread (it
	// terminates on its own, within the same budget).
	seqCh := make(chan Solution, 1)
	go func() {
		seqCh <- sr.sequential()
	}()

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, t := range cands {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, t int) {
			defer func() { <-sem; wg.Done() }()
			s := sr.newSolver()
			s.steps[op] = t
			s.counts[[2]int{ty, t}] = 1
			s.maxCount[ty] = 1
			s.dfs(1, 1) // delta of the first placement: 1² - 0²
			results[i] = subtreeResult{best: s.best, bestObj: s.bestObj, nodes: s.nodes, optimal: s.optimal}
		}(i, t)
	}
	wg.Wait()

	merged := Solution{
		Step:      append([]int(nil), sr.greedy.Step...),
		Objective: sr.greedy.Objective,
		Optimal:   true,
		Nodes:     root.nodes,
	}
	for _, r := range results {
		merged.Nodes += r.nodes
		if !r.optimal {
			merged.Optimal = false
		}
		if r.bestObj > merged.Objective {
			merged.Objective = r.bestObj
			merged.Step = r.best
		}
	}
	if merged.Optimal && merged.Nodes <= sr.maxNodes {
		return merged
	}

	// Sequential completion is not provable: the shared-budget search
	// may truncate differently than the per-subtree fan-out did, so
	// defer to the racer outright. The speculative parallel nodes stay
	// in the count — they were explored — which keeps Nodes
	// deterministic and worker-independent.
	seq := <-seqCh
	seq.Nodes += merged.Nodes - 1 // the root node is in both counts
	return seq
}
