// Package milp solves the horizontal-fusion integer program of RAP §6.2
// (the role Gurobi plays in the paper's artifact).
//
// The formulation: N preprocessing operations are assigned to time steps
// through a binary matrix F where F[i][t]=1 means op i executes at step
// t. Constraints: every op takes exactly one step (Eq. 1) and an op
// executes strictly after everything it depends on (Eq. 2). Operations
// of the same type assigned to the same step fuse into one kernel, and
// the objective maximizes Σ_type Σ_t (Σ_{i∈type} F[i][t])² — the sum of
// squared fusion degrees (Eqs. 3-4).
//
// The solver is an exact branch & bound over step assignments in
// topological order with an admissible clustering bound, warm-started by
// the level-greedy solution (fuse same-type ops sharing an ASAP level,
// always feasible since equal levels imply incomparability). Within the
// configured horizon the result is provably optimal; if the node budget
// is exhausted the incumbent is returned with Optimal=false — mirroring
// how a time-limited MILP solver behaves. Solve fans the root-level
// subtrees out to a deterministic worker pool (see parallel.go); the
// returned solution is bit-identical to the sequential search for every
// worker count.
package milp

import (
	"errors"
	"fmt"
	"sort"
)

// Problem is one fusion MILP instance.
type Problem struct {
	// Types assigns each op a fusion group id (the operator type); ops
	// may only fuse within a type.
	Types []int
	// Deps lists, per op, the ops it depends on (Eq. 2 pairs).
	Deps [][]int
	// Horizon bounds the number of time steps explored. 0 selects
	// critical-path length + DefaultSlack, which is enough for every
	// plan in this repo and keeps the search exact. A positive horizon
	// below the critical-path length is infeasible and rejected with
	// ErrInfeasibleHorizon.
	Horizon int
	// MaxNodes bounds the branch & bound search (0 = DefaultMaxNodes).
	// The parallel solver speculatively grants each root subtree the
	// full budget and falls back to the sequential search whenever it
	// cannot prove the shared-budget run completes, so budget-truncated
	// results are identical for every worker count.
	MaxNodes int
	// Workers selects the solver parallelism: 0 picks a machine-sized
	// default, 1 forces the sequential solver, n > 1 caps the worker
	// pool. The returned Step/Objective/Optimal are bit-identical for
	// every setting; only Nodes (explored-node accounting) differs
	// between the sequential and parallel searches.
	Workers int
}

// ErrInfeasibleHorizon reports a caller-set Horizon smaller than the
// dependency critical path: no feasible step assignment exists within
// it. (Solve used to silently widen the horizon and then claim
// Optimal=true for a horizon the caller never asked for.)
var ErrInfeasibleHorizon = errors.New("milp: horizon below dependency critical path")

// DefaultSlack is the extra horizon beyond the critical path explored by
// default. Delaying an op past its ASAP level is exactly what lets
// conflicting fusion chains resolve (see TestSolveBeatsGreedy).
const DefaultSlack = 3

// DefaultMaxNodes is the default search-node budget.
const DefaultMaxNodes = 2_000_000

// Solution is the solver output.
type Solution struct {
	// Step[i] is the time step of op i.
	Step []int
	// Objective is Σ_type Σ_t degree², the fusion objective value.
	Objective int64
	// Optimal reports whether the search completed within budget.
	Optimal bool
	// Nodes is the number of branch & bound nodes explored.
	Nodes int
}

// Objective evaluates the fusion objective for a step assignment.
func Objective(types, steps []int) int64 {
	counts := map[[2]int]int64{}
	for i, ty := range types {
		counts[[2]int{ty, steps[i]}]++
	}
	var obj int64
	for _, c := range counts {
		obj += c * c
	}
	return obj
}

// Validate checks a step assignment against the problem constraints
// (Eq. 1 is implicit in the representation; Eq. 2 is the ordering).
func Validate(p Problem, steps []int) error {
	if len(steps) != len(p.Types) {
		return fmt.Errorf("milp: %d steps for %d ops", len(steps), len(p.Types))
	}
	for i, s := range steps {
		if s < 0 {
			return fmt.Errorf("milp: op %d at negative step %d", i, s)
		}
		for _, d := range p.Deps[i] {
			if steps[d] >= s {
				return fmt.Errorf("milp: op %d (step %d) does not follow its dependency %d (step %d)",
					i, s, d, steps[d])
			}
		}
	}
	return nil
}

// topoOrder returns a topological order of the dependency DAG.
func topoOrder(deps [][]int) ([]int, error) {
	n := len(deps)
	indeg := make([]int, n)
	children := make([][]int, n)
	for i, ds := range deps {
		for _, d := range ds {
			if d < 0 || d >= n {
				return nil, fmt.Errorf("milp: op %d depends on unknown op %d", i, d)
			}
			indeg[i]++
			children[d] = append(children[d], i)
		}
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("milp: dependency cycle")
	}
	return order, nil
}

// asapLevels computes each op's earliest step.
func asapLevels(deps [][]int, order []int) []int {
	levels := make([]int, len(deps))
	for _, i := range order {
		for _, d := range deps[i] {
			if levels[d]+1 > levels[i] {
				levels[i] = levels[d] + 1
			}
		}
	}
	return levels
}

// GreedyLevels returns the warm-start solution: every op at its ASAP
// level. Ops of one type sharing a level are incomparable (a dependency
// path strictly increases the level), so this is always feasible.
//
//rap:deterministic
func GreedyLevels(p Problem) (Solution, error) {
	if err := checkShape(p); err != nil {
		return Solution{}, err
	}
	order, err := topoOrder(p.Deps)
	if err != nil {
		return Solution{}, err
	}
	steps := asapLevels(p.Deps, order)
	return Solution{Step: steps, Objective: Objective(p.Types, steps), Optimal: false}, nil
}

func checkShape(p Problem) error {
	if len(p.Types) != len(p.Deps) {
		return fmt.Errorf("milp: %d types for %d dep lists", len(p.Types), len(p.Deps))
	}
	return nil
}

// search holds the immutable, shareable state of one branch & bound
// run: the problem, its topological order, the resolved horizon and
// node budget, the greedy warm start, and the per-position remaining
// same-type op counts used by the admissible bound. Workers read it
// concurrently; nothing in it is mutated after prepare returns.
type search struct {
	p         Problem
	order     []int
	horizon   int
	maxNodes  int
	greedy    Solution
	remaining []map[int]int64
}

// prepare validates the problem and builds the shared search state.
func prepare(p Problem) (*search, error) {
	if err := checkShape(p); err != nil {
		return nil, err
	}
	n := len(p.Types)
	order, err := topoOrder(p.Deps)
	if err != nil {
		return nil, err
	}
	asap := asapLevels(p.Deps, order)
	cp := 0
	for _, l := range asap {
		if l+1 > cp {
			cp = l + 1
		}
	}
	if p.Horizon > 0 && p.Horizon < cp {
		return nil, fmt.Errorf("milp: horizon %d cannot hold the %d-step critical path: %w",
			p.Horizon, cp, ErrInfeasibleHorizon)
	}
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = cp + DefaultSlack
	}
	maxNodes := p.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	greedy, err := GreedyLevels(p)
	if err != nil {
		return nil, err
	}

	// Remaining same-type op counts from each position in the topo
	// order, for the admissible bound.
	remaining := make([]map[int]int64, n+1)
	remaining[n] = map[int]int64{}
	for k := n - 1; k >= 0; k-- {
		m := make(map[int]int64, len(remaining[k+1]))
		for ty, c := range remaining[k+1] {
			m[ty] = c
		}
		m[p.Types[order[k]]]++
		remaining[k] = m
	}
	return &search{p: p, order: order, horizon: horizon, maxNodes: maxNodes,
		greedy: greedy, remaining: remaining}, nil
}

// newSolver builds a fresh mutable solver over the shared state, warm
// started with the greedy incumbent.
func (sr *search) newSolver() *solver {
	return &solver{
		p: sr.p, order: sr.order, horizon: sr.horizon, maxNodes: sr.maxNodes,
		remaining: sr.remaining,
		steps:     make([]int, len(sr.p.Types)),
		counts:    map[[2]int]int64{},
		maxCount:  map[int]int64{},
		bestObj:   sr.greedy.Objective,
		best:      append([]int(nil), sr.greedy.Step...),
		optimal:   true,
	}
}

// Solve runs the branch & bound, fanning the root-level subtrees out to
// a worker pool unless Workers forces the sequential path. The solution
// is bit-identical to SolveSequential for every worker count — see
// solveParallel for the argument.
//
//rap:deterministic
func Solve(p Problem) (Solution, error) {
	sr, err := prepare(p)
	if err != nil {
		return Solution{}, err
	}
	if len(p.Types) == 0 {
		return Solution{Step: []int{}, Optimal: true}, nil
	}
	if workers := effectiveWorkers(p.Workers, sr.horizon); workers > 1 && len(p.Types) >= parallelMinOps {
		return sr.parallel(workers), nil
	}
	return sr.sequential(), nil
}

// SolveSequential runs the single-threaded branch & bound regardless of
// Problem.Workers — the reference the parallel solver is equivalence-
// tested against (and the pre-parallelism Solve behaviour).
//
//rap:deterministic
func SolveSequential(p Problem) (Solution, error) {
	sr, err := prepare(p)
	if err != nil {
		return Solution{}, err
	}
	if len(p.Types) == 0 {
		return Solution{Step: []int{}, Optimal: true}, nil
	}
	return sr.sequential(), nil
}

func (sr *search) sequential() Solution {
	s := sr.newSolver()
	s.dfs(0, 0)
	return Solution{Step: s.best, Objective: s.bestObj, Optimal: s.optimal, Nodes: s.nodes}
}

type solver struct {
	p         Problem
	order     []int
	horizon   int
	maxNodes  int
	nodes     int
	remaining []map[int]int64

	steps    []int
	counts   map[[2]int]int64 // (type, step) -> fusion degree
	maxCount map[int]int64    // type -> max degree so far (for the bound)

	best    []int
	bestObj int64
	optimal bool
}

// bound returns an admissible upper bound on the objective reachable
// from position k with current partial objective obj: every remaining op
// of a type could, at best, join that type's largest group.
func (s *solver) bound(k int, obj int64) int64 {
	b := obj
	for ty, r := range s.remaining[k] {
		g := s.maxCount[ty]
		b += (g+r)*(g+r) - g*g
	}
	return b
}

func (s *solver) dfs(k int, obj int64) {
	if s.nodes >= s.maxNodes {
		s.optimal = false
		return
	}
	s.nodes++
	if k == len(s.order) {
		if obj > s.bestObj {
			s.bestObj = obj
			copy(s.best, s.steps)
		}
		return
	}
	if s.bound(k, obj) <= s.bestObj {
		return
	}
	op := s.order[k]
	minStep := 0
	for _, d := range s.p.Deps[op] {
		if s.steps[d]+1 > minStep {
			minStep = s.steps[d] + 1
		}
	}
	if minStep >= s.horizon {
		return // infeasible branch under this horizon
	}
	ty := s.p.Types[op]

	// Candidate steps, most promising first: join the largest existing
	// same-type group, then earliest-first.
	cands := make([]int, 0, s.horizon-minStep)
	for t := minStep; t < s.horizon; t++ {
		cands = append(cands, t)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca := s.counts[[2]int{ty, cands[a]}]
		cb := s.counts[[2]int{ty, cands[b]}]
		if ca != cb {
			return ca > cb
		}
		return cands[a] < cands[b]
	})

	for _, t := range cands {
		key := [2]int{ty, t}
		c := s.counts[key]
		delta := (c+1)*(c+1) - c*c
		s.counts[key] = c + 1
		prevMax := s.maxCount[ty]
		if c+1 > prevMax {
			s.maxCount[ty] = c + 1
		}
		s.steps[op] = t
		s.dfs(k+1, obj+delta)
		s.counts[key] = c
		s.maxCount[ty] = prevMax
		if s.nodes >= s.maxNodes {
			s.optimal = false
			return
		}
	}
}
