// Package milp solves the horizontal-fusion integer program of RAP §6.2
// (the role Gurobi plays in the paper's artifact).
//
// The formulation: N preprocessing operations are assigned to time steps
// through a binary matrix F where F[i][t]=1 means op i executes at step
// t. Constraints: every op takes exactly one step (Eq. 1) and an op
// executes strictly after everything it depends on (Eq. 2). Operations
// of the same type assigned to the same step fuse into one kernel, and
// the objective maximizes Σ_type Σ_t (Σ_{i∈type} F[i][t])² — the sum of
// squared fusion degrees (Eqs. 3-4).
//
// The solver is an exact branch & bound over step assignments in
// topological order with an admissible clustering bound, warm-started by
// the level-greedy solution (fuse same-type ops sharing an ASAP level,
// always feasible since equal levels imply incomparability). Within the
// configured horizon the result is provably optimal; if the node budget
// is exhausted the incumbent is returned with Optimal=false — mirroring
// how a time-limited MILP solver behaves.
package milp

import (
	"fmt"
	"sort"
)

// Problem is one fusion MILP instance.
type Problem struct {
	// Types assigns each op a fusion group id (the operator type); ops
	// may only fuse within a type.
	Types []int
	// Deps lists, per op, the ops it depends on (Eq. 2 pairs).
	Deps [][]int
	// Horizon bounds the number of time steps explored. 0 selects
	// critical-path length + DefaultSlack, which is enough for every
	// plan in this repo and keeps the search exact.
	Horizon int
	// MaxNodes bounds the branch & bound search (0 = DefaultMaxNodes).
	MaxNodes int
}

// DefaultSlack is the extra horizon beyond the critical path explored by
// default. Delaying an op past its ASAP level is exactly what lets
// conflicting fusion chains resolve (see TestSolveBeatsGreedy).
const DefaultSlack = 3

// DefaultMaxNodes is the default search-node budget.
const DefaultMaxNodes = 2_000_000

// Solution is the solver output.
type Solution struct {
	// Step[i] is the time step of op i.
	Step []int
	// Objective is Σ_type Σ_t degree², the fusion objective value.
	Objective int64
	// Optimal reports whether the search completed within budget.
	Optimal bool
	// Nodes is the number of branch & bound nodes explored.
	Nodes int
}

// Objective evaluates the fusion objective for a step assignment.
func Objective(types, steps []int) int64 {
	counts := map[[2]int]int64{}
	for i, ty := range types {
		counts[[2]int{ty, steps[i]}]++
	}
	var obj int64
	for _, c := range counts {
		obj += c * c
	}
	return obj
}

// Validate checks a step assignment against the problem constraints
// (Eq. 1 is implicit in the representation; Eq. 2 is the ordering).
func Validate(p Problem, steps []int) error {
	if len(steps) != len(p.Types) {
		return fmt.Errorf("milp: %d steps for %d ops", len(steps), len(p.Types))
	}
	for i, s := range steps {
		if s < 0 {
			return fmt.Errorf("milp: op %d at negative step %d", i, s)
		}
		for _, d := range p.Deps[i] {
			if steps[d] >= s {
				return fmt.Errorf("milp: op %d (step %d) does not follow its dependency %d (step %d)",
					i, s, d, steps[d])
			}
		}
	}
	return nil
}

// topoOrder returns a topological order of the dependency DAG.
func topoOrder(deps [][]int) ([]int, error) {
	n := len(deps)
	indeg := make([]int, n)
	children := make([][]int, n)
	for i, ds := range deps {
		for _, d := range ds {
			if d < 0 || d >= n {
				return nil, fmt.Errorf("milp: op %d depends on unknown op %d", i, d)
			}
			indeg[i]++
			children[d] = append(children[d], i)
		}
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("milp: dependency cycle")
	}
	return order, nil
}

// asapLevels computes each op's earliest step.
func asapLevels(deps [][]int, order []int) []int {
	levels := make([]int, len(deps))
	for _, i := range order {
		for _, d := range deps[i] {
			if levels[d]+1 > levels[i] {
				levels[i] = levels[d] + 1
			}
		}
	}
	return levels
}

// GreedyLevels returns the warm-start solution: every op at its ASAP
// level. Ops of one type sharing a level are incomparable (a dependency
// path strictly increases the level), so this is always feasible.
//
//rap:deterministic
func GreedyLevels(p Problem) (Solution, error) {
	if err := checkShape(p); err != nil {
		return Solution{}, err
	}
	order, err := topoOrder(p.Deps)
	if err != nil {
		return Solution{}, err
	}
	steps := asapLevels(p.Deps, order)
	return Solution{Step: steps, Objective: Objective(p.Types, steps), Optimal: false}, nil
}

func checkShape(p Problem) error {
	if len(p.Types) != len(p.Deps) {
		return fmt.Errorf("milp: %d types for %d dep lists", len(p.Types), len(p.Deps))
	}
	return nil
}

// Solve runs the branch & bound.
//
//rap:deterministic
func Solve(p Problem) (Solution, error) {
	if err := checkShape(p); err != nil {
		return Solution{}, err
	}
	n := len(p.Types)
	if n == 0 {
		return Solution{Step: []int{}, Optimal: true}, nil
	}
	order, err := topoOrder(p.Deps)
	if err != nil {
		return Solution{}, err
	}
	asap := asapLevels(p.Deps, order)
	cp := 0
	for _, l := range asap {
		if l+1 > cp {
			cp = l + 1
		}
	}
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = cp + DefaultSlack
	}
	if horizon < cp {
		horizon = cp
	}
	maxNodes := p.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}

	// Warm start with the level greedy.
	greedy, err := GreedyLevels(p)
	if err != nil {
		return Solution{}, err
	}
	best := append([]int(nil), greedy.Step...)
	bestObj := greedy.Objective

	// Remaining same-type op counts from each position in the topo
	// order, for the admissible bound.
	remaining := make([]map[int]int64, n+1)
	remaining[n] = map[int]int64{}
	for k := n - 1; k >= 0; k-- {
		m := make(map[int]int64, len(remaining[k+1]))
		for ty, c := range remaining[k+1] {
			m[ty] = c
		}
		m[p.Types[order[k]]]++
		remaining[k] = m
	}

	s := &solver{
		p: p, order: order, horizon: horizon, maxNodes: maxNodes,
		remaining: remaining,
		steps:     make([]int, n),
		counts:    map[[2]int]int64{},
		maxCount:  map[int]int64{},
		bestObj:   bestObj, best: best,
		optimal: true,
	}
	s.dfs(0, 0)

	return Solution{Step: s.best, Objective: s.bestObj, Optimal: s.optimal, Nodes: s.nodes}, nil
}

type solver struct {
	p         Problem
	order     []int
	horizon   int
	maxNodes  int
	nodes     int
	remaining []map[int]int64

	steps    []int
	counts   map[[2]int]int64 // (type, step) -> fusion degree
	maxCount map[int]int64    // type -> max degree so far (for the bound)

	best    []int
	bestObj int64
	optimal bool
}

// bound returns an admissible upper bound on the objective reachable
// from position k with current partial objective obj: every remaining op
// of a type could, at best, join that type's largest group.
func (s *solver) bound(k int, obj int64) int64 {
	b := obj
	for ty, r := range s.remaining[k] {
		g := s.maxCount[ty]
		b += (g+r)*(g+r) - g*g
	}
	return b
}

func (s *solver) dfs(k int, obj int64) {
	if s.nodes >= s.maxNodes {
		s.optimal = false
		return
	}
	s.nodes++
	if k == len(s.order) {
		if obj > s.bestObj {
			s.bestObj = obj
			copy(s.best, s.steps)
		}
		return
	}
	if s.bound(k, obj) <= s.bestObj {
		return
	}
	op := s.order[k]
	minStep := 0
	for _, d := range s.p.Deps[op] {
		if s.steps[d]+1 > minStep {
			minStep = s.steps[d] + 1
		}
	}
	if minStep >= s.horizon {
		return // infeasible branch under this horizon
	}
	ty := s.p.Types[op]

	// Candidate steps, most promising first: join the largest existing
	// same-type group, then earliest-first.
	cands := make([]int, 0, s.horizon-minStep)
	for t := minStep; t < s.horizon; t++ {
		cands = append(cands, t)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca := s.counts[[2]int{ty, cands[a]}]
		cb := s.counts[[2]int{ty, cands[b]}]
		if ca != cb {
			return ca > cb
		}
		return cands[a] < cands[b]
	})

	for _, t := range cands {
		key := [2]int{ty, t}
		c := s.counts[key]
		delta := (c+1)*(c+1) - c*c
		s.counts[key] = c + 1
		prevMax := s.maxCount[ty]
		if c+1 > prevMax {
			s.maxCount[ty] = c + 1
		}
		s.steps[op] = t
		s.dfs(k+1, obj+delta)
		s.counts[key] = c
		s.maxCount[ty] = prevMax
		if s.nodes >= s.maxNodes {
			s.optimal = false
			return
		}
	}
}
