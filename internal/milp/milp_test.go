package milp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestObjective(t *testing.T) {
	// Two type-0 ops fused at step 0 plus one type-1 op: 2² + 1² = 5.
	if got := Objective([]int{0, 0, 1}, []int{0, 0, 0}); got != 5 {
		t.Fatalf("objective = %d, want 5", got)
	}
	// Fully spread: 1+1+1.
	if got := Objective([]int{0, 0, 1}, []int{0, 1, 0}); got != 3 {
		t.Fatalf("objective = %d, want 3", got)
	}
}

func TestValidate(t *testing.T) {
	p := Problem{Types: []int{0, 0}, Deps: [][]int{nil, {0}}}
	if err := Validate(p, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, []int{0, 0}); err == nil {
		t.Fatal("dependency violation accepted")
	}
	if err := Validate(p, []int{1, 0}); err == nil {
		t.Fatal("inverted order accepted")
	}
	if err := Validate(p, []int{0}); err == nil {
		t.Fatal("short steps accepted")
	}
	if err := Validate(p, []int{-1, 0}); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestSolveEmpty(t *testing.T) {
	sol, err := Solve(Problem{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal || len(sol.Step) != 0 {
		t.Fatalf("empty solve = %+v", sol)
	}
}

func TestSolveIndependentSameType(t *testing.T) {
	// 4 independent same-type ops: all fuse at one step, objective 16.
	p := Problem{Types: []int{0, 0, 0, 0}, Deps: make([][]int, 4)}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 16 {
		t.Fatalf("objective = %d, want 16", sol.Objective)
	}
	if !sol.Optimal {
		t.Fatal("tiny instance not optimal")
	}
	if err := Validate(p, sol.Step); err != nil {
		t.Fatal(err)
	}
}

func TestSolveChainCannotFuse(t *testing.T) {
	// A chain of same-type ops can never fuse (data dependencies).
	p := Problem{Types: []int{0, 0, 0}, Deps: [][]int{nil, {0}, {1}}}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %d, want 3", sol.Objective)
	}
	if err := Validate(p, sol.Step); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBeatsGreedy(t *testing.T) {
	// The X/Y conflict: chains X0→Y0 and Y1→X1. Level greedy puts X0,Y1
	// at step 0 and Y0,X1 at step 1 (objective 4). Optimal delays X1 to
	// step 2 so Y0 and Y1 fuse... but Y1 is at step 0 and Y0 at step 1 —
	// the real optimum delays Y0's consumer: steps X0@0, Y0@1, Y1@0 —
	// fuse Y? Y0 depends on X0 so Y0 ≥ 1, Y1 at 1 too: X1 then ≥ 2.
	// Objective: Y degree 2 (=4) + X 1+1 = 6 > greedy 4.
	types := []int{0, 1, 1, 0} // X0, Y0, Y1, X1
	deps := [][]int{nil, {0}, nil, {2}}
	p := Problem{Types: types, Deps: deps}
	greedy, err := GreedyLevels(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, sol.Step); err != nil {
		t.Fatal(err)
	}
	if sol.Objective <= greedy.Objective {
		t.Fatalf("B&B (%d) did not beat greedy (%d)", sol.Objective, greedy.Objective)
	}
	if sol.Objective != 6 {
		t.Fatalf("objective = %d, want 6", sol.Objective)
	}
	if !sol.Optimal {
		t.Fatal("should be optimal")
	}
}

func TestSolveRejectsInfeasibleHorizon(t *testing.T) {
	// A chain of 3 needs 3 steps; horizon 2 cannot hold it. The solver
	// used to silently widen the horizon to the critical path and claim
	// Optimal=true for a horizon the caller never set; now it reports
	// the infeasibility explicitly.
	p := Problem{Types: []int{0, 0, 0}, Deps: [][]int{nil, {0}, {1}}, Horizon: 2}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasibleHorizon) {
		t.Fatalf("err = %v, want ErrInfeasibleHorizon", err)
	}
	if _, err := SolveSequential(p); !errors.Is(err, ErrInfeasibleHorizon) {
		t.Fatalf("sequential err = %v, want ErrInfeasibleHorizon", err)
	}
	// A horizon exactly at the critical path is feasible.
	p.Horizon = 3
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, sol.Step); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNodeBudget(t *testing.T) {
	// A large instance under a tiny budget returns a valid incumbent and
	// reports non-optimality.
	n := 40
	types := make([]int, n)
	deps := make([][]int, n)
	rng := rand.New(rand.NewSource(1))
	for i := range types {
		types[i] = rng.Intn(3)
		if i > 0 && rng.Intn(2) == 0 {
			deps[i] = []int{rng.Intn(i)}
		}
	}
	p := Problem{Types: types, Deps: deps, MaxNodes: 50}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal {
		t.Fatal("claimed optimality under 50-node budget")
	}
	if err := Validate(p, sol.Step); err != nil {
		t.Fatal(err)
	}
	if sol.Objective <= 0 {
		t.Fatal("no incumbent")
	}
}

func TestSolveCycleRejected(t *testing.T) {
	p := Problem{Types: []int{0, 0}, Deps: [][]int{{1}, {0}}}
	if _, err := Solve(p); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := Solve(Problem{Types: []int{0}, Deps: [][]int{{5}}}); err == nil {
		t.Fatal("dangling dep accepted")
	}
	if _, err := Solve(Problem{Types: []int{0}, Deps: nil}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// bruteForce enumerates all assignments up to the horizon.
func bruteForce(p Problem, horizon int) int64 {
	n := len(p.Types)
	steps := make([]int, n)
	var best int64 = -1
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if Validate(p, steps) == nil {
				if obj := Objective(p.Types, steps); obj > best {
					best = obj
				}
			}
			return
		}
		for t := 0; t < horizon; t++ {
			steps[i] = t
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// Property: on random small DAGs the B&B matches brute force.
func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		horizon := n + 1
		types := make([]int, n)
		deps := make([][]int, n)
		for i := 0; i < n; i++ {
			types[i] = rng.Intn(2)
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.3 {
					deps[i] = append(deps[i], j)
				}
			}
		}
		p := Problem{Types: types, Deps: deps, Horizon: horizon}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		if Validate(p, sol.Step) != nil {
			return false
		}
		return sol.Objective == bruteForce(p, horizon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the solved objective is never below the greedy warm start
// and solutions always validate.
func TestSolveNeverWorseThanGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		types := make([]int, n)
		deps := make([][]int, n)
		for i := 0; i < n; i++ {
			types[i] = rng.Intn(4)
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.2 {
					deps[i] = append(deps[i], j)
				}
			}
		}
		p := Problem{Types: types, Deps: deps, MaxNodes: 200_000}
		greedy, err := GreedyLevels(p)
		if err != nil {
			return false
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		return sol.Objective >= greedy.Objective && Validate(p, sol.Step) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
