package milp

import (
	"math/rand"
	"testing"
)

// BenchmarkSolvePlanSized measures the branch & bound on a per-GPU
// fusion problem of realistic size (60 ops, 6 types, chain deps).
func BenchmarkSolvePlanSized(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	types := make([]int, n)
	deps := make([][]int, n)
	for i := 0; i < n; i++ {
		types[i] = rng.Intn(6)
		if i%4 != 0 {
			deps[i] = []int{i - 1}
		}
	}
	p := Problem{Types: types, Deps: deps, MaxNodes: 200_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
