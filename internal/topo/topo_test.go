package topo

import (
	"strings"
	"testing"
)

func TestFlatAndUniform(t *testing.T) {
	f := Flat(8)
	if f.NumGPUs() != 8 || f.NumNodes() != 1 {
		t.Fatalf("Flat(8): %d gpus on %d nodes", f.NumGPUs(), f.NumNodes())
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Flat(8).Validate: %v", err)
	}
	if f.CrossNode(0, 7) {
		t.Fatalf("flat topology reports a cross-node pair")
	}

	u := Uniform(4, 2)
	if u.NumGPUs() != 8 || u.NumNodes() != 4 {
		t.Fatalf("Uniform(4,2): %d gpus on %d nodes", u.NumGPUs(), u.NumNodes())
	}
	if u.NodeOf(0) != 0 || u.NodeOf(1) != 0 || u.NodeOf(2) != 1 || u.NodeOf(7) != 3 {
		t.Fatalf("Uniform(4,2) node assignment wrong: %d %d %d %d",
			u.NodeOf(0), u.NodeOf(1), u.NodeOf(2), u.NodeOf(7))
	}
	if !u.CrossNode(1, 2) || u.CrossNode(2, 3) {
		t.Fatalf("CrossNode wrong: 1-2=%v 2-3=%v", u.CrossNode(1, 2), u.CrossNode(2, 3))
	}
	if u.NodeSize(0) != 2 || u.NodeSize(3) != 2 || u.NodeSize(4) != 0 {
		t.Fatalf("NodeSize wrong: %d %d %d", u.NodeSize(0), u.NodeSize(3), u.NodeSize(4))
	}
	if u.NodeOf(-1) != -1 || u.NodeOf(8) != -1 {
		t.Fatalf("out-of-range NodeOf should be -1")
	}
}

func TestFromNodeOf(t *testing.T) {
	tp, err := FromNodeOf([]int{0, 1, 0, 1, 2})
	if err != nil {
		t.Fatalf("FromNodeOf: %v", err)
	}
	if tp.NumNodes() != 3 || tp.NodeSize(0) != 2 || tp.NodeSize(2) != 1 {
		t.Fatalf("FromNodeOf shape wrong: nodes=%d sizes=%d,%d",
			tp.NumNodes(), tp.NodeSize(0), tp.NodeSize(2))
	}
	for _, bad := range [][]int{
		nil,     // empty
		{0, 2},  // node 1 missing
		{0, -1}, // negative node
	} {
		if _, err := FromNodeOf(bad); err == nil {
			t.Fatalf("FromNodeOf(%v) should fail", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	var nilTopo *Topology
	if err := nilTopo.Validate(); err != nil {
		t.Fatalf("nil topology must validate: %v", err)
	}
	if err := (&Topology{}).Validate(); err == nil {
		t.Fatalf("zero-value topology must not validate")
	}
	bad := Uniform(2, 2)
	bad.Oversub = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatalf("oversub < 1 must not validate")
	}
	bad = Uniform(2, 2)
	bad.FabricGBs = -1
	if err := bad.Validate(); err == nil {
		t.Fatalf("negative fabric bandwidth must not validate")
	}
	ok := Uniform(2, 2)
	ok.FabricGBs = 100
	ok.Oversub = 4
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSubset(t *testing.T) {
	u := Uniform(4, 2) // nodes: {0,1} {2,3} {4,5} {6,7}
	u.FabricGBs = 100
	u.Oversub = 4

	// A subset spanning nodes 3 and 1 (in that order): nodes renumber by
	// first appearance, so fleet node 3 becomes subset node 0.
	sub, err := u.Subset([]int{6, 7, 2})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if sub.NumGPUs() != 3 || sub.NumNodes() != 2 {
		t.Fatalf("subset shape: %d gpus on %d nodes", sub.NumGPUs(), sub.NumNodes())
	}
	if sub.NodeOf(0) != 0 || sub.NodeOf(1) != 0 || sub.NodeOf(2) != 1 {
		t.Fatalf("subset renumbering wrong: %d %d %d", sub.NodeOf(0), sub.NodeOf(1), sub.NodeOf(2))
	}
	if sub.FabricGBs != 100 || sub.Oversub != 4 {
		t.Fatalf("subset must inherit fabric params, got %g/%g", sub.FabricGBs, sub.Oversub)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subset must validate: %v", err)
	}

	// Single-node subset collapses to flat.
	flat, err := u.Subset([]int{4, 5})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if flat.NumNodes() != 1 {
		t.Fatalf("same-node subset should be 1 node, got %d", flat.NumNodes())
	}

	for _, bad := range [][]int{
		{},     // empty
		{0, 0}, // duplicate
		{0, 8}, // out of range
		{-1},   // out of range
	} {
		if _, err := u.Subset(bad); err == nil {
			t.Fatalf("Subset(%v) should fail", bad)
		}
	}
}

func TestString(t *testing.T) {
	u := Uniform(128, 8)
	u.FabricGBs = 100
	u.Oversub = 4
	s := u.String()
	for _, want := range []string{"128×8", "100", "oversub 4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if s := Flat(4).String(); !strings.Contains(s, "1×4") {
		t.Fatalf("Flat(4).String() = %q", s)
	}
	irr, err := FromNodeOf([]int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := irr.String(); !strings.Contains(s, "3 gpus on 2 nodes") {
		t.Fatalf("irregular String() = %q", s)
	}
}
