// Package topo describes hierarchical GPU cluster topologies: GPUs
// grouped into NVSwitch nodes, nodes joined by an oversubscribed
// inter-node fabric. It is the shape vocabulary shared by the gpusim
// simulator (which charges cross-node transfers against per-node fabric
// links, see gpusim.SetTopology) and the cluster fleet simulator (which
// places jobs onto nodes).
//
// A topology is pure structure: it owns no simulator state and imports
// nothing from the rest of the repo. The flat single-node topology —
// Flat(n), or no topology at all — is the identity: a simulator given
// one behaves bit-identically to one that predates this package (the
// golden-digest back-compat suite pins this).
package topo

import (
	"fmt"
	"strings"
)

// Topology is an immutable GPU → node assignment plus the inter-node
// fabric parameters. Construct one with Flat, Uniform, or FromNodeOf;
// the zero value is invalid.
type Topology struct {
	// nodeOf[g] is the node index of GPU g; node ids are contiguous
	// starting at 0. Unexported: the constructors establish the
	// contiguity invariant once and nothing can break it afterwards.
	nodeOf []int
	nodes  int

	// FabricGBs is each node's share of inter-node fabric bandwidth in
	// GB/s (the uplink behind which the node's GPUs reach other nodes).
	// 0 means "consumer default" — gpusim substitutes the cluster's
	// NVLink bandwidth.
	FabricGBs float64 //rap:unit GB/s
	// Oversub is the fabric oversubscription factor: the ratio of
	// aggregate GPU injection bandwidth to what the fabric core can
	// actually carry. 1 (or 0, meaning default 1) is non-blocking;
	// values above 1 shrink each fabric link's usable capacity to
	// 1/Oversub of FabricGBs. Values below 1 are invalid.
	Oversub float64
}

// Flat returns the single-node topology over gpus GPUs — the identity
// topology: no fabric links exist and simulators treat it exactly like
// having no topology at all.
func Flat(gpus int) *Topology {
	if gpus < 1 {
		gpus = 1
	}
	return &Topology{nodeOf: make([]int, gpus), nodes: 1}
}

// Uniform returns a topology of `nodes` NVSwitch nodes with gpusPerNode
// GPUs each, numbered node-major (GPU g lives on node g/gpusPerNode).
func Uniform(nodes, gpusPerNode int) *Topology {
	if nodes < 1 {
		nodes = 1
	}
	if gpusPerNode < 1 {
		gpusPerNode = 1
	}
	nodeOf := make([]int, nodes*gpusPerNode)
	for g := range nodeOf {
		nodeOf[g] = g / gpusPerNode
	}
	return &Topology{nodeOf: nodeOf, nodes: nodes}
}

// FromNodeOf builds a topology from an explicit GPU → node assignment.
// Node ids must be contiguous from 0 (every node in [0, max] has at
// least one GPU); nodes need not hold contiguous GPU ranges.
func FromNodeOf(nodeOf []int) (*Topology, error) {
	if len(nodeOf) == 0 {
		return nil, fmt.Errorf("topo: empty GPU → node assignment")
	}
	max := -1
	for g, n := range nodeOf {
		if n < 0 {
			return nil, fmt.Errorf("topo: gpu %d has negative node %d", g, n)
		}
		if n > max {
			max = n
		}
	}
	seen := make([]bool, max+1)
	for _, n := range nodeOf {
		seen[n] = true
	}
	for n, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("topo: node %d has no GPUs (node ids must be contiguous from 0)", n)
		}
	}
	return &Topology{nodeOf: append([]int(nil), nodeOf...), nodes: max + 1}, nil
}

// NumGPUs returns the GPU count.
func (t *Topology) NumGPUs() int { return len(t.nodeOf) }

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return t.nodes }

// NodeOf returns the node of GPU g, or -1 when g is out of range (the
// defined-zero-value convention of the simulator's query surface).
func (t *Topology) NodeOf(g int) int {
	if g < 0 || g >= len(t.nodeOf) {
		return -1
	}
	return t.nodeOf[g]
}

// NodeSize returns the number of GPUs on node n; 0 when out of range.
func (t *Topology) NodeSize(n int) int {
	if n < 0 || n >= t.nodes {
		return 0
	}
	c := 0
	for _, m := range t.nodeOf {
		if m == n {
			c++
		}
	}
	return c
}

// CrossNode reports whether GPUs a and b live on different nodes.
// Out-of-range indices report false (they cross nothing).
func (t *Topology) CrossNode(a, b int) bool {
	na, nb := t.NodeOf(a), t.NodeOf(b)
	return na >= 0 && nb >= 0 && na != nb
}

// Validate checks the topology's structural and fabric parameters.
func (t *Topology) Validate() error {
	if t == nil {
		return nil
	}
	if len(t.nodeOf) == 0 || t.nodes < 1 {
		return fmt.Errorf("topo: topology has no GPUs (use Flat/Uniform/FromNodeOf)")
	}
	for g, n := range t.nodeOf {
		if n < 0 || n >= t.nodes {
			return fmt.Errorf("topo: gpu %d on node %d outside [0,%d)", g, n, t.nodes)
		}
	}
	if t.FabricGBs < 0 {
		return fmt.Errorf("topo: fabric bandwidth %g GB/s must be non-negative", t.FabricGBs)
	}
	if t.Oversub < 0 || (t.Oversub > 0 && t.Oversub < 1) {
		return fmt.Errorf("topo: oversubscription %g must be >= 1 (or 0 for the default of 1)", t.Oversub)
	}
	return nil
}

// Subset returns the topology seen by a job allocated the given fleet
// GPUs: GPU i of the subset is fleet GPU gpus[i], and subset nodes are
// the distinct fleet nodes renumbered by first appearance (so the
// result satisfies the contiguity invariant deterministically). Fabric
// parameters are inherited: a job spanning two fleet nodes still
// crosses the same oversubscribed fabric, it just can't see the other
// tenants (model cross-tenant contention separately, e.g. with
// ResFabric capacity windows).
func (t *Topology) Subset(gpus []int) (*Topology, error) {
	if len(gpus) == 0 {
		return nil, fmt.Errorf("topo: empty GPU subset")
	}
	taken := make([]bool, len(t.nodeOf))
	renum := make([]int, t.nodes)
	for i := range renum {
		renum[i] = -1
	}
	nodeOf := make([]int, len(gpus))
	next := 0
	for i, g := range gpus {
		if g < 0 || g >= len(t.nodeOf) {
			return nil, fmt.Errorf("topo: subset gpu %d out of range [0,%d)", g, len(t.nodeOf))
		}
		if taken[g] {
			return nil, fmt.Errorf("topo: subset lists gpu %d twice", g)
		}
		taken[g] = true
		n := t.nodeOf[g]
		if renum[n] < 0 {
			renum[n] = next
			next++
		}
		nodeOf[i] = renum[n]
	}
	return &Topology{nodeOf: nodeOf, nodes: next, FabricGBs: t.FabricGBs, Oversub: t.Oversub}, nil
}

// String renders the topology compactly, e.g. "128×8 gpus,
// fabric 100 GB/s oversub 4".
func (t *Topology) String() string {
	var b strings.Builder
	per := len(t.nodeOf) / t.nodes
	uniform := per*t.nodes == len(t.nodeOf)
	if uniform {
		for g, n := range t.nodeOf {
			if n != g/per {
				uniform = false
				break
			}
		}
	}
	if uniform {
		fmt.Fprintf(&b, "%d×%d gpus", t.nodes, per)
	} else {
		fmt.Fprintf(&b, "%d gpus on %d nodes", len(t.nodeOf), t.nodes)
	}
	if t.nodes > 1 {
		if t.FabricGBs > 0 {
			fmt.Fprintf(&b, ", fabric %g GB/s", t.FabricGBs)
		}
		if t.Oversub > 1 {
			fmt.Fprintf(&b, " oversub %g", t.Oversub)
		}
	}
	return b.String()
}
