package costmodel

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"rap/internal/gpusim"
)

// ProbeCache memoizes capacity-probe results across EstimateCapacities
// calls. Homogeneous GPUs run near-identical stage lineups, so the
// per-GPU profiling sweep of one plan mostly re-probes kernels another
// GPU already measured; sharing one cache across those calls (and
// across plans in a replanning loop) collapses the sweep. Keys are deep
// content hashes of every input the probe simulation reads, so a hit
// returns exactly what the probe would have computed — the cache never
// changes results, only whether they are recomputed. Safe for
// concurrent use.
type ProbeCache struct {
	mu      sync.Mutex
	entries map[string]float64 // guarded by mu
	hits    int                // guarded by mu
	misses  int                // guarded by mu
}

// NewProbeCache returns an empty probe cache.
func NewProbeCache() *ProbeCache {
	return &ProbeCache{entries: map[string]float64{}}
}

// Stats reports the lookup hit/miss counts so far.
func (c *ProbeCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *ProbeCache) lookup(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *ProbeCache) store(key string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = v
}

// probeKey is the deep content hash of everything probeCapacity reads:
// the stage kernel, the leftover demand, and the cluster fields the
// probe simulation consumes (LinkGBs and CopyGBs — the probe always
// runs single-GPU under FairShare). Floats are rendered in hex
// notation so the key is bit-exact, mirroring the content-hash idiom
// of internal/lint's analysis cache.
func probeKey(stage gpusim.Kernel, leftover gpusim.Demand, cluster gpusim.ClusterConfig) string {
	h := sha256.New()
	f := func(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }
	fmt.Fprintf(h, "kernel %q work=%s sm=%s membw=%s warps=%d overhead=%s tag=%q\n",
		stage.Name, f(stage.Work), f(stage.Demand.SM), f(stage.Demand.MemBW),
		stage.Warps, f(stage.LaunchOverhead), stage.Tag)
	fmt.Fprintf(h, "leftover sm=%s membw=%s\n", f(leftover.SM), f(leftover.MemBW))
	fmt.Fprintf(h, "cluster link=%s copy=%s\n", f(cluster.LinkGBs), f(cluster.CopyGBs))
	return hex.EncodeToString(h.Sum(nil))
}
