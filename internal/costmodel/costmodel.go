package costmodel

import (
	"fmt"

	"rap/internal/preproc"
)

// CostModel is the §5.3 co-running cost model: given a candidate
// co-running schedule it predicts the exposed input-preprocessing
// latency LΔ = Σᵢ pᵢ − C_ov, where pᵢ are predicted standalone kernel
// latencies and C_ov is the training iteration's overlapping capacity.
// LΔ < 0 means the schedule hides preprocessing completely.
type CostModel struct {
	Pred *Predictor
	Caps []StageCapacity
}

// NewCostModel wires a predictor and the profiled stage capacities.
func NewCostModel(pred *Predictor, caps []StageCapacity) (*CostModel, error) {
	if pred == nil {
		return nil, fmt.Errorf("costmodel: nil predictor")
	}
	if len(caps) == 0 {
		return nil, fmt.Errorf("costmodel: no stage capacities")
	}
	return &CostModel{Pred: pred, Caps: caps}, nil
}

// TotalCapacity is the per-iteration overlapping capacity (µs).
//
//rap:unit return us
func (cm *CostModel) TotalCapacity() float64 { return TotalCapacity(cm.Caps) }

// PredictTotal sums the predicted standalone latencies of the kernels.
//
//rap:unit return us
func (cm *CostModel) PredictTotal(kernels []preproc.KernelSpec) float64 {
	t := 0.0
	for _, k := range kernels {
		t += cm.Pred.Predict(k)
	}
	return t
}

// ExposedLatency returns LΔ for running the given kernels within one
// training iteration. Negative values indicate slack.
//
//rap:unit return us
func (cm *CostModel) ExposedLatency(kernels []preproc.KernelSpec) float64 {
	return cm.PredictTotal(kernels) - cm.TotalCapacity()
}

// ExposedLatencyClamped returns max(0, LΔ) — the cost the mapping search
// minimizes per GPU (§7.2).
//
//rap:unit return us
func (cm *CostModel) ExposedLatencyClamped(kernels []preproc.KernelSpec) float64 {
	if v := cm.ExposedLatency(kernels); v > 0 {
		return v
	}
	return 0
}

// ScheduleCost evaluates a per-stage assignment (assign[s] overlaps
// stage s): per-stage exposure accumulates when a stage's kernels exceed
// its capacity, and slack from earlier stages carries forward (the
// preprocessing stream keeps running across stage boundaries).
//
//rap:unit return us
func (cm *CostModel) ScheduleCost(assign [][]preproc.KernelSpec) (float64, error) {
	if len(assign) != len(cm.Caps) {
		return 0, fmt.Errorf("costmodel: schedule covers %d stages, profile has %d", len(assign), len(cm.Caps))
	}
	backlog := 0.0
	for s, kernels := range assign {
		backlog += cm.PredictTotal(kernels)
		backlog -= cm.Caps[s].Capacity
		if backlog < 0 {
			backlog = 0
		}
	}
	return backlog, nil
}
