package costmodel

import (
	"math"
	"testing"

	"rap/internal/dlrm"
	"rap/internal/gbdt"
	"rap/internal/gpusim"
	"rap/internal/preproc"
)

func tinyDataset(t *testing.T) Dataset {
	t.Helper()
	return CollectTrainingData(1500, 1)
}

func TestCollectTrainingData(t *testing.T) {
	ds := tinyDataset(t)
	if ds.Size() != 1500 {
		t.Fatalf("size = %d", ds.Size())
	}
	// All five Table 5 categories present.
	for _, cat := range []string{"1D Ops", "FirstX", "Ngram", "Onehot", "Bucketize"} {
		if len(ds.ByCategory[cat]) == 0 {
			t.Fatalf("category %q empty", cat)
		}
	}
	for cat, samples := range ds.ByCategory {
		for _, s := range samples {
			if s.Latency <= 0 {
				t.Fatalf("%s: non-positive latency", cat)
			}
			if s.Spec.Elements <= 0 {
				t.Fatalf("%s: empty spec", cat)
			}
		}
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := tinyDataset(t)
	train, eval := ds.Split(0.9, 7)
	if train.Size()+eval.Size() != ds.Size() {
		t.Fatal("split lost samples")
	}
	frac := float64(train.Size()) / float64(ds.Size())
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("train fraction = %f", frac)
	}
}

func TestPredictorAccuracyTable5(t *testing.T) {
	// The Table 5 protocol: ~11K kernels, 9:1 split, accuracy@10%.
	ds := CollectTrainingData(4000, 3)
	train, eval := ds.Split(0.9, 3)
	pred, err := TrainPredictor(train, gbdt.Config{NumTrees: 120, MaxDepth: 6, LearningRate: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	acc := pred.Accuracy(eval, 0.10)
	for cat, a := range acc {
		if a < 0.80 {
			t.Fatalf("category %q accuracy %.3f < 0.80", cat, a)
		}
	}
	if len(pred.Categories()) != 5 {
		t.Fatalf("categories = %v", pred.Categories())
	}
}

func TestPredictorMonotoneInSize(t *testing.T) {
	ds := CollectTrainingData(3000, 5)
	pred, err := TrainPredictor(ds, gbdt.Config{NumTrees: 80, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	small := preproc.KernelSpec{Name: "s", Type: preproc.OpSigridHash, Elements: 2000}
	big := preproc.KernelSpec{Name: "b", Type: preproc.OpSigridHash, Elements: 200000}
	if pred.Predict(small) >= pred.Predict(big) {
		t.Fatalf("predictor not monotone: %f vs %f", pred.Predict(small), pred.Predict(big))
	}
}

func TestPredictorFallback(t *testing.T) {
	p := AnalyticPredictor()
	spec := preproc.KernelSpec{Name: "x", Type: preproc.OpLogit, Elements: 5000}
	if got := p.Predict(spec); math.Abs(got-spec.SoloLatency()) > 1e-9 {
		t.Fatalf("fallback = %f, want %f", got, spec.SoloLatency())
	}
}

func TestTrainPredictorEmpty(t *testing.T) {
	if _, err := TrainPredictor(Dataset{ByCategory: map[string][]Sample{}}, gbdt.Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func testConfig() (dlrm.Config, dlrm.Placement) {
	sizes := make([]int64, 26)
	for i := range sizes {
		sizes[i] = 1 << 20
	}
	cfg := dlrm.TerabyteConfig(sizes, 4096)
	return cfg, dlrm.PlaceTables(sizes, 4)
}

func TestEstimateCapacities(t *testing.T) {
	cfg, pl := testConfig()
	cluster := gpusim.ClusterConfig{NumGPUs: 4}
	caps, err := EstimateCapacities(cfg, pl, 0, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != dlrm.NumStages {
		t.Fatalf("stage count = %d", len(caps))
	}
	byName := map[string]StageCapacity{}
	for _, c := range caps {
		byName[c.Name] = c
		if c.Capacity < 0 || c.Duration <= 0 {
			t.Fatalf("stage %s: cap %f dur %f", c.Name, c.Capacity, c.Duration)
		}
		// Capacity never exceeds ~1.5× duration (probe must be hidden).
		if c.Capacity > c.Duration*1.6 {
			t.Fatalf("stage %s capacity %f > duration %f", c.Name, c.Capacity, c.Duration)
		}
	}
	// Memory-bound embedding stages leave more SM headroom than top MLP.
	if byName["emb_lookup"].Leftover.SM <= byName["top_fwd"].Leftover.SM {
		t.Fatal("embedding stage should leave more SM headroom")
	}
	// Comm stages have full capacity.
	if byName["a2a_fwd"].Capacity != byName["a2a_fwd"].Duration {
		t.Fatal("comm stage capacity should equal duration")
	}
	// Long compute stages provide large capacity (probe hidden under
	// them while headroom exists).
	if byName["top_fwd"].Capacity <= 0 {
		t.Fatal("top_fwd should still hide some preprocessing")
	}
	if total := TotalCapacity(caps); total <= 0 {
		t.Fatalf("total capacity %f", total)
	}
}

func TestEstimateCapacitiesErrors(t *testing.T) {
	cfg, pl := testConfig()
	if _, err := EstimateCapacities(cfg, pl, 99, gpusim.ClusterConfig{NumGPUs: 4}); err == nil {
		t.Fatal("bad gpu accepted")
	}
	bad := cfg
	bad.BatchSize = 0
	if _, err := EstimateCapacities(bad, pl, 0, gpusim.ClusterConfig{NumGPUs: 4}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCostModel(t *testing.T) {
	cfg, pl := testConfig()
	caps, err := EstimateCapacities(cfg, pl, 0, gpusim.ClusterConfig{NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCostModel(AnalyticPredictor(), caps)
	if err != nil {
		t.Fatal(err)
	}
	small := []preproc.KernelSpec{{Name: "k", Type: preproc.OpLogit, Elements: 1000}}
	if cm.ExposedLatency(small) >= 0 {
		t.Fatal("tiny workload should have slack")
	}
	if cm.ExposedLatencyClamped(small) != 0 {
		t.Fatal("clamped slack should be 0")
	}
	// A giant kernel exceeds total capacity.
	huge := []preproc.KernelSpec{{Name: "h", Type: preproc.OpNGram, Elements: 5e8}}
	if cm.ExposedLatency(huge) <= 0 {
		t.Fatal("huge workload should be exposed")
	}
	if cm.ExposedLatencyClamped(huge) != cm.ExposedLatency(huge) {
		t.Fatal("clamp changed positive value")
	}
	if cm.PredictTotal(huge) <= cm.PredictTotal(small) {
		t.Fatal("predict total ordering wrong")
	}
}

func TestCostModelScheduleCost(t *testing.T) {
	caps := []StageCapacity{
		{Index: 0, Name: "s0", Duration: 100, Capacity: 100},
		{Index: 1, Name: "s1", Duration: 50, Capacity: 50},
	}
	cm, err := NewCostModel(AnalyticPredictor(), caps)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(work float64) preproc.KernelSpec {
		// Elements chosen so SoloLatency ≈ work.
		return preproc.KernelSpec{Name: "k", Type: preproc.OpFillNull, Elements: (work - 6.5) * 1500 / 0.8}
	}
	// Fits: 80 µs against 150 µs capacity.
	cost, err := cm.ScheduleCost([][]preproc.KernelSpec{{mk(40)}, {mk(40)}})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("fitting schedule cost = %f", cost)
	}
	// Over-stuffed stage 1: backlog spills past the end.
	cost, err = cm.ScheduleCost([][]preproc.KernelSpec{{mk(40)}, {mk(200)}})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("overload should be exposed")
	}
	// Slack does NOT flow backwards: stuffing everything in the last
	// stage exposes latency even though total capacity would suffice.
	costLate, err := cm.ScheduleCost([][]preproc.KernelSpec{nil, {mk(140)}})
	if err != nil {
		t.Fatal(err)
	}
	if costLate <= 0 {
		t.Fatal("late placement should expose latency")
	}
	costEarly, err := cm.ScheduleCost([][]preproc.KernelSpec{{mk(140)}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if costEarly != 0 {
		t.Fatalf("early placement should be hidden, got %f", costEarly)
	}
	if _, err := cm.ScheduleCost([][]preproc.KernelSpec{nil}); err == nil {
		t.Fatal("stage-count mismatch accepted")
	}
}

func TestNewCostModelErrors(t *testing.T) {
	if _, err := NewCostModel(nil, []StageCapacity{{}}); err == nil {
		t.Fatal("nil predictor accepted")
	}
	if _, err := NewCostModel(AnalyticPredictor(), nil); err == nil {
		t.Fatal("no capacities accepted")
	}
}
