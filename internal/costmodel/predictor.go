// Package costmodel implements RAP's co-running cost model (§5): the
// ML-based preprocessing-latency predictor (§5.2), the overlapping-
// capacity estimator (§5.1) and the exposed-latency cost function (§5.3)
// that the fusion planner and the joint mapping search optimize against.
package costmodel

import (
	"fmt"
	"math"
	"math/rand"

	"rap/internal/gbdt"
	"rap/internal/preproc"
)

// measurementNoise is the multiplicative jitter applied to "measured"
// kernel latencies during offline data collection, standing in for
// real-hardware run-to-run variance.
const measurementNoise = 0.05

// features extracts the predictor features of a kernel spec: operator
// type, data sizes and performance-related parameters — the inputs the
// paper feeds XGBoost.
func features(s preproc.KernelSpec) []float64 {
	scale := s.ParamScale
	if scale <= 0 {
		scale = 1
	}
	work := s.Elements * scale
	return []float64{
		float64(s.Type),
		s.Elements,
		math.Log2(s.Elements + 1),
		scale,
		float64(s.Warps()),
		work,
		math.Log2(work + 1),
	}
}

// Sample is one collected (kernel, measured latency) pair.
type Sample struct {
	Spec preproc.KernelSpec
	// Latency is the measured standalone latency (µs).
	Latency float64 //rap:unit us
}

// Dataset groups samples by predictor category (Table 5).
type Dataset struct {
	ByCategory map[string][]Sample
}

// Size returns the total sample count.
func (d Dataset) Size() int {
	n := 0
	for _, s := range d.ByCategory {
		n += len(s)
	}
	return n
}

// Split partitions every category into train/eval with the given train
// fraction (the paper uses 9:1), deterministically from seed.
func (d Dataset) Split(trainFrac float64, seed int64) (train, eval Dataset) {
	rng := rand.New(rand.NewSource(seed))
	train = Dataset{ByCategory: map[string][]Sample{}}
	eval = Dataset{ByCategory: map[string][]Sample{}}
	for cat, samples := range d.ByCategory {
		perm := rng.Perm(len(samples))
		cut := int(float64(len(samples)) * trainFrac)
		for i, p := range perm {
			if i < cut {
				train.ByCategory[cat] = append(train.ByCategory[cat], samples[p])
			} else {
				eval.ByCategory[cat] = append(eval.ByCategory[cat], samples[p])
			}
		}
	}
	return train, eval
}

// CollectTrainingData "profiles" kernels offline: it draws random kernel
// configurations for every operator type and records their standalone
// latency with measurement noise. total is the overall sample budget
// (the paper gathers ~11K kernels).
func CollectTrainingData(total int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	types := preproc.AllOpTypes()
	ds := Dataset{ByCategory: map[string][]Sample{}}
	for i := 0; i < total; i++ {
		ty := types[rng.Intn(len(types))]
		spec := randomSpec(ty, rng)
		noisy := spec.SoloLatency() * (1 + rng.NormFloat64()*measurementNoise)
		if noisy <= 0 {
			noisy = spec.SoloLatency()
		}
		cat := ty.PredictorCategory()
		ds.ByCategory[cat] = append(ds.ByCategory[cat], Sample{Spec: spec, Latency: noisy})
	}
	return ds
}

// randomSpec draws a plausible kernel configuration for an op type:
// batch sizes 256..16384, list lengths 1..8, and type-specific
// performance parameters.
func randomSpec(ty preproc.OpType, rng *rand.Rand) preproc.KernelSpec {
	samples := 256 << rng.Intn(7) // 256..16384
	listLen := 1 + rng.Float64()*7
	shape := preproc.Shape{Samples: samples, AvgListLen: listLen}
	var op preproc.Op
	switch ty {
	case preproc.OpFillNull:
		if rng.Intn(2) == 0 {
			op = preproc.NewFillNullDense("p", "in", "out", 0)
		} else {
			op = preproc.NewFillNullSparse("p", "in", "out", 0)
		}
	case preproc.OpCast:
		op = preproc.NewCast("p", "in", "out")
	case preproc.OpLogit:
		op = preproc.NewLogit("p", "in", "out", 0)
	case preproc.OpBoxCox:
		op = preproc.NewBoxCox("p", "in", "out", 0.25+rng.Float64())
	case preproc.OpOneHot:
		op = preproc.NewOneHot("p", "in", "out", 2+rng.Int63n(1<<uint(4+rng.Intn(16))))
	case preproc.OpSigridHash:
		op = preproc.NewSigridHash("p", "in", "out", 2+rng.Int63n(1<<30))
	case preproc.OpFirstX:
		op = preproc.NewFirstX("p", "in", "out", 1+rng.Intn(50))
	case preproc.OpClamp:
		op = preproc.NewClamp("p", "in", "out", 0, rng.Int63n(1<<30))
	case preproc.OpBucketize:
		borders := make([]float32, 2+rng.Intn(64))
		for i := range borders {
			borders[i] = rng.Float32() * 1000
		}
		op = preproc.NewBucketize("p", "in", "out", borders)
	case preproc.OpNGram:
		ins := make([]string, 1+rng.Intn(4))
		for i := range ins {
			ins[i] = fmt.Sprintf("in%d", i)
		}
		op = preproc.NewNGram("p", ins, "out", 2+rng.Intn(4), 2+rng.Int63n(1<<30))
	case preproc.OpMapID:
		op = preproc.NewMapID("p", "in", "out", map[int64]int64{1: 2})
	default:
		//lint:ignore panicpath checked invariant: the switch is exhaustive over preproc.OpType
		panic(fmt.Sprintf("costmodel: unhandled op type %v", ty))
	}
	spec := op.Spec(shape)
	// Emulate horizontal fusion in the profile set: fused kernels are
	// larger versions of the same type.
	if rng.Intn(3) == 0 {
		k := 2 + rng.Intn(6)
		fused := spec
		for i := 1; i < k; i++ {
			fused = fused.MustFuse(spec)
		}
		spec = fused
	}
	return spec
}

// Predictor is the trained per-category latency model.
type Predictor struct {
	models map[string]*gbdt.Model
}

// TrainPredictor fits one GBDT per category (Table 5's per-operator
// models plus the shared "1D Ops" model).
func TrainPredictor(ds Dataset, cfg gbdt.Config) (*Predictor, error) {
	if ds.Size() == 0 {
		return nil, fmt.Errorf("costmodel: empty training dataset")
	}
	p := &Predictor{models: map[string]*gbdt.Model{}}
	for cat, samples := range ds.ByCategory {
		X := make([][]float64, len(samples))
		y := make([]float64, len(samples))
		for i, s := range samples {
			X[i] = features(s.Spec)
			y[i] = s.Latency
		}
		m, err := gbdt.Train(X, y, cfg)
		if err != nil {
			return nil, fmt.Errorf("costmodel: training %q model: %w", cat, err)
		}
		p.models[cat] = m
	}
	return p, nil
}

// Predict returns the predicted standalone latency (µs) of a kernel.
// Kernels of categories the predictor was never trained on fall back to
// the analytic model (and FallbackUsed reports it).
//
//rap:unit return us
func (p *Predictor) Predict(spec preproc.KernelSpec) float64 {
	m, ok := p.models[spec.Type.PredictorCategory()]
	if !ok {
		return spec.SoloLatency()
	}
	v := m.Predict(features(spec))
	if v < 0 {
		return 0
	}
	return v
}

// Categories lists the trained category names.
func (p *Predictor) Categories() []string {
	out := make([]string, 0, len(p.models))
	for c := range p.models {
		out = append(out, c)
	}
	return out
}

// Accuracy returns, per category, the fraction of eval samples whose
// prediction is within tol (relative) of the measured latency — the
// Table 5 protocol.
func (p *Predictor) Accuracy(eval Dataset, tol float64) map[string]float64 {
	out := map[string]float64{}
	for cat, samples := range eval.ByCategory {
		if len(samples) == 0 {
			continue
		}
		hits := 0
		for _, s := range samples {
			pred := p.Predict(s.Spec)
			if math.Abs(pred-s.Latency) <= tol*math.Max(s.Latency, 1e-9) {
				hits++
			}
		}
		out[cat] = float64(hits) / float64(len(samples))
	}
	return out
}

// AnalyticPredictor returns a Predictor-compatible fallback that uses
// the analytic cost model directly (no trained trees) — used by tests
// and as a baseline.
func AnalyticPredictor() *Predictor { return &Predictor{models: map[string]*gbdt.Model{}} }
