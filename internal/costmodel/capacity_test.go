package costmodel

import (
	"math"
	"reflect"
	"testing"

	"rap/internal/gpusim"
)

// TestSearchCapacityGrowsBeyondInitialBracket is the regression test
// for the silent capacity ceiling: the old search pinned hi at 1.5×
// solo without ever testing it against fits, so any stage whose true
// capacity exceeded the bracket converged to the cap and under-
// reported. The geometric growth must find a threshold well past the
// old ceiling.
func TestSearchCapacityGrowsBeyondInitialBracket(t *testing.T) {
	const solo = 100.0
	const threshold = 3.7 * solo // far beyond the old 1.5×solo ceiling
	calls := 0
	fits := func(w float64) bool {
		calls++
		return w <= threshold
	}
	got := searchCapacity(fits, solo)
	if math.Abs(got-threshold) > solo*0.01 {
		t.Fatalf("capacity = %f, want %f ± %f (old code capped at %f)",
			got, threshold, solo*0.01, 1.5*solo)
	}
	if calls > 60 {
		t.Fatalf("search used %d probes; growth should stay logarithmic", calls)
	}
}

// TestSearchCapacityBounded pins the growth bound: a fit predicate that
// never rejects must terminate at maxCapacityGrowth × solo instead of
// doubling forever.
func TestSearchCapacityBounded(t *testing.T) {
	const solo = 10.0
	got := searchCapacity(func(float64) bool { return true }, solo)
	if got != solo*maxCapacityGrowth {
		t.Fatalf("unbounded fits returned %f, want the %f bound", got, solo*maxCapacityGrowth)
	}
}

// TestSearchCapacityRejectsEverything mirrors the zero-headroom case.
func TestSearchCapacityRejectsEverything(t *testing.T) {
	if got := searchCapacity(func(float64) bool { return false }, 100); got != 0 {
		t.Fatalf("capacity = %f, want 0", got)
	}
}

// TestSearchCapacityWithinBracket checks the unchanged common case: a
// threshold inside the initial bracket is still found to resolution.
func TestSearchCapacityWithinBracket(t *testing.T) {
	const solo, threshold = 100.0, 80.0
	got := searchCapacity(func(w float64) bool { return w <= threshold }, solo)
	if math.Abs(got-threshold) > solo*0.01 {
		t.Fatalf("capacity = %f, want %f ± %f", got, threshold, solo*0.01)
	}
}

// TestEstimateCapacitiesCachedMatchesUncached: memoization must be
// invisible in results — per-GPU outputs with a shared cache deep-equal
// the uncached ones, and the second GPU's probes are mostly hits
// (homogeneous GPUs share stage profiles).
func TestEstimateCapacitiesCachedMatchesUncached(t *testing.T) {
	cfg, pl := testConfig()
	cluster := gpusim.ClusterConfig{NumGPUs: 4}
	cache := NewProbeCache()
	for gpu := 0; gpu < pl.NumGPUs; gpu++ {
		plain, err := EstimateCapacities(cfg, pl, gpu, cluster)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := EstimateCapacitiesCached(cfg, pl, gpu, cluster, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, cached) {
			t.Fatalf("gpu %d: cached result differs from uncached", gpu)
		}
	}
	hits, misses := cache.Stats()
	if hits == 0 {
		t.Fatalf("no cache hits across %d homogeneous GPUs (misses %d)", pl.NumGPUs, misses)
	}
	// A full re-estimate of GPU 0 must be all hits.
	preHits, preMisses := hits, misses
	if _, err := EstimateCapacitiesCached(cfg, pl, 0, cluster, cache); err != nil {
		t.Fatal(err)
	}
	hits, misses = cache.Stats()
	if misses != preMisses {
		t.Fatalf("repeat estimate missed %d probes", misses-preMisses)
	}
	if hits <= preHits {
		t.Fatal("repeat estimate produced no hits")
	}
}

// TestProbeFullyHidden pins the aligned criterion: with the probe
// required to finish no later than the stage, the raw probed work can
// never exceed the stage's stretched span, so the reported capacity
// stays below duration × (1 + Tolerance) (before the safety discount,
// ≈ duration).
func TestProbeFullyHidden(t *testing.T) {
	cfg, pl := testConfig()
	caps, err := EstimateCapacities(cfg, pl, 0, gpusim.ClusterConfig{NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps {
		if c.Name == "a2a_fwd" || c.Name == "a2a_bwd" || c.Name == "grad_sync" {
			continue // comm stages: capacity == duration by definition
		}
		if c.Capacity > c.Duration*(1+Tolerance) {
			t.Fatalf("stage %s: capacity %f exceeds hidden bound for duration %f",
				c.Name, c.Capacity, c.Duration)
		}
	}
}
