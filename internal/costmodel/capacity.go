package costmodel

import (
	"fmt"
	"math"

	"rap/internal/dlrm"
	"rap/internal/gpusim"
)

// StageCapacity is the measured overlapping capacity of one DLRM
// training stage (§5.1): how many µs of standalone preprocessing latency
// can co-run with it without stretching it beyond tolerance.
type StageCapacity struct {
	Index int
	Name  string
	// Duration is the stage's solo latency (µs).
	Duration float64
	// Leftover is the GPU resource headroom while the stage runs; a
	// co-running kernel whose demand fits inside it is contention-free.
	Leftover gpusim.Demand
	// Capacity is the measured overlapping capacity in standalone-
	// preprocessing-latency µs (the paper's latency-based abstraction).
	Capacity float64
}

// Tolerance is the acceptable relative stretch of a training stage used
// when probing capacity (the "without extending the total latency"
// criterion, with measurement slack).
const Tolerance = 0.03

// SafetyFactor discounts the probed capacity before scheduling against
// it: probing tolerates a small stretch, but planning at 100% of the
// tolerant measurement would bake a systematic per-stage spill into the
// pipeline.
const SafetyFactor = 0.9

// EstimateCapacities profiles every training stage of GPU gpu by
// co-running probe preprocessing kernels against it in an isolated
// simulation and binary-searching the largest hidden probe (§5.1's
// profiling step, replacing hardware measurement). Communication stages
// leave the whole GPU idle, so their capacity is their duration.
func EstimateCapacities(cfg dlrm.Config, pl dlrm.Placement, gpu int, cluster gpusim.ClusterConfig) ([]StageCapacity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if gpu < 0 || gpu >= pl.NumGPUs {
		return nil, fmt.Errorf("costmodel: gpu %d out of range", gpu)
	}
	cluster = cluster.WithDefaults()
	stages := cfg.IterationStages(gpu, pl)
	out := make([]StageCapacity, len(stages))
	for i, st := range stages {
		sc := StageCapacity{Index: i, Name: st.Name}
		if st.Kind == dlrm.StageComm {
			sc.Duration = st.SoloLatency(cluster.LinkGBs)
			sc.Leftover = gpusim.Demand{SM: 1, MemBW: 1}
			sc.Capacity = sc.Duration
			out[i] = sc
			continue
		}
		sc.Duration = st.Kernel.SoloLatency()
		sc.Leftover = gpusim.Demand{
			SM:    math.Max(0, 1-st.Kernel.Demand.SM),
			MemBW: math.Max(0, 1-st.Kernel.Demand.MemBW),
		}
		sc.Capacity = SafetyFactor * probeCapacity(st.Kernel, sc.Leftover, cluster)
		out[i] = sc
	}
	return out, nil
}

// probeCapacity binary-searches the largest probe work (µs of standalone
// preprocessing latency) that co-runs with the stage kernel while (a)
// the stage stretches by at most Tolerance and (b) the probe finishes
// before the stage does (fully hidden).
func probeCapacity(stage gpusim.Kernel, leftover gpusim.Demand, cluster gpusim.ClusterConfig) float64 {
	solo := stage.SoloLatency()
	probeDemand := gpusim.Demand{SM: leftover.SM * 0.95, MemBW: leftover.MemBW * 0.95}
	if probeDemand.SM <= 0 && probeDemand.MemBW <= 0 {
		return 0
	}
	probeCluster := gpusim.ClusterConfig{NumGPUs: 1, Policy: gpusim.FairShare,
		LinkGBs: cluster.LinkGBs, CopyGBs: cluster.CopyGBs}
	fits := func(work float64) bool {
		sim := gpusim.NewSim(probeCluster)
		s := sim.AddKernel(0, stage)
		p := sim.AddKernel(0, gpusim.Kernel{
			Name: "probe", Work: work, Demand: probeDemand, Tag: "preproc",
		})
		res, err := sim.Run()
		if err != nil {
			return false
		}
		stRes, pRes := res.OpByID(s), res.OpByID(p)
		return stRes.Latency() <= solo*(1+Tolerance) && pRes.End <= stRes.End+solo*Tolerance
	}
	lo, hi := 0.0, solo*1.5
	if !fits(lo + 1e-6) {
		return 0
	}
	for hi-lo > solo*0.01 {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TotalCapacity sums the capacities of all stages — the per-iteration
// preprocessing budget of one GPU.
func TotalCapacity(caps []StageCapacity) float64 {
	t := 0.0
	for _, c := range caps {
		t += c.Capacity
	}
	return t
}
