package costmodel

import (
	"fmt"
	"math"

	"rap/internal/dlrm"
	"rap/internal/gpusim"
)

// StageCapacity is the measured overlapping capacity of one DLRM
// training stage (§5.1): how many µs of standalone preprocessing latency
// can co-run with it without stretching it beyond tolerance.
type StageCapacity struct {
	Index int
	Name  string
	// Duration is the stage's solo latency (µs).
	Duration float64 //rap:unit us
	// Leftover is the GPU resource headroom while the stage runs; a
	// co-running kernel whose demand fits inside it is contention-free.
	Leftover gpusim.Demand
	// Capacity is the measured overlapping capacity in standalone-
	// preprocessing-latency µs (the paper's latency-based abstraction).
	Capacity float64 //rap:unit us
}

// Tolerance is the acceptable relative stretch of a training stage used
// when probing capacity (the "without extending the total latency"
// criterion, with measurement slack).
const Tolerance = 0.03 //rap:unit 1

// SafetyFactor discounts the probed capacity before scheduling against
// it: probing tolerates a small stretch, but planning at 100% of the
// tolerant measurement would bake a systematic per-stage spill into the
// pipeline.
const SafetyFactor = 0.9 //rap:unit 1

// EstimateCapacities profiles every training stage of GPU gpu by
// co-running probe preprocessing kernels against it in an isolated
// simulation and binary-searching the largest hidden probe (§5.1's
// profiling step, replacing hardware measurement). Communication stages
// leave the whole GPU idle, so their capacity is their duration.
func EstimateCapacities(cfg dlrm.Config, pl dlrm.Placement, gpu int, cluster gpusim.ClusterConfig) ([]StageCapacity, error) {
	return EstimateCapacitiesCached(cfg, pl, gpu, cluster, nil)
}

// EstimateCapacitiesCached is EstimateCapacities with probe memoization:
// stages whose (kernel, leftover, cluster) content hash is already in
// the cache skip the binary-search simulation sweep entirely.
// Homogeneous GPUs share most stage profiles, so a cache shared across
// the per-GPU calls of one plan collapses the sweep to roughly one
// GPU's worth of probes. A nil cache disables memoization. The cache is
// safe for concurrent use and never changes results — only whether they
// are recomputed.
//
//rap:deterministic
func EstimateCapacitiesCached(cfg dlrm.Config, pl dlrm.Placement, gpu int, cluster gpusim.ClusterConfig, cache *ProbeCache) ([]StageCapacity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if gpu < 0 || gpu >= pl.NumGPUs {
		return nil, fmt.Errorf("costmodel: gpu %d out of range", gpu)
	}
	cluster = cluster.WithDefaults()
	stages := cfg.IterationStages(gpu, pl)
	out := make([]StageCapacity, len(stages))
	for i, st := range stages {
		sc := StageCapacity{Index: i, Name: st.Name}
		if st.Kind == dlrm.StageComm {
			sc.Duration = st.SoloLatency(cluster.LinkGBs)
			sc.Leftover = gpusim.Demand{SM: 1, MemBW: 1}
			sc.Capacity = sc.Duration
			out[i] = sc
			continue
		}
		sc.Duration = st.Kernel.SoloLatency()
		sc.Leftover = gpusim.Demand{
			SM:    math.Max(0, 1-st.Kernel.Demand.SM),
			MemBW: math.Max(0, 1-st.Kernel.Demand.MemBW),
		}
		if cache != nil {
			key := probeKey(st.Kernel, sc.Leftover, cluster)
			if cap, ok := cache.lookup(key); ok {
				sc.Capacity = cap
			} else {
				sc.Capacity = SafetyFactor * probeCapacity(st.Kernel, sc.Leftover, cluster)
				cache.store(key, sc.Capacity)
			}
		} else {
			sc.Capacity = SafetyFactor * probeCapacity(st.Kernel, sc.Leftover, cluster)
		}
		out[i] = sc
	}
	return out, nil
}

// maxCapacityGrowth bounds the geometric bracket growth of the capacity
// search: a probe is never credited with more than this multiple of the
// stage's solo latency. It exists to terminate the search against
// pathological fit predicates, not to clip realistic measurements —
// under the FairShare engine a hidden probe cannot exceed the stage's
// own span by much (speed never exceeds 1).
const maxCapacityGrowth = 64

// probeCapacity searches for the largest probe work (µs of standalone
// preprocessing latency) that co-runs with the stage kernel while (a)
// the stage stretches by at most Tolerance and (b) the probe finishes
// no later than the stage (fully hidden: pRes.End <= stRes.End).
//
//rap:unit return us
func probeCapacity(stage gpusim.Kernel, leftover gpusim.Demand, cluster gpusim.ClusterConfig) float64 {
	solo := stage.SoloLatency()
	probeDemand := gpusim.Demand{SM: leftover.SM * 0.95, MemBW: leftover.MemBW * 0.95}
	if probeDemand.SM <= 0 && probeDemand.MemBW <= 0 {
		return 0
	}
	probeCluster := gpusim.ClusterConfig{NumGPUs: 1, Policy: gpusim.FairShare,
		LinkGBs: cluster.LinkGBs, CopyGBs: cluster.CopyGBs}
	fits := func(work float64) bool {
		sim := gpusim.NewSim(probeCluster)
		s := sim.AddKernel(0, stage)
		p := sim.AddKernel(0, gpusim.Kernel{
			Name: "probe", Work: work, Demand: probeDemand, Tag: "preproc",
		})
		res, err := sim.Run()
		if err != nil {
			return false
		}
		stRes, pRes := res.OpByID(s), res.OpByID(p)
		return stRes.Latency() <= solo*(1+Tolerance) && pRes.End <= stRes.End
	}
	return searchCapacity(fits, solo)
}

// searchCapacity binary-searches the largest work accepted by fits,
// bracketing from above by geometric growth: the upper bound starts at
// 1.5× solo and doubles while fits still holds (up to maxCapacityGrowth
// × solo), so a high-headroom stage whose true capacity exceeds the
// initial bracket is measured instead of silently clipped. fits must be
// monotone (fits(w) implies fits(w') for all w' < w); the result is
// within solo/100 of the true threshold.
//
//rap:unit solo us
//rap:unit return us
func searchCapacity(fits func(work float64) bool, solo float64) float64 {
	if !fits(1e-6) {
		return 0
	}
	lo, hi := 0.0, solo*1.5
	for fits(hi) {
		lo = hi
		if hi >= solo*maxCapacityGrowth {
			return hi
		}
		hi *= 2
		if hi > solo*maxCapacityGrowth {
			hi = solo * maxCapacityGrowth
		}
	}
	for hi-lo > solo*0.01 {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TotalCapacity sums the capacities of all stages — the per-iteration
// preprocessing budget of one GPU.
//
//rap:unit return us
func TotalCapacity(caps []StageCapacity) float64 {
	t := 0.0
	for _, c := range caps {
		t += c.Capacity
	}
	return t
}
