package nn

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpointing: online DLRM training continuously publishes updated
// models to the inference tier (paper §2.1's model-updating loop), so
// the NN substrate supports serializing and restoring MLP weights. The
// format is a tiny binary container: magic, layer count, then per linear
// layer its dims and raw little-endian float32 weights and biases.

const checkpointMagic = "RAPW"

// Save writes the MLP's trainable parameters to w.
func (m *MLP) Save(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	var linears []*Linear
	for _, l := range m.Layers {
		if lin, ok := l.(*Linear); ok {
			linears = append(linears, lin)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(linears))); err != nil {
		return err
	}
	for _, lin := range linears {
		if err := binary.Write(w, binary.LittleEndian, uint32(lin.In)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(lin.Out)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, lin.W.Data); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, lin.B); err != nil {
			return err
		}
	}
	return nil
}

// Load restores parameters saved by Save into a structurally identical
// MLP (same layer dims in the same order).
func (m *MLP) Load(r io.Reader) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	var linears []*Linear
	for _, l := range m.Layers {
		if lin, ok := l.(*Linear); ok {
			linears = append(linears, lin)
		}
	}
	if int(count) != len(linears) {
		return fmt.Errorf("nn: checkpoint has %d linear layers, model has %d", count, len(linears))
	}
	for i, lin := range linears {
		var in, out uint32
		if err := binary.Read(r, binary.LittleEndian, &in); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &out); err != nil {
			return err
		}
		if int(in) != lin.In || int(out) != lin.Out {
			return fmt.Errorf("nn: checkpoint layer %d is %d×%d, model wants %d×%d", i, in, out, lin.In, lin.Out)
		}
		if err := binary.Read(r, binary.LittleEndian, lin.W.Data); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, lin.B); err != nil {
			return err
		}
	}
	return nil
}
