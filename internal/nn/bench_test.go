package nn

import (
	"math/rand"
	"testing"
)

// BenchmarkMLPStep measures one forward+backward+SGD pass of a
// DLRM-top-MLP-shaped network on a 256-sample batch.
func BenchmarkMLPStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{479, 256, 128, 1}, false, rng)
	x := NewMatrix(256, 479)
	labels := make([]float32, 256)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.Forward(x)
		_, grad := BCEWithLogits(out, labels)
		m.Backward(grad)
		m.Step(0.1)
	}
}
