// Package nn is a small float32 neural-network library: dense matrices,
// linear layers, ReLU/Sigmoid activations, binary-cross-entropy loss and
// plain SGD. It provides the real training math behind internal/dlrm so
// that the reproduction trains an actual model (loss measurably
// decreases) rather than only simulating timing.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic(fmt.Sprintf("nn: invalid matrix shape %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices (test helper).
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
			panic("nn: ragged FromRows input")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a×b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic(fmt.Sprintf("nn: matmul shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			//lint:ignore floateq exact-zero skip is a pure sparsity optimization
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulATB returns aᵀ×b (used for weight gradients).
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic(fmt.Sprintf("nn: matmulATB shape mismatch %d×%d ᵀ· %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			//lint:ignore floateq exact-zero skip is a pure sparsity optimization
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a×bᵀ (used for input gradients).
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic(fmt.Sprintf("nn: matmulABT shape mismatch %d×%d · %d×%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k := range arow {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// XavierInit fills m with Glorot-uniform values using rng.
func XavierInit(m *Matrix, rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}
