package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewMLP([]int{4, 8, 2}, true, rng)
	dst := NewMLP([]int{4, 8, 2}, true, rng) // different init

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := NewMatrix(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	a, b := src.Forward(x), dst.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("restored model diverges at %d: %f vs %f", i, a.Data[i], b.Data[i])
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewMLP([]int{4, 8, 2}, true, rng)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wrongDims := NewMLP([]int{4, 6, 2}, true, rng)
	if err := wrongDims.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	wrongDepth := NewMLP([]int{4, 8, 8, 2}, true, rng)
	if err := wrongDepth.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("depth mismatch accepted")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m := NewMLP([]int{2, 2}, true, rand.New(rand.NewSource(1)))
	if err := m.Load(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := m.Load(strings.NewReader("")); err == nil {
		t.Fatal("empty reader accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := m.Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
