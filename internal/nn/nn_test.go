package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At failed")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("Row failed")
	}
	c := m.Clone()
	c.Set(1, 2, 9)
	if m.At(1, 2) != 5 {
		t.Fatal("Clone aliases")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	if e := FromRows(nil); e.Rows != 0 {
		t.Fatal("empty FromRows wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows accepted")
		}
	}()
	FromRows([][]float32{{1}, {2, 3}})
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 3)
	b := NewMatrix(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32()
	}
	// aᵀ×b via explicit transpose.
	at := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	got := MatMulATB(a, b)
	want := MatMul(at, b)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-5 {
			t.Fatal("MatMulATB mismatch")
		}
	}
	// a×bᵀ where shapes agree on Cols.
	c := NewMatrix(2, 3)
	d := NewMatrix(5, 3)
	for i := range c.Data {
		c.Data[i] = rng.Float32()
	}
	for i := range d.Data {
		d.Data[i] = rng.Float32()
	}
	dt := NewMatrix(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			dt.Set(j, i, d.At(i, j))
		}
	}
	got2 := MatMulABT(c, d)
	want2 := MatMul(c, dt)
	for i := range want2.Data {
		if math.Abs(float64(got2.Data[i]-want2.Data[i])) > 1e-5 {
			t.Fatal("MatMulABT mismatch")
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MatMul":    func() { MatMul(NewMatrix(2, 3), NewMatrix(4, 2)) },
		"MatMulATB": func() { MatMulATB(NewMatrix(2, 3), NewMatrix(4, 2)) },
		"MatMulABT": func() { MatMulABT(NewMatrix(2, 3), NewMatrix(4, 2)) },
		"NewMatrix": func() { NewMatrix(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

// numericalGrad estimates dLoss/dparam for a scalar loss function.
func numericalGrad(param []float32, i int, loss func() float64) float64 {
	const h = 1e-3
	orig := param[i]
	param[i] = orig + h
	lp := loss()
	param[i] = orig - h
	lm := loss()
	param[i] = orig
	return (lp - lm) / (2 * h)
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(3, 2, rng)
	x := NewMatrix(4, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	target := NewMatrix(4, 2)
	for i := range target.Data {
		target.Data[i] = rng.Float32()
	}
	loss := func() float64 {
		y := l.Forward(x)
		var s float64
		for i := range y.Data {
			d := float64(y.Data[i] - target.Data[i])
			s += d * d
		}
		return s
	}
	// Analytical gradients.
	y := l.Forward(x)
	grad := NewMatrix(4, 2)
	for i := range y.Data {
		grad.Data[i] = 2 * (y.Data[i] - target.Data[i])
	}
	dx := l.Backward(grad)
	for i := 0; i < len(l.W.Data); i += 2 {
		num := numericalGrad(l.W.Data, i, loss)
		if math.Abs(num-float64(l.dW.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("dW[%d]: numeric %f analytic %f", i, num, l.dW.Data[i])
		}
	}
	for j := range l.B {
		num := numericalGrad(l.B, j, loss)
		if math.Abs(num-float64(l.dB[j])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("dB[%d]: numeric %f analytic %f", j, num, l.dB[j])
		}
	}
	for i := 0; i < len(x.Data); i += 3 {
		num := numericalGrad(x.Data, i, loss)
		if math.Abs(num-float64(dx.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("dx[%d]: numeric %f analytic %f", i, num, dx.Data[i])
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := FromRows([][]float32{{-1, 2}, {3, -4}})
	y := r.Forward(x)
	if y.At(0, 0) != 0 || y.At(0, 1) != 2 || y.At(1, 0) != 3 || y.At(1, 1) != 0 {
		t.Fatalf("ReLU forward = %v", y.Data)
	}
	g := r.Backward(FromRows([][]float32{{1, 1}, {1, 1}}))
	if g.At(0, 0) != 0 || g.At(0, 1) != 1 || g.At(1, 0) != 1 || g.At(1, 1) != 0 {
		t.Fatalf("ReLU backward = %v", g.Data)
	}
	if r.ParamCount() != 0 {
		t.Fatal("ReLU has params?")
	}
}

func TestSigmoid(t *testing.T) {
	s := &Sigmoid{}
	x := FromRows([][]float32{{0}})
	y := s.Forward(x)
	if math.Abs(float64(y.At(0, 0))-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %f", y.At(0, 0))
	}
	g := s.Backward(FromRows([][]float32{{1}}))
	if math.Abs(float64(g.At(0, 0))-0.25) > 1e-6 {
		t.Fatalf("sigmoid'(0) = %f", g.At(0, 0))
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"linear":  func() { NewLinear(1, 1, rand.New(rand.NewSource(1))).Backward(NewMatrix(1, 1)) },
		"relu":    func() { (&ReLU{}).Backward(NewMatrix(1, 1)) },
		"sigmoid": func() { (&Sigmoid{}).Backward(NewMatrix(1, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMLPShapesAndParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{13, 512, 256}, true, rng)
	x := NewMatrix(2, 13)
	y := m.Forward(x)
	if y.Rows != 2 || y.Cols != 256 {
		t.Fatalf("MLP output %d×%d", y.Rows, y.Cols)
	}
	want := 13*512 + 512 + 512*256 + 256
	if m.ParamCount() != want {
		t.Fatalf("ParamCount = %d, want %d", m.ParamCount(), want)
	}
	// finalActivation=false keeps logits signed.
	m2 := NewMLP([]int{4, 8, 1}, false, rng)
	neg := false
	for trial := 0; trial < 20 && !neg; trial++ {
		x := NewMatrix(8, 4)
		for i := range x.Data {
			x.Data[i] = rng.Float32()*2 - 1
		}
		out := m2.Forward(x)
		for _, v := range out.Data {
			if v < 0 {
				neg = true
			}
		}
	}
	if !neg {
		t.Fatal("logit head never produced a negative value; ReLU leak?")
	}
}

func TestMLPTooFewDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMLP([]int{3}, true, rand.New(rand.NewSource(1)))
}

func TestBCEWithLogits(t *testing.T) {
	logits := FromRows([][]float32{{0}, {0}})
	loss, grad := BCEWithLogits(logits, []float32{1, 0})
	if math.Abs(float64(loss)-math.Log(2)) > 1e-6 {
		t.Fatalf("BCE(0) = %f, want ln2", loss)
	}
	if math.Abs(float64(grad.At(0, 0))+0.25) > 1e-6 || math.Abs(float64(grad.At(1, 0))-0.25) > 1e-6 {
		t.Fatalf("BCE grad = %v", grad.Data)
	}
}

func TestBCEGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := NewMatrix(5, 1)
	labels := make([]float32, 5)
	for i := range labels {
		logits.Data[i] = rng.Float32()*4 - 2
		labels[i] = float32(rng.Intn(2))
	}
	_, grad := BCEWithLogits(logits, labels)
	for i := range logits.Data {
		num := numericalGrad(logits.Data, i, func() float64 {
			l, _ := BCEWithLogits(logits, labels)
			return float64(l)
		})
		if math.Abs(num-float64(grad.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("BCE dlogit[%d]: numeric %f analytic %f", i, num, grad.Data[i])
		}
	}
}

func TestBCEShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BCEWithLogits(NewMatrix(2, 2), []float32{1, 0})
}

func TestMLPTrainsXORishTask(t *testing.T) {
	// A small MLP must drive BCE loss down on a separable problem.
	rng := rand.New(rand.NewSource(42))
	m := NewMLP([]int{2, 16, 1}, false, rng)
	x := NewMatrix(64, 2)
	labels := make([]float32, 64)
	for i := 0; i < 64; i++ {
		a, b := rng.Float32()*2-1, rng.Float32()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a*b > 0 {
			labels[i] = 1
		}
	}
	var first, last float32
	for it := 0; it < 400; it++ {
		out := m.Forward(x)
		loss, grad := BCEWithLogits(out, labels)
		if it == 0 {
			first = loss
		}
		last = loss
		m.Backward(grad)
		m.Step(0.5)
	}
	if last > first*0.5 {
		t.Fatalf("loss did not decrease enough: first %f last %f", first, last)
	}
}

func TestLinearStepClearsGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(2, 2, rng)
	x := NewMatrix(1, 2)
	x.Data[0], x.Data[1] = 1, 1
	l.Forward(x)
	l.Backward(FromRows([][]float32{{1, 1}}))
	l.Step(0.1)
	dW, dB := l.Gradients()
	for _, v := range dW.Data {
		if v != 0 {
			t.Fatal("dW not cleared")
		}
	}
	for _, v := range dB {
		if v != 0 {
			t.Fatal("dB not cleared")
		}
	}
}

// Property: MatMul distributes over addition: (a+b)×c == a×c + b×c.
func TestMatMulLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a, b, m := NewMatrix(r, k), NewMatrix(r, k), NewMatrix(k, c)
		for i := range a.Data {
			a.Data[i] = rng.Float32()
			b.Data[i] = rng.Float32()
		}
		for i := range m.Data {
			m.Data[i] = rng.Float32()
		}
		sum := NewMatrix(r, k)
		for i := range sum.Data {
			sum.Data[i] = a.Data[i] + b.Data[i]
		}
		left := MatMul(sum, m)
		ra, rb := MatMul(a, m), MatMul(b, m)
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-(ra.Data[i]+rb.Data[i]))) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
