package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of an MLP.
type Layer interface {
	// Forward consumes the layer input (batch × in) and returns the
	// output (batch × out), caching whatever Backward needs.
	Forward(x *Matrix) *Matrix
	// Backward consumes dL/doutput and returns dL/dinput, accumulating
	// parameter gradients.
	Backward(grad *Matrix) *Matrix
	// Step applies one SGD update with the given learning rate and
	// clears accumulated gradients.
	Step(lr float32)
	// ParamCount reports the number of trainable parameters.
	ParamCount() int
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	In, Out int
	W       *Matrix // In × Out
	B       []float32
	dW      *Matrix
	dB      []float32
	x       *Matrix // cached input
}

// NewLinear creates a Glorot-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:  NewMatrix(in, out),
		B:  make([]float32, out),
		dW: NewMatrix(in, out),
		dB: make([]float32, out),
	}
	XavierInit(l.W, rng)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *Matrix) *Matrix {
	if x.Cols != l.In {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic(fmt.Sprintf("nn: linear expects %d inputs, got %d", l.In, x.Cols))
	}
	l.x = x
	out := MatMul(x, l.W)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += l.B[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *Matrix) *Matrix {
	if l.x == nil {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic("nn: Linear.Backward before Forward")
	}
	dW := MatMulATB(l.x, grad)
	for i := range dW.Data {
		l.dW.Data[i] += dW.Data[i]
	}
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		for j := range row {
			l.dB[j] += row[j]
		}
	}
	return MatMulABT(grad, l.W)
}

// Step implements Layer.
func (l *Linear) Step(lr float32) {
	for i := range l.W.Data {
		l.W.Data[i] -= lr * l.dW.Data[i]
		l.dW.Data[i] = 0
	}
	for j := range l.B {
		l.B[j] -= lr * l.dB[j]
		l.dB[j] = 0
	}
}

// ParamCount implements Layer.
func (l *Linear) ParamCount() int { return l.In*l.Out + l.Out }

// Gradients exposes the accumulated parameter gradients (for
// data-parallel all-reduce).
func (l *Linear) Gradients() (*Matrix, []float32) { return l.dW, l.dB }

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *Matrix) *Matrix {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Matrix) *Matrix {
	if r.mask == nil {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic("nn: ReLU.Backward before Forward")
	}
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Step implements Layer (no parameters).
func (r *ReLU) Step(float32) {}

// ParamCount implements Layer.
func (r *ReLU) ParamCount() int { return 0 }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	y *Matrix
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	s.y = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *Matrix) *Matrix {
	if s.y == nil {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic("nn: Sigmoid.Backward before Forward")
	}
	out := NewMatrix(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		y := s.y.Data[i]
		out.Data[i] = g * y * (1 - y)
	}
	return out
}

// Step implements Layer (no parameters).
func (s *Sigmoid) Step(float32) {}

// ParamCount implements Layer.
func (s *Sigmoid) ParamCount() int { return 0 }

// MLP is a feed-forward stack of layers.
type MLP struct {
	Layers []Layer
}

// NewMLP builds Linear+ReLU pairs for the given dims, e.g. dims
// [13,512,256] produces Linear(13,512)-ReLU-Linear(512,256)-ReLU. When
// finalActivation is false the last ReLU is omitted (for logit outputs).
func NewMLP(dims []int, finalActivation bool, rng *rand.Rand) *MLP {
	if len(dims) < 2 {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic("nn: MLP needs at least two dims")
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(dims[i], dims[i+1], rng))
		if i+2 < len(dims) || finalActivation {
			m.Layers = append(m.Layers, &ReLU{})
		}
	}
	return m
}

// Forward implements Layer.
func (m *MLP) Forward(x *Matrix) *Matrix {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (m *MLP) Backward(grad *Matrix) *Matrix {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return grad
}

// Step implements Layer.
func (m *MLP) Step(lr float32) {
	for _, l := range m.Layers {
		l.Step(lr)
	}
}

// ParamCount implements Layer.
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.Layers {
		n += l.ParamCount()
	}
	return n
}

// BCEWithLogits computes mean binary cross-entropy over logits and
// returns the loss and dL/dlogits. Labels must be 0 or 1.
func BCEWithLogits(logits *Matrix, labels []float32) (float32, *Matrix) {
	if logits.Cols != 1 || logits.Rows != len(labels) {
		//lint:ignore panicpath checked invariant: shape mismatch is a programmer error in this hot-path math kernel
		panic(fmt.Sprintf("nn: BCE expects %d×1 logits for %d labels", len(labels), len(labels)))
	}
	grad := NewMatrix(logits.Rows, 1)
	var loss float64
	n := float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		z := float64(logits.At(i, 0))
		y := float64(labels[i])
		// Numerically stable: log(1+exp(-|z|)) + max(z,0) - z*y
		loss += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		p := 1 / (1 + math.Exp(-z))
		grad.Set(i, 0, float32((p-y)/n))
	}
	return float32(loss / n), grad
}
