package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// lintVersion participates in every cache key; bump it whenever an
// analyzer's behavior changes in a way the content hashes cannot see.
// (When the analyzed module is this repository itself, the content hash
// of internal/lint is mixed into the salt as well, so editing the
// analyzers invalidates the cache automatically.)
//
// The deep content hash also keys the v3 SSA value-flow facts: a
// package's //rap:unit annotations live in its source bytes and its
// interprocedural dimension facts only ever depend on the package plus
// its dependency closure — exactly what the hash covers — so a cache
// hit is a proof that re-running dimcheck/floatreduce would reproduce
// the stored findings, and warm runs skip SSA construction entirely.
const lintVersion = "4"

// cacheEntry is one package's persisted analysis result. Findings
// exclude the whole-run unusedignore check (recomputed every run);
// Used records which //lint:ignore directives this package's analysis
// suppressed findings with — anywhere in the module, since detaint can
// consume a directive in a package it traverses — so warm runs can
// replay the usage marking. Decls lists the package's own well-formed
// directives for the same check.
type cacheEntry struct {
	Version  string      `json:"version"`
	Package  string      `json:"package"`
	Findings []Finding   `json:"findings"`
	Used     []IgnoreRef `json:"used,omitempty"`
	Decls    []IgnoreRef `json:"decls,omitempty"`
}

// cacheState computes per-package cache keys — a deep content hash over
// the package's Go files and, transitively, every module package it
// imports, salted with the lint version, the Go toolchain version, and
// the analyzer suite — and reads/writes entries under dir.
type cacheState struct {
	dir  string
	salt string
	ml   *moduleList
	deep map[string]string // import path -> deep hash ("" = unhashable)
}

// DefaultCacheDir returns the per-user raplint cache directory.
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "raplint")
}

func openCache(dir string, ml *moduleList, analyzers []*Analyzer) (*cacheState, error) {
	if dir == "" {
		dir = DefaultCacheDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "raplint\x00%s\x00%s\x00", lintVersion, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "%s\x00", a.Name)
	}
	// Self-invalidation: when the analyzed module ships the analyzers
	// themselves, their sources join the salt.
	if ml.modulePath != "" {
		if lintMeta := ml.metas[ml.modulePath+"/internal/lint"]; lintMeta != nil {
			ch, err := contentHash(lintMeta)
			if err == nil {
				fmt.Fprintf(h, "self\x00%s\x00", ch)
			}
		}
	}
	return &cacheState{
		dir:  dir,
		salt: hex.EncodeToString(h.Sum(nil)),
		ml:   ml,
		deep: map[string]string{},
	}, nil
}

// contentHash hashes a package's Go sources (names and bytes).
func contentHash(meta *listPkg) (string, error) {
	h := sha256.New()
	for _, name := range meta.GoFiles {
		b, err := os.ReadFile(filepath.Join(meta.Dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(b))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// key returns the package's cache key: the deep hash over its own
// sources and the deep hashes of its module imports, or an error when
// some input cannot be hashed (in which case the package is analyzed
// uncached).
func (c *cacheState) key(path string) (string, error) {
	if k, ok := c.deep[path]; ok {
		if k == "" {
			return "", fmt.Errorf("lint: %s is not cacheable", path)
		}
		return k, nil
	}
	c.deep[path] = "" // cycle/error sentinel while computing
	meta := c.ml.metas[path]
	if meta == nil {
		return "", fmt.Errorf("lint: no metadata for %s", path)
	}
	ch, err := contentHash(meta)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", c.salt, path, ch)
	imports := append([]string(nil), meta.Imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		if !c.isModulePkg(imp) {
			continue // stdlib: covered by the toolchain version in the salt
		}
		if c.ml.metas[imp] == nil {
			// Dependency metadata not listed yet (narrow patterns):
			// fetch the closure once, then retry.
			if err := c.ml.ensureDeps(); err != nil {
				return "", err
			}
		}
		dk, err := c.key(imp)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%s\x00", imp, dk)
	}
	k := hex.EncodeToString(h.Sum(nil))
	c.deep[path] = k
	return k, nil
}

func (c *cacheState) isModulePkg(importPath string) bool {
	if c.ml.modulePath == "" {
		return false
	}
	return importPath == c.ml.modulePath ||
		len(importPath) > len(c.ml.modulePath) && importPath[:len(c.ml.modulePath)+1] == c.ml.modulePath+"/"
}

func (c *cacheState) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// lookup returns the cached entry for the package, or nil on any miss.
func (c *cacheState) lookup(path string) *cacheEntry {
	key, err := c.key(path)
	if err != nil {
		return nil
	}
	b, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil
	}
	e := new(cacheEntry)
	if json.Unmarshal(b, e) != nil || e.Package != path {
		return nil
	}
	return e
}

// store persists an entry; failures are silent (caching is best-effort).
func (c *cacheState) store(path string, e *cacheEntry) {
	key, err := c.key(path)
	if err != nil {
		return
	}
	e.Version = lintVersion
	e.Package = path
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, c.entryPath(key)) != nil {
		os.Remove(name)
	}
}
