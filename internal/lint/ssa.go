package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// This file is raplint v3's flow-sensitive layer: a lightweight
// SSA-style value-flow analysis built directly on go/ast + go/types (the
// module is zero-dependency, so golang.org/x/tools/go/ssa is not an
// option). Every variable, parameter, result, struct field, and
// constant is a *cell*; expression evaluation produces abstract values
// over the dimension lattice
//
//	unknown  <  unit(u)  <  conflict
//
// and assignments, call-argument bindings, returns, composite-literal
// fields, and channel sends are def edges that join values into cells.
// The analysis iterates the whole program to a monotone fixpoint, then
// makes one reporting pass in which dimcheck findings are emitted with
// an example flow path (the provenance chain recorded when each cell
// first acquired its unit).
//
// Strong facts come from `//rap:unit <expr>` annotations (fields,
// var/const specs, function doc lines naming a parameter or `return`);
// weak facts reuse the v1 unitmix name-suffix heuristics plus a
// bytesPerMB-style "Per" infix rule. Annotated cells are *pinned*:
// inflow never changes them, and incompatible inflow is a finding at
// the flow site.
//
// Cache coherence shapes the interprocedural rule. Per-package cache
// keys hash a package and its *dependencies*, never its dependents, so
// a fact is only allowed to flow from a dependency to a dependent:
// code may read the derived units of the packages it imports (call
// results, fields), and writes that cross a package boundary mutate
// nothing — they are checked against the target's pinned annotation and
// reported at the *writing* site, which lives in the package whose
// cache entry already depends on the callee's sources. Intra-package
// flow is a full fixpoint in both directions.

// unitDirective is the annotation prefix; see parseUnitDirective.
const unitDirective = "//rap:unit"

var unitDirectiveRe = regexp.MustCompile(`^//rap:unit\s+(\S.*)$`)

// dimState is the lattice position of an abstract value.
type dimState uint8

const (
	dimUnknown dimState = iota
	dimHas
	dimConflict
)

// dimStep is one link of a provenance chain: where a value was seeded
// or through which def edge it flowed.
type dimStep struct {
	pos   token.Pos
	desc  string
	prev  *dimStep
	depth int
}

// maxProvDepth caps provenance chains; longer flows keep their prefix.
const maxProvDepth = 8

// dimValue is one abstract value: a lattice state, the unit when
// state==dimHas, whether the unit is annotation-derived (strong) or
// name-heuristic-derived (weak), and its provenance.
type dimValue struct {
	state  dimState
	u      unit
	strong bool
	prov   *dimStep
}

func unknownValue() dimValue { return dimValue{state: dimUnknown} }

func (v dimValue) has() bool { return v.state == dimHas }

// extend returns v with one provenance step appended (depth-capped).
func (v dimValue) extend(pos token.Pos, desc string) dimValue {
	if v.prov != nil && v.prov.depth >= maxProvDepth {
		return v
	}
	d := 0
	if v.prov != nil {
		d = v.prov.depth + 1
	}
	v.prov = &dimStep{pos: pos, desc: desc, prev: v.prov, depth: d}
	return v
}

// dimCell is the analysis state of one program object.
type dimCell struct {
	obj     types.Object
	pkgPath string // owning package; cross-package writes never mutate
	display string // how findings name the cell
	pinned  bool   // carries a //rap:unit annotation; val is fixed
	annoPos token.Pos
	val     dimValue
}

// dimFinding is one pending dimcheck report, attributed to the package
// that owns pos.
type dimFinding struct {
	pos token.Pos
	msg string
}

// dimFacts is the whole-program analysis state, built once per Program
// (lazily — warm cache runs never construct it) and then read-only.
type dimFacts struct {
	prog     *Program
	cells    map[types.Object]*dimCell
	findings map[string][]dimFinding // package path -> findings at sites in it
	changed  bool
	report   bool
	buildDur time.Duration
}

// DimFactsBuildTime returns how long the SSA value-flow construction
// and fixpoint took, or zero when no package needed it (fully warm
// cache runs skip the build entirely).
func (prog *Program) DimFactsBuildTime() time.Duration {
	if prog.dim == nil {
		return 0
	}
	return prog.dim.buildDur
}

// dimFacts builds the value-flow facts on first use. sync.Once makes
// the lazy build safe under the driver's concurrent per-package passes.
func (prog *Program) dimFacts() *dimFacts {
	prog.dimOnce.Do(func() {
		//lint:ignore seededrand raplint times its own passes; no simulated result depends on this clock
		start := time.Now()
		f := &dimFacts{
			prog:     prog,
			cells:    map[types.Object]*dimCell{},
			findings: map[string][]dimFinding{},
		}
		f.seed()
		for round := 0; round < 10; round++ {
			f.changed = false
			f.walkAll()
			if !f.changed {
				break
			}
		}
		f.report = true
		f.walkAll()
		f.finalize()
		//lint:ignore seededrand raplint times its own passes; no simulated result depends on this clock
		f.buildDur = time.Since(start)
		prog.dim = f
	})
	return prog.dim
}

// finalize sorts and dedupes findings (the reporting walk evaluates
// nested expressions more than once).
func (f *dimFacts) finalize() {
	for path, fs := range f.findings {
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].pos != fs[j].pos {
				return fs[i].pos < fs[j].pos
			}
			return fs[i].msg < fs[j].msg
		})
		out := fs[:0]
		for i, x := range fs {
			if i == 0 || x != fs[i-1] {
				out = append(out, x)
			}
		}
		f.findings[path] = out
	}
}

func (f *dimFacts) addFinding(pos token.Pos, format string, args ...any) {
	pkg := f.pkgOf(pos)
	if pkg == "" {
		return
	}
	f.findings[pkg] = append(f.findings[pkg], dimFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// pkgOf attributes a position to the loaded package containing it.
func (f *dimFacts) pkgOf(pos token.Pos) string {
	for _, pkg := range f.prog.Packages {
		for _, file := range pkg.Files {
			if file.FileStart <= pos && pos < file.FileEnd {
				return pkg.Path
			}
		}
	}
	return ""
}

// cellFor returns the cell of obj, creating an unknown one on demand.
func (f *dimFacts) cellFor(obj types.Object) *dimCell {
	if c, ok := f.cells[obj]; ok {
		return c
	}
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	c := &dimCell{obj: obj, pkgPath: pkgPath, display: obj.Name(), val: unknownValue()}
	f.cells[obj] = c
	return c
}

// ---------------------------------------------------------------------
// Seeding: annotations (strong, pinned) and name heuristics (weak).

// seed collects every //rap:unit annotation and every unit-suffixed
// name into cells. Malformed or misplaced directives become findings.
func (f *dimFacts) seed() {
	for _, pkg := range f.prog.Packages {
		consumed := map[token.Pos]bool{}
		for _, file := range pkg.Files {
			f.seedFile(pkg, file, consumed)
		}
		// Stray directives: //rap:unit comments that no supported
		// position consumed.
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, unitDirective) && !consumed[c.Pos()] {
						f.addFinding(c.Pos(), "//rap:unit must annotate a struct field, a var/const spec, or name a parameter/return in a function doc comment")
					}
				}
			}
		}
		// Weak seeds: every defined numeric-ish var or const whose name
		// carries a unit suffix (or a bytesPerMB-style Per infix).
		for id, obj := range pkg.Info.Defs {
			if obj == nil || !numericish(obj.Type()) {
				continue
			}
			switch obj.(type) {
			case *types.Var, *types.Const:
			default:
				continue
			}
			u, ok := nameUnit(id.Name)
			if !ok {
				continue
			}
			c := f.cellFor(obj)
			if c.pinned || c.val.has() {
				continue
			}
			c.val = dimValue{state: dimHas, u: u, strong: false,
				prov: &dimStep{pos: id.Pos(), desc: fmt.Sprintf("name suffix of %q", id.Name)}}
		}
	}
}

// seedFile walks one file's declarations for //rap:unit annotations.
func (f *dimFacts) seedFile(pkg *Package, file *ast.File, consumed map[token.Pos]bool) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			f.seedFuncDoc(pkg, d, consumed)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			if n.Fields == nil {
				return true
			}
			for _, fld := range n.Fields.List {
				expr, pos, ok := fieldDirective(fld, consumed)
				if !ok {
					continue
				}
				u, err := parseUnit(expr)
				if err != nil {
					f.addFinding(pos, "bad //rap:unit annotation: %v", err)
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						f.pin(obj, u, pos, name.Name)
					}
				}
			}
		case *ast.ValueSpec:
			expr, pos, ok := specDirective(n, consumed)
			if !ok {
				return true
			}
			u, err := parseUnit(expr)
			if err != nil {
				f.addFinding(pos, "bad //rap:unit annotation: %v", err)
				return true
			}
			for _, name := range n.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					f.pin(obj, u, pos, name.Name)
				}
			}
		}
		return true
	})
}

// seedFuncDoc handles `//rap:unit <param|result|return> <expr>` lines
// in a function's doc comment.
func (f *dimFacts) seedFuncDoc(pkg *Package, fd *ast.FuncDecl, consumed map[token.Pos]bool) {
	if fd.Doc == nil {
		return
	}
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	for _, c := range fd.Doc.List {
		m := unitDirectiveRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		consumed[c.Pos()] = true
		if obj == nil {
			f.addFinding(c.Pos(), "//rap:unit on an undeclared function")
			continue
		}
		fields := strings.Fields(m[1])
		if len(fields) != 2 {
			f.addFinding(c.Pos(), "function doc //rap:unit wants `<param|return> <unit>`, got %q", m[1])
			continue
		}
		target, expr := fields[0], fields[1]
		u, err := parseUnit(expr)
		if err != nil {
			f.addFinding(c.Pos(), "bad //rap:unit annotation: %v", err)
			continue
		}
		sig := obj.Type().(*types.Signature)
		tv := lookupSigVar(sig, target)
		if tv == nil {
			f.addFinding(c.Pos(), "//rap:unit target %q names no parameter or result of %s", target, shortFuncName(obj))
			continue
		}
		name := target
		if name == "return" {
			name = shortFuncName(obj) + " result"
		}
		f.pin(tv, u, c.Pos(), name)
	}
}

// lookupSigVar resolves a doc-directive target: a parameter name, a
// named result, or the keyword `return` for the first result.
func lookupSigVar(sig *types.Signature, target string) *types.Var {
	if target == "return" {
		if sig.Results().Len() == 0 {
			return nil
		}
		return sig.Results().At(0)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == target {
			return sig.Params().At(i)
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i).Name() == target {
			return sig.Results().At(i)
		}
	}
	if sig.Recv() != nil && sig.Recv().Name() == target {
		return sig.Recv()
	}
	return nil
}

// pin fixes a cell to an annotated unit.
func (f *dimFacts) pin(obj types.Object, u unit, pos token.Pos, display string) {
	c := f.cellFor(obj)
	c.pinned = true
	c.annoPos = pos
	c.display = display
	c.val = dimValue{state: dimHas, u: u, strong: true,
		prov: &dimStep{pos: pos, desc: fmt.Sprintf("//rap:unit %s on %q", u, display)}}
}

// fieldDirective extracts a //rap:unit expression from a struct field's
// doc or trailing comment.
func fieldDirective(fld *ast.Field, consumed map[token.Pos]bool) (string, token.Pos, bool) {
	return commentDirective([]*ast.CommentGroup{fld.Doc, fld.Comment}, consumed)
}

// specDirective extracts a //rap:unit expression from a var/const
// spec's doc or trailing comment.
func specDirective(vs *ast.ValueSpec, consumed map[token.Pos]bool) (string, token.Pos, bool) {
	return commentDirective([]*ast.CommentGroup{vs.Doc, vs.Comment}, consumed)
}

func commentDirective(groups []*ast.CommentGroup, consumed map[token.Pos]bool) (string, token.Pos, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := unitDirectiveRe.FindStringSubmatch(c.Text); m != nil {
				consumed[c.Pos()] = true
				return strings.TrimSpace(m[1]), c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// nameUnit infers a weak unit from an identifier name: the unitmix
// suffix table, or a conversion-constant "Per" infix (bytesPerMB →
// bytes/MB) whose sides are exact atom spellings.
func nameUnit(name string) (unit, bool) {
	if i := strings.Index(name, "Per"); i > 0 && i+3 < len(name) {
		if lu, ok := atomNameUnit(name[:i]); ok {
			if ru, ok := atomNameUnit(name[i+3:]); ok {
				return lu.div(ru), true
			}
		}
	}
	return suffixUnit(name)
}

// atomNameUnit resolves a name fragment as one exact unit atom,
// tolerating an upper-cased first letter ("S" for "s").
func atomNameUnit(s string) (unit, bool) {
	for _, cand := range []string{s, strings.ToLower(s[:1]) + s[1:]} {
		if canon, ok := unitAtoms[cand]; ok {
			if canon == "" {
				return dimensionless(), true
			}
			return unit{factors: map[string]int{canon: 1}}, true
		}
		if expanded, ok := rateAliases[cand]; ok {
			u, err := parseUnit(expanded)
			if err == nil {
				return u, true
			}
		}
	}
	return unit{}, false
}

// numericish unwraps aggregates to decide whether a unit seed makes
// sense for a type: numeric basics, and slices/arrays/maps/chans/
// pointers of them (the annotation describes the element).
func numericish(t types.Type) bool {
	for i := 0; i < 8; i++ {
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Info()&(types.IsNumeric) != 0
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}

// ---------------------------------------------------------------------
// The fixpoint walk.

func (f *dimFacts) walkAll() {
	for _, pkg := range f.prog.Packages {
		in := &dimInterp{f: f, pkg: pkg}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					sig, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if sig != nil {
						in.sigs = append(in.sigs[:0], sig.Type().(*types.Signature))
					} else {
						in.sigs = in.sigs[:0]
					}
					in.block(d.Body)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							in.valueSpec(vs)
						}
					}
				}
			}
		}
	}
}

// dimInterp interprets one package's statements against the shared
// cells. sigs is the stack of enclosing function signatures (function
// literals push) used to bind return statements to result cells.
type dimInterp struct {
	f    *dimFacts
	pkg  *Package
	sigs []*types.Signature
}

func (in *dimInterp) info() *types.Info { return in.pkg.Info }

// flowInto joins v into the cell of obj through a def edge at pos.
// Pinned cells never change — incompatible inflow is a finding at the
// flow site. Cross-package writes mutate nothing (cache coherence; see
// the file comment): they are checked against pinned cells only.
func (in *dimInterp) flowInto(obj types.Object, v dimValue, pos token.Pos, site string) {
	if obj == nil || !v.has() {
		return
	}
	c := in.f.cellFor(obj)
	if c.pinned {
		if in.f.report && !v.u.equal(c.val.u) {
			in.f.addFinding(pos, "%s: %s value flows into %q declared //rap:unit %s (%s; annotation at %s)",
				site, v.u, c.display, c.val.u, in.describe(v), in.pos(c.annoPos))
		}
		return
	}
	if c.pkgPath != "" && c.pkgPath != in.pkg.Path {
		return // cross-package write into an unannotated cell: no fact flow
	}
	switch c.val.state {
	case dimUnknown:
		c.val = v.extend(pos, site)
		in.f.changed = true
	case dimHas:
		if c.val.u.equal(v.u) {
			if v.strong && !c.val.strong {
				c.val.strong = true
				in.f.changed = true
			}
			return
		}
		if c.val.strong != v.strong {
			if v.strong { // annotation-derived beats a name guess
				c.val = v.extend(pos, site)
				in.f.changed = true
			}
			return
		}
		c.val = dimValue{state: dimConflict}
		in.f.changed = true
	case dimConflict:
	}
}

// lvalue resolves an assignable expression to the object whose cell it
// writes: identifiers, field selectors, and the base of index/star/
// paren chains (element writes join into the aggregate's cell).
func (in *dimInterp) lvalue(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if obj := in.info().Defs[e]; obj != nil {
			return obj
		}
		return in.info().Uses[e]
	case *ast.SelectorExpr:
		return in.info().Uses[e.Sel]
	case *ast.IndexExpr:
		return in.lvalue(e.X)
	case *ast.StarExpr:
		return in.lvalue(e.X)
	case *ast.ParenExpr:
		return in.lvalue(e.X)
	}
	return nil
}

// ---------------------------------------------------------------------
// Statements.

func (in *dimInterp) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	in.stmts(b.List)
}

func (in *dimInterp) stmts(list []ast.Stmt) {
	for _, s := range list {
		in.stmt(s)
	}
}

func (in *dimInterp) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		in.block(s)
	case *ast.AssignStmt:
		in.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					in.valueSpec(vs)
				}
			}
		}
	case *ast.ReturnStmt:
		in.returnStmt(s)
	case *ast.RangeStmt:
		in.rangeStmt(s)
	case *ast.ForStmt:
		in.stmtIf(s.Init)
		in.eval(s.Cond)
		in.stmtIf(s.Post)
		in.block(s.Body)
	case *ast.IfStmt:
		in.stmtIf(s.Init)
		in.eval(s.Cond)
		in.block(s.Body)
		in.stmtIf(s.Else)
	case *ast.SwitchStmt:
		in.stmtIf(s.Init)
		var tag dimValue
		if s.Tag != nil {
			tag = in.eval(s.Tag)
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				cv := in.eval(e)
				if s.Tag != nil {
					in.checkPair(tag, cv, e.Pos(), "case")
				}
			}
			in.stmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		in.stmtIf(s.Init)
		in.stmtIf(s.Assign)
		for _, cl := range s.Body.List {
			in.stmts(cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			in.stmtIf(cc.Comm)
			in.stmts(cc.Body)
		}
	case *ast.ExprStmt:
		in.eval(s.X)
	case *ast.GoStmt:
		in.eval(s.Call)
	case *ast.DeferStmt:
		in.eval(s.Call)
	case *ast.SendStmt:
		v := in.eval(s.Value)
		in.flowInto(in.lvalue(s.Chan), v, s.Arrow, "sent to channel")
	case *ast.LabeledStmt:
		in.stmt(s.Stmt)
	case *ast.IncDecStmt:
		in.eval(s.X)
	}
}

func (in *dimInterp) stmtIf(s ast.Stmt) {
	if s != nil {
		in.stmt(s)
	}
}

// valueSpec handles `var x, y = e1, e2` and const specs.
func (in *dimInterp) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		in.bindMulti(identObjs(in, vs.Names), vs.Values[0])
		return
	}
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		v := in.eval(vs.Values[i])
		if obj := in.info().Defs[name]; obj != nil {
			in.flowInto(obj, v, name.Pos(), fmt.Sprintf("assigned to %q", name.Name))
		}
	}
}

func identObjs(in *dimInterp, names []*ast.Ident) []types.Object {
	objs := make([]types.Object, len(names))
	for i, n := range names {
		objs[i] = in.info().Defs[n]
	}
	return objs
}

func (in *dimInterp) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
			objs := make([]types.Object, len(s.Lhs))
			for i, l := range s.Lhs {
				objs[i] = in.lvalue(l)
			}
			in.bindMulti(objs, s.Rhs[0])
			return
		}
		for i, l := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			v := in.eval(s.Rhs[i])
			obj := in.lvalue(l)
			if obj != nil {
				in.flowInto(obj, v, s.TokPos, fmt.Sprintf("assigned to %q", obj.Name()))
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		cur := in.eval(s.Lhs[0])
		v := in.eval(s.Rhs[0])
		in.checkPair(cur, v, s.TokPos, s.Tok.String())
		obj := in.lvalue(s.Lhs[0])
		if obj != nil {
			in.flowInto(obj, v, s.TokPos, fmt.Sprintf("accumulated into %q", obj.Name()))
		}
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		cur := in.eval(s.Lhs[0])
		v := in.eval(s.Rhs[0])
		if cur.has() && v.has() {
			u := cur.u.mul(v.u)
			if s.Tok == token.QUO_ASSIGN {
				u = cur.u.div(v.u)
			}
			nv := dimValue{state: dimHas, u: u, strong: cur.strong && v.strong, prov: cur.prov}
			if obj := in.lvalue(s.Lhs[0]); obj != nil {
				in.flowInto(obj, nv, s.TokPos, fmt.Sprintf("scaled into %q", obj.Name()))
			}
		}
	default:
		for _, r := range s.Rhs {
			in.eval(r)
		}
	}
}

// bindMulti handles `a, b := f()` / `v, ok := m[k]` destructuring.
func (in *dimInterp) bindMulti(objs []types.Object, rhs ast.Expr) {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if callee := calleeOf(in.info(), call); callee != nil {
			in.bindArgs(call, callee)
			sig, ok := callee.Type().(*types.Signature)
			if ok {
				for i, obj := range objs {
					if obj == nil || i >= sig.Results().Len() {
						continue
					}
					rv := in.read(sig.Results().At(i), call.Pos())
					in.flowInto(obj, rv, call.Pos(), fmt.Sprintf("result %d of %s", i, shortFuncName(callee)))
				}
				return
			}
		}
		in.eval(rhs)
		return
	}
	// v, ok := m[k] / <-ch / x.(T): the first target carries the value.
	v := in.eval(rhs)
	if len(objs) > 0 && objs[0] != nil {
		in.flowInto(objs[0], v, rhs.Pos(), fmt.Sprintf("assigned to %q", objs[0].Name()))
	}
}

func (in *dimInterp) returnStmt(s *ast.ReturnStmt) {
	if len(in.sigs) == 0 {
		for _, r := range s.Results {
			in.eval(r)
		}
		return
	}
	sig := in.sigs[len(in.sigs)-1]
	for i, r := range s.Results {
		v := in.eval(r)
		if sig != nil && i < sig.Results().Len() {
			in.flowInto(sig.Results().At(i), v, r.Pos(), "returned")
		}
	}
}

func (in *dimInterp) rangeStmt(s *ast.RangeStmt) {
	base := in.eval(s.X)
	t := in.info().TypeOf(s.X)
	// The element unit of a seeded aggregate is the aggregate's unit;
	// which range variable carries the element depends on the ranged
	// type (slices/maps: the value; channels: the key).
	var elemTarget ast.Expr
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Chan:
			elemTarget = s.Key
		case *types.Map, *types.Slice, *types.Array:
			elemTarget = s.Value
		}
	}
	if elemTarget != nil {
		if obj := in.lvalue(elemTarget); obj != nil {
			in.flowInto(obj, base, s.For, "range element")
		}
	}
	in.block(s.Body)
}

// ---------------------------------------------------------------------
// Expressions.

func (in *dimInterp) eval(e ast.Expr) dimValue {
	if e == nil {
		return unknownValue()
	}
	switch e := e.(type) {
	case *ast.Ident:
		return in.evalIdent(e)
	case *ast.SelectorExpr:
		if obj := in.info().Uses[e.Sel]; obj != nil {
			switch obj.(type) {
			case *types.Var, *types.Const:
				return in.read(obj, e.Sel.Pos())
			}
			return unknownValue()
		}
		return in.weakName(e.Sel.Name, e.Sel.Pos())
	case *ast.BinaryExpr:
		return in.evalBinary(e)
	case *ast.CallExpr:
		return in.evalCall(e)
	case *ast.ParenExpr:
		return in.eval(e.X)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.ARROW:
			return in.eval(e.X)
		}
		in.eval(e.X)
		return unknownValue()
	case *ast.StarExpr:
		return in.eval(e.X)
	case *ast.IndexExpr:
		in.eval(e.Index)
		return in.eval(e.X)
	case *ast.SliceExpr:
		return in.eval(e.X)
	case *ast.TypeAssertExpr:
		in.eval(e.X)
		return unknownValue()
	case *ast.CompositeLit:
		in.compositeLit(e)
		return unknownValue()
	case *ast.FuncLit:
		sig, _ := in.info().TypeOf(e).(*types.Signature)
		in.sigs = append(in.sigs, sig)
		in.block(e.Body)
		in.sigs = in.sigs[:len(in.sigs)-1]
		return unknownValue()
	case *ast.KeyValueExpr:
		in.eval(e.Value)
		return unknownValue()
	}
	return unknownValue()
}

func (in *dimInterp) evalIdent(id *ast.Ident) dimValue {
	obj := in.info().Uses[id]
	if obj == nil {
		obj = in.info().Defs[id]
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
		return in.read(obj, id.Pos())
	case nil:
		return in.weakName(id.Name, id.Pos())
	}
	return unknownValue()
}

// read returns the cell value of obj, falling back to a weak name seed
// for objects with no cell information.
func (in *dimInterp) read(obj types.Object, pos token.Pos) dimValue {
	if c, ok := in.f.cells[obj]; ok && c.val.state != dimUnknown {
		if c.val.state == dimConflict {
			return unknownValue()
		}
		return c.val
	}
	return in.weakName(obj.Name(), pos)
}

func (in *dimInterp) weakName(name string, pos token.Pos) dimValue {
	if u, ok := nameUnit(name); ok {
		return dimValue{state: dimHas, u: u, strong: false,
			prov: &dimStep{pos: pos, desc: fmt.Sprintf("name suffix of %q", name)}}
	}
	return unknownValue()
}

func (in *dimInterp) evalBinary(be *ast.BinaryExpr) dimValue {
	x := in.eval(be.X)
	y := in.eval(be.Y)
	switch be.Op {
	case token.ADD, token.SUB:
		return in.additive(x, y, be)
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		in.checkPair(x, y, be.OpPos, be.Op.String())
		return unknownValue()
	case token.MUL:
		if x.has() && y.has() {
			return dimValue{state: dimHas, u: x.u.mul(y.u), strong: x.strong && y.strong, prov: pickProv(x, y)}
		}
		return unknownValue()
	case token.QUO:
		if x.has() && y.has() {
			return dimValue{state: dimHas, u: x.u.div(y.u), strong: x.strong && y.strong, prov: pickProv(x, y)}
		}
		return unknownValue()
	case token.REM:
		return x
	}
	return unknownValue()
}

// additive joins the operands of +/-: equal units pass through,
// incompatible concrete units are a finding.
func (in *dimInterp) additive(x, y dimValue, be *ast.BinaryExpr) dimValue {
	if x.has() && y.has() {
		if x.u.equal(y.u) {
			out := x
			out.strong = x.strong || y.strong
			return out
		}
		in.reportMix(x, y, be)
		return dimValue{state: dimConflict}
	}
	if x.has() {
		return x
	}
	if y.has() {
		return y
	}
	return unknownValue()
}

// checkPair reports when two concrete values of an order/accumulation
// site disagree on units.
func (in *dimInterp) checkPair(x, y dimValue, pos token.Pos, op string) {
	if in.f.report && x.has() && y.has() && !x.u.equal(y.u) {
		in.f.addFinding(pos, "%s mixes %s with %s (%s; %s); convert one side explicitly or annotate with //rap:unit",
			op, x.u, y.u, in.describe(x), in.describe(y))
	}
}

func (in *dimInterp) reportMix(x, y dimValue, be *ast.BinaryExpr) {
	if !in.f.report {
		return
	}
	in.f.addFinding(be.OpPos, "%s %s %s mixes %s with %s (%s; %s); convert one side explicitly or annotate with //rap:unit",
		exprName(be.X), be.Op, exprName(be.Y), x.u, y.u, in.describe(x), in.describe(y))
}

// exprName renders a short operand name for messages.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.CallExpr:
		return exprName(e.Fun) + "(…)"
	case *ast.IndexExpr:
		return exprName(e.X) + "[…]"
	case *ast.BinaryExpr:
		return "the " + e.Op.String() + " expression"
	}
	return "the expression"
}

func pickProv(x, y dimValue) *dimStep {
	if x.prov != nil {
		return x.prov
	}
	return y.prov
}

func (in *dimInterp) evalCall(call *ast.CallExpr) dimValue {
	// Type conversion: float64(x) keeps x's unit.
	if tv, ok := in.info().Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return in.eval(call.Args[0])
	}
	callee := calleeOf(in.info(), call)
	if callee == nil {
		// Builtins and dynamic calls: evaluate arguments for their
		// side findings; min/max/append keep the first argument's unit.
		var args []dimValue
		for _, a := range call.Args {
			args = append(args, in.eval(a))
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(args) > 0 {
			switch id.Name {
			case "min", "max":
				for i := 1; i < len(args); i++ {
					in.checkPair(args[0], args[i], call.Args[i].Pos(), id.Name)
				}
				return args[0]
			case "append":
				for i := 1; i < len(args); i++ {
					if obj := in.lvalue(call.Args[0]); obj != nil {
						in.flowInto(obj, args[i], call.Args[i].Pos(), "appended")
					}
				}
				return args[0]
			}
		}
		return unknownValue()
	}
	if v, ok := in.mathCall(call, callee); ok {
		return v
	}
	in.bindArgs(call, callee)
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return unknownValue()
	}
	return in.read(sig.Results().At(0), call.Pos()).extend(call.Pos(), "returned by "+shortFuncName(callee))
}

// mathCall models the unit-transparent math helpers.
func (in *dimInterp) mathCall(call *ast.CallExpr, callee *types.Func) (dimValue, bool) {
	if callee.Pkg() == nil || callee.Pkg().Path() != "math" {
		return unknownValue(), false
	}
	switch callee.Name() {
	case "Abs", "Floor", "Ceil", "Round", "Trunc":
		if len(call.Args) == 1 {
			return in.eval(call.Args[0]), true
		}
	case "Max", "Min":
		if len(call.Args) == 2 {
			x, y := in.eval(call.Args[0]), in.eval(call.Args[1])
			in.checkPair(x, y, call.Pos(), "math."+callee.Name())
			return in.additiveJoin(x, y), true
		}
	case "Mod", "Remainder":
		if len(call.Args) == 2 {
			v := in.eval(call.Args[0])
			in.eval(call.Args[1])
			return v, true
		}
	}
	// Other math functions change or destroy dimensions; evaluate args
	// and return unknown.
	for _, a := range call.Args {
		in.eval(a)
	}
	return unknownValue(), true
}

func (in *dimInterp) additiveJoin(x, y dimValue) dimValue {
	if x.has() {
		return x
	}
	return y
}

// bindArgs flows call arguments into the callee's parameter cells
// (intra-package joins; cross-package annotation checks).
func (in *dimInterp) bindArgs(call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		v := in.eval(arg)
		var param *types.Var
		switch {
		case sig.Variadic() && i >= np-1:
			param = sig.Params().At(np - 1)
		case i < np:
			param = sig.Params().At(i)
		}
		if param == nil {
			continue
		}
		in.flowInto(param, v, arg.Pos(),
			fmt.Sprintf("argument %q of %s", param.Name(), shortFuncName(callee)))
	}
}

// compositeLit flows keyed struct-literal values into field cells.
func (in *dimInterp) compositeLit(cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			in.eval(elt)
			continue
		}
		v := in.eval(kv.Value)
		if key, ok := kv.Key.(*ast.Ident); ok {
			if obj := in.info().Uses[key]; obj != nil {
				if fv, ok := obj.(*types.Var); ok && fv.IsField() {
					in.flowInto(fv, v, kv.Value.Pos(), fmt.Sprintf("field %q literal", key.Name))
					continue
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Rendering.

// pos renders a position as base-file:line for inclusion in messages.
func (in *dimInterp) pos(p token.Pos) string {
	position := in.pkg.Fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}

// describe renders a value's unit with its example flow path,
// seed-first: `us from //rap:unit us on "Capacity" (capacity.go:24) ->
// assigned to "total" (costmodel.go:37)`.
func (in *dimInterp) describe(v dimValue) string {
	if !v.has() {
		return "unknown"
	}
	var steps []*dimStep
	for s := v.prov; s != nil; s = s.prev {
		steps = append(steps, s)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s", v.u)
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		if i == len(steps)-1 {
			fmt.Fprintf(&b, " from %s (%s)", s.desc, in.pos(s.pos))
		} else {
			fmt.Fprintf(&b, " -> %s (%s)", s.desc, in.pos(s.pos))
		}
	}
	return b.String()
}
