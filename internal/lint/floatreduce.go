package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatReduce flags floating-point accumulations whose iteration or
// completion order is not statically deterministic — the reassociation
// hazard golden digests only catch after the fact. Three shapes:
//
//   - map-range sums: `for _, v := range m { sum += v }` with a float
//     accumulator (outside the deterministic packages, where maporder
//     already polices every order-sensitive map body);
//   - goroutine reductions: a float accumulation into a variable
//     captured from the enclosing function inside a `go func(){…}()` or
//     errgroup-style `x.Go(func(){…})` closure — completion order is
//     scheduler-dependent even when every write holds a mutex;
//   - channel drains: float accumulation of values received from a
//     channel that multiple loop-launched goroutines send to — arrival
//     order interleaves nondeterministically.
//
// Deterministic reductions (per-worker partials merged in index order,
// sorted-key iteration) pass; intentional sites carry //lint:ignore
// floatreduce with a reason.
var FloatReduce = &Analyzer{
	Name: "floatreduce",
	Doc:  "floating-point accumulation in a nondeterministic order",
	Run:  runFloatReduce,
}

func runFloatReduce(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFloatReduce(p, fd)
			}
		}
	}
}

func checkFloatReduce(p *Pass, fd *ast.FuncDecl) {
	var loops []ast.Node
	type launch struct {
		lit    *ast.FuncLit
		inLoop bool
		// idxVars holds the per-iteration variables of the loops
		// enclosing the launch site: a cell indexed by one of them is
		// private to this worker, not shared state.
		idxVars map[types.Object]bool
	}
	var launches []launch
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, n)
		case *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				launches = append(launches, launch{lit, inAnyLoop(loops, n.Pos()), loopIndexVars(p, loops, n.Pos())})
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Go" && len(n.Args) >= 1 {
				if lit, ok := n.Args[0].(*ast.FuncLit); ok {
					launches = append(launches, launch{lit, inAnyLoop(loops, n.Pos()), loopIndexVars(p, loops, n.Pos())})
				}
			}
		}
		return true
	})

	// Channels fed by more than one concurrently running sender: any
	// goroutine launched inside a loop that sends on them.
	multiSend := map[types.Object]bool{}
	for _, l := range launches {
		if !l.inLoop {
			continue
		}
		ast.Inspect(l.lit.Body, func(n ast.Node) bool {
			if s, ok := n.(*ast.SendStmt); ok {
				if obj := chanObj(p, s.Chan); obj != nil {
					multiSend[obj] = true
				}
			}
			return true
		})
	}

	// Goroutine reductions: float accumulation into captured state.
	for _, l := range launches {
		lit := l.lit
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			target, op := floatAccumTarget(p, as)
			if target == nil {
				return true
			}
			// Per-worker partials: `parts[w] += …` where w is the
			// launching loop's variable writes a cell no other worker
			// touches — the deterministic pattern the message
			// recommends, so stay silent.
			if ix, ok := ast.Unparen(target).(*ast.IndexExpr); ok && l.idxVars[objOf2(p, ix.Index)] {
				return true
			}
			v := baseVar(p, target)
			if v == nil || within(lit, v.Pos()) {
				return true
			}
			p.Report(as.TokPos, "goroutine accumulates float %q with %s into shared state; completion order is scheduler-dependent and float addition does not reassociate — accumulate per-worker partials and reduce in a fixed order", v.Name(), op)
			return true
		})
	}

	// Map-range sums and multi-sender channel drains.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Map:
			// maporder already polices every order-sensitive map body in
			// the deterministic packages; stay silent there.
			if deterministicPkgNames[p.Pkg.Name()] {
				return true
			}
			reportRangeAccums(p, rs, "map iteration order is randomized")
		case *types.Chan:
			if obj := chanObj(p, rs.X); obj != nil && multiSend[obj] {
				reportRangeAccums(p, rs, "receive order from concurrent senders is scheduler-dependent")
			}
		}
		return true
	})

	// Receive-in-loop drains: `sum += <-ch` inside a for loop.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		target, op := floatAccumTarget(p, as)
		if target == nil || !inAnyLoop(loops, as.Pos()) {
			return true
		}
		for _, r := range as.Rhs {
			recv := receivedChan(p, r)
			if recv != nil && multiSend[recv] {
				p.Report(as.TokPos, "float accumulation with %s of values received from a channel with concurrent senders; receive order is scheduler-dependent — collect into an indexed slice and reduce in a fixed order", op)
				break
			}
		}
		return true
	})
}

// reportRangeAccums reports every float accumulation in a range body
// whose accumulator outlives the loop. Element-wise updates keyed by
// the range key itself (`for k, v := range m { out[k] += v }`) are
// order-independent — each key's cell is touched exactly once per
// range, and distinct cells don't interact — so they stay silent.
func reportRangeAccums(p *Pass, rs *ast.RangeStmt, why string) {
	key := objOf2(p, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		target, op := floatAccumTarget(p, as)
		if target == nil {
			return true
		}
		if key != nil && indexedByKey(p, target, key) {
			return true
		}
		v := baseVar(p, target)
		if v == nil || within(rs.Body, v.Pos()) {
			return true
		}
		p.Report(as.TokPos, "float accumulation with %s while %s; rounding depends on visit order — iterate sorted keys or reduce in a fixed order", op, why)
		return true
	})
}

// indexedByKey reports whether the accumulation target is an index
// expression whose index is exactly the range key variable.
func indexedByKey(p *Pass, target ast.Expr, key types.Object) bool {
	ix, ok := ast.Unparen(target).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return objOf2(p, ix.Index) == key
}

// objOf2 resolves an expression to its object when it is a plain
// identifier, or nil.
func objOf2(p *Pass, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return objOf(p, id)
}

// floatAccumTarget returns the accumulated lvalue and the operator when
// as is a float accumulation: a compound `+=`/`-=`/`*=`/`/=`, or the
// spelled-out `x = x + v` form.
func floatAccumTarget(p *Pass, as *ast.AssignStmt) (ast.Expr, string) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, ""
	}
	lhs := as.Lhs[0]
	if !typeIsFloat(p.Info, lhs) {
		return nil, ""
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, as.Tok.String()
	case token.ASSIGN:
		be, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return nil, ""
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, ""
		}
		if sameLvalue(p, lhs, be.X) || be.Op == token.ADD && sameLvalue(p, lhs, be.Y) {
			return lhs, be.Op.String() + "="
		}
	}
	return nil, ""
}

// sameLvalue reports whether two expressions statically name the same
// variable or field chain.
func sameLvalue(p *Pass, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && objOf(p, a) != nil && objOf(p, a) == objOf(p, bi)
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && objOf(p, a.Sel) == objOf(p, bs.Sel) && sameLvalue(p, a.X, bs.X)
	}
	return false
}

func objOf(p *Pass, id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// baseVar resolves an accumulation target to its base variable: the
// identifier itself, or the root of a selector/index/star chain.
func baseVar(p *Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := objOf(p, x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// chanObj resolves a channel expression to its variable, or nil.
func chanObj(p *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(p, e)
	case *ast.SelectorExpr:
		return objOf(p, e.Sel)
	}
	return nil
}

// receivedChan returns the channel object when e contains a receive
// expression (`<-ch`, possibly inside arithmetic), or nil.
func receivedChan(p *Pass, e ast.Expr) types.Object {
	var found types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW && found == nil {
			found = chanObj(p, u.X)
		}
		return found == nil
	})
	return found
}

// loopIndexVars collects the per-iteration variables of every loop
// enclosing pos: the range key/value, and identifiers defined in a for
// statement's init clause.
func loopIndexVars(p *Pass, loops []ast.Node, pos token.Pos) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, l := range loops {
		if !within(l, pos) {
			continue
		}
		switch l := l.(type) {
		case *ast.RangeStmt:
			if o := objOf2(p, l.Key); o != nil {
				vars[o] = true
			}
			if o := objOf2(p, l.Value); o != nil {
				vars[o] = true
			}
		case *ast.ForStmt:
			if as, ok := l.Init.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if o := objOf2(p, lhs); o != nil {
						vars[o] = true
					}
				}
			}
		}
	}
	return vars
}

// inAnyLoop reports whether pos falls inside one of the collected loop
// nodes.
func inAnyLoop(loops []ast.Node, pos token.Pos) bool {
	for _, l := range loops {
		if within(l, pos) {
			return true
		}
	}
	return false
}
