package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// unitSuffixes maps identifier-name suffixes to the unit they declare;
// longer suffixes are matched first. A name that is exactly a suffix
// (a constant named MB) is treated as a conversion constant, not a
// unit-carrying value.
var unitSuffixes = []struct{ suffix, unit string }{
	{"GiB", "GiB"}, {"MiB", "MiB"}, {"KiB", "KiB"},
	{"Gbps", "Gb/s"}, {"GBps", "GB/s"}, {"MBps", "MB/s"},
	{"Bytes", "bytes"},
	{"GB", "GB"}, {"MB", "MB"}, {"KB", "KB"},
}

// unitMixOps are the operators for which both operands must agree on a
// unit: sums, differences, and comparisons. Multiplication and division
// are exempt — they are how conversions are written.
var unitMixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

// UnitMix flags additive or comparison expressions whose operands carry
// different units in their names (xBytes + yMB) with no visible
// conversion. Composite operands (a*bytesPerMB) have no inferred unit
// and are never flagged, so wrapping one side in an explicit conversion
// silences the finding.
var UnitMix = &Analyzer{
	Name: "unitmix",
	Doc:  "arithmetic mixing byte/rate units without a conversion",
	Run:  runUnitMix,
}

func runUnitMix(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !unitMixOps[be.Op] {
				return true
			}
			ux, uy := unitOf(be.X), unitOf(be.Y)
			if ux != "" && uy != "" && ux != uy {
				p.Report(be.OpPos, "%s %s mixes %s with %s; convert one side explicitly", nameOf(be.X), be.Op, ux, uy)
			}
			return true
		})
	}
}

// unitOf infers the unit of a bare identifier or field selector from
// its name suffix; every other expression shape is "no unit".
func unitOf(e ast.Expr) string {
	name := nameOf(e)
	if name == "" {
		return ""
	}
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s.suffix) && len(name) > len(s.suffix) {
			return s.unit
		}
	}
	return ""
}

func nameOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return nameOf(e.X)
	}
	return ""
}
