package lint

import (
	"strings"
)

// LockOrder reports cycles in the static lock-acquisition graph:
// acquiring lock B while holding lock A adds the edge A -> B, both for
// direct nested acquisitions and for calls made under A to functions
// that (transitively, along the static call graph) acquire B. A cycle
// means two executions can acquire the same locks in opposite orders —
// a potential deadlock — and the finding carries one example of the
// reverse acquisition closing the cycle.
//
// Lock identity is the resolved mutex object; struct-field mutexes are
// qualified by the rendered base expression, so `a.mu` and `b.mu` on
// two parameters of the same type are distinct locks (the classic
// transfer(a, b)/transfer(b, a) deadlock), at the cost of depending on
// consistent naming across functions. Self-edges (re-acquiring the same
// key) are skipped: instance aliasing makes them too noisy to report.
//
// Per-package reports only consume acquisition edges contributed by the
// package itself and its dependency closure (the cache-coherence rule
// shared with the v3 SSA layer), and a cycle is reported in the package
// contributing its first edge, so joint runs do not double-report.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock-acquisition cycle across the call graph (potential deadlock)",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	facts := p.Prog.concFacts()
	closure := facts.depClosure(p.Path)

	// The visible subgraph: edges from this package and its deps.
	var visible []lockEdge
	adj := map[lockKey][]int{}
	for _, e := range facts.edges {
		if closure == nil || !closure[e.pkg] {
			continue
		}
		adj[e.from] = append(adj[e.from], len(visible))
		visible = append(visible, e)
	}

	reported := map[string]bool{}
	for _, e := range visible {
		if e.pkg != p.Path {
			continue
		}
		back := pathBetween(visible, adj, e.to, e.from)
		if back == nil {
			continue
		}
		cycle := append([]lockEdge{e}, back...)
		id := cycleID(facts, cycle)
		if reported[id] {
			continue
		}
		reported[id] = true

		var names []string
		names = append(names, facts.lockDisplay(e.from), facts.lockDisplay(e.to))
		for _, b := range back {
			names = append(names, facts.lockDisplay(b.to))
		}
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		ex := back[0]
		exVia := ""
		if ex.via != "" {
			exVia = " via " + ex.via
		}
		p.Report(e.pos, "lock order cycle %s: %s acquired while holding %s%s, but the reverse order is taken at %s%s (potential deadlock)",
			strings.Join(names, " -> "), facts.lockDisplay(e.to), facts.lockDisplay(e.from), via,
			shortPos(p.Fset, ex.pos), exVia)
	}
}

// pathBetween finds a shortest edge path from `from` to `to` in the
// visible subgraph (BFS in insertion order, so the result and therefore
// the finding text are deterministic), or nil.
func pathBetween(edges []lockEdge, adj map[lockKey][]int, from, to lockKey) []lockEdge {
	type step struct {
		key  lockKey
		path []lockEdge
	}
	visited := map[lockKey]bool{from: true}
	queue := []step{{key: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, i := range adj[cur.key] {
			e := edges[i]
			if e.to == to {
				return append(append([]lockEdge(nil), cur.path...), e)
			}
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			queue = append(queue, step{key: e.to, path: append(append([]lockEdge(nil), cur.path...), e)})
		}
	}
	return nil
}

// cycleID canonicalizes a cycle (rotation-invariant) for dedupe.
func cycleID(facts *concFacts, cycle []lockEdge) string {
	names := make([]string, len(cycle))
	for i, e := range cycle {
		names[i] = facts.lockDisplay(e.from)
	}
	best := 0
	for i := 1; i < len(names); i++ {
		if names[i] < names[best] {
			best = i
		}
	}
	rotated := append(append([]string(nil), names[best:]...), names[:best]...)
	return strings.Join(rotated, "\x00")
}
