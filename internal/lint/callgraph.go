package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// deterministicDirective declares (in a function's doc comment) that
// the function must be transitively free of nondeterminism; detaint
// checks the contract against the call graph.
const deterministicDirective = "//rap:deterministic"

// guardedByRe matches the mutex-contract annotation in a struct-field
// comment: `// guarded by <mutex>`. The named mutex must be held (same
// receiver/base expression) at every access to the field.
var guardedByRe = regexp.MustCompile(`^//\s*guarded by ([A-Za-z_][A-Za-z0-9_]*)\s*$`)

// taintSite is one local source of nondeterminism inside a function
// body: a wall-clock read, a draw from the global math/rand source, or
// an order-dependent map iteration.
type taintSite struct {
	pos  token.Pos
	pkg  *Package
	desc string
	// local names the v1 analyzer whose per-package scope already
	// covers this site ("maporder" or "seededrand"); detaint stays
	// silent inside those scopes to avoid double-reporting.
	local string
}

// locallyCovered reports whether the site is already policed by a v1
// local analyzer (either reported by it, or deliberately ignored at the
// site) — in which case detaint has nothing to add.
func (t *taintSite) locallyCovered() bool {
	switch t.local {
	case "maporder":
		return deterministicPkgNames[t.pkg.Name]
	case "seededrand":
		return isInternalPath(t.pkg.Path)
	}
	return false
}

// funcNode is one declared function or method with a body: a call-graph
// vertex carrying its static call edges and local taint sites.
type funcNode struct {
	obj           *types.Func
	decl          *ast.FuncDecl
	pkg           *Package
	deterministic bool          // carries //rap:deterministic in its doc comment
	callees       []*types.Func // static call edges, source order, deduped
	taints        []taintSite
}

// Program is the whole-module view shared by every pass of a run: the
// call graph over all loaded packages, per-package ignore indexes, the
// guarded-field contract map, and the //rap:deterministic annotation
// index. It is immutable after NewProgram (directive usage marks are
// atomic), so passes for different packages may run concurrently.
type Program struct {
	Packages []*Package

	fns     map[*types.Func]*funcNode
	byPkg   map[string][]*funcNode // import path -> nodes sorted by position
	ignores map[string]*ignoreIndex
	guarded map[*types.Var]string // struct field -> mutex name from `// guarded by`
	// misplacedDet lists //rap:deterministic comments that are not the
	// doc comment of a function declaration, per package path.
	misplacedDet map[string][]token.Pos

	// dim is the v3 SSA value-flow layer (see ssa.go), built lazily by
	// the first dimcheck pass — fully cache-warm runs never pay for it.
	dimOnce sync.Once
	dim     *dimFacts

	// conc is the v4 concurrency fact base (see conc.go), built lazily
	// by the first v4 pass — fully cache-warm runs never pay for it.
	concOnce sync.Once
	conc     *concFacts
}

// NewProgram joins type-checked packages into a Program, building the
// static call graph, collecting local taint sites, guarded-field
// annotations, determinism annotations, and ignore indexes.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages:     pkgs,
		fns:          map[*types.Func]*funcNode{},
		byPkg:        map[string][]*funcNode{},
		ignores:      map[string]*ignoreIndex{},
		guarded:      map[*types.Var]string{},
		misplacedDet: map[string][]token.Pos{},
	}
	for _, pkg := range pkgs {
		prog.ignores[pkg.Path] = buildIgnores(pkg.Fset, pkg.Files)
		prog.addPackage(pkg)
	}
	return prog
}

func (prog *Program) addPackage(pkg *Package) {
	// docDirectives collects the positions of //rap:deterministic lines
	// that legitimately sit in a FuncDecl doc comment.
	docDirectives := map[token.Pos]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			deterministic := false
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == deterministicDirective {
						deterministic = true
						docDirectives[c.Pos()] = true
					}
				}
			}
			if fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &funcNode{obj: obj, decl: fd, pkg: pkg, deterministic: deterministic}
			prog.scanBody(node)
			prog.fns[obj] = node
			prog.byPkg[pkg.Path] = append(prog.byPkg[pkg.Path], node)
		}
		// Struct-field mutex contracts.
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardNameOf(fld)
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						prog.guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	// Misplaced //rap:deterministic directives: anywhere in the file's
	// comments but not in a function's doc comment.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == deterministicDirective && !docDirectives[c.Pos()] {
					prog.misplacedDet[pkg.Path] = append(prog.misplacedDet[pkg.Path], c.Pos())
				}
			}
		}
	}
	sort.Slice(prog.byPkg[pkg.Path], func(i, j int) bool {
		ns := prog.byPkg[pkg.Path]
		return ns[i].decl.Pos() < ns[j].decl.Pos()
	})
}

// guardNameOf extracts the mutex name from a field's `// guarded by`
// annotation (doc comment above the field or trailing comment).
func guardNameOf(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// scanBody walks one function body collecting static call edges and
// local taint sites. Function literals belong to their enclosing
// declaration: their calls and taints are attributed to it.
func (prog *Program) scanBody(node *funcNode) {
	info := node.pkg.Info
	seen := map[*types.Func]bool{}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := calleeOf(info, n); callee != nil && !seen[callee] {
				seen[callee] = true
				node.callees = append(node.callees, callee)
			}
		case *ast.SelectorExpr:
			if desc, ok := nondeterministicUse(info, n); ok {
				node.taints = append(node.taints, taintSite{
					pos: n.Pos(), pkg: node.pkg, desc: desc, local: "seededrand",
				})
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if stmtsOrderInsensitive(info, n.Body.List, identName(n.Key)) {
				return true
			}
			node.taints = append(node.taints, taintSite{
				pos: n.For, pkg: node.pkg, desc: "order-dependent map iteration", local: "maporder",
			})
		}
		return true
	})
}

// calleeOf resolves a call expression to the declared function or
// method it statically invokes, or nil for builtins, conversions,
// function values, and interface-method calls (dynamic dispatch is
// outside the static graph; see DESIGN.md §6).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// nondeterministicUse classifies a selector as a global-rand draw or a
// wall-clock read, returning a human-readable description.
func nondeterministicUse(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	if !ok {
		return "", false
	}
	switch pn.Imported().Path() {
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			return fmt.Sprintf("the global math/rand source (%s.%s)", x.Name, sel.Sel.Name), true
		}
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			return fmt.Sprintf("the wall clock (time.%s)", sel.Sel.Name), true
		}
	}
	return "", false
}

// rootsIn returns the detaint roots declared in the package: functions
// annotated //rap:deterministic, plus every exported function of the
// internal deterministic packages (gpusim, sched, mapping, fusion,
// milp), whose results the golden digests pin.
func (prog *Program) rootsIn(path string) []*funcNode {
	var roots []*funcNode
	for _, node := range prog.byPkg[path] {
		if node.deterministic {
			roots = append(roots, node)
			continue
		}
		if deterministicPkgNames[node.pkg.Name] && isInternalPath(path) && node.decl.Name.IsExported() {
			roots = append(roots, node)
		}
	}
	return roots
}

// taintHit is one taint site reachable from a root, with the static
// call path that reaches it.
type taintHit struct {
	site *taintSite
	path []*funcNode // root ... function containing the site
}

// reachableTaints walks the call graph breadth-first from root and
// returns every taint site in reach, each with one (shortest) call
// path. Traversal order is deterministic: callees are visited in
// source order.
func (prog *Program) reachableTaints(root *funcNode) []taintHit {
	visited := map[*funcNode]bool{root: true}
	parent := map[*funcNode]*funcNode{}
	queue := []*funcNode{root}
	var hits []taintHit
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if len(fn.taints) > 0 {
			var path []*funcNode
			for n := fn; n != nil; n = parent[n] {
				path = append([]*funcNode{n}, path...)
			}
			for i := range fn.taints {
				hits = append(hits, taintHit{site: &fn.taints[i], path: path})
			}
		}
		for _, callee := range fn.callees {
			cn := prog.fns[callee]
			if cn == nil || visited[cn] {
				continue
			}
			visited[cn] = true
			parent[cn] = fn
			queue = append(queue, cn)
		}
	}
	return hits
}

// shortFuncName renders a function for findings: pkg.Func or
// (pkg.Type).Method.
func shortFuncName(f *types.Func) string {
	pkgName := ""
	if f.Pkg() != nil {
		pkgName = f.Pkg().Name() + "."
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s%s).%s", pkgName, n.Obj().Name(), f.Name())
		}
	}
	return pkgName + f.Name()
}

func pathString(path []*funcNode) string {
	names := make([]string, len(path))
	for i, n := range path {
		names[i] = shortFuncName(n.obj)
	}
	return strings.Join(names, " -> ")
}
