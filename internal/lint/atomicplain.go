package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPlain flags objects accessed both through sync/atomic and
// through plain loads/stores: once any access to a word is atomic,
// every access must be, or the atomic calls protect nothing (the race
// detector only catches the interleavings that actually happen; this is
// the static complement). The atomic-access set is interprocedural —
// an address passed to atomic.AddInt64 in a dependency package taints
// the object for every dependent — while plain accesses are reported in
// the package that makes them (the cache-coherence direction).
//
// Suppressed plain accesses: the defining occurrence (initialization
// before the object is shared is the universal idiom), field accesses
// made while holding any mutex (a dominating lock orders them against
// the atomics), bare-identifier accesses in functions that take any
// lock (coarse, but bare-ident atomics are locals and the flow is
// already lock-disciplined), and fields carrying a `// guarded by`
// contract — guardedby already polices those. Typed atomics
// (atomic.Int64 …) are out of scope: the type system forbids plain
// access to them.
var AtomicPlain = &Analyzer{
	Name: "atomicplain",
	Doc:  "object accessed both via sync/atomic and via plain loads/stores",
	Run:  runAtomicPlain,
}

func runAtomicPlain(p *Pass) {
	facts := p.Prog.concFacts()
	closure := facts.depClosure(p.Path)

	// Objects atomically accessed somewhere in this package's closure,
	// each with its first atomic site for the finding text.
	tainted := map[types.Object]atomicUse{}
	for obj, uses := range facts.atomics {
		for _, u := range uses {
			if closure != nil && closure[u.pkg] {
				if cur, ok := tainted[obj]; !ok || u.pos < cur.pos {
					tainted[obj] = u
				}
			}
		}
	}
	if len(tainted) == 0 {
		return
	}

	for _, f := range p.Files {
		// Positions belonging to the atomic calls themselves (&x inside
		// atomic.AddInt64(&x, …)) and to selector Sel identifiers, which
		// the heldWalker pass covers.
		atomicSites := map[token.Pos]bool{}
		selIdents := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if atomicArgObject(p.Info, n) != nil {
					u := ast.Unparen(n.Args[0]).(*ast.UnaryExpr)
					atomicSites[ast.Unparen(u.X).Pos()] = true
				}
			case *ast.SelectorExpr:
				selIdents[n.Sel.Pos()] = true
			}
			return true
		})

		report := func(pos token.Pos, obj types.Object) {
			use, ok := tainted[obj]
			if !ok {
				return
			}
			if v, isVar := obj.(*types.Var); isVar && p.Prog.guarded[v] != "" {
				return // guardedby's jurisdiction
			}
			p.Report(pos, "plain access to %q, which is accessed atomically at %s; use sync/atomic consistently or guard both with a mutex",
				obj.Name(), shortPos(p.Fset, use.pos))
		}

		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Field and selector accesses: held-set walk, so accesses
			// under any mutex stay silent.
			w := &heldWalker{
				info: p.Info,
				onSel: func(sel *ast.SelectorExpr, held map[string]bool) {
					if len(held) > 0 || atomicSites[sel.Pos()] {
						return
					}
					if obj := p.Info.Uses[sel.Sel]; obj != nil {
						report(sel.Sel.Pos(), obj)
					}
				},
			}
			w.stmts(fd.Body.List, map[string]bool{})

			// Bare-identifier accesses (locals, package vars). Functions
			// that take any lock are skipped wholesale: the walker has no
			// ident hook, and a lock-taking function is already ordering
			// its accesses.
			if bodyTakesLock(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || atomicSites[id.Pos()] || selIdents[id.Pos()] {
					return true
				}
				if p.Info.Defs[id] != nil {
					return true // defining occurrence: initialization
				}
				if obj, ok := p.Info.Uses[id].(*types.Var); ok && obj != nil {
					report(id.Pos(), obj)
				}
				return true
			})
		}
	}
}

// bodyTakesLock reports whether the body contains any Lock/RLock call.
func bodyTakesLock(body *ast.BlockStmt) bool {
	takes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name, ok := lockMethod(call); ok && (name == "Lock" || name == "RLock") {
				takes = true
			}
		}
		return !takes
	})
	return takes
}
