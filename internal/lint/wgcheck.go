package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// WGCheck reports sync.WaitGroup misuse:
//
//   - Add inside the spawned goroutine (directly in the go-closure, or
//     interprocedurally via `go worker(&wg)` where the callee Adds on
//     its WaitGroup parameter): the corresponding Wait can observe a
//     zero counter before the goroutine runs and return early.
//   - Add with a negative constant argument: Done is the idiom, and a
//     negative Add is how counters go negative and panic.
//   - Done not reachable on every path of a goroutine: a non-deferred
//     Done preceded by a return, or by a call that can panic (the
//     call-graph extension of panicpath's local facts) — either skips
//     the Done and deadlocks the Wait.
//   - Add on a local WaitGroup that also Waits but has no reachable
//     Done: not in the function body (goroutine closures included) and
//     not via a callee that Dones on the forwarded parameter. When the
//     WaitGroup's address escapes to a function outside the analysis,
//     the check stays silent.
var WGCheck = &Analyzer{
	Name: "wgcheck",
	Doc:  "sync.WaitGroup misuse: Add in the spawned goroutine, skippable Done, negative Add, Add with no reachable Done",
	Run:  runWGCheck,
}

func runWGCheck(p *Pass) {
	facts := p.Prog.concFacts()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkWGFunc(p, facts, fd)
			}
		}
	}
}

// wgState aggregates one function's view of a single WaitGroup object.
type wgState struct {
	addPos  token.Pos // first non-negative Add outside goroutines
	hasWait bool
	hasDone bool
	escaped bool // address passed to a function without Done facts
	isLocal bool
}

func checkWGFunc(p *Pass, facts *concFacts, fd *ast.FuncDecl) {
	info := p.Info
	states := map[types.Object]*wgState{}
	stateOf := func(obj types.Object) *wgState {
		s := states[obj]
		if s == nil {
			s = &wgState{}
			// Only true locals count — a WaitGroup parameter can be
			// Done'd by whoever else shares it.
			if v, ok := obj.(*types.Var); ok {
				s.isLocal = v.Pos() >= fd.Body.Pos() && v.Pos() < fd.End()
			}
			states[obj] = s
		}
		return s
	}

	// goRanges marks the source ranges of goroutine closures, so Adds
	// and Dones can be attributed to goroutine or coordinator context.
	type span struct{ lo, hi token.Pos }
	var goSpans []span
	inGoroutine := func(pos token.Pos) bool {
		for _, s := range goSpans {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			goSpans = append(goSpans, span{lit.Pos(), lit.End()})
			checkGoroutineBody(p, facts, lit)
		} else if callee := calleeOf(info, gs.Call); callee != nil {
			// Interprocedural: go worker(&wg) where worker Adds on the
			// forwarded WaitGroup parameter.
			for argPos, arg := range gs.Call.Args {
				obj := forwardedObject(info, arg)
				if obj == nil || !isWaitGroup(obj.Type()) {
					continue
				}
				for _, idx := range facts.addsOnParam[callee] {
					if idx == argPos {
						p.Report(gs.Go, "%s calls Add on the WaitGroup spawned with it; Add before the go statement so Wait cannot return early",
							shortFuncName(callee))
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			obj := wgObject(info, sel.X)
			if obj != nil {
				s := stateOf(obj)
				switch sel.Sel.Name {
				case "Add":
					if len(call.Args) == 1 && isNegativeConst(info, call.Args[0]) {
						p.Report(call.Pos(), "negative WaitGroup Add; use Done (a negative counter panics)")
						return true
					}
					if inGoroutine(call.Pos()) {
						p.Report(call.Pos(), "Add inside the spawned goroutine; Add before the go statement so Wait cannot return early")
						return true
					}
					if s.addPos == token.NoPos {
						s.addPos = call.Pos()
					}
				case "Done":
					s.hasDone = true
				case "Wait":
					s.hasWait = true
				}
				return true
			}
		}
		// A call forwarding the WaitGroup: Done facts make the callee a
		// Done site; anything else (or an unresolved callee) escapes it.
		callee := calleeOf(info, call)
		for argPos, arg := range call.Args {
			obj := forwardedObject(info, arg)
			if obj == nil || !isWaitGroup(obj.Type()) {
				continue
			}
			s := stateOf(obj)
			handled := false
			if callee != nil {
				for _, idx := range facts.donesOnParam[callee] {
					if idx == argPos {
						s.hasDone = true
						handled = true
					}
				}
				for _, idx := range facts.addsOnParam[callee] {
					if idx == argPos {
						handled = true // the callee manages the counter
					}
				}
			}
			if !handled {
				s.escaped = true
			}
		}
		return true
	})

	for _, s := range states {
		if s.isLocal && !s.escaped && s.hasWait && !s.hasDone && s.addPos != token.NoPos {
			p.Report(s.addPos, "WaitGroup Add with no reachable Done before Wait; the Wait blocks forever")
		}
	}
}

// checkGoroutineBody flags non-deferred Done calls that an earlier
// return or a panic-capable call can skip, deadlocking the Wait.
func checkGoroutineBody(p *Pass, facts *concFacts, lit *ast.FuncLit) {
	info := p.Info
	// Deferred Dones (directly or inside a deferred closure) are safe.
	deferred := map[token.Pos]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		markDones(info, ds.Call, deferred)
		if dl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(dl.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					markDones(info, c, deferred)
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || deferred[call.Pos()] {
			return true
		}
		if wgObject(info, sel.X) == nil {
			return true
		}
		if reason := skipsDone(info, facts, lit.Body, call.Pos()); reason != "" {
			p.Report(call.Pos(), "Done is not reached on every path: %s; defer the Done instead", reason)
		}
		return true
	})
}

// markDones records Done call positions rooted at call.
func markDones(info *types.Info, call *ast.CallExpr, out map[token.Pos]bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && wgObject(info, sel.X) != nil {
		out[call.Pos()] = true
	}
}

// skipsDone looks for a return statement or a panic-capable call before
// pos in the goroutine body (outside nested function literals),
// returning a description of the skipping construct or "".
func skipsDone(info *types.Info, facts *concFacts, body *ast.BlockStmt, pos token.Pos) string {
	reason := ""
	walk := func(n ast.Node) bool {
		if n == nil || reason != "" {
			return false
		}
		if n.Pos() >= pos {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its returns do not leave the goroutine
		case *ast.ReturnStmt:
			reason = "a return precedes it"
			return false
		case *ast.CallExpr:
			if callee := calleeOf(info, n); callee != nil && facts.mayPanic[callee] {
				reason = shortFuncName(callee) + " can panic before it runs"
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					reason = "a panic precedes it"
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return reason
}

// isNegativeConst reports whether e is a negative integer constant.
func isNegativeConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v < 0
}
