package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// GoroutineLeak reports goroutines that can block forever on a channel
// the rest of the program will never service:
//
//   - A goroutine sends on (or receives from) a locally-made channel
//     with no counterpart operation outside the goroutine. Counterparts
//     are found in the enclosing function, in sibling goroutines, in
//     select clauses, and — through the call graph — in callees the
//     channel is forwarded to.
//   - The only counterpart sits after a return statement that can fire
//     between the go statement and the counterpart, so an early exit
//     strands the goroutine ("the early-returnable path").
//   - A goroutine spins in a condition-less for loop containing no
//     return, break, select, channel operation, or call — nothing in
//     the loop can ever observe a stop signal.
//
// The analysis is deliberately conservative about aliasing: a channel
// whose identity escapes the function (stored in a struct, returned,
// passed to a function with no channel facts) is not tracked. Buffered
// channels suppress send-blocking reports; receives on them are still
// checked, since an empty buffer blocks like an unbuffered channel.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "goroutine that can block forever on a channel with no live counterpart",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	facts := p.Prog.concFacts()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLeaks(p, facts, fd)
				checkSpinLoops(p, fd)
			}
		}
	}
}

// goSpan is the extent of one goroutine launched in the function: the
// body of a go-closure, or the whole go statement for `go callee(ch)`.
type goSpan struct {
	lo, hi token.Pos
	goPos  token.Pos // position of the go statement itself
}

// chanOpSite is one send/receive/range/close on a tracked channel.
type chanOpSite struct {
	pos  token.Pos
	op   string // "send", "receive", "range", "close"
	span int    // index into spans, or -1 for the enclosing function
	sel  bool   // inside a select statement (counterpart, never a leak)
}

// chanInfo tracks one locally-made channel through the function.
type chanInfo struct {
	obj      types.Object
	buffered bool
	capConst int64
	capKnown bool
	escaped  bool
	ops      []chanOpSite
}

func checkLeaks(p *Pass, facts *concFacts, fd *ast.FuncDecl) {
	info := p.Info

	// Locally-made channels: ch := make(chan T[, n]) with ch defined in
	// this assignment.
	chans := map[types.Object]*chanInfo{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
				continue
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			mk, ok := call.Fun.(*ast.Ident)
			if !ok || mk.Name != "make" {
				continue
			}
			if _, isBuiltin := info.Uses[mk].(*types.Builtin); !isBuiltin {
				continue
			}
			ci := &chanInfo{obj: obj}
			if len(call.Args) >= 2 {
				ci.buffered = true
				if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					if v, ok := constant.Int64Val(tv.Value); ok {
						ci.capConst, ci.capKnown = v, true
						ci.buffered = v > 0
					}
				}
			}
			chans[obj] = ci
		}
		return true
	})
	if len(chans) == 0 {
		return
	}

	// Goroutine extents, plus interprocedural ops for `go callee(ch)`.
	var spans []goSpan
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			spans = append(spans, goSpan{lo: lit.Pos(), hi: lit.End(), goPos: gs.Go})
			return true
		}
		// `go callee(ch)`: the span covers the whole statement, so the
		// channel-argument classification below attributes the callee's
		// channel facts to this goroutine.
		spans = append(spans, goSpan{lo: gs.Pos(), hi: gs.End(), goPos: gs.Go})
		return true
	})
	spanOf := func(pos token.Pos) int {
		// Innermost (latest-starting) span containing pos.
		best, bestLo := -1, token.NoPos
		for i, s := range spans {
			if s.lo <= pos && pos < s.hi && s.lo >= bestLo {
				best, bestLo = i, s.lo
			}
		}
		return best
	}

	// Select extents, to mark ops that have alternatives.
	var selSpans [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			selSpans = append(selSpans, [2]token.Pos{s.Pos(), s.End()})
		}
		return true
	})
	inSelect := func(pos token.Pos) bool {
		for _, s := range selSpans {
			if s[0] <= pos && pos < s[1] {
				return true
			}
		}
		return false
	}

	// Classify every occurrence of each tracked channel. Occurrences
	// that are not a recognized operation (or a harmless len/cap or a
	// forward to a callee with channel facts) escape the channel.
	handled := map[token.Pos]string{} // ident pos -> op ("" = harmless)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Chan).(*ast.Ident); ok && chans[info.Uses[id]] != nil {
				handled[id.Pos()] = "send"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && chans[info.Uses[id]] != nil {
					handled[id.Pos()] = "receive"
				}
			}
		case *ast.RangeStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && chans[info.Uses[id]] != nil {
				handled[id.Pos()] = "range"
			}
		case *ast.CallExpr:
			if fn, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin {
					if len(n.Args) == 1 {
						if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && chans[info.Uses[id]] != nil {
							switch fn.Name {
							case "close":
								handled[id.Pos()] = "close"
							case "len", "cap":
								handled[id.Pos()] = ""
							}
						}
					}
					return true
				}
			}
			callee := calleeOf(info, n)
			for argPos, arg := range n.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok || chans[info.Uses[id]] == nil {
					continue
				}
				if callee != nil {
					for _, op := range facts.chanParamOps[callee] {
						if op.idx == argPos {
							handled[id.Pos()] = op.op
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		ci := chans[obj]
		if ci == nil {
			return true
		}
		op, ok := handled[id.Pos()]
		if !ok {
			ci.escaped = true
			return true
		}
		if op != "" {
			ci.ops = append(ci.ops, chanOpSite{pos: id.Pos(), op: op, span: spanOf(id.Pos()), sel: inSelect(id.Pos())})
		}
		return true
	})

	for _, ci := range sortedChans(chans) {
		if ci.escaped {
			continue
		}
		checkChannel(p, fd, spans, ci)
	}
}

// sortedChans returns the channel infos in declaration order.
func sortedChans(chans map[types.Object]*chanInfo) []*chanInfo {
	out := make([]*chanInfo, 0, len(chans))
	for _, ci := range chans {
		out = append(out, ci)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].obj.Pos() < out[j-1].obj.Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func checkChannel(p *Pass, fd *ast.FuncDecl, spans []goSpan, ci *chanInfo) {
	sends := 0
	for _, o := range ci.ops {
		if o.op == "send" {
			sends++
		}
	}
	for _, o := range ci.ops {
		if o.span < 0 || o.sel || o.op == "close" {
			continue // only select-free goroutine ops can strand the goroutine
		}
		if o.op == "send" && ci.buffered && (!ci.capKnown || int64(sends) <= ci.capConst) {
			continue // the buffer absorbs every send
		}
		var compat map[string]bool
		var want string
		if o.op == "send" {
			compat = map[string]bool{"receive": true, "range": true}
			want = "receive"
		} else {
			compat = map[string]bool{"send": true, "close": true}
			want = "send or close"
		}
		verb := "receives from"
		if o.op == "send" {
			verb = "sends on"
		}

		safe := false
		earliest := token.NoPos
		for _, c := range ci.ops {
			if c.span == o.span || !compat[c.op] {
				continue
			}
			// A counterpart in another goroutine, or one already past
			// before the go statement runs, always services the op.
			if c.span >= 0 || c.pos < spans[o.span].goPos {
				safe = true
				break
			}
			if earliest == token.NoPos || c.pos < earliest {
				earliest = c.pos
			}
		}
		if safe {
			continue
		}
		if earliest == token.NoPos {
			p.Report(o.pos, "goroutine %s %q but nothing outside the goroutine will ever %s; it blocks forever",
				verb, ci.obj.Name(), want)
			continue
		}
		// The only counterparts come after the go statement: a return
		// in between strands the goroutine.
		if ret := returnBetween(fd.Body, spans[o.span], earliest); ret != nil {
			p.Report(o.pos, "goroutine %s %q but the only matching %s is after the return at %s, which leaks the goroutine",
				verb, ci.obj.Name(), want, shortPos(p.Fset, ret.Pos()))
		}
	}
}

// returnBetween finds a return statement in the enclosing function
// (outside nested function literals) positioned after the goroutine's go
// statement and fully before pos.
func returnBetween(body *ast.BlockStmt, span goSpan, pos token.Pos) *ast.ReturnStmt {
	var found *ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			if ret.Pos() >= span.hi && ret.End() < pos {
				found = ret
			}
		}
		return true
	})
	return found
}

// checkSpinLoops flags condition-less for loops in go-closures with no
// way to observe a stop signal: no return, break, select, channel
// operation, or call anywhere in the loop body.
func checkSpinLoops(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			loop, ok := m.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			exits := false
			ast.Inspect(loop.Body, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.ReturnStmt, *ast.SelectStmt, *ast.CallExpr, *ast.SendStmt, *ast.RangeStmt:
					exits = true
				case *ast.BranchStmt:
					if x.Tok == token.BREAK || x.Tok == token.GOTO {
						exits = true
					}
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						exits = true
					}
				}
				return !exits
			})
			if !exits {
				p.Report(loop.For, "goroutine spins in a loop with no stop check, blocking operation, or call; it can neither stop nor yield")
			}
			return true
		})
		return true
	})
}
