package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgNames lists the packages whose outputs must be
// bit-reproducible: anything map-iteration order can leak into here
// breaks the gpusim golden digests.
var deterministicPkgNames = map[string]bool{
	"gpusim":  true,
	"sched":   true,
	"mapping": true,
	"fusion":  true,
	"milp":    true,
}

// MapOrder flags `for range` over maps inside the deterministic
// packages when the loop body's effects can depend on iteration order.
// Bodies restricted to sorted-key extraction (`keys = append(keys, k)`),
// per-key writes (`m2[k] = v`, `delete(m2, k)`), and exactly commutative
// integer reductions (`n += v`, `n++`) are allowed; anything else —
// including float accumulation, whose rounding is order-dependent — must
// iterate sorted keys or carry a //lint:ignore with a reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration feeding simulation state in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !deterministicPkgNames[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			key := identName(rs.Key)
			if stmtsOrderInsensitive(p.Info, rs.Body.List, key) {
				return true
			}
			p.Report(rs.For, "map iteration order can leak into simulation results; iterate sorted keys, or keep the body to key collection / per-key writes / integer reductions")
			return true
		})
	}
}

func stmtsOrderInsensitive(info *types.Info, stmts []ast.Stmt, key string) bool {
	for _, s := range stmts {
		if !stmtOrderInsensitive(info, s, key) {
			return false
		}
	}
	return true
}

// stmtOrderInsensitive reports whether executing s once per map entry
// yields the same program state regardless of entry order.
func stmtOrderInsensitive(info *types.Info, s ast.Stmt, key string) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- applies the identical delta every iteration.
		return true
	case *ast.AssignStmt:
		return assignOrderInsensitive(info, s, key)
	case *ast.IfStmt:
		if s.Init != nil && !stmtOrderInsensitive(info, s.Init, key) {
			return false
		}
		if !exprPure(s.Cond) || !stmtsOrderInsensitive(info, s.Body.List, key) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return stmtsOrderInsensitive(info, e.List, key)
		case *ast.IfStmt:
			return stmtOrderInsensitive(info, e, key)
		}
		return false
	case *ast.BlockStmt:
		return stmtsOrderInsensitive(info, s.List, key)
	case *ast.BranchStmt:
		// `continue` skips an entry the same way in any order; `break`
		// and labeled jumps make the outcome depend on what came first.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.ExprStmt:
		// delete(m2, k) keyed by the range key touches disjoint entries.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" &&
				len(call.Args) == 2 && key != "" && identName(call.Args[1]) == key {
				return true
			}
		}
	}
	return false
}

func assignOrderInsensitive(info *types.Info, s *ast.AssignStmt, key string) bool {
	switch s.Tok {
	case token.DEFINE:
		// Fresh locals live for one iteration only; safe when the RHS is
		// side-effect free.
		for _, r := range s.Rhs {
			if !exprPure(r) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		// Exactly commutative over integers only: float rounding makes
		// `sum += v` depend on visit order.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !exprPure(s.Rhs[0]) {
			return false
		}
		t := info.TypeOf(s.Lhs[0])
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// m2[k] = v: per-key writes touch disjoint locations.
		if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok && key != "" && identName(ix.Index) == key {
			return exprPure(s.Rhs[0])
		}
		// keys = append(keys, k): sorted-key extraction.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" &&
				len(call.Args) == 2 && !call.Ellipsis.IsValid() &&
				key != "" && identName(call.Args[1]) == key {
				target := identName(s.Lhs[0])
				return target != "" && target == identName(call.Args[0])
			}
		}
	}
	return false
}

// exprPure reports whether evaluating e has no side effects (so it may
// run once per map entry in any order). Function calls other than
// len/cap/min/max are conservatively impure.
func exprPure(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return exprPure(e.X)
	case *ast.IndexExpr:
		return exprPure(e.X) && exprPure(e.Index)
	case *ast.ParenExpr:
		return exprPure(e.X)
	case *ast.StarExpr:
		return exprPure(e.X)
	case *ast.UnaryExpr:
		return e.Op != token.AND && exprPure(e.X)
	case *ast.BinaryExpr:
		return exprPure(e.X) && exprPure(e.Y)
	case *ast.TypeAssertExpr:
		return exprPure(e.X)
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		switch id.Name {
		case "len", "cap", "min", "max":
			for _, a := range e.Args {
				if !exprPure(a) {
					return false
				}
			}
			return true
		}
	}
	return false
}
