package lint

import (
	"go/ast"
	"go/types"
)

// globalRandFuncs are the math/rand and math/rand/v2 package-level
// functions backed by the shared (goroutine-mixed, unseedable-in-v2)
// global source. Constructors like New, NewSource, NewPCG and NewZipf
// are allowed: they are exactly how an injected *rand.Rand is built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true, "N": true,
	"Uint": true, "UintN": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "Float32": true, "Float64": true,
	"Perm": true, "Shuffle": true, "Seed": true,
	"NormFloat64": true, "ExpFloat64": true, "Read": true,
}

// wallClockFuncs read the wall clock, which no simulated timeline may
// depend on.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// SeededRand forbids global math/rand state and wall-clock reads in
// internal (simulator/planner) packages: randomness must flow through
// an injected, seeded *rand.Rand and time through simulated clocks, or
// two runs of the same configuration diverge.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "global math/rand or wall-clock use in simulator/planner code",
	Run:  runSeededRand,
}

func runSeededRand(p *Pass) {
	if !isInternalPath(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[sel.Sel.Name] {
					p.Report(sel.Pos(), "%s.%s draws from the shared global source; inject a seeded *rand.Rand instead", x.Name, sel.Sel.Name)
				}
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					p.Report(sel.Pos(), "time.%s reads the wall clock in simulator/planner code; pass timestamps or a clock in from the caller", sel.Sel.Name)
				}
			}
			return true
		})
	}
}
