package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report files under testdata/golden")

// TestV4GoldenReports pins the exact JSON and SARIF encodings of one
// finding from each v4 analyzer. The Go toolchain version embedded in
// the JSON report is normalized to GOVERSION so the files survive
// toolchain bumps; regenerate intentional changes with
// `go test ./internal/lint -run TestV4Golden -update`.
func TestV4GoldenReports(t *testing.T) {
	pkg, _ := loadFixture(t, filepath.Join("testdata", "src", "v4golden"), "rap/internal/v4golden")
	prog := NewProgram([]*Package{pkg})
	suite := []*Analyzer{LockOrder, AtomicPlain, WGCheck, GoroutineLeak}
	var findings []Finding
	prog.RunPackage(pkg, suite, &findings)
	SortFindings(findings)

	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	for _, a := range suite {
		if counts[a.Name] != 1 {
			t.Fatalf("golden fixture must yield exactly one %s finding, got %d: %v", a.Name, counts[a.Name], findings)
		}
	}
	if len(findings) != len(suite) {
		t.Fatalf("golden fixture must yield exactly %d findings, got %v", len(suite), findings)
	}

	var jsonBuf bytes.Buffer
	if err := WriteJSONReport(&jsonBuf, ".", findings, nil); err != nil {
		t.Fatalf("WriteJSONReport: %v", err)
	}
	jsonOut := strings.ReplaceAll(jsonBuf.String(), runtime.Version(), "GOVERSION")
	compareGolden(t, "v4.json", jsonOut)

	var sarifBuf bytes.Buffer
	if err := WriteSARIF(&sarifBuf, ".", suite, findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	compareGolden(t, "v4.sarif", sarifBuf.String())
}

// compareGolden diffs got against testdata/golden/<name>, rewriting the
// file instead when -update is set.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("creating golden dir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("writing golden %s: %v", name, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s (regenerate with -update): %v", name, err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Errorf("golden %s line %d:\n  got:  %s\n  want: %s", name, i+1, g, w)
			}
		}
	}
}
