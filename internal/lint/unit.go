package lint

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the dimension lattice's ground set: physical units as
// normalized products of atomic factors with integer exponents. A unit
// is what a `//rap:unit` annotation declares and what the dimcheck
// value-flow analysis propagates; "bytes/s" and "B/s" normalize to the
// same value, `mul`/`div` derive product and quotient units (bytes ÷ s
// → B/s), and additive compatibility is exact factor equality — MB and
// GB share the byte *dimension* but adding them without a conversion is
// precisely the bug class dimcheck exists to catch, so scale is part of
// the unit.

// unitAtoms maps every accepted atom spelling to its canonical form.
// Canonical atoms are chosen so rendered units read like the paper and
// the simulator docs (µs-based times, GB/s links).
var unitAtoms = map[string]string{
	// bytes at each scale ("bytes" is canonical so rendered messages
	// match the long-standing unitmix wording)
	"B": "bytes", "byte": "bytes", "bytes": "bytes",
	"KB": "KB", "MB": "MB", "GB": "GB", "TB": "TB",
	"KiB": "KiB", "MiB": "MiB", "GiB": "GiB",
	// bits (network rates quote them)
	"bit": "bit", "bits": "bit", "Kb": "Kb", "Mb": "Mb", "Gb": "Gb",
	// time
	"s": "s", "sec": "s", "secs": "s", "seconds": "s",
	"ms": "ms", "us": "us", "µs": "us", "ns": "ns",
	// counts and work
	"elem": "elem", "elems": "elem", "element": "elem", "elements": "elem",
	"flop": "flop", "flops": "flop",
	"sample": "sample", "samples": "sample",
	"iter": "iter", "iters": "iter", "iteration": "iter", "iterations": "iter",
	"op": "op", "ops": "op",
	"warp": "warp", "warps": "warp",
	// explicit dimensionless markers
	"1": "", "frac": "", "fraction": "", "ratio": "",
}

// rateAliases expand the compound-rate spellings the name-suffix
// heuristics already recognize into their factor form.
var rateAliases = map[string]string{
	"Bps": "B/s", "KBps": "KB/s", "MBps": "MB/s", "GBps": "GB/s",
	"bps": "bit/s", "Kbps": "Kb/s", "Mbps": "Mb/s", "Gbps": "Gb/s",
}

// unit is a normalized product of atomic unit factors: atom -> nonzero
// integer exponent, e.g. {B:1, s:-1} for bytes per second. The zero
// value (no factors) is the explicit dimensionless unit — distinct, in
// the lattice, from "unknown".
type unit struct {
	factors map[string]int
}

// dimensionless is the explicit unit of ratios and fractions.
func dimensionless() unit { return unit{factors: map[string]int{}} }

func (u unit) isDimensionless() bool { return len(u.factors) == 0 }

// equal is additive compatibility: exact factor-and-exponent equality.
func (u unit) equal(v unit) bool {
	if len(u.factors) != len(v.factors) {
		return false
	}
	for a, e := range u.factors {
		if v.factors[a] != e {
			return false
		}
	}
	return true
}

// mul derives the product unit (exponents add).
func (u unit) mul(v unit) unit {
	out := unit{factors: map[string]int{}}
	for a, e := range u.factors {
		out.factors[a] = e
	}
	for a, e := range v.factors {
		out.factors[a] += e
		if out.factors[a] == 0 {
			delete(out.factors, a)
		}
	}
	return out
}

// div derives the quotient unit (bytes ÷ s → B/s).
func (u unit) div(v unit) unit { return u.mul(v.pow(-1)) }

func (u unit) pow(n int) unit {
	out := unit{factors: map[string]int{}}
	for a, e := range u.factors {
		out.factors[a] = e * n
	}
	return out
}

// String renders the canonical spelling: numerator factors sorted,
// then "/" and the denominator, exponents as ^k. parseUnit(u.String())
// round-trips.
func (u unit) String() string {
	if len(u.factors) == 0 {
		return "1"
	}
	var num, den []string
	atoms := make([]string, 0, len(u.factors))
	for a := range u.factors {
		atoms = append(atoms, a)
	}
	sort.Strings(atoms)
	for _, a := range atoms {
		e := u.factors[a]
		switch {
		case e == 1:
			num = append(num, a)
		case e > 1:
			num = append(num, fmt.Sprintf("%s^%d", a, e))
		case e == -1:
			den = append(den, a)
		default:
			den = append(den, fmt.Sprintf("%s^%d", a, -e))
		}
	}
	switch {
	case len(num) == 0:
		return "1/" + strings.Join(den, "*")
	case len(den) == 0:
		return strings.Join(num, "*")
	default:
		return strings.Join(num, "*") + "/" + strings.Join(den, "*")
	}
}

// parseUnit parses a `//rap:unit` unit expression: atoms joined by "*"
// (or "·"), at most one "/" splitting numerator from denominator, and
// optional ^k exponents, e.g. "us", "GB/s", "B*elem/s", "s^2".
func parseUnit(s string) (unit, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return unit{}, fmt.Errorf("empty unit expression")
	}
	u := dimensionless()
	parts := strings.Split(s, "/")
	if len(parts) > 2 {
		return unit{}, fmt.Errorf("unit %q has more than one '/'", s)
	}
	for i, part := range parts {
		sign := 1
		if i == 1 {
			sign = -1
		}
		for _, tok := range strings.FieldsFunc(part, func(r rune) bool { return r == '*' || r == '·' }) {
			f, err := parseFactor(strings.TrimSpace(tok), sign)
			if err != nil {
				return unit{}, fmt.Errorf("unit %q: %v", s, err)
			}
			u = u.mul(f)
		}
	}
	return u, nil
}

// parseFactor parses one atom with an optional ^k exponent, applying
// sign to the exponent (sign=-1 for denominator factors).
func parseFactor(tok string, sign int) (unit, error) {
	if tok == "" {
		return unit{}, fmt.Errorf("empty factor")
	}
	exp := 1
	if base, pow, ok := strings.Cut(tok, "^"); ok {
		n := 0
		if _, err := fmt.Sscanf(pow, "%d", &n); err != nil || n == 0 {
			return unit{}, fmt.Errorf("bad exponent in %q", tok)
		}
		tok, exp = base, n
	}
	if expanded, ok := rateAliases[tok]; ok {
		r, err := parseUnit(expanded)
		if err != nil {
			return unit{}, err
		}
		return r.pow(exp * sign), nil
	}
	canon, ok := unitAtoms[tok]
	if !ok {
		return unit{}, fmt.Errorf("unknown unit atom %q", tok)
	}
	if canon == "" { // explicit dimensionless marker
		return dimensionless(), nil
	}
	return unit{factors: map[string]int{canon: exp * sign}}, nil
}

// suffixUnit infers a weak unit seed from an identifier's name suffix —
// the v1 unitmix heuristic, reused by dimcheck as a low-confidence
// seed. A name that is exactly a suffix (a constant named MB) is a
// conversion constant, not a unit-carrying value.
func suffixUnit(name string) (unit, bool) {
	for _, s := range dimSuffixes {
		if strings.HasSuffix(name, s.suffix) && len(name) > len(s.suffix) {
			return s.u, true
		}
	}
	return unit{}, false
}

// dimSuffixes is the suffix table in longest-first match order, each
// entry carrying its parsed unit. Built from the same spellings the v1
// unitmix analyzer matches, plus the time and rate suffixes the
// simulator's µs-based naming uses.
var dimSuffixes = func() []struct {
	suffix string
	u      unit
} {
	specs := []struct{ suffix, expr string }{
		{"GiB", "GiB"}, {"MiB", "MiB"}, {"KiB", "KiB"},
		{"Gbps", "Gb/s"}, {"GBps", "GB/s"}, {"MBps", "MB/s"},
		{"Bytes", "B"},
		{"GBs", "GB/s"}, // the simulator's LinkGBs/CopyGBs naming
		{"GB", "GB"}, {"MB", "MB"}, {"KB", "KB"},
		{"Micros", "us"}, {"Us", "us"}, {"Usec", "us"},
		{"Millis", "ms"}, {"Msec", "ms"},
		{"Nanos", "ns"}, {"Nsec", "ns"},
	}
	out := make([]struct {
		suffix string
		u      unit
	}, len(specs))
	for i, sp := range specs {
		u, err := parseUnit(sp.expr)
		if err != nil {
			panic(fmt.Sprintf("lint: bad built-in suffix unit %q: %v", sp.expr, err))
		}
		out[i] = struct {
			suffix string
			u      unit
		}{sp.suffix, u}
	}
	return out
}()
