package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fixtureSpec names one fixture package: its directory under
// testdata/src and the import path the analyzers should see.
type fixtureSpec struct {
	dir  string
	path string
}

// progImporter resolves fixture-internal imports to the packages
// type-checked so far and everything else through export/source data.
type progImporter struct {
	pkgs map[string]*types.Package
	std  types.Importer
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	if p := im.pkgs[path]; p != nil {
		return p, nil
	}
	return im.std.Import(path)
}

// loadProgram parses and type-checks several fixture packages against a
// shared FileSet and importer — dependencies first — so cross-package
// object identities line up the way the real loader guarantees.
func loadProgram(t *testing.T, specs []fixtureSpec) ([]*Package, []expectation) {
	t.Helper()
	fset := token.NewFileSet()
	im := &progImporter{pkgs: map[string]*types.Package{}, std: importer.ForCompiler(fset, "source", nil)}
	var pkgs []*Package
	var wants []expectation
	for _, spec := range specs {
		dir := filepath.Join("testdata", "src", spec.dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture dir: %v", err)
		}
		var files []*ast.File
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture: %v", err)
			}
			files = append(files, f)
			for i, line := range strings.Split(string(src), "\n") {
				if m := wantRe.FindStringSubmatch(line); m != nil {
					wants = append(wants, expectation{file: path, line: i + 1, substr: m[1]})
				}
			}
		}
		cfg := types.Config{Importer: im}
		tpkg, info, err := checkFiles(cfg, spec.path, fset, files)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", spec.path, err)
		}
		im.pkgs[spec.path] = tpkg
		pkgs = append(pkgs, &Package{Path: spec.path, Name: tpkg.Name(), Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, wants
}

// TestDetaintCrossPackage is the v1-blindness proof: a deterministic
// root package calls through an unexported helper into a utility
// package whose map iteration is order-dependent. The entire v1 local
// suite stays silent over both packages — maporder's scope is the
// deterministic package names, and the leak lives elsewhere — while
// detaint's call-graph reachability pins the site with the call path.
func TestDetaintCrossPackage(t *testing.T) {
	pkgs, wants := loadProgram(t, []fixtureSpec{
		{dir: "detaint_helper", path: "rap/internal/helperfix"},
		{dir: "detaint_sched", path: "rap/internal/sched"},
	})
	if len(wants) == 0 {
		t.Fatal("fixture carries no want expectations")
	}
	prog := NewProgram(pkgs)

	var v1 []Finding
	for _, pkg := range pkgs {
		prog.RunPackage(pkg, V1(), &v1)
	}
	if len(v1) != 0 {
		t.Fatalf("the v1 local suite must be blind to the cross-package leak, got %v", v1)
	}

	var findings []Finding
	for _, pkg := range pkgs {
		prog.RunPackage(pkg, []*Analyzer{Detaint}, &findings)
	}
	SortFindings(findings)
	matchWants(t, findings, wants)
	for _, f := range findings {
		if !strings.Contains(f.Message, "sched.Plan -> sched.expand -> helperfix.Tally") {
			t.Errorf("finding should carry the full call path, got: %v", f)
		}
	}
}

// TestDetaintIgnoreAtSite: a detaint directive at the taint site
// suppresses the finding and counts as used.
func TestDetaintIgnoreAtSite(t *testing.T) {
	findings := checkSource(t, "rap/cmd/inline", `package tool

import "time"

//rap:deterministic
func Root() int64 {
	return leaf()
}

func leaf() int64 {
	//lint:ignore detaint fixture exercising site-level suppression
	return time.Now().UnixNano()
}
`, []*Analyzer{Detaint})
	if len(findings) != 0 {
		t.Fatalf("ignored taint site must not report, got %v", findings)
	}
}

// TestDetaintMisplacedDirective: //rap:deterministic anywhere but a
// function's doc comment is itself a finding.
func TestDetaintMisplacedDirective(t *testing.T) {
	findings := checkSource(t, "rap/internal/inline", `package p

func f() int {
	//rap:deterministic
	return 1
}
`, []*Analyzer{Detaint})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "doc comment of a function") {
		t.Fatalf("got %v, want exactly the misplaced-directive finding", findings)
	}
}

// TestUnusedIgnore: a directive that suppressed a finding survives; a
// stale one is reported by the whole-run check.
func TestUnusedIgnore(t *testing.T) {
	pkg := inlinePackage(t, "rap/internal/inline", `package p

func cmp(a, b float64) bool {
	//lint:ignore floateq fixture exercising a consumed directive
	return a == b
}

func stale(a, b int) bool {
	//lint:ignore floateq fixture directive that suppresses nothing
	return a == b
}
`)
	prog := NewProgram([]*Package{pkg})
	var findings []Finding
	used := prog.RunPackage(pkg, []*Analyzer{FloatEq}, &findings)
	if len(findings) != 0 {
		t.Fatalf("directive should suppress the floateq finding, got %v", findings)
	}
	usedMap := map[IgnoreRef]bool{}
	for _, r := range used {
		usedMap[r] = true
	}
	var decls []IgnoreRef
	for _, d := range prog.ignores[pkg.Path].all {
		decls = append(decls, d.ref())
	}
	fs := unusedIgnoreFindings([][]IgnoreRef{decls}, usedMap, map[string]bool{"floateq": true})
	if len(fs) != 1 {
		t.Fatalf("got %d unusedignore findings, want 1: %v", len(fs), fs)
	}
	if fs[0].Pos.Line != 9 || !strings.Contains(fs[0].Message, "suppresses no finding") {
		t.Fatalf("unexpected unusedignore finding: %v", fs[0])
	}
}

// TestUnusedIgnoreUnknownAnalyzer: a directive naming an analyzer that
// is not registered gets the distinct unknown-analyzer message.
func TestUnusedIgnoreUnknownAnalyzer(t *testing.T) {
	pkg := inlinePackage(t, "rap/internal/inline", `package p

func f(a, b int) bool {
	//lint:ignore floatqe typo for floateq; can never fire
	return a == b
}
`)
	prog := NewProgram([]*Package{pkg})
	var decls []IgnoreRef
	for _, d := range prog.ignores[pkg.Path].all {
		decls = append(decls, d.ref())
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	fs := unusedIgnoreFindings([][]IgnoreRef{decls}, map[IgnoreRef]bool{}, known)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "unknown analyzer floatqe") {
		t.Fatalf("want one unknown-analyzer finding, got %v", fs)
	}
}

// TestLintSelfClean dogfoods the full v2 suite on the lint package
// itself: the analyzers must pass their own checks (the driver's
// self-timing clock reads carry reasoned ignores, its shared timing map
// carries a guarded-by contract).
func TestLintSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the lint package and its deps")
	}
	findings, _, err := RunWithOptions(Options{
		Dir:       moduleRoot(t),
		Patterns:  []string{"./internal/lint"},
		Analyzers: All(),
		NoCache:   true,
	})
	if err != nil {
		t.Fatalf("RunWithOptions: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}

// TestCacheWarmRun: a second run against the same cache directory must
// serve every package from cache and reproduce the findings exactly.
func TestCacheWarmRun(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the lint package and its deps")
	}
	opts := Options{
		Dir:       moduleRoot(t),
		Patterns:  []string{"./internal/lint"},
		Analyzers: All(),
		CacheDir:  t.TempDir(),
	}
	cold, s1, err := RunWithOptions(opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if s1.CacheHits != 0 {
		t.Fatalf("cold run should not hit the fresh cache, got %d hits", s1.CacheHits)
	}
	if s1.SSABuild == 0 {
		t.Error("cold run must build the SSA value-flow facts (dimcheck ran)")
	}
	if s1.ConcBuild == 0 {
		t.Error("cold run must build the concurrency facts (the v4 analyzers ran)")
	}
	warm, s2, err := RunWithOptions(opts)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if s2.CacheHits != s2.Packages || s2.Packages == 0 {
		t.Fatalf("warm run should serve all %d packages from cache, got %d hits", s2.Packages, s2.CacheHits)
	}
	if s2.SSABuild != 0 {
		t.Errorf("fully warm run must not construct SSA facts, spent %s building them", s2.SSABuild)
	}
	if s2.ConcBuild != 0 {
		t.Errorf("fully warm run must not construct concurrency facts, spent %s building them", s2.ConcBuild)
	}
	if len(cold) != len(warm) {
		t.Fatalf("warm findings diverge: cold %v, warm %v", cold, warm)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Errorf("finding %d diverges: cold %v, warm %v", i, cold[i], warm[i])
		}
	}
}

// TestReportEncoders smoke-tests the JSON and SARIF encodings.
func TestReportEncoders(t *testing.T) {
	findings := []Finding{{
		Analyzer: "maporder",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 2},
		Message:  "iterates over a map",
	}}
	stats := &Stats{Packages: 1, PerAnalyzer: map[string]time.Duration{"maporder": time.Millisecond}}

	var buf bytes.Buffer
	if err := WriteJSONReport(&buf, ".", findings, stats); err != nil {
		t.Fatalf("WriteJSONReport: %v", err)
	}
	var rep struct {
		RaplintVersion string `json:"raplintVersion"`
		Findings       []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
		} `json:"findings"`
		Stats struct {
			Packages int `json:"packages"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decoding JSON report: %v", err)
	}
	if rep.RaplintVersion == "" || len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "maporder" ||
		rep.Findings[0].Line != 3 || rep.Stats.Packages != 1 {
		t.Fatalf("unexpected JSON report: %s", buf.String())
	}

	buf.Reset()
	if err := WriteSARIF(&buf, ".", All(), findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []any  `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("decoding SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "raplint" ||
		len(log.Runs[0].Tool.Driver.Rules) != len(All()) || len(log.Runs[0].Results) != 1 ||
		log.Runs[0].Results[0].RuleID != "maporder" {
		t.Fatalf("unexpected SARIF log: %s", buf.String())
	}
}
