package lint

// DimCheck is the v3 successor of unitmix: an interprocedural unit-and-
// dimension inference over the SSA value-flow layer (ssa.go). Strong
// seeds come from //rap:unit annotations on struct fields, var/const
// specs, and function doc lines; weak seeds reuse the v1 name-suffix
// heuristics. Units propagate through assignments, call edges, returns,
// composite literals, and channel sends; `*` and `/` derive product and
// quotient units (bytes ÷ s → bytes/s); `+`, `-`, and comparisons
// between incompatible units are findings, each carrying an example
// flow path. Values flowing into an annotated cell with a different
// unit are findings at the flow site. The legacy unitmix analyzer is
// subsumed (kept behind raplint's -legacy-unitmix flag).
var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc:  "interprocedural unit/dimension mismatches via SSA value flow",
	Run:  runDimCheck,
}

func runDimCheck(p *Pass) {
	facts := p.Prog.dimFacts()
	for _, f := range facts.findings[p.Path] {
		p.Report(f.pos, "%s", f.msg)
	}
}
