package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPath forbids panic in internal (library) packages: simulator and
// planner code is driven by cmd binaries and experiments that must get
// errors, not crashes. Functions named Must*/must* are exempt by
// convention;
// checked-invariant panics (validated-constructor paths where the
// condition is provably impossible for callers) carry a //lint:ignore
// with the proof as the reason.
var PanicPath = &Analyzer{
	Name: "panicpath",
	Doc:  "panic in internal library code outside Must* helpers",
	Run:  runPanicPath,
}

func runPanicPath(p *Pass) {
	if !isInternalPath(p.Path) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") || strings.HasPrefix(fd.Name.Name, "must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				p.Report(id.Pos(), "panic in internal package; return an error, move it behind a Must* helper, or annotate a checked invariant")
				return true
			})
		}
	}
}
