package lint

import (
	"strings"
	"testing"
)

// crossPackageCase is the shared shape of the four v4 blindness proofs:
// a dependency package contributes concurrency facts, the caller
// package misuses them, and only the joint whole-program view reports.
// Analyzing the caller without the dependency's sources loaded must
// stay silent (the facts are invisible, and the analyzers are designed
// to fail toward silence), as must the dependency package itself (the
// cache-coherence rule: a package's findings may depend only on its
// dependency closure, never on its dependents).
func runCrossPackage(t *testing.T, analyzer *Analyzer, lib, libPath, caller, callerPath string) {
	t.Helper()

	// Caller alone: the dependency is type-checked through the importer
	// but its sources are outside the Program, so no facts flow.
	alonePkgs, _ := loadProgram(t, []fixtureSpec{
		{dir: lib, path: libPath},
		{dir: caller, path: callerPath},
	})
	aloneProg := NewProgram([]*Package{alonePkgs[1]})
	var alone []Finding
	aloneProg.RunPackage(alonePkgs[1], []*Analyzer{analyzer}, &alone)
	if len(alone) != 0 {
		t.Fatalf("caller analyzed without the dependency's sources must be silent, got %v", alone)
	}

	// Joint view: facts flow dependency -> dependent; the caller
	// reports, the dependency stays clean.
	pkgs, wants := loadProgram(t, []fixtureSpec{
		{dir: lib, path: libPath},
		{dir: caller, path: callerPath},
	})
	if len(wants) == 0 {
		t.Fatal("fixture carries no want expectations")
	}
	prog := NewProgram(pkgs)
	var libFindings []Finding
	prog.RunPackage(pkgs[0], []*Analyzer{analyzer}, &libFindings)
	if len(libFindings) != 0 {
		t.Fatalf("the dependency package must stay clean (it cannot see its dependents), got %v", libFindings)
	}
	var findings []Finding
	prog.RunPackage(pkgs[1], []*Analyzer{analyzer}, &findings)
	SortFindings(findings)
	matchWants(t, findings, wants)
}

// TestLockOrderCrossPackage: the dependency acquires MuA before MuB;
// the caller reverses the order. Each package's acquisition graph is
// acyclic on its own.
func TestLockOrderCrossPackage(t *testing.T) {
	runCrossPackage(t, LockOrder,
		"lockorder_lib", "rap/internal/locklib",
		"lockorder_caller", "rap/internal/lockcaller")
}

// TestAtomicPlainCrossPackage: the dependency only ever touches the
// counter atomically; the caller's plain load is only wrong given that
// fact.
func TestAtomicPlainCrossPackage(t *testing.T) {
	runCrossPackage(t, AtomicPlain,
		"atomicplain_lib", "rap/internal/atomlib",
		"atomicplain_caller", "rap/internal/atomcaller")
}

// TestWGCheckCrossPackage: the dependency Adds on its WaitGroup
// parameter; spawning it with `go` races the Add against the caller's
// Wait. The same call made synchronously is fine.
func TestWGCheckCrossPackage(t *testing.T) {
	runCrossPackage(t, WGCheck,
		"wgcheck_lib", "rap/internal/wglib",
		"wgcheck_caller", "rap/internal/wgcaller")
}

// TestGoroutineLeakCrossPackage: the dependency sends on its channel
// parameter; spawning it on a channel nothing receives from leaks the
// goroutine. Pairing it with the dependency's receiver is fine.
func TestGoroutineLeakCrossPackage(t *testing.T) {
	runCrossPackage(t, GoroutineLeak,
		"goroutineleak_lib", "rap/internal/leaklib",
		"goroutineleak_caller", "rap/internal/leakcaller")
}

// TestLockOrderCycleMessage pins the example-path rendering: the
// finding must name both locks and point at the reverse acquisition.
func TestLockOrderCycleMessage(t *testing.T) {
	pkgs, _ := loadProgram(t, []fixtureSpec{
		{dir: "lockorder_lib", path: "rap/internal/locklib"},
		{dir: "lockorder_caller", path: "rap/internal/lockcaller"},
	})
	prog := NewProgram(pkgs)
	var findings []Finding
	prog.RunPackage(pkgs[1], []*Analyzer{LockOrder}, &findings)
	if len(findings) != 1 {
		t.Fatalf("want exactly one cycle finding, got %v", findings)
	}
	msg := findings[0].Message
	for _, part := range []string{"MuA", "MuB", "reverse order is taken at", "lib.go:"} {
		if !strings.Contains(msg, part) {
			t.Errorf("cycle message should contain %q, got: %s", part, msg)
		}
	}
}
