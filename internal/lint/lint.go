// Package lint implements raplint, the project's domain-specific
// static-analysis pass. The analyzers encode the determinism and unit
// invariants the RAP reproduction depends on — bit-reproducible
// simulator output, seeded randomness, tolerance-based float handling,
// consistent byte/rate units, and error returns instead of panics in
// library code — so that regressions surface as tier-1 verify failures
// instead of silently drifting golden digests.
//
// v2 adds a whole-program layer: packages are joined into a Program
// carrying a static call graph, so the detaint analyzer can follow
// nondeterminism across function and package boundaries, guardedby can
// enforce mutex contracts declared on struct fields, and
// goroutinecapture can inspect closures handed to goroutines. The
// driver caches per-package results keyed by transitive content hashes
// and analyzes packages in parallel (see driver.go).
//
// The pass is zero-dependency: package discovery shells out to
// `go list -json`, parsing and type checking use go/parser and
// go/types. Findings can be suppressed with an explicit annotation on
// the offending line or the line above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported, and a
// directive that suppresses nothing is reported by unusedignore.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync/atomic"
)

// Finding is one analyzer report at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyzer is one invariant checker run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full raplint analyzer suite. UnusedIgnore is a
// whole-run analyzer: its Run is a no-op per package and the driver
// performs the global check after every package has reported. The
// legacy unitmix analyzer is not in the default suite — dimcheck
// subsumes it (opt back in with raplint's -legacy-unitmix).
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder, SeededRand, FloatEq, PanicPath,
		Detaint, GuardedBy, GoroutineCapture,
		DimCheck, FloatReduce, UnusedIgnore,
		LockOrder, AtomicPlain, WGCheck, GoroutineLeak,
	}
}

// V1 returns the first-generation, purely local analyzers — the suite
// shipped by raplint v1. Kept for tests that demonstrate what the local
// pass can and cannot see.
func V1() []*Analyzer {
	return []*Analyzer{MapOrder, SeededRand, FloatEq, UnitMix, PanicPath}
}

// V2 returns the v1+v2 suite as shipped by raplint v2 (local analyzers
// plus the whole-program call-graph layer, before SSA value flow).
// Kept for tests that demonstrate what v2 could not see.
func V2() []*Analyzer {
	return []*Analyzer{
		MapOrder, SeededRand, FloatEq, UnitMix, PanicPath,
		Detaint, GuardedBy, GoroutineCapture,
	}
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Path is the package's import path as the build system knows it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Prog is the whole-program view (call graph, cross-package ignore
	// indexes, guarded-field contracts) shared by every pass of a run.
	Prog *Program

	analyzer *Analyzer
	ignores  *ignoreIndex
	used     map[IgnoreRef]bool
	out      *[]Finding
}

// Report records a finding at pos unless an ignore directive covers it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if d := p.ignores.covering(p.analyzer.Name, position); d != nil {
		p.use(d)
		return
	}
	*p.out = append(*p.out, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// use marks a directive as having suppressed a finding, both globally
// (for the unusedignore check) and in this package's used set (recorded
// in the package's cache entry so warm runs replay the marking).
func (p *Pass) use(d *ignoreDirective) {
	d.used.Store(true)
	if p.used != nil {
		p.used[d.ref()] = true
	}
}

// IgnoreRef identifies one //lint:ignore directive by position: the
// stable form used in cache entries and the unusedignore check.
type IgnoreRef struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
}

// ignoreDirective is one well-formed //lint:ignore in a package.
type ignoreDirective struct {
	analyzer string
	file     string
	line     int
	col      int
	used     atomic.Bool
}

func (d *ignoreDirective) ref() IgnoreRef {
	return IgnoreRef{File: d.file, Line: d.line, Col: d.col, Analyzer: d.analyzer}
}

// ignoreIndex holds a package's //lint:ignore directives plus the
// findings produced for malformed ones (missing mandatory reason).
type ignoreIndex struct {
	lines map[string]map[int][]*ignoreDirective // file -> line -> directives
	all   []*ignoreDirective
	bad   []Finding // missing-reason findings, emitted once per analyzed package
}

// covering returns the directive suppressing a finding of analyzer at
// pos, or nil. A directive covers its own line (trailing comment) and
// the line directly below it (directive on its own line).
func (ix *ignoreIndex) covering(analyzer string, pos token.Position) *ignoreDirective {
	if ix == nil {
		return nil
	}
	lines := ix.lines[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range lines[l] {
			if d.analyzer == analyzer {
				return d
			}
		}
	}
	return nil
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(\s+\S.*)?$`)

// buildIgnores scans a package's comments for //lint:ignore directives.
// Directives missing the mandatory reason become findings (emitted when
// the package is analyzed); well-formed ones enter the index.
func buildIgnores(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	ix := &ignoreIndex{lines: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					ix.bad = append(ix.bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:ignore %s is missing its mandatory reason", m[1]),
					})
					continue
				}
				d := &ignoreDirective{analyzer: m[1], file: pos.Filename, line: pos.Line, col: pos.Column}
				lines := ix.lines[pos.Filename]
				if lines == nil {
					lines = map[int][]*ignoreDirective{}
					ix.lines[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				ix.all = append(ix.all, d)
			}
		}
	}
	return ix
}

// RunPackage applies every analyzer to one loaded package, appending
// findings to out. The package is analyzed standalone (a single-package
// Program), so interprocedural analyzers see only its own functions.
func RunPackage(pkg *Package, analyzers []*Analyzer, out *[]Finding) {
	NewProgram([]*Package{pkg}).RunPackage(pkg, analyzers, out)
}

// RunPackage applies the analyzers to one package of the program,
// appending findings to out and returning the ignore directives the
// package's analysis used (anywhere in the program — detaint can
// consume directives in the packages it traverses).
func (prog *Program) RunPackage(pkg *Package, analyzers []*Analyzer, out *[]Finding) []IgnoreRef {
	return prog.runPackage(pkg, analyzers, out, nil)
}

func (prog *Program) runPackage(pkg *Package, analyzers []*Analyzer, out *[]Finding, timings *analyzerTimings) []IgnoreRef {
	ignores := prog.ignores[pkg.Path]
	*out = append(*out, ignores.bad...)
	used := map[IgnoreRef]bool{}
	for _, a := range analyzers {
		pass := &Pass{
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
			analyzer: a,
			ignores:  ignores,
			used:     used,
			out:      out,
		}
		stop := timings.start()
		a.Run(pass)
		timings.stop(a.Name, stop)
	}
	refs := make([]IgnoreRef, 0, len(used))
	for r := range used {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return refs
}

// Run loads the packages matching patterns (relative to dir) and applies
// the analyzers, returning findings sorted by position. Caching is
// disabled: Run always type-checks and analyzes from source.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunWithOptions(Options{
		Dir:       dir,
		Patterns:  patterns,
		Analyzers: analyzers,
		NoCache:   true,
	})
	return findings, err
}

// SortFindings orders findings by file, line, column, analyzer, message
// so raplint's own output is deterministic.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// isInternalPath reports whether an import path is module-internal
// library code — the scope of the seededrand and panicpath analyzers.
func isInternalPath(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// identName returns the name of an identifier expression, or "" for
// blank identifiers and non-identifiers.
func identName(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	return id.Name
}

// typeIsFloat reports whether e's type is a floating-point (or complex)
// basic type.
func typeIsFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
