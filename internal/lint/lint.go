// Package lint implements raplint, the project's domain-specific
// static-analysis pass. The analyzers encode the determinism and unit
// invariants the RAP reproduction depends on — bit-reproducible
// simulator output, seeded randomness, tolerance-based float handling,
// consistent byte/rate units, and error returns instead of panics in
// library code — so that regressions surface as tier-1 verify failures
// instead of silently drifting golden digests.
//
// The pass is zero-dependency: package discovery shells out to
// `go list -json`, parsing and type checking use go/parser and
// go/types. Findings can be suppressed with an explicit annotation on
// the offending line or the line above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer report at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyzer is one invariant checker run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full raplint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, SeededRand, FloatEq, UnitMix, PanicPath}
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Path is the package's import path as the build system knows it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	ignores  ignoreIndex
	out      *[]Finding
}

// Report records a finding at pos unless an ignore directive covers it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.covers(p.analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreIndex maps file → line → analyzer names suppressed there.
type ignoreIndex map[string]map[int][]string

func (ix ignoreIndex) covers(analyzer string, pos token.Position) bool {
	lines := ix[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line (trailing comment)
	// or on the line directly below it (directive on its own line).
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(\s+\S.*)?$`)

// buildIgnores scans a package's comments for //lint:ignore directives.
// Directives missing the mandatory reason are reported as findings.
func buildIgnores(fset *token.FileSet, files []*ast.File, out *[]Finding) ignoreIndex {
	ix := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					*out = append(*out, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:ignore %s is missing its mandatory reason", m[1]),
					})
					continue
				}
				lines := ix[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					ix[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], m[1])
			}
		}
	}
	return ix
}

// RunPackage applies every analyzer to one loaded package, appending
// findings to out.
func RunPackage(pkg *Package, analyzers []*Analyzer, out *[]Finding) {
	ignores := buildIgnores(pkg.Fset, pkg.Files, out)
	for _, a := range analyzers {
		pass := &Pass{
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			ignores:  ignores,
			out:      out,
		}
		a.Run(pass)
	}
}

// Run loads the packages matching patterns (relative to dir) and applies
// the analyzers, returning findings sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		RunPackage(pkg, analyzers, &out)
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by file, line, column, analyzer, message
// so raplint's own output is deterministic.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// isInternalPath reports whether an import path is module-internal
// library code — the scope of the seededrand and panicpath analyzers.
func isInternalPath(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// identName returns the name of an identifier expression, or "" for
// blank identifiers and non-identifiers.
func identName(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	return id.Name
}

// typeIsFloat reports whether e's type is a floating-point (or complex)
// basic type.
func typeIsFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
