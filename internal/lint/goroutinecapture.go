package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture inspects closures handed to goroutines — `go
// func(){…}()` statements and errgroup-style `x.Go(func(){…})` calls —
// for the capture bugs that turn a parallel sweep nondeterministic or
// racy:
//
//   - loop-iteration sharing: the closure captures a variable that is
//     declared outside the enclosing loop but reassigned on every
//     iteration, so all goroutines observe whatever iteration ran last
//     (Go ≥1.22 per-iteration loop variables are not flagged);
//   - shared *rand.Rand: a captured or package-level *rand.Rand used
//     inside the closure — *rand.Rand is not goroutine-safe, and even a
//     locked one makes draw order depend on scheduling;
//   - unsynchronized writes: the closure assigns to a captured local of
//     the enclosing function with no mutex held at the write.
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc:  "unsafe variable capture in go-statement and errgroup-style closures",
	Run:  runGoroutineCapture,
}

func runGoroutineCapture(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFuncGoroutines(p, fd)
			}
		}
	}
}

func checkFuncGoroutines(p *Pass, fd *ast.FuncDecl) {
	var loops []ast.Node
	var launches []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, n)
		case *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				launches = append(launches, lit)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Go" && len(n.Args) >= 1 {
				if lit, ok := n.Args[0].(*ast.FuncLit); ok {
					launches = append(launches, lit)
				}
			}
		}
		return true
	})
	for _, lit := range launches {
		checkLaunch(p, fd, lit, loops)
	}
}

func checkLaunch(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, loops []ast.Node) {
	// Captured variables: identifiers used in the closure body whose
	// object is declared outside the closure.
	type capture struct {
		obj   *types.Var
		first *ast.Ident
	}
	var caps []capture
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || within(lit, v.Pos()) || seen[v] {
			return true
		}
		seen[v] = true
		caps = append(caps, capture{obj: v, first: id})
		return true
	})

	for _, c := range caps {
		if ts := types.TypeString(c.obj.Type(), nil); ts == "*math/rand.Rand" || ts == "*math/rand/v2.Rand" {
			p.Report(c.first.Pos(), "goroutine shares *rand.Rand %q with its parent; *rand.Rand is not goroutine-safe — give each goroutine its own seeded source", c.obj.Name())
		}
		if !within(fd, c.obj.Pos()) {
			continue // package-level, or from another function
		}
		for _, loop := range loops {
			if within(loop, lit.Pos()) && !within(loop, c.obj.Pos()) && assignedInLoop(p, loop, c.obj) {
				p.Report(c.first.Pos(), "goroutine captures %q, which is reassigned on every iteration of the enclosing loop; pass it as an argument or declare it inside the loop", c.obj.Name())
				break
			}
		}
	}

	// Unsynchronized writes to captured locals of the enclosing
	// function. A goroutine starts with no locks held; writes are fine
	// only under a mutex acquired inside the closure.
	reported := map[*types.Var]bool{}
	w := &heldWalker{
		info: p.Info,
		onWrite: func(target ast.Expr, held map[string]bool) {
			id, ok := ast.Unparen(target).(*ast.Ident)
			if !ok {
				return
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() || within(lit, v.Pos()) || !within(fd, v.Pos()) {
				return
			}
			if len(held) > 0 || reported[v] {
				return
			}
			reported[v] = true
			p.Report(id.Pos(), "goroutine writes captured variable %q without holding a lock; guard it with a mutex or use a channel", v.Name())
		},
	}
	w.stmts(lit.Body.List, map[string]bool{})
}

// within reports whether pos falls inside n's source range.
func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// assignedInLoop reports whether v is assigned somewhere in the loop
// outside of function literals (synchronous reassignment per
// iteration — the pattern that makes capture a bug).
func assignedInLoop(p *Pass, loop ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if usesVar(p, l, v) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if usesVar(p, s.X, v) {
				found = true
			}
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				if usesVar(p, s.Key, v) || usesVar(p, s.Value, v) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// Address-taken in the loop: treat as a per-iteration write path.
			if s.Op == token.AND && usesVar(p, s.X, v) {
				found = true
			}
		}
		return !found
	})
	return found
}

func usesVar(p *Pass, e ast.Expr, v *types.Var) bool {
	if e == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.Info.Uses[id] == v
}
