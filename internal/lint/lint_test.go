package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe marks expected findings in fixtures: `// want "substr"` on the
// offending line.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file   string
	line   int
	substr string
}

// loadFixture parses and type-checks one fixture package under
// testdata/src, returning it with the expectations embedded in its
// `// want` comments. importPath controls the scope the analyzers see.
func loadFixture(t *testing.T, dir, importPath string) (*Package, []expectation) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []expectation
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, expectation{file: path, line: i + 1, substr: m[1]})
			}
		}
	}
	cfg := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, info, err := checkFiles(cfg, importPath, fset, files)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return &Package{Path: importPath, Name: tpkg.Name(), Fset: fset, Files: files, Types: tpkg, Info: info}, wants
}

// checkFiles type-checks files with the full Info the analyzers rely on
// (guardedby needs Selections).
func checkFiles(cfg types.Config, importPath string, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := cfg.Check(importPath, fset, files, info)
	return tpkg, info, err
}

// TestAnalyzers runs each analyzer over its fixtures: every `// want`
// line must produce exactly one matching finding, and nothing else may
// be reported. Scope fixtures (same code under an out-of-scope import
// path or package name) carry no want lines and must stay silent.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *Analyzer
		dir      string
		path     string
	}{
		{"maporder deterministic pkg", MapOrder, "maporder_sched", "rap/internal/sched"},
		{"maporder out of scope", MapOrder, "maporder_other", "rap/internal/other"},
		{"seededrand internal", SeededRand, "seededrand_internal", "rap/internal/simfix"},
		{"seededrand out of scope", SeededRand, "seededrand_cmd", "rap/cmd/fix"},
		{"floateq", FloatEq, "floateq", "rap/internal/floatfix"},
		{"unitmix", UnitMix, "unitmix", "rap/internal/unitfix"},
		{"panicpath internal", PanicPath, "panicpath_internal", "rap/internal/panicfix"},
		{"panicpath out of scope", PanicPath, "panicpath_cmd", "rap/cmd/panicfix"},
		{"detaint annotated root", Detaint, "detaint_anno", "rap/cmd/clocktool"},
		{"guardedby", GuardedBy, "guardedby", "rap/internal/guardfix"},
		{"goroutinecapture", GoroutineCapture, "goroutinecapture", "rap/internal/gofix"},
		{"lockorder", LockOrder, "lockorder", "rap/internal/lockfix"},
		{"lockorder clean", LockOrder, "lockorder_ok", "rap/internal/lockokfix"},
		{"atomicplain", AtomicPlain, "atomicplain", "rap/internal/atomfix"},
		{"atomicplain clean", AtomicPlain, "atomicplain_ok", "rap/internal/atomokfix"},
		{"wgcheck", WGCheck, "wgcheck", "rap/internal/wgfix"},
		{"wgcheck clean", WGCheck, "wgcheck_ok", "rap/internal/wgokfix"},
		{"goroutineleak", GoroutineLeak, "goroutineleak", "rap/internal/leakfix"},
		{"goroutineleak clean", GoroutineLeak, "goroutineleak_ok", "rap/internal/leakokfix"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pkg, wants := loadFixture(t, filepath.Join("testdata", "src", tc.dir), tc.path)
			var findings []Finding
			RunPackage(pkg, []*Analyzer{tc.analyzer}, &findings)
			SortFindings(findings)
			matchWants(t, findings, wants)
		})
	}
}

// matchWants asserts that findings and `// want` expectations agree
// exactly: each want line matched by one finding, nothing extra.
func matchWants(t *testing.T, findings []Finding, wants []expectation) {
	t.Helper()
	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == f.Pos.Filename && w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %v", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

// inlinePackage type-checks an inline dependency-free source string
// into a loaded Package.
func inlinePackage(t *testing.T, importPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "inline.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing inline source: %v", err)
	}
	cfg := types.Config{Importer: importer.Default()}
	tpkg, info, err := checkFiles(cfg, importPath, fset, []*ast.File{f})
	if err != nil {
		t.Fatalf("type-checking inline source: %v", err)
	}
	return &Package{Path: importPath, Name: tpkg.Name(), Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// checkSource type-checks an inline dependency-free source string and
// runs the analyzers over it.
func checkSource(t *testing.T, importPath, src string, analyzers []*Analyzer) []Finding {
	t.Helper()
	pkg := inlinePackage(t, importPath, src)
	var findings []Finding
	RunPackage(pkg, analyzers, &findings)
	SortFindings(findings)
	return findings
}

// TestIgnoreRequiresReason: a //lint:ignore directive without a reason
// is itself a finding and suppresses nothing.
func TestIgnoreRequiresReason(t *testing.T) {
	findings := checkSource(t, "rap/internal/inline", `package p

func sloppy(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
`, []*Analyzer{FloatEq})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (missing reason + unsuppressed floateq): %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "mandatory reason") {
		t.Errorf("first finding should flag the missing reason, got: %v", findings[0])
	}
	if findings[1].Analyzer != "floateq" {
		t.Errorf("bare directive must not suppress the finding, got: %v", findings[1])
	}
}

// TestIgnoreWrongAnalyzer: a directive only suppresses the analyzer it
// names.
func TestIgnoreWrongAnalyzer(t *testing.T) {
	findings := checkSource(t, "rap/internal/inline", `package p

func sloppy(a, b float64) bool {
	//lint:ignore maporder reason that names the wrong analyzer
	return a == b
}
`, []*Analyzer{FloatEq})
	if len(findings) != 1 || findings[0].Analyzer != "floateq" {
		t.Fatalf("got %v, want exactly the unsuppressed floateq finding", findings)
	}
}

// TestTrailingIgnore: a directive as a trailing comment covers its own
// line.
func TestTrailingIgnore(t *testing.T) {
	findings := checkSource(t, "rap/internal/inline", `package p

func bitwise(a, b float64) bool {
	return a == b //lint:ignore floateq intentional bit comparison
}
`, []*Analyzer{FloatEq})
	if len(findings) != 0 {
		t.Fatalf("got %v, want no findings", findings)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestTreeClean runs the full raplint suite over the module: the tree
// must stay finding-free, so a reintroduced violation fails tier-1
// tests even when the verify script is skipped.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	findings, err := Run(moduleRoot(t), []string{"./..."}, All())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}
