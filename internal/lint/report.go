package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
)

// relPath renders a finding path relative to the module root so
// reports are stable across checkouts.
func relPath(root, path string) string {
	if root == "" {
		return path
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(abs, path)
	if err != nil || len(rel) >= 2 && rel[:2] == ".." {
		return path
	}
	return filepath.ToSlash(rel)
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type jsonStats struct {
	Packages    int                `json:"packages"`
	CacheHits   int                `json:"cacheHits"`
	LoadMs      float64            `json:"loadMs"`
	AnalyzeMs   float64            `json:"analyzeMs"`
	SSABuildMs  float64            `json:"ssaBuildMs"`
	ConcBuildMs float64            `json:"concBuildMs"`
	TotalMs     float64            `json:"totalMs"`
	AnalyzerMs  map[string]float64 `json:"analyzerMs,omitempty"`
	// FindingsByAnalyzer counts this run's findings per analyzer, so
	// dashboards can trend analyzer yield without re-parsing findings.
	FindingsByAnalyzer map[string]int `json:"findingsByAnalyzer,omitempty"`
}

type jsonReport struct {
	RaplintVersion string        `json:"raplintVersion"`
	GoVersion      string        `json:"goVersion"`
	Findings       []jsonFinding `json:"findings"`
	Stats          *jsonStats    `json:"stats,omitempty"`
}

// WriteJSONReport encodes findings (and, when non-nil, run stats) as
// the machine-readable lint-report artifact consumed by CI. Paths are
// relative to root.
func WriteJSONReport(w io.Writer, root string, findings []Finding, stats *Stats) error {
	rep := jsonReport{
		RaplintVersion: lintVersion,
		GoVersion:      runtime.Version(),
		Findings:       make([]jsonFinding, 0, len(findings)),
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	if stats != nil {
		js := &jsonStats{
			Packages:    stats.Packages,
			CacheHits:   stats.CacheHits,
			LoadMs:      float64(stats.Load.Microseconds()) / 1e3,
			AnalyzeMs:   float64(stats.Analyze.Microseconds()) / 1e3,
			SSABuildMs:  float64(stats.SSABuild.Microseconds()) / 1e3,
			ConcBuildMs: float64(stats.ConcBuild.Microseconds()) / 1e3,
			TotalMs:     float64(stats.Total.Microseconds()) / 1e3,
			AnalyzerMs:  map[string]float64{},
		}
		for name, d := range stats.PerAnalyzer {
			js.AnalyzerMs[name] = float64(d.Microseconds()) / 1e3
		}
		if len(findings) > 0 {
			js.FindingsByAnalyzer = map[string]int{}
			for _, f := range findings {
				js.FindingsByAnalyzer[f.Analyzer]++
			}
		}
		rep.Stats = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// CheckReport decodes a lint-report JSON artifact written by
// WriteJSONReport and returns its findings rendered one per line
// ("file:line:col: message [analyzer]") — the raplint -check-report CI
// gate, replacing fragile textual greps over the artifact. An error
// means the file is not a raplint report (or is truncated), which a
// gate must treat as failure, not as cleanliness.
func CheckReport(r io.Reader) ([]string, error) {
	var rep jsonReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("not a raplint report: %w", err)
	}
	if rep.RaplintVersion == "" {
		return nil, fmt.Errorf("not a raplint report: missing raplintVersion")
	}
	lines := make([]string, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Column, f.Message, f.Analyzer))
	}
	return lines, nil
}

// SARIF 2.1.0 skeleton — the subset CI annotation surfaces consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes findings as a SARIF 2.1.0 log, the interchange
// format code-scanning UIs ingest. Paths are relative to root.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	drv := sarifDriver{Name: "raplint", Version: lintVersion}
	for _, a := range analyzers {
		drv.Rules = append(drv.Rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	run := sarifRun{Tool: sarifTool{Driver: drv}, Results: []sarifResult{}}
	for _, f := range findings {
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
