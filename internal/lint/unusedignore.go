package lint

import "go/token"

// UnusedIgnore flags //lint:ignore directives that suppressed no
// finding during the run: a stale escape hatch is itself a finding, so
// the exception inventory cannot rot. This is a whole-run check — a
// directive in one package can legitimately be consumed by another
// package's detaint pass — so the per-package Run is a no-op and the
// driver performs the check after every package (fresh or cached) has
// reported which directives it used. It is authoritative only when the
// whole module is analyzed (`./...`); narrower patterns may miss
// cross-package consumers.
//
// Unused-ignore findings are not themselves suppressible, and they are
// never cached: they are recomputed from the global usage set on every
// run.
var UnusedIgnore = &Analyzer{
	Name: "unusedignore",
	Doc:  "//lint:ignore directive that suppresses no finding",
	Run:  func(*Pass) {},
}

// unusedIgnoreFindings computes the whole-run check: every declared
// directive (per target package) minus the globally used set. A
// directive naming an analyzer that is not registered in this run gets
// a distinct message — it is not merely stale, it never could suppress
// anything (typo, or a directive outliving an analyzer rename) — keyed
// off the known set so -legacy-unitmix keeps `unitmix` directives valid.
func unusedIgnoreFindings(declsByPkg [][]IgnoreRef, used map[IgnoreRef]bool, known map[string]bool) []Finding {
	var out []Finding
	for _, decls := range declsByPkg {
		for _, d := range decls {
			if used[d] {
				continue
			}
			msg := "//lint:ignore " + d.Analyzer + " suppresses no finding; delete the stale directive (or fix what it was meant to excuse)"
			if known != nil && !known[d.Analyzer] {
				msg = "//lint:ignore names unknown analyzer " + d.Analyzer + "; no such analyzer is registered, so the directive can never suppress anything"
			}
			out = append(out, Finding{
				Analyzer: UnusedIgnore.Name,
				Pos:      token.Position{Filename: d.File, Line: d.Line, Column: d.Col},
				Message:  msg,
			})
		}
	}
	return out
}
