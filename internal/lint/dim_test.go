package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUnitRoundTrip: parseUnit(u.String()) must reproduce u for every
// unit shape the annotations and derivations produce — the canonical
// rendering is itself a valid //rap:unit expression.
func TestUnitRoundTrip(t *testing.T) {
	exprs := []string{
		"us", "ms", "ns", "s",
		"B", "bytes", "MB", "GB", "GiB",
		"1", "frac", "ratio",
		"GB/s", "B/us", "Gb/s", "elem/us", "flop/us",
		"B*elem/s", "s^2", "1/s", "B^2/s^2",
		"GBps", "Mbps",
	}
	for _, e := range exprs {
		u, err := parseUnit(e)
		if err != nil {
			t.Fatalf("parseUnit(%q): %v", e, err)
		}
		rt, err := parseUnit(u.String())
		if err != nil {
			t.Fatalf("parseUnit(%q.String()=%q): %v", e, u, err)
		}
		if !rt.equal(u) {
			t.Errorf("round trip of %q: %q != %q", e, rt, u)
		}
	}
	for _, bad := range []string{"", "parsecs", "B/s/s", "B^0", "us banana extra"} {
		if _, err := parseUnit(bad); err == nil {
			t.Errorf("parseUnit(%q) should fail", bad)
		}
	}
}

// TestUnitAlgebra: mul/div derive the expected compound units and
// additive compatibility is exact.
func TestUnitAlgebra(t *testing.T) {
	mustParse := func(s string) unit {
		t.Helper()
		u, err := parseUnit(s)
		if err != nil {
			t.Fatalf("parseUnit(%q): %v", s, err)
		}
		return u
	}
	cases := []struct {
		got  unit
		want string
	}{
		{mustParse("B").div(mustParse("s")), "B/s"},
		{mustParse("B").div(mustParse("B/us")), "us"},
		{mustParse("flop").div(mustParse("flop/us")), "us"},
		{mustParse("1").mul(mustParse("us")), "us"},
		{mustParse("GB/s").mul(mustParse("s")), "GB"},
		{mustParse("us").div(mustParse("us")), "1"},
	}
	for _, c := range cases {
		if !c.got.equal(mustParse(c.want)) {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
	if mustParse("MB").equal(mustParse("GB")) {
		t.Error("MB and GB must not be additively compatible")
	}
	if mustParse("B").equal(mustParse("B/s")) {
		t.Error("B and B/s must not be additively compatible")
	}
}

// TestDimCheckLocal: annotation-seeded mismatches in one suffix-free
// package — every finding exists only because of //rap:unit.
func TestDimCheckLocal(t *testing.T) {
	pkg, wants := loadFixture(t, filepath.Join("testdata", "src", "dimcheck_local"), "rap/internal/dimfix")
	if len(wants) == 0 {
		t.Fatal("fixture carries no want expectations")
	}
	var findings []Finding
	RunPackage(pkg, []*Analyzer{DimCheck}, &findings)
	SortFindings(findings)
	matchWants(t, findings, wants)
}

// TestFloatReduce: nondeterministic float accumulations are findings;
// the deterministic shapes (keyed element-wise updates, per-worker
// partials, slice-order merges) stay silent.
func TestFloatReduce(t *testing.T) {
	pkg, wants := loadFixture(t, filepath.Join("testdata", "src", "floatreduce"), "rap/internal/redfix")
	if len(wants) == 0 {
		t.Fatal("fixture carries no want expectations")
	}
	var findings []Finding
	RunPackage(pkg, []*Analyzer{FloatReduce}, &findings)
	SortFindings(findings)
	matchWants(t, findings, wants)
}

// TestDimFlowCrossPackage is the v2-blindness proof: a byte-annotated
// value flows through a suffix-free local into another package's
// µs-annotated parameter. The whole v2 suite (name heuristics
// included) stays silent over both packages; dimcheck pins the call
// site and carries the example flow path from the seed annotation to
// the argument.
func TestDimFlowCrossPackage(t *testing.T) {
	pkgs, wants := loadProgram(t, []fixtureSpec{
		{dir: "dimflow_lib", path: "rap/internal/dimlib"},
		{dir: "dimflow_caller", path: "rap/internal/dimcaller"},
	})
	if len(wants) == 0 {
		t.Fatal("fixture carries no want expectations")
	}
	prog := NewProgram(pkgs)

	var v2 []Finding
	for _, pkg := range pkgs {
		prog.RunPackage(pkg, V2(), &v2)
	}
	if len(v2) != 0 {
		t.Fatalf("the v2 suite must be blind to the cross-package dimension flow, got %v", v2)
	}

	var findings []Finding
	for _, pkg := range pkgs {
		prog.RunPackage(pkg, []*Analyzer{DimCheck}, &findings)
	}
	SortFindings(findings)
	matchWants(t, findings, wants)
	for _, f := range findings {
		for _, part := range []string{
			`//rap:unit bytes on "Payload"`, // the seed (canonical spelling)
			`assigned to "total"`,           // the intermediate def edge
			"annotation at pool.go:",        // the violated contract
		} {
			if !strings.Contains(f.Message, part) {
				t.Errorf("finding should carry the flow path element %q, got: %v", part, f)
			}
		}
	}
}

// TestDimCheckSubsumesUnitMix: dimcheck's weak name seeds reproduce
// every finding of the retired v1 unitmix analyzer on its own fixture.
// The one extra finding is the fixture's `//lint:ignore unitmix` case:
// the suppression names the old analyzer, so dimcheck (correctly)
// still reports it.
func TestDimCheckSubsumesUnitMix(t *testing.T) {
	dir := filepath.Join("testdata", "src", "unitmix")
	pkg, wants := loadFixture(t, dir, "rap/internal/unitfix")
	if len(wants) == 0 {
		t.Fatal("unitmix fixture carries no want expectations")
	}

	// The line after the //lint:ignore unitmix directive is the only
	// place dimcheck may report beyond the unitmix wants.
	var allowedFile string
	allowedLine := -1
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, "//lint:ignore unitmix") {
				allowedFile, allowedLine = path, i+2
			}
		}
	}
	if allowedLine < 0 {
		t.Fatal("unitmix fixture lost its //lint:ignore unitmix case")
	}

	var findings []Finding
	RunPackage(pkg, []*Analyzer{DimCheck}, &findings)
	SortFindings(findings)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == f.Pos.Filename && w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok && !(f.Pos.Filename == allowedFile && f.Pos.Line == allowedLine) {
			t.Errorf("finding beyond the unitmix set: %v", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("dimcheck misses the unitmix finding at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

// TestUnitDirectiveErrors: malformed and stray //rap:unit directives
// are findings, not silent no-ops.
func TestUnitDirectiveErrors(t *testing.T) {
	cases := []struct {
		name, src, substr string
	}{
		{"stray in body", `package p

func f() float64 {
	//rap:unit us
	return 1
}
`, "must annotate"},
		{"unknown atom", `package p

type T struct {
	F float64 //rap:unit parsecs
}
`, "unknown unit atom"},
		{"bad func target", `package p

// f frobs.
//
//rap:unit nosuch us
func f(x float64) float64 { return x }
`, "names no parameter or result"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings := checkSource(t, "rap/internal/inline", tc.src, []*Analyzer{DimCheck})
			if len(findings) != 1 || !strings.Contains(findings[0].Message, tc.substr) {
				t.Fatalf("got %v, want exactly one finding containing %q", findings, tc.substr)
			}
		})
	}
}

// TestAnnotationBeatsSuffix: a //rap:unit annotation overrides the
// name-suffix guess on the same value — annotations are the strong
// seed, names the weak one.
func TestAnnotationBeatsSuffix(t *testing.T) {
	findings := checkSource(t, "rap/internal/inline", `package p

// elapsedMB is, despite its suffix, a duration.
var elapsedMB = 0.0 //rap:unit us

// windowUs is a duration by suffix and by nature.
var windowUs = 1.0

func sum() float64 {
	return elapsedMB + windowUs
}
`, []*Analyzer{DimCheck})
	if len(findings) != 0 {
		t.Fatalf("annotation must override the MB suffix guess, got %v", findings)
	}
}
