package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked module package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// moduleList is the discovered shape of an analysis run: the target
// packages plus, once ensureDeps has run, the full module dependency
// closure and the stdlib export-data index. The dependency listing is
// loaded lazily because the cache-warm fast path never needs it.
type moduleList struct {
	dir        string
	patterns   []string
	modulePath string
	targets    []*listPkg
	metas      map[string]*listPkg // module packages by import path
	exports    map[string]string   // stdlib import path -> export data file
	depsLoaded bool
}

// listTargets discovers the packages matching patterns via one
// `go list` invocation (no dependency closure, no export data).
func listTargets(dir string, patterns []string) (*moduleList, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, append([]string{"-json=Dir,ImportPath,Name,GoFiles,Imports,Standard,Module,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	ml := &moduleList{
		dir:      dir,
		patterns: patterns,
		metas:    map[string]*listPkg{},
		exports:  map[string]string{},
	}
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard {
			continue
		}
		if p.Module != nil && ml.modulePath == "" {
			ml.modulePath = p.Module.Path
		}
		ml.targets = append(ml.targets, p)
		ml.metas[p.ImportPath] = p
	}
	sort.Slice(ml.targets, func(i, j int) bool { return ml.targets[i].ImportPath < ml.targets[j].ImportPath })
	return ml, nil
}

// analyzable filters the targets down to packages with Go sources.
func (ml *moduleList) analyzable() []*listPkg {
	var out []*listPkg
	for _, t := range ml.targets {
		if len(t.GoFiles) > 0 {
			out = append(out, t)
		}
	}
	return out
}

// ensureDeps loads the full dependency closure with export data for the
// standard-library imports. Idempotent.
func (ml *moduleList) ensureDeps() error {
	if ml.depsLoaded {
		return nil
	}
	deps, err := goList(ml.dir, append([]string{"-deps", "-export", "-json=Dir,ImportPath,Name,GoFiles,Imports,Standard,Export,Module,Error"}, ml.patterns...)...)
	if err != nil {
		return err
	}
	for _, p := range deps {
		if p.Standard {
			ml.exports[p.ImportPath] = p.Export
		} else if _, ok := ml.metas[p.ImportPath]; !ok {
			ml.metas[p.ImportPath] = p
		}
	}
	ml.depsLoaded = true
	return nil
}

// typeCheck parses and type-checks the given target packages (plus, on
// demand, their module dependencies). It returns the checked targets in
// input order and every module package the run touched, sorted by path.
func (ml *moduleList) typeCheck(targets []*listPkg) (checked []*Package, all []*Package, err error) {
	if err := ml.ensureDeps(); err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	im := &moduleImporter{
		fset:    fset,
		metas:   ml.metas,
		exports: ml.exports,
		done:    map[string]*Package{},
		loading: map[string]bool{},
	}
	im.std = importer.ForCompiler(fset, "gc", im.lookupExport)
	im.srcFallback = importer.ForCompiler(fset, "source", nil)

	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := im.check(t.ImportPath)
		if err != nil {
			return nil, nil, err
		}
		checked = append(checked, pkg)
	}
	for _, pkg := range im.done {
		all = append(all, pkg)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Path < all[j].Path })
	return checked, all, nil
}

// Load discovers the packages matching patterns via `go list -json`,
// parses their non-test Go files, and type-checks them. Module packages
// are checked from source; standard-library dependencies are imported
// from the build cache's export data (`go list -export`), falling back
// to source import when export data is unavailable.
func Load(dir string, patterns ...string) ([]*Package, error) {
	ml, err := listTargets(dir, patterns)
	if err != nil {
		return nil, err
	}
	checked, _, err := ml.typeCheck(ml.analyzable())
	if err != nil {
		return nil, err
	}
	sort.Slice(checked, func(i, j int) bool { return checked[i].Path < checked[j].Path })
	return checked, nil
}

// moduleImporter type-checks module packages from source (memoized, so
// shared dependencies have a single *types.Package identity) and
// resolves everything else through gc export data.
type moduleImporter struct {
	fset        *token.FileSet
	metas       map[string]*listPkg
	exports     map[string]string
	done        map[string]*Package
	loading     map[string]bool
	std         types.Importer
	srcFallback types.Importer
}

func (im *moduleImporter) lookupExport(path string) (io.ReadCloser, error) {
	p := im.exports[path]
	if p == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(p)
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.done[path]; ok {
		return pkg.Types, nil
	}
	if _, ok := im.metas[path]; ok {
		pkg, err := im.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if im.exports[path] != "" {
		return im.std.Import(path)
	}
	return im.srcFallback.Import(path)
}

func (im *moduleImporter) check(path string) (*Package, error) {
	if pkg, ok := im.done[path]; ok {
		return pkg, nil
	}
	meta := im.metas[path]
	if meta == nil {
		return nil, fmt.Errorf("lint: unknown module package %q", path)
	}
	if im.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	im.loading[path] = true
	defer delete(im.loading, path)

	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(im.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{Importer: im}
	tpkg, err := cfg.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	pkg := &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  im.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	im.done[path] = pkg
	return pkg, nil
}
