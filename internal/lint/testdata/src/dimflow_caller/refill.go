// Package dimcaller is the caller side of the cross-package dimflow
// fixture: a byte-dimensioned value (annotated here, suffix-free name)
// flows through a local into dimlib's µs-annotated parameter. The v1
// suffix heuristic sees plain names on both sides and stays silent;
// dimcheck reports the call site with the example flow path.
package dimcaller

import "rap/internal/dimlib"

// Shard is one embedding shard handoff.
type Shard struct {
	// Payload is the transfer size of the handoff.
	Payload float64 //rap:unit B
}

// Refill credits the pool with the shard payload — the wrong dimension.
func Refill(p *dimlib.Pool, s Shard) {
	total := s.Payload
	p.Grant(total) // want "declared //rap:unit us"
}
