// Package redfix is a floatreduce fixture: float accumulations whose
// visit or completion order is not statically deterministic, next to
// the deterministic shapes the analyzer must leave alone.
package redfix

import "sync"

// MapSum accumulates float values in randomized map order.
func MapSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "map iteration order is randomized"
	}
	return sum
}

// KeyedScale is order-independent: each key's cell is touched exactly
// once per range, and distinct cells don't interact.
func KeyedScale(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v // ok: element-wise update keyed by the range key
	}
}

// Fan accumulates into captured state from loop-launched goroutines:
// the mutex serializes the writes but not their order.
func Fan(xs []float64) float64 {
	var mu sync.Mutex
	total := 0.0
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += x // want "completion order is scheduler-dependent"
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// Partials is the deterministic reduction the analyzer recommends:
// per-worker cells indexed by the launching loop's variable, merged in
// slice order afterwards.
func Partials(xs []float64) float64 {
	parts := make([]float64, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(xs); i += 4 {
				parts[w] += xs[i] // ok: cell private to worker w
			}
		}()
	}
	wg.Wait()
	sum := 0.0
	for _, p := range parts {
		sum += p // ok: slice range visits a fixed order
	}
	return sum
}

// Drain sums values received from loop-launched senders: arrival order
// interleaves nondeterministically.
func Drain(xs []float64) float64 {
	ch := make(chan float64)
	for _, x := range xs {
		go func() { ch <- x * x }()
	}
	sum := 0.0
	for range xs {
		sum += <-ch // want "receive order is scheduler-dependent"
	}
	return sum
}

// DrainRange is the range-over-channel spelling of the same hazard.
func DrainRange(xs []float64) float64 {
	ch := make(chan float64)
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- x
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	sum := 0.0
	for v := range ch {
		sum += v // want "receive order from concurrent senders is scheduler-dependent"
	}
	return sum
}
