// Package leaklib is the dependency half of the goroutineleak
// cross-package fixture: Pump's send on its channel parameter is the
// fact the caller-side analysis composes with.
package leaklib

func Pump(ch chan int) {
	ch <- 1
}

func Drain(ch chan int) int {
	return <-ch
}
