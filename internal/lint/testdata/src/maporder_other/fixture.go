// Package other is a maporder scope fixture: it is not in the
// deterministic package set, so even order-sensitive map iteration is
// out of scope.
package other

func firstKey(m map[string]int) string {
	for k := range m { // ok: package is outside the deterministic set
		return k
	}
	return ""
}
