// Package atomlib is the dependency half of the atomicplain
// cross-package fixture: its atomic accesses taint the counter field
// for every dependent package.
package atomlib

import "sync/atomic"

type Stat struct {
	N int64
}

func Bump(s *Stat) {
	atomic.AddInt64(&s.N, 1)
}

func Load(s *Stat) int64 {
	return atomic.LoadInt64(&s.N)
}
