// Package fix is a seededrand scope fixture: the same calls under a
// cmd/ import path are out of scope (wall-clock benchmarking in CLIs is
// fine).
package fix

import (
	"math/rand"
	"time"
)

func jitter() float64 {
	return rand.Float64() // ok: not internal simulator/planner code
}

func stamp() int64 {
	return time.Now().UnixNano() // ok: not internal simulator/planner code
}
