// Package leakfix exercises the goroutineleak analyzer: goroutines
// blocked forever on channels nothing will service.
package leakfix

func compute() int { return 42 }

func leakNoReceiver() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{} // want "blocks forever"
	}()
}

func leakEarlyReturn(fast bool) int {
	res := make(chan int)
	go func() {
		res <- compute() // want "leaks the goroutine"
	}()
	if fast {
		return 0
	}
	return <-res
}

func leakNoSender() {
	ready := make(chan struct{})
	go func() {
		<-ready // want "blocks forever"
	}()
}

func leakSpin(counter *int) {
	go func() {
		for { // want "spins in a loop"
			*counter++
		}
	}()
}
