// Package leakokfix holds goroutine/channel shapes that must stay
// silent: buffered sends, worker pools with close, select alternatives,
// escaping channels, and spin loops with stop checks.
package leakokfix

func produce() int { return 7 }

// bufferedResult: the buffer absorbs the send even when the early
// return skips the receive — the goroutine terminates either way.
func bufferedResult(fast bool) int {
	res := make(chan int, 1)
	go func() {
		res <- produce()
	}()
	if fast {
		return 0
	}
	return <-res
}

// workerPool: unbuffered jobs serviced by a range-receiving goroutine,
// with every send and the close ahead of any return.
func workerPool(items []int) {
	jobs := make(chan int)
	done := make(chan struct{})
	go func() {
		for j := range jobs {
			_ = j
		}
		close(done)
	}()
	for _, it := range items {
		jobs <- it
	}
	close(jobs)
	<-done
}

// selectSend: the select gives the goroutine an exit alternative.
func selectSend(quit chan struct{}) {
	out := make(chan int)
	go func() {
		select {
		case out <- produce():
		case <-quit:
		}
	}()
}

// escapes: the channel is returned to the caller, so its counterparts
// are outside the analysis; stay silent.
func escapes() chan int {
	ch := make(chan int)
	go func() {
		ch <- produce()
	}()
	return ch
}

// stoppableLoop: the spin loop consults a stop function and returns.
func stopped() bool { return true }

func stoppableLoop() {
	go func() {
		for {
			if stopped() {
				return
			}
		}
	}()
}
