// Package leakcaller spawns a dependency function on a channel nothing
// else touches: without the callee's channel facts the spawned send is
// invisible.
package leakcaller

import "rap/internal/leaklib"

func StartNoReceiver() {
	ch := make(chan int)
	go leaklib.Pump(ch) // want "blocks forever"
}

func StartPaired() {
	ch := make(chan int)
	go leaklib.Pump(ch)
	leaklib.Drain(ch) // the callee's receive services the send: silent
}
