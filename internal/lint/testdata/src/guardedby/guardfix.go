// Package guardfix is a fixture for the guardedby analyzer: the n
// field's `guarded by` contract must hold at every access.
package guardfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want "accessed without holding c.mu"
}

func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "accessed without holding c.mu"
}

func (c *counter) badBranchLeak(flip bool) int {
	if flip {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n
	}
	return c.n // want "accessed without holding c.mu"
}

func (c *counter) badGoroutine() {
	c.mu.Lock()
	go func() {
		c.n++ // want "accessed without holding c.mu"
	}()
	c.mu.Unlock()
}
