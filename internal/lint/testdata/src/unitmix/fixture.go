// Package unitfix is a unitmix fixture.
package unitfix

const bytesPerMB = 1 << 20

func overflows(bufBytes, limitMB float64) bool {
	return bufBytes > limitMB // want "mixes bytes with MB"
}

func total(commBytes, capGB float64) float64 {
	return commBytes + capGB // want "mixes bytes with GB"
}

func mislabeled(sizeBytes, linkGbps float64) bool {
	return sizeBytes < linkGbps // want "mixes bytes with Gb/s"
}

func converted(bufBytes, limitMB float64) bool {
	return bufBytes > limitMB*bytesPerMB // ok: explicit conversion on one side
}

func sameUnit(aMB, bMB float64) float64 {
	return aMB + bMB // ok: both operands carry the same unit
}

func scaled(xBytes float64) float64 {
	return xBytes / bytesPerMB // ok: division is how conversions are written
}

func plain(a, b float64) float64 {
	return a + b // ok: no units in either name
}

func suppressed(bufBytes, limitMB float64) bool {
	//lint:ignore unitmix test fixture: deliberately suppressed
	return bufBytes > limitMB
}
