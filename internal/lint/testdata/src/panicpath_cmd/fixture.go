// Package panicfix is a panicpath scope fixture: panics under a cmd/
// import path are out of scope (a CLI may crash on its own bugs).
package panicfix

func broken(s string) int {
	if s == "" {
		panic("empty") // ok: not an internal library package
	}
	return len(s)
}
