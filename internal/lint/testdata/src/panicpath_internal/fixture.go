// Package panicfix is a panicpath fixture under an internal import path.
package panicfix

import "errors"

func parse(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty") // ok: error return
	}
	return len(s), nil
}

func broken(s string) int {
	if s == "" {
		panic("empty") // want "panic in internal package"
	}
	return len(s)
}

func alsoBroken() {
	defer func() {
		panic("in deferred func") // want "panic in internal package"
	}()
}

func MustParse(s string) int {
	if s == "" {
		panic("empty") // ok: Must* helper
	}
	return len(s)
}

func mustNonEmpty(s string) {
	if s == "" {
		panic("empty") // ok: must* helper
	}
}

func suppressed(s string) int {
	if s == "" {
		//lint:ignore panicpath test fixture: checked invariant
		panic("empty")
	}
	return len(s)
}
