// Package atomcaller reads a field its dependency only ever touches
// atomically: the plain load is invisible without the dependency's
// atomic-access facts.
package atomcaller

import "rap/internal/atomlib"

func Peek(s *atomlib.Stat) int64 {
	return s.N // want "plain access"
}

func Sum(s *atomlib.Stat) int64 {
	return atomlib.Load(s) // atomic accessor: silent
}
