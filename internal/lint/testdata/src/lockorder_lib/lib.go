// Package locklib is the dependency half of the lockorder
// cross-package fixture: it establishes the MuA -> MuB acquisition
// order that the caller package reverses.
package locklib

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex

	countA int
	countB int
)

// BumpBoth takes MuA then MuB: the lib's half of the cycle.
func BumpBoth() {
	MuA.Lock()
	defer MuA.Unlock()
	MuB.Lock()
	defer MuB.Unlock()
	countA++
	countB++
}
