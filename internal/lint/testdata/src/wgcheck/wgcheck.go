// Package wgfix exercises the wgcheck analyzer: every WaitGroup misuse
// pattern it reports.
package wgfix

import "sync"

func addInsideGoroutine(items []int) {
	var wg sync.WaitGroup
	for range items {
		go func() {
			wg.Add(1) // want "Add inside the spawned goroutine"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func negativeAdd(wg *sync.WaitGroup) {
	wg.Add(-1) // want "negative WaitGroup Add"
}

func skippableDone(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			if len(items) > 3 {
				return
			}
			wg.Done() // want "Done is not reached on every path"
		}()
	}
	wg.Wait()
}

// mustPositive panics on bad input: calling it before a non-deferred
// Done makes the Done skippable on the panic path.
func mustPositive(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

func panicSkipsDone(ns []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		mustPositive(len(ns))
		wg.Done() // want "can panic before it runs"
	}()
	wg.Wait()
}

func addWithoutDone() {
	var wg sync.WaitGroup
	wg.Add(1) // want "no reachable Done"
	wg.Wait()
}
