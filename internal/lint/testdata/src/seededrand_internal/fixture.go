// Package simfix is a seededrand fixture under an internal import path.
package simfix

import (
	"math/rand"
	"time"
)

func jitter() float64 {
	return rand.Float64() // want "shared global source"
}

func pick(n int) int {
	return rand.Intn(n) // want "shared global source"
}

func stamp() int64 {
	return time.Now().UnixNano() // want "wall clock"
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want "wall clock"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // ok: constructing the injected rng
	return r.Float64()                  // ok: method on the injected rng
}

func shuffle(r *rand.Rand, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // ok
}

func span(a, b time.Duration) time.Duration {
	return b - a // ok: time types without reading the clock
}

func suppressed() int64 {
	//lint:ignore seededrand test fixture: deliberately suppressed
	return time.Now().UnixNano()
}
