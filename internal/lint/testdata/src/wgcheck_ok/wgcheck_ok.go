// Package wgokfix holds WaitGroup shapes that must stay silent: the
// canonical Add-before-go with deferred Done, Done through a helper the
// WaitGroup is forwarded to, and a WaitGroup whose address escapes.
package wgokfix

import "sync"

func fanOut(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// finish Dones on its WaitGroup parameter: forwarding &wg to it counts
// as a reachable Done.
func finish(wg *sync.WaitGroup) {
	wg.Done()
}

func viaHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer finish(&wg)
	}()
	wg.Wait()
}

type pool struct {
	wg *sync.WaitGroup
}

// stash takes the WaitGroup's address without Add/Done facts: the
// WaitGroup escapes and the no-reachable-Done check stays silent.
func stash(p *pool, wg *sync.WaitGroup) {
	p.wg = wg
}

func escaped(p *pool) {
	var wg sync.WaitGroup
	wg.Add(1)
	stash(p, &wg)
	wg.Wait()
}

// deferredViaClosure: the Done lives inside a deferred closure; the
// panic-capable call before it cannot skip a deferred Done.
func mayFail(n int) int {
	if n == 0 {
		panic("zero")
	}
	return 10 / n
}

func deferredViaClosure(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			wg.Done()
		}()
		mayFail(n)
	}()
	wg.Wait()
}
