// Package lockcaller reverses the MuA -> MuB order its dependency
// establishes: neither package sees a cycle alone, only a whole-program
// view of both acquisition graphs does.
package lockcaller

import (
	"sync"

	"rap/internal/locklib"
)

var mine sync.Mutex

func ReverseOrder() {
	locklib.MuB.Lock()
	defer locklib.MuB.Unlock()
	locklib.MuA.Lock() // want "lock order cycle"
	defer locklib.MuA.Unlock()
}

// localOnly nests a package-local mutex under MuA in the lib's order
// direction: consistent, so silent.
func localOnly() {
	mine.Lock()
	defer mine.Unlock()
}
