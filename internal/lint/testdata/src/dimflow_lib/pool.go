// Package dimlib is the dependency side of the cross-package dimflow
// fixture: it exports a method whose parameter is annotated with a
// time unit. No identifier in either package carries a unit suffix, so
// the v1 name heuristic (and with it the whole v2 suite) has nothing
// to seed from — only the annotation-driven value flow can connect a
// caller's argument to this contract.
package dimlib

// Pool tracks the remaining co-run allowance of one GPU.
type Pool struct {
	// Budget is the remaining allowance.
	Budget float64 //rap:unit us
}

// Grant credits the pool with extra allowance.
//
//rap:unit amount us
func (p *Pool) Grant(amount float64) {
	p.Budget += amount
}
