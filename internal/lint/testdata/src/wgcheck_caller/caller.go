// Package wgcaller spawns a dependency function that Adds on the
// WaitGroup it is handed: only the callee's parameter facts reveal that
// the Add happens inside the spawned goroutine.
package wgcaller

import (
	"sync"

	"rap/internal/wglib"
)

func Race() {
	var wg sync.WaitGroup
	go wglib.Seed(&wg) // want "calls Add on the WaitGroup spawned with it"
	wg.Wait()
}

func Straight() {
	var wg sync.WaitGroup
	wglib.Seed(&wg) // synchronous: the Add lands before Wait, silent
	wg.Wait()
}
