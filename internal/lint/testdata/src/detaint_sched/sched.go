// Package sched is a fixture root package: its deterministic package
// name makes every exported function a detaint root, no annotation
// needed. The package itself is spotless under the v1 local analyzers —
// the leak lives two calls away in rap/internal/helperfix.
package sched

import "rap/internal/helperfix"

// Plan orders work by key, delegating the flattening to a helper
// package the local maporder analyzer provably cannot see into.
func Plan(work map[string]int) []int {
	return expand(work)
}

func expand(work map[string]int) []int {
	return helperfix.Tally(work)
}
