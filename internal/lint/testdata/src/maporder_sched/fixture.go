// Package sched is a maporder fixture: the package name puts it in the
// deterministic set, so order-sensitive map iteration must be flagged.
package sched

import "sort"

func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // ok: sorted-key extraction
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func countAll(m map[string]int) int {
	n := 0
	for _, v := range m { // ok: exactly commutative integer reduction
		n += v
	}
	return n
}

func copyAll(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // ok: per-key writes touch disjoint entries
		out[k] = v
	}
	return out
}

func pruneZero(m map[string]int) {
	for k, v := range m { // ok: per-key delete keyed by the range key
		if v == 0 {
			delete(m, k)
		}
	}
}

func sumFloats(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want "map iteration order"
		s += v
	}
	return s
}

func firstKey(m map[string]int) string {
	for k := range m { // want "map iteration order"
		return k
	}
	return ""
}

func appendValues(m map[string]int, dst []int) []int {
	for _, v := range m { // want "map iteration order"
		dst = append(dst, v)
	}
	return dst
}

func argmax(m map[string]float64) string {
	best, bestV := "", 0.0
	for k, v := range m { // want "map iteration order"
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}

func suppressed(m map[string]float64) float64 {
	s := 0.0
	//lint:ignore maporder test fixture: deliberately suppressed
	for _, v := range m {
		s += v
	}
	return s
}
