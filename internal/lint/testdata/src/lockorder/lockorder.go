// Package lockfix exercises the lockorder analyzer: the classic
// transfer(a, b) / transfer(b, a) deadlock, plus a cycle closed through
// a callee that acquires under a held lock.
package lockfix

import "sync"

type account struct {
	mu  sync.Mutex
	bal int
}

func transferAB(a, b *account, amt int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock order cycle"
	defer b.mu.Unlock()
	a.bal -= amt
	b.bal += amt
}

func transferBA(a, b *account, amt int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	b.bal -= amt
	a.bal += amt
}

type registry struct {
	mu    sync.Mutex
	items map[string]int
}

type index struct {
	mu   sync.Mutex
	keys []string
}

// lookup takes idx.mu then reg.mu directly: the first half of the
// second cycle.
func lookup(idx *index, reg *registry) int {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	reg.mu.Lock() // want "lock order cycle"
	defer reg.mu.Unlock()
	return reg.items[idx.keys[0]]
}

// reindex closes the cycle interprocedurally: reg.mu is held across a
// call to addKey, which acquires idx.mu.
func reindex(reg *registry, idx *index) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for k := range reg.items {
		addKey(idx, k)
	}
}

func addKey(idx *index, k string) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	idx.keys = append(idx.keys, k)
}
