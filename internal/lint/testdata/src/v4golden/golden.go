// Package v4golden triggers exactly one finding from each v4 analyzer;
// the JSON and SARIF encodings of the result are pinned as golden
// files (testdata/golden/v4.{json,sarif}).
package v4golden

import (
	"sync"
	"sync/atomic"
)

type pair struct {
	mu sync.Mutex
	n  int
}

func lockAB(a, b *pair) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // lockorder: reverse of lockBA
	defer b.mu.Unlock()
	a.n++
	b.n++
}

func lockBA(a, b *pair) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n--
	b.n--
}

var total int64

func addTotal() {
	atomic.AddInt64(&total, 1)
}

func readTotal() int64 {
	return total // atomicplain: plain load of an atomically written word
}

func waitNever() {
	var wg sync.WaitGroup
	wg.Add(1) // wgcheck: no Done anywhere
	wg.Wait()
}

func sendNever() {
	ch := make(chan int)
	go func() {
		ch <- 1 // goroutineleak: nothing receives
	}()
}
