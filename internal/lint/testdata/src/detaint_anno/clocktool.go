// Package clocktool is a fixture: outside both the deterministic
// package set and internal/ paths, so neither maporder nor seededrand
// polices it — detaint roots exist here only via //rap:deterministic.
package clocktool

import "time"

// Span is declared deterministic but reaches the wall clock through an
// unexported helper.
//
//rap:deterministic
func Span() int64 {
	return stamp()
}

func stamp() int64 {
	return time.Now().UnixNano() // want "clocktool.Span must be deterministic but reaches the wall clock"
}
