// Package dimfix is a dimcheck fixture: //rap:unit annotations seed
// the dimension lattice, `*`/`/` derive product and quotient units,
// and incompatible additive flows are findings. Every identifier is
// deliberately suffix-free so the v1 name heuristic contributes
// nothing — the findings below exist only because of annotations.
package dimfix

// link is the shard link bandwidth.
const link = 4.0 //rap:unit B/us

// Config carries annotated quantities with unit-free names.
type Config struct {
	// Window is the co-run window.
	Window float64 //rap:unit us
	// Volume is the transfer size.
	Volume float64 //rap:unit B
	// Share is the SM fraction granted to the co-runner.
	Share float64 //rap:unit 1
}

// Latency derives µs from bytes over bandwidth — compatible with the
// annotated result.
//
//rap:unit return us
func Latency(c Config) float64 {
	return c.Volume / link // ok: B / (B/us) derives us
}

// Scaled multiplies by a dimensionless factor, preserving the unit.
//
//rap:unit return us
func Scaled(c Config) float64 {
	return c.Share * c.Window // ok: 1 * us stays us
}

// Mixed adds a time to a volume.
func Mixed(c Config) float64 {
	return c.Window + c.Volume // want "mixes us with bytes"
}

// Compared orders a time against a volume.
func Compared(c Config) bool {
	return c.Window < c.Volume // want "mixes us with bytes"
}

// Stretch flows a byte count into the annotated µs field.
func Stretch(c *Config) {
	c.Window = c.Volume // want "declared //rap:unit us"
}

// WrongReturn returns bytes from a µs-annotated result.
//
//rap:unit return us
func WrongReturn(c Config) float64 {
	return c.Volume // want "declared //rap:unit us"
}
