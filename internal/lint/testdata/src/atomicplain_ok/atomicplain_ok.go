// Package atomokfix holds atomic/plain mixes that must stay silent:
// plain access under a mutex, lock-taking functions, `guarded by`
// contract fields, defining occurrences, and atomic-only objects.
package atomokfix

import (
	"sync"
	"sync/atomic"
)

type gauge struct {
	mu sync.Mutex
	n  int64
}

func (g *gauge) fastInc() {
	atomic.AddInt64(&g.n, 1)
}

// read holds the mutex across the plain load: a dominating lock orders
// it against the atomics, so no finding.
func (g *gauge) read() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

type contract struct {
	mu sync.Mutex
	// guarded by mu
	lvl int64
}

func (c *contract) touch() {
	atomic.AddInt64(&c.lvl, 1)
	_ = c.lvl // guardedby's jurisdiction, not atomicplain's
}

var ticks int64

func tick() {
	atomic.AddInt64(&ticks, 1)
}

// drainTicks takes a lock somewhere in the body; its bare-identifier
// plain access is assumed lock-disciplined.
var tickMu sync.Mutex

func drainTicks() int64 {
	tickMu.Lock()
	defer tickMu.Unlock()
	v := ticks
	ticks = 0
	return v
}

// onlyAtomic is never accessed plainly: silent.
var onlyAtomic int64

func bumpOnly() {
	atomic.AddInt64(&onlyAtomic, 1)
}
