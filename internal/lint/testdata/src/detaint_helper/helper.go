// Package helperfix is a fixture: a utility package outside the
// deterministic package set, so maporder's per-package scope does not
// police it. Its map iteration leaks order dependence to every caller —
// only the interprocedural detaint analyzer can connect it to a
// deterministic entry point in another package.
package helperfix

// Tally flattens m's values in map-iteration order.
func Tally(m map[string]int) []int {
	var counts []int
	for _, v := range m { // want "sched.Plan must be deterministic but reaches order-dependent map iteration"
		counts = append(counts, v)
	}
	return counts
}
