// Package floatfix is a floateq fixture.
package floatfix

const eps = 1e-9

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps // ok: tolerance comparison
}

func same(a, b float64) bool {
	return a == b // want "exact bits"
}

func differs(a, b float32) bool {
	return a != b // want "exact bits"
}

func classify(x float64) string {
	switch x { // want "switch on a floating-point"
	case 0:
		return "zero"
	}
	return "other"
}

func ints(a, b int) bool {
	return a == b // ok: integer equality is exact
}

func tags(a, b string) bool {
	return a == b // ok: strings compare exactly
}

const zero = 0.0
const one = 1.0

var sanity = zero == one // ok: compile-time constant comparison

func suppressed(a, b float64) bool {
	//lint:ignore floateq test fixture: intentional bit comparison
	return a == b
}
