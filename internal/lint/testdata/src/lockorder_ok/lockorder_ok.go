// Package lockokfix holds lock-ordering shapes that must stay silent:
// a consistent global order, hand-over-hand locking, and re-acquisition
// of the same key through aliased instances (a skipped self-edge).
package lockokfix

import "sync"

type account struct {
	mu  sync.Mutex
	bal int
}

// Both call sites take a.mu before b.mu: one order, no cycle.
func deposit(a, b *account, amt int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.bal -= amt
	b.bal += amt
}

func audit(a, b *account) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	return a.bal + b.bal
}

// Hand-over-hand: b.mu is taken after a.mu is released, so no edge.
func drain(a, b *account) {
	a.mu.Lock()
	amt := a.bal
	a.bal = 0
	a.mu.Unlock()
	b.mu.Lock()
	b.bal += amt
	b.mu.Unlock()
}

// swap re-acquires the same rendered key on two instances; the
// self-edge is deliberately skipped (aliasing noise).
func swap(a *account, other *account) {
	a.mu.Lock()
	defer a.mu.Unlock()
	balance(other)
}

func balance(a *account) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bal++
}
