// Package wglib is the dependency half of the wgcheck cross-package
// fixture: Seed Adds on its WaitGroup parameter, so spawning it with
// the WaitGroup races the Add against the Wait.
package wglib

import "sync"

func Seed(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}
