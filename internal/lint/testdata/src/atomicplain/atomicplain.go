// Package atomfix exercises the atomicplain analyzer: words accessed
// both through sync/atomic and through plain loads/stores.
package atomfix

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want "plain access"
}

func (c *counter) reset() {
	c.n = 0 // want "plain access"
}

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

func snapshot() int64 {
	return hits // want "plain access"
}
