// Package gofix is a fixture for the goroutinecapture analyzer:
// loop-iteration sharing, shared *rand.Rand sources, and
// unsynchronized writes to captured locals in goroutine closures.
package gofix

import (
	"math/rand"
	"sync"
)

// group mimics the errgroup shape: a Go method taking a closure.
type group struct{}

func (g *group) Go(f func()) { f() }

func sink(int) {}

// loopShare is the pre-Go-1.22 pattern: j is declared outside the loop
// and reassigned on every iteration, so all goroutines see the last one.
func loopShare() {
	var j int
	for i := 0; i < 4; i++ {
		j = i
		go func() {
			sink(j) // want "reassigned on every iteration of the enclosing loop"
		}()
	}
}

// perIteration captures a Go 1.22 per-iteration loop variable: fine.
func perIteration() {
	for i := 0; i < 4; i++ {
		go func() {
			sink(i)
		}()
	}
}

func sharedRand() {
	rng := rand.New(rand.NewSource(1))
	var g group
	g.Go(func() {
		sink(rng.Intn(10)) // want "not goroutine-safe"
	})
}

func unsyncWrite() int {
	total := 0
	go func() {
		total = 1 // want "without holding a lock"
	}()
	return total
}

// lockedWrite guards the captured local with a mutex acquired inside
// the closure: fine.
func lockedWrite() int {
	var mu sync.Mutex
	total := 0
	go func() {
		mu.Lock()
		total = 1
		mu.Unlock()
	}()
	mu.Lock()
	defer mu.Unlock()
	return total
}
