package lint

import (
	"runtime"
	"sync"
	"time"
)

// Options configures one raplint run.
type Options struct {
	// Dir is the working directory for package discovery (default ".").
	Dir string
	// Patterns are go-list package patterns (default "./...").
	Patterns []string
	// Analyzers defaults to All(). The whole-run unusedignore check
	// runs iff UnusedIgnore is in the list.
	Analyzers []*Analyzer
	// NoCache disables the per-package result cache.
	NoCache bool
	// CacheDir overrides the default per-user cache directory.
	CacheDir string
	// Jobs bounds concurrent package analysis (default GOMAXPROCS).
	Jobs int
}

// Stats reports where a run spent its time, for the -timing flag and
// the JSON report.
type Stats struct {
	Packages  int
	CacheHits int
	// Load covers package discovery, hashing, cache probes, and (on
	// cache misses) parsing and type checking.
	Load time.Duration
	// Analyze covers the analyzer passes and the unusedignore check.
	Analyze time.Duration
	// SSABuild is the one-time construction of the v3 value-flow facts
	// (ssa.go), paid inside the first dimcheck pass of a run; zero on
	// fully warm runs, which never build them.
	SSABuild time.Duration
	// ConcBuild is the one-time construction of the v4 concurrency
	// facts (conc.go), paid inside the first v4 pass of a run; zero on
	// fully warm runs, which never build them.
	ConcBuild time.Duration
	Total     time.Duration
	// PerAnalyzer is wall time attributed to each analyzer, summed
	// across packages (concurrent passes may sum past Analyze).
	PerAnalyzer map[string]time.Duration
}

// analyzerTimings accumulates per-analyzer wall time across
// concurrently analyzed packages. A nil collector is a no-op.
type analyzerTimings struct {
	mu sync.Mutex
	d  map[string]time.Duration // guarded by mu
}

func (t *analyzerTimings) start() time.Time {
	if t == nil {
		return time.Time{}
	}
	//lint:ignore seededrand raplint times its own analyzers; no simulated result depends on this clock
	return time.Now()
}

func (t *analyzerTimings) stop(name string, from time.Time) {
	if t == nil {
		return
	}
	//lint:ignore seededrand raplint times its own analyzers; no simulated result depends on this clock
	elapsed := time.Since(from)
	t.mu.Lock()
	t.d[name] += elapsed
	t.mu.Unlock()
}

// RunWithOptions is the v2 driver: it discovers the target packages,
// serves unchanged packages from the content-hash cache, type-checks
// and analyzes the rest in parallel over the shared Program, runs the
// whole-run unusedignore check, and returns findings sorted by
// position together with timing stats.
func RunWithOptions(o Options) ([]Finding, *Stats, error) {
	//lint:ignore seededrand raplint times its own passes; no simulated result depends on this clock
	start := time.Now()
	if o.Dir == "" {
		o.Dir = "."
	}
	if len(o.Analyzers) == 0 {
		o.Analyzers = All()
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	checkUnused := false
	var perPkg []*Analyzer
	for _, a := range o.Analyzers {
		if a.Name == UnusedIgnore.Name {
			checkUnused = true
			continue
		}
		perPkg = append(perPkg, a)
	}

	stats := &Stats{PerAnalyzer: map[string]time.Duration{}}
	ml, err := listTargets(o.Dir, o.Patterns)
	if err != nil {
		return nil, nil, err
	}
	targets := ml.analyzable()
	stats.Packages = len(targets)

	var cache *cacheState
	if !o.NoCache {
		// Cache trouble (unwritable dir, …) degrades to uncached analysis.
		cache, _ = openCache(o.CacheDir, ml, o.Analyzers)
	}

	type result struct {
		findings []Finding
		used     []IgnoreRef
		decls    []IgnoreRef
	}
	results := make([]*result, len(targets))
	var missIdx []int
	for i, t := range targets {
		if cache != nil {
			if e := cache.lookup(t.ImportPath); e != nil {
				results[i] = &result{findings: e.Findings, used: e.Used, decls: e.Decls}
				stats.CacheHits++
				continue
			}
		}
		missIdx = append(missIdx, i)
	}

	timings := &analyzerTimings{d: map[string]time.Duration{}}
	var analyzeStart time.Time
	if len(missIdx) > 0 {
		missTargets := make([]*listPkg, len(missIdx))
		for j, i := range missIdx {
			missTargets[j] = targets[i]
		}
		checked, all, err := ml.typeCheck(missTargets)
		if err != nil {
			return nil, nil, err
		}
		prog := NewProgram(all)
		byPath := map[string]*Package{}
		for _, pkg := range checked {
			byPath[pkg.Path] = pkg
		}

		analyzeStart = timings.start()
		sem := make(chan struct{}, o.Jobs)
		var wg sync.WaitGroup
		for _, i := range missIdx {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				t := targets[i]
				pkg := byPath[t.ImportPath]
				r := &result{}
				r.used = prog.runPackage(pkg, perPkg, &r.findings, timings)
				for _, d := range prog.ignores[pkg.Path].all {
					r.decls = append(r.decls, d.ref())
				}
				results[i] = r
				if cache != nil {
					cache.store(t.ImportPath, &cacheEntry{
						Findings: r.findings,
						Used:     r.used,
						Decls:    r.decls,
					})
				}
			}(i)
		}
		wg.Wait()
		stats.SSABuild = prog.DimFactsBuildTime()
		stats.ConcBuild = prog.ConcFactsBuildTime()
	} else {
		analyzeStart = timings.start()
	}
	stats.Load = analyzeStart.Sub(start)

	var findings []Finding
	used := map[IgnoreRef]bool{}
	declsByPkg := make([][]IgnoreRef, 0, len(results))
	for _, r := range results {
		if r == nil {
			continue
		}
		findings = append(findings, r.findings...)
		for _, u := range r.used {
			used[u] = true
		}
		declsByPkg = append(declsByPkg, r.decls)
	}
	if checkUnused {
		known := map[string]bool{}
		for _, a := range o.Analyzers {
			known[a.Name] = true
		}
		findings = append(findings, unusedIgnoreFindings(declsByPkg, used, known)...)
	}
	SortFindings(findings)

	timings.mu.Lock()
	for name, d := range timings.d {
		stats.PerAnalyzer[name] = d
	}
	timings.mu.Unlock()
	//lint:ignore seededrand raplint times its own passes; no simulated result depends on this clock
	stats.Total = time.Since(start)
	stats.Analyze = stats.Total - stats.Load
	return findings, stats, nil
}
