package lint

import "go/token"

// Detaint is the interprocedural determinism checker. Roots — the
// exported functions of the deterministic packages (gpusim, sched,
// mapping, fusion, milp) plus any function annotated
// //rap:deterministic — must be transitively free of wall-clock reads,
// global math/rand draws, and order-dependent map iteration, across
// function and package boundaries. The v1 local analyzers (maporder,
// seededrand) already police their own scopes, so detaint reports only
// the leaks they cannot see: taint sites in packages outside those
// scopes that the call graph proves reachable from a root.
//
// A finding is reported at the taint site with one example call path
// from a root. Suppress with //lint:ignore detaint <reason> at the
// taint site, or on the root's declaration line to exempt that entry
// point entirely.
var Detaint = &Analyzer{
	Name: "detaint",
	Doc:  "nondeterminism reachable from deterministic entry points across calls",
	Run:  runDetaint,
}

func runDetaint(p *Pass) {
	prog := p.Prog
	if prog == nil {
		return
	}
	for _, pos := range prog.misplacedDet[p.Path] {
		p.Report(pos, "//rap:deterministic must be in the doc comment of a function or method declaration")
	}
	// One finding per taint site per package, attributed to the first
	// root (in declaration order) that reaches it.
	seen := map[token.Pos]bool{}
	for _, root := range prog.rootsIn(p.Path) {
		rootPos := p.Fset.Position(root.decl.Name.Pos())
		for _, hit := range prog.reachableTaints(root) {
			if seen[hit.site.pos] || hit.site.locallyCovered() {
				continue
			}
			sitePos := p.Fset.Position(hit.site.pos)
			if d := prog.ignores[hit.site.pkg.Path].covering(p.analyzer.Name, sitePos); d != nil {
				p.use(d)
				seen[hit.site.pos] = true
				continue
			}
			if d := p.ignores.covering(p.analyzer.Name, rootPos); d != nil {
				// The root is exempted; other roots may still report.
				p.use(d)
				continue
			}
			seen[hit.site.pos] = true
			p.Report(hit.site.pos, "%s must be deterministic but reaches %s (call path: %s)",
				shortFuncName(root.obj), hit.site.desc, pathString(hit.path))
		}
	}
}
