package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// This file is raplint v4's concurrency-soundness fact base, shared by
// the lockorder, atomicplain, wgcheck, and goroutineleak analyzers. It
// rides the same lazy-build pattern as the v3 SSA layer (ssa.go): the
// facts are constructed once per Program by the first v4 pass, behind a
// sync.Once, so fully cache-warm runs never pay for them.
//
// Cache coherence shapes every fact the same way it shapes the SSA
// layer: per-package cache keys hash a package and its *dependency*
// closure, never its dependents, so a package's pass may only consume
// facts contributed by itself or by packages it (transitively) imports.
// The facts below are therefore tagged with their contributing package
// and filtered per pass through depClosure. Facts from unrelated
// sibling packages — loaded in the same run but outside the closure —
// are invisible, exactly as if the package were analyzed alone against
// its dependencies.
//
// The collected facts:
//
//   - lock-order edges: "B acquired while A held", from a held-set walk
//     of every function body plus call-site summaries (a call made under
//     lock A contributes edges A -> every lock the callee transitively
//     acquires). Lock identity is the resolved mutex object, qualified
//     by the rendered base expression for struct fields so `a.mu` and
//     `b.mu` of the same type stay distinct instances.
//   - atomically accessed objects: variables and fields whose address
//     is passed to a sync/atomic function (typed atomics like
//     atomic.Int64 cannot be mixed and are out of scope).
//   - WaitGroup parameter summaries: which *sync.WaitGroup parameters a
//     function calls Add/Done on, propagated through verbatim
//     pass-through calls, so `go worker(&wg)` is checked against what
//     worker actually does.
//   - channel parameter summaries: chan parameters a function directly
//     sends on or receives from outside any select, so `go drain(ch)`
//     counts as a channel op of that kind on ch.
//   - panic reachability: functions that call panic directly or
//     transitively (the call-graph extension of the panicpath
//     analyzer's local view), used by wgcheck to flag non-deferred
//     Done calls that a panicking callee would skip.

// lockKey identifies one lock instance. obj is the resolved mutex
// object (field var, package var, or local var); qual is the rendered
// base expression when the mutex is a struct field, so distinct
// instances of the same field stay distinct. When the object cannot be
// resolved, qual alone (the rendered receiver) is the identity.
type lockKey struct {
	obj  types.Object
	qual string
}

// lockEdge is one "to acquired while from held" observation: a direct
// nested acquisition, or a call made under lock to a function that
// transitively acquires `to` (via names the callee then).
type lockEdge struct {
	from, to lockKey
	pos      token.Pos
	pkg      string // contributing package path
	via      string // "" for a direct acquisition, else the callee name
}

// atomicUse is one sync/atomic access to an object's address.
type atomicUse struct {
	pos token.Pos
	pkg string
}

// chanParamOp marks a function's direct, select-free send or receive on
// one of its channel parameters.
type chanParamOp struct {
	idx int
	op  string // "send" or "receive"
}

// concFacts is the whole-program v4 fact base, immutable after build.
type concFacts struct {
	prog     *Program
	buildDur time.Duration

	edges    []lockEdge         // all lock-order edges, deterministic order
	lockName map[lockKey]string // first-seen rendered name per lock

	atomics map[types.Object][]atomicUse

	addsOnParam  map[*types.Func][]int
	donesOnParam map[*types.Func][]int
	chanParamOps map[*types.Func][]chanParamOp

	mayPanic map[*types.Func]bool

	closures map[string]map[string]bool // pkg path -> dependency closure incl. itself
	fnConc   map[*funcNode]*funcConc
}

// ConcFactsBuildTime returns how long the v4 concurrency fact
// construction took, or zero when no package needed it (fully warm
// cache runs skip the build entirely).
func (prog *Program) ConcFactsBuildTime() time.Duration {
	if prog.conc == nil {
		return 0
	}
	return prog.conc.buildDur
}

// concFacts builds the concurrency facts on first use. sync.Once makes
// the lazy build safe under the driver's concurrent per-package passes.
func (prog *Program) concFacts() *concFacts {
	prog.concOnce.Do(func() {
		//lint:ignore seededrand raplint times its own passes; no simulated result depends on this clock
		start := time.Now()
		f := &concFacts{
			prog:         prog,
			lockName:     map[lockKey]string{},
			atomics:      map[types.Object][]atomicUse{},
			addsOnParam:  map[*types.Func][]int{},
			donesOnParam: map[*types.Func][]int{},
			chanParamOps: map[*types.Func][]chanParamOp{},
			mayPanic:     map[*types.Func]bool{},
			closures:     map[string]map[string]bool{},
		}
		f.buildClosures()
		f.scan()
		f.propagateParams()
		f.propagatePanics()
		f.summaryEdges()
		//lint:ignore seededrand raplint times its own passes; no simulated result depends on this clock
		f.buildDur = time.Since(start)
		prog.conc = f
	})
	return prog.conc
}

// buildClosures computes each loaded package's dependency closure,
// restricted to loaded packages (the only ones facts can come from).
func (f *concFacts) buildClosures() {
	loaded := map[string]*Package{}
	for _, pkg := range f.prog.Packages {
		loaded[pkg.Path] = pkg
	}
	var visit func(path string, out map[string]bool)
	visit = func(path string, out map[string]bool) {
		if out[path] {
			return
		}
		out[path] = true
		pkg := loaded[path]
		if pkg == nil || pkg.Types == nil {
			return
		}
		for _, imp := range pkg.Types.Imports() {
			if loaded[imp.Path()] != nil {
				visit(imp.Path(), out)
			}
		}
	}
	for _, pkg := range f.prog.Packages {
		cl := map[string]bool{}
		visit(pkg.Path, cl)
		f.closures[pkg.Path] = cl
	}
}

// depClosure returns the dependency closure of path (including itself):
// the packages whose facts a pass for path may consume.
func (f *concFacts) depClosure(path string) map[string]bool {
	return f.closures[path]
}

// funcConc is the per-function scratch collected by scan and consumed
// by the interprocedural propagation passes.
type funcConc struct {
	acquires   []lockKey // locks acquired anywhere in the body, first-seen order
	transAcq   []lockKey // fixpoint result: acquires of self and callees
	underLock  []lockedCall
	panicsHere bool
}

type lockedCall struct {
	held []lockKey
	fn   *types.Func
	pos  token.Pos
}

func (f *concFacts) scan() {
	f.fnConc = map[*funcNode]*funcConc{}
	for _, pkg := range f.prog.Packages {
		for _, node := range f.prog.byPkg[pkg.Path] {
			f.scanFunc(pkg, node)
		}
	}
}

// scanFunc walks one function body collecting lock acquisitions and
// direct lock-order edges (via heldWalker, whose held-set semantics —
// branch copies, deferred unlocks, lock-free goroutine entry — match
// guardedby's), sync/atomic address captures, WaitGroup/channel
// parameter summaries, and direct panic sites.
func (f *concFacts) scanFunc(pkg *Package, node *funcNode) {
	fc := &funcConc{}
	f.fnConc[node] = fc
	info := pkg.Info
	seenAcq := map[lockKey]bool{}

	// keyBy maps heldWalker's rendered held-set strings back to keys;
	// within one function the rendering is consistent.
	keyBy := map[string]lockKey{}
	heldKeys := func(held map[string]bool) []lockKey {
		var ks []lockKey
		for _, name := range sortedKeys(held) {
			if k, ok := keyBy[name]; ok {
				ks = append(ks, k)
			}
		}
		return ks
	}

	w := &heldWalker{
		info: info,
		onLock: func(sel *ast.SelectorExpr, name string, held map[string]bool) {
			if !isSyncMutex(info, sel.X) {
				return
			}
			key := lockKeyOf(info, sel.X)
			rendered := types.ExprString(sel.X)
			keyBy[rendered] = key
			if _, ok := f.lockName[key]; !ok {
				f.lockName[key] = rendered
			}
			if !seenAcq[key] {
				seenAcq[key] = true
				fc.acquires = append(fc.acquires, key)
			}
			for _, h := range heldKeys(held) {
				if h == key {
					continue
				}
				f.edges = append(f.edges, lockEdge{from: h, to: key, pos: sel.Sel.Pos(), pkg: pkg.Path})
			}
		},
		onCall: func(call *ast.CallExpr, held map[string]bool) {
			if callee := calleeOf(info, call); callee != nil && len(held) > 0 {
				if hk := heldKeys(held); len(hk) > 0 {
					fc.underLock = append(fc.underLock, lockedCall{held: hk, fn: callee, pos: call.Pos()})
				}
			}
		},
	}
	w.stmts(node.decl.Body.List, map[string]bool{})

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				fc.panicsHere = true
			}
			return true
		}
		if obj := atomicArgObject(info, call); obj != nil {
			f.atomics[obj] = append(f.atomics[obj], atomicUse{pos: call.Pos(), pkg: pkg.Path})
		}
		return true
	})

	f.scanParams(pkg, node)
}

// scanParams records which *sync.WaitGroup parameters the function
// calls Add/Done on and which channel parameters it directly sends on
// or receives from outside a select.
func (f *concFacts) scanParams(pkg *Package, node *funcNode) {
	info := pkg.Info
	sig, ok := node.obj.Type().(*types.Signature)
	if !ok {
		return
	}
	paramIdx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	inSelect := map[ast.Node]bool{}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			ast.Inspect(n, func(m ast.Node) bool {
				inSelect[m] = true
				return true
			})
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name := sel.Sel.Name; name == "Add" || name == "Done" {
				obj := wgObject(info, sel.X)
				if obj == nil {
					return true
				}
				idx, isParam := paramIdx[obj]
				if !isParam {
					return true
				}
				if name == "Add" {
					f.addsOnParam[node.obj] = appendIdx(f.addsOnParam[node.obj], idx)
				} else {
					f.donesOnParam[node.obj] = appendIdx(f.donesOnParam[node.obj], idx)
				}
			}
		case *ast.SendStmt:
			if inSelect[n] {
				return true
			}
			if obj := paramChan(info, paramIdx, n.Chan); obj >= 0 {
				f.addChanOp(node.obj, obj, "send")
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || inSelect[n] {
				return true
			}
			if obj := paramChan(info, paramIdx, n.X); obj >= 0 {
				f.addChanOp(node.obj, obj, "receive")
			}
		case *ast.RangeStmt:
			if inSelect[n] {
				return true
			}
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if obj := paramChan(info, paramIdx, n.X); obj >= 0 {
						f.addChanOp(node.obj, obj, "receive")
					}
				}
			}
		}
		return true
	})
}

func (f *concFacts) addChanOp(fn *types.Func, idx int, op string) {
	for _, e := range f.chanParamOps[fn] {
		if e.idx == idx && e.op == op {
			return
		}
	}
	f.chanParamOps[fn] = append(f.chanParamOps[fn], chanParamOp{idx: idx, op: op})
}

func appendIdx(s []int, idx int) []int {
	for _, v := range s {
		if v == idx {
			return s
		}
	}
	return append(s, idx)
}

// paramChan resolves e to a channel-typed parameter index, or -1.
func paramChan(info *types.Info, paramIdx map[types.Object]int, e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	if idx, ok := paramIdx[obj]; ok {
		if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
			return idx
		}
	}
	return -1
}

// propagateParams closes the Add/Done-on-param and chan-param-op
// summaries over verbatim pass-through calls: f(wg) where f forwards
// the parameter unchanged inherits f's facts at the forwarding index.
func (f *concFacts) propagateParams() {
	for round := 0; round < 8; round++ {
		changed := false
		for _, pkg := range f.prog.Packages {
			for _, node := range f.prog.byPkg[pkg.Path] {
				if f.propagateFuncParams(pkg, node) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

func (f *concFacts) propagateFuncParams(pkg *Package, node *funcNode) bool {
	info := pkg.Info
	sig, ok := node.obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	paramIdx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	changed := false
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || callee == node.obj {
			return true
		}
		for argPos, arg := range call.Args {
			obj := forwardedObject(info, arg)
			if obj == nil {
				continue
			}
			ownIdx, isParam := paramIdx[obj]
			if !isParam {
				continue
			}
			for _, calleeIdx := range f.addsOnParam[callee] {
				if calleeIdx == argPos {
					before := len(f.addsOnParam[node.obj])
					f.addsOnParam[node.obj] = appendIdx(f.addsOnParam[node.obj], ownIdx)
					changed = changed || len(f.addsOnParam[node.obj]) != before
				}
			}
			for _, calleeIdx := range f.donesOnParam[callee] {
				if calleeIdx == argPos {
					before := len(f.donesOnParam[node.obj])
					f.donesOnParam[node.obj] = appendIdx(f.donesOnParam[node.obj], ownIdx)
					changed = changed || len(f.donesOnParam[node.obj]) != before
				}
			}
			for _, op := range f.chanParamOps[callee] {
				if op.idx == argPos {
					before := len(f.chanParamOps[node.obj])
					f.addChanOp(node.obj, ownIdx, op.op)
					changed = changed || len(f.chanParamOps[node.obj]) != before
				}
			}
		}
		return true
	})
	return changed
}

// forwardedObject resolves an argument that forwards a variable
// verbatim: `x` or `&x`.
func forwardedObject(info *types.Info, arg ast.Expr) types.Object {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// propagatePanics closes direct panic sites over the static call graph.
func (f *concFacts) propagatePanics() {
	for node, fc := range f.fnConc {
		if fc.panicsHere {
			f.mayPanic[node.obj] = true
		}
	}
	for round := 0; round < 32; round++ {
		changed := false
		for _, pkg := range f.prog.Packages {
			for _, node := range f.prog.byPkg[pkg.Path] {
				if f.mayPanic[node.obj] {
					continue
				}
				for _, callee := range node.callees {
					if f.mayPanic[callee] {
						f.mayPanic[node.obj] = true
						changed = true
						break
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// summaryEdges runs the transitive-acquisition fixpoint and converts
// every call made under lock into interprocedural lock-order edges.
func (f *concFacts) summaryEdges() {
	// transAcq(f) = acquires(f) ∪ ⋃ transAcq(callee), to a fixpoint.
	for _, pkg := range f.prog.Packages {
		for _, node := range f.prog.byPkg[pkg.Path] {
			fc := f.fnConc[node]
			fc.transAcq = append(fc.transAcq, fc.acquires...)
		}
	}
	for round := 0; round < 16; round++ {
		changed := false
		for _, pkg := range f.prog.Packages {
			for _, node := range f.prog.byPkg[pkg.Path] {
				fc := f.fnConc[node]
				for _, callee := range node.callees {
					cn := f.prog.fns[callee]
					if cn == nil {
						continue
					}
					for _, k := range f.fnConc[cn].transAcq {
						if !containsKey(fc.transAcq, k) {
							fc.transAcq = append(fc.transAcq, k)
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, pkg := range f.prog.Packages {
		for _, node := range f.prog.byPkg[pkg.Path] {
			fc := f.fnConc[node]
			for _, lc := range fc.underLock {
				cn := f.prog.fns[lc.fn]
				if cn == nil {
					continue
				}
				for _, h := range lc.held {
					for _, k := range f.fnConc[cn].transAcq {
						if h == k {
							continue
						}
						f.edges = append(f.edges, lockEdge{
							from: h, to: k, pos: lc.pos, pkg: pkg.Path,
							via: shortFuncName(lc.fn),
						})
					}
				}
			}
		}
	}
}

func containsKey(ks []lockKey, k lockKey) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

// sortedKeys returns a held-set's rendered names in stable order.
func sortedKeys(held map[string]bool) []string {
	names := make([]string, 0, len(held))
	for name := range held {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lockKeyOf resolves a lock receiver expression to its identity key.
func lockKeyOf(info *types.Info, x ast.Expr) lockKey {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj != nil {
			return lockKey{obj: obj}
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return lockKey{obj: obj, qual: types.ExprString(e.X)}
			}
			return lockKey{obj: obj}
		}
	}
	return lockKey{qual: types.ExprString(x)}
}

// isSyncMutex reports whether x is a sync.Mutex or sync.RWMutex (or a
// pointer to one); other Lockers are outside the ordering analysis.
func isSyncMutex(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// atomicArgObject returns the object whose address a sync/atomic call
// operates on (atomic.AddInt64(&x, 1) -> x), or nil. Typed atomics
// (atomic.Int64 and friends) have no plain-access twin and are skipped.
func atomicArgObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch e := ast.Unparen(u.X).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// wgObject resolves a WaitGroup method receiver to its variable when
// the receiver is a *sync.WaitGroup or sync.WaitGroup expression.
func wgObject(info *types.Info, x ast.Expr) types.Object {
	t := info.TypeOf(x)
	if t == nil || !isWaitGroup(t) {
		return nil
	}
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// lockDisplay renders a lock key for findings.
func (f *concFacts) lockDisplay(k lockKey) string {
	if name, ok := f.lockName[k]; ok {
		return name
	}
	if k.qual != "" {
		return k.qual
	}
	if k.obj != nil {
		return k.obj.Name()
	}
	return "<lock>"
}

// shortPos renders a position as base-file:line for messages.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	parts := strings.Split(p.Filename, "/")
	return fmt.Sprintf("%s:%d", parts[len(parts)-1], p.Line)
}
