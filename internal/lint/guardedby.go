package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
)

// GuardedBy enforces mutex contracts declared on struct fields: a field
// annotated `// guarded by <mutex>` (doc or trailing comment) may only
// be read or written while that mutex is held on the same base
// expression — `m.count` guarded by `mu` requires `m.mu.Lock()` (or
// RLock) before the access, with no intervening Unlock on the path.
//
// The path analysis is a source-order walk: Lock/RLock adds the
// rendered receiver expression to the held set, Unlock/RUnlock removes
// it, `defer x.Unlock()` keeps it held to the end of the function, and
// branch bodies inherit a copy of the held set (lock-state changes
// inside a branch do not leak past it). Function literals launched via
// `go` start with an empty held set — a goroutine inherits no locks.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "struct field accessed without the mutex named in its `guarded by` contract",
	Run:  runGuardedBy,
}

func runGuardedBy(p *Pass) {
	prog := p.Prog
	if prog == nil || len(prog.guarded) == 0 {
		return
	}
	w := &heldWalker{
		info: p.Info,
		onSel: func(sel *ast.SelectorExpr, held map[string]bool) {
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return
			}
			mu := prog.guarded[v]
			if mu == "" {
				return
			}
			base := types.ExprString(sel.X)
			if held[base+"."+mu] || held[mu] {
				return
			}
			p.Report(sel.Sel.Pos(), "field %s is guarded by %q but accessed without holding %s.%s", v.Name(), mu, base, mu)
		},
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.stmts(fd.Body.List, map[string]bool{})
			}
		}
	}
}

// heldWalker walks a function body in source order maintaining the set
// of held mutexes (rendered receiver expressions like "m.mu"). Hooks
// observe selector accesses and write targets together with the held
// set at that point. Shared by guardedby and goroutinecapture.
type heldWalker struct {
	info *types.Info
	// onSel is called for every selector expression visited.
	onSel func(sel *ast.SelectorExpr, held map[string]bool)
	// onWrite is called for the target of every assignment or ++/--.
	onWrite func(target ast.Expr, held map[string]bool)
	// onLock is called for every Lock/RLock acquisition, before the
	// receiver joins the held set (so held is the set at acquisition).
	onLock func(sel *ast.SelectorExpr, name string, held map[string]bool)
	// onCall is called for every non-lock-method call expression with
	// the held set at the call site.
	onCall func(call *ast.CallExpr, held map[string]bool)
}

func (w *heldWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *heldWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, held)
		}
		for _, l := range s.Lhs {
			w.write(l, held)
			w.expr(l, held)
		}
	case *ast.IncDecStmt:
		w.write(s.X, held)
		w.expr(s.X, held)
	case *ast.GoStmt:
		// The goroutine body runs later and inherits no locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.expr(a, held)
			}
			w.stmts(lit.Body.List, map[string]bool{})
		} else {
			w.expr(s.Call, held)
		}
	case *ast.DeferStmt:
		// `defer x.Unlock()` keeps x held for the rest of the function;
		// a deferred closure is approximated with the current held set.
		if sel, name, ok := lockMethod(s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			w.expr(sel.X, held)
			return
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.expr(a, held)
			}
			w.stmts(lit.Body.List, maps.Clone(held))
			return
		}
		w.expr(s.Call, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, maps.Clone(held))
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.stmts(e.List, maps.Clone(held))
		case *ast.IfStmt:
			w.stmt(e, maps.Clone(held))
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		inner := maps.Clone(held)
		w.expr(s.Cond, inner)
		w.stmts(s.Body.List, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		inner := maps.Clone(held)
		if s.Tok == token.ASSIGN {
			w.write(s.Key, inner)
			w.write(s.Value, inner)
		}
		w.stmts(s.Body.List, inner)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.expr(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, held)
				}
				w.stmts(cc.Body, maps.Clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, maps.Clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := maps.Clone(held)
				w.stmt(cc.Comm, inner)
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

func (w *heldWalker) write(e ast.Expr, held map[string]bool) {
	if e == nil || w.onWrite == nil {
		return
	}
	w.onWrite(e, held)
}

func (w *heldWalker) expr(e ast.Expr, held map[string]bool) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		if w.onSel != nil {
			w.onSel(e, held)
		}
		w.expr(e.X, held)
	case *ast.CallExpr:
		if sel, name, ok := lockMethod(e); ok {
			w.expr(sel.X, held)
			key := types.ExprString(sel.X)
			switch name {
			case "Lock", "RLock":
				if w.onLock != nil {
					w.onLock(sel, name, held)
				}
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		if w.onCall != nil {
			w.onCall(e, held)
		}
		w.expr(e.Fun, held)
		for _, a := range e.Args {
			w.expr(a, held)
		}
	case *ast.FuncLit:
		// A non-deferred closure may run on any goroutine at any time;
		// analyze it with no lock assumptions of its own.
		w.stmts(e.Body.List, map[string]bool{})
	case *ast.ParenExpr:
		w.expr(e.X, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.UnaryExpr:
		w.expr(e.X, held)
	case *ast.BinaryExpr:
		w.expr(e.X, held)
		w.expr(e.Y, held)
	case *ast.IndexExpr:
		w.expr(e.X, held)
		w.expr(e.Index, held)
	case *ast.SliceExpr:
		w.expr(e.X, held)
		w.expr(e.Low, held)
		w.expr(e.High, held)
		w.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, held)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, held)
		w.expr(e.Value, held)
	}
}

// lockMethod matches a no-argument x.Lock / x.RLock / x.Unlock /
// x.RUnlock call, returning the selector and method name.
func lockMethod(call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	if len(call.Args) != 0 {
		return nil, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel, sel.Sel.Name, true
	}
	return nil, "", false
}
