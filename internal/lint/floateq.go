package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags ==, != and switch on floating-point operands in
// non-test code: exact-bit float comparison silently stops matching
// after any refactor that reorders arithmetic, which is how calibrated
// cost models drift. Compile-time constant comparisons are exempt.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact floating-point equality comparison",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !typeIsFloat(p.Info, n.X) && !typeIsFloat(p.Info, n.Y) {
					return true
				}
				if isConstExpr(p, n.X) && isConstExpr(p, n.Y) {
					return true
				}
				p.Report(n.OpPos, "floating-point %s compares exact bits; use a tolerance, an ordered comparison, or annotate an intentional bit-equality", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && typeIsFloat(p.Info, n.Tag) {
					p.Report(n.Switch, "switch on a floating-point value compares exact bits; use if/else with tolerances")
				}
			}
			return true
		})
	}
}

func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
