package preproc

import (
	"testing"

	"rap/internal/data"
)

// BenchmarkApplyPlan1 measures serial execution of plan 1 on a 4096-
// sample batch (real data transforms).
func BenchmarkApplyPlan1(b *testing.B) {
	p := MustStandardPlan(1, nil)
	gen := data.NewGenerator(data.GenConfig{Seed: 1})
	raw := gen.NextBatch(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := raw.Clone()
		if err := p.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelApplyPlan1 is the same workload on the worker-pool
// executor.
func BenchmarkParallelApplyPlan1(b *testing.B) {
	p := MustStandardPlan(1, nil)
	gen := data.NewGenerator(data.GenConfig{Seed: 1})
	raw := gen.NextBatch(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := raw.Clone()
		if err := ParallelApply(p, batch, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpec measures the footprint model (hot path of the planner).
func BenchmarkSpec(b *testing.B) {
	op := NewSigridHash("sh", "in", "out", 1<<20)
	shape := Shape{Samples: 4096, AvgListLen: 3}
	for i := 0; i < b.N; i++ {
		_ = op.Spec(shape).SoloLatency()
	}
}
