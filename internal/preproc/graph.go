package preproc

import (
	"fmt"

	"rap/internal/tensor"
)

// GraphOutput declares that a graph's column feeds an embedding table.
type GraphOutput struct {
	// Table is the embedding-table index consuming the column.
	Table int
	// Col is the final column name holding the table's input ids.
	Col string
}

// Graph is one preprocessing DAG: the unit the mapping stage (§7.2)
// places onto a GPU. A graph covers one input feature — or several, when
// feature generation (NGram) ties features together — and knows which
// embedding tables consume its outputs.
type Graph struct {
	ID   int
	Name string
	Ops  []Op
	// Outputs lists the sparse outputs and their consuming tables.
	Outputs []GraphOutput
	// DenseOutput, when non-empty, names the final dense column; dense
	// outputs are consumed by every GPU (replicated MLPs), so graphs
	// with a DenseOutput are duplicated across GPUs by the mapper.
	DenseOutput string

	deps [][]int // lazily built
}

// InvalidateDeps clears the cached adjacency after a structural edit
// (appending ops to an existing graph).
func (g *Graph) InvalidateDeps() { g.deps = nil }

// Deps returns the adjacency list: Deps()[i] holds the op indices that
// op i depends on (its producers). Dependencies are derived from column
// names: op j depends on op i iff j reads i's output.
func (g *Graph) Deps() [][]int {
	if g.deps != nil {
		return g.deps
	}
	producer := make(map[string]int, len(g.Ops))
	for i, op := range g.Ops {
		producer[op.Output()] = i
	}
	deps := make([][]int, len(g.Ops))
	for i, op := range g.Ops {
		for _, in := range op.Inputs() {
			if p, ok := producer[in]; ok && p != i {
				deps[i] = append(deps[i], p)
			}
		}
	}
	g.deps = deps
	return deps
}

// TopoOrder returns op indices in dependency order, or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	deps := g.Deps()
	indeg := make([]int, len(g.Ops))
	children := make([][]int, len(g.Ops))
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, d := range ds {
			children[d] = append(children[d], i)
		}
	}
	var queue, order []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, c := range children[n] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(g.Ops) {
		return nil, fmt.Errorf("preproc: graph %q has a dependency cycle", g.Name)
	}
	return order, nil
}

// Levels returns each op's ASAP level (longest dependency chain length
// before it). Ops at the same level are data-independent across the
// level, which is what horizontal fusion exploits.
func (g *Graph) Levels() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	deps := g.Deps()
	levels := make([]int, len(g.Ops))
	for _, i := range order {
		for _, d := range deps[i] {
			if levels[d]+1 > levels[i] {
				levels[i] = levels[d] + 1
			}
		}
	}
	return levels, nil
}

// CriticalPathLen returns 1 + the maximum level (the minimum number of
// sequential steps any schedule of this graph needs).
func (g *Graph) CriticalPathLen() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, l := range levels {
		if l+1 > max {
			max = l + 1
		}
	}
	return max, nil
}

// Validate checks op-ID and output uniqueness and acyclicity.
func (g *Graph) Validate() error {
	ids := make(map[string]bool, len(g.Ops))
	outs := make(map[string]bool, len(g.Ops))
	for _, op := range g.Ops {
		if ids[op.ID()] {
			return fmt.Errorf("preproc: graph %q has duplicate op id %q", g.Name, op.ID())
		}
		ids[op.ID()] = true
		if outs[op.Output()] {
			return fmt.Errorf("preproc: graph %q has two producers of %q", g.Name, op.Output())
		}
		outs[op.Output()] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Apply executes the graph's operators on b in dependency order.
func (g *Graph) Apply(b *tensor.Batch) error {
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	for _, i := range order {
		if err := g.Ops[i].Apply(b); err != nil {
			return err
		}
	}
	return nil
}

// Specs returns the kernel spec of every op for the given shape, indexed
// like g.Ops.
func (g *Graph) Specs(shape Shape) []KernelSpec {
	out := make([]KernelSpec, len(g.Ops))
	for i, op := range g.Ops {
		out[i] = op.Spec(shape)
	}
	return out
}

// TotalWork returns the summed solo latency of all ops (µs), the
// sequential-execution cost of the graph.
//
//rap:unit return us
func (g *Graph) TotalWork(shape Shape) float64 {
	total := 0.0
	for _, op := range g.Ops {
		total += op.Spec(shape).SoloLatency()
	}
	return total
}

// Plan is a complete preprocessing workload: every graph needed to turn
// one raw batch into model input (the paper's "input preprocessing
// plan", Table 3).
type Plan struct {
	Name string
	// NumDense / NumSparse are the raw feature counts (Table 3 columns).
	NumDense  int
	NumSparse int
	// NumTables is the embedding-table count after feature generation
	// (original sparse features plus NGram-generated ones).
	NumTables int
	// AvgListLen is the expected multi-hot length, for cost estimation.
	AvgListLen float64
	Graphs     []*Graph
}

// NumOps returns the total operator count across all graphs (the Table 3
// "Total #Op" column).
func (p *Plan) NumOps() int {
	n := 0
	for _, g := range p.Graphs {
		n += len(g.Ops)
	}
	return n
}

// OpsPerFeature returns NumOps / (NumDense + NumSparse).
func (p *Plan) OpsPerFeature() float64 {
	f := p.NumDense + p.NumSparse
	if f == 0 {
		return 0
	}
	return float64(p.NumOps()) / float64(f)
}

// Shape returns the cost-model shape for a batch of the given size.
func (p *Plan) Shape(samples int) Shape {
	return Shape{Samples: samples, AvgListLen: p.AvgListLen}
}

// Validate validates every graph, cross-graph output uniqueness and the
// table-consumer wiring.
func (p *Plan) Validate() error {
	seenTables := make(map[int]string)
	seenCols := make(map[string]string)
	for _, g := range p.Graphs {
		if err := g.Validate(); err != nil {
			return err
		}
		for _, op := range g.Ops {
			if prev, dup := seenCols[op.Output()]; dup {
				return fmt.Errorf("preproc: plan %q: column %q produced by both %q and %q",
					p.Name, op.Output(), prev, g.Name)
			}
			seenCols[op.Output()] = g.Name
		}
		for _, out := range g.Outputs {
			if out.Table < 0 || out.Table >= p.NumTables {
				return fmt.Errorf("preproc: plan %q graph %q feeds table %d out of range [0,%d)",
					p.Name, g.Name, out.Table, p.NumTables)
			}
			if prev, dup := seenTables[out.Table]; dup {
				return fmt.Errorf("preproc: plan %q: table %d fed by both %q and %q",
					p.Name, out.Table, prev, g.Name)
			}
			seenTables[out.Table] = g.Name
		}
	}
	return nil
}

// Apply executes every graph on b.
func (p *Plan) Apply(b *tensor.Batch) error {
	for _, g := range p.Graphs {
		if err := g.Apply(b); err != nil {
			return err
		}
	}
	return nil
}

// TableCols maps each embedding table to the column feeding it.
func (p *Plan) TableCols() map[int]string {
	out := make(map[int]string)
	for _, g := range p.Graphs {
		for _, o := range g.Outputs {
			out[o.Table] = o.Col
		}
	}
	return out
}

// DenseCols lists the final dense column names in graph order.
func (p *Plan) DenseCols() []string {
	var out []string
	for _, g := range p.Graphs {
		if g.DenseOutput != "" {
			out = append(out, g.DenseOutput)
		}
	}
	return out
}

// TotalWork sums TotalWork over all graphs for a batch of the given size.
//
//rap:unit return us
func (p *Plan) TotalWork(samples int) float64 {
	total := 0.0
	shape := p.Shape(samples)
	for _, g := range p.Graphs {
		total += g.TotalWork(shape)
	}
	return total
}

// SaturatedWork sums the occupancy-independent work volume (µs at full
// GPU throughput) of every op for a batch of the given size — the
// device-neutral cost basis for the CPU baseline.
//
//rap:unit return us
func (p *Plan) SaturatedWork(samples int) float64 {
	total := 0.0
	shape := p.Shape(samples)
	for _, g := range p.Graphs {
		for _, op := range g.Ops {
			total += op.Spec(shape).SaturatedWork()
		}
	}
	return total
}
