package preproc

import (
	"math"
	"testing"

	"rap/internal/data"
)

// applyBoth runs a plan serially and in parallel on identical batches
// and asserts the outputs are bit-identical.
func applyBoth(t *testing.T, planIdx, samples, workers int) {
	t.Helper()
	p := MustStandardPlan(planIdx, nil)
	gen := data.NewGenerator(data.GenConfig{NumDense: p.NumDense, NumSparse: p.NumSparse, Seed: 42})
	raw := gen.NextBatch(samples)
	serial := raw.Clone()
	parallel := raw.Clone()

	if err := p.Apply(serial); err != nil {
		t.Fatal(err)
	}
	if err := ParallelApply(p, parallel, workers); err != nil {
		t.Fatal(err)
	}
	if len(serial.Dense) != len(parallel.Dense) || len(serial.Sparse) != len(parallel.Sparse) {
		t.Fatalf("column counts differ: %d/%d vs %d/%d",
			len(serial.Dense), len(serial.Sparse), len(parallel.Dense), len(parallel.Sparse))
	}
	for _, d := range serial.Dense {
		pd := parallel.DenseByName(d.Name)
		if pd == nil {
			t.Fatalf("parallel missing dense %q", d.Name)
		}
		for i := range d.Values {
			a, b := d.Values[i], pd.Values[i]
			if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
				t.Fatalf("dense %q[%d]: %f vs %f", d.Name, i, a, b)
			}
		}
	}
	for _, s := range serial.Sparse {
		ps := parallel.SparseByName(s.Name)
		if ps == nil {
			t.Fatalf("parallel missing sparse %q", s.Name)
		}
		if s.NNZ() != ps.NNZ() {
			t.Fatalf("sparse %q nnz %d vs %d", s.Name, s.NNZ(), ps.NNZ())
		}
		for i := range s.Values {
			if s.Values[i] != ps.Values[i] {
				t.Fatalf("sparse %q value[%d] differs", s.Name, i)
			}
		}
	}
}

func TestParallelApplyMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		applyBoth(t, 1, 64, workers)
	}
	applyBoth(t, 2, 32, 4)
}

// Run with -race to exercise the concurrency safety of shared inputs.
func TestParallelApplyRace(t *testing.T) {
	for i := 0; i < 3; i++ {
		applyBoth(t, 0, 48, 8)
	}
}

func TestParallelApplySingleWorkerFallback(t *testing.T) {
	applyBoth(t, 0, 16, 1)
}

func TestParallelApplyPropagatesError(t *testing.T) {
	p := MustStandardPlan(0, nil)
	gen := data.NewGenerator(data.GenConfig{NumDense: p.NumDense, NumSparse: p.NumSparse, Seed: 1})
	b := gen.NextBatch(8)
	// Break one graph: its input column will not exist.
	p.Graphs[0].Ops = []Op{NewCast("bad", "no_such_column", "out_x")}
	if err := ParallelApply(p, b, 4); err == nil {
		t.Fatal("missing input not reported")
	}
}

func TestParallelApplyRejectsConflictingPlan(t *testing.T) {
	p := &Plan{
		Name: "dup", NumTables: 0, AvgListLen: 1,
		Graphs: []*Graph{
			{Name: "a", Ops: []Op{NewCast("a0", "int_0", "x")}},
			{Name: "b", Ops: []Op{NewCast("b0", "int_1", "x")}},
		},
	}
	gen := data.NewGenerator(data.GenConfig{NumDense: 2, NumSparse: 1, Seed: 1})
	if err := ParallelApply(p, gen.NextBatch(4), 2); err == nil {
		t.Fatal("conflicting producers accepted")
	}
}
