package preproc

import (
	"fmt"
	"runtime"
	"sync"

	"rap/internal/tensor"
)

// ParallelApply executes every graph of the plan on b using a pool of
// CPU workers — the execution model of the TorchArrow/Velox-style CPU
// preprocessing tier (8 workers per trainer in the paper's baseline).
//
// Graphs are independent by construction (Plan.Validate enforces
// cross-graph output uniqueness), so each worker runs whole graphs on a
// shallow view of the batch (shared input columns, private column
// table) and the newly produced columns are merged back under a lock.
// Operators never mutate their inputs, which makes the shared-column
// reads race-free.
func ParallelApply(p *Plan, b *tensor.Batch, workers int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.Graphs) {
		workers = len(p.Graphs)
	}
	if workers <= 1 {
		return p.Apply(b)
	}

	jobs := make(chan *Graph)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				// The view must be taken under the merge lock: another
				// worker may be appending columns to b concurrently.
				mu.Lock()
				view := b.ShallowCopy()
				mu.Unlock()
				if err := g.Apply(view); err != nil {
					fail(fmt.Errorf("preproc: graph %q: %w", g.Name, err))
					continue
				}
				// Merge the graph's outputs back into the shared batch.
				mu.Lock()
				for _, op := range g.Ops {
					name := op.Output()
					if d := view.DenseByName(name); d != nil {
						if err := b.AddOrReplaceDense(d); err != nil {
							mu.Unlock()
							fail(err)
							mu.Lock()
						}
						continue
					}
					if s := view.SparseByName(name); s != nil {
						if err := b.AddOrReplaceSparse(s); err != nil {
							mu.Unlock()
							fail(err)
							mu.Lock()
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, g := range p.Graphs {
		jobs <- g
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
