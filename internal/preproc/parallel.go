package preproc

import (
	"fmt"
	"runtime"
	"sync"

	"rap/internal/tensor"
)

// merger owns the state the parallel workers share: the batch being
// grown and the first error observed. Every access to the guarded
// fields goes through a method that holds mu, which is what the
// raplint guardedby analyzer checks against the annotations below.
type merger struct {
	mu       sync.Mutex
	batch    *tensor.Batch // guarded by mu
	firstErr error         // guarded by mu
}

// view returns a shallow copy of the shared batch for one worker. The
// copy must be taken under the merge lock: another worker may be
// appending columns to the batch concurrently.
func (m *merger) view() *tensor.Batch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batch.ShallowCopy()
}

// fail records err as the run's result unless an earlier error already
// claimed the slot.
func (m *merger) fail(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.firstErr == nil {
		m.firstErr = err
	}
}

// merge copies the graph's output columns from the worker's view back
// into the shared batch; merge errors claim the first-error slot.
func (m *merger) merge(g *Graph, view *tensor.Batch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, op := range g.Ops {
		name := op.Output()
		if d := view.DenseByName(name); d != nil {
			if err := m.batch.AddOrReplaceDense(d); err != nil && m.firstErr == nil {
				m.firstErr = err
			}
			continue
		}
		if s := view.SparseByName(name); s != nil {
			if err := m.batch.AddOrReplaceSparse(s); err != nil && m.firstErr == nil {
				m.firstErr = err
			}
		}
	}
}

// err returns the first error the run recorded, if any.
func (m *merger) err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firstErr
}

// ParallelApply executes every graph of the plan on b using a pool of
// CPU workers — the execution model of the TorchArrow/Velox-style CPU
// preprocessing tier (8 workers per trainer in the paper's baseline).
//
// Graphs are independent by construction (Plan.Validate enforces
// cross-graph output uniqueness), so each worker runs whole graphs on a
// shallow view of the batch (shared input columns, private column
// table) and the newly produced columns are merged back under the
// merger's lock. Operators never mutate their inputs, which makes the
// shared-column reads race-free.
func ParallelApply(p *Plan, b *tensor.Batch, workers int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.Graphs) {
		workers = len(p.Graphs)
	}
	if workers <= 1 {
		return p.Apply(b)
	}

	m := &merger{batch: b}
	jobs := make(chan *Graph)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				view := m.view()
				if err := g.Apply(view); err != nil {
					m.fail(fmt.Errorf("preproc: graph %q: %w", g.Name, err))
					continue
				}
				m.merge(g, view)
			}
		}()
	}
	for _, g := range p.Graphs {
		jobs <- g
	}
	close(jobs)
	wg.Wait()
	return m.err()
}
