package preproc

import (
	"math"
	"testing"

	"rap/internal/data"
	"rap/internal/tensor"
)

func chainGraph() *Graph {
	return &Graph{
		Name: "chain",
		Ops: []Op{
			NewFillNullSparse("op0", "cat_0", "a", 0),
			NewSigridHash("op1", "a", "b", 100),
			NewFirstX("op2", "b", "c", 3),
		},
		Outputs: []GraphOutput{{Table: 0, Col: "c"}},
	}
}

func TestGraphDepsAndTopo(t *testing.T) {
	g := chainGraph()
	deps := g.Deps()
	if len(deps[0]) != 0 || len(deps[1]) != 1 || deps[1][0] != 0 || deps[2][0] != 1 {
		t.Fatalf("deps = %v", deps)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for p, i := range order {
		pos[i] = p
	}
	if pos[0] > pos[1] || pos[1] > pos[2] {
		t.Fatalf("topo order wrong: %v", order)
	}
}

func TestGraphLevels(t *testing.T) {
	// Diamond: op0 -> (op1, op2) -> op3(ngram of both).
	g := &Graph{
		Name: "diamond",
		Ops: []Op{
			NewFillNullSparse("op0", "cat_0", "a", 0),
			NewSigridHash("op1", "a", "b", 100),
			NewClamp("op2", "a", "c", 0, 50),
			NewNGram("op3", []string{"b", "c"}, "d", 2, 100),
		},
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	cp, err := g.CriticalPathLen()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 3 {
		t.Fatalf("critical path = %d, want 3", cp)
	}
}

func TestGraphValidateErrors(t *testing.T) {
	dup := &Graph{Name: "dup", Ops: []Op{
		NewCast("same", "x", "y"),
		NewCast("same", "y", "z"),
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate id accepted")
	}
	twoProducers := &Graph{Name: "two", Ops: []Op{
		NewCast("a", "x", "y"),
		NewLogit("b", "x", "y", 0),
	}}
	if err := twoProducers.Validate(); err == nil {
		t.Fatal("two producers accepted")
	}
	cycle := &Graph{Name: "cyc", Ops: []Op{
		NewCast("a", "y", "x"),
		NewCast("b", "x", "y"),
	}}
	if err := cycle.Validate(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestGraphApply(t *testing.T) {
	g := chainGraph()
	b := tensor.NewBatch(2)
	if err := b.AddSparse(tensor.SparseFromLists("cat_0", [][]int64{{1, 2, 3, 4, 5}, {}})); err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(b); err != nil {
		t.Fatal(err)
	}
	c := b.SparseByName("c")
	if c == nil {
		t.Fatal("chain output missing")
	}
	if c.RowLen(0) != 3 {
		t.Fatalf("FirstX(3) output len %d", c.RowLen(0))
	}
	if c.RowLen(1) != 1 {
		t.Fatal("FillNull should have given the empty row one id")
	}
	for _, v := range c.Values {
		if v < 0 || v >= 100 {
			t.Fatalf("unhashed id %d escaped", v)
		}
	}
}

func TestGraphApplyPropagatesError(t *testing.T) {
	g := &Graph{Name: "bad", Ops: []Op{NewCast("c", "missing", "y")}}
	if err := g.Apply(tensor.NewBatch(1)); err == nil {
		t.Fatal("missing input not reported")
	}
}

func TestGraphWorkAndSpecs(t *testing.T) {
	g := chainGraph()
	shape := Shape{Samples: 4096, AvgListLen: 3}
	specs := g.Specs(shape)
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	total := 0.0
	for _, s := range specs {
		total += s.SoloLatency()
	}
	if math.Abs(total-g.TotalWork(shape)) > 1e-9 {
		t.Fatal("TotalWork != sum of solo latencies")
	}
}

func TestStandardPlanTable3(t *testing.T) {
	want := []struct {
		nDense, nSparse, totalOps int
		opsPerFeature             float64
	}{
		{13, 26, 104, 2.67},
		{13, 26, 104, 2.67},
		{26, 52, 384, 4.92},
		{52, 104, 1548, 9.92},
	}
	for i, w := range want {
		p, err := StandardPlan(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if p.NumDense != w.nDense || p.NumSparse != w.nSparse {
			t.Fatalf("plan %d features: %d/%d, want %d/%d", i, p.NumDense, p.NumSparse, w.nDense, w.nSparse)
		}
		if got := p.NumOps(); got != w.totalOps {
			t.Fatalf("plan %d total ops = %d, want %d (Table 3)", i, got, w.totalOps)
		}
		if math.Abs(p.OpsPerFeature()-w.opsPerFeature) > 0.05 {
			t.Fatalf("plan %d ops/feature = %.2f, want %.2f", i, p.OpsPerFeature(), w.opsPerFeature)
		}
	}
	if _, err := StandardPlan(4, nil); err == nil {
		t.Fatal("plan 4 accepted")
	}
}

func TestStandardPlanTableWiring(t *testing.T) {
	p := MustStandardPlan(2, func(int) int64 { return 1000 })
	cols := p.TableCols()
	if len(cols) != p.NumTables {
		t.Fatalf("only %d of %d tables fed", len(cols), p.NumTables)
	}
	if p.NumTables <= p.NumSparse {
		t.Fatal("plan 2 should generate extra tables")
	}
	if len(p.DenseCols()) != p.NumDense {
		t.Fatalf("dense outputs = %d, want %d", len(p.DenseCols()), p.NumDense)
	}
}

func TestStandardPlanApplyEndToEnd(t *testing.T) {
	for idx := 0; idx < 4; idx++ {
		p := MustStandardPlan(idx, nil)
		g := data.NewGenerator(data.GenConfig{
			NumDense: p.NumDense, NumSparse: p.NumSparse, Seed: int64(idx),
		})
		b := g.NextBatch(64)
		if err := p.Apply(b); err != nil {
			t.Fatalf("plan %d apply: %v", idx, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("plan %d output invalid: %v", idx, err)
		}
		// Every table input column must exist, be sparse and in range.
		for table, col := range p.TableCols() {
			c := b.SparseByName(col)
			if c == nil {
				t.Fatalf("plan %d: table %d column %q missing", idx, table, col)
			}
			for _, v := range c.Values {
				if v < 0 || v >= 100_000 {
					t.Fatalf("plan %d: table %d id %d outside hash size", idx, table, v)
				}
			}
		}
		// Dense outputs exist and are NaN-free.
		for _, col := range p.DenseCols() {
			d := b.DenseByName(col)
			if d == nil {
				t.Fatalf("plan %d: dense column %q missing", idx, col)
			}
			if d.HasNaN() {
				t.Fatalf("plan %d: dense column %q still has NaN after FillNull", idx, col)
			}
		}
	}
}

func TestPlanFusionConflictExists(t *testing.T) {
	// Plans 2/3 must contain both FirstX→SigridHash and
	// SigridHash→FirstX orders (the §6.1 conflict).
	p := MustStandardPlan(2, nil)
	fxThenSh, shThenFx := false, false
	for _, g := range p.Graphs {
		producerType := map[string]OpType{}
		for _, op := range g.Ops {
			producerType[op.Output()] = op.Type()
		}
		for _, op := range g.Ops {
			for _, in := range op.Inputs() {
				pt, ok := producerType[in]
				if !ok {
					continue
				}
				if pt == OpFirstX && op.Type() == OpSigridHash {
					fxThenSh = true
				}
				if pt == OpSigridHash && op.Type() == OpFirstX {
					shThenFx = true
				}
			}
		}
	}
	if !fxThenSh || !shThenFx {
		t.Fatalf("conflict orders missing: fx→sh=%v sh→fx=%v", fxThenSh, shThenFx)
	}
}

func TestSkewedPlan(t *testing.T) {
	p := SkewedPlan(6, nil)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumTables != 26+6 {
		t.Fatalf("skewed tables = %d, want 32", p.NumTables)
	}
	shape := p.Shape(4096)
	heavy := p.Graphs[p.NumDense].TotalWork(shape)    // sparse feature 0
	light := p.Graphs[p.NumDense+10].TotalWork(shape) // sparse feature 10
	if heavy < 2*light {
		t.Fatalf("skew too weak: heavy=%.1f light=%.1f", heavy, light)
	}
	// Skewed plan still executes.
	g := data.NewGenerator(data.GenConfig{Seed: 1})
	b := g.NextBatch(32)
	if err := p.Apply(b); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidateCatchesBadTables(t *testing.T) {
	p := MustStandardPlan(0, nil)
	p.Graphs[p.NumDense].Outputs[0].Table = 999
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range table accepted")
	}
	p = MustStandardPlan(0, nil)
	p.Graphs[p.NumDense+1].Outputs[0].Table = p.Graphs[p.NumDense].Outputs[0].Table
	if err := p.Validate(); err == nil {
		t.Fatal("doubly-fed table accepted")
	}
}

func TestPlanTotalWorkScalesWithBatch(t *testing.T) {
	// Work is occupancy-limited: below GPU saturation a bigger batch
	// costs the same wall time, so compare across the saturation point.
	p := MustStandardPlan(1, nil)
	if p.TotalWork(16*4096) <= p.TotalWork(4096) {
		t.Fatal("work not monotone across saturation")
	}
	if p.SaturatedWork(8192) <= p.SaturatedWork(4096) {
		t.Fatal("saturated work not monotone in batch size")
	}
	// Plan 3 is much heavier than plan 1 at the same batch size.
	p3 := MustStandardPlan(3, nil)
	if p3.TotalWork(4096) < 3*p.TotalWork(4096) {
		t.Fatal("plan 3 should dwarf plan 1")
	}
}
