package preproc

import (
	"fmt"
	"math"
	"sort"

	"rap/internal/tensor"
)

// Shape describes the data volume an operator will see, for cost
// estimation ahead of execution.
type Shape struct {
	Samples int
	// AvgListLen is the expected multi-hot list length of sparse inputs.
	AvgListLen float64
}

func (s Shape) listLen() float64 {
	if s.AvgListLen <= 0 {
		return 1
	}
	return s.AvgListLen
}

// Op is one preprocessing operator instance: a node of a preprocessing
// DAG bound to concrete input/output columns.
type Op interface {
	// ID is unique within a plan.
	ID() string
	Type() OpType
	// Inputs are the column names the operator reads.
	Inputs() []string
	// Output is the column name the operator writes.
	Output() string
	// Apply performs the real data transform on b.
	Apply(b *tensor.Batch) error
	// Spec estimates the operator's simulated kernel cost for the shape.
	Spec(shape Shape) KernelSpec
}

type base struct {
	id  string
	typ OpType
	in  []string
	out string
}

func (b base) ID() string       { return b.id }
func (b base) Type() OpType     { return b.typ }
func (b base) Inputs() []string { return b.in }
func (b base) Output() string   { return b.out }

func (b base) spec(elements, paramScale float64) KernelSpec {
	return KernelSpec{Name: b.id, Type: b.typ, Elements: elements, ParamScale: paramScale, FusedCount: 1}
}

func denseIn(b *tensor.Batch, op, name string) (*tensor.Dense, error) {
	c := b.DenseByName(name)
	if c == nil {
		return nil, fmt.Errorf("preproc: %s: no dense column %q", op, name)
	}
	return c, nil
}

func sparseIn(b *tensor.Batch, op, name string) (*tensor.Sparse, error) {
	c := b.SparseByName(name)
	if c == nil {
		return nil, fmt.Errorf("preproc: %s: no sparse column %q", op, name)
	}
	return c, nil
}

// ---------------------------------------------------------------- FillNull

// FillNull replaces NaNs in a dense column, or empty lists in a sparse
// column, with a default.
type FillNull struct {
	base
	// Dense selects the dense flavour; otherwise the sparse flavour.
	Dense bool
	// Value replaces NaNs (dense) or empty lists (sparse, as int64).
	Value float64
}

// NewFillNullDense builds a dense FillNull.
func NewFillNullDense(id, in, out string, value float64) *FillNull {
	return &FillNull{base: base{id, OpFillNull, []string{in}, out}, Dense: true, Value: value}
}

// NewFillNullSparse builds a sparse FillNull.
func NewFillNullSparse(id, in, out string, fillID int64) *FillNull {
	return &FillNull{base: base{id, OpFillNull, []string{in}, out}, Value: float64(fillID)}
}

// Apply implements Op.
func (o *FillNull) Apply(b *tensor.Batch) error {
	if o.Dense {
		in, err := denseIn(b, o.id, o.in[0])
		if err != nil {
			return err
		}
		out := in.Clone()
		out.Name = o.out
		for i, v := range out.Values {
			if math.IsNaN(float64(v)) {
				out.Values[i] = float32(o.Value)
			}
		}
		return b.AddOrReplaceDense(out)
	}
	in, err := sparseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := tensor.NewSparse(o.out, in.Len())
	for i := 0; i < in.Len(); i++ {
		row := in.Row(i)
		if len(row) == 0 {
			out.Values = append(out.Values, int64(o.Value))
		} else {
			out.Values = append(out.Values, row...)
		}
		out.Offsets[i+1] = int32(len(out.Values))
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *FillNull) Spec(s Shape) KernelSpec {
	el := float64(s.Samples)
	if !o.Dense {
		el *= s.listLen()
	}
	return o.spec(el, 1)
}

// ---------------------------------------------------------------- Cast

// Cast truncates dense values to their integer part (the Table 1 "cast
// the data to a different type" op); NaNs become 0.
type Cast struct{ base }

// NewCast builds a Cast.
func NewCast(id, in, out string) *Cast {
	return &Cast{base{id, OpCast, []string{in}, out}}
}

// Apply implements Op.
func (o *Cast) Apply(b *tensor.Batch) error {
	in, err := denseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := tensor.NewDense(o.out, in.Len())
	for i, v := range in.Values {
		if math.IsNaN(float64(v)) {
			out.Values[i] = 0
		} else {
			out.Values[i] = float32(int64(v))
		}
	}
	return b.AddOrReplaceDense(out)
}

// Spec implements Op.
func (o *Cast) Spec(s Shape) KernelSpec { return o.spec(float64(s.Samples), 1) }

// ---------------------------------------------------------------- Logit

// Logit normalizes positive dense values: p = x/(1+x) squashed into
// (eps, 1-eps), output log(p/(1-p)).
type Logit struct {
	base
	Eps float64
}

// NewLogit builds a Logit with the given epsilon (default 1e-4 if ≤ 0).
func NewLogit(id, in, out string, eps float64) *Logit {
	if eps <= 0 {
		eps = 1e-4
	}
	return &Logit{base{id, OpLogit, []string{in}, out}, eps}
}

// Apply implements Op.
func (o *Logit) Apply(b *tensor.Batch) error {
	in, err := denseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := tensor.NewDense(o.out, in.Len())
	for i, v := range in.Values {
		x := float64(v)
		p := x / (1 + math.Abs(x))
		if p < o.Eps {
			p = o.Eps
		}
		if p > 1-o.Eps {
			p = 1 - o.Eps
		}
		out.Values[i] = float32(math.Log(p / (1 - p)))
	}
	return b.AddOrReplaceDense(out)
}

// Spec implements Op.
func (o *Logit) Spec(s Shape) KernelSpec { return o.spec(float64(s.Samples), 1) }

// ---------------------------------------------------------------- BoxCox

// BoxCox applies the Box-Cox power transform (x^λ − 1)/λ to dense values
// clamped to be positive.
type BoxCox struct {
	base
	Lambda float64
}

// NewBoxCox builds a BoxCox with the given λ (default 0.5 if 0).
func NewBoxCox(id, in, out string, lambda float64) *BoxCox {
	//lint:ignore floateq 0 is the documented "unset" sentinel for the default lambda
	if lambda == 0 {
		lambda = 0.5
	}
	return &BoxCox{base{id, OpBoxCox, []string{in}, out}, lambda}
}

// Apply implements Op.
func (o *BoxCox) Apply(b *tensor.Batch) error {
	in, err := denseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := tensor.NewDense(o.out, in.Len())
	for i, v := range in.Values {
		x := math.Max(float64(v), 1e-6)
		out.Values[i] = float32((math.Pow(x, o.Lambda) - 1) / o.Lambda)
	}
	return b.AddOrReplaceDense(out)
}

// Spec implements Op.
func (o *BoxCox) Spec(s Shape) KernelSpec { return o.spec(float64(s.Samples), 1) }

// ---------------------------------------------------------------- OneHot

// OneHot turns a dense value into a categorical id in [0, Buckets) by
// truncation modulo Buckets, emitting a one-hot sparse column.
type OneHot struct {
	base
	Buckets int64
}

// NewOneHot builds a OneHot with the given bucket count (min 2).
func NewOneHot(id, in, out string, buckets int64) *OneHot {
	if buckets < 2 {
		buckets = 2
	}
	return &OneHot{base{id, OpOneHot, []string{in}, out}, buckets}
}

// Apply implements Op.
func (o *OneHot) Apply(b *tensor.Batch) error {
	in, err := denseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := tensor.NewSparse(o.out, in.Len())
	out.Values = make([]int64, in.Len())
	for i, v := range in.Values {
		x := int64(math.Abs(float64(v)))
		if math.IsNaN(float64(v)) {
			x = 0
		}
		out.Values[i] = x % o.Buckets
		out.Offsets[i+1] = int32(i + 1)
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *OneHot) Spec(s Shape) KernelSpec {
	return o.spec(float64(s.Samples), 1+math.Log2(float64(o.Buckets))/64)
}

// ---------------------------------------------------------------- SigridHash

// SigridHash hashes every id of a sparse column into [0, HashSize).
type SigridHash struct {
	base
	HashSize int64
}

// NewSigridHash builds a SigridHash (hash size min 2).
func NewSigridHash(id, in, out string, hashSize int64) *SigridHash {
	if hashSize < 2 {
		hashSize = 2
	}
	return &SigridHash{base{id, OpSigridHash, []string{in}, out}, hashSize}
}

// splitmix64 is the id hash used by SigridHash and NGram.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashID maps one id into [0, hashSize).
func HashID(id int64, hashSize int64) int64 {
	return int64(splitmix64(uint64(id)) % uint64(hashSize))
}

// Apply implements Op.
func (o *SigridHash) Apply(b *tensor.Batch) error {
	in, err := sparseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := in.Clone()
	out.Name = o.out
	for i, v := range out.Values {
		out.Values[i] = HashID(v, o.HashSize)
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *SigridHash) Spec(s Shape) KernelSpec {
	return o.spec(float64(s.Samples)*s.listLen(), 1)
}

// ---------------------------------------------------------------- FirstX

// FirstX truncates every sparse list to its first X ids.
type FirstX struct {
	base
	X int
}

// NewFirstX builds a FirstX (X min 1).
func NewFirstX(id, in, out string, x int) *FirstX {
	if x < 1 {
		x = 1
	}
	return &FirstX{base{id, OpFirstX, []string{in}, out}, x}
}

// Apply implements Op.
func (o *FirstX) Apply(b *tensor.Batch) error {
	in, err := sparseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := tensor.NewSparse(o.out, in.Len())
	for i := 0; i < in.Len(); i++ {
		row := in.Row(i)
		if len(row) > o.X {
			row = row[:o.X]
		}
		out.Values = append(out.Values, row...)
		out.Offsets[i+1] = int32(len(out.Values))
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *FirstX) Spec(s Shape) KernelSpec {
	return o.spec(float64(s.Samples)*s.listLen(), 1)
}

// ---------------------------------------------------------------- Clamp

// Clamp clips sparse ids into [Lo, Hi].
type Clamp struct {
	base
	Lo, Hi int64
}

// NewClamp builds a Clamp; Lo must be ≤ Hi.
func NewClamp(id, in, out string, lo, hi int64) *Clamp {
	if lo > hi {
		lo, hi = hi, lo
	}
	return &Clamp{base{id, OpClamp, []string{in}, out}, lo, hi}
}

// Apply implements Op.
func (o *Clamp) Apply(b *tensor.Batch) error {
	in, err := sparseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := in.Clone()
	out.Name = o.out
	for i, v := range out.Values {
		if v < o.Lo {
			out.Values[i] = o.Lo
		} else if v > o.Hi {
			out.Values[i] = o.Hi
		}
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *Clamp) Spec(s Shape) KernelSpec {
	return o.spec(float64(s.Samples)*s.listLen(), 1)
}

// ---------------------------------------------------------------- Bucketize

// Bucketize maps a dense value to the index of the first border ≥ value,
// emitting a one-hot sparse column (Table 1: "shard features based on
// bucket borders").
type Bucketize struct {
	base
	Borders []float32 // ascending
}

// NewBucketize builds a Bucketize; borders are sorted defensively.
func NewBucketize(id, in, out string, borders []float32) *Bucketize {
	bs := append([]float32(nil), borders...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Bucketize{base{id, OpBucketize, []string{in}, out}, bs}
}

// Apply implements Op.
func (o *Bucketize) Apply(b *tensor.Batch) error {
	in, err := denseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := tensor.NewSparse(o.out, in.Len())
	out.Values = make([]int64, in.Len())
	for i, v := range in.Values {
		idx := sort.Search(len(o.Borders), func(j int) bool { return o.Borders[j] >= v })
		out.Values[i] = int64(idx)
		out.Offsets[i+1] = int32(i + 1)
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *Bucketize) Spec(s Shape) KernelSpec {
	return o.spec(float64(s.Samples), 1+math.Log2(float64(len(o.Borders)+2))/16)
}

// ---------------------------------------------------------------- NGram

// NGram computes n-grams across several sparse input columns (Table 1 /
// the paper's running example): per sample, the ids of all inputs are
// concatenated and every window of N consecutive ids is hashed into a
// new id in [0, HashSize).
type NGram struct {
	base
	N        int
	HashSize int64
}

// NewNGram builds an NGram over the given input columns (N min 2, hash
// size min 2).
func NewNGram(id string, in []string, out string, n int, hashSize int64) *NGram {
	if n < 2 {
		n = 2
	}
	if hashSize < 2 {
		hashSize = 2
	}
	return &NGram{base{id, OpNGram, append([]string(nil), in...), out}, n, hashSize}
}

// Apply implements Op.
func (o *NGram) Apply(b *tensor.Batch) error {
	ins := make([]*tensor.Sparse, len(o.in))
	for i, name := range o.in {
		c, err := sparseIn(b, o.id, name)
		if err != nil {
			return err
		}
		ins[i] = c
	}
	if len(ins) == 0 {
		return fmt.Errorf("preproc: %s: NGram needs at least one input", o.id)
	}
	nSamples := ins[0].Len()
	out := tensor.NewSparse(o.out, nSamples)
	var concat []int64
	for i := 0; i < nSamples; i++ {
		concat = concat[:0]
		for _, c := range ins {
			concat = append(concat, c.Row(i)...)
		}
		for w := 0; w+o.N <= len(concat); w++ {
			h := uint64(0x51ed2701)
			for k := 0; k < o.N; k++ {
				h = splitmix64(h ^ uint64(concat[w+k]))
			}
			out.Values = append(out.Values, int64(h%uint64(o.HashSize)))
		}
		out.Offsets[i+1] = int32(len(out.Values))
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *NGram) Spec(s Shape) KernelSpec {
	ids := s.listLen() * float64(len(o.in))
	grams := math.Max(1, ids-float64(o.N)+1)
	return o.spec(float64(s.Samples)*grams, 1+0.25*float64(o.N-1))
}

// ---------------------------------------------------------------- MapID

// MapID rewrites sparse ids through a lookup table; unmapped ids pass
// through unchanged.
type MapID struct {
	base
	Mapping map[int64]int64
}

// NewMapID builds a MapID.
func NewMapID(id, in, out string, mapping map[int64]int64) *MapID {
	return &MapID{base{id, OpMapID, []string{in}, out}, mapping}
}

// Apply implements Op.
func (o *MapID) Apply(b *tensor.Batch) error {
	in, err := sparseIn(b, o.id, o.in[0])
	if err != nil {
		return err
	}
	out := in.Clone()
	out.Name = o.out
	for i, v := range out.Values {
		if nv, ok := o.Mapping[v]; ok {
			out.Values[i] = nv
		}
	}
	return b.AddOrReplaceSparse(out)
}

// Spec implements Op.
func (o *MapID) Spec(s Shape) KernelSpec {
	return o.spec(float64(s.Samples)*s.listLen(), 1)
}
