package preproc

import (
	"fmt"

	"rap/internal/data"
)

// HashSizer returns the id cardinality of embedding table t. Plans use
// it to parameterize SigridHash/NGram/OneHot targets consistently with
// the model's embedding tables.
type HashSizer func(table int) int64

func defaultHash(int) int64 { return 100_000 }

// StandardPlan builds preprocessing Plan n (0–3) of Table 3:
//
//	Plan 0: Kaggle,   13 dense + 26  sparse, 104  ops
//	Plan 1: Terabyte, 13 dense + 26  sparse, 104  ops
//	Plan 2: Terabyte, 26 dense + 52  sparse, 384  ops
//	Plan 3: Terabyte, 52 dense + 104 sparse, 1548 ops
//
// Plans 0/1 follow TorchArrow's default Criteo plan (FillNull on every
// feature plus normalization); Plans 2/3 add feature generation (NGram,
// OneHot and Bucketize branches) and deeper chains, mirroring how the
// paper scales preprocessing density. hashFor may be nil.
func StandardPlan(n int, hashFor HashSizer) (*Plan, error) {
	if hashFor == nil {
		hashFor = defaultHash
	}
	switch n {
	case 0:
		return lightPlan("plan0", hashFor), nil
	case 1:
		return lightPlan("plan1", hashFor), nil
	case 2:
		return densePlan("plan2", 26, 52, 8, 8, 4, 5, false, hashFor), nil
	case 3:
		return densePlan("plan3", 52, 104, 16, 16, 30, 10, true, hashFor), nil
	default:
		return nil, fmt.Errorf("preproc: no standard plan %d (want 0-3)", n)
	}
}

// MustStandardPlan is StandardPlan for known-good indices.
func MustStandardPlan(n int, hashFor HashSizer) *Plan {
	p, err := StandardPlan(n, hashFor)
	if err != nil {
		panic(err)
	}
	return p
}

// lightPlan is the default TorchArrow-style Criteo plan: FillNull→Logit
// on dense features, FillNull→SigridHash→FirstX on sparse features.
func lightPlan(name string, hashFor HashSizer) *Plan {
	p := &Plan{Name: name, NumDense: 13, NumSparse: 26, NumTables: 26, AvgListLen: 3}
	for d := 0; d < p.NumDense; d++ {
		in := data.DenseName(d)
		g := &Graph{ID: len(p.Graphs), Name: fmt.Sprintf("dense_%d", d), DenseOutput: in + ".lg"}
		g.Ops = []Op{
			NewFillNullDense(opID(name, g.Name, 0), in, in+".fn", 0),
			NewLogit(opID(name, g.Name, 1), in+".fn", in+".lg", 0),
		}
		p.Graphs = append(p.Graphs, g)
	}
	for s := 0; s < p.NumSparse; s++ {
		in := data.SparseName(s)
		g := &Graph{ID: len(p.Graphs), Name: fmt.Sprintf("sparse_%d", s)}
		g.Ops = []Op{
			NewFillNullSparse(opID(name, g.Name, 0), in, in+".fn", 0),
			NewSigridHash(opID(name, g.Name, 1), in+".fn", in+".sh", hashFor(s)),
			NewFirstX(opID(name, g.Name, 2), in+".sh", in+".fx", 20),
		}
		g.Outputs = []GraphOutput{{Table: s, Col: in + ".fx"}}
		p.Graphs = append(p.Graphs, g)
	}
	return p
}

// densePlan builds the heavier plans. Per dense feature: a 4-op chain
// (deep=false) or 8-op chain (deep=true), with OneHot branches on the
// first nOneHot features and Bucketize branches on the next nBucketize.
// Per sparse feature: a chain of sparseChain ops with alternating
// operator orders (creating the fusion conflicts of §6.1). nNGram NGram
// graphs each merge two neighbouring sparse-feature chains and (deep
// only) append a MapID tail.
func densePlan(name string, nDense, nSparse, nOneHot, nBucketize, nNGram, sparseChain int, deep bool, hashFor HashSizer) *Plan {
	p := &Plan{Name: name, NumDense: nDense, NumSparse: nSparse, AvgListLen: 3}
	nextTable := nSparse

	for d := 0; d < nDense; d++ {
		in := data.DenseName(d)
		g := &Graph{ID: len(p.Graphs), Name: fmt.Sprintf("dense_%d", d)}
		k := 0
		add := func(op Op) string {
			g.Ops = append(g.Ops, op)
			k++
			return op.Output()
		}
		cur := add(NewFillNullDense(opID(name, g.Name, k), in, in+".fn", 0))
		cur = add(NewCast(opID(name, g.Name, k), cur, in+".c1"))
		branchPoint := cur
		cur = add(NewBoxCox(opID(name, g.Name, k), cur, in+".bc1", 0.5))
		cur = add(NewLogit(opID(name, g.Name, k), cur, in+".lg1", 0))
		if deep {
			cur = add(NewFillNullDense(opID(name, g.Name, k), cur, in+".fn2", 0))
			cur = add(NewCast(opID(name, g.Name, k), cur, in+".c2"))
			cur = add(NewBoxCox(opID(name, g.Name, k), cur, in+".bc2", 0.25))
			cur = add(NewLogit(opID(name, g.Name, k), cur, in+".lg2", 0))
		}
		g.DenseOutput = cur
		switch {
		case d < nOneHot:
			out := add(NewOneHot(opID(name, g.Name, k), branchPoint, in+".oh", hashFor(nextTable)))
			g.Outputs = append(g.Outputs, GraphOutput{Table: nextTable, Col: out})
			nextTable++
		case d < nOneHot+nBucketize:
			out := add(NewBucketize(opID(name, g.Name, k), branchPoint, in+".bk",
				[]float32{0, 1, 2, 5, 10, 20, 50, 100, 200, 500}))
			g.Outputs = append(g.Outputs, GraphOutput{Table: nextTable, Col: out})
			nextTable++
		}
		p.Graphs = append(p.Graphs, g)
	}

	// Sparse chains; features 2i and 2i+1 for i < nNGram are merged into
	// one NGram graph.
	chainOps := func(g *Graph, feat int, table int) string {
		in := data.SparseName(feat)
		k := len(g.Ops)
		add := func(op Op) string {
			g.Ops = append(g.Ops, op)
			k++
			return op.Output()
		}
		cur := add(NewFillNullSparse(opID(name, g.Name, k), in, in+".fn", 0))
		// Alternate operator order between even and odd features so that
		// FirstX→SigridHash and SigridHash→FirstX both occur, the §6.1
		// horizontal-fusion conflict.
		if feat%2 == 0 {
			cur = add(NewClamp(opID(name, g.Name, k), cur, in+".cp1", 0, 1<<40))
			cur = add(NewSigridHash(opID(name, g.Name, k), cur, in+".sh1", hashFor(table)))
			cur = add(NewFirstX(opID(name, g.Name, k), cur, in+".fx1", 20))
		} else {
			cur = add(NewFirstX(opID(name, g.Name, k), cur, in+".fx1", 20))
			cur = add(NewSigridHash(opID(name, g.Name, k), cur, in+".sh1", hashFor(table)))
			cur = add(NewClamp(opID(name, g.Name, k), cur, in+".cp1", 0, 1<<40))
		}
		cur = add(NewMapID(opID(name, g.Name, k), cur, in+".mp1", map[int64]int64{0: 1}))
		if deep {
			cur = add(NewClamp(opID(name, g.Name, k), cur, in+".cp2", 0, 1<<40))
			cur = add(NewSigridHash(opID(name, g.Name, k), cur, in+".sh2", hashFor(table)))
			cur = add(NewFirstX(opID(name, g.Name, k), cur, in+".fx2", 10))
			cur = add(NewMapID(opID(name, g.Name, k), cur, in+".mp2", map[int64]int64{1: 2}))
			cur = add(NewClamp(opID(name, g.Name, k), cur, in+".cp3", 0, 1<<40))
		}
		return cur
	}
	_ = sparseChain // documented length; asserted via plan totals in tests

	for s := 0; s < nSparse; {
		if s/2 < nNGram && s+1 < nSparse {
			a, b := s, s+1
			g := &Graph{ID: len(p.Graphs), Name: fmt.Sprintf("ngram_%d", s/2)}
			outA := chainOps(g, a, a)
			outB := chainOps(g, b, b)
			k := len(g.Ops)
			ng := NewNGram(opID(name, g.Name, k), []string{outA, outB},
				fmt.Sprintf("%s.ng", data.SparseName(a)), 3, hashFor(nextTable))
			g.Ops = append(g.Ops, ng)
			final := ng.Output()
			if deep {
				k = len(g.Ops)
				mp := NewMapID(opID(name, g.Name, k), final, final+".mp", map[int64]int64{2: 3})
				g.Ops = append(g.Ops, mp)
				final = mp.Output()
			}
			g.Outputs = []GraphOutput{
				{Table: a, Col: data.SparseName(a) + lastSparseSuffix(deep)},
				{Table: b, Col: data.SparseName(b) + lastSparseSuffix(deep)},
				{Table: nextTable, Col: final},
			}
			nextTable++
			p.Graphs = append(p.Graphs, g)
			s += 2
			continue
		}
		g := &Graph{ID: len(p.Graphs), Name: fmt.Sprintf("sparse_%d", s)}
		out := chainOps(g, s, s)
		g.Outputs = []GraphOutput{{Table: s, Col: out}}
		p.Graphs = append(p.Graphs, g)
		s++
	}
	p.NumTables = nextTable
	return p
}

// lastSparseSuffix is the suffix of the final column of a sparse chain.
func lastSparseSuffix(deep bool) string {
	if deep {
		return ".cp3"
	}
	return ".mp1"
}

// SkewedPlan builds the Figure 12 workload: Plan-1 preprocessing where
// the first heavyFeatures sparse features carry much heavier graphs
// (extra NGram + hash + truncation work), so data-locality mapping
// overloads whichever GPUs host those tables.
func SkewedPlan(heavyFeatures int, hashFor HashSizer) *Plan {
	if hashFor == nil {
		hashFor = defaultHash
	}
	p := lightPlan("skewed", hashFor)
	p.Name = "skewed"
	nextTable := p.NumTables
	if heavyFeatures > p.NumSparse {
		heavyFeatures = p.NumSparse
	}
	for s := 0; s < heavyFeatures; s++ {
		in := data.SparseName(s)
		g := p.Graphs[p.NumDense+s]
		k := len(g.Ops)
		base := g.Outputs[0].Col
		ng := NewNGram(opID(p.Name, g.Name, k), []string{base}, in+".ng", 3, hashFor(nextTable))
		g.Ops = append(g.Ops, ng)
		k++
		sh := NewSigridHash(opID(p.Name, g.Name, k), ng.Output(), in+".ngsh", hashFor(nextTable))
		g.Ops = append(g.Ops, sh)
		k++
		fx := NewFirstX(opID(p.Name, g.Name, k), sh.Output(), in+".ngfx", 30)
		g.Ops = append(g.Ops, fx)
		g.Outputs = append(g.Outputs, GraphOutput{Table: nextTable, Col: fx.Output()})
		g.InvalidateDeps()
		nextTable++
	}
	p.NumTables = nextTable
	return p
}

func opID(plan, graph string, k int) string {
	return fmt.Sprintf("%s/%s/op%d", plan, graph, k)
}
