// Package preproc implements the DLRM input-preprocessing operators of
// Table 1 in the RAP paper, the per-feature preprocessing DAGs they form,
// and the standard preprocessing plans (Table 3) used throughout the
// evaluation.
//
// Every operator has two faces:
//
//   - Apply actually transforms a tensor.Batch on the CPU, so the
//     pipeline produces real model input (semantics are unit-tested);
//   - Footprint produces a KernelSpec — the simulated GPU kernel cost
//     (solo work, warps, SM/bandwidth demand) that the cost model,
//     fusion planner and scheduler reason about.
package preproc

import (
	"fmt"
	"math"
	"strings"

	"rap/internal/gpusim"
)

// OpType enumerates the preprocessing operators (Table 1).
type OpType int

const (
	// Dense normalization.
	OpLogit OpType = iota
	OpBoxCox
	OpOneHot
	// Sparse normalization.
	OpSigridHash
	OpFirstX
	OpClamp
	// Feature generation.
	OpBucketize
	OpNGram
	OpMapID
	// Others.
	OpFillNull
	OpCast

	numOpTypes
)

// AllOpTypes lists every operator type in Table 1 order.
func AllOpTypes() []OpType {
	out := make([]OpType, numOpTypes)
	for i := range out {
		out[i] = OpType(i)
	}
	return out
}

// String returns the paper's operator name.
func (t OpType) String() string {
	switch t {
	case OpLogit:
		return "Logit"
	case OpBoxCox:
		return "BoxCox"
	case OpOneHot:
		return "Onehot"
	case OpSigridHash:
		return "SigridHash"
	case OpFirstX:
		return "FirstX"
	case OpClamp:
		return "Clamp"
	case OpBucketize:
		return "Bucketize"
	case OpNGram:
		return "Ngram"
	case OpMapID:
		return "Mapid"
	case OpFillNull:
		return "FillNull"
	case OpCast:
		return "Cast"
	default:
		return fmt.Sprintf("OpType(%d)", int(t))
	}
}

// Category groups operator types as in Table 1.
type Category int

const (
	// CatDenseNorm is dense normalization (DN).
	CatDenseNorm Category = iota
	// CatSparseNorm is sparse normalization (SN).
	CatSparseNorm
	// CatFeatureGen is feature generation (FG).
	CatFeatureGen
	// CatOther is the "Others" row.
	CatOther
)

// Category returns the Table 1 category of the type.
func (t OpType) Category() Category {
	switch t {
	case OpLogit, OpBoxCox, OpOneHot:
		return CatDenseNorm
	case OpSigridHash, OpFirstX, OpClamp:
		return CatSparseNorm
	case OpBucketize, OpNGram, OpMapID:
		return CatFeatureGen
	default:
		return CatOther
	}
}

// PredictorCategory groups operator types the way the paper trains its
// latency predictor (Table 5): NGram, OneHot, Bucketize and FirstX get
// dedicated models; everything else is "1D Ops".
func (t OpType) PredictorCategory() string {
	switch t {
	case OpNGram:
		return "Ngram"
	case OpOneHot:
		return "Onehot"
	case OpBucketize:
		return "Bucketize"
	case OpFirstX:
		return "FirstX"
	default:
		return "1D Ops"
	}
}

// Cost-model constants for the simulated A100-class GPU. The absolute
// values are calibration constants; RAP's behaviour depends only on
// their relative magnitudes (feature generation ≫ normalization, §3).
const (
	warpSize = 32
	// elemsPerThread: DLRM preprocessing kernels parallelize across
	// samples/ids with one element per thread (list-parallel layout), so
	// whole-batch kernels saturate the GPU — which is why the unmanaged
	// baselines contend with training (§8.2) and RAP shards (§6.2).
	elemsPerThread = 1
	// warpsSaturate is the resident-warp count at which a kernel can use
	// the whole GPU.
	warpsSaturate = 1024
	// baseThroughput is full-GPU element throughput (elements/µs) for a
	// cost-factor-1 operator. Calibrated so that the preprocessing /
	// training work ratio of Plans 0-3 matches the paper's regime (Plan 0
	// well under one training iteration, Plan 3 approaching it).
	baseThroughput = 2900.0 //rap:unit elem/us
	// minKernelWork is the latency floor of any kernel (µs): a couple of
	// memory round-trips.
	minKernelWork = 1.5 //rap:unit us
)

// costFactor is the per-element compute cost relative to a trivial
// element-wise op.
//
//rap:unit return 1
func (t OpType) costFactor() float64 {
	switch t {
	case OpFillNull:
		return 0.8
	case OpCast:
		return 0.6
	case OpLogit:
		return 1.2
	case OpBoxCox:
		return 1.8
	case OpOneHot:
		return 1.0
	case OpSigridHash:
		return 2.2
	case OpFirstX:
		return 0.9
	case OpClamp:
		return 0.7
	case OpBucketize:
		return 1.6
	case OpNGram:
		return 6.0 // per produced n-gram; the heavy feature-generation op
	case OpMapID:
		return 1.3
	default:
		return 1.0
	}
}

// bwIntensity is the fraction of DRAM bandwidth the op can use at full
// occupancy. Compute-heavier ops (hashing, n-grams) press bandwidth
// less per slot than pure streaming ops.
func (t OpType) bwIntensity() float64 {
	switch t {
	case OpNGram:
		return 0.45
	case OpSigridHash:
		return 0.35
	case OpBucketize:
		return 0.4
	default:
		return 0.4
	}
}

// KernelSpec is the simulated cost of one (possibly fused, possibly
// sharded) preprocessing kernel.
type KernelSpec struct {
	Name string
	Type OpType
	// Elements is the number of data elements the kernel touches.
	Elements float64 //rap:unit elem
	// ParamScale folds operator parameters (n-gram order, bucket count
	// …) into the per-element cost.
	ParamScale float64 //rap:unit 1
	// FusedCount is the number of original operators fused into this
	// kernel (1 = unfused).
	FusedCount int
}

// Warps returns the launch size of the kernel.
func (s KernelSpec) Warps() int {
	w := int(math.Ceil(s.Elements / float64(warpSize*elemsPerThread)))
	if w < 1 {
		w = 1
	}
	return w
}

// occupancy is the fraction of the GPU the launch can cover.
//
//rap:unit return 1
func (s KernelSpec) occupancy() float64 {
	return math.Min(1, float64(s.Warps())/warpsSaturate)
}

// Work returns the kernel's solo execution time in µs (excluding launch
// overhead). Throughput is occupancy-limited: a kernel too small to fill
// the GPU processes elements at a proportionally lower rate — the
// under-utilization of fine-grained preprocessing kernels that motivates
// horizontal fusion (§2.3) and gives resource-aware sharding its real
// cost (a shard confined to leftover resources runs at leftover speed).
//
//rap:unit return us
func (s KernelSpec) Work() float64 {
	scale := s.ParamScale
	if scale <= 0 {
		scale = 1
	}
	return s.Elements*s.Type.costFactor()*scale/(baseThroughput*s.occupancy()) + minKernelWork
}

// SaturatedWork returns the execution time the kernel's element count
// would take at full-GPU throughput — the occupancy-independent work
// volume, used to derive CPU-side costs for the TorchArrow baseline.
//
//rap:unit return us
func (s KernelSpec) SaturatedWork() float64 {
	scale := s.ParamScale
	if scale <= 0 {
		scale = 1
	}
	return s.Elements * s.Type.costFactor() * scale / baseThroughput
}

// Demand returns the kernel's GPU resource demand. SM demand equals the
// kernel's occupancy — spatial sharing contends on resident-warp slots,
// so a launch that covers a fraction of the GPU demands exactly that
// fraction of SM capacity.
func (s KernelSpec) Demand() gpusim.Demand {
	occ := s.occupancy()
	return gpusim.Demand{
		SM:    occ,
		MemBW: s.Type.bwIntensity() * occ,
	}
}

// SoloLatency returns launch overhead + work.
//
//rap:unit return us
func (s KernelSpec) SoloLatency() float64 {
	return gpusim.DefaultLaunchOverhead + s.Work()
}

// Kernel lowers the spec to a simulator kernel.
func (s KernelSpec) Kernel() gpusim.Kernel {
	return gpusim.Kernel{
		Name:   s.Name,
		Work:   s.Work(),
		Demand: s.Demand(),
		Warps:  s.Warps(),
		Tag:    "preproc",
	}
}

// MustFuse horizontally merges two same-type kernels: one launch,
// combined elements (§6.1). Like every Must* helper it panics on
// misuse — here, differing op types: both in-tree callers (the fusion
// planner and the profile-set generator) group kernels by op type
// before fusing, so a mixed-type pair is a programming error, not an
// input condition.
func (s KernelSpec) MustFuse(o KernelSpec) KernelSpec {
	if s.Type != o.Type {
		panic(fmt.Sprintf("preproc: cannot fuse %s with %s", s.Type, o.Type))
	}
	sc1, sc2 := s.ParamScale, o.ParamScale
	if sc1 <= 0 {
		sc1 = 1
	}
	if sc2 <= 0 {
		sc2 = 1
	}
	total := s.Elements + o.Elements
	scale := 1.0
	if total > 0 {
		scale = (sc1*s.Elements + sc2*o.Elements) / total
	}
	return KernelSpec{
		Name:       s.Name + "+" + o.Name,
		Type:       s.Type,
		Elements:   total,
		ParamScale: scale,
		FusedCount: s.fusedCount() + o.fusedCount(),
	}
}

func (s KernelSpec) fusedCount() int {
	if s.FusedCount <= 0 {
		return 1
	}
	return s.FusedCount
}

// MaxElementsForDemand returns the largest element count a kernel of
// this type can carry while its resource demand stays within leftover —
// the §6.2 resource-aware constraint. Returns 0 when the leftover can
// never fit this type (its intensity exceeds the headroom at any size).
func (s KernelSpec) MaxElementsForDemand(leftoverSM, leftoverBW float64) float64 {
	occSM := leftoverSM
	occBW := 1.0
	if i := s.Type.bwIntensity(); i > 0 {
		occBW = leftoverBW / i
	}
	occ := math.Min(occSM, occBW)
	if occ <= 0 {
		return 0
	}
	if occ >= 1 {
		return math.Inf(1)
	}
	return occ * warpsSaturate * warpSize * elemsPerThread
}

// Shard splits the kernel into a piece with the given fraction of the
// elements and the remainder (§6.2's resource-aware kernel sharding).
// Fractions are clipped to (0, 1) exclusive so both shards stay
// non-empty.
func (s KernelSpec) Shard(frac float64) (KernelSpec, KernelSpec) {
	if frac < 0.001 {
		frac = 0.001
	}
	if frac > 0.999 {
		frac = 0.999
	}
	base := strings.TrimSuffix(strings.TrimSuffix(s.Name, "~shard"), "~rest")
	a, b := s, s
	a.Name = base + "~shard"
	b.Name = base + "~rest"
	a.Elements = s.Elements * frac
	b.Elements = s.Elements * (1 - frac)
	return a, b
}
