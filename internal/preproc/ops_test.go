package preproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rap/internal/tensor"
)

func denseBatch(vals ...float32) *tensor.Batch {
	b := tensor.NewBatch(len(vals))
	d := tensor.NewDense("x", len(vals))
	copy(d.Values, vals)
	if err := b.AddDense(d); err != nil {
		panic(err)
	}
	return b
}

func sparseBatch(lists ...[]int64) *tensor.Batch {
	b := tensor.NewBatch(len(lists))
	if err := b.AddSparse(tensor.SparseFromLists("x", lists)); err != nil {
		panic(err)
	}
	return b
}

func TestFillNullDense(t *testing.T) {
	b := denseBatch(1, float32(math.NaN()), 3)
	op := NewFillNullDense("fn", "x", "y", -1)
	if err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.DenseByName("y")
	if y.Values[0] != 1 || y.Values[1] != -1 || y.Values[2] != 3 {
		t.Fatalf("FillNull dense = %v", y.Values)
	}
	if b.DenseByName("x").HasNaN() == false {
		t.Fatal("input mutated")
	}
}

func TestFillNullSparse(t *testing.T) {
	b := sparseBatch([]int64{5}, nil, []int64{7, 8})
	op := NewFillNullSparse("fn", "x", "y", 42)
	if err := op.Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	if got := y.Row(1); len(got) != 1 || got[0] != 42 {
		t.Fatalf("FillNull sparse empty row = %v", got)
	}
	if got := y.Row(2); len(got) != 2 || got[1] != 8 {
		t.Fatalf("FillNull sparse row 2 = %v", got)
	}
}

func TestCast(t *testing.T) {
	b := denseBatch(1.7, -2.3, float32(math.NaN()))
	if err := NewCast("c", "x", "y").Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.DenseByName("y")
	if y.Values[0] != 1 || y.Values[1] != -2 || y.Values[2] != 0 {
		t.Fatalf("Cast = %v", y.Values)
	}
}

func TestLogit(t *testing.T) {
	b := denseBatch(0, 1, 1000)
	if err := NewLogit("l", "x", "y", 1e-4).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.DenseByName("y")
	// x=0 -> p=eps -> big negative; x=1 -> p=0.5 -> 0; x large -> p→1-eps.
	if y.Values[0] >= 0 || math.Abs(float64(y.Values[1])) > 1e-5 || y.Values[2] <= 0 {
		t.Fatalf("Logit = %v", y.Values)
	}
	if y.HasNaN() {
		t.Fatal("Logit produced NaN")
	}
}

func TestBoxCox(t *testing.T) {
	b := denseBatch(4, 0, -3)
	if err := NewBoxCox("bc", "x", "y", 0.5).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.DenseByName("y")
	// (sqrt(4)-1)/0.5 = 2
	if math.Abs(float64(y.Values[0])-2) > 1e-5 {
		t.Fatalf("BoxCox(4) = %f", y.Values[0])
	}
	if y.HasNaN() {
		t.Fatal("BoxCox produced NaN on non-positive input")
	}
	// Default lambda.
	if NewBoxCox("bc2", "x", "z", 0).Lambda != 0.5 {
		t.Fatal("default lambda wrong")
	}
}

func TestOneHot(t *testing.T) {
	b := denseBatch(3.7, -12, float32(math.NaN()))
	if err := NewOneHot("oh", "x", "y", 10).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	if y.Len() != 3 || y.NNZ() != 3 {
		t.Fatalf("OneHot shape: len=%d nnz=%d", y.Len(), y.NNZ())
	}
	if y.Row(0)[0] != 3 || y.Row(1)[0] != 2 || y.Row(2)[0] != 0 {
		t.Fatalf("OneHot values = %v", y.Values)
	}
}

func TestSigridHash(t *testing.T) {
	b := sparseBatch([]int64{1, 2}, []int64{1})
	if err := NewSigridHash("sh", "x", "y", 1000).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	for _, v := range y.Values {
		if v < 0 || v >= 1000 {
			t.Fatalf("hash out of range: %d", v)
		}
	}
	// Deterministic: same id hashes the same everywhere.
	if y.Row(0)[0] != y.Row(1)[0] {
		t.Fatal("hash not deterministic")
	}
	if y.Row(0)[0] == 1 && y.Row(0)[1] == 2 {
		t.Fatal("hash appears to be identity")
	}
}

func TestFirstX(t *testing.T) {
	b := sparseBatch([]int64{1, 2, 3, 4}, []int64{9}, nil)
	if err := NewFirstX("fx", "x", "y", 2).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	if got := y.Row(0); len(got) != 2 || got[1] != 2 {
		t.Fatalf("FirstX row0 = %v", got)
	}
	if y.RowLen(1) != 1 || y.RowLen(2) != 0 {
		t.Fatal("FirstX shorter rows changed")
	}
}

func TestClamp(t *testing.T) {
	b := sparseBatch([]int64{-5, 3, 99})
	if err := NewClamp("cp", "x", "y", 0, 10).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	if y.Values[0] != 0 || y.Values[1] != 3 || y.Values[2] != 10 {
		t.Fatalf("Clamp = %v", y.Values)
	}
	// Reversed bounds are normalized.
	if c := NewClamp("cp2", "x", "z", 10, 0); c.Lo != 0 || c.Hi != 10 {
		t.Fatal("Clamp bounds not normalized")
	}
}

func TestBucketize(t *testing.T) {
	b := denseBatch(-1, 0.5, 10, 1000)
	if err := NewBucketize("bk", "x", "y", []float32{0, 1, 100}).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	want := []int64{0, 1, 2, 3}
	for i, w := range want {
		if y.Row(i)[0] != w {
			t.Fatalf("Bucketize row %d = %d, want %d", i, y.Row(i)[0], w)
		}
	}
	// Unsorted borders are sorted defensively.
	bk := NewBucketize("bk2", "x", "z", []float32{5, 1, 3})
	if bk.Borders[0] != 1 || bk.Borders[2] != 5 {
		t.Fatal("borders not sorted")
	}
}

func TestNGram(t *testing.T) {
	b := tensor.NewBatch(2)
	if err := b.AddSparse(tensor.SparseFromLists("a", [][]int64{{1, 2}, {7}})); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSparse(tensor.SparseFromLists("c", [][]int64{{3}, {}})); err != nil {
		t.Fatal(err)
	}
	ng := NewNGram("ng", []string{"a", "c"}, "y", 2, 500)
	if err := ng.Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	// Sample 0: concat [1 2 3] -> bigrams (1,2),(2,3) -> 2 grams.
	// Sample 1: concat [7] -> 0 grams.
	if y.RowLen(0) != 2 || y.RowLen(1) != 0 {
		t.Fatalf("NGram lens: %d,%d", y.RowLen(0), y.RowLen(1))
	}
	for _, v := range y.Values {
		if v < 0 || v >= 500 {
			t.Fatalf("ngram id out of range: %d", v)
		}
	}
}

func TestNGramOrderSensitivity(t *testing.T) {
	mk := func(lists [][]int64) int64 {
		b := tensor.NewBatch(1)
		if err := b.AddSparse(tensor.SparseFromLists("a", lists)); err != nil {
			t.Fatal(err)
		}
		if err := NewNGram("ng", []string{"a"}, "y", 2, 1_000_000).Apply(b); err != nil {
			t.Fatal(err)
		}
		return b.SparseByName("y").Values[0]
	}
	if mk([][]int64{{1, 2}}) == mk([][]int64{{2, 1}}) {
		t.Fatal("ngram hash ignores order")
	}
}

func TestMapID(t *testing.T) {
	b := sparseBatch([]int64{1, 2, 3})
	if err := NewMapID("mp", "x", "y", map[int64]int64{2: 99}).Apply(b); err != nil {
		t.Fatal(err)
	}
	y := b.SparseByName("y")
	if y.Values[0] != 1 || y.Values[1] != 99 || y.Values[2] != 3 {
		t.Fatalf("MapID = %v", y.Values)
	}
}

func TestOpsErrorOnMissingColumn(t *testing.T) {
	b := tensor.NewBatch(1)
	ops := []Op{
		NewFillNullDense("a", "nope", "o1", 0),
		NewFillNullSparse("b", "nope", "o2", 0),
		NewCast("c", "nope", "o3"),
		NewLogit("d", "nope", "o4", 0),
		NewBoxCox("e", "nope", "o5", 0.5),
		NewOneHot("f", "nope", "o6", 4),
		NewSigridHash("g", "nope", "o7", 4),
		NewFirstX("h", "nope", "o8", 2),
		NewClamp("i", "nope", "o9", 0, 1),
		NewBucketize("j", "nope", "o10", []float32{1}),
		NewNGram("k", []string{"nope"}, "o11", 2, 4),
		NewMapID("l", "nope", "o12", nil),
	}
	for _, op := range ops {
		if err := op.Apply(b); err == nil {
			t.Fatalf("%s accepted missing input", op.ID())
		}
	}
}

func TestOpTypeMetadata(t *testing.T) {
	if len(AllOpTypes()) != 11 {
		t.Fatalf("want 11 op types (Table 1), got %d", len(AllOpTypes()))
	}
	names := map[string]bool{}
	for _, ty := range AllOpTypes() {
		names[ty.String()] = true
	}
	for _, want := range []string{"Logit", "BoxCox", "Onehot", "SigridHash", "FirstX",
		"Clamp", "Bucketize", "Ngram", "Mapid", "FillNull", "Cast"} {
		if !names[want] {
			t.Fatalf("missing op type %s", want)
		}
	}
	if OpLogit.Category() != CatDenseNorm || OpFirstX.Category() != CatSparseNorm ||
		OpNGram.Category() != CatFeatureGen || OpCast.Category() != CatOther {
		t.Fatal("Table 1 categories wrong")
	}
	if OpNGram.PredictorCategory() != "Ngram" || OpLogit.PredictorCategory() != "1D Ops" {
		t.Fatal("Table 5 predictor categories wrong")
	}
	if OpType(77).String() == "" {
		t.Fatal("unknown type name empty")
	}
}

func TestKernelSpecCostModel(t *testing.T) {
	small := KernelSpec{Name: "s", Type: OpSigridHash, Elements: 100}
	big := KernelSpec{Name: "b", Type: OpSigridHash, Elements: 4096 * 512}
	if small.Work() >= big.Work() {
		t.Fatal("work not monotone in elements")
	}
	if small.Warps() < 1 {
		t.Fatal("warps < 1")
	}
	// Demands grow with size and saturate at full occupancy.
	sd, bd := small.Demand(), big.Demand()
	if sd.SM >= bd.SM || bd.SM > 1+1e-9 {
		t.Fatalf("SM demand wrong: small %f big %f", sd.SM, bd.SM)
	}
	// NGram is the costliest op class (paper §3: feature generation ≫
	// normalization).
	ng := KernelSpec{Type: OpNGram, Elements: 1000}
	lg := KernelSpec{Type: OpLogit, Elements: 1000}
	if ng.Work() <= lg.Work() {
		t.Fatal("NGram should cost more than Logit")
	}
	if small.SoloLatency() <= small.Work() {
		t.Fatal("solo latency must include launch overhead")
	}
	k := big.Kernel()
	if k.Tag != "preproc" || k.Work != big.Work() || k.Warps != big.Warps() {
		t.Fatalf("Kernel lowering wrong: %+v", k)
	}
}

func TestKernelSpecFuse(t *testing.T) {
	a := KernelSpec{Name: "a", Type: OpFillNull, Elements: 1000}
	b := KernelSpec{Name: "b", Type: OpFillNull, Elements: 3000}
	f := a.MustFuse(b)
	if f.Elements != 4000 || f.FusedCount != 2 {
		t.Fatalf("fused = %+v", f)
	}
	// Fusion saves one launch overhead.
	if f.SoloLatency() >= a.SoloLatency()+b.SoloLatency() {
		t.Fatal("fusion saved nothing")
	}
	// The fused kernel is bigger than either part (demand grows).
	if f.Demand().SM < a.Demand().SM {
		t.Fatal("fused demand shrank")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type fusion accepted")
		}
	}()
	a.MustFuse(KernelSpec{Type: OpLogit})
}

func TestKernelSpecFuseParamScale(t *testing.T) {
	a := KernelSpec{Name: "a", Type: OpNGram, Elements: 1000, ParamScale: 2}
	b := KernelSpec{Name: "b", Type: OpNGram, Elements: 1000, ParamScale: 1}
	f := a.MustFuse(b)
	if math.Abs(f.ParamScale-1.5) > 1e-9 {
		t.Fatalf("fused param scale = %f, want element-weighted 1.5", f.ParamScale)
	}
}

func TestKernelSpecShard(t *testing.T) {
	s := KernelSpec{Name: "k", Type: OpNGram, Elements: 10000, FusedCount: 4}
	a, b := s.Shard(0.25)
	if math.Abs(a.Elements+b.Elements-s.Elements) > 1e-9 {
		t.Fatal("shards lose elements")
	}
	if math.Abs(a.Elements-2500) > 1e-9 {
		t.Fatalf("shard fraction wrong: %f", a.Elements)
	}
	// Extreme fractions are clipped to keep both shards non-empty.
	a, b = s.Shard(0)
	if a.Elements <= 0 || b.Elements >= s.Elements {
		t.Fatal("shard clip failed")
	}
	a, b = s.Shard(5)
	if b.Elements <= 0 || a.Elements >= s.Elements {
		t.Fatal("upper shard clip failed")
	}
}

// Property: FirstX output rows never exceed X and are prefixes of input.
func TestFirstXProperty(t *testing.T) {
	f := func(seed int64, xRaw uint8) bool {
		x := int(xRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		lists := make([][]int64, 1+rng.Intn(20))
		for i := range lists {
			lists[i] = make([]int64, rng.Intn(15))
			for j := range lists[i] {
				lists[i][j] = rng.Int63n(100)
			}
		}
		b := sparseBatch(lists...)
		if NewFirstX("fx", "x", "y", x).Apply(b) != nil {
			return false
		}
		y := b.SparseByName("y")
		for i := range lists {
			row := y.Row(i)
			if len(row) > x {
				return false
			}
			for j := range row {
				if row[j] != lists[i][j] {
					return false
				}
			}
		}
		return y.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SigridHash always lands in [0, hashSize) and equal ids map to
// equal hashes.
func TestSigridHashProperty(t *testing.T) {
	f := func(id int64, sizeRaw uint16) bool {
		size := int64(sizeRaw%5000) + 2
		h1 := HashID(id, size)
		h2 := HashID(id, size)
		return h1 == h2 && h1 >= 0 && h1 < size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: fusing preserves total elements and monotonically reduces
// total solo latency versus running separately.
func TestFusionSavesLaunchOverheadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := AllOpTypes()[rng.Intn(11)]
		n := 2 + rng.Intn(6)
		var specs []KernelSpec
		sum := 0.0
		sep := 0.0
		for i := 0; i < n; i++ {
			s := KernelSpec{Name: "k", Type: ty, Elements: 10 + rng.Float64()*5000}
			specs = append(specs, s)
			sum += s.Elements
			sep += s.SoloLatency()
		}
		fused := specs[0]
		for _, s := range specs[1:] {
			fused = fused.MustFuse(s)
		}
		return math.Abs(fused.Elements-sum) < 1e-6 &&
			fused.SoloLatency() < sep &&
			fused.FusedCount == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
