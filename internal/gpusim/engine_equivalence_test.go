package gpusim

import (
	"math"
	"testing"
)

// TestGoldenEquivalence replays every seeded random DAG through both the
// optimized engine and the preserved reference implementation and
// requires bit-identical Results: op timings, makespan, utilization
// segments (including tag attribution) and host-pool segments. Unlike
// TestGoldenDigests this comparison is self-contained in one binary, so
// it holds on any platform or Go version.
func TestGoldenEquivalence(t *testing.T) {
	for seed := 0; seed < goldenSeeds; seed++ {
		got, err := buildGoldenDAG(int64(seed)).Run()
		if err != nil {
			t.Fatalf("seed %d: optimized engine: %v", seed, err)
		}
		want, err := referenceRun(buildGoldenDAG(int64(seed)))
		if err != nil {
			t.Fatalf("seed %d: reference engine: %v", seed, err)
		}
		compareResults(t, seed, got, want)
	}
}

func compareResults(t *testing.T, seed int, got, want *Result) {
	t.Helper()
	bitEq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	if !bitEq(got.Makespan, want.Makespan) {
		t.Errorf("seed %d: makespan %v != reference %v", seed, got.Makespan, want.Makespan)
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("seed %d: %d ops != reference %d", seed, len(got.Ops), len(want.Ops))
	}
	for i := range got.Ops {
		g, w := got.Ops[i], want.Ops[i]
		if g.ID != w.ID || g.Name != w.Name || g.Tag != w.Tag || g.GPU != w.GPU ||
			!bitEq(g.Start, w.Start) || !bitEq(g.End, w.End) {
			t.Errorf("seed %d: op %d: %+v != reference %+v", seed, i, g, w)
		}
	}
	if len(got.Util) != len(want.Util) {
		t.Fatalf("seed %d: %d util timelines != reference %d", seed, len(got.Util), len(want.Util))
	}
	for g := range got.Util {
		if len(got.Util[g]) != len(want.Util[g]) {
			t.Errorf("seed %d: gpu %d: %d segments != reference %d", seed, g, len(got.Util[g]), len(want.Util[g]))
			continue
		}
		for i := range got.Util[g] {
			gs, ws := got.Util[g][i], want.Util[g][i]
			if !bitEq(gs.Start, ws.Start) || !bitEq(gs.End, ws.End) ||
				!bitEq(gs.SM, ws.SM) || !bitEq(gs.MemBW, ws.MemBW) {
				t.Errorf("seed %d: gpu %d seg %d: %+v != reference %+v", seed, g, i, gs, ws)
			}
			if len(gs.TagSM) != len(ws.TagSM) {
				t.Errorf("seed %d: gpu %d seg %d: tagSM %v != reference %v", seed, g, i, gs.TagSM, ws.TagSM)
				continue
			}
			for tag, v := range ws.TagSM {
				if gv, ok := gs.TagSM[tag]; !ok || !bitEq(gv, v) {
					t.Errorf("seed %d: gpu %d seg %d tag %q: %v != reference %v", seed, g, i, tag, gv, v)
				}
			}
		}
	}
	if len(got.HostUtil) != len(want.HostUtil) {
		t.Fatalf("seed %d: %d host segments != reference %d", seed, len(got.HostUtil), len(want.HostUtil))
	}
	for i := range got.HostUtil {
		gs, ws := got.HostUtil[i], want.HostUtil[i]
		if !bitEq(gs.Start, ws.Start) || !bitEq(gs.End, ws.End) || !bitEq(gs.CPU, ws.CPU) {
			t.Errorf("seed %d: host seg %d: %+v != reference %+v", seed, i, gs, ws)
		}
	}
}
