package gpusim

import (
	"math"
	"testing"
)

// TestGoldenEquivalence replays every seeded random DAG through both the
// optimized engine and the preserved reference implementation and
// requires bit-identical Results: op timings, makespan, utilization
// segments (including tag attribution) and host-pool segments. Unlike
// TestGoldenDigests this comparison is self-contained in one binary, so
// it holds on any platform or Go version.
func TestGoldenEquivalence(t *testing.T) {
	for seed := 0; seed < goldenSeeds; seed++ {
		got, err := buildGoldenDAG(int64(seed)).Run()
		if err != nil {
			t.Fatalf("seed %d: optimized engine: %v", seed, err)
		}
		want, err := referenceRun(buildGoldenDAG(int64(seed)))
		if err != nil {
			t.Fatalf("seed %d: reference engine: %v", seed, err)
		}
		compareResults(t, seed, got, want)
	}
}

// TestEngineEquivalenceComposedMatrix crosses the perturbation axes —
// capacity windows and straggler inflation, separately and together —
// with every engine: sequential (the truth), the preserved reference
// implementation, and the sharded engine at 2 and 4 shards. Each cell
// must be bit-identical; the combined cell is what catches interactions
// the single-axis suites (TestGoldenEquivalence, the chaos digests)
// cannot, e.g. a capacity step landing mid-flight on an inflated
// straggler kernel while shards disagree about the clamped dt.
func TestEngineEquivalenceComposedMatrix(t *testing.T) {
	type axes struct{ windows, stragglers bool }
	cells := []axes{{false, false}, {true, false}, {false, true}, {true, true}}
	for _, ax := range cells {
		for seed := 0; seed < 8; seed++ {
			build := func() *Sim {
				s := buildGoldenDAG(int64(seed))
				if ax.windows {
					// Deterministic windows on every resource class of
					// GPU 0 plus the host pool, overlapping on SM.
					for _, w := range []struct {
						rc     ResourceClass
						t0, t1 float64
						scale  float64
					}{
						{ResSM, 10, 150, 0.7},
						{ResSM, 60, 220, 0.8}, // overlaps the first: scales multiply
						{ResMemBW, 30, 180, 0.6},
						{ResLinkOut, 0, 120, 0.5},
						{ResLinkIn, 40, 260, 0.5},
						{ResCopyEngine, 20, 100, 0.4},
						{ResHostCPU, 50, 300, 0.6},
					} {
						if err := s.AddCapacityWindow(w.rc, 0, w.t0, w.t1, w.scale); err != nil {
							t.Fatalf("seed %d: window %v: %v", seed, w.rc, err)
						}
					}
				}
				if ax.stragglers {
					if _, err := s.InjectStragglers(int64(seed), 0.3, 2.5); err != nil {
						t.Fatalf("seed %d: stragglers: %v", seed, err)
					}
				}
				return s
			}
			want, err := build().Run()
			if err != nil {
				t.Fatalf("seed %d %+v: sequential: %v", seed, ax, err)
			}
			ref, err := referenceRun(build())
			if err != nil {
				t.Fatalf("seed %d %+v: reference: %v", seed, ax, err)
			}
			compareResults(t, seed, ref, want)
			for _, shards := range []int{2, 4} {
				s := build()
				s.SetEngineOptions(EngineOptions{Shards: shards, NoRace: true})
				got, err := s.Run()
				if err != nil {
					t.Fatalf("seed %d %+v shards %d: %v", seed, ax, shards, err)
				}
				compareResults(t, seed, got, want)
				if got.Events != want.Events {
					t.Errorf("seed %d %+v shards %d: %d events != sequential %d",
						seed, ax, shards, got.Events, want.Events)
				}
			}
		}
	}
}

func compareResults(t *testing.T, seed int, got, want *Result) {
	t.Helper()
	bitEq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	if !bitEq(got.Makespan, want.Makespan) {
		t.Errorf("seed %d: makespan %v != reference %v", seed, got.Makespan, want.Makespan)
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("seed %d: %d ops != reference %d", seed, len(got.Ops), len(want.Ops))
	}
	for i := range got.Ops {
		g, w := got.Ops[i], want.Ops[i]
		if g.ID != w.ID || g.Name != w.Name || g.Tag != w.Tag || g.GPU != w.GPU ||
			!bitEq(g.Start, w.Start) || !bitEq(g.End, w.End) {
			t.Errorf("seed %d: op %d: %+v != reference %+v", seed, i, g, w)
		}
	}
	if len(got.Util) != len(want.Util) {
		t.Fatalf("seed %d: %d util timelines != reference %d", seed, len(got.Util), len(want.Util))
	}
	for g := range got.Util {
		if len(got.Util[g]) != len(want.Util[g]) {
			t.Errorf("seed %d: gpu %d: %d segments != reference %d", seed, g, len(got.Util[g]), len(want.Util[g]))
			continue
		}
		for i := range got.Util[g] {
			gs, ws := got.Util[g][i], want.Util[g][i]
			if !bitEq(gs.Start, ws.Start) || !bitEq(gs.End, ws.End) ||
				!bitEq(gs.SM, ws.SM) || !bitEq(gs.MemBW, ws.MemBW) {
				t.Errorf("seed %d: gpu %d seg %d: %+v != reference %+v", seed, g, i, gs, ws)
			}
			if len(gs.TagSM) != len(ws.TagSM) {
				t.Errorf("seed %d: gpu %d seg %d: tagSM %v != reference %v", seed, g, i, gs.TagSM, ws.TagSM)
				continue
			}
			for tag, v := range ws.TagSM {
				if gv, ok := gs.TagSM[tag]; !ok || !bitEq(gv, v) {
					t.Errorf("seed %d: gpu %d seg %d tag %q: %v != reference %v", seed, g, i, tag, gv, v)
				}
			}
		}
	}
	if len(got.HostUtil) != len(want.HostUtil) {
		t.Fatalf("seed %d: %d host segments != reference %d", seed, len(got.HostUtil), len(want.HostUtil))
	}
	for i := range got.HostUtil {
		gs, ws := got.HostUtil[i], want.HostUtil[i]
		if !bitEq(gs.Start, ws.Start) || !bitEq(gs.End, ws.End) || !bitEq(gs.CPU, ws.CPU) {
			t.Errorf("seed %d: host seg %d: %+v != reference %+v", seed, i, gs, ws)
		}
	}
}
