package gpusim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Time-varying resource capacities. Every resource of the cluster (SM
// array, DRAM bandwidth, NVLink in/out, copy engine, host CPU pool)
// normally has capacity 1.0; capacity windows scale it down over a time
// interval, modeling thermal throttling, degraded links, and host
// stalls. Capacity is a step function of time: window boundaries become
// engine events, and between boundaries the contention math is exactly
// the constant-capacity math with 1.0 replaced by the current value —
// a Sim with no windows is bit-identical to one predating this file.

// ResourceClass names one simulator resource class for capacity
// scaling. The classes mirror the engine's internal resource kinds.
type ResourceClass int

// The scalable resource classes.
const (
	// ResSM is a GPU's streaming-multiprocessor throughput.
	ResSM ResourceClass = iota
	// ResMemBW is a GPU's DRAM bandwidth.
	ResMemBW
	// ResLinkOut is a GPU's egress NVLink bandwidth.
	ResLinkOut
	// ResLinkIn is a GPU's ingress NVLink bandwidth.
	ResLinkIn
	// ResCopyEngine is a GPU's host-to-device copy engine.
	ResCopyEngine
	// ResHostCPU is the host-wide CPU worker pool (gpu index ignored).
	ResHostCPU
	// ResFabric is one node's inter-node fabric link; the gpu index is
	// the *node* index. It exists only when SetTopology installed a
	// multi-node topology — windows on it fail otherwise.
	ResFabric
)

// String returns the class name.
func (rc ResourceClass) String() string {
	switch rc {
	case ResSM:
		return "sm"
	case ResMemBW:
		return "membw"
	case ResLinkOut:
		return "link-out"
	case ResLinkIn:
		return "link-in"
	case ResCopyEngine:
		return "copy"
	case ResHostCPU:
		return "hostcpu"
	case ResFabric:
		return "fabric"
	default:
		return fmt.Sprintf("resource(%d)", int(rc))
	}
}

// kind maps the public class to the engine's internal resource kind.
func (rc ResourceClass) kind() (resKind, bool) {
	switch rc {
	case ResSM:
		return resSM, true
	case ResMemBW:
		return resBW, true
	case ResLinkOut:
		return resLinkOut, true
	case ResLinkIn:
		return resLinkIn, true
	case ResCopyEngine:
		return resCopy, true
	case ResHostCPU:
		return resCPU, true
	case ResFabric:
		return resFabric, true
	default:
		return 0, false
	}
}

// capWindow is one stored capacity-scaling window.
type capWindow struct {
	kind   resKind
	gpu    int // 0 for host-wide resources
	t0, t1 float64
	scale  float64
}

// AddCapacityWindow scales the capacity of one resource by scale (in
// [0,1]) during [t0, t1) µs of simulated time. The gpu index is
// ignored for ResHostCPU. Windows may be added at any point before Run.
//
// Degenerate inputs have defined semantics rather than undefined
// engine behavior:
//
//   - A negative t0 is clamped to 0 (the simulation starts at 0).
//   - Zero-length (t0 == t1) and inverted (t1 < t0) windows are
//     rejected with an error, as is any NaN endpoint (the `!(t1 > t0)`
//     form is deliberate: NaN fails every comparison).
//   - A NaN, negative, or >1 scale is rejected; scale 1.0 is accepted
//     and provably inert (it compiles to no step events at all).
//   - Overlapping windows on the same (resource, GPU) multiply, in
//     insertion order, with the product clamped to [0,1]. The product
//     is evaluated when windows are compiled to the step function —
//     before any engine runs — so the semantics are byte-identical
//     under the sequential, sharded, and raced engines (the sharded
//     commit phase applies the same precompiled steps serially).
func (s *Sim) AddCapacityWindow(rc ResourceClass, gpu int, t0, t1, scale float64) error {
	kind, ok := rc.kind()
	if !ok {
		return fmt.Errorf("gpusim: unknown resource class %d", int(rc))
	}
	switch kind {
	case resCPU:
		gpu = 0
	case resFabric:
		if s.numFabric == 0 {
			return fmt.Errorf("gpusim: capacity window on %v: no inter-node fabric (topology absent or flat)", rc)
		}
		if gpu < 0 || gpu >= s.numFabric {
			return fmt.Errorf("gpusim: capacity window on %v: node %d out of range [0,%d)", rc, gpu, s.numFabric)
		}
	default:
		if gpu < 0 || gpu >= s.cfg.NumGPUs {
			return fmt.Errorf("gpusim: capacity window on %v: gpu %d out of range [0,%d)", rc, gpu, s.cfg.NumGPUs)
		}
	}
	if t0 < 0 {
		t0 = 0
	}
	if !(t1 > t0) {
		return fmt.Errorf("gpusim: capacity window on %v gpu %d: empty interval [%g,%g)", rc, gpu, t0, t1)
	}
	if !(scale >= 0 && scale <= 1) {
		return fmt.Errorf("gpusim: capacity window on %v gpu %d: scale %g outside [0,1]", rc, gpu, scale)
	}
	s.capWindows = append(s.capWindows, capWindow{kind: kind, gpu: gpu, t0: t0, t1: t1, scale: scale})
	return nil
}

// InjectStragglers multiplies the remaining work of a deterministic,
// seed-selected subset of kernels by factor (> 1 inflates; the
// selection draws one uniform variate per kernel op in op-id order, so
// the same seed on the same DAG always picks the same kernels). It must
// be called after the DAG is fully built and before Run; only ops added
// via AddKernel are eligible. Returns the number of kernels inflated.
func (s *Sim) InjectStragglers(seed int64, prob, factor float64) (int, error) {
	if s.ran {
		return 0, fmt.Errorf("gpusim: InjectStragglers after Run")
	}
	if !(prob >= 0 && prob <= 1) {
		return 0, fmt.Errorf("gpusim: straggler probability %g outside [0,1]", prob)
	}
	if !(factor > 0) {
		return 0, fmt.Errorf("gpusim: straggler factor %g must be positive", factor)
	}
	if prob <= 0 {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for _, o := range s.ops {
		if !o.isKernel {
			continue
		}
		if rng.Float64() < prob {
			o.workLeft *= factor
			n++
		}
	}
	return n, nil
}

// capChange is one resource's new capacity taking effect at a boundary.
type capChange struct {
	idx int32
	cap float64
}

// capEvent groups the capacity changes taking effect at one instant.
type capEvent struct {
	t       float64
	changes []capChange
}

// resIndex is the dense resource index shared by the engine and the
// reference implementation: kind-major for the per-GPU kinds (host CPU
// slot last), with per-node fabric links appended after it (for
// resFabric the gpu argument is the node index).
func resIndex(kind resKind, gpu, numGPUs int) int32 {
	if kind == resFabric {
		return int32(numResKinds*numGPUs - (numGPUs - 1) + gpu)
	}
	return int32(int(kind)*numGPUs + gpu)
}

// compileCapWindows flattens a Sim's capacity windows into the initial
// per-resource capacities (dense kind-major layout) and a time-ordered
// list of step events. A change event is emitted only when a resource's
// value actually changes, so scale-1.0 windows — and a window-free Sim —
// produce no events at all and cannot perturb the event loop's float
// trajectory. The construction is fully deterministic: windows are
// scanned in insertion order, boundaries sorted by (time, resource).
func compileCapWindows(s *Sim) (caps []float64, events []capEvent) {
	g := s.cfg.NumGPUs
	baseRes := numResKinds*g - (g - 1)
	numRes := baseRes + s.numFabric
	caps = make([]float64, numRes)
	for i := range caps {
		caps[i] = 1
	}
	// Fabric oversubscription is a permanent capacity reduction seeded
	// here: each fabric link starts at 1/Oversub, and any window on it
	// scales that base multiplicatively. With no fabric resources this
	// loop is empty and the array is exactly the pre-topology one.
	for i := baseRes; i < numRes; i++ {
		caps[i] = s.fabricCap
	}
	if len(s.capWindows) == 0 {
		return caps, nil
	}
	base := func(idx int32) float64 {
		if int(idx) >= baseRes {
			return s.fabricCap
		}
		return 1
	}

	// Group windows per dense resource index (slice-indexed: no map
	// iteration anywhere near the deterministic path).
	perRes := make([][]capWindow, numRes)
	for _, w := range s.capWindows {
		idx := resIndex(w.kind, w.gpu, g)
		perRes[idx] = append(perRes[idx], w)
	}

	// valueAt is the product of all scales active at time t, clamped to
	// [0,1]; multiplication runs in insertion order.
	valueAt := func(ws []capWindow, t float64) float64 {
		v := 1.0
		for _, w := range ws {
			if w.t0 <= t && t < w.t1 {
				v *= w.scale
			}
		}
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return v
	}

	type change struct {
		t   float64
		idx int32
		cap float64
	}
	var changes []change
	for idx := int32(0); int(idx) < numRes; idx++ {
		ws := perRes[idx]
		if len(ws) == 0 {
			continue
		}
		// Boundary times of this resource, sorted and deduplicated.
		ts := make([]float64, 0, 2*len(ws))
		for _, w := range ws {
			ts = append(ts, w.t0, w.t1)
		}
		sort.Float64s(ts)
		prev := valueAt(ws, 0)
		caps[idx] = base(idx) * prev
		for i, t := range ts {
			//lint:ignore floateq exact dedup of sorted boundary times
			if t <= 0 || (i > 0 && t == ts[i-1]) {
				continue
			}
			v := valueAt(ws, t)
			//lint:ignore floateq step emission requires exact value-change detection
			if v == prev {
				continue
			}
			changes = append(changes, change{t: t, idx: idx, cap: base(idx) * v})
			prev = v
		}
	}
	if len(changes) == 0 {
		return caps, nil
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].t != changes[j].t { //lint:ignore floateq exact grouping of identical boundary instants
			return changes[i].t < changes[j].t
		}
		return changes[i].idx < changes[j].idx
	})
	for _, c := range changes {
		//lint:ignore floateq exact grouping of identical boundary instants
		if n := len(events); n > 0 && events[n-1].t == c.t {
			events[n-1].changes = append(events[n-1].changes, capChange{idx: c.idx, cap: c.cap})
			continue
		}
		events = append(events, capEvent{t: c.t, changes: []capChange{{idx: c.idx, cap: c.cap}}})
	}
	return caps, events
}

// HasPerturbations reports whether the Sim carries any capacity window.
func (s *Sim) HasPerturbations() bool { return len(s.capWindows) > 0 }
