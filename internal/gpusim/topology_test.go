package gpusim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rap/internal/topo"
)

// Behavioral tests for the hierarchical topology: fabric charging on
// cross-node transfers and collectives, oversubscription as a seeded
// capacity, window validation, and the SetTopology life-cycle rules.

func mustRunMakespan(t *testing.T, s *Sim) float64 {
	t.Helper()
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Makespan
}

// commMakespan runs a single point-to-point transfer on a 4-GPU cluster
// under the given topology (nil for none) and returns its makespan.
func commMakespan(t *testing.T, tp *topo.Topology, src, dst int) float64 {
	t.Helper()
	s := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16, Policy: FairShare})
	if err := s.SetTopology(tp); err != nil {
		t.Fatalf("SetTopology: %v", err)
	}
	s.AddComm("x", src, dst, 1e6)
	return mustRunMakespan(t, s)
}

func TestSetTopologyValidation(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16})
	if err := s.SetTopology(topo.Uniform(2, 3)); err == nil {
		t.Fatalf("GPU-count mismatch must fail")
	}
	bad := topo.Uniform(2, 2)
	bad.Oversub = 0.5
	if err := s.SetTopology(bad); err == nil {
		t.Fatalf("invalid topology must fail")
	}
	tp := topo.Uniform(2, 2)
	if err := s.SetTopology(tp); err != nil {
		t.Fatalf("SetTopology: %v", err)
	}
	if s.Topology() != tp {
		t.Fatalf("Topology() getter must return the installed topology")
	}

	// Multi-node installs are frozen once ops exist; flat and nil — both
	// provably inert — stay legal until Run.
	s = NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16})
	s.AddKernel(0, Kernel{Name: "k", Work: 10, Demand: Demand{SM: 1}})
	if err := s.SetTopology(topo.Uniform(2, 2)); err == nil {
		t.Fatalf("multi-node SetTopology after ops must fail")
	}
	if err := s.SetTopology(topo.Flat(4)); err != nil {
		t.Fatalf("flat SetTopology after ops: %v", err)
	}
	if err := s.SetTopology(nil); err != nil {
		t.Fatalf("nil SetTopology after ops: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(nil); err == nil {
		t.Fatalf("SetTopology after Run must fail")
	}

	// Once a multi-node topology is installed, replacing it after ops is
	// also frozen (the existing ops' fabric demands assume it).
	s = NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16})
	if err := s.SetTopology(topo.Uniform(2, 2)); err != nil {
		t.Fatal(err)
	}
	s.AddComm("c", 0, 2, 1e5)
	if err := s.SetTopology(nil); err == nil {
		t.Fatalf("clearing a multi-node topology after ops must fail")
	}
}

func TestFabricWindowValidation(t *testing.T) {
	flat := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16})
	err := flat.AddCapacityWindow(ResFabric, 0, 0, 10, 0.5)
	if err == nil || !strings.Contains(err.Error(), "no inter-node fabric") {
		t.Fatalf("ResFabric window on a flat sim: got %v", err)
	}

	s := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16})
	if err := s.SetTopology(topo.Uniform(2, 2)); err != nil {
		t.Fatal(err)
	}
	for _, node := range []int{-1, 2} {
		if err := s.AddCapacityWindow(ResFabric, node, 0, 10, 0.5); err == nil {
			t.Fatalf("ResFabric window on node %d must fail", node)
		}
	}
	for node := 0; node < 2; node++ {
		if err := s.AddCapacityWindow(ResFabric, node, 0, 10, 0.5); err != nil {
			t.Fatalf("ResFabric window on node %d: %v", node, err)
		}
	}
	if got := ResFabric.String(); got != "fabric" {
		t.Fatalf("ResFabric.String() = %q", got)
	}
}

// TestCrossNodeCommSlowsOnConstrainedFabric: with FabricGBs below
// LinkGBs a single cross-node flow oversubscribes its fabric links and
// runs slower than the same transfer inside one node, which in turn is
// bit-identical to the transfer on an untopologized cluster.
func TestCrossNodeCommSlowsOnConstrainedFabric(t *testing.T) {
	tp := topo.Uniform(2, 2)
	tp.FabricGBs = 100 // LinkGBs is 200 → one flow demands 2× a fabric link

	cross := commMakespan(t, tp, 0, 2)
	sameNode := commMakespan(t, tp, 0, 1)
	flat := commMakespan(t, nil, 0, 1)
	if !(cross > sameNode) {
		t.Fatalf("cross-node %g must exceed same-node %g on a constrained fabric", cross, sameNode)
	}
	if math.Float64bits(sameNode) != math.Float64bits(flat) {
		t.Fatalf("same-node transfer %g must be bit-identical to flat %g", sameNode, flat)
	}
}

// TestEqualRateFabricInvisible: a fabric matching NVLink rate with no
// oversubscription never saturates under a single flow, so the whole
// result digest matches the untopologized run bit-for-bit.
func TestEqualRateFabricInvisible(t *testing.T) {
	build := func(tp *topo.Topology) *Sim {
		s := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16, Policy: FairShare})
		if err := s.SetTopology(tp); err != nil {
			t.Fatalf("SetTopology: %v", err)
		}
		c := s.AddComm("c", 0, 2, 1e6)
		s.AddKernel(1, Kernel{Name: "k", Work: 20, Demand: Demand{SM: 0.8, MemBW: 0.4}}, WithDeps(c))
		return s
	}
	tp := topo.Uniform(2, 2)
	tp.FabricGBs = 200
	tp.Oversub = 1
	withFabric, err := build(tp).Run()
	if err != nil {
		t.Fatal(err)
	}
	without, err := build(nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	if digestResult(withFabric) != digestResult(without) {
		t.Fatalf("uncontended equal-rate fabric changed the digest")
	}
}

// TestOversubscriptionSlowsSingleFlow: oversubscription alone — equal
// per-flow rates, one flow — costs time, because it is seeded as the
// fabric link's base capacity 1/O.
func TestOversubscriptionSlowsSingleFlow(t *testing.T) {
	mk := func(oversub float64) float64 {
		tp := topo.Uniform(2, 2)
		tp.FabricGBs = 200
		tp.Oversub = oversub
		return commMakespan(t, tp, 0, 2)
	}
	t1, t4 := mk(1), mk(4)
	if !(t4 > t1) {
		t.Fatalf("oversub 4 makespan %g must exceed oversub 1 makespan %g", t4, t1)
	}
}

// TestFabricContention: two cross-node flows between disjoint GPU pairs
// never share an NVLink endpoint — on a flat cluster they run at full
// rate — but they do share the two fabric links, so the topologized run
// is strictly slower.
func TestFabricContention(t *testing.T) {
	build := func(tp *topo.Topology) *Sim {
		s := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16, Policy: FairShare})
		if err := s.SetTopology(tp); err != nil {
			t.Fatalf("SetTopology: %v", err)
		}
		s.AddComm("a", 0, 2, 1e6)
		s.AddComm("b", 1, 3, 1e6)
		return s
	}
	tp := topo.Uniform(2, 2)
	tp.FabricGBs = 200
	tp.Oversub = 1
	shared := mustRunMakespan(t, build(tp))
	flat := mustRunMakespan(t, build(nil))
	if !(shared > flat) {
		t.Fatalf("two flows through one fabric link (%g) must be slower than flat (%g)", shared, flat)
	}
}

// TestLinkBusyFabricShare: a collective participant's cross-node
// fraction — (N−k)/(N−1) of its traffic — transits its node's fabric
// link; with a constrained fabric that share saturates the link and the
// collective slows relative to flat.
func TestLinkBusyFabricShare(t *testing.T) {
	build := func(tp *topo.Topology) *Sim {
		s := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16, Policy: FairShare})
		if err := s.SetTopology(tp); err != nil {
			t.Fatalf("SetTopology: %v", err)
		}
		for g := 0; g < 4; g++ {
			s.AddLinkBusy(fmt.Sprintf("a2a%d", g), g, 1e6)
		}
		return s
	}
	tp := topo.Uniform(2, 2)
	tp.FabricGBs = 100 // share 2 × crossFrac 2/3 × 2 GPUs/node = 8/3 demand per link
	topod := mustRunMakespan(t, build(tp))
	flat := mustRunMakespan(t, build(nil))
	if !(topod > flat) {
		t.Fatalf("collective over constrained fabric (%g) must be slower than flat (%g)", topod, flat)
	}
}

// TestFabricWindowComposesWithOversub: a capacity window on a fabric
// link multiplies onto the 1/Oversub base, further slowing flows inside
// the window.
func TestFabricWindowComposesWithOversub(t *testing.T) {
	mk := func(window bool) float64 {
		s := NewSim(ClusterConfig{NumGPUs: 4, LinkGBs: 200, HostCores: 16, Policy: FairShare})
		tp := topo.Uniform(2, 2)
		tp.FabricGBs = 200
		tp.Oversub = 2
		if err := s.SetTopology(tp); err != nil {
			t.Fatalf("SetTopology: %v", err)
		}
		if window {
			for node := 0; node < 2; node++ {
				if err := s.AddCapacityWindow(ResFabric, node, 0, 1e9, 0.5); err != nil {
					t.Fatalf("window: %v", err)
				}
			}
		}
		s.AddComm("c", 0, 2, 1e6)
		return mustRunMakespan(t, s)
	}
	plain, windowed := mk(false), mk(true)
	if !(windowed > plain) {
		t.Fatalf("fabric window (%g) must slow the flow beyond oversub alone (%g)", windowed, plain)
	}
}

// buildFabricDAG constructs a seeded random multi-node DAG: 2 or 4
// NVSwitch nodes of 2 GPUs each behind a randomly constrained,
// oversubscribed fabric, exercising every op kind with plenty of
// cross-node traffic. The satellite cross-node equivalence matrix
// replays it through every engine.
func buildFabricDAG(seed int64) *Sim {
	rng := rand.New(rand.NewSource(seed ^ 0xfab))
	nodes := 2 + 2*rng.Intn(2)
	gpus := 2 * nodes
	cfg := ClusterConfig{
		NumGPUs:   gpus,
		LinkGBs:   100 + float64(rng.Intn(3))*100,
		CopyGBs:   10 + float64(rng.Intn(3))*10,
		HostCores: 8 + rng.Intn(3)*28,
	}
	if seed%2 == 0 {
		cfg.Policy = FairShare
	} else {
		cfg.Policy = PrioritySpace
	}
	s := NewSim(cfg)
	tp := topo.Uniform(nodes, 2)
	tp.FabricGBs = 50 + float64(rng.Intn(3))*50
	tp.Oversub = float64(1 + rng.Intn(3))
	if err := s.SetTopology(tp); err != nil {
		panic(err)
	}

	n := 50 + rng.Intn(50)
	var ids []OpID
	opts := func() []OpOption {
		var o []OpOption
		if rng.Intn(2) == 0 {
			o = append(o, WithStream(fmt.Sprintf("s%d", rng.Intn(4))))
		}
		if len(ids) > 0 && rng.Intn(3) == 0 {
			o = append(o, WithDeps(ids[rng.Intn(len(ids))]))
		}
		if rng.Intn(3) == 0 {
			o = append(o, WithPriority(rng.Intn(3)))
		}
		return o
	}
	for i := 0; i < n; i++ {
		var id OpID
		switch rng.Intn(10) {
		case 0, 1, 2: // kernels
			id = s.AddKernel(rng.Intn(gpus), Kernel{
				Name:   fmt.Sprintf("k%d", i),
				Work:   rng.Float64() * 60,
				Demand: Demand{SM: rng.Float64(), MemBW: rng.Float64()},
				Tag:    "train",
			}, opts()...)
		case 3, 4, 5: // comm, biased cross-node: endpoints on distinct nodes
			src := rng.Intn(gpus)
			dst := (src + 2 + rng.Intn(gpus-2)) % gpus
			id = s.AddComm(fmt.Sprintf("c%d", i), src, dst, rng.Float64()*2e6, opts()...)
		case 6, 7: // collectives: every shard of an all-to-all
			id = s.AddLinkBusy(fmt.Sprintf("l%d", i), rng.Intn(gpus), rng.Float64()*2e6, opts()...)
		case 8:
			id = s.AddHostCopy(fmt.Sprintf("h%d", i), rng.Intn(gpus), rng.Float64()*5e5, opts()...)
		default:
			if rng.Intn(2) == 0 {
				id = s.AddCPU(fmt.Sprintf("p%d", i), rng.Float64()*40, 1+rng.Intn(8), opts()...)
			} else {
				id = s.AddBarrier(fmt.Sprintf("b%d", i), opts()...)
			}
		}
		ids = append(ids, id)
	}
	return s
}

// TestEngineEquivalenceCrossNodeMatrix is the satellite cross-node ×
// chaos × engine matrix: multi-node DAGs with fabric charging, crossed
// with capacity windows (including ResFabric windows) and straggler
// inflation, replayed through the sequential engine, the preserved
// reference implementation, and the sharded engine at 2 and 4 shards.
// Every cell must be field-exact.
func TestEngineEquivalenceCrossNodeMatrix(t *testing.T) {
	type axes struct{ windows, stragglers bool }
	cells := []axes{{false, false}, {true, false}, {false, true}, {true, true}}
	for _, ax := range cells {
		for seed := 0; seed < 8; seed++ {
			build := func() *Sim {
				s := buildFabricDAG(int64(seed))
				if ax.windows {
					nodes := s.Topology().NumNodes()
					for _, w := range []struct {
						rc     ResourceClass
						gpu    int
						t0, t1 float64
						scale  float64
					}{
						{ResSM, 0, 10, 150, 0.7},
						{ResMemBW, 1, 30, 180, 0.6},
						{ResLinkOut, 0, 0, 120, 0.5},
						{ResLinkIn, 2, 40, 260, 0.5},
						{ResCopyEngine, 0, 20, 100, 0.4},
						{ResHostCPU, 0, 50, 300, 0.6},
						{ResFabric, 0, 15, 200, 0.5},
						{ResFabric, 0, 80, 320, 0.7}, // overlaps: scales multiply
						{ResFabric, nodes - 1, 25, 240, 0.6},
					} {
						if err := s.AddCapacityWindow(w.rc, w.gpu, w.t0, w.t1, w.scale); err != nil {
							t.Fatalf("seed %d: window %v: %v", seed, w.rc, err)
						}
					}
				}
				if ax.stragglers {
					if _, err := s.InjectStragglers(int64(seed), 0.3, 2.5); err != nil {
						t.Fatalf("seed %d: stragglers: %v", seed, err)
					}
				}
				return s
			}
			want, err := build().Run()
			if err != nil {
				t.Fatalf("seed %d %+v: sequential: %v", seed, ax, err)
			}
			ref, err := referenceRun(build())
			if err != nil {
				t.Fatalf("seed %d %+v: reference: %v", seed, ax, err)
			}
			compareResults(t, seed, ref, want)
			for _, shards := range []int{2, 4} {
				s := build()
				s.SetEngineOptions(EngineOptions{Shards: shards, NoRace: true})
				got, err := s.Run()
				if err != nil {
					t.Fatalf("seed %d %+v shards %d: %v", seed, ax, shards, err)
				}
				compareResults(t, seed, got, want)
				if got.Events != want.Events {
					t.Errorf("seed %d %+v shards %d: %d events != sequential %d",
						seed, ax, shards, got.Events, want.Events)
				}
			}
		}
	}
}
