package gpusim

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// goldenPins are the sha256 digests of the golden files as committed
// with the seed corpus. The golden tests compare simulator output to
// these files; this test pins the files themselves, so a regeneration
// that silently rewrites them (instead of fixing the regression that
// moved the output) fails loudly.
var goldenPins = []struct {
	name string
	sum  string
}{
	{"golden_digests_amd64.json", "7743afb491d6585e7ef25378053dccb8ce024ed2ea0f5f148e0bfb16d3bef81e"},
	{"golden_chaos_digests_amd64.json", "6ba3236a8468f29191d79492cbab9d651cc090057de2913b3ff1535a0bb7bda5"},
}

func TestGoldenFilesPinnedToSeed(t *testing.T) {
	for _, pin := range goldenPins {
		b, err := os.ReadFile(filepath.Join("testdata", pin.name))
		if err != nil {
			t.Errorf("reading %s: %v", pin.name, err)
			continue
		}
		sum := sha256.Sum256(b)
		if got := hex.EncodeToString(sum[:]); got != pin.sum {
			t.Errorf("%s drifted from the seed corpus: sha256 %s, want %s — do not regenerate goldens; fix the regression that moved the output", pin.name, got, pin.sum)
		}
	}
}
