package gpusim

import (
	"testing"

	"rap/internal/topo"
)

// Satellite back-compat pin: installing a flat topology — or explicitly
// clearing with nil — must leave every golden DAG's result digest
// bit-identical to a run with no SetTopology call at all. A flat
// install creates no fabric resources, so the dense resource layout,
// every demand vector, and therefore every float trajectory are
// byte-for-byte the pre-topology ones. These tests replay the full
// 64-seed golden corpus and the 32-seed chaos corpus rather than a
// sample, so any layout or demand drift shows up as a digest mismatch.

// runGoldenVariants runs one golden DAG three ways — untouched, with
// topo.Flat installed, and with an explicit nil install — and returns
// the three digests. perturb, when non-nil, layers the chaos windows
// and stragglers onto each variant before running.
func runGoldenVariants(t *testing.T, seed int64, perturb func(*Sim, int64) error) (plain, flat, nilTopo string) {
	t.Helper()
	run := func(install func(*Sim) error) string {
		s := buildGoldenDAG(seed)
		if install != nil {
			if err := install(s); err != nil {
				t.Fatalf("seed %d: SetTopology: %v", seed, err)
			}
		}
		if perturb != nil {
			if err := perturb(s, seed); err != nil {
				t.Fatalf("seed %d: perturb: %v", seed, err)
			}
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		return digestResult(res)
	}
	plain = run(nil)
	flat = run(func(s *Sim) error { return s.SetTopology(topo.Flat(s.Config().NumGPUs)) })
	nilTopo = run(func(s *Sim) error { return s.SetTopology(nil) })
	return plain, flat, nilTopo
}

func checkGoldenVariants(t *testing.T, seed int64, perturb func(*Sim, int64) error) {
	t.Helper()
	plain, flat, nilTopo := runGoldenVariants(t, seed, perturb)
	if flat != plain {
		t.Errorf("seed %d: flat-topology digest %s != plain %s", seed, flat[:12], plain[:12])
	}
	if nilTopo != plain {
		t.Errorf("seed %d: nil-topology digest %s != plain %s", seed, nilTopo[:12], plain[:12])
	}
}

// TestGoldenDigestsFlatTopology pins the 64-seed golden corpus: a flat
// or nil topology is invisible in the results.
func TestGoldenDigestsFlatTopology(t *testing.T) {
	for seed := 0; seed < goldenSeeds; seed++ {
		checkGoldenVariants(t, int64(seed), nil)
	}
}

// TestChaosGoldenDigestsFlatTopology pins the 32-seed chaos corpus:
// capacity windows and stragglers compose with a flat topology exactly
// as they do without one.
func TestChaosGoldenDigestsFlatTopology(t *testing.T) {
	for seed := 0; seed < chaosGoldenSeeds; seed++ {
		checkGoldenVariants(t, int64(seed), perturbGoldenDAG)
	}
}
