package gpusim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sharded parallel event engine.
//
// The sequential engine's results are bit-defined by its exact float
// trajectory: on every event it decrements every running op's remaining
// work by dt·speed, so the global sequence of dt values is load-bearing
// for every bit of the output. A classic conservative-lookahead PDES —
// shards advancing independently to a synchronization horizon — would
// integrate foreign ops over coarser dt steps and change that float
// trajectory. Bit-identity therefore forces a lockstep design: shards
// replay the *same* global event trajectory and parallelize the work
// *within* each event.
//
// GPUs are partitioned into contiguous shards; an op is homed on the
// shard of its GPU (host-only ops — CPU work and barriers — home on
// shard 0, which also owns the single host-wide CPU resource slot).
// Each event runs four phases:
//
//	factors: each shard re-derives the slowdown factors of its own
//	  dirty resources. Per-resource user lists are kept in startSeq
//	  order, so the load summation order matches the sequential
//	  engine's regardless of which shard performs it.
//	speeds:  each shard refreshes the speed of its own running ops
//	  that touch a dirty resource (same set the sequential engine
//	  refreshes via dirty-resource user lists; refreshSpeed is a pure
//	  min over cached factors, so recomputation is bit-equal), then
//	  publishes its local event-horizon minimum.
//	advance: every shard folds the published minima into the global dt
//	  (float min is order-independent), applies the identical
//	  negative/infinity/capacity-boundary clamps, records utilization
//	  for its own GPUs (per-GPU SM/bandwidth demands only ever come
//	  from ops homed on that GPU; host-pool accounting is shard 0's,
//	  whose running list restricted to CPU ops preserves the global
//	  startSeq order), and decrements its own running ops, collecting
//	  finishers in startSeq order. Resource entry/exit is deferred.
//	commit (serial): advance the clock, apply capacity step events,
//	  apply the deferred leaveWork/enterWork calls (user lists are
//	  insertion-sorted by startSeq, so application order cannot change
//	  the resulting state), k-way-merge the per-shard finisher streams
//	  by startSeq — reproducing exactly the retirement order of the
//	  sequential engine, whose running list is always startSeq-sorted —
//	  and retire them in that order, decrementing dependents and
//	  starting newly-ready ops with globally assigned start sequence
//	  numbers.
//
// The cross-GPU boundary (point-to-point comm demands link-out on the
// source and link-in on the destination) is the only way an op touches
// a foreign shard's resources; when a DAG has no such op, the factors
// and speeds phases fuse and one barrier per event is saved.
//
// Between barriers every mutable datum has exactly one writer: a shard
// writes only its own running list, accumulators, finisher scratch and
// per-GPU timeline slots, and the commit phase runs solely on worker 0.
// The barrier's atomics provide the happens-before edges that publish
// each phase's writes to the next phase's readers.
//
// Run never changes observable output: with sharding enabled it can
// additionally race the sequential engine on a cloned op state (the
// milp.Solve pattern) and return the first finisher — both engines
// produce bit-identical Results, so the race is purely a wall-clock
// hedge against barrier overhead on unfavourable DAGs.

// shardMinOps is the DAG size below which a sharding request falls back
// to the sequential engine: the per-event phase bookkeeping cannot
// amortize over a handful of ops.
const shardMinOps = 16

// effectiveShards resolves the configured shard request against the
// cluster and DAG size (the milp effectiveWorkers pattern: requests are
// clamped, never errors).
func (s *Sim) effectiveShards() int {
	n := s.engine.Shards
	if n > s.cfg.NumGPUs {
		n = s.cfg.NumGPUs
	}
	if n <= 1 || len(s.ops) < shardMinOps {
		return 1
	}
	return n
}

// execute picks the engine for a wired DAG. Every path returns
// bit-identical Results; the choice affects wall-clock only.
func (s *Sim) execute() (*Result, error) {
	shards := s.effectiveShards()
	if shards <= 1 {
		return newEngine(s).run()
	}
	if s.engine.NoRace || runtime.GOMAXPROCS(0) < 2 {
		return newShardedEngine(s, shards, nil).run()
	}
	return s.runRaced(shards)
}

// runRaced runs the sharded engine and the sequential engine (on a
// cloned op state) concurrently and returns the first finisher. The
// loser is cancelled via its per-event stop poll.
func (s *Sim) runRaced(shards int) (*Result, error) {
	type outcome struct {
		res *Result
		err error
	}
	stop := new(atomic.Bool)
	clone := s.cloneForRace()
	ch := make(chan outcome, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r, err := newShardedEngine(s, shards, stop).run()
		ch <- outcome{r, err}
	}()
	go func() {
		defer wg.Done()
		eng := newEngine(clone)
		eng.stop = stop
		r, err := eng.run()
		ch <- outcome{r, err}
	}()
	first := <-ch
	stop.Store(true)
	wg.Wait()
	return first.res, first.err
}

// cloneForRace copies the mutable op state so two engines can replay
// the same wired DAG concurrently. Immutable per-op data — demands,
// deps, and children (fixed once Run has wired the DAG) — is shared
// read-only between the clones.
func (s *Sim) cloneForRace() *Sim {
	c := &Sim{
		cfg: s.cfg, engine: s.engine, ran: true, capWindows: s.capWindows,
		topo: s.topo, numFabric: s.numFabric, nodeOf: s.nodeOf,
		nodeSize: s.nodeSize, fabricShare: s.fabricShare, fabricCap: s.fabricCap,
	}
	c.ops = make([]*op, len(s.ops))
	for i, o := range s.ops {
		co := *o
		c.ops[i] = &co
	}
	return c
}

// shardState is one shard's slice of the engine state. Between barriers
// it is written only by the worker the shard is assigned to.
type shardState struct {
	lo, hi int // owned GPU range [lo, hi)
	// running is the shard's part of the global running set, always in
	// startSeq order: starts are appended in global start order by the
	// serial commit phase, and compaction preserves order.
	running []*op
	// localDT is the shard's event-horizon minimum, published at the
	// speeds-phase barrier and folded into the global dt by every shard.
	localDT float64
	// Per-event scratch, reused across events.
	finished []*op // ops completed this event, startSeq order
	leave    []*op // finished subset still registered with resources
	entered  []*op // launch done this event; enterWork deferred to commit
	mergeIdx int   // commit-phase merge cursor into finished
	// Per-GPU utilization accumulators covering [lo, hi): per-shard
	// partials so no two workers ever write the same accumulator.
	accSM  []float64
	accBW  []float64
	tagAcc [][]tagGrant
}

// shardedEngine wraps the dense engine core with the shard partition
// and lockstep executors.
type shardedEngine struct {
	*engine
	shards []shardState
	blk    int  // GPUs per shard (ceil division)
	cross  bool // some op's demands span two shards
	// fabricBase is the dense index of the first fabric link (== the
	// total non-fabric resource count, so the host CPU slot sits at
	// fabricBase-1); fabricOwner[n] is node n's owning shard.
	fabricBase  int
	fabricOwner []int

	// Commit-window state: like cont/runErr below, now/done/events are
	// written only by worker 0 in its exclusive commit window (the
	// advance->commit barrier gap) and read by every worker in the next
	// phase, after the commit barrier publishes them.
	now    float64
	done   int
	events int

	// Parallel-executor control: written by worker 0 in its exclusive
	// commit window between the advance and commit barriers, read by
	// every worker after the commit barrier (the barrier's atomics
	// provide the happens-before edge).
	cont   bool
	runErr error
}

func newShardedEngine(s *Sim, shards int, stop *atomic.Bool) *shardedEngine {
	core := newEngine(s)
	core.stop = stop
	g := core.numGPUs
	blk := (g + shards - 1) / shards
	nshards := (g + blk - 1) / blk // drop empty tail shards
	e := &shardedEngine{engine: core, blk: blk}
	e.fabricBase = numResKinds*g - (g - 1)
	if s.numFabric > 0 {
		e.fabricOwner = make([]int, s.numFabric)
		first := make([]int, s.numFabric)
		for i := range first {
			first[i] = -1
		}
		for gpu, node := range s.nodeOf {
			if first[node] < 0 {
				first[node] = gpu
			}
		}
		for n, gpu := range first {
			e.fabricOwner[n] = gpu / blk
		}
	}
	e.shards = make([]shardState, nshards)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.lo = i * blk
		sh.hi = sh.lo + blk
		if sh.hi > g {
			sh.hi = g
		}
		n := sh.hi - sh.lo
		sh.accSM = make([]float64, n)
		sh.accBW = make([]float64, n)
		sh.tagAcc = make([][]tagGrant, n)
	}
	for _, o := range s.ops {
		home := e.shardOfOp(o)
		for _, d := range e.demandsOf(o) {
			if e.resOwner(d.idx) != home {
				e.cross = true
			}
		}
		if e.cross {
			break
		}
	}
	return e
}

// shardOfOp homes an op: GPU-resident ops on their GPU's shard,
// host-only ops (gpu < 0) on shard 0 alongside the host CPU resource.
func (e *shardedEngine) shardOfOp(o *op) int {
	if o.gpu < 0 {
		return 0
	}
	return o.gpu / e.blk
}

// resOwner maps a dense resource index to the shard that owns it. The
// single host-wide CPU slot belongs to shard 0; a per-node fabric link
// (index past the CPU slot) belongs to the shard of its node's first
// GPU; per-GPU resources follow the kind-major layout, so the GPU is
// idx mod NumGPUs.
func (e *shardedEngine) resOwner(idx int32) int {
	if n := int(idx) - e.fabricBase; n >= 0 {
		return e.fabricOwner[n]
	}
	if int(idx) == e.fabricBase-1 {
		return 0
	}
	return (int(idx) % e.numGPUs) / e.blk
}

// startOp launches an op, assigning the global start sequence number
// and appending it to its home shard's running list. Serial-phase only.
func (e *shardedEngine) startOp(o *op) {
	o.state = opLaunching
	o.start = e.now
	o.startSeq = e.nextSeq
	e.nextSeq++
	if o.overheadLeft <= timeEps {
		o.state = opRunning
		e.enterWork(o)
	}
	sh := &e.shards[e.shardOfOp(o)]
	sh.running = append(sh.running, o)
}

func (e *shardedEngine) runningCount() int {
	n := 0
	for i := range e.shards {
		n += len(e.shards[i].running)
	}
	return n
}

func (e *shardedEngine) deadlockErr() error {
	return fmt.Errorf("gpusim: deadlock — %d ops pending with no runnable op (dependency cycle?)", len(e.s.ops)-e.done)
}

// phaseFactors re-derives the slowdown factors of the shard's dirty
// resources. Dirty flags are left set: the speeds phase still reads
// them; the commit phase clears them.
func (e *shardedEngine) phaseFactors(id int) {
	for _, idx := range e.dirty {
		if e.resOwner(idx) == id {
			e.refreshFactors(idx)
		}
	}
}

// phaseSpeeds refreshes the speed of the shard's running ops that touch
// a dirty resource — exactly the set the sequential engine refreshes
// via dirty-resource user lists — then publishes the shard's event
// horizon.
func (e *shardedEngine) phaseSpeeds(id int) {
	sh := &e.shards[id]
	for _, o := range sh.running {
		if o.state != opRunning {
			continue
		}
		for _, d := range e.demandsOf(o) {
			if e.res[d.idx].dirty {
				e.refreshSpeed(o)
				break
			}
		}
	}
	dt := math.Inf(1)
	for _, o := range sh.running {
		switch o.state {
		case opLaunching:
			if o.overheadLeft < dt {
				dt = o.overheadLeft
			}
		case opRunning:
			if rem := o.workLeft / e.speeds[o.id]; rem < dt {
				dt = rem
			}
		}
	}
	sh.localDT = dt
}

// clampedDT folds the published per-shard horizons into the global dt
// and applies the sequential engine's clamps. Every shard computes the
// identical value (float min is order-independent), avoiding an extra
// serial step and barrier.
func (e *shardedEngine) clampedDT() float64 {
	dt := math.Inf(1)
	for i := range e.shards {
		if e.shards[i].localDT < dt {
			dt = e.shards[i].localDT
		}
	}
	if dt < 0 {
		dt = 0
	}
	if math.IsInf(dt, 1) {
		dt = 0 // only zero-work ops are running; complete them now
	}
	if e.capIdx < len(e.capEvents) {
		if lim := e.capEvents[e.capIdx].t - e.now; lim < dt {
			dt = lim
			if dt < 0 {
				dt = 0
			}
		}
	}
	return dt
}

// phaseAdvance records the segment's utilization for the shard's GPUs
// and integrates dt over the shard's running ops, collecting finishers
// in startSeq order. Resource entry/exit mutates (possibly foreign)
// per-resource user lists, so both are deferred to the serial commit.
func (e *shardedEngine) phaseAdvance(id int, dt float64, res *Result) {
	sh := &e.shards[id]
	if dt > timeEps {
		for i := range sh.accSM {
			sh.accSM[i] = 0
			sh.accBW[i] = 0
			sh.tagAcc[i] = sh.tagAcc[i][:0]
		}
		hostCPU := e.accumUtil(sh.running, sh.lo, sh.accSM, sh.accBW, sh.tagAcc)
		if id == 0 {
			// Shard 0 owns all host-demand ops, so its partial host sum
			// is the global one, accumulated in startSeq order.
			flushHostSegment(res, e.now, e.now+dt, hostCPU)
		}
		for g := sh.lo; g < sh.hi; g++ {
			flushGPUSegment(res, g, e.now, e.now+dt, sh.accSM[g-sh.lo], sh.accBW[g-sh.lo], sh.tagAcc[g-sh.lo])
		}
	}
	sh.finished = sh.finished[:0]
	sh.leave = sh.leave[:0]
	sh.entered = sh.entered[:0]
	next := sh.running[:0]
	for _, o := range sh.running {
		switch o.state {
		case opLaunching:
			o.overheadLeft -= dt
			if o.overheadLeft <= timeEps {
				o.overheadLeft = 0
				o.state = opRunning
				if o.workLeft <= timeEps {
					// Never entered resource accounting; retire directly.
					sh.finished = append(sh.finished, o)
					continue
				}
				sh.entered = append(sh.entered, o)
			}
			next = append(next, o)
		case opRunning:
			o.workLeft -= dt * e.speeds[o.id]
			if o.workLeft <= timeEps {
				sh.finished = append(sh.finished, o)
				sh.leave = append(sh.leave, o)
				continue
			}
			next = append(next, o)
		}
	}
	sh.running = next
}

// phaseCommit is the serial tail of each event: clock and capacity
// steps, deferred resource entry/exit, and retirement of the merged
// finisher stream in global startSeq order — the exact order the
// sequential engine's startSeq-sorted running list produces — so
// children decrement, start, and number identically.
func (e *shardedEngine) phaseCommit(dt float64, res *Result) {
	e.events++
	e.now += dt
	for _, idx := range e.dirty {
		e.res[idx].dirty = false
	}
	e.dirty = e.dirty[:0]
	for e.capIdx < len(e.capEvents) && e.capEvents[e.capIdx].t <= e.now+timeEps {
		for _, ch := range e.capEvents[e.capIdx].changes {
			e.caps[ch.idx] = ch.cap
			e.markDirty(ch.idx)
		}
		e.capIdx++
	}
	// User lists are insertion-sorted by startSeq and removal is by
	// identity, so the application order of the deferred exits/entries
	// cannot change the resulting resource state.
	for i := range e.shards {
		for _, o := range e.shards[i].leave {
			e.leaveWork(o)
		}
		for _, o := range e.shards[i].entered {
			e.enterWork(o)
		}
	}
	for {
		best := -1
		for i := range e.shards {
			sh := &e.shards[i]
			if sh.mergeIdx >= len(sh.finished) {
				continue
			}
			if best < 0 || sh.finished[sh.mergeIdx].startSeq < e.shards[best].finished[e.shards[best].mergeIdx].startSeq {
				best = i
			}
		}
		if best < 0 {
			break
		}
		sh := &e.shards[best]
		o := sh.finished[sh.mergeIdx]
		sh.mergeIdx++
		o.state = opDone
		o.end = e.now
		e.done++
		res.Ops[o.id] = OpResult{ID: o.id, Name: o.name, Tag: o.tag, GPU: o.gpu, Start: o.start, End: o.end}
		res.byName[o.name] = append(res.byName[o.name], int(o.id))
		for _, c := range o.children {
			child := e.s.ops[c]
			child.missing--
			if child.missing == 0 && child.state == opPending {
				e.startOp(child)
			}
		}
	}
	for i := range e.shards {
		e.shards[i].mergeIdx = 0
	}
}

// run executes the wired DAG on the shard partition. Worker count is
// capped by GOMAXPROCS; with a single worker the lockstep phases run
// inline with no goroutines or barriers.
func (e *shardedEngine) run() (*Result, error) {
	s := e.s
	res := &Result{
		Ops:    make([]OpResult, len(s.ops)),
		Util:   make([][]UtilSegment, e.numGPUs),
		byName: make(map[string][]int),
	}
	for _, o := range s.ops {
		if o.missing == 0 {
			e.startOp(o)
		}
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > len(e.shards) {
		nw = len(e.shards)
	}
	var err error
	if nw <= 1 {
		err = e.runInline(res)
	} else {
		err = e.runParallel(res, nw)
	}
	if err != nil {
		return nil, err
	}
	res.Makespan = e.now
	res.Events = e.events
	return res, nil
}

func (e *shardedEngine) runInline(res *Result) error {
	total := len(e.s.ops)
	for e.done < total {
		if e.stop != nil && e.stop.Load() {
			return errEngineCancelled
		}
		if e.runningCount() == 0 {
			return e.deadlockErr()
		}
		for i := range e.shards {
			e.phaseFactors(i)
		}
		for i := range e.shards {
			e.phaseSpeeds(i)
		}
		dt := e.clampedDT()
		for i := range e.shards {
			e.phaseAdvance(i, dt, res)
		}
		e.phaseCommit(dt, res)
	}
	return nil
}

func (e *shardedEngine) runParallel(res *Result, nw int) error {
	total := len(e.s.ops)
	if e.done >= total {
		return nil
	}
	// Event-0 loop-top checks, mirroring the inline executor.
	if e.stop != nil && e.stop.Load() {
		return errEngineCancelled
	}
	if e.runningCount() == 0 {
		return e.deadlockErr()
	}
	e.cont = true
	e.runErr = nil
	bar := newSpinBarrier(int32(nw))
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.workerLoop(w, nw, bar, res, total)
		}(w)
	}
	wg.Wait()
	return e.runErr
}

// workerLoop is one persistent shard worker. Worker w handles shards
// w, w+nw, w+2nw, ... (a static, deterministic assignment) and worker 0
// doubles as the serial commit coordinator.
func (e *shardedEngine) workerLoop(w, nw int, bar *spinBarrier, res *Result, total int) {
	for {
		for id := w; id < len(e.shards); id += nw {
			e.phaseFactors(id)
		}
		if e.cross {
			// Only cross-shard ops read foreign factors in the speeds
			// phase; without them the two phases fuse barrier-free.
			bar.wait()
		}
		for id := w; id < len(e.shards); id += nw {
			e.phaseSpeeds(id)
		}
		bar.wait()
		dt := e.clampedDT()
		for id := w; id < len(e.shards); id += nw {
			e.phaseAdvance(id, dt, res)
		}
		bar.wait()
		if w == 0 {
			e.phaseCommit(dt, res)
			e.cont = e.done < total
			if e.cont {
				switch {
				case e.stop != nil && e.stop.Load():
					e.runErr = errEngineCancelled
					e.cont = false
				case e.runningCount() == 0:
					e.runErr = e.deadlockErr()
					e.cont = false
				}
			}
		}
		bar.wait()
		if !e.cont {
			return
		}
	}
}

// barrierSpinLimit bounds the optimistic spin before a waiter parks on
// the condition variable. Simulated events are microseconds of real
// work apart, so on a truly parallel machine the generation bump lands
// within the spin window and no futex is touched; when workers
// outnumber cores (oversubscribed CI boxes, GOMAXPROCS raised in
// tests) spinning would burn whole timeslices waiting for a worker
// that cannot run, so waiters give up quickly and sleep.
const barrierSpinLimit = 128

// spinBarrier is a sense-reversing barrier for the persistent shard
// workers: bounded spin, then park. The atomic generation counter
// establishes the happens-before edges that publish each phase's
// writes to the next phase's readers — which is also exactly what the
// race detector requires.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint64
	mu    sync.Mutex // serializes gen bumps against parked waiters
	cond  *sync.Cond // signaled on every gen bump
}

func newSpinBarrier(n int32) *spinBarrier {
	b := &spinBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *spinBarrier) wait() {
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		// Last arriver: reset for the next round, then release. The
		// count reset must precede the generation bump — a released
		// worker may reach the next wait immediately. Bumping under the
		// mutex pairs with the parked waiters' locked re-check, so a
		// wakeup cannot slip between their check and their sleep.
		b.count.Store(0)
		b.mu.Lock()
		b.gen.Add(1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for spins := 0; spins < barrierSpinLimit; spins++ {
		if b.gen.Load() != gen {
			return
		}
		if spins&15 == 15 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
