package gpusim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// chaosGoldenSeeds is the number of perturbed DAGs whose bit-exact
// results are pinned. Fewer than the plain-DAG suite: each run already
// exercises every window kind plus straggler injection.
const chaosGoldenSeeds = 32

// perturbGoldenDAG layers a seeded, non-trivial perturbation onto a
// golden DAG: capacity windows on every resource class plus straggler
// inflation. Like buildGoldenDAG it must stay byte-for-byte stable —
// the committed chaos digests were produced from these exact plans.
func perturbGoldenDAG(s *Sim, seed int64) error {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	gpus := s.Config().NumGPUs
	window := func(rc ResourceClass, gpu int) error {
		t0 := rng.Float64() * 300
		dur := 20 + rng.Float64()*400
		scale := 0.3 + rng.Float64()*0.6
		return s.AddCapacityWindow(rc, gpu, t0, t0+dur, scale)
	}
	for _, rc := range []ResourceClass{ResSM, ResMemBW, ResLinkOut, ResLinkIn, ResCopyEngine} {
		for w := 0; w < 1+rng.Intn(2); w++ {
			if err := window(rc, rng.Intn(gpus)); err != nil {
				return err
			}
		}
	}
	if err := window(ResHostCPU, 0); err != nil {
		return err
	}
	_, err := s.InjectStragglers(seed, 0.25, 1.5+rng.Float64()*2)
	return err
}

func chaosGoldenDigestPath() string {
	return filepath.Join("testdata", fmt.Sprintf("golden_chaos_digests_%s.json", runtime.GOARCH))
}

// TestGoldenChaosDigests pins the bit-exact results of the perturbed
// golden DAGs, so the time-varying-capacity event handling cannot drift
// silently. Regenerate with GPUSIM_UPDATE_GOLDEN=1 (only legitimate
// when intentionally changing simulator or perturbation semantics).
func TestGoldenChaosDigests(t *testing.T) {
	digests := make([]string, chaosGoldenSeeds)
	for seed := 0; seed < chaosGoldenSeeds; seed++ {
		s := buildGoldenDAG(int64(seed))
		if err := perturbGoldenDAG(s, int64(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		digests[seed] = digestResult(res)
	}
	path := chaosGoldenDigestPath()
	if os.Getenv("GPUSIM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(digests, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(digests), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		// Digests are arch-specific; absence on a new platform is not a
		// failure.
		t.Skipf("no chaos golden digest file for %s: %v", runtime.GOARCH, err)
	}
	var want []string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(digests) {
		t.Fatalf("chaos golden file has %d digests, want %d (regenerate with GPUSIM_UPDATE_GOLDEN=1)", len(want), len(digests))
	}
	for seed, d := range digests {
		if d != want[seed] {
			t.Errorf("seed %d: perturbed digest %s != golden %s (perturbation semantics changed)", seed, d[:12], want[seed][:12])
		}
	}
}

// TestGoldenChaosEquivalence replays the perturbed golden DAGs through
// the reference engine as well — the platform-independent counterpart
// of TestGoldenChaosDigests.
func TestGoldenChaosEquivalence(t *testing.T) {
	for seed := 0; seed < chaosGoldenSeeds; seed++ {
		fast := buildGoldenDAG(int64(seed))
		if err := perturbGoldenDAG(fast, int64(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := fast.Run()
		if err != nil {
			t.Fatalf("seed %d: optimized engine: %v", seed, err)
		}
		ref := buildGoldenDAG(int64(seed))
		if err := perturbGoldenDAG(ref, int64(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := referenceRun(ref)
		if err != nil {
			t.Fatalf("seed %d: reference engine: %v", seed, err)
		}
		compareResults(t, seed, got, want)
	}
}
