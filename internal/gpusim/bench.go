package gpusim

// BenchKernels and BenchGPUs describe the canonical engine-benchmark DAG
// shape, reported alongside timings in BENCH_engine.json.
const (
	BenchKernels = 1000
	BenchGPUs    = 8
)

// NewBenchmarkSim constructs the dense co-run DAG used both by
// BenchmarkEngine and by rapbench's engine-regression entry: BenchKernels
// kernels across BenchGPUs GPUs with stream chaining, so most events see
// many concurrent resource users. Sharing one constructor keeps the
// in-repo benchmark and the emitted regression numbers on the same
// workload.
func NewBenchmarkSim() *Sim {
	s := NewSim(ClusterConfig{NumGPUs: BenchGPUs})
	for k := 0; k < BenchKernels; k++ {
		g := k % BenchGPUs
		s.AddKernel(g, Kernel{
			Name: "k", Work: float64(1 + k%50),
			Demand: Demand{SM: 0.1 + float64(k%7)*0.1, MemBW: 0.2},
		}, WithStream("s"+string(rune('a'+k%4))))
	}
	return s
}
