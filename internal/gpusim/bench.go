package gpusim

import "fmt"

// BenchKernels and BenchGPUs describe the canonical engine-benchmark DAG
// shape, reported alongside timings in BENCH_engine.json.
const (
	BenchKernels = 1000
	BenchGPUs    = 8
)

// NewBenchmarkSim constructs the dense co-run DAG used both by
// BenchmarkEngine and by rapbench's engine-regression entry: BenchKernels
// kernels across BenchGPUs GPUs with stream chaining, so most events see
// many concurrent resource users. Sharing one constructor keeps the
// in-repo benchmark and the emitted regression numbers on the same
// workload.
func NewBenchmarkSim() *Sim {
	s := NewSim(ClusterConfig{NumGPUs: BenchGPUs})
	for k := 0; k < BenchKernels; k++ {
		g := k % BenchGPUs
		s.AddKernel(g, Kernel{
			Name: "k", Work: float64(1 + k%50),
			Demand: Demand{SM: 0.1 + float64(k%7)*0.1, MemBW: 0.2},
		}, WithStream("s"+string(rune('a'+k%4))))
	}
	return s
}

// ShardBenchKernels and ShardBenchStreamsPerGPU describe the
// shard-scaling benchmark DAG, reported alongside its timings in
// BENCH_engine.json. It shares BenchGPUs with the canonical DAG.
const (
	ShardBenchKernels       = 1200
	ShardBenchStreamsPerGPU = 3
)

// NewShardBenchmarkSim constructs the DAG used by rapbench's
// ns/event-vs-shards scaling series. The canonical NewBenchmarkSim
// chains its kernels through four global streams, so only a handful of
// ops run concurrently — almost nothing for per-GPU shards to do in
// parallel. This DAG instead keeps ShardBenchStreamsPerGPU independent
// streams busy on every GPU (so each shard owns a full complement of
// concurrently-running ops) and threads a deterministic sprinkle of
// cross-GPU point-to-point comms through the stream chains, exercising
// the sharded engine's cross-shard coupling path rather than the fused
// fast path.
func NewShardBenchmarkSim() *Sim {
	s := NewSim(ClusterConfig{NumGPUs: BenchGPUs})
	for k := 0; k < ShardBenchKernels; k++ {
		g := k % BenchGPUs
		stream := fmt.Sprintf("g%d/s%d", g, (k/BenchGPUs)%ShardBenchStreamsPerGPU)
		id := s.AddKernel(g, Kernel{
			Name: "k", Work: float64(1 + k%40),
			Demand: Demand{SM: 0.15 + float64(k%5)*0.1, MemBW: 0.25},
		}, WithStream(stream))
		if k%24 == 7 {
			s.AddComm("x", g, (g+3)%BenchGPUs, 2e6, WithDeps(id), WithStream(stream))
		}
	}
	return s
}
