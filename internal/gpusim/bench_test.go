package gpusim

import "testing"

// BenchmarkEngine measures the discrete-event engine on a dense co-run
// DAG (1000 kernels across 8 GPUs with stream chaining).
func BenchmarkEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSim(ClusterConfig{NumGPUs: 8})
		for k := 0; k < 1000; k++ {
			g := k % 8
			s.AddKernel(g, Kernel{
				Name: "k", Work: float64(1 + k%50),
				Demand: Demand{SM: 0.1 + float64(k%7)*0.1, MemBW: 0.2},
			}, WithStream("s"+string(rune('a'+k%4))))
		}
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
