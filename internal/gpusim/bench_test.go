package gpusim

import "testing"

// BenchmarkEngine measures the discrete-event engine on the canonical
// dense co-run DAG (see NewBenchmarkSim). `rapbench -engine-bench` runs
// the same workload and records the result in BENCH_engine.json.
func BenchmarkEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewBenchmarkSim()
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
