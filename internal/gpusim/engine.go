package gpusim

import (
	"fmt"
	"math"
	"sort"
)

const (
	timeEps = 1e-9
	// minSpeed bounds how far contention can slow an op, guaranteeing
	// forward progress in the event loop even under extreme
	// oversubscription.
	minSpeed = 1e-3

	// ContentionExponent makes fair-share slowdown superlinear when a
	// resource is oversubscribed: factor = (1/load)^φ. Oversubscribed
	// SMs and memory systems lose aggregate throughput to cache
	// thrashing and scheduling overhead, which is why unmanaged
	// co-running (the MPS baseline) hurts more than proportionally
	// (paper Figure 1c: overlapping an oversized kernel inflates MLP
	// latency sharply).
	ContentionExponent = 1.3

	// PriorityBurstFactor inflates a high-priority op's SM load when
	// computing the leftover available to lower priorities. GPUs
	// preempt at thread-block granularity: a training kernel with 70%
	// time-averaged SM use still occupies nearly all SM slots during
	// its bursts, so a low-priority stream sees far less than the
	// time-averaged headroom (this is what starves the CUDA-stream
	// baseline, §8.2).
	PriorityBurstFactor = 2.0
)

// Run executes the accumulated op DAG and returns the timeline. A Sim is
// single-use: Run may only be called once.
func (s *Sim) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("gpusim: Sim.Run called twice")
	}
	s.ran = true

	// Wire the DAG.
	for _, o := range s.ops {
		seen := make(map[OpID]bool, len(o.deps))
		for _, d := range o.deps {
			if d < 0 || int(d) >= len(s.ops) {
				return nil, fmt.Errorf("gpusim: op %q depends on unknown op %d", o.name, d)
			}
			if d == o.id {
				return nil, fmt.Errorf("gpusim: op %q depends on itself", o.name)
			}
			if seen[d] {
				continue
			}
			seen[d] = true
			s.ops[d].children = append(s.ops[d].children, o.id)
			o.missing++
		}
	}

	res := &Result{
		Ops:    make([]OpResult, len(s.ops)),
		Util:   make([][]UtilSegment, s.cfg.NumGPUs),
		byName: make(map[string][]int),
	}

	now := 0.0
	var running []*op
	done := 0

	start := func(o *op) {
		o.state = opLaunching
		o.start = now
		if o.overheadLeft <= timeEps {
			o.state = opRunning
		}
		running = append(running, o)
	}
	for _, o := range s.ops {
		if o.missing == 0 {
			start(o)
		}
	}

	speeds := make([]float64, len(s.ops))
	for done < len(s.ops) {
		if len(running) == 0 {
			return nil, fmt.Errorf("gpusim: deadlock — %d ops pending with no runnable op (dependency cycle?)", len(s.ops)-done)
		}

		// Resource factors for ops in the work phase.
		factors := s.resourceFactors(running)

		// Per-op speed and the next event horizon.
		dt := math.Inf(1)
		for _, o := range running {
			switch o.state {
			case opLaunching:
				speeds[o.id] = 1
				if o.overheadLeft/1 < dt {
					dt = o.overheadLeft
				}
			case opRunning:
				sp := 1.0
				for rk, dem := range o.demands {
					if dem <= 0 {
						continue
					}
					if f, ok := factors[factorKey{rk, o.priority}]; ok && f < sp {
						sp = f
					}
				}
				if sp < minSpeed {
					sp = minSpeed
				}
				speeds[o.id] = sp
				if rem := o.workLeft / sp; rem < dt {
					dt = rem
				}
			}
		}
		if dt < 0 {
			dt = 0
		}
		if math.IsInf(dt, 1) {
			dt = 0 // only zero-work ops are running; complete them now
		}

		// Record utilization for this segment.
		if dt > timeEps {
			s.recordUtil(res, now, now+dt, running, factors)
		}

		// Advance and retire.
		now += dt
		next := running[:0]
		var finished []*op
		for _, o := range running {
			switch o.state {
			case opLaunching:
				o.overheadLeft -= dt
				if o.overheadLeft <= timeEps {
					o.overheadLeft = 0
					o.state = opRunning
					if o.workLeft <= timeEps {
						finished = append(finished, o)
						continue
					}
				}
				next = append(next, o)
			case opRunning:
				o.workLeft -= dt * speeds[o.id]
				if o.workLeft <= timeEps {
					finished = append(finished, o)
					continue
				}
				next = append(next, o)
			}
		}
		running = next
		for _, o := range finished {
			o.state = opDone
			o.end = now
			done++
			res.Ops[o.id] = OpResult{ID: o.id, Name: o.name, Tag: o.tag, GPU: o.gpu, Start: o.start, End: o.end}
			res.byName[o.name] = append(res.byName[o.name], int(o.id))
			for _, c := range o.children {
				child := s.ops[c]
				child.missing--
				if child.missing == 0 && child.state == opPending {
					start(child)
				}
			}
		}
	}
	res.Makespan = now
	return res, nil
}

type factorKey struct {
	res  resKey
	prio int
}

// resourceFactors computes, for every (resource, priority level) with at
// least one running user, the slowdown factor its users receive.
func (s *Sim) resourceFactors(running []*op) map[factorKey]float64 {
	type level struct {
		prio int
		load float64
	}
	byRes := make(map[resKey][]level)
	for _, o := range running {
		if o.state != opRunning {
			continue
		}
		for rk, dem := range o.demands {
			if dem <= 0 {
				continue
			}
			levels := byRes[rk]
			found := false
			for i := range levels {
				if levels[i].prio == o.priority {
					levels[i].load += dem
					found = true
					break
				}
			}
			if !found {
				levels = append(levels, level{prio: o.priority, load: dem})
			}
			byRes[rk] = levels
		}
	}

	out := make(map[factorKey]float64)
	for rk, levels := range byRes {
		switch s.cfg.Policy {
		case PrioritySpace:
			sort.Slice(levels, func(i, j int) bool { return levels[i].prio > levels[j].prio })
			remaining := 1.0
			for i, lv := range levels {
				f := 1.0
				if lv.load > remaining {
					if remaining <= 0 {
						f = 0
					} else {
						f = remaining / lv.load
					}
					remaining = 0
				} else {
					remaining -= lv.load
					// Lower priorities see the burst-inflated SM
					// footprint of this level, not its time average.
					if rk.kind == resSM && i < len(levels)-1 {
						burst := lv.load * (PriorityBurstFactor - 1)
						if burst > remaining {
							remaining = 0
						} else {
							remaining -= burst
						}
					}
				}
				out[factorKey{rk, lv.prio}] = f
			}
		default: // FairShare: one factor for everyone on the resource
			total := 0.0
			for _, lv := range levels {
				total += lv.load
			}
			f := 1.0
			if total > 1 {
				f = math.Pow(1/total, ContentionExponent)
			}
			for _, lv := range levels {
				out[factorKey{rk, lv.prio}] = f
			}
		}
	}
	return out
}

// recordUtil appends one utilization segment per GPU covering [t0,t1).
func (s *Sim) recordUtil(res *Result, t0, t1 float64, running []*op, factors map[factorKey]float64) {
	type acc struct {
		sm, bw float64
		tagSM  map[string]float64
	}
	accs := make([]acc, s.cfg.NumGPUs)
	hostCPU := 0.0
	for _, o := range running {
		if o.state != opRunning {
			continue
		}
		for rk, dem := range o.demands {
			if rk.kind == resCPU {
				hostCPU += dem * factors[factorKey{rk, o.priority}]
			}
		}
		if o.gpu < 0 {
			continue
		}
		for rk, dem := range o.demands {
			f := factors[factorKey{rk, o.priority}]
			grant := dem * f
			switch rk.kind {
			case resSM:
				accs[rk.gpu].sm += grant
				if accs[rk.gpu].tagSM == nil {
					accs[rk.gpu].tagSM = make(map[string]float64)
				}
				accs[rk.gpu].tagSM[o.tag] += grant
			case resBW:
				accs[rk.gpu].bw += grant
			}
		}
	}
	if hostCPU > 1 {
		hostCPU = 1
	}
	if n := len(res.HostUtil); n > 0 && res.HostUtil[n-1].End == t0 && res.HostUtil[n-1].CPU == hostCPU {
		res.HostUtil[n-1].End = t1
	} else {
		res.HostUtil = append(res.HostUtil, HostSegment{Start: t0, End: t1, CPU: hostCPU})
	}
	for g := 0; g < s.cfg.NumGPUs; g++ {
		seg := UtilSegment{Start: t0, End: t1, SM: math.Min(accs[g].sm, 1), MemBW: math.Min(accs[g].bw, 1), TagSM: accs[g].tagSM}
		// Merge with the previous segment when nothing changed, to keep
		// timelines compact.
		if n := len(res.Util[g]); n > 0 {
			prev := &res.Util[g][n-1]
			if prev.End == t0 && prev.SM == seg.SM && prev.MemBW == seg.MemBW && equalTagSM(prev.TagSM, seg.TagSM) {
				prev.End = t1
				continue
			}
		}
		res.Util[g] = append(res.Util[g], seg)
	}
}

func equalTagSM(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// BusyFraction returns the fraction of [0,upTo] during which GPU g had at
// least one kernel resident (the NVML-style "GPU utilization" metric of
// Table 4). upTo <= 0 means the whole makespan.
func (r *Result) BusyFraction(g int, upTo float64) float64 {
	if upTo <= 0 {
		upTo = r.Makespan
	}
	if upTo == 0 {
		return 0
	}
	busy := 0.0
	for _, seg := range r.Util[g] {
		if seg.SM <= 0 && seg.MemBW <= 0 {
			continue
		}
		s, e := seg.Start, seg.End
		if s >= upTo {
			break
		}
		if e > upTo {
			e = upTo
		}
		busy += e - s
	}
	return busy / upTo
}
